package itree

import (
	"testing"

	"soteria/internal/ctrenc"
)

// FuzzITreeVerifyAfterUpdate drives a BMT through an arbitrary update
// script and checks the tree's invariants: every updated leaf verifies
// back to its latest contents, the whole tree stays self-consistent, and
// a leaf tampered behind the tree's back fails verification.
func FuzzITreeVerifyAfterUpdate(f *testing.F) {
	f.Add(uint64(12), []byte{42, 0xAA, 7, 0x55, 42, 0x01})
	f.Add(uint64(1), []byte{0, 0})
	f.Add(uint64(200), []byte{9, 1, 17, 2, 200, 3, 73, 4, 9, 5})
	f.Fuzz(func(t *testing.T, leaves uint64, script []byte) {
		leaves = leaves%96 + 1 // 1..96 covers 1-3 tree levels
		eng := ctrenc.MustNewEngine([]byte("itree-fuzz"))
		store := newMapStore()
		b, err := NewBMT(eng, store, 0, leaves, leaves*BlockSize)
		if err != nil {
			t.Fatal(err)
		}

		last := map[uint64][BlockSize]byte{}
		for i := 0; i+1 < len(script); i += 2 {
			idx := uint64(script[i]) % leaves
			var line [BlockSize]byte
			line[0] = script[i+1]
			line[1] = byte(i)
			if err := b.Update(idx, &line); err != nil {
				t.Fatalf("Update(%d): %v", idx, err)
			}
			last[idx] = line
		}

		for idx, want := range last {
			got, err := b.Verify(idx)
			if err != nil {
				t.Fatalf("Verify(%d) after update: %v", idx, err)
			}
			if got != want {
				t.Fatalf("Verify(%d) returned stale contents\n got %x\nwant %x", idx, got[:8], want[:8])
			}
		}
		if err := b.VerifyAll(); err != nil {
			t.Fatalf("tree inconsistent after update script: %v", err)
		}

		// Tamper with the lowest updated leaf (or leaf 0 when the script
		// was empty) directly in storage: verification must now fail.
		victim, found := uint64(0), false
		for idx := range last {
			if !found || idx < victim {
				victim, found = idx, true
			}
		}
		raw, err := store.ReadLine(victim * BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		raw[0] ^= 0xFF
		store.WriteLine(victim*BlockSize, &raw)
		if _, err := b.Verify(victim); err == nil {
			t.Fatalf("tampered leaf %d still verifies", victim)
		}
	})
}
