// Package itree implements the integrity-protection structures of the
// secure memory controller: the physical layout of security metadata in
// NVM (encryption counters, ToC tree levels, data MACs, the Anubis shadow
// region and Soteria's clone regions), the SGX-style Tree of Counters node
// format, and a Bonsai-Merkle-Tree (BMT) hash tree used both as a baseline
// and to protect the shadow region.
//
// Level numbering follows the paper: level 1 is the leaf level (encryption
// counter blocks), higher levels are ToC nodes, and the root lives on-chip
// and is never stored in NVM.
package itree

import (
	"fmt"

	"soteria/internal/config"
)

// BlockSize is the metadata node size (one NVM line).
const BlockSize = config.BlockSize

// LevelInfo describes one stored level of the tree.
type LevelInfo struct {
	// Level is the 1-based level number (1 = encryption counters).
	Level int
	// Nodes is the number of nodes in this level.
	Nodes uint64
	// Base is the byte address of the level's home region in NVM.
	Base uint64
	// CloneBases holds the base address of each clone region for this
	// level (length = depth-1; empty when the level is not cloned).
	CloneBases []uint64
	// CloneStrides holds, per clone region, the multiplicative stride of
	// the permutation that scatters clone slots within the region:
	// clone c of node i lives at slot (i * stride) mod Nodes. The
	// permutation decorrelates the physical placement (bank, row) of a
	// node's copies, so a structured fault that kills a stripe of home
	// copies does not kill the same nodes' clones.
	CloneStrides []uint64
	// CoverBytes is the number of data bytes covered by one node.
	CoverBytes uint64
}

// RegionKind classifies an NVM address for fault attribution.
type RegionKind int

// Region kinds, ordered as laid out in memory.
const (
	RegionData RegionKind = iota
	RegionDataMAC
	RegionMetadata // home copy of a counter block or tree node
	RegionClone    // one of Soteria's clone copies
	RegionShadow   // Anubis shadow table
	RegionShadowTree
	RegionUnused
)

func (r RegionKind) String() string {
	switch r {
	case RegionData:
		return "data"
	case RegionDataMAC:
		return "data-mac"
	case RegionMetadata:
		return "metadata"
	case RegionClone:
		return "clone"
	case RegionShadow:
		return "shadow"
	case RegionShadowTree:
		return "shadow-tree"
	default:
		return "unused"
	}
}

// Location attributes one NVM line to a region; for metadata and clone
// regions it also names the tree level, node index and clone index.
type Location struct {
	Kind  RegionKind
	Level int    // valid for RegionMetadata / RegionClone
	Index uint64 // node index within level; block index for data/MAC
	Clone int    // clone index (0-based) for RegionClone
}

// Layout is the complete NVM address map of a protected memory. All
// regions are line-aligned and consecutive:
//
//	data | data MACs | L1..Lk home | clones | shadow | shadow tree
type Layout struct {
	DataBytes    uint64
	DataBlocks   uint64
	CounterArity int
	TreeArity    int
	// Levels[i] describes stored level i+1.
	Levels []LevelInfo
	// CloneDepths[i] is the total copy count (original included) of
	// level i+1; 1 means no clones.
	CloneDepths []int

	// DataBase is the byte address where the data region starts (zero
	// unless CloneRegionsFirst moved the clones below it).
	DataBase       uint64
	MACBase        uint64
	MACLines       uint64
	ShadowBase     uint64
	ShadowEntries  uint64
	ShadowTreeBase uint64
	ShadowTreeLn   uint64
	Total          uint64
}

// Params configures a layout.
type Params struct {
	// DataBytes is the protected data capacity.
	DataBytes uint64
	// CounterArity is the data blocks per counter block (64).
	CounterArity int
	// TreeArity is the ToC arity (8).
	TreeArity int
	// CloneDepths gives the copy count per level, outermost index =
	// level-1. Missing levels default to depth 1 (no clones); extra
	// entries are ignored. Nil means no cloning anywhere.
	CloneDepths []int
	// ShadowEntries is the number of Anubis shadow-table entries
	// (metadata cache sets x ways); zero disables the shadow region.
	ShadowEntries uint64
	// RegionAlign aligns every region base to a multiple of this size
	// (rounded up to a line). Reliability studies set it to the DIMM's
	// bank-interleave stripe so distinct regions start in distinct
	// banks; zero keeps regions densely packed.
	RegionAlign uint64
	// CloneRegionsFirst places the clone regions at the *bottom* of the
	// address space, before the data region, instead of at the top. On
	// a two-rank DIMM whose rank bit is the address MSB this puts every
	// clone in the opposite rank from its home copy — and ranks are
	// independent Chipkill domains, so no single-rank double fault can
	// kill a node and its clone together. The functional controller
	// keeps the default (data at address zero).
	CloneRegionsFirst bool
}

// NewLayout computes the full address map.
func NewLayout(p Params) (*Layout, error) {
	if p.DataBytes == 0 || p.DataBytes%BlockSize != 0 {
		return nil, fmt.Errorf("itree: data bytes %d must be a positive multiple of %d", p.DataBytes, BlockSize)
	}
	if p.CounterArity <= 0 || p.TreeArity <= 1 {
		return nil, fmt.Errorf("itree: invalid arities counter=%d tree=%d", p.CounterArity, p.TreeArity)
	}
	l := &Layout{
		DataBytes:    p.DataBytes,
		DataBlocks:   p.DataBytes / BlockSize,
		CounterArity: p.CounterArity,
		TreeArity:    p.TreeArity,
	}

	// Level node counts: L1 = counter blocks; L_{i+1} = ceil(L_i/arity)
	// until a level fits under one on-chip root node.
	counts := []uint64{ceilDiv(l.DataBlocks, uint64(p.CounterArity))}
	for counts[len(counts)-1] > uint64(p.TreeArity) {
		counts = append(counts, ceilDiv(counts[len(counts)-1], uint64(p.TreeArity)))
	}

	depth := func(level int) int {
		if level-1 < len(p.CloneDepths) && p.CloneDepths[level-1] > 1 {
			return p.CloneDepths[level-1]
		}
		return 1
	}

	align := p.RegionAlign
	if align < BlockSize {
		align = BlockSize
	}
	alignUp := func(v uint64) uint64 { return (v + align - 1) / align * align }

	// Validate depths and pre-compute strides.
	l.CloneDepths = make([]int, len(counts))
	for i := range counts {
		d := depth(i + 1)
		if d > MaxCloneDepth {
			return nil, fmt.Errorf("itree: clone depth %d at level %d exceeds WPQ-safe maximum %d", d, i+1, MaxCloneDepth)
		}
		l.CloneDepths[i] = d
	}

	var cursor uint64

	// allocClones places each level's clone regions at the current
	// cursor. By default they come last: a localized fault cannot
	// straddle a home copy and its clone, and every non-clone region has
	// the same address in the baseline, SRC and SAC layouts, so scheme
	// comparisons differ only where the schemes differ. With
	// CloneRegionsFirst they come first instead (opposite rank from the
	// home copies; see Params).
	cloneBases := make([][]uint64, len(counts))
	allocClones := func() {
		for i, n := range counts {
			for c := 0; c < l.CloneDepths[i]-1; c++ {
				cloneBases[i] = append(cloneBases[i], cursor)
				cursor = alignUp(cursor + n*BlockSize)
			}
		}
	}
	if p.CloneRegionsFirst {
		allocClones()
	}

	// Data region.
	l.DataBase = cursor
	cursor = alignUp(cursor + l.DataBytes)

	// Data MAC region: 8 bytes per data block, packed 8 per line.
	l.MACBase = cursor
	l.MACLines = ceilDiv(l.DataBlocks, 8)
	cursor = alignUp(cursor + l.MACLines*BlockSize)

	// Home regions.
	cover := uint64(p.CounterArity) * BlockSize
	for i, n := range counts {
		l.Levels = append(l.Levels, LevelInfo{
			Level:      i + 1,
			Nodes:      n,
			Base:       cursor,
			CoverBytes: cover,
		})
		cursor = alignUp(cursor + n*BlockSize)
		cover *= uint64(p.TreeArity)
	}

	// Shadow region and its eagerly updated protection tree.
	if p.ShadowEntries > 0 {
		l.ShadowBase = cursor
		l.ShadowEntries = p.ShadowEntries
		cursor = alignUp(cursor + p.ShadowEntries*BlockSize)
		// The shadow BMT stores every level down to a single top node
		// (whose hash is the on-chip root): arity 8 over
		// ShadowEntries leaves.
		l.ShadowTreeBase = cursor
		for n := ceilDiv(p.ShadowEntries, 8); ; n = ceilDiv(n, 8) {
			l.ShadowTreeLn += n
			if n == 1 {
				break
			}
		}
		cursor = alignUp(cursor + l.ShadowTreeLn*BlockSize)
	}

	if !p.CloneRegionsFirst {
		allocClones()
	}
	for i := range counts {
		l.Levels[i].CloneBases = cloneBases[i]
		for c := range cloneBases[i] {
			l.Levels[i].CloneStrides = append(l.Levels[i].CloneStrides, cloneStride(counts[i], c))
		}
	}

	l.Total = cursor
	return l, nil
}

// MaxCloneDepth is the WPQ-imposed bound on copies per node (§3.2.1: the
// minimum WPQ holds 8 entries; three are reserved for cipher, data MAC and
// shadow log, so at most 5 copies can be committed atomically).
const MaxCloneDepth = 5

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// NumLevels returns the number of stored levels (root excluded).
func (l *Layout) NumLevels() int { return len(l.Levels) }

// TopLevel returns the highest stored level number; its nodes are the
// on-chip root's direct children.
func (l *Layout) TopLevel() int { return len(l.Levels) }

// NodeAddr returns the home address of node (level, index).
func (l *Layout) NodeAddr(level int, index uint64) uint64 {
	li := l.Levels[level-1]
	if index >= li.Nodes {
		panic(fmt.Sprintf("itree: node index %d out of range for level %d (%d nodes)", index, level, li.Nodes))
	}
	return li.Base + index*BlockSize
}

// cloneStride picks the permutation stride for a clone region of n nodes:
// a value near the golden-ratio point of n (maximally spreading consecutive
// indices) that is coprime with n, varied per clone index so different
// clones scatter differently.
func cloneStride(n uint64, c int) uint64 {
	if n <= 2 {
		return 1
	}
	s := n*161803/261803 + uint64(c)*977 + 1
	s %= n
	if s == 0 {
		s = 1
	}
	for gcd(s, n) != 1 {
		s++
		if s >= n {
			s = 1
		}
	}
	return s
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modInverse returns s^-1 mod n for gcd(s, n) == 1.
func modInverse(s, n uint64) uint64 {
	if n == 1 {
		return 0
	}
	// Extended Euclid on signed values.
	t, newT := int64(0), int64(1)
	r, newR := int64(n), int64(s%n)
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if t < 0 {
		t += int64(n)
	}
	return uint64(t)
}

// CloneSlot returns the slot within clone region c that holds node index's
// copy.
func (l *Layout) CloneSlot(level int, index uint64, c int) uint64 {
	li := l.Levels[level-1]
	if li.Nodes <= 1 {
		return 0
	}
	return index * li.CloneStrides[c] % li.Nodes
}

// CloneAddr returns the address of clone c (0-based) of node (level,index).
// Clone copies are scattered within their region by a per-region
// permutation so that a structured physical fault (a dead row or bank
// stripe) that covers a run of home copies does not cover the same nodes'
// clones.
func (l *Layout) CloneAddr(level int, index uint64, c int) uint64 {
	li := l.Levels[level-1]
	if c < 0 || c >= len(li.CloneBases) {
		panic(fmt.Sprintf("itree: clone %d out of range for level %d", c, level))
	}
	if index >= li.Nodes {
		panic(fmt.Sprintf("itree: node index %d out of range for level %d", index, level))
	}
	return li.CloneBases[c] + l.CloneSlot(level, index, c)*BlockSize
}

// CopyAddrs returns all copy addresses of a node, home first.
func (l *Layout) CopyAddrs(level int, index uint64) []uint64 {
	li := l.Levels[level-1]
	return l.AppendCopyAddrs(make([]uint64, 0, 1+len(li.CloneBases)), level, index)
}

// AppendCopyAddrs appends all copy addresses of a node, home first, to
// dst and returns it — CopyAddrs for callers that recycle a scratch
// slice across write-backs.
func (l *Layout) AppendCopyAddrs(dst []uint64, level int, index uint64) []uint64 {
	li := l.Levels[level-1]
	dst = append(dst, l.NodeAddr(level, index))
	for c := range li.CloneBases {
		dst = append(dst, l.CloneAddr(level, index, c))
	}
	return dst
}

// CounterBlockOf returns the level-1 node index covering data block b.
func (l *Layout) CounterBlockOf(dataBlock uint64) uint64 {
	return dataBlock / uint64(l.CounterArity)
}

// SlotOf returns the minor-counter slot of data block b within its counter
// block.
func (l *Layout) SlotOf(dataBlock uint64) int {
	return int(dataBlock % uint64(l.CounterArity))
}

// Parent returns the (level, index, slot) of the parent of node
// (level, index). For the top stored level the parent is the on-chip root:
// ok=false and slot is the root-counter slot.
func (l *Layout) Parent(level int, index uint64) (plevel int, pindex uint64, slot int, stored bool) {
	slot = int(index % uint64(l.TreeArity))
	if level >= l.TopLevel() {
		return level + 1, 0, int(index), false
	}
	return level + 1, index / uint64(l.TreeArity), slot, true
}

// DataMACAddr returns (line address, byte offset) of data block b's MAC in
// the MAC region: MACs are packed 8 per line.
func (l *Layout) DataMACAddr(dataBlock uint64) (lineAddr uint64, offset int) {
	return l.MACBase + (dataBlock/8)*BlockSize, int(dataBlock%8) * 8
}

// ShadowEntryAddr returns the address of shadow-table entry i.
func (l *Layout) ShadowEntryAddr(i uint64) uint64 {
	if i >= l.ShadowEntries {
		panic(fmt.Sprintf("itree: shadow entry %d out of range (%d)", i, l.ShadowEntries))
	}
	return l.ShadowBase + i*BlockSize
}

// CoverageOf returns the absolute byte range [start, end) of data covered
// by node (level, index). The range is clipped to the data capacity (the
// last node of a level may be partially populated).
func (l *Layout) CoverageOf(level int, index uint64) (start, end uint64) {
	cover := l.Levels[level-1].CoverBytes
	start = index * cover
	end = start + cover
	if start > l.DataBytes {
		start = l.DataBytes
	}
	if end > l.DataBytes {
		end = l.DataBytes
	}
	return l.DataBase + start, l.DataBase + end
}

// Locate attributes an NVM line address to its region.
func (l *Layout) Locate(addr uint64) Location {
	switch {
	case addr >= l.DataBase && addr < l.DataBase+l.DataBytes:
		return Location{Kind: RegionData, Index: (addr - l.DataBase) / BlockSize}
	case addr >= l.MACBase && addr < l.MACBase+l.MACLines*BlockSize:
		return Location{Kind: RegionDataMAC, Index: (addr - l.MACBase) / BlockSize}
	}
	for _, li := range l.Levels {
		if addr >= li.Base && addr < li.Base+li.Nodes*BlockSize {
			return Location{Kind: RegionMetadata, Level: li.Level, Index: (addr - li.Base) / BlockSize}
		}
	}
	for _, li := range l.Levels {
		for c, base := range li.CloneBases {
			if addr >= base && addr < base+li.Nodes*BlockSize {
				slot := (addr - base) / BlockSize
				// Invert the placement permutation so Index reports
				// the *node* whose copy lives here.
				index := slot
				if li.Nodes > 1 {
					index = slot * modInverse(li.CloneStrides[c], li.Nodes) % li.Nodes
				}
				return Location{Kind: RegionClone, Level: li.Level, Index: index, Clone: c}
			}
		}
	}
	if l.ShadowEntries > 0 {
		if addr >= l.ShadowBase && addr < l.ShadowBase+l.ShadowEntries*BlockSize {
			return Location{Kind: RegionShadow, Index: (addr - l.ShadowBase) / BlockSize}
		}
		if addr >= l.ShadowTreeBase && addr < l.ShadowTreeBase+l.ShadowTreeLn*BlockSize {
			return Location{Kind: RegionShadowTree, Index: (addr - l.ShadowTreeBase) / BlockSize}
		}
	}
	return Location{Kind: RegionUnused}
}

// MetadataBytes returns the total bytes of counters + tree nodes (home
// copies only) — the paper's ~1.78% storage-overhead figure.
func (l *Layout) MetadataBytes() uint64 {
	var n uint64
	for _, li := range l.Levels {
		n += li.Nodes * BlockSize
	}
	return n
}

// OverheadRatio returns metadata bytes / data bytes.
func (l *Layout) OverheadRatio() float64 {
	return float64(l.MetadataBytes()) / float64(l.DataBytes)
}
