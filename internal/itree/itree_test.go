package itree

import (
	"errors"
	"testing"
	"testing/quick"

	"soteria/internal/ctrenc"
)

func layout4MB(t *testing.T, depths []int) *Layout {
	t.Helper()
	l, err := NewLayout(Params{
		DataBytes:     4 << 20,
		CounterArity:  64,
		TreeArity:     8,
		CloneDepths:   depths,
		ShadowEntries: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutLevelSizes(t *testing.T) {
	l := layout4MB(t, nil)
	// 4 MB = 65536 data blocks -> 1024 counter blocks -> 128 -> 16 -> 2.
	want := []uint64{1024, 128, 16, 2}
	if len(l.Levels) != len(want) {
		t.Fatalf("levels = %d, want %d", len(l.Levels), len(want))
	}
	for i, n := range want {
		if l.Levels[i].Nodes != n {
			t.Fatalf("level %d nodes = %d, want %d", i+1, l.Levels[i].Nodes, n)
		}
	}
	if l.TopLevel() != 4 {
		t.Fatalf("top level %d", l.TopLevel())
	}
}

func TestLayoutStorageOverheadMatchesPaper(t *testing.T) {
	// §3.1: counters cost 1/64 (1.56%), first tree level 1/512 (0.19%),
	// all upper levels ~0.02%, total ~1.78% for a large memory.
	l, err := NewLayout(Params{DataBytes: 1 << 40, CounterArity: 64, TreeArity: 8})
	if err != nil {
		t.Fatal(err)
	}
	ratio := l.OverheadRatio()
	if ratio < 0.0177 || ratio > 0.0180 {
		t.Fatalf("metadata overhead = %.4f%%, want ~1.78%%", ratio*100)
	}
	// Counter level alone is exactly 1/64.
	ctr := float64(l.Levels[0].Nodes*BlockSize) / float64(l.DataBytes)
	if ctr != 1.0/64 {
		t.Fatalf("counter overhead = %v, want 1/64", ctr)
	}
}

func TestLayoutRegionsDisjointAndLocatable(t *testing.T) {
	l := layout4MB(t, []int{2, 2, 3, 5})
	// Walk every region's first and last line; Locate must round-trip.
	type probe struct {
		addr uint64
		want Location
	}
	var probes []probe
	probes = append(probes,
		probe{0, Location{Kind: RegionData, Index: 0}},
		probe{l.DataBytes - BlockSize, Location{Kind: RegionData, Index: l.DataBlocks - 1}},
		probe{l.MACBase, Location{Kind: RegionDataMAC}},
	)
	for _, li := range l.Levels {
		probes = append(probes, probe{l.NodeAddr(li.Level, 0), Location{Kind: RegionMetadata, Level: li.Level}})
		probes = append(probes, probe{l.NodeAddr(li.Level, li.Nodes-1), Location{Kind: RegionMetadata, Level: li.Level, Index: li.Nodes - 1}})
		for c := range li.CloneBases {
			probes = append(probes, probe{l.CloneAddr(li.Level, 1, c), Location{Kind: RegionClone, Level: li.Level, Index: 1, Clone: c}})
		}
	}
	probes = append(probes, probe{l.ShadowEntryAddr(0), Location{Kind: RegionShadow}})
	probes = append(probes, probe{l.ShadowTreeBase, Location{Kind: RegionShadowTree}})
	for _, p := range probes {
		got := l.Locate(p.addr)
		if got.Kind != p.want.Kind || got.Level != p.want.Level || got.Index != p.want.Index || got.Clone != p.want.Clone {
			t.Fatalf("Locate(%#x) = %+v, want %+v", p.addr, got, p.want)
		}
	}
	if l.Total%BlockSize != 0 {
		t.Fatal("total size unaligned")
	}
}

func TestLayoutCloneDepthCap(t *testing.T) {
	_, err := NewLayout(Params{DataBytes: 1 << 20, CounterArity: 64, TreeArity: 8, CloneDepths: []int{6}})
	if err == nil {
		t.Fatal("depth 6 accepted; WPQ bound is 5")
	}
}

func TestParentChildRelations(t *testing.T) {
	l := layout4MB(t, nil)
	// Node (1, 13) has parent (2, 1) slot 5.
	pl, pi, slot, stored := l.Parent(1, 13)
	if pl != 2 || pi != 1 || slot != 5 || !stored {
		t.Fatalf("Parent(1,13) = (%d,%d,%d,%v)", pl, pi, slot, stored)
	}
	// Top level parents are the on-chip root.
	_, _, slot, stored = l.Parent(l.TopLevel(), 1)
	if stored || slot != 1 {
		t.Fatalf("top-level parent = slot %d stored %v", slot, stored)
	}
}

func TestCoverage(t *testing.T) {
	l := layout4MB(t, nil)
	s, e := l.CoverageOf(1, 0)
	if s != 0 || e != 64*BlockSize {
		t.Fatalf("counter block 0 covers [%d,%d)", s, e)
	}
	s, e = l.CoverageOf(2, 1)
	if s != 8*64*BlockSize || e != 2*8*64*BlockSize {
		t.Fatalf("L2 node 1 covers [%d,%d)", s, e)
	}
	// Whole top level covers everything.
	var total uint64
	for i := uint64(0); i < l.Levels[l.TopLevel()-1].Nodes; i++ {
		s, e := l.CoverageOf(l.TopLevel(), i)
		total += e - s
	}
	if total != l.DataBytes {
		t.Fatalf("top level covers %d of %d bytes", total, l.DataBytes)
	}
}

func TestDataMACAddrPacking(t *testing.T) {
	l := layout4MB(t, nil)
	a0, o0 := l.DataMACAddr(0)
	a7, o7 := l.DataMACAddr(7)
	a8, _ := l.DataMACAddr(8)
	if a0 != l.MACBase || o0 != 0 || a7 != a0 || o7 != 56 || a8 != a0+BlockSize {
		t.Fatalf("MAC packing wrong: %d/%d %d/%d %d", a0, o0, a7, o7, a8)
	}
}

func TestNodeSerializeRoundTrip(t *testing.T) {
	f := func(ctrs [8]uint64, mac uint64) bool {
		var n Node
		for i, c := range ctrs {
			n.Counters[i] = c & CounterMask
		}
		n.MAC = mac
		line := n.Serialize()
		back := DeserializeNode(&line)
		return back == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeMACBindsPosition(t *testing.T) {
	e := ctrenc.MustNewEngine([]byte("k"))
	var n Node
	n.Counters[0] = 9
	m := n.ContentMAC(e, 2, 5, 77)
	if n.ContentMAC(e, 3, 5, 77) == m {
		t.Fatal("node MAC ignores level")
	}
	if n.ContentMAC(e, 2, 6, 77) == m {
		t.Fatal("node MAC ignores index")
	}
	if n.ContentMAC(e, 2, 5, 78) == m {
		t.Fatal("node MAC ignores parent counter")
	}
	n.MAC = 123
	if n.ContentMAC(e, 2, 5, 77) != m {
		t.Fatal("stored MAC leaked into content MAC")
	}
}

func TestNodeIncrementWraps(t *testing.T) {
	var n Node
	n.Counters[3] = CounterMask
	n.Increment(3)
	if n.Counters[3] != 0 {
		t.Fatalf("counter did not wrap at %d bits", CounterBits)
	}
}

// mapStore is an in-memory LineStore with optional poisoned addresses.
type mapStore struct {
	m      map[uint64][BlockSize]byte
	poison map[uint64]bool
}

func newMapStore() *mapStore {
	return &mapStore{m: make(map[uint64][BlockSize]byte), poison: make(map[uint64]bool)}
}

func (s *mapStore) ReadLine(addr uint64) ([BlockSize]byte, error) {
	if s.poison[addr] {
		return [BlockSize]byte{}, errors.New("uncorrectable")
	}
	return s.m[addr], nil
}

func (s *mapStore) WriteLine(addr uint64, data *[BlockSize]byte) {
	delete(s.poison, addr)
	s.m[addr] = *data
}

func TestBMTUpdateVerify(t *testing.T) {
	e := ctrenc.MustNewEngine([]byte("bmt"))
	store := newMapStore()
	const leaves = 100
	b, err := NewBMT(e, store, 0, leaves, 64*leaves)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyAll(); err != nil {
		t.Fatalf("fresh tree fails verification: %v", err)
	}
	var l [BlockSize]byte
	l[0] = 0xAA
	if err := b.Update(42, &l); err != nil {
		t.Fatal(err)
	}
	got, err := b.Verify(42)
	if err != nil || got != l {
		t.Fatalf("verify after update: %v", err)
	}
	if err := b.VerifyAll(); err != nil {
		t.Fatalf("tree inconsistent after update: %v", err)
	}
}

func TestBMTDetectsLeafTamper(t *testing.T) {
	e := ctrenc.MustNewEngine([]byte("bmt"))
	store := newMapStore()
	b, err := NewBMT(e, store, 0, 64, 64*64)
	if err != nil {
		t.Fatal(err)
	}
	var l [BlockSize]byte
	l[5] = 7
	if err := b.Update(3, &l); err != nil {
		t.Fatal(err)
	}
	// Tamper directly in the store, bypassing Update.
	raw := store.m[3*64]
	raw[5] ^= 1
	store.m[3*64] = raw
	if _, err := b.Verify(3); err == nil {
		t.Fatal("leaf tamper not detected")
	}
}

func TestBMTDetectsNodeTamperAndReplay(t *testing.T) {
	e := ctrenc.MustNewEngine([]byte("bmt"))
	store := newMapStore()
	treeBase := uint64(64 * 64)
	b, err := NewBMT(e, store, 0, 64, treeBase)
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2 [BlockSize]byte
	v1[0], v2[0] = 1, 2
	if err := b.Update(0, &v1); err != nil {
		t.Fatal(err)
	}
	oldLeaf := store.m[0]
	oldNode := store.m[treeBase]
	if err := b.Update(0, &v2); err != nil {
		t.Fatal(err)
	}
	// Replay the old leaf + matching old internal node: root must
	// catch it (BMT root is eager).
	store.m[0] = oldLeaf
	store.m[treeBase] = oldNode
	if _, err := b.Verify(0); err == nil {
		t.Fatal("replay of old leaf+node not detected by eager root")
	}
}

func TestBMTSurfacesUncorrectable(t *testing.T) {
	e := ctrenc.MustNewEngine([]byte("bmt"))
	store := newMapStore()
	b, err := NewBMT(e, store, 0, 16, 16*64)
	if err != nil {
		t.Fatal(err)
	}
	store.poison[5*64] = true
	if _, err := b.Verify(5); err == nil {
		t.Fatal("uncorrectable leaf not surfaced")
	}
}

func TestBMTStorageLinesMatchesLayout(t *testing.T) {
	for _, n := range []uint64{1, 2, 8, 9, 64, 65, 512, 1000} {
		l, err := NewLayout(Params{DataBytes: 1 << 20, CounterArity: 64, TreeArity: 8, ShadowEntries: n})
		if err != nil {
			t.Fatal(err)
		}
		if l.ShadowTreeLn != BMTStorageLines(n) {
			t.Fatalf("n=%d: layout allocates %d lines, BMT wants %d", n, l.ShadowTreeLn, BMTStorageLines(n))
		}
	}
}

func TestBMTRootSurvivesRebuild(t *testing.T) {
	e := ctrenc.MustNewEngine([]byte("bmt"))
	store := newMapStore()
	b, _ := NewBMT(e, store, 0, 32, 32*64)
	var l [BlockSize]byte
	l[1] = 9
	_ = b.Update(7, &l)
	root := b.Root()
	// Rebuild from the same leaves must reproduce the root.
	b2, _ := NewBMT(e, store, 0, 32, 32*64)
	if b2.Root() != root {
		t.Fatal("rebuild changed the root")
	}
}

// Property: the clone-placement permutation is a bijection for every level
// and clone region (no two nodes share a clone slot).
func TestClonePermutationBijective(t *testing.T) {
	lay, err := NewLayout(Params{
		DataBytes:    2 << 20,
		CounterArity: 64,
		TreeArity:    8,
		CloneDepths:  []int{3, 3, 3, 3, 3, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, li := range lay.Levels {
		for c := range li.CloneBases {
			seen := make(map[uint64]bool, li.Nodes)
			for i := uint64(0); i < li.Nodes; i++ {
				s := lay.CloneSlot(li.Level, i, c)
				if s >= li.Nodes {
					t.Fatalf("L%d clone %d slot %d out of range", li.Level, c, s)
				}
				if seen[s] {
					t.Fatalf("L%d clone %d slot collision at %d", li.Level, c, s)
				}
				seen[s] = true
			}
		}
	}
}

// Property: Locate is the exact inverse of every address generator, for
// both layout flavours.
func TestLocateRoundTripAllRegions(t *testing.T) {
	for _, clonesFirst := range []bool{false, true} {
		lay, err := NewLayout(Params{
			DataBytes:         2 << 20,
			CounterArity:      64,
			TreeArity:         8,
			CloneDepths:       []int{2, 2, 3},
			ShadowEntries:     128,
			RegionAlign:       32 << 10,
			CloneRegionsFirst: clonesFirst,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Data.
		for _, b := range []uint64{0, 1, lay.DataBlocks - 1} {
			loc := lay.Locate(lay.DataBase + b*BlockSize)
			if loc.Kind != RegionData || loc.Index != b {
				t.Fatalf("clonesFirst=%v: data block %d located as %+v", clonesFirst, b, loc)
			}
		}
		// Every node home and every clone, with permutation inversion.
		for _, li := range lay.Levels {
			for _, i := range []uint64{0, 1, li.Nodes / 2, li.Nodes - 1} {
				loc := lay.Locate(lay.NodeAddr(li.Level, i))
				if loc.Kind != RegionMetadata || loc.Level != li.Level || loc.Index != i {
					t.Fatalf("clonesFirst=%v: L%d[%d] home located as %+v", clonesFirst, li.Level, i, loc)
				}
				for c := range li.CloneBases {
					loc := lay.Locate(lay.CloneAddr(li.Level, i, c))
					if loc.Kind != RegionClone || loc.Level != li.Level || loc.Index != i || loc.Clone != c {
						t.Fatalf("clonesFirst=%v: L%d[%d] clone %d located as %+v", clonesFirst, li.Level, i, c, loc)
					}
				}
			}
		}
		// Shadow.
		loc := lay.Locate(lay.ShadowEntryAddr(5))
		if loc.Kind != RegionShadow || loc.Index != 5 {
			t.Fatalf("shadow located as %+v", loc)
		}
	}
}

// CloneRegionsFirst must put every clone below the data region and every
// home copy above it (the opposite-rank property faultsim relies on).
func TestCloneRegionsFirstSeparation(t *testing.T) {
	lay, err := NewLayout(Params{
		DataBytes:         2 << 20,
		CounterArity:      64,
		TreeArity:         8,
		CloneDepths:       []int{2, 2, 2},
		CloneRegionsFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lay.DataBase == 0 {
		t.Fatal("data base not displaced by clone regions")
	}
	for _, li := range lay.Levels {
		for c := range li.CloneBases {
			if li.CloneBases[c]+li.Nodes*BlockSize > lay.DataBase {
				t.Fatalf("L%d clone region %d overlaps/exceeds data base", li.Level, c)
			}
		}
		if li.Base < lay.DataBase+lay.DataBytes {
			t.Fatalf("L%d home region below the data region", li.Level)
		}
	}
}
