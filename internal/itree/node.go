package itree

import (
	"encoding/binary"

	"soteria/internal/ctrenc"
)

// CounterBits is the width of each counter in an intermediate ToC node.
// Eight 56-bit counters plus a 64-bit MAC fill exactly one 64-byte line,
// the organization shown in Fig 2.
const CounterBits = 56

// CounterMask masks a ToC counter to its stored width.
const CounterMask = (uint64(1) << CounterBits) - 1

// Node is one intermediate node of the Tree of Counters: one counter per
// child plus an embedded MAC. The MAC covers the node's own counters and is
// keyed by the node's position and its parent's counter for this subtree —
// the inter-level dependency that makes ToC replay-resistant but also, as
// the paper stresses, *not* recomputable from children after an error.
type Node struct {
	Counters [8]uint64 // each at most CounterBits wide
	MAC      uint64
}

// Serialize packs the node into one 64-byte line: eight 7-byte counters
// followed by the 8-byte MAC.
func (n *Node) Serialize() [BlockSize]byte {
	var out [BlockSize]byte
	for i, c := range n.Counters {
		putUint56(out[i*7:(i+1)*7], c&CounterMask)
	}
	binary.LittleEndian.PutUint64(out[56:64], n.MAC)
	return out
}

// DeserializeNode unpacks a 64-byte line into a ToC node.
func DeserializeNode(line *[BlockSize]byte) Node {
	var n Node
	for i := range n.Counters {
		n.Counters[i] = getUint56(line[i*7 : (i+1)*7])
	}
	n.MAC = binary.LittleEndian.Uint64(line[56:64])
	return n
}

// ContentMAC computes the MAC binding the node's counters to its tree
// position (level, index) and the parent counter guarding it. The stored
// MAC field is excluded from the input.
func (n *Node) ContentMAC(e *ctrenc.Engine, level int, index uint64, parentCounter uint64) uint64 {
	body := n.Serialize()
	tweak := uint64(level)<<48 | (index & ((1 << 48) - 1))
	return e.MAC(ctrenc.DomainNode, tweak, parentCounter, body[:56])
}

// Increment bumps the counter in the given child slot, wrapping at the
// stored width. A ToC counter wrap after 2^56 updates is not a security
// event for the tree itself (the parent counter changes too), so unlike
// split-counter minors no re-encryption is triggered.
func (n *Node) Increment(slot int) {
	n.Counters[slot] = (n.Counters[slot] + 1) & CounterMask
}

func putUint56(dst []byte, v uint64) {
	for i := 0; i < 7; i++ {
		dst[i] = byte(v >> uint(8*i))
	}
}

func getUint56(src []byte) uint64 {
	var v uint64
	for i := 0; i < 7; i++ {
		v |= uint64(src[i]) << uint(8*i)
	}
	return v
}
