package itree

import (
	"encoding/binary"
	"fmt"

	"soteria/internal/ctrenc"
	"soteria/internal/telemetry"
)

// LineStore abstracts the NVM the BMT reads and writes. ReadLine returns an
// error for a detected uncorrectable line — the BMT surfaces that to the
// caller instead of silently verifying garbage.
type LineStore interface {
	ReadLine(addr uint64) ([BlockSize]byte, error)
	WriteLine(addr uint64, data *[BlockSize]byte)
}

// BMT is a Bonsai-Merkle-style hash tree over a contiguous run of 64-byte
// leaves: every internal node packs eight 64-bit keyed hashes of its
// children, and the root hash is held on chip. Unlike the ToC, any node is
// recomputable from its children, so the tree supports only eager updates —
// which is exactly why the paper (and Anubis before it) uses a small eager
// BMT to protect the shadow region while the main tree stays a lazy ToC.
type BMT struct {
	eng      *ctrenc.Engine
	store    LineStore
	leafBase uint64
	leaves   uint64
	// levelBase[i] is the NVM address of internal level i (level 0 is
	// nearest the leaves); levelNodes[i] its node count. The last level
	// always has one node.
	levelBase  []uint64
	levelNodes []uint64
	root       uint64 // on-chip root hash
	tel        telemetryHooks

	// leafBuf/nodeBuf are Update scratch. WriteLine is an interface
	// call, so lines routed through it must live somewhere the compiler
	// can prove heap-resident — these BMT-owned buffers — or every
	// update would allocate per level. The BMT is single-goroutine,
	// like the shadow table and controller that drive it.
	leafBuf [BlockSize]byte
	nodeBuf [BlockSize]byte
}

// telemetryHooks holds the BMT's metric handles; nil handles (no registry
// attached) are no-ops.
type telemetryHooks struct {
	updates    *telemetry.Counter
	verifies   *telemetry.Counter
	verifyFail *telemetry.Counter
	rebuilds   *telemetry.Counter
}

// AttachTelemetry registers the eager shadow-tree metrics on r (nil
// detaches).
func (b *BMT) AttachTelemetry(r *telemetry.Registry) {
	if r == nil {
		b.tel = telemetryHooks{}
		return
	}
	b.tel = telemetryHooks{
		updates:    r.Counter("bmt_updates_total"),
		verifies:   r.Counter("bmt_verifies_total"),
		verifyFail: r.Counter("bmt_verify_failures_total"),
		rebuilds:   r.Counter("bmt_rebuilds_total"),
	}
}

// BMTStorageLines returns the number of 64-byte lines a BMT over n leaves
// stores in memory (matching Layout's shadow-tree allocation).
func BMTStorageLines(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	var total uint64
	for c := ceilDiv(n, 8); ; c = ceilDiv(c, 8) {
		total += c
		if c == 1 {
			return total
		}
	}
}

// NewBMT builds a BMT over `leaves` lines starting at leafBase, storing
// internal nodes at treeBase. The tree is initialized from the current leaf
// contents.
func NewBMT(eng *ctrenc.Engine, store LineStore, leafBase, leaves, treeBase uint64) (*BMT, error) {
	if leaves == 0 {
		return nil, fmt.Errorf("itree: BMT needs at least one leaf")
	}
	b := &BMT{eng: eng, store: store, leafBase: leafBase, leaves: leaves}
	cursor := treeBase
	for n := ceilDiv(leaves, 8); ; n = ceilDiv(n, 8) {
		b.levelBase = append(b.levelBase, cursor)
		b.levelNodes = append(b.levelNodes, n)
		cursor += n * BlockSize
		if n == 1 {
			break
		}
	}
	if err := b.Rebuild(); err != nil {
		return nil, err
	}
	return b, nil
}

// AttachBMT builds the BMT's level map over existing storage without
// rebuilding anything, then installs the given root. It is the post-crash
// constructor: the root survived in the processor's persistent register and
// the stored tree nodes are verified against it, never regenerated from
// possibly-tampered leaves.
func AttachBMT(eng *ctrenc.Engine, store LineStore, leafBase, leaves, treeBase uint64, root uint64) (*BMT, error) {
	if leaves == 0 {
		return nil, fmt.Errorf("itree: BMT needs at least one leaf")
	}
	b := &BMT{eng: eng, store: store, leafBase: leafBase, leaves: leaves, root: root}
	cursor := treeBase
	for n := ceilDiv(leaves, 8); ; n = ceilDiv(n, 8) {
		b.levelBase = append(b.levelBase, cursor)
		b.levelNodes = append(b.levelNodes, n)
		cursor += n * BlockSize
		if n == 1 {
			break
		}
	}
	return b, nil
}

// Root returns the on-chip root hash.
func (b *BMT) Root() uint64 { return b.root }

// SetRoot installs a previously saved root (recovery after power loss: the
// root survives in the processor's persistent root register).
func (b *BMT) SetRoot(r uint64) { b.root = r }

// leafHash hashes one leaf line bound to its index.
func (b *BMT) leafHash(index uint64, line *[BlockSize]byte) uint64 {
	return b.eng.MAC(ctrenc.DomainShadowTree, index, 0, line[:])
}

// nodeHash hashes one internal node line bound to (level+1, index).
func (b *BMT) nodeHash(level int, index uint64, line *[BlockSize]byte) uint64 {
	return b.eng.MAC(ctrenc.DomainShadowTree, uint64(level+1)<<56|index, 1, line[:])
}

// Rebuild recomputes the whole tree from the leaves (used at construction
// and by recovery once leaves are restored).
func (b *BMT) Rebuild() error {
	b.tel.rebuilds.Inc()
	prevCount := b.leaves
	hash := func(i uint64) (uint64, error) {
		line, err := b.store.ReadLine(b.leafBase + i*BlockSize)
		if err != nil {
			return 0, err
		}
		return b.leafHash(i, &line), nil
	}
	for lvl := range b.levelBase {
		for node := uint64(0); node < b.levelNodes[lvl]; node++ {
			var line [BlockSize]byte
			for c := 0; c < 8; c++ {
				child := node*8 + uint64(c)
				if child >= prevCount {
					break
				}
				h, err := hash(child)
				if err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(line[c*8:(c+1)*8], h)
			}
			b.store.WriteLine(b.levelBase[lvl]+node*BlockSize, &line)
		}
		prevCount = b.levelNodes[lvl]
		base := b.levelBase[lvl]
		l := lvl
		hash = func(i uint64) (uint64, error) {
			line, err := b.store.ReadLine(base + i*BlockSize)
			if err != nil {
				return 0, err
			}
			return b.nodeHash(l, i, &line), nil
		}
	}
	top, err := b.store.ReadLine(b.levelBase[len(b.levelBase)-1])
	if err != nil {
		return err
	}
	b.root = b.nodeHash(len(b.levelBase)-1, 0, &top)
	return nil
}

// Update writes a leaf and eagerly propagates hashes to the root — the
// BMT's root is always fresh, giving the shadow region a single point of
// verification after a crash.
func (b *BMT) Update(index uint64, line *[BlockSize]byte) error {
	if index >= b.leaves {
		return fmt.Errorf("itree: BMT leaf %d out of range (%d)", index, b.leaves)
	}
	b.tel.updates.Inc()
	b.leafBuf = *line
	b.store.WriteLine(b.leafBase+index*BlockSize, &b.leafBuf)
	h := b.leafHash(index, &b.leafBuf)
	child := index
	for lvl := range b.levelBase {
		nodeIdx := child / 8
		slot := child % 8
		addr := b.levelBase[lvl] + nodeIdx*BlockSize
		var err error
		if b.nodeBuf, err = b.store.ReadLine(addr); err != nil {
			return fmt.Errorf("itree: BMT level %d node %d unreadable: %w", lvl, nodeIdx, err)
		}
		binary.LittleEndian.PutUint64(b.nodeBuf[slot*8:(slot+1)*8], h)
		b.store.WriteLine(addr, &b.nodeBuf)
		h = b.nodeHash(lvl, nodeIdx, &b.nodeBuf)
		child = nodeIdx
	}
	b.root = h
	return nil
}

// Verify checks a leaf's hash chain against the on-chip root. It returns
// the leaf contents when authentic.
func (b *BMT) Verify(index uint64) ([BlockSize]byte, error) {
	if index >= b.leaves {
		return [BlockSize]byte{}, fmt.Errorf("itree: BMT leaf %d out of range (%d)", index, b.leaves)
	}
	b.tel.verifies.Inc()
	leaf, err := b.store.ReadLine(b.leafBase + index*BlockSize)
	if err != nil {
		b.tel.verifyFail.Inc()
		return [BlockSize]byte{}, err
	}
	h := b.leafHash(index, &leaf)
	child := index
	for lvl := range b.levelBase {
		nodeIdx := child / 8
		slot := child % 8
		nodeLine, err := b.store.ReadLine(b.levelBase[lvl] + nodeIdx*BlockSize)
		if err != nil {
			b.tel.verifyFail.Inc()
			return [BlockSize]byte{}, err
		}
		if got := binary.LittleEndian.Uint64(nodeLine[slot*8 : (slot+1)*8]); got != h {
			b.tel.verifyFail.Inc()
			return [BlockSize]byte{}, fmt.Errorf("itree: BMT hash mismatch at level %d node %d slot %d", lvl, nodeIdx, slot)
		}
		h = b.nodeHash(lvl, nodeIdx, &nodeLine)
		child = nodeIdx
	}
	if h != b.root {
		b.tel.verifyFail.Inc()
		return [BlockSize]byte{}, fmt.Errorf("itree: BMT root mismatch")
	}
	return leaf, nil
}

// VerifyAll verifies every leaf; the first failure aborts.
func (b *BMT) VerifyAll() error {
	for i := uint64(0); i < b.leaves; i++ {
		if _, err := b.Verify(i); err != nil {
			return err
		}
	}
	return nil
}
