// Package trace defines the memory-reference trace format that connects
// workload generators to the trace-driven CPU model. A trace is a stream of
// records, each carrying the memory operation, its byte address, and the
// number of non-memory instructions the core executed since the previous
// record.
package trace

// Op is the kind of one trace record.
type Op uint8

// Trace operations.
const (
	// OpRead is a load.
	OpRead Op = iota
	// OpWrite is a store kept in the volatile cache hierarchy until
	// eviction (ordinary, non-persistent data).
	OpWrite
	// OpWritePersist is a store followed by a cache-line write-back
	// (clwb + fence), the idiom persistent-memory applications use; it
	// reaches the memory controller immediately. Whisper-style
	// workloads are built from these.
	OpWritePersist
	// OpBarrier drains the controller's write pending queue (sfence /
	// durability point).
	OpBarrier
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpWritePersist:
		return "persist-write"
	case OpBarrier:
		return "barrier"
	default:
		return "?"
	}
}

// Record is one trace event.
type Record struct {
	Op   Op
	Addr uint64 // byte address; the CPU model aligns it to a line
	Gap  uint32 // non-memory instructions preceding this operation
}

// Generator produces a trace record stream. Generators are deterministic
// for a given seed so experiments are reproducible.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Next fills r with the next record, returning false at
	// end-of-trace. Generators used by the figures are effectively
	// unbounded; the CPU model imposes the instruction budget.
	Next(r *Record) bool
}

// Slice replays a fixed record slice (tests and golden traces).
type Slice struct {
	name string
	recs []Record
	pos  int
}

// NewSlice wraps records in a Generator.
func NewSlice(name string, recs []Record) *Slice {
	return &Slice{name: name, recs: recs}
}

// Name implements Generator.
func (s *Slice) Name() string { return s.name }

// Next implements Generator.
func (s *Slice) Next(r *Record) bool {
	if s.pos >= len(s.recs) {
		return false
	}
	*r = s.recs[s.pos]
	s.pos++
	return true
}

// Reset rewinds the slice for another replay.
func (s *Slice) Reset() { s.pos = 0 }

// Func adapts a closure to the Generator interface.
type Func struct {
	name string
	fn   func(r *Record) bool
}

// NewFunc wraps fn as a named Generator.
func NewFunc(name string, fn func(r *Record) bool) *Func {
	return &Func{name: name, fn: fn}
}

// Name implements Generator.
func (f *Func) Name() string { return f.name }

// Next implements Generator.
func (f *Func) Next(r *Record) bool { return f.fn(r) }
