package trace

import "testing"

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpRead:         "read",
		OpWrite:        "write",
		OpWritePersist: "persist-write",
		OpBarrier:      "barrier",
		Op(99):         "?",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestSliceReplay(t *testing.T) {
	recs := []Record{
		{Op: OpRead, Addr: 64, Gap: 3},
		{Op: OpWrite, Addr: 128, Gap: 1},
	}
	s := NewSlice("demo", recs)
	if s.Name() != "demo" {
		t.Fatal("name")
	}
	var r Record
	for i := range recs {
		if !s.Next(&r) {
			t.Fatalf("ended early at %d", i)
		}
		if r != recs[i] {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if s.Next(&r) {
		t.Fatal("slice did not end")
	}
	s.Reset()
	if !s.Next(&r) || r != recs[0] {
		t.Fatal("reset failed")
	}
}

func TestFuncGenerator(t *testing.T) {
	n := 0
	g := NewFunc("counter", func(r *Record) bool {
		if n >= 3 {
			return false
		}
		r.Addr = uint64(n)
		n++
		return true
	})
	if g.Name() != "counter" {
		t.Fatal("name")
	}
	var r Record
	count := 0
	for g.Next(&r) {
		count++
	}
	if count != 3 {
		t.Fatalf("produced %d records", count)
	}
}
