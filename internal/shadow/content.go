// Anubis-style full-content shadow table (the "SMC shadow" flavour of
// Anubis, Huang & Hua): instead of Soteria's 16-bit counter LSBs, every
// tracked metadata block's complete 64-byte image is persisted alongside a
// header binding it to its home address. Recovery is then near-constant
// work per entry — decode the image, done — with no Osiris trials and no
// stale-copy patching, at the cost of twice the shadow-region footprint and
// two shadow lines per update instead of one. There is no duplicated-half
// resilience: an uncorrectable error in either line loses the entry (the
// documented Anubis trade-off that Soteria's Fig 8b addresses).
package shadow

import (
	"encoding/binary"
	"fmt"

	"soteria/internal/ctrenc"
	"soteria/internal/itree"
	"soteria/internal/nvm"
	"soteria/internal/telemetry"
)

// ContentLinesPerSlot is how many NVM lines one content-table slot
// occupies: a header line (address + content MAC) and the full block image.
const ContentLinesPerSlot = 2

// contentMAC authenticates a tracked block's full image, bound to its home
// address. tweak2=1 domain-separates it from the 56-byte half-entry
// ContentMAC (tweak2=0), so a content header can never be confused with a
// Soteria entry MAC.
func contentMAC(e *ctrenc.Engine, addr uint64, content *nvm.Line) uint64 {
	return e.MAC(ctrenc.DomainShadow, addr, 1, content[:])
}

// ContentTable is the Anubis full-content shadow table plus its protecting
// BMT. One slot per metadata-cache way, two lines per slot.
type ContentTable struct {
	eng    *ctrenc.Engine
	store  Store
	base   uint64
	slots  uint64
	bmt    *itree.BMT
	mirror []contentMirror
	stats  Stats
	tel    contentTelemetry
}

type contentMirror struct {
	valid bool
	addr  uint64
}

type contentTelemetry struct {
	entryWrites   *telemetry.Counter
	invalidations *telemetry.Counter
	lostEntries   *telemetry.Counter
}

// AttachTelemetry registers the content-table metrics on r (nil detaches)
// and cascades to the protecting BMT. The series are distinct from the
// Soteria table's so a registry never mixes the two schemes' counts.
func (t *ContentTable) AttachTelemetry(r *telemetry.Registry) {
	if r == nil {
		t.tel = contentTelemetry{}
		t.bmt.AttachTelemetry(nil)
		return
	}
	t.tel = contentTelemetry{
		entryWrites:   r.Counter("shadow_content_entry_writes_total"),
		invalidations: r.Counter("shadow_content_invalidations_total"),
		lostEntries:   r.Counter("shadow_content_lost_entries_total"),
	}
	t.bmt.AttachTelemetry(r)
}

func (t *ContentTable) headerAddr(slot uint64) uint64 {
	return t.base + slot*ContentLinesPerSlot*nvm.LineSize
}

func (t *ContentTable) contentAddr(slot uint64) uint64 {
	return t.headerAddr(slot) + nvm.LineSize
}

func encodeContentHeader(addr uint64, mac uint64) nvm.Line {
	var line nvm.Line
	binary.LittleEndian.PutUint64(line[0:8], addr)
	binary.LittleEndian.PutUint64(line[8:16], mac)
	return line
}

// NewContentTable creates a fresh content table of `slots` slots at base
// (occupying slots*ContentLinesPerSlot lines), with its BMT at treeBase;
// all slots start invalid.
func NewContentTable(eng *ctrenc.Engine, store Store, base uint64, slots uint64, treeBase uint64) (*ContentTable, error) {
	if slots == 0 {
		return nil, fmt.Errorf("shadow: need at least one content slot")
	}
	t := &ContentTable{
		eng:    eng,
		store:  store,
		base:   base,
		slots:  slots,
		mirror: make([]contentMirror, slots),
	}
	var zero nvm.Line
	invalid := encodeContentHeader(invalidAddr, 0)
	for i := uint64(0); i < slots; i++ {
		store.WriteLine(t.headerAddr(i), &invalid)
		store.WriteLine(t.contentAddr(i), &zero)
	}
	bmt, err := itree.NewBMT(eng, store, base, slots*ContentLinesPerSlot, treeBase)
	if err != nil {
		return nil, err
	}
	t.bmt = bmt
	return t, nil
}

// AttachContent reconnects to an existing content table after a crash,
// using the BMT root that survived on chip. No writes are performed.
func AttachContent(eng *ctrenc.Engine, store Store, base uint64, slots uint64, treeBase uint64, root uint64) (*ContentTable, error) {
	bmt, err := itree.AttachBMT(eng, store, base, slots*ContentLinesPerSlot, treeBase, root)
	if err != nil {
		return nil, err
	}
	return &ContentTable{
		eng:    eng,
		store:  store,
		base:   base,
		slots:  slots,
		bmt:    bmt,
		mirror: make([]contentMirror, slots),
	}, nil
}

// Root returns the BMT root that must be kept in a persistent on-chip
// register across power loss.
func (t *ContentTable) Root() uint64 { return t.bmt.Root() }

// Stats returns a copy of the activity counters (HalfRepairs is always
// zero: the content table has no duplicated halves to repair from).
func (t *ContentTable) Stats() Stats { return t.stats }

// Slots returns the number of content-table slots.
func (t *ContentTable) Slots() uint64 { return t.slots }

// Write records the full image of the tracked block at addr in slot i: the
// content line, then the header binding it (two NVM line writes plus their
// eager BMT updates, which mostly coalesce in the WPQ).
func (t *ContentTable) Write(slot int, addr uint64, content *nvm.Line) error {
	if uint64(slot) >= t.slots {
		return fmt.Errorf("shadow: content slot %d out of range (%d)", slot, t.slots)
	}
	if err := t.bmt.Update(uint64(slot)*ContentLinesPerSlot+1, content); err != nil {
		return err
	}
	header := encodeContentHeader(addr, contentMAC(t.eng, addr, content))
	if err := t.bmt.Update(uint64(slot)*ContentLinesPerSlot, &header); err != nil {
		return err
	}
	t.mirror[slot] = contentMirror{valid: true, addr: addr}
	t.stats.EntryWrites++
	t.tel.entryWrites.Inc()
	return nil
}

// Invalidate clears slot i if it is currently valid (skipping the write
// when the in-memory mirror already shows it invalid). Only the header is
// rewritten; the stale image it no longer vouches for is unreachable.
func (t *ContentTable) Invalidate(slot int) error {
	if uint64(slot) >= t.slots {
		return fmt.Errorf("shadow: content slot %d out of range (%d)", slot, t.slots)
	}
	if !t.mirror[slot].valid {
		return nil
	}
	header := encodeContentHeader(invalidAddr, 0)
	if err := t.bmt.Update(uint64(slot)*ContentLinesPerSlot, &header); err != nil {
		return err
	}
	t.mirror[slot] = contentMirror{}
	t.stats.Invalidations++
	t.tel.invalidations.Inc()
	return nil
}

// Load reads slot i after a crash, verifying both lines against the BMT
// and the image against its header MAC. It returns ok=false (with no
// error) for intact-but-invalid slots, and an error when the entry is
// unrecoverable (there is no half-repair: any dead line loses the entry).
func (t *ContentTable) Load(slot uint64) (addr uint64, content nvm.Line, ok bool, err error) {
	if slot >= t.slots {
		return 0, content, false, fmt.Errorf("shadow: content slot %d out of range (%d)", slot, t.slots)
	}
	header, err := t.bmt.Verify(slot * ContentLinesPerSlot)
	if err != nil {
		t.stats.LostEntries++
		t.tel.lostEntries.Inc()
		return 0, content, false, fmt.Errorf("shadow: content slot %d header: %w", slot, err)
	}
	addr = binary.LittleEndian.Uint64(header[0:8])
	if addr == invalidAddr {
		t.mirror[slot] = contentMirror{}
		return 0, content, false, nil
	}
	content, err = t.bmt.Verify(slot*ContentLinesPerSlot + 1)
	if err != nil {
		t.stats.LostEntries++
		t.tel.lostEntries.Inc()
		return 0, content, false, fmt.Errorf("shadow: content slot %d image: %w", slot, err)
	}
	if contentMAC(t.eng, addr, &content) != binary.LittleEndian.Uint64(header[8:16]) {
		t.stats.LostEntries++
		t.tel.lostEntries.Inc()
		return 0, content, false, fmt.Errorf("shadow: content slot %d image fails header MAC", slot)
	}
	// Keep the volatile mirror in sync with what was actually read, so
	// post-crash invalidations are not suppressed by a stale mirror.
	t.mirror[slot] = contentMirror{valid: true, addr: addr}
	return addr, content, true, nil
}

// ValidSlots lists every slot whose in-memory mirror currently holds a
// valid entry.
func (t *ContentTable) ValidSlots() []uint64 {
	var out []uint64
	for i := uint64(0); i < t.slots; i++ {
		if t.mirror[i].valid {
			out = append(out, i)
		}
	}
	return out
}

// ContentSlotEntry pairs a recovered block image with the slot it was read
// from and its home address.
type ContentSlotEntry struct {
	Slot uint64
	Addr uint64
	Line nvm.Line
}

// LoadAllSlots returns every valid entry (with its slot) plus the slots
// that could not be recovered.
func (t *ContentTable) LoadAllSlots() (entries []ContentSlotEntry, lost []uint64) {
	for i := uint64(0); i < t.slots; i++ {
		addr, line, ok, err := t.Load(i)
		if err != nil {
			lost = append(lost, i)
			continue
		}
		if ok {
			entries = append(entries, ContentSlotEntry{Slot: i, Addr: addr, Line: line})
		}
	}
	return entries, lost
}

// Reset unconditionally writes an invalid header to the slot, regardless
// of the mirror — used by recovery to clear slots whose stored entries are
// stale or unreadable before the tracked blocks are re-seeded.
func (t *ContentTable) Reset(slot uint64) error {
	if slot >= t.slots {
		return fmt.Errorf("shadow: content slot %d out of range (%d)", slot, t.slots)
	}
	header := encodeContentHeader(invalidAddr, 0)
	if err := t.bmt.Update(slot*ContentLinesPerSlot, &header); err != nil {
		return err
	}
	t.mirror[slot] = contentMirror{}
	t.stats.Invalidations++
	t.tel.invalidations.Inc()
	return nil
}
