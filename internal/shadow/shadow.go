// Package shadow implements the Anubis shadow table with Soteria's
// resilience modifications (Fig 8 of the paper).
//
// The shadow table lives in NVM and has one 64-byte entry per (set, way)
// slot of the volatile metadata cache. Whenever a metadata block is
// modified in the cache, its slot's shadow entry is (re)written with the
// block's home address, the 16-bit LSBs of its counters, and a MAC over the
// block's current content. After a crash, recovery reads the shadow table,
// reconstructs each tracked block from its stale memory copy plus the LSBs,
// and checks the MAC — restoring the metadata cache's effects without
// walking the whole tree.
//
// Soteria's change (Fig 8b): each entry is stored as two identical 32-byte
// halves that land in different ECC codewords, so an uncorrectable error in
// one codeword is repaired by copying the surviving half; and the counter
// LSBs shrink from Anubis's 49 bits to 16 bits to make the duplication fit.
// The whole region is protected against replay by a small, eagerly updated
// BMT whose root stays on chip.
package shadow

import (
	"encoding/binary"
	"fmt"

	"soteria/internal/ctrenc"
	"soteria/internal/itree"
	"soteria/internal/nvm"
	"soteria/internal/telemetry"
)

// HalfSize is the size of one duplicated entry half: address (8) +
// eight 16-bit counter LSBs (16) + MAC (8).
const HalfSize = 32

// invalidAddr marks an unoccupied shadow slot.
const invalidAddr = ^uint64(0)

// Entry is the decoded form of one shadow-table slot.
type Entry struct {
	// Valid is false for unoccupied slots.
	Valid bool
	// Addr is the home NVM address of the tracked metadata block.
	Addr uint64
	// LSBs holds the low 16 bits of the block's eight ToC counters; for
	// leaf counter blocks only LSBs[0] is used (major counter LSBs) —
	// minors are recovered by the Osiris data-MAC trials.
	LSBs [8]uint16
	// MAC authenticates the tracked block's current (in-cache) content.
	MAC uint64
}

// ContentMAC computes the MAC stored in shadow entries: a keyed MAC over
// the block's serialized content (the 56 content bytes, excluding the
// block's own stored MAC field) bound to its home address.
func ContentMAC(e *ctrenc.Engine, addr uint64, serialized *[nvm.LineSize]byte) uint64 {
	return e.MAC(ctrenc.DomainShadow, addr, 0, serialized[:56])
}

func (e Entry) serializeHalf() [HalfSize]byte {
	var h [HalfSize]byte
	if !e.Valid {
		binary.LittleEndian.PutUint64(h[0:8], invalidAddr)
		return h
	}
	binary.LittleEndian.PutUint64(h[0:8], e.Addr)
	for i, v := range e.LSBs {
		binary.LittleEndian.PutUint16(h[8+i*2:10+i*2], v)
	}
	binary.LittleEndian.PutUint64(h[24:32], e.MAC)
	return h
}

func decodeHalf(h []byte) Entry {
	addr := binary.LittleEndian.Uint64(h[0:8])
	if addr == invalidAddr {
		return Entry{}
	}
	e := Entry{Valid: true, Addr: addr}
	for i := range e.LSBs {
		e.LSBs[i] = binary.LittleEndian.Uint16(h[8+i*2 : 10+i*2])
	}
	e.MAC = binary.LittleEndian.Uint64(h[24:32])
	return e
}

// Store is the NVM access the shadow table needs: ordinary line I/O for
// the BMT, plus raw access with per-codeword error attribution for the
// half-repair path.
type Store interface {
	itree.LineStore
	// ReadRaw returns the raw cell contents plus the list of 8-byte
	// words whose ECC decode failed and whether the line as a whole is
	// uncorrectable.
	ReadRaw(addr uint64) (line nvm.Line, badWords []int, uncorrectable bool)
}

// Stats counts shadow-table activity.
type Stats struct {
	EntryWrites   uint64
	Invalidations uint64
	HalfRepairs   uint64
	LostEntries   uint64
}

// Table is the shadow table plus its protecting BMT.
type Table struct {
	eng    *ctrenc.Engine
	store  Store
	base   uint64
	slots  uint64
	bmt    *itree.BMT
	duped  bool // Soteria duplicated halves (vs Anubis single copy)
	norep  bool // debug: skip half-repair (Options.DisableHalfRepair)
	mirror []Entry
	stats  Stats
	tel    telemetryHooks
}

// telemetryHooks holds the table's metric handles; nil handles (no
// registry attached) are no-ops.
type telemetryHooks struct {
	entryWrites   *telemetry.Counter
	invalidations *telemetry.Counter
	halfRepairs   *telemetry.Counter
	lostEntries   *telemetry.Counter
}

// AttachTelemetry registers the shadow-table metrics on r (nil detaches)
// and cascades to the protecting BMT.
func (t *Table) AttachTelemetry(r *telemetry.Registry) {
	if r == nil {
		t.tel = telemetryHooks{}
		t.bmt.AttachTelemetry(nil)
		return
	}
	t.tel = telemetryHooks{
		entryWrites:   r.Counter("shadow_entry_writes_total"),
		invalidations: r.Counter("shadow_invalidations_total"),
		halfRepairs:   r.Counter("shadow_half_repairs_total"),
		lostEntries:   r.Counter("shadow_lost_entries_total"),
	}
	t.bmt.AttachTelemetry(r)
}

// Options configures a Table.
type Options struct {
	// Duplicate enables Soteria's duplicated halves; when false the
	// entry occupies only the first half (Anubis baseline, Fig 8a) and
	// a dead codeword in it loses the entry.
	Duplicate bool
	// DisableHalfRepair is a debug-only fault: Load skips the
	// copy-the-surviving-half repair and treats a half-dead entry as
	// lost. It exists so the chaos harness can prove it detects broken
	// recovery paths; never set it in production configurations.
	DisableHalfRepair bool
}

// NewTable creates a fresh shadow table over `slots` entries at base, with
// its BMT at treeBase; all slots start invalid.
func NewTable(eng *ctrenc.Engine, store Store, base uint64, slots uint64, treeBase uint64, opt Options) (*Table, error) {
	if slots == 0 {
		return nil, fmt.Errorf("shadow: need at least one slot")
	}
	t := &Table{
		eng:    eng,
		store:  store,
		base:   base,
		slots:  slots,
		duped:  opt.Duplicate,
		norep:  opt.DisableHalfRepair,
		mirror: make([]Entry, slots),
	}
	// Initialize all slots to invalid before hanging the BMT over them.
	line := t.encode(Entry{})
	for i := uint64(0); i < slots; i++ {
		store.WriteLine(base+i*nvm.LineSize, &line)
	}
	bmt, err := itree.NewBMT(eng, store, base, slots, treeBase)
	if err != nil {
		return nil, err
	}
	t.bmt = bmt
	return t, nil
}

// Attach reconnects to an existing shadow table after a crash, using the
// BMT root that survived on chip. No writes are performed.
func Attach(eng *ctrenc.Engine, store Store, base uint64, slots uint64, treeBase uint64, root uint64, opt Options) (*Table, error) {
	bmt, err := itree.AttachBMT(eng, store, base, slots, treeBase, root)
	if err != nil {
		return nil, err
	}
	return &Table{
		eng:    eng,
		store:  store,
		base:   base,
		slots:  slots,
		bmt:    bmt,
		duped:  opt.Duplicate,
		norep:  opt.DisableHalfRepair,
		mirror: make([]Entry, slots),
	}, nil
}

// Root returns the BMT root that must be kept in a persistent on-chip
// register across power loss.
func (t *Table) Root() uint64 { return t.bmt.Root() }

// Stats returns a copy of the activity counters.
func (t *Table) Stats() Stats { return t.stats }

// Slots returns the number of shadow slots.
func (t *Table) Slots() uint64 { return t.slots }

func (t *Table) encode(e Entry) nvm.Line {
	var line nvm.Line
	h := e.serializeHalf()
	copy(line[:HalfSize], h[:])
	if t.duped {
		copy(line[HalfSize:], h[:])
	} else if !e.Valid {
		// Keep the second half's address field invalid too so decode
		// of either half is unambiguous.
		binary.LittleEndian.PutUint64(line[HalfSize:HalfSize+8], invalidAddr)
	} else {
		binary.LittleEndian.PutUint64(line[HalfSize:HalfSize+8], invalidAddr)
	}
	return line
}

// Write records entry e in slot i (one NVM line write plus the eager BMT
// update, which mostly coalesces in the WPQ).
func (t *Table) Write(slot int, e Entry) error {
	if uint64(slot) >= t.slots {
		return fmt.Errorf("shadow: slot %d out of range (%d)", slot, t.slots)
	}
	line := t.encode(e)
	if err := t.bmt.Update(uint64(slot), &line); err != nil {
		return err
	}
	t.mirror[slot] = e
	t.stats.EntryWrites++
	t.tel.entryWrites.Inc()
	return nil
}

// Invalidate clears slot i if it is currently valid (skipping the write
// when the in-memory mirror already shows it invalid).
func (t *Table) Invalidate(slot int) error {
	if uint64(slot) >= t.slots {
		return fmt.Errorf("shadow: slot %d out of range (%d)", slot, t.slots)
	}
	if !t.mirror[slot].Valid {
		return nil
	}
	line := t.encode(Entry{})
	if err := t.bmt.Update(uint64(slot), &line); err != nil {
		return err
	}
	t.mirror[slot] = Entry{}
	t.stats.Invalidations++
	t.tel.invalidations.Inc()
	return nil
}

// Load reads slot i after a crash, repairing a half-dead entry from its
// duplicate when possible and verifying the result against the BMT. It
// returns ok=false (with no error) for entries whose slot is intact but
// invalid, and an error when the entry is unrecoverable.
func (t *Table) Load(slot uint64) (Entry, bool, error) {
	if slot >= t.slots {
		return Entry{}, false, fmt.Errorf("shadow: slot %d out of range (%d)", slot, t.slots)
	}
	addr := t.base + slot*nvm.LineSize
	raw, bad, unc := t.store.ReadRaw(addr)
	if unc {
		if !t.duped || t.norep {
			t.stats.LostEntries++
			t.tel.lostEntries.Inc()
			return Entry{}, false, fmt.Errorf("shadow: slot %d uncorrectable and not duplicated", slot)
		}
		lowBad, highBad := false, false
		for _, w := range bad {
			if w < 4 {
				lowBad = true
			} else {
				highBad = true
			}
		}
		if lowBad && highBad {
			t.stats.LostEntries++
			t.tel.lostEntries.Inc()
			return Entry{}, false, fmt.Errorf("shadow: slot %d lost both halves", slot)
		}
		// Copy the surviving half over the dead one; halves are exact
		// duplicates, so this reconstructs the original line.
		if lowBad {
			copy(raw[:HalfSize], raw[HalfSize:])
		} else {
			copy(raw[HalfSize:], raw[:HalfSize])
		}
		t.store.WriteLine(addr, &raw)
		t.stats.HalfRepairs++
		t.tel.halfRepairs.Inc()
	}
	verified, err := t.bmt.Verify(slot)
	if err != nil {
		t.stats.LostEntries++
		t.tel.lostEntries.Inc()
		return Entry{}, false, fmt.Errorf("shadow: slot %d failed BMT verification: %w", slot, err)
	}
	e := decodeHalf(verified[:HalfSize])
	// Keep the volatile mirror in sync with what was actually read, so
	// post-crash invalidations are not suppressed by a stale mirror.
	t.mirror[slot] = e
	if !e.Valid {
		return Entry{}, false, nil
	}
	return e, true, nil
}

// ValidSlots lists every slot whose in-memory mirror currently holds a
// valid entry (after LoadAllSlots, the slots that tracked blocks before
// the crash; during operation, the slots of dirty cached blocks).
func (t *Table) ValidSlots() []uint64 {
	var out []uint64
	for i := uint64(0); i < t.slots; i++ {
		if t.mirror[i].Valid {
			out = append(out, i)
		}
	}
	return out
}

// SlotEntry pairs a recovered entry with the slot it was read from.
type SlotEntry struct {
	Slot  uint64
	Entry Entry
}

// LoadAllSlots returns every valid entry (with its slot) plus the slots
// that could not be recovered.
func (t *Table) LoadAllSlots() (entries []SlotEntry, lost []uint64) {
	for i := uint64(0); i < t.slots; i++ {
		e, ok, err := t.Load(i)
		if err != nil {
			lost = append(lost, i)
			continue
		}
		if ok {
			entries = append(entries, SlotEntry{Slot: i, Entry: e})
		}
	}
	return entries, lost
}

// Reset unconditionally writes an invalid entry to the slot, regardless of
// the mirror — used by recovery to clear slots whose stored entries are
// stale or unreadable before the tracked blocks are re-seeded at (possibly
// different) slots.
func (t *Table) Reset(slot uint64) error {
	if slot >= t.slots {
		return fmt.Errorf("shadow: slot %d out of range (%d)", slot, t.slots)
	}
	line := t.encode(Entry{})
	if err := t.bmt.Update(slot, &line); err != nil {
		return err
	}
	t.mirror[slot] = Entry{}
	t.stats.Invalidations++
	t.tel.invalidations.Inc()
	return nil
}

// LoadAll returns every valid entry recovered from the table, plus the
// slots that could not be recovered.
func (t *Table) LoadAll() (entries []Entry, lost []uint64) {
	for i := uint64(0); i < t.slots; i++ {
		e, ok, err := t.Load(i)
		if err != nil {
			lost = append(lost, i)
			continue
		}
		if ok {
			entries = append(entries, e)
		}
	}
	return entries, lost
}
