package shadow

import (
	"fmt"

	"soteria/internal/ctrenc"
	"soteria/internal/sim"
)

// Checkpoint serializes the table's volatile state: the on-chip BMT root
// register, the slot mirror and the statistics. The stored lines themselves
// live in the NVM device, checkpointed by its owner.
func (t *Table) Checkpoint(w *sim.SnapW) {
	w.U64(t.base)
	w.U64(t.slots)
	w.Bool(t.duped)
	w.Bool(t.norep)
	w.U64(t.bmt.Root())
	checkpointStats(w, &t.stats)
	for _, e := range t.mirror {
		w.Bool(e.Valid)
		if !e.Valid {
			continue
		}
		w.U64(e.Addr)
		for _, v := range e.LSBs {
			w.U16(v)
		}
		w.U64(e.MAC)
	}
}

// RestoreTable rebuilds a Table from a Checkpoint, attaching to the (already
// restored) NVM image through store.
func RestoreTable(eng *ctrenc.Engine, store Store, base uint64, slots uint64, treeBase uint64, opt Options, r *sim.SnapR) (*Table, error) {
	if b := r.U64(); b != base {
		return nil, fmt.Errorf("shadow: checkpoint base %#x, layout has %#x", b, base)
	}
	if s := r.U64(); s != slots {
		return nil, fmt.Errorf("shadow: checkpoint slots %d, layout has %d", s, slots)
	}
	if d := r.Bool(); d != opt.Duplicate {
		return nil, fmt.Errorf("shadow: checkpoint duplicate=%v, options have %v", d, opt.Duplicate)
	}
	if n := r.Bool(); n != opt.DisableHalfRepair {
		return nil, fmt.Errorf("shadow: checkpoint norepair=%v, options have %v", n, opt.DisableHalfRepair)
	}
	root := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	t, err := Attach(eng, store, base, slots, treeBase, root, opt)
	if err != nil {
		return nil, err
	}
	restoreStats(r, &t.stats)
	for i := range t.mirror {
		if !r.Bool() {
			continue
		}
		e := Entry{Valid: true, Addr: r.U64()}
		for j := range e.LSBs {
			e.LSBs[j] = r.U16()
		}
		e.MAC = r.U64()
		t.mirror[i] = e
	}
	return t, r.Err()
}

// Checkpoint serializes the content table's volatile state (root register,
// mirror, statistics).
func (t *ContentTable) Checkpoint(w *sim.SnapW) {
	w.U64(t.base)
	w.U64(t.slots)
	w.U64(t.bmt.Root())
	checkpointStats(w, &t.stats)
	for _, e := range t.mirror {
		w.Bool(e.valid)
		if e.valid {
			w.U64(e.addr)
		}
	}
}

// RestoreContentTable rebuilds a ContentTable from a Checkpoint, attaching
// to the (already restored) NVM image through store.
func RestoreContentTable(eng *ctrenc.Engine, store Store, base uint64, slots uint64, treeBase uint64, r *sim.SnapR) (*ContentTable, error) {
	if b := r.U64(); b != base {
		return nil, fmt.Errorf("shadow: content checkpoint base %#x, layout has %#x", b, base)
	}
	if s := r.U64(); s != slots {
		return nil, fmt.Errorf("shadow: content checkpoint slots %d, layout has %d", s, slots)
	}
	root := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	t, err := AttachContent(eng, store, base, slots, treeBase, root)
	if err != nil {
		return nil, err
	}
	restoreStats(r, &t.stats)
	for i := range t.mirror {
		if r.Bool() {
			t.mirror[i] = contentMirror{valid: true, addr: r.U64()}
		}
	}
	return t, r.Err()
}

func checkpointStats(w *sim.SnapW, s *Stats) {
	w.U64(s.EntryWrites)
	w.U64(s.Invalidations)
	w.U64(s.HalfRepairs)
	w.U64(s.LostEntries)
}

func restoreStats(r *sim.SnapR, s *Stats) {
	s.EntryWrites = r.U64()
	s.Invalidations = r.U64()
	s.HalfRepairs = r.U64()
	s.LostEntries = r.U64()
}
