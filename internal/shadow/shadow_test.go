package shadow

import (
	"errors"
	"testing"

	"soteria/internal/ctrenc"
	"soteria/internal/ecc"
	"soteria/internal/nvm"
)

// devStore adapts an nvm.Device to the shadow.Store interface.
type devStore struct{ dev *nvm.Device }

func (s devStore) ReadLine(addr uint64) ([nvm.LineSize]byte, error) {
	r := s.dev.Read(addr)
	if r.Uncorrectable {
		return r.Data, errors.New("uncorrectable")
	}
	return r.Data, nil
}

func (s devStore) WriteLine(addr uint64, data *[nvm.LineSize]byte) {
	l := nvm.Line(*data)
	s.dev.Write(addr, &l)
}

func (s devStore) ReadRaw(addr uint64) (nvm.Line, []int, bool) {
	r := s.dev.Read(addr)
	if r.Uncorrectable {
		return s.dev.ReadRaw(addr), r.BadWords, true
	}
	return r.Data, nil, false
}

func setup(t *testing.T, dup bool) (*Table, *nvm.Device) {
	t.Helper()
	dev, err := nvm.NewDevice(1<<20, nil) // SECDED added per-test where needed
	if err != nil {
		t.Fatal(err)
	}
	return setupOn(t, dev, dup)
}

func setupOn(t *testing.T, dev *nvm.Device, dup bool) (*Table, *nvm.Device) {
	t.Helper()
	eng := ctrenc.MustNewEngine([]byte("shadow-test"))
	const slots = 32
	treeBase := uint64(slots * nvm.LineSize)
	tb, err := NewTable(eng, devStore{dev}, 0, slots, treeBase, Options{Duplicate: dup})
	if err != nil {
		t.Fatal(err)
	}
	return tb, dev
}

func sampleEntry(addr uint64) Entry {
	e := Entry{Valid: true, Addr: addr, MAC: 0xCAFEBABE}
	for i := range e.LSBs {
		e.LSBs[i] = uint16(addr) + uint16(i)
	}
	return e
}

func TestWriteLoadRoundTrip(t *testing.T) {
	tb, _ := setup(t, true)
	e := sampleEntry(0x4000)
	if err := tb.Write(3, e); err != nil {
		t.Fatal(err)
	}
	got, ok, err := tb.Load(3)
	if err != nil || !ok {
		t.Fatalf("load: %v %v", ok, err)
	}
	if got != e {
		t.Fatalf("got %+v want %+v", got, e)
	}
	// Untouched slot loads as invalid without error.
	if _, ok, err := tb.Load(4); ok || err != nil {
		t.Fatalf("empty slot: ok=%v err=%v", ok, err)
	}
}

func TestInvalidateSkipsRedundantWrites(t *testing.T) {
	tb, _ := setup(t, true)
	if err := tb.Invalidate(5); err != nil {
		t.Fatal(err)
	}
	if tb.Stats().Invalidations != 0 {
		t.Fatal("invalidating an empty slot should be free")
	}
	_ = tb.Write(5, sampleEntry(0x100))
	if err := tb.Invalidate(5); err != nil {
		t.Fatal(err)
	}
	if tb.Stats().Invalidations != 1 {
		t.Fatal("invalidation not counted")
	}
	if _, ok, _ := tb.Load(5); ok {
		t.Fatal("slot still valid after invalidation")
	}
}

func TestHalfRepairFromDuplicate(t *testing.T) {
	dev, err := nvm.NewDevice(1<<20, secded())
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := setupOn(t, dev, true)
	e := sampleEntry(0x8000)
	if err := tb.Write(7, e); err != nil {
		t.Fatal(err)
	}
	// Kill one codeword in the first half of slot 7's line.
	dev.CorruptWord(7*nvm.LineSize, 1)
	got, ok, err := tb.Load(7)
	if err != nil || !ok || got != e {
		t.Fatalf("half repair failed: %+v ok=%v err=%v", got, ok, err)
	}
	if tb.Stats().HalfRepairs != 1 {
		t.Fatal("repair not counted")
	}
	// Second half damage also recovers.
	dev.CorruptWord(7*nvm.LineSize, 6)
	got, ok, err = tb.Load(7)
	if err != nil || !ok || got != e {
		t.Fatalf("second-half repair failed: %v", err)
	}
}

func TestBothHalvesDeadIsLost(t *testing.T) {
	dev, err := nvm.NewDevice(1<<20, secded())
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := setupOn(t, dev, true)
	_ = tb.Write(2, sampleEntry(0x40))
	dev.CorruptWord(2*nvm.LineSize, 0)
	dev.CorruptWord(2*nvm.LineSize, 5)
	_, _, err = tb.Load(2)
	if err == nil {
		t.Fatal("entry with both halves dead recovered")
	}
	if tb.Stats().LostEntries != 1 {
		t.Fatal("loss not counted")
	}
}

func TestAnubisBaselineLosesEntryOnUncorrectable(t *testing.T) {
	dev, err := nvm.NewDevice(1<<20, secded())
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := setupOn(t, dev, false)
	_ = tb.Write(2, sampleEntry(0x40))
	dev.CorruptWord(2*nvm.LineSize, 0)
	if _, _, err := tb.Load(2); err == nil {
		t.Fatal("non-duplicated entry with dead codeword recovered")
	}
}

func TestReplayOfOldEntryDetectedByBMT(t *testing.T) {
	tb, dev := setup(t, true)
	e1 := sampleEntry(0x1000)
	e2 := sampleEntry(0x2000)
	_ = tb.Write(9, e1)
	old := dev.ReadRaw(9 * nvm.LineSize)
	_ = tb.Write(9, e2)
	// Attacker replays the old entry line.
	dev.Write(9*nvm.LineSize, &old)
	if _, _, err := tb.Load(9); err == nil {
		t.Fatal("replayed shadow entry passed BMT verification")
	}
}

func TestAttachAfterCrashRecoversEntries(t *testing.T) {
	tb, dev := setup(t, true)
	eng := ctrenc.MustNewEngine([]byte("shadow-test"))
	for i := 0; i < 10; i++ {
		if err := tb.Write(i, sampleEntry(uint64(i)*0x40)); err != nil {
			t.Fatal(err)
		}
	}
	root := tb.Root()
	// "Crash": all volatile state gone; reattach from NVM + saved root.
	tb2, err := Attach(eng, devStore{dev}, 0, tb.Slots(), tb.Slots()*nvm.LineSize, root, Options{Duplicate: true})
	if err != nil {
		t.Fatal(err)
	}
	entries, lost := tb2.LoadAll()
	if len(lost) != 0 {
		t.Fatalf("lost slots: %v", lost)
	}
	if len(entries) != 10 {
		t.Fatalf("recovered %d entries, want 10", len(entries))
	}
	for i, e := range entries {
		if e.Addr != uint64(i)*0x40 {
			t.Fatalf("entry %d addr %#x", i, e.Addr)
		}
	}
}

func TestContentMACBindsAddress(t *testing.T) {
	eng := ctrenc.MustNewEngine([]byte("x"))
	var line [nvm.LineSize]byte
	line[0] = 1
	if ContentMAC(eng, 0x40, &line) == ContentMAC(eng, 0x80, &line) {
		t.Fatal("shadow MAC ignores address")
	}
	// Stored-MAC bytes (56..63) must not affect the content MAC.
	m := ContentMAC(eng, 0x40, &line)
	line[60] = 0xFF
	if ContentMAC(eng, 0x40, &line) != m {
		t.Fatal("shadow MAC covers the stored MAC field")
	}
}

func secded() ecc.Codec { return ecc.SECDED{} }

func TestBothHalvesFaultedAcrossLoads(t *testing.T) {
	// Both halves faulted, but in separate codewords of each half:
	// word 0 (half one) and word 7 (half two) dead means neither half
	// survives intact, so the entry is unrecoverable even with
	// duplication — and must be reported as lost, not silently dropped.
	dev, err := nvm.NewDevice(1<<20, secded())
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := setupOn(t, dev, true)
	if err := tb.Write(9, sampleEntry(0x1000)); err != nil {
		t.Fatal(err)
	}
	dev.CorruptWord(9*nvm.LineSize, 0)
	dev.CorruptWord(9*nvm.LineSize, 7)
	if _, _, err := tb.Load(9); err == nil {
		t.Fatal("entry with faults in both halves recovered")
	}
	if got := tb.Stats().LostEntries; got != 1 {
		t.Fatalf("LostEntries = %d, want 1", got)
	}
	// Other slots stay loadable: the loss is contained to one entry.
	if err := tb.Write(10, sampleEntry(0x2000)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tb.Load(10); err != nil || !ok {
		t.Fatalf("unrelated slot affected: ok=%v err=%v", ok, err)
	}
}

func TestDisableHalfRepairDropsRecoverableEntry(t *testing.T) {
	// The debug flag must turn an otherwise-recoverable single-half fault
	// into a lost entry — this is the deliberately-broken recovery the
	// chaos harness proves it can catch.
	dev, err := nvm.NewDevice(1<<20, secded())
	if err != nil {
		t.Fatal(err)
	}
	eng := ctrenc.MustNewEngine([]byte("shadow-test"))
	const slots = 32
	treeBase := uint64(slots * nvm.LineSize)
	tb, err := NewTable(eng, devStore{dev}, 0, slots, treeBase,
		Options{Duplicate: true, DisableHalfRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Write(3, sampleEntry(0x600)); err != nil {
		t.Fatal(err)
	}
	dev.CorruptWord(3*nvm.LineSize, 1)
	if _, _, err := tb.Load(3); err == nil {
		t.Fatal("half-dead entry recovered despite DisableHalfRepair")
	}
	if got := tb.Stats().LostEntries; got != 1 {
		t.Fatalf("LostEntries = %d, want 1", got)
	}
	if got := tb.Stats().HalfRepairs; got != 0 {
		t.Fatalf("HalfRepairs = %d, want 0", got)
	}
}
