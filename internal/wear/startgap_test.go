package wear

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRejectsBadParams(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Fatal("zero lines accepted")
	}
	if _, err := New(10, 0); err == nil {
		t.Fatal("zero psi accepted")
	}
}

func TestInitialMappingIsIdentity(t *testing.T) {
	sg, _ := New(8, 100)
	for la := uint64(0); la < 8; la++ {
		if pa := sg.Translate(la); pa != la {
			t.Fatalf("Translate(%d) = %d before any movement", la, pa)
		}
	}
	if sg.PhysicalLines() != 9 {
		t.Fatal("spare line missing")
	}
}

// The fundamental invariant: the mapping is injective at all times, and a
// simulated store accessed through the mapping never loses data across any
// number of gap movements.
func TestMappingBijectiveAndDataPreserving(t *testing.T) {
	const n, psi = 37, 3 // odd size, frequent movement
	store := make([][64]byte, n+1)
	r, err := NewRegion(n, psi, func(p uint64) [64]byte { return store[p] },
		func(p uint64, d *[64]byte) { store[p] = *d })
	if err != nil {
		t.Fatal(err)
	}
	expect := make(map[uint64][64]byte)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		la := uint64(rng.Intn(n))
		var v [64]byte
		rng.Read(v[:8])
		r.Write(la, &v)
		expect[la] = v
		// Injectivity check (cheap: n is small).
		seen := map[uint64]bool{}
		for x := uint64(0); x < n; x++ {
			pa := r.StartGapState().Translate(x)
			if pa > n {
				t.Fatalf("physical %d out of range", pa)
			}
			if seen[pa] {
				t.Fatalf("mapping collision at physical %d after %d writes", pa, i+1)
			}
			seen[pa] = true
		}
		// Spot-check a few logical lines every iteration.
		for la, want := range expect {
			if got := r.Read(la); got != want {
				t.Fatalf("data lost at logical %d after %d writes (gap=%d start=%d)",
					la, i+1, r.StartGapState().gap, r.StartGapState().start)
			}
			break // one per iteration keeps the test fast
		}
	}
	// Full final audit.
	for la, want := range expect {
		if got := r.Read(la); got != want {
			t.Fatalf("final audit: logical %d corrupted", la)
		}
	}
}

func TestGapMovementCadence(t *testing.T) {
	sg, _ := New(10, 5)
	moves := 0
	for i := 0; i < 50; i++ {
		if _, need := sg.OnWrite(); need {
			moves++
		}
	}
	if moves != 10 {
		t.Fatalf("moves = %d, want 10 (every 5th write)", moves)
	}
	if sg.Moves() != 10 {
		t.Fatal("move counter wrong")
	}
}

func TestFullRotationReturnsToIdentity(t *testing.T) {
	const n = 8
	sg, _ := New(n, 1)
	// One full rotation = n * (n+1) movements (gap traverses n+1 slots
	// per start increment, n increments to wrap start).
	for sg.start != 0 || sg.gap != n || sg.Moves() == 0 {
		sg.OnWrite()
		if sg.Moves() > 10*n*(n+1) {
			t.Fatal("rotation never returned to the initial state")
		}
	}
	for la := uint64(0); la < n; la++ {
		if sg.Translate(la) != la {
			t.Fatalf("mapping not identity after full rotation")
		}
	}
}

// Start-Gap's purpose: under a write-hot line, wear spreads instead of
// concentrating.
func TestWearSpreadsUnderHotLine(t *testing.T) {
	const n, psi = 64, 4
	wearNo := make([]uint64, n+1)
	wearSG := make([]uint64, n+1)
	store := make([][64]byte, n+1)
	r, _ := NewRegion(n, psi, func(p uint64) [64]byte { return store[p] },
		func(p uint64, d *[64]byte) { wearSG[p]++; store[p] = *d })
	var v [64]byte
	const writes = 50000
	for i := 0; i < writes; i++ {
		// 90% of writes hammer line 7.
		la := uint64(7)
		if i%10 == 0 {
			la = uint64(i/10) % n
		}
		wearNo[la]++ // what a non-leveled memory would see
		r.Write(la, &v)
	}
	noSpread := WearSpread(wearNo)
	sgSpread := WearSpread(wearSG)
	if sgSpread >= noSpread/4 {
		t.Fatalf("start-gap barely helped: spread %.1f vs %.1f unleveled", sgSpread, noSpread)
	}
}

func TestWearSpreadMetric(t *testing.T) {
	if WearSpread(nil) != 0 || WearSpread([]uint64{0, 0}) != 0 {
		t.Fatal("degenerate inputs")
	}
	if got := WearSpread([]uint64{10, 10, 10}); got != 1.0 {
		t.Fatalf("even wear spread = %v", got)
	}
	if got := WearSpread([]uint64{30, 0, 0}); got != 3.0 {
		t.Fatalf("concentrated spread = %v", got)
	}
}

func TestTranslatePanicsOutOfRange(t *testing.T) {
	sg, _ := New(4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sg.Translate(4)
}

// Property: Translate is always within bounds and never equals the gap.
func TestTranslateAvoidsGap(t *testing.T) {
	f := func(writes uint16, la uint16) bool {
		sg, _ := New(16, 1)
		for i := 0; i < int(writes%512); i++ {
			sg.OnWrite()
		}
		pa := sg.Translate(uint64(la % 16))
		return pa <= 16 && pa != sg.gap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
