// Package wear implements Start-Gap wear leveling (Qureshi et al., MICRO
// 2009), the endurance mechanism the paper's related-work section names as
// table stakes for PCM main memories (§2.3, §7). Start-Gap spreads writes
// across a region by slowly rotating the logical-to-physical line mapping:
// the region keeps one spare line (the "gap"); every psi writes the gap
// moves down by one line (copying its neighbour into it), and once the gap
// has traversed the whole region the start pointer advances, shifting every
// logical line's physical home by one.
//
// The package is an address-translation layer: callers ask Translate for
// the physical line of a logical line and report writes via OnWrite, which
// occasionally returns a relocation the caller must perform. It is pure
// bookkeeping — no device access — so it composes with any storage.
package wear

import "fmt"

// Move describes one relocation the caller must perform: copy the line at
// physical index From into physical index To.
type Move struct {
	From, To uint64
}

// StartGap is the wear-leveling state for one region of n logical lines
// mapped onto n+1 physical lines.
type StartGap struct {
	n     uint64 // logical lines
	start uint64 // rotation offset in [0, n)
	gap   uint64 // spare line position in [0, n]
	psi   uint64 // writes between gap movements
	count uint64 // writes since the last movement

	moves uint64 // total relocations performed
}

// New creates a Start-Gap leveler for n logical lines, moving the gap every
// psi writes. The original paper uses psi=100, bounding the write overhead
// at 1%.
func New(n uint64, psi uint64) (*StartGap, error) {
	if n == 0 {
		return nil, fmt.Errorf("wear: region must have at least one line")
	}
	if psi == 0 {
		return nil, fmt.Errorf("wear: psi must be positive")
	}
	return &StartGap{n: n, gap: n, psi: psi}, nil
}

// LogicalLines returns the number of logical lines.
func (s *StartGap) LogicalLines() uint64 { return s.n }

// PhysicalLines returns the number of physical lines (one spare).
func (s *StartGap) PhysicalLines() uint64 { return s.n + 1 }

// Moves returns the number of gap relocations performed so far.
func (s *StartGap) Moves() uint64 { return s.moves }

// Translate maps a logical line index to its current physical line index.
func (s *StartGap) Translate(logical uint64) uint64 {
	if logical >= s.n {
		panic(fmt.Sprintf("wear: logical line %d out of range (%d)", logical, s.n))
	}
	pa := (logical + s.start) % s.n
	if pa >= s.gap {
		pa++
	}
	return pa
}

// OnWrite records one line write. Every psi writes it returns the
// relocation the caller must perform *before* the new mapping takes effect;
// the returned move copies the line below the gap into the gap, then the
// gap adopts the vacated slot.
func (s *StartGap) OnWrite() (Move, bool) {
	s.count++
	if s.count < s.psi {
		return Move{}, false
	}
	s.count = 0
	var m Move
	if s.gap == 0 {
		// Gap wrap: the rotation advances and the gap reopens at the
		// top. Under the new mapping, physical slot 0 must hold the
		// logical line currently stored in slot n, so the wrap step
		// copies top to bottom.
		m = Move{From: s.n, To: 0}
		s.start = (s.start + 1) % s.n
		s.gap = s.n
		s.moves++
		return m, true
	}
	m = Move{From: s.gap - 1, To: s.gap}
	s.gap--
	s.moves++
	return m, true
}

// WearSpread is a convenience metric for tests and ablations: given
// per-physical-line write counts, it returns max/mean — 1.0 is perfectly
// even wear.
func WearSpread(writes []uint64) float64 {
	if len(writes) == 0 {
		return 0
	}
	var sum, max uint64
	for _, w := range writes {
		sum += w
		if w > max {
			max = w
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(writes))
	return float64(max) / mean
}

// Region couples a StartGap with a line-granular store, performing the
// relocations itself — the form the memory controller would embed.
type Region struct {
	sg    *StartGap
	read  func(physical uint64) [64]byte
	write func(physical uint64, data *[64]byte)
}

// NewRegion wraps a store with wear leveling.
func NewRegion(n, psi uint64, read func(uint64) [64]byte, write func(uint64, *[64]byte)) (*Region, error) {
	sg, err := New(n, psi)
	if err != nil {
		return nil, err
	}
	return &Region{sg: sg, read: read, write: write}, nil
}

// StartGapState exposes the embedded leveler (stats, translation).
func (r *Region) StartGapState() *StartGap { return r.sg }

// Read fetches a logical line.
func (r *Region) Read(logical uint64) [64]byte {
	return r.read(r.sg.Translate(logical))
}

// Write stores a logical line, performing any due gap relocation.
func (r *Region) Write(logical uint64, data *[64]byte) {
	r.write(r.sg.Translate(logical), data)
	if m, need := r.sg.OnWrite(); need {
		v := r.read(m.From)
		r.write(m.To, &v)
	}
}
