package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: soteria
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable2CloneDepths-8    	     100	    123456 ns/op
BenchmarkFig11UDR         	       1	3308909588 ns/op	      1305 baseline-UDR-e9	         0.7583 sac-UDR-e9
BenchmarkFaultSweepRunner 	       1	2432794168 ns/op	      4111 trials/s
PASS
ok  	soteria	5.746s
`

func TestParseSample(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "soteria" {
		t.Fatalf("header = %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(rep.Benchmarks))
	}

	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkTable2CloneDepths" || b0.Procs != 8 || b0.Iters != 100 {
		t.Fatalf("first line parsed as %+v", b0)
	}
	if v, ok := b0.Metric("ns/op"); !ok || v != 123456 {
		t.Fatalf("ns/op = %v, %v", v, ok)
	}

	b1 := rep.Benchmarks[1]
	if b1.Name != "BenchmarkFig11UDR" || b1.Procs != 1 {
		t.Fatalf("second line parsed as %+v", b1)
	}
	if v, ok := b1.Metric("baseline-UDR-e9"); !ok || v != 1305 {
		t.Fatalf("custom metric = %v, %v", v, ok)
	}
	if _, ok := b1.Metric("trials/s"); ok {
		t.Fatal("metric leaked across lines")
	}

	if v, ok := rep.Benchmarks[2].Metric("trials/s"); !ok || v != 4111 {
		t.Fatalf("trials/s = %v, %v", v, ok)
	}
}

func TestParseRejectsMalformedBenchmarkLine(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkBroken 12 nounit\n"))
	if err == nil {
		t.Fatal("malformed line parsed without error")
	}
	if !strings.Contains(err.Error(), "BenchmarkBroken") {
		t.Fatalf("error does not cite the line: %v", err)
	}
}

func TestParseIgnoresChatter(t *testing.T) {
	rep, err := Parse(strings.NewReader("=== RUN TestX\n--- PASS: TestX\nPASS\nok soteria 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %+v, want none", rep.Benchmarks)
	}
}
