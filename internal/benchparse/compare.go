package benchparse

import (
	"fmt"
	"strings"
)

// Delta is one benchmark's movement between a baseline report and a new
// run, compared on a single metric (normally ns/op).
type Delta struct {
	Name  string  `json:"name"`
	Procs int     `json:"procs"`
	Unit  string  `json:"unit"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
	// Ratio is New/Old (1.0 = unchanged). It is 0 when either side is
	// missing or the baseline value is 0.
	Ratio float64 `json:"ratio"`
	// OnlyOld/OnlyNew mark benchmarks present in just one report; such
	// deltas carry no ratio and are never regressions, but a gate may
	// still want to surface them (a vanished benchmark usually means a
	// renamed or deleted gate).
	OnlyOld bool `json:"only_old,omitempty"`
	OnlyNew bool `json:"only_new,omitempty"`
}

// Regressed reports whether this delta is a regression beyond tolerance:
// the new value exceeds the old by more than tolerance (0.20 = 20%).
// Benchmarks present in only one report never regress — Compare's caller
// decides separately how to treat those.
func (d Delta) Regressed(tolerance float64) bool {
	return !d.OnlyOld && !d.OnlyNew && d.Old > 0 && d.Ratio > 1+tolerance
}

// key identifies a benchmark across reports. Procs participates because
// Benchmark-8 and Benchmark-4 lines measure different configurations.
type key struct {
	name  string
	procs int
}

// Compare matches benchmarks between two reports by (name, procs) and
// returns one Delta per benchmark carrying the given metric in either
// report, in baseline order with new-only entries appended. Benchmarks
// that report the metric on one side only are treated as present on that
// side only (a benchmark that stopped reporting ns/op is as suspicious
// as one that vanished).
func Compare(old, new *Report, unit string) []Delta {
	newVals := make(map[key]float64, len(new.Benchmarks))
	newOrder := make([]key, 0, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		if v, ok := b.Metric(unit); ok {
			k := key{b.Name, b.Procs}
			if _, dup := newVals[k]; !dup {
				newVals[k] = v
				newOrder = append(newOrder, k)
			}
		}
	}
	var deltas []Delta
	seen := make(map[key]bool)
	for _, b := range old.Benchmarks {
		ov, ok := b.Metric(unit)
		if !ok {
			continue
		}
		k := key{b.Name, b.Procs}
		if seen[k] {
			continue
		}
		seen[k] = true
		d := Delta{Name: b.Name, Procs: b.Procs, Unit: unit, Old: ov}
		if nv, ok := newVals[k]; ok {
			d.New = nv
			if ov > 0 {
				d.Ratio = nv / ov
			}
		} else {
			d.OnlyOld = true
		}
		deltas = append(deltas, d)
	}
	for _, k := range newOrder {
		if !seen[k] {
			deltas = append(deltas, Delta{
				Name: k.name, Procs: k.procs, Unit: unit,
				New: newVals[k], OnlyNew: true,
			})
		}
	}
	return deltas
}

// FormatDeltas renders deltas as an aligned text table, flagging
// regressions beyond tolerance. The layout is stable so CI logs diff
// cleanly between runs.
func FormatDeltas(deltas []Delta, tolerance float64) string {
	var sb strings.Builder
	w := len("benchmark")
	for _, d := range deltas {
		if len(d.Name) > w {
			w = len(d.Name)
		}
	}
	unit := "value"
	if len(deltas) > 0 {
		unit = deltas[0].Unit
	}
	fmt.Fprintf(&sb, "%-*s  %14s  %14s  %8s\n", w, "benchmark", "old "+unit, "new "+unit, "delta")
	for _, d := range deltas {
		switch {
		case d.OnlyOld:
			fmt.Fprintf(&sb, "%-*s  %14.2f  %14s  %8s  MISSING\n", w, d.Name, d.Old, "-", "-")
		case d.OnlyNew:
			fmt.Fprintf(&sb, "%-*s  %14s  %14.2f  %8s  NEW\n", w, d.Name, "-", d.New, "-")
		default:
			mark := ""
			if d.Regressed(tolerance) {
				mark = "  REGRESSION"
			}
			fmt.Fprintf(&sb, "%-*s  %14.2f  %14.2f  %+7.1f%%%s\n", w, d.Name, d.Old, d.New, (d.Ratio-1)*100, mark)
		}
	}
	return sb.String()
}
