package benchparse

import (
	"math"
	"strings"
	"testing"
)

func report(benches ...Benchmark) *Report { return &Report{Benchmarks: benches} }

func bench(name string, procs int, nsop float64) Benchmark {
	return Benchmark{Name: name, Procs: procs, Iters: 100,
		Metrics: []Metric{{Value: nsop, Unit: "ns/op"}, {Value: 0, Unit: "B/op"}}}
}

func TestCompareMatchesByNameAndProcs(t *testing.T) {
	old := report(bench("BenchmarkA", 8, 100), bench("BenchmarkB", 8, 50), bench("BenchmarkB", 4, 70))
	new := report(bench("BenchmarkB", 8, 40), bench("BenchmarkA", 8, 130), bench("BenchmarkB", 4, 70))
	ds := Compare(old, new, "ns/op")
	if len(ds) != 3 {
		t.Fatalf("got %d deltas, want 3", len(ds))
	}
	// Baseline order preserved.
	if ds[0].Name != "BenchmarkA" || ds[1].Name != "BenchmarkB" || ds[1].Procs != 8 || ds[2].Procs != 4 {
		t.Fatalf("bad order/matching: %+v", ds)
	}
	if math.Abs(ds[0].Ratio-1.3) > 1e-9 || math.Abs(ds[1].Ratio-0.8) > 1e-9 || math.Abs(ds[2].Ratio-1.0) > 1e-9 {
		t.Fatalf("bad ratios: %+v", ds)
	}
}

func TestCompareRegressionTolerance(t *testing.T) {
	old := report(bench("BenchmarkA", 8, 100))
	cases := []struct {
		newNs    float64
		regessed bool
	}{{119, false}, {120, false}, {121, true}, {80, false}}
	for _, c := range cases {
		ds := Compare(old, report(bench("BenchmarkA", 8, c.newNs)), "ns/op")
		if got := ds[0].Regressed(0.20); got != c.regessed {
			t.Errorf("new=%v: Regressed(0.20)=%v, want %v", c.newNs, got, c.regessed)
		}
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	old := report(bench("BenchmarkGone", 8, 100), bench("BenchmarkKept", 8, 10))
	new := report(bench("BenchmarkKept", 8, 10), bench("BenchmarkAdded", 8, 5))
	ds := Compare(old, new, "ns/op")
	if len(ds) != 3 {
		t.Fatalf("got %d deltas, want 3", len(ds))
	}
	if !ds[0].OnlyOld || ds[0].Name != "BenchmarkGone" {
		t.Fatalf("missing benchmark not flagged: %+v", ds[0])
	}
	if !ds[2].OnlyNew || ds[2].Name != "BenchmarkAdded" {
		t.Fatalf("new benchmark not flagged: %+v", ds[2])
	}
	// One-sided deltas never count as regressions.
	if ds[0].Regressed(0) || ds[2].Regressed(0) {
		t.Fatal("one-sided delta reported as regression")
	}
}

func TestCompareSkipsBenchmarksWithoutMetric(t *testing.T) {
	old := report(
		Benchmark{Name: "BenchmarkTrials", Procs: 8, Iters: 1,
			Metrics: []Metric{{Value: 9000, Unit: "trials/s"}}},
		bench("BenchmarkA", 8, 100),
	)
	ds := Compare(old, report(bench("BenchmarkA", 8, 100)), "ns/op")
	if len(ds) != 1 || ds[0].Name != "BenchmarkA" {
		t.Fatalf("metric filter failed: %+v", ds)
	}
}

func TestFormatDeltasFlagsRegressions(t *testing.T) {
	old := report(bench("BenchmarkA", 8, 100), bench("BenchmarkB", 8, 100))
	new := report(bench("BenchmarkA", 8, 150), bench("BenchmarkB", 8, 90))
	out := FormatDeltas(Compare(old, new, "ns/op"), 0.20)
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("regression not flagged:\n%s", out)
	}
	if strings.Count(out, "REGRESSION") != 1 {
		t.Fatalf("expected exactly one flagged row:\n%s", out)
	}
	if !strings.Contains(out, "+50.0%") || !strings.Contains(out, "-10.0%") {
		t.Fatalf("deltas not rendered:\n%s", out)
	}
}
