// Package benchparse parses the text output of `go test -bench` into a
// structured report, for the CI benchmark artifact (cmd/bench2json).
package benchparse

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Metric is one reported quantity of a benchmark run ("ns/op", "trials/s",
// custom b.ReportMetric units, ...).
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iters is the iteration count (the benchtime column).
	Iters int64 `json:"iters"`
	// Metrics preserves the order the line reported them in.
	Metrics []Metric `json:"metrics"`
}

// Report is the parsed output of one `go test -bench` run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Metric returns the named metric of a benchmark (false when absent).
func (b Benchmark) Metric(unit string) (float64, bool) {
	for _, m := range b.Metrics {
		if m.Unit == unit {
			return m.Value, true
		}
	}
	return 0, false
}

// Parse reads `go test -bench` text output. Non-benchmark lines (test
// chatter, PASS/ok trailers) are skipped; header lines fill the Report
// fields. A malformed Benchmark line is an error — silently dropping one
// would make a missing artifact entry look like a deleted benchmark.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	// Name, iterations, then (value, unit) pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, &ParseError{Line: line, Reason: "want name, iters and value/unit pairs"}
	}
	b := Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, &ParseError{Line: line, Reason: "bad iteration count"}
	}
	b.Iters = iters
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, &ParseError{Line: line, Reason: "bad metric value " + fields[i]}
		}
		b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
	}
	return b, nil
}

// ParseError reports an unparseable Benchmark line.
type ParseError struct {
	Line   string
	Reason string
}

func (e *ParseError) Error() string {
	return "benchparse: " + e.Reason + " in line: " + e.Line
}
