// Package config holds the simulation presets used throughout the Soteria
// reproduction. The two exported presets mirror Table 3 (the simulated
// system) and Table 4 (the FaultSim configuration) of the paper.
package config

import (
	"fmt"
	"time"
)

// BlockSize is the cache-line and NVM-line size in bytes used everywhere in
// the system (Table 3: "Cacheline Size 64B").
const BlockSize = 64

// CacheConfig describes one level of a set-associative cache.
type CacheConfig struct {
	// SizeBytes is the total capacity of the cache.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LatencyCycles is the access latency in CPU cycles.
	LatencyCycles int
}

// Sets returns the number of sets implied by the size, associativity and the
// global block size.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (BlockSize * c.Ways)
}

// Validate reports an error when the configuration cannot describe a real
// cache (non power-of-two sets, zero ways, ...).
func (c CacheConfig) Validate() error {
	if c.Ways <= 0 {
		return fmt.Errorf("config: cache ways must be positive, got %d", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(BlockSize*c.Ways) != 0 {
		return fmt.Errorf("config: cache size %d not divisible into %d-way sets of %dB blocks",
			c.SizeBytes, c.Ways, BlockSize)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("config: cache set count %d is not a power of two", sets)
	}
	return nil
}

// NVMConfig describes the timing and geometry of the simulated PCM main
// memory.
type NVMConfig struct {
	// CapacityBytes is the simulated capacity (Table 3: 16 GB).
	CapacityBytes uint64
	// ReadLatency is the PCM array read latency (Table 3: 150 ns).
	ReadLatency time.Duration
	// WriteLatency is the PCM array write latency (Table 3: 300 ns).
	WriteLatency time.Duration
	// Banks is the number of banks the controller can keep busy in
	// parallel.
	Banks int
	// WPQEntries is the capacity of the ADR-protected Write Pending
	// Queue. The paper quotes a minimum of 8 entries (512 B) and a
	// typical range of 8-64.
	WPQEntries int
}

// Validate reports an error for impossible NVM configurations.
func (n NVMConfig) Validate() error {
	if n.CapacityBytes == 0 || n.CapacityBytes%BlockSize != 0 {
		return fmt.Errorf("config: NVM capacity %d must be a positive multiple of %d", n.CapacityBytes, BlockSize)
	}
	if n.Banks <= 0 {
		return fmt.Errorf("config: NVM banks must be positive, got %d", n.Banks)
	}
	if n.WPQEntries <= 0 {
		return fmt.Errorf("config: WPQ entries must be positive, got %d", n.WPQEntries)
	}
	if n.ReadLatency <= 0 || n.WriteLatency <= 0 {
		return fmt.Errorf("config: NVM latencies must be positive")
	}
	return nil
}

// CPUConfig describes the simple trace-driven core model.
type CPUConfig struct {
	// ClockHz is the core frequency (Table 3: 2.67 GHz).
	ClockHz float64
	// Cores is the number of cores whose traces are interleaved.
	Cores int
	// NonMemCPI is the cycles charged per non-memory instruction between
	// two memory references in a trace.
	NonMemCPI float64
}

// SecurityConfig describes the encryption and integrity-protection
// organization (Table 3, "Encryption Parameters").
type SecurityConfig struct {
	// CounterArity is the number of data blocks covered by one split
	// counter block (64-way split counters, VAULT style).
	CounterArity int
	// TreeArity is the arity of the ToC Merkle tree above the counter
	// level (8-ary).
	TreeArity int
	// MetadataCache configures the on-chip metadata cache
	// (Table 3: 512 kB, 8-way).
	MetadataCache CacheConfig
	// MACBits is the width of every MAC in the system (64 bits, matching
	// the paper and prior work).
	MACBits int
	// CounterLSBBits is the number of counter LSBs stored per shadow
	// entry. Anubis used 49; Soteria reduces this to 16 to make room for
	// the duplicated entry halves (Fig 8).
	CounterLSBBits int
}

// SystemConfig aggregates every knob of the performance simulation.
type SystemConfig struct {
	L1       CacheConfig
	L2       CacheConfig
	LLC      CacheConfig
	NVM      NVMConfig
	CPU      CPUConfig
	Security SecurityConfig
}

// Validate checks the full system configuration.
func (s SystemConfig) Validate() error {
	for _, c := range []struct {
		name string
		cfg  CacheConfig
	}{{"L1", s.L1}, {"L2", s.L2}, {"LLC", s.LLC}, {"metadata cache", s.Security.MetadataCache}} {
		if err := c.cfg.Validate(); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
	}
	if err := s.NVM.Validate(); err != nil {
		return err
	}
	if s.CPU.ClockHz <= 0 {
		return fmt.Errorf("config: CPU clock must be positive")
	}
	if s.Security.CounterArity <= 0 || s.Security.TreeArity <= 1 {
		return fmt.Errorf("config: counter arity must be >0 and tree arity >1")
	}
	return nil
}

// Table3 returns the simulated system configuration from Table 3 of the
// paper: 4 out-of-order x86 cores at 2.67 GHz, 32 kB 2-way L1, 512 kB 8-way
// L2, 8 MB 64-way LLC, 16 GB PCM at 150/300 ns, AES counter mode with 64-way
// split counters, an 8-ary ToC tree and a 512 kB 8-way metadata cache.
func Table3() SystemConfig {
	return SystemConfig{
		L1:  CacheConfig{SizeBytes: 32 << 10, Ways: 2, LatencyCycles: 2},
		L2:  CacheConfig{SizeBytes: 512 << 10, Ways: 8, LatencyCycles: 20},
		LLC: CacheConfig{SizeBytes: 8 << 20, Ways: 64, LatencyCycles: 32},
		NVM: NVMConfig{
			CapacityBytes: 16 << 30,
			ReadLatency:   150 * time.Nanosecond,
			WriteLatency:  300 * time.Nanosecond,
			Banks:         16,
			WPQEntries:    32,
		},
		CPU: CPUConfig{ClockHz: 2.67e9, Cores: 4, NonMemCPI: 1.0},
		Security: SecurityConfig{
			CounterArity:   64,
			TreeArity:      8,
			MetadataCache:  CacheConfig{SizeBytes: 512 << 10, Ways: 8, LatencyCycles: 3},
			MACBits:        64,
			CounterLSBBits: 16,
		},
	}
}

// TestSystem returns a scaled-down configuration suitable for functional
// unit tests: identical structure to Table3 but with a small memory and tiny
// caches so that evictions and full-tree walks happen quickly.
func TestSystem() SystemConfig {
	c := Table3()
	c.NVM.CapacityBytes = 4 << 20 // 4 MB
	c.L1 = CacheConfig{SizeBytes: 2 << 10, Ways: 2, LatencyCycles: 2}
	c.L2 = CacheConfig{SizeBytes: 8 << 10, Ways: 4, LatencyCycles: 20}
	c.LLC = CacheConfig{SizeBytes: 32 << 10, Ways: 8, LatencyCycles: 32}
	c.Security.MetadataCache = CacheConfig{SizeBytes: 8 << 10, Ways: 4, LatencyCycles: 3}
	c.NVM.WPQEntries = 16
	return c
}

// DIMMConfig describes the FaultSim DIMM geometry (Table 4).
type DIMMConfig struct {
	// Chips is the total number of DRAM/PCM devices on the DIMM.
	Chips int
	// ChipsPerRank is the number of devices that form one rank
	// (and therefore one ECC codeword).
	ChipsPerRank int
	// BusBits is the data-bus width of a single chip (x8 devices).
	BusBits int
	// Ranks, Banks, Rows, Cols describe the addressable geometry of each
	// chip.
	Ranks, Banks, Rows, Cols int
	// DataBlockBits is the size of one ECC codeword's worth of data
	// (Table 4: 512 bits = 64 B).
	DataBlockBits int
}

// BytesPerBeat returns the number of user-data bytes delivered by one bus
// beat across the data chips of a rank (8 data chips x 8 bits = 8 bytes).
func (d DIMMConfig) BytesPerBeat() int {
	dataChips := d.ChipsPerRank - 1 // one device holds check symbols
	return dataChips * d.BusBits / 8
}

// CapacityBytes returns the user-data capacity of the DIMM.
func (d DIMMConfig) CapacityBytes() uint64 {
	return uint64(d.Ranks) * uint64(d.Banks) * uint64(d.Rows) * uint64(d.Cols) * uint64(d.BytesPerBeat())
}

// Validate reports an error for impossible DIMM geometries.
func (d DIMMConfig) Validate() error {
	if d.Chips != d.ChipsPerRank*d.Ranks {
		return fmt.Errorf("config: chips (%d) != chips/rank (%d) * ranks (%d)", d.Chips, d.ChipsPerRank, d.Ranks)
	}
	if d.Banks <= 0 || d.Rows <= 0 || d.Cols <= 0 || d.BusBits <= 0 {
		return fmt.Errorf("config: DIMM geometry fields must be positive")
	}
	return nil
}

// FaultSimConfig aggregates the reliability-simulation parameters (Table 4).
type FaultSimConfig struct {
	DIMM DIMMConfig
	// Years of simulated lifetime per Monte Carlo trial.
	Years float64
	// Trials is the number of Monte Carlo simulations
	// (Table 4: 1 million).
	Trials int
	// ScrubInterval is the patrol-scrub period that clears transient
	// faults; zero disables scrubbing.
	ScrubInterval time.Duration
}

// Table4 returns the FaultSim configuration from Table 4 of the paper:
// 18 chips (9 per rank, x8), 2 ranks, 16 banks, 16384 rows, 4096 columns,
// Chipkill repair, 512-bit data blocks, 1 million simulations.
func Table4() FaultSimConfig {
	return FaultSimConfig{
		DIMM: DIMMConfig{
			Chips:         18,
			ChipsPerRank:  9,
			BusBits:       8,
			Ranks:         2,
			Banks:         16,
			Rows:          16384,
			Cols:          4096,
			DataBlockBits: 512,
		},
		Years:         5,
		Trials:        1_000_000,
		ScrubInterval: 24 * time.Hour,
	}
}
