package config

import (
	"testing"
	"time"
)

func TestTable3MatchesPaper(t *testing.T) {
	c := Table3()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 3 literals.
	if c.CPU.Cores != 4 || c.CPU.ClockHz != 2.67e9 {
		t.Fatal("CPU config drifted from Table 3")
	}
	if c.L1.SizeBytes != 32<<10 || c.L1.Ways != 2 || c.L1.LatencyCycles != 2 {
		t.Fatal("L1 config drifted")
	}
	if c.L2.SizeBytes != 512<<10 || c.L2.Ways != 8 || c.L2.LatencyCycles != 20 {
		t.Fatal("L2 config drifted")
	}
	if c.LLC.SizeBytes != 8<<20 || c.LLC.Ways != 64 || c.LLC.LatencyCycles != 32 {
		t.Fatal("LLC config drifted")
	}
	if c.NVM.CapacityBytes != 16<<30 {
		t.Fatal("capacity drifted")
	}
	if c.NVM.ReadLatency != 150*time.Nanosecond || c.NVM.WriteLatency != 300*time.Nanosecond {
		t.Fatal("PCM latencies drifted")
	}
	if c.Security.CounterArity != 64 || c.Security.TreeArity != 8 {
		t.Fatal("encryption parameters drifted")
	}
	if c.Security.MetadataCache.SizeBytes != 512<<10 || c.Security.MetadataCache.Ways != 8 {
		t.Fatal("metadata cache drifted")
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	c := Table4()
	if err := c.DIMM.Validate(); err != nil {
		t.Fatal(err)
	}
	d := c.DIMM
	if d.Chips != 18 || d.ChipsPerRank != 9 || d.BusBits != 8 {
		t.Fatal("chip organization drifted from Table 4")
	}
	if d.Ranks != 2 || d.Banks != 16 || d.Rows != 16384 || d.Cols != 4096 {
		t.Fatal("geometry drifted")
	}
	if d.DataBlockBits != 512 {
		t.Fatal("data block drifted")
	}
	if c.Trials != 1_000_000 || c.Years != 5 {
		t.Fatal("simulation scale drifted")
	}
	if d.BytesPerBeat() != 8 {
		t.Fatalf("bytes/beat = %d", d.BytesPerBeat())
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, Ways: 2},
		{SizeBytes: 1024, Ways: 0},
		{SizeBytes: 1000, Ways: 2},       // not divisible
		{SizeBytes: 3 * 64 * 2, Ways: 2}, // 3 sets: not a power of two
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := CacheConfig{SizeBytes: 4096, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Sets() != 16 {
		t.Fatalf("sets = %d", good.Sets())
	}
}

func TestSystemValidationCatchesEachField(t *testing.T) {
	mutations := []func(*SystemConfig){
		func(c *SystemConfig) { c.L1.Ways = 0 },
		func(c *SystemConfig) { c.NVM.CapacityBytes = 100 },
		func(c *SystemConfig) { c.NVM.Banks = 0 },
		func(c *SystemConfig) { c.NVM.WPQEntries = 0 },
		func(c *SystemConfig) { c.NVM.ReadLatency = 0 },
		func(c *SystemConfig) { c.CPU.ClockHz = 0 },
		func(c *SystemConfig) { c.Security.TreeArity = 1 },
	}
	for i, m := range mutations {
		c := Table3()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestDIMMValidation(t *testing.T) {
	d := Table4().DIMM
	d.Chips = 17 // != 9*2
	if err := d.Validate(); err == nil {
		t.Fatal("inconsistent chip count accepted")
	}
}

func TestTestSystemIsValidAndSmall(t *testing.T) {
	c := TestSystem()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NVM.CapacityBytes >= Table3().NVM.CapacityBytes {
		t.Fatal("test system not smaller than Table 3")
	}
}
