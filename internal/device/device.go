// Package device turns the single-threaded memctrl.Controller into a
// thread-safe secure-NVM device service. The address space is sharded by
// line interleaving across N independent controllers — each with its own
// metadata cache, WPQ, telemetry registry and simulated clock — and every
// shard is driven by exactly one goroutine, preserving the controller's
// single-threaded contract while the device as a whole serves concurrent
// traffic.
//
// The concurrency model, in one paragraph: callers Submit requests into
// bounded per-shard queues (backpressure is a typed *BusyError with a
// retry-after hint, never a block); each shard worker drains its queue in
// batches, coalescing adjacent writes to the same line before WPQ
// admission; control operations (Crash, Recover, Flush, VerifyAll) are
// broadcast to every shard and collected in shard order under one
// control mutex, and Crash additionally advances a device-wide epoch so
// data requests admitted before the crash barrier are retired unexecuted
// — the same thing a real power cut does to queued commands.
//
// Determinism: for a fixed per-shard request order the device is fully
// deterministic — each shard's sim clock, controller state and telemetry
// registry depend only on its own stream, and Snapshot merges the
// per-shard registries in shard order. A closed-loop client that keeps at
// most one request in flight per shard therefore produces byte-identical
// telemetry snapshots at any worker count (cmd/loadgen's golden test).
// Batching and coalescing only engage when a queue actually backs up, so
// they never perturb a closed-loop run.
package device

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"soteria/internal/config"
	"soteria/internal/inject"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// Options configures a Device.
type Options struct {
	// System is the per-device system configuration. NVM.CapacityBytes is
	// the device's total data capacity; each shard gets an equal slice
	// (the line count must divide evenly by Shards).
	System config.SystemConfig
	// Mode selects the protection scheme for every shard.
	Mode memctrl.Mode
	// Key is the encryption key (shared across shards; the per-shard
	// address spaces are disjoint, so counters never collide).
	Key []byte
	// Shards is the number of independent controllers (default 1).
	Shards int
	// QueueDepth bounds each shard's request queue (default 64). A full
	// queue rejects submissions with *BusyError.
	QueueDepth int
	// BatchSize bounds how many queued requests one worker iteration
	// drains and coalesces (default 8).
	BatchSize int
	// Ctrl passes through controller options (Osiris limit, ablations).
	Ctrl memctrl.Options
	// Telemetry attaches a per-shard registry to every controller stack;
	// Snapshot merges them in shard order.
	Telemetry bool
}

func (o *Options) fill() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 8
	}
}

// Info describes a running device (served to loadgen over the wire so the
// client can reproduce the shard mapping).
type Info struct {
	Shards        int    `json:"shards"`
	CapacityBytes uint64 `json:"capacity_bytes"`
	Mode          string `json:"mode"`
	QueueDepth    int    `json:"queue_depth"`
	BatchSize     int    `json:"batch_size"`
}

// Device is the sharded, thread-safe secure-NVM service. All exported
// methods are safe for concurrent use.
type Device struct {
	opts   Options
	shards []*shard

	// epoch is the crash-barrier generation. Data requests are stamped at
	// submission; a Crash (or an in-flight power loss) advances it, and
	// workers retire any dequeued request from an older epoch unexecuted.
	epoch atomic.Uint64
	// down is set on power loss or Crash and cleared by Recover; data
	// submissions are rejected while set.
	down atomic.Bool
	// closed is set by Close; checked under subMu so no submission can
	// race past a completed shutdown.
	closed atomic.Bool

	// ctl serializes control-plane operations (Crash/Recover/Flush/
	// VerifyAll/Stats/SetHook/Close) so their shard broadcasts never
	// interleave.
	ctl sync.Mutex
	// subMu guards the submission send: Submit holds it shared for the
	// instant of the channel send; Close holds it exclusively to fence
	// out in-flight senders before stopping the workers.
	subMu sync.RWMutex
	wg    sync.WaitGroup

	// batchPool recycles ExecBatch's per-call scratch (per-shard groups
	// and their reusable requests) so steady-state batched execution
	// allocates nothing.
	batchPool sync.Pool
}

// shardSystem validates the sharding geometry (fill defaults, line
// alignment, even division across shards) and returns the per-shard system
// configuration. Shared by the goroutine Device and the deterministic
// Engine so both hosts agree on the address-space split.
func shardSystem(opts *Options) (config.SystemConfig, error) {
	opts.fill()
	totalLines := opts.System.NVM.CapacityBytes / nvm.LineSize
	if totalLines == 0 || opts.System.NVM.CapacityBytes%nvm.LineSize != 0 {
		return config.SystemConfig{}, fmt.Errorf("device: capacity %d is not a positive multiple of the %d-byte line",
			opts.System.NVM.CapacityBytes, nvm.LineSize)
	}
	if totalLines%uint64(opts.Shards) != 0 {
		return config.SystemConfig{}, fmt.Errorf("device: %d lines do not shard evenly across %d shards", totalLines, opts.Shards)
	}
	shardCfg := opts.System
	shardCfg.NVM.CapacityBytes = opts.System.NVM.CapacityBytes / uint64(opts.Shards)
	return shardCfg, nil
}

// New builds and starts a sharded device. The per-shard capacity is
// System.NVM.CapacityBytes / Shards; the total line count must divide
// evenly.
func New(opts Options) (*Device, error) {
	shardCfg, err := shardSystem(&opts)
	if err != nil {
		return nil, err
	}

	d := &Device{opts: opts, shards: make([]*shard, opts.Shards)}
	for i := range d.shards {
		ctrl, err := memctrl.New(shardCfg, opts.Mode, opts.Key, opts.Ctrl)
		if err != nil {
			return nil, fmt.Errorf("device: shard %d: %w", i, err)
		}
		s := &shard{
			shardCore: shardCore{id: i, env: d, ctrl: ctrl},
			dev:       d,
			reqs:      make(chan *request, opts.QueueDepth),
			batchMax:  opts.BatchSize,
		}
		if opts.Telemetry {
			s.reg = telemetry.NewRegistry()
			ctrl.AttachTelemetry(s.reg)
			s.batches = s.reg.Counter("device_batches_total")
			s.batched = s.reg.Histogram("device_batch_size", telemetry.LinearBounds(1, 1, opts.BatchSize))
			s.coalesced = s.reg.Counter("device_coalesced_writes_total")
			s.busy = s.reg.Counter("device_busy_rejects_total")
			s.retired = s.reg.Counter("device_retired_requests_total")
			s.powerLoss = s.reg.Counter("device_power_losses_total")
		}
		d.shards[i] = s
	}
	for _, s := range d.shards {
		d.wg.Add(1)
		go s.run()
	}
	return d, nil
}

// Info describes the device.
func (d *Device) Info() Info {
	return Info{
		Shards:        d.opts.Shards,
		CapacityBytes: d.opts.System.NVM.CapacityBytes,
		Mode:          d.opts.Mode.String(),
		QueueDepth:    d.opts.QueueDepth,
		BatchSize:     d.opts.BatchSize,
	}
}

// Down reports whether the device is in the post-crash/power-loss state
// where data operations are rejected until Recover — the readiness bit
// health probes expose.
func (d *Device) Down() bool {
	return d.down.Load()
}

// ShardOf maps a device data address to its shard: global line g lives on
// shard g mod Shards (line interleaving, so sequential streams spread
// across all controllers).
func (d *Device) ShardOf(addr uint64) int {
	return shardOf(addr, d.opts.Shards)
}

// localAddr translates a device address to the owning shard's local
// address space: global line g becomes local line g / Shards.
func (d *Device) localAddr(addr uint64) uint64 {
	return toLocalAddr(addr, d.opts.Shards)
}

// GlobalAddr is the inverse mapping: the device address of local line
// index (local/LineSize) on the given shard.
func (d *Device) GlobalAddr(shard int, local uint64) uint64 {
	return ((local/nvm.LineSize)*uint64(d.opts.Shards) + uint64(shard)) * nvm.LineSize
}

func (d *Device) checkAddr(addr uint64) error {
	return checkLineAddr(addr, d.opts.System.NVM.CapacityBytes)
}

// submit enqueues a data-plane request on the owning shard without
// blocking; a full queue returns *BusyError immediately.
func (d *Device) submit(op opcode, addr uint64, data *nvm.Line) response {
	if err := d.checkAddr(addr); err != nil {
		return response{err: err}
	}
	if d.down.Load() {
		return response{err: memctrl.ErrCrashed}
	}
	s := d.shards[d.ShardOf(addr)]
	req := &request{op: op, addr: d.localAddr(addr), data: data, epoch: d.epoch.Load(), resp: make(chan response, 1)}

	d.subMu.RLock()
	if d.closed.Load() {
		d.subMu.RUnlock()
		return response{err: ErrClosed}
	}
	select {
	case s.reqs <- req:
		d.subMu.RUnlock()
	default:
		pending := len(s.reqs)
		d.subMu.RUnlock()
		s.busy.Inc()
		return response{err: &BusyError{Shard: s.id, Pending: pending, RetryAfter: s.retryHint(pending)}}
	}
	return <-req.resp
}

// Read services one 64-byte read. The returned time is the simulated
// latency of the access on its shard's clock.
func (d *Device) Read(addr uint64) (nvm.Line, sim.Time, error) {
	r := d.submit(opRead, addr, nil)
	return r.data, r.latency, r.err
}

// Write services one 64-byte write (encrypt, MAC, shadow log, WPQ on the
// owning shard). data is copied before the call returns.
func (d *Device) Write(addr uint64, data *nvm.Line) (sim.Time, error) {
	line := *data // the request outlives the caller's buffer
	r := d.submit(opWrite, addr, &line)
	return r.latency, r.err
}

// Drain waits until every write accepted by the shard owning addr has
// left its write pending queue (the per-shard sfence). Device-wide
// durability is Flush.
func (d *Device) Drain(addr uint64) error {
	return d.submit(opDrain, addr, nil).err
}

// broadcast sends one control request to every shard (blocking sends: the
// workers are alive and draining) and collects the responses in shard
// order. Callers hold d.ctl.
func (d *Device) broadcast(op opcode, hook []inject.Hook) []response {
	reqs := make([]*request, len(d.shards))
	for i, s := range d.shards {
		reqs[i] = &request{op: op, epoch: d.epoch.Load(), resp: make(chan response, 1)}
		if hook != nil {
			reqs[i].hook = hook[i]
		}
		d.subMu.RLock()
		s.reqs <- reqs[i]
		d.subMu.RUnlock()
	}
	out := make([]response, len(d.shards))
	for i, req := range reqs {
		out[i] = <-req.resp
	}
	return out
}

func firstErr(rs []response) error {
	for _, r := range rs {
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

// Crash cuts power across the whole device: the epoch advances first, so
// every data request still queued behind the barrier is retired
// unexecuted, then each shard's controller drops its volatile state. The
// device rejects data operations until Recover.
func (d *Device) Crash() error {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	d.down.Store(true)
	d.epoch.Add(1)
	return firstErr(d.broadcast(opCrash, nil))
}

// Recover rebuilds every shard after a crash and reports what each one
// reconstructed, in shard order. On success the device accepts data
// operations again. If a shard's recovery is itself cut by a power loss
// (nested chaos injection), the error is a *PowerError and the device
// stays down: call Crash and Recover again.
func (d *Device) Recover() (*RecoveryReport, error) {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	if d.closed.Load() {
		return nil, ErrClosed
	}
	rs := d.broadcast(opRecover, nil)
	rep := &RecoveryReport{Shards: make([]*memctrl.RecoveryReport, len(rs))}
	for i, r := range rs {
		rep.Shards[i] = r.report
	}
	if err := firstErr(rs); err != nil {
		return rep, err
	}
	d.down.Store(false)
	return rep, nil
}

// Flush writes back every dirty metadata block and drains the WPQ on all
// shards — the device-wide durability barrier a clean shutdown performs.
// Unlike Crash it does not fence the epoch: requests already queued
// execute before the flush reaches their shard.
func (d *Device) Flush() error {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	return firstErr(d.broadcast(opFlush, nil))
}

// VerifyAll re-verifies the full NVM image of every shard.
func (d *Device) VerifyAll() error {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	return firstErr(d.broadcast(opVerify, nil))
}

// Stats sums the controller statistics across shards. The collection runs
// through the shard queues, so it reflects a consistent per-shard point
// in each stream.
func (d *Device) Stats() memctrl.Stats {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	var total memctrl.Stats
	if d.closed.Load() {
		return total
	}
	for _, r := range d.broadcast(opStats, nil) {
		total.MemRequests += r.stats.MemRequests
		total.DataReads += r.stats.DataReads
		total.DataWrites += r.stats.DataWrites
		total.ColdReads += r.stats.ColdReads
		for i := range total.NVMWrites {
			total.NVMWrites[i] += r.stats.NVMWrites[i]
		}
		total.NVMReads += r.stats.NVMReads
		total.WPQForwards += r.stats.WPQForwards
		total.PageReencrypt += r.stats.PageReencrypt
		total.ForcedWB += r.stats.ForcedWB
		total.RecoveredOK += r.stats.RecoveredOK
		total.RecoveryLost += r.stats.RecoveryLost
	}
	return total
}

// SetHook installs the same chaos-injection hook on every shard's
// controller stack. A shared hook is only safe when at most one request
// is in flight device-wide (closed-loop chaos harness); concurrent
// drivers must use SetShardHooks with per-shard state.
func (d *Device) SetHook(h inject.Hook) error {
	hooks := make([]inject.Hook, len(d.shards))
	for i := range hooks {
		hooks[i] = h
	}
	return d.SetShardHooks(hooks)
}

// SetShardHooks installs hooks[i] on shard i's controller stack (nil
// entries detach). len(hooks) must equal the shard count.
func (d *Device) SetShardHooks(hooks []inject.Hook) error {
	if len(hooks) != len(d.shards) {
		return fmt.Errorf("device: got %d hooks for %d shards", len(hooks), len(d.shards))
	}
	d.ctl.Lock()
	defer d.ctl.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	return firstErr(d.broadcast(opHook, hooks))
}

// Snapshot merges the per-shard telemetry registries in shard order. The
// result is deterministic whenever each shard's request order is (nil
// when the device was built without Telemetry — the merge of zero
// registries is an empty snapshot).
func (d *Device) Snapshot() *telemetry.Snapshot {
	merged := &telemetry.Snapshot{}
	for _, s := range d.shards {
		merged.Merge(s.reg.Snapshot())
	}
	return merged
}

// Close drains and stops every shard worker. Data submissions racing with
// Close either complete or return ErrClosed; requests already queued are
// executed before their worker exits. Close is idempotent.
func (d *Device) Close() error {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	if d.closed.Load() {
		return nil
	}
	// Fence: after this critical section no sender is mid-send and every
	// future Submit observes closed under the shared lock.
	d.subMu.Lock()
	d.closed.Store(true)
	d.subMu.Unlock()
	for _, s := range d.shards {
		s.reqs <- &request{op: opStop, resp: make(chan response, 1)}
	}
	d.wg.Wait()
	return nil
}

// retryHint estimates a backoff for a rejected submission from the
// shard's recent wall-clock service time and the observed queue depth.
type ewma struct{ ns atomic.Int64 }

func (e *ewma) observe(d time.Duration) {
	const alpha = 8 // new sample weight 1/8
	for {
		old := e.ns.Load()
		nw := old + (int64(d)-old)/alpha
		if old == 0 {
			nw = int64(d)
		}
		if e.ns.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (e *ewma) value() time.Duration { return time.Duration(e.ns.Load()) }
