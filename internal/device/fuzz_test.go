package device_test

import (
	"bytes"
	"testing"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
)

func fuzzEngine(t testing.TB) *device.Engine {
	// A deliberately tiny device: the fuzzer rebuilds the engine on every
	// exec, so construction cost bounds throughput.
	sys := config.TestSystem()
	sys.NVM.CapacityBytes = 256 << 10
	eng, err := device.NewEngine(device.EngineOptions{
		Options: device.Options{
			System:     sys,
			Mode:       memctrl.ModeSAC,
			Key:        []byte("fuzz-ckpt-key"),
			Shards:     2,
			QueueDepth: 8,
		},
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

// FuzzCheckpointRestore mutates serialized engine checkpoints: Restore
// must either reject the bytes with an error or accept them into a state
// that round-trips byte-for-byte — and must never panic. The seed corpus
// covers a pristine engine, one with traffic and pending transactions, a
// crashed one, and structurally broken variants of each.
func FuzzCheckpointRestore(f *testing.F) {
	eng := fuzzEngine(f)
	pristine, err := eng.Checkpoint()
	if err != nil {
		f.Fatalf("pristine checkpoint: %v", err)
	}
	f.Add(pristine)

	var line nvm.Line
	for i := range line {
		line[i] = byte(i * 7)
	}
	for i := 0; i < 24; i++ {
		if _, err := eng.Write(uint64(i%12)*nvm.LineSize, &line); err != nil {
			f.Fatalf("seed write %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.SubmitWrite(uint64(i)*nvm.LineSize, &line); err != nil {
			f.Fatalf("seed submit %d: %v", i, err)
		}
	}
	busy, err := eng.Checkpoint()
	if err != nil {
		f.Fatalf("busy checkpoint: %v", err)
	}
	f.Add(busy)

	if err := eng.Crash(); err != nil {
		f.Fatalf("seed crash: %v", err)
	}
	crashed, err := eng.Checkpoint()
	if err != nil {
		f.Fatalf("crashed checkpoint: %v", err)
	}
	f.Add(crashed)

	f.Add(busy[:len(busy)/2])
	flipped := append([]byte(nil), busy...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("SOTC not actually a checkpoint"))

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := fuzzEngine(t)
		defer eng.Close()
		if err := eng.Restore(data); err != nil {
			// Rejected — the only acceptable alternative to a clean
			// round-trip.
			return
		}
		// Accepted: the restored state must be checkpointable again and
		// byte-stable through a second restore.
		ckpt, err := eng.Checkpoint()
		if err != nil {
			t.Fatalf("Restore accepted %d bytes but re-checkpoint failed: %v", len(data), err)
		}
		eng2 := fuzzEngine(t)
		defer eng2.Close()
		if err := eng2.Restore(ckpt); err != nil {
			t.Fatalf("re-checkpoint of an accepted restore does not restore: %v", err)
		}
		ckpt2, err := eng2.Checkpoint()
		if err != nil {
			t.Fatalf("second re-checkpoint failed: %v", err)
		}
		if !bytes.Equal(ckpt, ckpt2) {
			t.Fatalf("accepted state is not byte-stable: %d vs %d bytes", len(ckpt), len(ckpt2))
		}
	})
}
