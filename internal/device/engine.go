package device

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"soteria/internal/inject"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// EngineOptions configures a deterministic Engine.
type EngineOptions struct {
	Options
	// Workers partitions the shards (id mod Workers) across that many
	// event loops per Run. The schedule is deterministic at any worker
	// count: shards are fully independent state machines, and the crash
	// barrier is applied at run boundaries, so every shard's outcome is a
	// pure function of its own transaction stream. 0 means 1.
	Workers int
	// Trace records the canonical event trace (per-shard dispatch streams,
	// concatenated in shard order) for chaos replay and determinism
	// golden tests.
	Trace bool
}

// TxnResult is the completion record of one transaction dispatched by Run.
type TxnResult struct {
	ID      uint64
	Shard   int
	Data    nvm.Line
	Latency sim.Time
	Err     error
}

// TraceEvent is one dispatched transaction in the canonical event trace.
// The trace is worker-count invariant: shard streams are concatenated in
// shard order, and Seq/At depend only on the shard's own history.
type TraceEvent struct {
	Shard int
	Seq   uint64
	At    sim.Time
	Op    uint8
	Addr  uint64
	ID    uint64
}

// engineCkptVersion is bumped on any change to the engine checkpoint
// layout.
const engineCkptVersion = 1

// Engine hosts the sharded device on a deterministic event queue instead
// of goroutine workers: in-flight transactions are serializable Txn values
// in per-shard FIFO queues, shards are pure-data shardCore state machines
// with explicit Enabled/Paused/Draining modes, and Run dispatches through
// sim.Engine priority queues in strict (At, Actor, Seq) order. The whole
// device state round-trips through Checkpoint/Restore byte-for-byte, which
// is what the chaos harness's time-travel replay is built on.
//
// The API is single-threaded: Submit/Run/Checkpoint/control calls must not
// be interleaved from multiple goroutines (Run itself may fan shards out
// across Workers event loops internally).
type Engine struct {
	opts  EngineOptions
	cores []*shardCore
	envs  []*engineShardEnv
	pend  [][]Txn

	epoch  uint64
	down   bool
	closed bool
	nextID uint64

	// cut is set by any worker observing an inject.PowerLoss during Run
	// and folded into epoch/down at the run boundary.
	cut atomic.Bool

	execSeq []uint64
	traces  [][]TraceEvent

	// bids is ExecBatch's transaction-ID scratch, reused across calls.
	bids []uint64
}

// engineShardEnv adapts the Engine to the shardEnv contract with
// deterministic crash-barrier semantics: epoch and down are constant for
// the duration of one Run (the coordinator only writes them between runs),
// and a power cut observed on this shard takes effect locally at once but
// device-wide only at the run boundary. Each shard's outcome is therefore
// a pure function of its own stream at any worker count.
type engineShardEnv struct {
	eng      *Engine
	localCut bool
}

func (v *engineShardEnv) epochNow() uint64 {
	if v.localCut {
		return v.eng.epoch + 1
	}
	return v.eng.epoch
}

func (v *engineShardEnv) isDown() bool { return v.eng.down || v.localCut }

func (v *engineShardEnv) powerCut() {
	v.localCut = true
	v.eng.cut.Store(true)
}

// NewEngine builds a deterministic engine over opts.Shards controllers.
func NewEngine(opts EngineOptions) (*Engine, error) {
	shardCfg, err := shardSystem(&opts.Options)
	if err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	e := &Engine{
		opts:    opts,
		cores:   make([]*shardCore, opts.Shards),
		envs:    make([]*engineShardEnv, opts.Shards),
		pend:    make([][]Txn, opts.Shards),
		execSeq: make([]uint64, opts.Shards),
		traces:  make([][]TraceEvent, opts.Shards),
	}
	for i := range e.cores {
		ctrl, err := memctrl.New(shardCfg, opts.Mode, opts.Key, opts.Ctrl)
		if err != nil {
			return nil, fmt.Errorf("device: shard %d: %w", i, err)
		}
		env := &engineShardEnv{eng: e}
		core := &shardCore{id: i, env: env, ctrl: ctrl, mode: ShardEnabled}
		if opts.Telemetry {
			core.reg = telemetry.NewRegistry()
			ctrl.AttachTelemetry(core.reg)
			core.retired = core.reg.Counter("device_retired_requests_total")
			core.powerLoss = core.reg.Counter("device_power_losses_total")
		}
		e.cores[i] = core
		e.envs[i] = env
	}
	return e, nil
}

// Info describes the engine-hosted device.
func (e *Engine) Info() Info {
	return Info{
		Shards:        e.opts.Shards,
		CapacityBytes: e.opts.System.NVM.CapacityBytes,
		Mode:          e.opts.Mode.String(),
		QueueDepth:    e.opts.QueueDepth,
		BatchSize:     1, // the engine never batches or coalesces
	}
}

// Down reports whether the engine is in the post-crash state.
func (e *Engine) Down() bool { return e.down }

// ShardState returns shard s's pipeline mode.
func (e *Engine) ShardState(s int) ShardMode { return e.cores[s].mode }

// SetShardMode moves shard s's pipeline state machine. Draining a shard
// whose queue is already empty parks it in ShardPaused immediately.
func (e *Engine) SetShardMode(s int, m ShardMode) error {
	if s < 0 || s >= len(e.cores) {
		return fmt.Errorf("device: shard %d out of range [0,%d)", s, len(e.cores))
	}
	if m > ShardDraining {
		return fmt.Errorf("device: invalid shard mode %d", m)
	}
	if m == ShardDraining && len(e.pend[s]) == 0 {
		m = ShardPaused
	}
	e.cores[s].mode = m
	return nil
}

// submitTxn queues one data-plane transaction and returns its ID.
func (e *Engine) submitTxn(op opcode, addr uint64, data *nvm.Line) (uint64, error) {
	if e.closed {
		return 0, ErrClosed
	}
	if err := checkLineAddr(addr, e.opts.System.NVM.CapacityBytes); err != nil {
		return 0, err
	}
	if e.down {
		return 0, memctrl.ErrCrashed
	}
	s := shardOf(addr, e.opts.Shards)
	if e.cores[s].mode == ShardDraining {
		return 0, &BusyError{Shard: s, Pending: len(e.pend[s])}
	}
	if len(e.pend[s]) >= e.opts.QueueDepth {
		return 0, &BusyError{Shard: s, Pending: len(e.pend[s])}
	}
	id := e.nextID
	e.nextID++
	t := Txn{ID: id, Op: uint8(op), Addr: toLocalAddr(addr, e.opts.Shards), Epoch: e.epoch}
	if data != nil {
		t.HasData = true
		t.Data = *data
	}
	e.pend[s] = append(e.pend[s], t)
	return id, nil
}

// SubmitRead queues a read; Run dispatches it.
func (e *Engine) SubmitRead(addr uint64) (uint64, error) {
	return e.submitTxn(opRead, addr, nil)
}

// SubmitWrite queues a write (data is copied).
func (e *Engine) SubmitWrite(addr uint64, data *nvm.Line) (uint64, error) {
	return e.submitTxn(opWrite, addr, data)
}

// SubmitDrain queues a WPQ drain on the shard owning addr.
func (e *Engine) SubmitDrain(addr uint64) (uint64, error) {
	return e.submitTxn(opDrain, addr, nil)
}

// workers clamps the configured worker count to the shard count.
func (e *Engine) workers() int {
	w := e.opts.Workers
	if w > len(e.cores) {
		w = len(e.cores)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run dispatches every queued transaction on every non-paused shard and
// returns the completions in transaction-ID order. A power loss observed
// during the run takes its shard down immediately and the whole device
// down at the run boundary (epoch advance + down bit), so transactions
// still queued on other shards retire on the next Run — the deterministic
// analogue of the goroutine device's crash barrier.
func (e *Engine) Run() []TxnResult {
	if e.closed {
		return nil
	}
	W := e.workers()
	results := make([][]TxnResult, W)
	if W == 1 {
		results[0] = e.runWorker(0, 1)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < W; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				results[w] = e.runWorker(w, W)
			}(w)
		}
		wg.Wait()
	}
	if e.cut.Load() {
		e.cut.Store(false)
		e.down = true
		e.epoch++
		for _, env := range e.envs {
			env.localCut = false
		}
	}
	var out []TxnResult
	for _, rs := range results {
		out = append(out, rs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// runWorker drains the shards of one partition (id mod W == w) through a
// private sim.Engine in strict (At, Actor, Seq) order.
func (e *Engine) runWorker(w, W int) []TxnResult {
	var out []TxnResult
	var se *sim.Engine
	se = sim.NewEngine(func(ev sim.Event) {
		s := ev.Actor
		core := e.cores[s]
		if core.mode == ShardPaused || len(e.pend[s]) == 0 {
			return
		}
		t := e.pend[s][0]
		e.pend[s] = e.pend[s][1:]
		if e.opts.Trace {
			e.traces[s] = append(e.traces[s],
				TraceEvent{Shard: s, Seq: e.execSeq[s], At: core.now, Op: t.Op, Addr: t.Addr, ID: t.ID})
		}
		e.execSeq[s]++
		res := core.exec(t.request())
		out = append(out, TxnResult{ID: t.ID, Shard: s, Data: res.data, Latency: res.latency, Err: res.err})
		if len(e.pend[s]) > 0 && core.mode != ShardPaused {
			se.Schedule(core.now, s)
		} else if core.mode == ShardDraining {
			core.mode = ShardPaused
		}
	})
	for s := w; s < len(e.cores); s += W {
		if e.cores[s].mode != ShardPaused && len(e.pend[s]) > 0 {
			se.Schedule(e.cores[s].now, s)
		}
	}
	se.Run()
	return out
}

// runFor runs to idle and returns the completion of txn id. A transaction
// parked on a paused shard does not complete; that is an error for the
// closed-loop Client path.
func (e *Engine) runFor(id uint64) (TxnResult, error) {
	for _, r := range e.Run() {
		if r.ID == id {
			return r, nil
		}
	}
	return TxnResult{}, fmt.Errorf("device: transaction %d did not complete (shard paused?)", id)
}

// trySync executes one closed-loop data-plane operation without going
// through the transaction queue: when the target shard is Enabled and its
// queue is empty, submitting then running to idle would dispatch exactly
// this one transaction, so the engine executes it in place with identical
// bookkeeping (same ID assignment, same trace event, same execSeq and
// clock advance, same crash-barrier fold). This keeps the Client-style
// Read/Write/Drain path allocation-free — the tenant layer's steady-state
// data path rides it — while Submit/Run batches are untouched.
//
// handled=false falls back to the queued path (queue non-empty, shard not
// Enabled, or a submission-time rejection the queued path must produce).
func (e *Engine) trySync(op opcode, addr uint64, data *nvm.Line) (response, bool) {
	if e.closed || e.down {
		return response{}, false
	}
	if err := checkLineAddr(addr, e.opts.System.NVM.CapacityBytes); err != nil {
		return response{}, false
	}
	s := shardOf(addr, e.opts.Shards)
	core := e.cores[s]
	if core.mode != ShardEnabled || len(e.pend[s]) > 0 {
		return response{}, false
	}
	id := e.nextID
	e.nextID++
	local := toLocalAddr(addr, e.opts.Shards)
	if e.opts.Trace {
		e.traces[s] = append(e.traces[s],
			TraceEvent{Shard: s, Seq: e.execSeq[s], At: core.now, Op: uint8(op), Addr: local, ID: id})
	}
	e.execSeq[s]++
	r := request{op: op, addr: local, epoch: e.epoch, data: data}
	res := core.exec(&r)
	// Fold a power cut observed during the op at once — the same barrier
	// Run applies at its boundary after a one-transaction dispatch.
	if e.cut.Load() {
		e.cut.Store(false)
		e.down = true
		e.epoch++
		for _, env := range e.envs {
			env.localCut = false
		}
	}
	return res, true
}

// Read services one 64-byte read (Client). The engine is closed-loop here:
// the transaction is queued and the engine runs to idle.
func (e *Engine) Read(addr uint64) (nvm.Line, sim.Time, error) {
	if res, ok := e.trySync(opRead, addr, nil); ok {
		return res.data, res.latency, res.err
	}
	id, err := e.submitTxn(opRead, addr, nil)
	if err != nil {
		return nvm.Line{}, 0, err
	}
	r, err := e.runFor(id)
	if err != nil {
		return nvm.Line{}, 0, err
	}
	return r.Data, r.Latency, r.Err
}

// Write services one 64-byte write (Client).
func (e *Engine) Write(addr uint64, data *nvm.Line) (sim.Time, error) {
	if res, ok := e.trySync(opWrite, addr, data); ok {
		return res.latency, res.err
	}
	id, err := e.submitTxn(opWrite, addr, data)
	if err != nil {
		return 0, err
	}
	r, err := e.runFor(id)
	if err != nil {
		return 0, err
	}
	return r.Latency, r.Err
}

// Drain waits until the shard owning addr has drained its WPQ (Client).
func (e *Engine) Drain(addr uint64) error {
	if res, ok := e.trySync(opDrain, addr, nil); ok {
		return res.err
	}
	id, err := e.submitTxn(opDrain, addr, nil)
	if err != nil {
		return err
	}
	r, err := e.runFor(id)
	if err != nil {
		return err
	}
	return r.Err
}

// control runs one control opcode synchronously on every shard in shard
// order (the engine's single-threaded analogue of Device.broadcast).
func (e *Engine) control(op opcode, hooks []inject.Hook) []response {
	out := make([]response, len(e.cores))
	for i, core := range e.cores {
		r := &request{op: op, epoch: e.epoch}
		if hooks != nil {
			r.hook = hooks[i]
		}
		out[i] = core.exec(r)
	}
	// A power loss during a control op (e.g. a flush crossing an injected
	// write boundary) applies at once: control runs on the coordinator.
	if e.cut.Load() {
		e.cut.Store(false)
		e.down = true
		e.epoch++
		for _, env := range e.envs {
			env.localCut = false
		}
	}
	return out
}

// Flush is the device-wide durability barrier (Client).
func (e *Engine) Flush() error {
	if e.closed {
		return ErrClosed
	}
	return firstErr(e.control(opFlush, nil))
}

// Crash cuts power across the whole device (Client): the epoch advances
// first so queued transactions retire unexecuted on the next Run, then
// every controller drops its volatile state.
func (e *Engine) Crash() error {
	if e.closed {
		return ErrClosed
	}
	e.down = true
	e.epoch++
	return firstErr(e.control(opCrash, nil))
}

// Recover rebuilds every shard after a crash (Client).
func (e *Engine) Recover() (*RecoveryReport, error) {
	if e.closed {
		return nil, ErrClosed
	}
	rs := e.control(opRecover, nil)
	rep := &RecoveryReport{Shards: make([]*memctrl.RecoveryReport, len(rs))}
	for i, r := range rs {
		rep.Shards[i] = r.report
	}
	if err := firstErr(rs); err != nil {
		return rep, err
	}
	e.down = false
	return rep, nil
}

// VerifyAll re-verifies the full NVM image of every shard.
func (e *Engine) VerifyAll() error {
	if e.closed {
		return ErrClosed
	}
	return firstErr(e.control(opVerify, nil))
}

// Stats sums the controller statistics across shards.
func (e *Engine) Stats() memctrl.Stats {
	var total memctrl.Stats
	if e.closed {
		return total
	}
	for _, r := range e.control(opStats, nil) {
		total.MemRequests += r.stats.MemRequests
		total.DataReads += r.stats.DataReads
		total.DataWrites += r.stats.DataWrites
		total.ColdReads += r.stats.ColdReads
		for i := range total.NVMWrites {
			total.NVMWrites[i] += r.stats.NVMWrites[i]
		}
		total.NVMReads += r.stats.NVMReads
		total.WPQForwards += r.stats.WPQForwards
		total.PageReencrypt += r.stats.PageReencrypt
		total.ForcedWB += r.stats.ForcedWB
		total.RecoveredOK += r.stats.RecoveredOK
		total.RecoveryLost += r.stats.RecoveryLost
	}
	return total
}

// SetHook installs the same chaos-injection hook on every shard.
func (e *Engine) SetHook(h inject.Hook) error {
	hooks := make([]inject.Hook, len(e.cores))
	for i := range hooks {
		hooks[i] = h
	}
	return e.SetShardHooks(hooks)
}

// SetShardHooks installs hooks[i] on shard i's controller stack.
func (e *Engine) SetShardHooks(hooks []inject.Hook) error {
	if len(hooks) != len(e.cores) {
		return fmt.Errorf("device: got %d hooks for %d shards", len(hooks), len(e.cores))
	}
	if e.closed {
		return ErrClosed
	}
	return firstErr(e.control(opHook, hooks))
}

// Snapshot merges the per-shard telemetry registries in shard order.
func (e *Engine) Snapshot() *telemetry.Snapshot {
	merged := &telemetry.Snapshot{}
	for _, core := range e.cores {
		merged.Merge(core.reg.Snapshot())
	}
	return merged
}

// Close marks the engine closed (Client). There are no workers to stop;
// queued transactions are discarded.
func (e *Engine) Close() error {
	e.closed = true
	return nil
}

// Trace returns a copy of the canonical event trace: per-shard dispatch
// streams concatenated in shard order (empty unless Trace was enabled).
func (e *Engine) Trace() []TraceEvent {
	var out []TraceEvent
	for _, tr := range e.traces {
		out = append(out, tr...)
	}
	return out
}

// EncodeTrace serializes a trace with the snapshot codec (no envelope; the
// chaos replay format seals it inside its own).
func EncodeTrace(evs []TraceEvent) []byte {
	w := &sim.SnapW{}
	AppendTrace(w, evs)
	return w.Data()
}

// AppendTrace writes a trace into an open snapshot writer.
func AppendTrace(w *sim.SnapW, evs []TraceEvent) {
	w.U32(uint32(len(evs)))
	for _, ev := range evs {
		w.U32(uint32(ev.Shard))
		w.U64(ev.Seq)
		w.Time(ev.At)
		w.U8(ev.Op)
		w.U64(ev.Addr)
		w.U64(ev.ID)
	}
}

// ReadTrace decodes a trace written by AppendTrace.
func ReadTrace(r *sim.SnapR) []TraceEvent {
	n := r.Count(4 + 8 + 8 + 1 + 8 + 8)
	if n == 0 {
		return nil
	}
	out := make([]TraceEvent, n)
	for i := range out {
		out[i].Shard = int(r.U32())
		out[i].Seq = r.U64()
		out[i].At = r.Time()
		out[i].Op = r.U8()
		out[i].Addr = r.U64()
		out[i].ID = r.U64()
	}
	return out
}

// Checkpoint serializes the full device state — engine bookkeeping,
// per-shard modes, clocks and pending transactions, and every shard's
// controller (memctrl + metadata cache + WPQ + NVM + strategy state) — as
// one sealed snapshot. Restore on an identically configured engine is
// byte-identical: Restore(Checkpoint()) followed by Checkpoint() returns
// the same bytes. Telemetry is excluded (counters restart from zero).
func (e *Engine) Checkpoint() ([]byte, error) {
	if e.closed {
		return nil, ErrClosed
	}
	w := &sim.SnapW{}
	// Identity: a checkpoint only restores onto an engine with the same
	// geometry and scheme. Worker count and tracing are excluded — they
	// do not affect state.
	w.U32(uint32(e.opts.Shards))
	w.U64(e.opts.System.NVM.CapacityBytes)
	w.U8(uint8(e.opts.Mode))
	w.String(e.cores[0].ctrl.Strategy())
	w.U32(uint32(e.opts.QueueDepth))
	// Engine bookkeeping.
	w.U64(e.epoch)
	w.Bool(e.down)
	w.U64(e.nextID)
	// Per-shard state machines, in shard order.
	for s, core := range e.cores {
		w.U8(uint8(core.mode))
		w.Time(core.now)
		w.U64(e.execSeq[s])
		appendTxns(w, e.pend[s])
		ckpt, err := core.ctrl.Checkpoint()
		if err != nil {
			return nil, fmt.Errorf("device: shard %d: %w", s, err)
		}
		w.Bytes(ckpt)
	}
	return sim.Seal(sim.SnapKindEngine, engineCkptVersion, w.Data()), nil
}

// engineShardStage holds one shard's decoded checkpoint before any state
// is mutated, so a corrupt snapshot is rejected without touching the
// engine.
type engineShardStage struct {
	mode ShardMode
	now  sim.Time
	seq  uint64
	pend []Txn
	ctrl []byte
}

// Restore replaces the engine's entire state with a checkpoint taken from
// an identically configured engine. On a decode or identity error the
// engine is untouched; if a shard controller fails to restore after
// decoding succeeded, the engine is poisoned and must be rebuilt.
func (e *Engine) Restore(data []byte) error {
	if e.closed {
		return ErrClosed
	}
	payload, err := sim.Open(sim.SnapKindEngine, engineCkptVersion, data)
	if err != nil {
		return err
	}
	r := sim.NewSnapR(payload)
	if n := int(r.U32()); r.Err() == nil && n != e.opts.Shards {
		return fmt.Errorf("device: checkpoint has %d shards, engine has %d", n, e.opts.Shards)
	}
	if c := r.U64(); r.Err() == nil && c != e.opts.System.NVM.CapacityBytes {
		return fmt.Errorf("device: checkpoint capacity %d, engine has %d", c, e.opts.System.NVM.CapacityBytes)
	}
	if m := r.U8(); r.Err() == nil && m != uint8(e.opts.Mode) {
		return fmt.Errorf("device: checkpoint mode %d, engine has %d", m, uint8(e.opts.Mode))
	}
	if s := r.String(); r.Err() == nil && s != e.cores[0].ctrl.Strategy() {
		return fmt.Errorf("device: checkpoint strategy %q, engine has %q", s, e.cores[0].ctrl.Strategy())
	}
	if q := int(r.U32()); r.Err() == nil && q != e.opts.QueueDepth {
		return fmt.Errorf("device: checkpoint queue depth %d, engine has %d", q, e.opts.QueueDepth)
	}
	epoch := r.U64()
	down := r.Bool()
	nextID := r.U64()
	stages := make([]engineShardStage, e.opts.Shards)
	for s := range stages {
		st := &stages[s]
		st.mode = ShardMode(r.U8())
		if r.Err() == nil && st.mode > ShardDraining {
			return fmt.Errorf("device: checkpoint shard %d has invalid mode %d", s, st.mode)
		}
		st.now = r.Time()
		st.seq = r.U64()
		st.pend = readTxns(r, e.opts.QueueDepth)
		for i := range st.pend {
			if st.pend[i].Op > uint8(opDrain) {
				return fmt.Errorf("device: checkpoint shard %d pending txn %d has non-data opcode %d",
					s, i, st.pend[i].Op)
			}
		}
		st.ctrl = r.Bytes()
	}
	if err := r.Done(); err != nil {
		return err
	}
	// Decode succeeded; commit. Controller restores validate their own
	// identity and integrity before mutating, so the common failure modes
	// still leave the engine untouched.
	for s, core := range e.cores {
		if err := core.ctrl.Restore(stages[s].ctrl); err != nil {
			return fmt.Errorf("device: shard %d: %w", s, err)
		}
	}
	e.epoch = epoch
	e.down = down
	e.nextID = nextID
	e.cut.Store(false)
	for s, core := range e.cores {
		core.mode = stages[s].mode
		core.now = stages[s].now
		e.execSeq[s] = stages[s].seq
		e.pend[s] = stages[s].pend
		e.envs[s].localCut = false
		e.traces[s] = nil
	}
	return nil
}

var _ Client = (*Engine)(nil)
