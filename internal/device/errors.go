package device

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors of the device layer. BusyError and PowerError carry
// detail but match these sentinels through errors.Is, so callers can
// branch without type assertions.
var (
	// ErrBusy: the target shard's request queue is full. The concrete
	// error is always a *BusyError carrying a retry-after hint.
	ErrBusy = errors.New("device: shard queue full")
	// ErrClosed: the device has been shut down.
	ErrClosed = errors.New("device: closed")
	// ErrRetired: the request was admitted before a crash barrier and
	// discarded unexecuted — exactly what a power cut does to queued
	// commands. The operation never ran; retry after Recover.
	ErrRetired = errors.New("device: request retired by crash barrier")
	// ErrPowerLoss: a simulated power loss (inject.PowerLoss) fired while
	// the request was executing. The concrete error is a *PowerError.
	ErrPowerLoss = errors.New("device: power loss during operation")
)

// BusyError is the typed backpressure signal: the shard queue was full at
// submit time. RetryAfter estimates when a slot will open, extrapolated
// from the shard's recent wall-clock service rate and its queue depth.
type BusyError struct {
	// Shard is the shard whose queue rejected the request.
	Shard int
	// Pending is the queue occupancy observed at rejection.
	Pending int
	// RetryAfter is the suggested wall-clock backoff before retrying.
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("device: shard %d queue full (%d pending, retry after %v)", e.Shard, e.Pending, e.RetryAfter)
}

// Is matches ErrBusy.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// PowerError reports that a simulated power loss cut the operation at a
// write boundary. The device refuses further data operations until
// Crash()+Recover() bring it back.
type PowerError struct {
	// Shard is the shard that was executing when power was lost.
	Shard int
	// Boundary is the injector's write-boundary index, for repro lines.
	Boundary int
}

func (e *PowerError) Error() string {
	return fmt.Sprintf("device: power loss on shard %d at write boundary %d", e.Shard, e.Boundary)
}

// Is matches ErrPowerLoss.
func (e *PowerError) Is(target error) bool { return target == ErrPowerLoss }

// PanicError wraps a non-PowerLoss panic recovered from a shard worker.
// The storage stack promises that a simulated power cut is the only
// legitimate panic, so seeing this error is itself an invariant violation
// the chaos harness reports.
type PanicError struct {
	Shard int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("device: shard %d worker panicked: %v", e.Shard, e.Value)
}
