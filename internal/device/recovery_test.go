package device_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"soteria/internal/chaos"
	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/inject"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
)

// TestCrashMidBatchPerShard is the satellite-4 sweep: concurrent writers
// keep every shard's queue busy (so the workers really form batches), a
// chaos injector cuts power at boundary k of one targeted shard, and
// after Crash/Recover the test asserts (a) every shard's recovery report
// is present and — crash-only, no device faults — clean, and (b) every
// write that was acknowledged before the cut reads back exactly.
func TestCrashMidBatchPerShard(t *testing.T) {
	const (
		shards       = 4
		writers      = 4
		opsPerWriter = 40
	)
	for targetShard := 0; targetShard < shards; targetShard++ {
		for _, crashAt := range []int{0, 3, 8} {
			t.Run("", func(t *testing.T) {
				d, err := device.New(device.Options{
					System:     config.TestSystem(),
					Mode:       memctrl.ModeSRC,
					Key:        []byte("recovery-test-key"),
					Shards:     shards,
					QueueDepth: 32,
					BatchSize:  4,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer d.Close()

				// Crash only when the *target* shard crosses its
				// crashAt-th boundary: keep its hook, detach the rest.
				inj := chaos.NewDeviceInjector(crashAt)
				hooks := inj.ShardHooks(shards)
				for i := range hooks {
					if i != targetShard {
						hooks[i] = nil
					}
				}
				if err := d.SetShardHooks(hooks); err != nil {
					t.Fatal(err)
				}

				// Each writer owns a contiguous run of global lines, so
				// its stream cycles through every shard and the shard
				// queues see concurrent traffic from all writers.
				type ack struct {
					addr uint64
					line nvm.Line
				}
				acked := make([][]ack, writers)
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := 0; j < opsPerWriter; j++ {
							addr := uint64(w*opsPerWriter+j) * nvm.LineSize
							line := fill(addr, uint64(w)<<32|uint64(j))
							for {
								_, err := d.Write(addr, &line)
								if errors.Is(err, device.ErrBusy) {
									time.Sleep(time.Millisecond)
									continue
								}
								if err == nil {
									acked[w] = append(acked[w], ack{addr, line})
									break
								}
								// Power is gone (directly, or observed as
								// crashed/retired): stop this writer.
								if errors.Is(err, device.ErrPowerLoss) ||
									errors.Is(err, memctrl.ErrCrashed) ||
									errors.Is(err, device.ErrRetired) {
									return
								}
								t.Errorf("writer %d op %d: %v", w, j, err)
								return
							}
						}
					}(w)
				}
				wg.Wait()

				fired, firedShard := inj.Fired()
				if !fired {
					t.Fatalf("crash at boundary %d of shard %d never fired", crashAt, targetShard)
				}
				if firedShard != targetShard {
					t.Fatalf("crash fired on shard %d, targeted %d", firedShard, targetShard)
				}
				inj.Disarm()

				if err := d.Crash(); err != nil {
					t.Fatalf("crash: %v", err)
				}
				rep, err := d.Recover()
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				if len(rep.Shards) != shards {
					t.Fatalf("recovery report covers %d of %d shards", len(rep.Shards), shards)
				}
				for sid, sr := range rep.Shards {
					if sr == nil {
						t.Fatalf("shard %d: recovery report missing", sid)
					}
					// No device faults were injected, so a lossy report
					// would be a recovery bug, not bad luck: it must be
					// clean (and if it ever is not, the report must say
					// which blocks failed rather than silently dropping
					// them — an empty FailedBlocks with losses would be
					// caught by the read-back below).
					if len(sr.FailedBlocks) > 0 || len(sr.LostSlots) > 0 {
						t.Errorf("shard %d: crash-only recovery lost data: %d failed blocks %v, lost slots %v",
							sid, len(sr.FailedBlocks), sr.FailedBlocks, sr.LostSlots)
					}
				}
				if !rep.Clean() {
					t.Errorf("device report not clean: %d failed, %d lost slots", rep.FailedBlocks(), rep.LostSlots())
				}

				// Every acknowledged write is durable by contract.
				n := 0
				for w := range acked {
					for _, a := range acked[w] {
						got, _, err := d.Read(a.addr)
						if err != nil {
							t.Fatalf("read back %#x: %v", a.addr, err)
						}
						if got != a.line {
							t.Errorf("acked write at %#x did not survive the crash", a.addr)
						}
						n++
					}
				}
				// A boundary-0 crash can legitimately beat every ack;
				// deeper crash points must have durable writes to check.
				if n == 0 && crashAt >= 8 {
					t.Error("no writes were acknowledged before the crash; sweep point is vacuous")
				}
				if err := d.VerifyAll(); err != nil {
					t.Errorf("post-recovery verify: %v", err)
				}
			})
		}
	}
}

// TestPowerLossTypedError pins the error surface of an injected power
// loss: the interrupted submission gets a *PowerError naming the shard
// and boundary, later submissions see ErrCrashed, and Recover restores
// service.
func TestPowerLossTypedError(t *testing.T) {
	d := newTestDevice(t, func(o *device.Options) { o.Shards = 2 })
	inj := chaos.NewDeviceInjector(2)
	if err := d.SetShardHooks(inj.ShardHooks(2)); err != nil {
		t.Fatal(err)
	}
	var perr *device.PowerError
	for i := 0; ; i++ {
		if i > 100 {
			t.Fatal("power loss never fired")
		}
		addr := uint64(i) * nvm.LineSize
		line := fill(addr, 5)
		_, err := d.Write(addr, &line)
		if err == nil {
			continue
		}
		if !errors.As(err, &perr) {
			t.Fatalf("want *PowerError, got %v", err)
		}
		break
	}
	if !errors.Is(perr, device.ErrPowerLoss) {
		t.Fatal("PowerError does not match ErrPowerLoss sentinel")
	}
	if perr.Boundary != 2 {
		t.Fatalf("power loss at boundary %d, armed 2", perr.Boundary)
	}
	line := fill(0, 5)
	if _, err := d.Write(0, &line); !errors.Is(err, memctrl.ErrCrashed) {
		t.Fatalf("write after power loss: %v", err)
	}
	inj.Disarm()
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(0, &line); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// Interface check: the chaos hook wiring used above matches what the
// device expects.
var _ []inject.Hook = (*chaos.DeviceInjector)(nil).ShardHooks(0)
