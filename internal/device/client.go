package device

import (
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// Client is the device-service API, satisfied both by *Device (in-process)
// and by devnet.Client (over the wire), so harnesses and load generators
// run unchanged against either. Latencies are simulated time on the
// owning shard's clock.
type Client interface {
	// Read services one 64-byte read at a line-aligned device address.
	Read(addr uint64) (nvm.Line, sim.Time, error)
	// Write services one 64-byte write.
	Write(addr uint64, data *nvm.Line) (sim.Time, error)
	// Drain waits until the shard owning addr has drained its WPQ.
	Drain(addr uint64) error
	// Flush is the device-wide durability barrier.
	Flush() error
	// Crash cuts power across the whole device.
	Crash() error
	// Recover rebuilds every shard and reports what each reconstructed.
	Recover() (*RecoveryReport, error)
	// Close releases the client (and, for *Device, stops the shards).
	Close() error
}

var _ Client = (*Device)(nil)
