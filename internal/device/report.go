package device

import "soteria/internal/memctrl"

// RecoveryReport aggregates the per-shard recovery reports of one
// device-wide Recover. Shards is indexed by shard id; entries are never
// nil after a successful Recover.
type RecoveryReport struct {
	Shards []*memctrl.RecoveryReport `json:"shards"`
}

// TrackedEntries sums the valid shadow entries found across shards.
func (r *RecoveryReport) TrackedEntries() int {
	n := 0
	for _, s := range r.Shards {
		if s != nil {
			n += s.TrackedEntries
		}
	}
	return n
}

// RecoveredBlocks sums the reconstructed-and-verified blocks across shards.
func (r *RecoveryReport) RecoveredBlocks() int {
	n := 0
	for _, s := range r.Shards {
		if s != nil {
			n += s.RecoveredBlocks
		}
	}
	return n
}

// FailedBlocks counts tracked blocks whose reconstruction failed, summed
// across shards.
func (r *RecoveryReport) FailedBlocks() int {
	n := 0
	for _, s := range r.Shards {
		if s != nil {
			n += len(s.FailedBlocks)
		}
	}
	return n
}

// LostSlots counts shadow slots that could not be read, summed across
// shards.
func (r *RecoveryReport) LostSlots() int {
	n := 0
	for _, s := range r.Shards {
		if s != nil {
			n += len(s.LostSlots)
		}
	}
	return n
}

// Clean reports a lossless recovery: every shard reconstructed every
// tracked block and read every shadow slot.
func (r *RecoveryReport) Clean() bool {
	return r.FailedBlocks() == 0 && r.LostSlots() == 0
}
