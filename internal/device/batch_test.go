package device_test

import (
	"errors"
	"testing"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/memctrl"
)

func TestDeviceExecBatchRoundTrip(t *testing.T) {
	d := newTestDevice(t, nil)

	// Writes across all shards, plus an in-batch read-your-write.
	const n = 64
	ops := make([]device.BatchOp, 0, n+1)
	for i := uint64(0); i < n; i++ {
		ops = append(ops, device.BatchOp{Op: device.BatchWrite, Addr: i * 64, Line: fill(i*64, 1)})
	}
	ops = append(ops, device.BatchOp{Op: device.BatchRead, Addr: 0})
	res := make([]device.BatchResult, len(ops))
	if err := d.ExecBatch(ops, res); err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	if got, want := res[n].Data, fill(0, 1); got != want {
		t.Fatal("in-batch read after write returned stale data")
	}

	// Read everything back in one batch, interleaved with drains.
	ops = ops[:0]
	for i := uint64(0); i < n; i++ {
		ops = append(ops, device.BatchOp{Op: device.BatchRead, Addr: i * 64})
		if i%8 == 0 {
			ops = append(ops, device.BatchOp{Op: device.BatchDrain, Addr: i * 64})
		}
	}
	res = make([]device.BatchResult, len(ops))
	if err := d.ExecBatch(ops, res); err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
		if ops[i].Op == device.BatchRead {
			if r.Data != fill(ops[i].Addr, 1) {
				t.Fatalf("read %d returned wrong data", i)
			}
			if r.Latency <= 0 {
				t.Fatalf("read %d has latency %v", i, r.Latency)
			}
		}
	}
}

func TestDeviceExecBatchCoalescesSupersededWrites(t *testing.T) {
	d := newTestDevice(t, func(o *device.Options) { o.Telemetry = true })

	// Three writes to the same line with no intervening read: the first
	// two are superseded and must be acknowledged without executing.
	ops := []device.BatchOp{
		{Op: device.BatchWrite, Addr: 320, Line: fill(320, 1)},
		{Op: device.BatchWrite, Addr: 320, Line: fill(320, 2)},
		{Op: device.BatchWrite, Addr: 320, Line: fill(320, 3)},
		{Op: device.BatchRead, Addr: 320},
		// After a read of the line, a new write must NOT be coalesced
		// backwards across it.
		{Op: device.BatchWrite, Addr: 320, Line: fill(320, 4)},
	}
	res := make([]device.BatchResult, len(ops))
	if err := d.ExecBatch(ops, res); err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	if res[3].Data != fill(320, 3) {
		t.Fatal("read did not observe the last pre-read write")
	}
	if res[0].Latency != 0 || res[1].Latency != 0 {
		t.Fatal("superseded writes should report zero added latency")
	}
	line, _, err := d.Read(320)
	if err != nil {
		t.Fatal(err)
	}
	if line != fill(320, 4) {
		t.Fatal("final line content wrong after coalesced batch")
	}
}

func TestDeviceExecBatchValidation(t *testing.T) {
	d := newTestDevice(t, nil)

	if err := d.ExecBatch(make([]device.BatchOp, 2), make([]device.BatchResult, 1)); err == nil {
		t.Fatal("length mismatch not rejected")
	}

	ops := []device.BatchOp{
		{Op: 99, Addr: 0},
		{Op: device.BatchRead, Addr: 1 << 60},
		{Op: device.BatchWrite, Addr: 192, Line: fill(192, 1)},
	}
	res := make([]device.BatchResult, len(ops))
	if err := d.ExecBatch(ops, res); err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil || res[1].Err == nil {
		t.Fatal("invalid ops not rejected per-op")
	}
	if res[2].Err != nil {
		t.Fatalf("valid op rejected alongside invalid ones: %v", res[2].Err)
	}
}

func TestDeviceExecBatchAfterCrash(t *testing.T) {
	d := newTestDevice(t, nil)
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	ops := []device.BatchOp{
		{Op: device.BatchWrite, Addr: 64, Line: fill(64, 1)},
		{Op: device.BatchRead, Addr: 64},
	}
	res := make([]device.BatchResult, len(ops))
	if err := d.ExecBatch(ops, res); err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, memctrl.ErrCrashed) {
			t.Fatalf("op %d after crash: got %v, want ErrCrashed", i, r.Err)
		}
	}
}

// TestDeviceExecBatchAllocs pins the zero-allocation contract of the
// steady-state batched execution path (ISSUE 10): once warm, pushing a
// mixed batch through the device allocates nothing per op.
func TestDeviceExecBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	d := newTestDevice(t, nil)

	const n = 32
	ops := make([]device.BatchOp, n)
	for i := range ops {
		addr := uint64(i) * 64
		if i%4 == 3 {
			ops[i] = device.BatchOp{Op: device.BatchRead, Addr: addr}
		} else {
			ops[i] = device.BatchOp{Op: device.BatchWrite, Addr: addr, Line: fill(addr, 7)}
		}
	}
	res := make([]device.BatchResult, n)
	// Warm: pool the batchRun, grow shard scratch, fault in metadata
	// cache lines and lazily-populated NVM backing lines.
	for i := 0; i < 16; i++ {
		if err := d.ExecBatch(ops, res); err != nil {
			t.Fatal(err)
		}
	}
	// The batching machinery itself is allocation-free; the only residual
	// is the NVM backing store lazily populating cold lines on cache
	// writeback, which amortizes to zero over the working set. Pin the
	// per-op figure well under one allocation.
	allocs := testing.AllocsPerRun(20, func() {
		if err := d.ExecBatch(ops, res); err != nil {
			t.Fatal(err)
		}
	})
	if perOp := allocs / n; perOp >= 0.25 {
		t.Fatalf("ExecBatch allocates %.2f per batch (%.3f per op), want ~0", allocs, perOp)
	}
}

func TestEngineExecBatch(t *testing.T) {
	eng, err := device.NewEngine(device.EngineOptions{Options: device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("engine-batch-key"),
		Shards: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 24
	ops := make([]device.BatchOp, 0, 2*n)
	for i := uint64(0); i < n; i++ {
		ops = append(ops, device.BatchOp{Op: device.BatchWrite, Addr: i * 64, Line: fill(i*64, 9)})
	}
	for i := uint64(0); i < n; i++ {
		ops = append(ops, device.BatchOp{Op: device.BatchRead, Addr: i * 64})
	}
	// One invalid op in the middle of the submission stream exercises the
	// id-merge skipping non-submitted slots.
	ops[n] = device.BatchOp{Op: 77}
	res := make([]device.BatchResult, len(ops))
	if err := eng.ExecBatch(ops, res); err != nil {
		t.Fatal(err)
	}
	if res[n].Err == nil {
		t.Fatal("invalid op not rejected")
	}
	for i, r := range res {
		if i == n {
			continue
		}
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
		if ops[i].Op == device.BatchRead {
			if r.Data != fill(ops[i].Addr, 9) {
				t.Fatalf("engine batch read %d returned wrong data", i)
			}
		}
	}
	if err := eng.ExecBatch(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.ExecBatch(make([]device.BatchOp, 1), nil); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}
