//go:build race

package device_test

// raceEnabled skips allocation-count assertions under the race
// detector, whose runtime instrumentation allocates.
const raceEnabled = true
