//go:build !race

package device_test

const raceEnabled = false
