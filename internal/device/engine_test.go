package device_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"soteria/internal/chaos"
	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
)

func engineOpts(shards, workers int, trace bool) device.EngineOptions {
	return device.EngineOptions{
		Options: device.Options{
			System:     config.TestSystem(),
			Mode:       memctrl.ModeSAC,
			Key:        []byte("engine-test-key"),
			Shards:     shards,
			QueueDepth: 16,
			Telemetry:  true,
		},
		Workers: workers,
		Trace:   trace,
	}
}

// TestEngineMatchesDeviceClosedLoop drives the identical closed-loop
// workload — including a mid-workload power loss and recovery — through
// the goroutine-backed Device and the event-queue Engine, asserting the
// two hosts implement the same device semantics: same data, same simulated
// latencies, same controller statistics.
func TestEngineMatchesDeviceClosedLoop(t *testing.T) {
	const shards = 4
	opts := engineOpts(shards, 2, false)

	dev, err := device.New(opts.Options)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	eng, err := device.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}

	injD := chaos.NewDeviceInjector(120)
	injE := chaos.NewDeviceInjector(120)
	if err := dev.SetShardHooks(injD.ShardHooks(shards)); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetShardHooks(injE.ShardHooks(shards)); err != nil {
		t.Fatal(err)
	}

	step := func(i int) (addr uint64) {
		return uint64((i*13)%256) * nvm.LineSize
	}
	var crashedAtD, crashedAtE = -1, -1
	for i := 0; i < 200; i++ {
		addr := step(i)
		var errD, errE error
		if i%4 == 3 {
			gotD, latD, e1 := dev.Read(addr)
			gotE, latE, e2 := eng.Read(addr)
			if (e1 == nil) != (e2 == nil) || gotD != gotE || latD != latE {
				t.Fatalf("op %d: read diverged: (%v,%v) vs (%v,%v)", i, latD, e1, latE, e2)
			}
			errD, errE = e1, e2
		} else {
			line := fill(addr, uint64(i))
			latD, e1 := dev.Write(addr, &line)
			latE, e2 := eng.Write(addr, &line)
			if (e1 == nil) != (e2 == nil) || latD != latE {
				t.Fatalf("op %d: write diverged: (%v,%v) vs (%v,%v)", i, latD, e1, latE, e2)
			}
			errD, errE = e1, e2
		}
		var pd, pe *device.PowerError
		if errors.As(errD, &pd) {
			crashedAtD = i
		}
		if errors.As(errE, &pe) {
			crashedAtE = i
		}
		if crashedAtD >= 0 || crashedAtE >= 0 {
			if pd == nil || pe == nil || pd.Shard != pe.Shard || pd.Boundary != pe.Boundary {
				t.Fatalf("op %d: power loss diverged: %v vs %v", i, errD, errE)
			}
			break
		}
	}
	if crashedAtD < 0 {
		t.Fatal("injected power loss never fired")
	}
	if err := dev.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Crash(); err != nil {
		t.Fatal(err)
	}
	injD.Disarm()
	injE.Disarm()
	repD, err := dev.Recover()
	if err != nil {
		t.Fatal(err)
	}
	repE, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if repD.TrackedEntries() != repE.TrackedEntries() || repD.RecoveredBlocks() != repE.RecoveredBlocks() ||
		repD.FailedBlocks() != repE.FailedBlocks() || repD.LostSlots() != repE.LostSlots() {
		t.Fatalf("recovery diverged: device tracked=%d recovered=%d, engine tracked=%d recovered=%d",
			repD.TrackedEntries(), repD.RecoveredBlocks(), repE.TrackedEntries(), repE.RecoveredBlocks())
	}
	for i := 0; i < 200; i += 7 {
		addr := step(i)
		gotD, latD, e1 := dev.Read(addr)
		gotE, latE, e2 := eng.Read(addr)
		if (e1 == nil) != (e2 == nil) || gotD != gotE || latD != latE {
			t.Fatalf("post-recovery read %#x diverged", addr)
		}
	}
	if dev.Stats() != eng.Stats() {
		t.Fatalf("stats diverged:\ndevice: %+v\nengine: %+v", dev.Stats(), eng.Stats())
	}
}

// driveEngineWorkload runs a deterministic open-loop workload: bursts of
// submissions (respecting queue depth via the Busy backpressure), a Run
// per burst, a power loss targeted at shard 1's own 40th boundary, crash,
// recover, a second burst phase, and a final flush. Returns a transcript
// of everything observable.
func driveEngineWorkload(t *testing.T, eng *device.Engine, shards int) string {
	t.Helper()
	var log bytes.Buffer
	record := func(rs []device.TxnResult) {
		for _, r := range rs {
			fmt.Fprintf(&log, "txn %d shard %d lat %d err %v data %x\n", r.ID, r.Shard, r.Latency, r.Err, r.Data[:8])
		}
	}

	// Power loss when shard 1 crosses its own 40th write boundary —
	// shard-local counting keeps the trigger deterministic at any worker
	// count.
	inj := chaos.NewDeviceInjector(40)
	hooks := inj.ShardHooks(shards)
	for i := range hooks {
		if i != 1 {
			hooks[i] = nil
		}
	}
	if err := eng.SetShardHooks(hooks); err != nil {
		t.Fatal(err)
	}

	submitBurst := func(base, n int) {
		for i := 0; i < n; i++ {
			addr := uint64((base+i*7)%(shards*64)) * nvm.LineSize
			var err error
			if (base+i)%5 == 4 {
				_, err = eng.SubmitRead(addr)
			} else {
				line := fill(addr, uint64(base+i))
				_, err = eng.SubmitWrite(addr, &line)
			}
			if err != nil && !errors.Is(err, device.ErrBusy) && !errors.Is(err, memctrl.ErrCrashed) {
				t.Fatalf("submit %d: %v", base+i, err)
			}
			if err != nil {
				fmt.Fprintf(&log, "submit %d rejected: %v\n", base+i, err)
			}
		}
	}

	for burst := 0; burst < 12; burst++ {
		submitBurst(burst*40, 40)
		record(eng.Run())
		if eng.Down() {
			fmt.Fprintf(&log, "down after burst %d\n", burst)
			break
		}
	}
	if !eng.Down() {
		t.Fatal("injected power loss never fired")
	}
	if err := eng.Crash(); err != nil {
		t.Fatal(err)
	}
	inj.Disarm()
	rep, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&log, "recovered tracked=%d recovered=%d failed=%d lost=%d\n",
		rep.TrackedEntries(), rep.RecoveredBlocks(), rep.FailedBlocks(), rep.LostSlots())

	for burst := 0; burst < 4; burst++ {
		submitBurst(1000+burst*40, 40)
		record(eng.Run())
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&log, "stats %+v\n", eng.Stats())
	return log.String()
}

// TestEngineDeterministicAcrossWorkers is the event-schedule determinism
// contract: the same workload produces a byte-identical transcript,
// telemetry snapshot, event trace and final checkpoint at every worker
// count.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	const shards = 8
	type run struct {
		transcript string
		telemetry  []byte
		trace      []byte
		ckpt       []byte
	}
	var runs []run
	for _, workers := range []int{1, 2, 3, 8} {
		eng, err := device.NewEngine(engineOpts(shards, workers, true))
		if err != nil {
			t.Fatal(err)
		}
		transcript := driveEngineWorkload(t, eng, shards)
		snap, err := eng.Snapshot().MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		ckpt, err := eng.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{transcript, snap, device.EncodeTrace(eng.Trace()), ckpt})
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].transcript != runs[0].transcript {
			t.Errorf("run %d transcript diverged from workers=1", i)
		}
		if !bytes.Equal(runs[i].telemetry, runs[0].telemetry) {
			t.Errorf("run %d telemetry snapshot diverged:\n%s\nvs\n%s", i, runs[i].telemetry, runs[0].telemetry)
		}
		if !bytes.Equal(runs[i].trace, runs[0].trace) {
			t.Errorf("run %d event trace diverged", i)
		}
		if !bytes.Equal(runs[i].ckpt, runs[0].ckpt) {
			t.Errorf("run %d final checkpoint diverged", i)
		}
	}
}

// TestEngineCheckpointRestoreRoundTrip checkpoints an engine mid-workload
// — with transactions still pending in the queues — and asserts the
// restored engine is byte-identical and behaviorally indistinguishable.
func TestEngineCheckpointRestoreRoundTrip(t *testing.T) {
	const shards = 4
	a, err := device.NewEngine(engineOpts(shards, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		addr := uint64((i*11)%(shards*32)) * nvm.LineSize
		line := fill(addr, uint64(i))
		if _, err := a.Write(addr, &line); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Leave transactions pending so the checkpoint exercises Txn
	// serialization.
	for i := 0; i < 10; i++ {
		addr := uint64(i) * nvm.LineSize
		line := fill(addr, 7000+uint64(i))
		if _, err := a.SubmitWrite(addr, &line); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	ckpt, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := device.NewEngine(engineOpts(shards, 3, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	ckpt2, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt, ckpt2) {
		t.Fatalf("restore is not byte-identical: %d vs %d bytes", len(ckpt), len(ckpt2))
	}

	// Both engines dispatch the pending queue and continue identically.
	ra, rb := a.Run(), b.Run()
	if len(ra) != 10 || len(rb) != 10 {
		t.Fatalf("pending dispatch: %d vs %d results, want 10", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID || ra[i].Latency != rb[i].Latency || (ra[i].Err == nil) != (rb[i].Err == nil) {
			t.Fatalf("result %d diverged: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	for i := 0; i < 20; i++ {
		addr := uint64((i*11)%(shards*32)) * nvm.LineSize
		da, la, e1 := a.Read(addr)
		db, lb, e2 := b.Read(addr)
		if (e1 == nil) != (e2 == nil) || da != db || la != lb {
			t.Fatalf("read %#x diverged", addr)
		}
	}
	ca, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatal("engines diverged after continued execution")
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := a.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRestoreRejectsMismatch covers the identity and integrity gates.
func TestEngineRestoreRejectsMismatch(t *testing.T) {
	a, err := device.NewEngine(engineOpts(4, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	line := fill(0, 1)
	if _, err := a.Write(0, &line); err != nil {
		t.Fatal(err)
	}
	ckpt, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	other, err := device.NewEngine(engineOpts(8, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(ckpt); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if err := a.Restore(ckpt[:len(ckpt)-2]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	flipped := append([]byte(nil), ckpt...)
	flipped[len(flipped)/2] ^= 0x40
	if err := a.Restore(flipped); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
	// The engine must still work after rejecting garbage.
	if err := a.Restore(ckpt); err != nil {
		t.Fatalf("valid checkpoint rejected after garbage: %v", err)
	}
	if _, _, err := a.Read(0); err != nil {
		t.Fatal(err)
	}
}

// TestEngineShardModes exercises the Enabled/Paused/Draining state machine.
func TestEngineShardModes(t *testing.T) {
	const shards = 2
	eng, err := device.NewEngine(engineOpts(shards, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	// Pause shard 1 (odd lines); its transactions queue but do not run.
	if err := eng.SetShardMode(1, device.ShardPaused); err != nil {
		t.Fatal(err)
	}
	line := fill(0, 1)
	id0, err := eng.SubmitWrite(0, &line)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := eng.SubmitWrite(nvm.LineSize, &line)
	if err != nil {
		t.Fatal(err)
	}
	rs := eng.Run()
	if len(rs) != 1 || rs[0].ID != id0 {
		t.Fatalf("paused shard dispatched: %+v", rs)
	}
	// Draining rejects new submissions, dispatches the queue, then parks.
	if err := eng.SetShardMode(1, device.ShardDraining); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SubmitWrite(nvm.LineSize, &line); !errors.Is(err, device.ErrBusy) {
		t.Fatalf("draining shard accepted a submission: %v", err)
	}
	rs = eng.Run()
	if len(rs) != 1 || rs[0].ID != id1 {
		t.Fatalf("draining shard did not dispatch its queue: %+v", rs)
	}
	if got := eng.ShardState(1); got != device.ShardPaused {
		t.Fatalf("drained shard in mode %v, want paused", got)
	}
	// Draining an empty shard parks immediately; re-enabling accepts work.
	if err := eng.SetShardMode(1, device.ShardEnabled); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Write(nvm.LineSize, &line); err != nil {
		t.Fatal(err)
	}
}

// TestEngineScale1000Shards runs a 1024-shard device through a workload,
// a checkpoint/restore round-trip and a worker-count determinism check —
// the "one machine simulates a thousand controllers" scale target.
func TestEngineScale1000Shards(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-shard scale test skipped in -short")
	}
	const shards = 1024
	sys := config.TestSystem()
	sys.NVM.CapacityBytes = 4 << 20 << 6 // 256 MB device, 256 KB per shard
	sys.Security.MetadataCache = config.CacheConfig{SizeBytes: 1 << 10, Ways: 2, LatencyCycles: 3}
	mk := func(workers int) *device.Engine {
		eng, err := device.NewEngine(device.EngineOptions{
			Options: device.Options{
				System:     sys,
				Mode:       memctrl.ModeSAC,
				Key:        []byte("engine-scale-key"),
				Shards:     shards,
				QueueDepth: 4,
			},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	drive := func(eng *device.Engine) []device.TxnResult {
		var out []device.TxnResult
		for round := 0; round < 2; round++ {
			for s := 0; s < shards; s++ {
				addr := uint64(s+round*shards) * nvm.LineSize
				line := fill(addr, uint64(round))
				if _, err := eng.SubmitWrite(addr, &line); err != nil {
					t.Fatalf("shard %d round %d: %v", s, round, err)
				}
			}
			out = append(out, eng.Run()...)
		}
		return out
	}

	a := mk(8)
	ra := drive(a)
	if len(ra) != 2*shards {
		t.Fatalf("dispatched %d of %d transactions", len(ra), 2*shards)
	}
	for _, r := range ra {
		if r.Err != nil {
			t.Fatalf("txn %d failed: %v", r.ID, r.Err)
		}
	}
	ckptA, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Determinism at scale: a single-threaded engine produces the same
	// bytes.
	b := mk(1)
	rb := drive(b)
	if len(ra) != len(rb) {
		t.Fatalf("result counts diverged: %d vs %d", len(ra), len(rb))
	}
	ckptB, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckptA, ckptB) {
		t.Fatal("1024-shard checkpoints diverged across worker counts")
	}

	// Restore the full 1024-shard state into a third engine and spot-check.
	c := mk(4)
	if err := c.Restore(ckptA); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s += 97 {
		addr := uint64(s + shards)
		addr *= nvm.LineSize
		got, _, err := c.Read(addr)
		if err != nil {
			t.Fatalf("restored read shard %d: %v", s, err)
		}
		if want := fill(addr, 1); got != want {
			t.Fatalf("restored shard %d returned wrong data", s)
		}
	}
}
