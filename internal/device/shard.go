package device

import (
	"time"

	"soteria/internal/inject"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// opcode selects the operation a request carries.
type opcode uint8

const (
	opRead opcode = iota
	opWrite
	opDrain // per-shard WPQ drain (sfence)
	// Control plane (broadcast under the device control mutex; these skip
	// the epoch barrier because they implement it).
	opFlush
	opCrash
	opRecover
	opVerify
	opStats
	opHook
	opStop
	// opBatch carries one shard's slice of an ExecBatch call: the worker
	// coalesces and executes exactly that group as a unit (batch.go). It
	// is never serialized into a Txn, so appending it here leaves the
	// checkpointed data-plane opcodes (opRead..opDrain) untouched.
	opBatch
)

// request is one unit of work on a shard queue. addr is shard-local.
type request struct {
	op    opcode
	addr  uint64
	data  *nvm.Line
	hook  inject.Hook
	epoch uint64
	resp  chan response // buffered(1): the worker never blocks responding

	// opBatch only: this shard's slice of one ExecBatch call — shard-local
	// ops, their original indices, and the batch's shared result slice
	// (shards own disjoint index sets, so concurrent workers never write
	// the same slot).
	bops []BatchOp
	bidx []int32
	bres []BatchResult
}

// response carries everything any opcode can return.
type response struct {
	data    nvm.Line
	latency sim.Time
	report  *memctrl.RecoveryReport
	stats   memctrl.Stats
	err     error
}

// shard couples one shardCore (controller, clock, execution state machine)
// with its queue, worker state and metric handles. Everything below the
// queue is touched only by the worker goroutine, preserving memctrl's
// single-threaded contract.
type shard struct {
	shardCore
	dev      *Device
	reqs     chan *request
	batchMax int

	// Batch scratch (worker-only), reused across runBatch calls so the
	// steady-state batch loop performs no per-batch allocations.
	supersededBy map[int]int
	lastWrite    map[uint64]int
	results      []response

	// execBatch scratch (worker-only, separate from the runBatch maps
	// because execBatch runs inside runBatch's execution loop) plus a
	// reusable per-op request so the batch loop allocates nothing.
	bSupersededBy map[int]int
	bLastWrite    map[uint64]int
	breq          request

	// svc estimates wall-clock nanoseconds per request for retry hints.
	svc ewma

	batches   *telemetry.Counter
	batched   *telemetry.Histogram
	coalesced *telemetry.Counter
	busy      *telemetry.Counter
}

// retryHint converts queue depth into a wall-clock backoff suggestion.
func (s *shard) retryHint(pending int) time.Duration {
	per := s.svc.value()
	if per <= 0 {
		per = time.Microsecond
	}
	return time.Duration(pending+1) * per
}

// run is the shard worker: drain a batch, coalesce, execute, respond.
func (s *shard) run() {
	defer s.dev.wg.Done()
	batch := make([]*request, 0, s.batchMax)
	for {
		req := <-s.reqs
		batch = append(batch[:0], req)
		// Opportunistically extend the batch with whatever is already
		// queued, up to the batch bound; never wait for more.
	fill:
		for len(batch) < s.batchMax {
			select {
			case r := <-s.reqs:
				batch = append(batch, r)
			default:
				break fill
			}
		}
		if !s.runBatch(batch) {
			return
		}
	}
}

// runBatch coalesces and executes one batch; false means opStop was seen
// and the worker must exit (any requests after the stop are answered with
// ErrClosed — Close has already fenced out new senders, so the tail is
// finite and fully drained here).
func (s *shard) runBatch(batch []*request) bool {
	s.batches.Inc()
	s.batched.Observe(uint64(len(batch)))

	// Write coalescing before WPQ admission: a write superseded by a
	// later write to the same line — with no read of that line and no
	// barrier-like operation in between — is dropped and acknowledged
	// with its superseder's outcome, exactly the semantics of an ADR
	// write-combining buffer. supersededBy[i] holds the absorbing index.
	if s.supersededBy == nil {
		s.supersededBy = make(map[int]int)
		s.lastWrite = make(map[uint64]int) // local line addr -> pending write index
	}
	supersededBy, lastWrite := s.supersededBy, s.lastWrite
	clear(supersededBy)
	clear(lastWrite)
	for i, r := range batch {
		switch r.op {
		case opWrite:
			if j, ok := lastWrite[r.addr]; ok {
				supersededBy[j] = i
			}
			lastWrite[r.addr] = i
		case opRead:
			delete(lastWrite, r.addr)
		default:
			// Drains, flushes and control ops order against every write.
			clear(lastWrite)
		}
	}

	if cap(s.results) < len(batch) {
		s.results = make([]response, len(batch))
	}
	results := s.results[:len(batch)]
	for i := range results {
		results[i] = response{}
	}
	stopAt := -1
	for i, r := range batch {
		if _, dropped := supersededBy[i]; dropped {
			s.coalesced.Inc()
			continue
		}
		if stopAt >= 0 {
			results[i] = response{err: ErrClosed}
			continue
		}
		if r.op == opStop {
			stopAt = i
			continue
		}
		if r.op == opBatch {
			// A wire batch's shard group: coalesced and executed as its
			// own unit, with per-op outcomes written straight into the
			// batch's result slice (batch.go).
			results[i] = s.execBatch(r)
			continue
		}
		start := time.Now()
		results[i] = s.exec(r)
		s.svc.observe(time.Since(start))
	}
	for i, r := range batch {
		if j, dropped := supersededBy[i]; dropped {
			// The absorbing write carries this one's durability; mirror
			// its outcome with zero added latency. Chains resolve because
			// a superseder is never itself superseded by an earlier index.
			res := results[j]
			for {
				if k, again := supersededBy[j]; again {
					j, res = k, results[k]
					continue
				}
				break
			}
			results[i] = response{err: res.err}
		}
		r.resp <- results[i]
	}
	if stopAt >= 0 {
		// Drain the finite tail left by senders that raced Close's fence.
		for {
			select {
			case r := <-s.reqs:
				r.resp <- response{err: ErrClosed}
			default:
				return false
			}
		}
	}
	return true
}

// Device is the shardEnv of its goroutine-backed shards: the crash barrier
// and the down bit live in atomics so a power cut on one worker propagates
// to concurrently executing shards immediately.
func (d *Device) epochNow() uint64 { return d.epoch.Load() }
func (d *Device) isDown() bool     { return d.down.Load() }
func (d *Device) powerCut() {
	d.down.Store(true)
	d.epoch.Add(1)
}
