package device

import (
	"fmt"

	"soteria/internal/inject"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// ShardMode is the explicit state of one shard's request pipeline. The
// goroutine-backed Device always runs shards Enabled; the deterministic
// Engine exposes the full state machine (pause for checkpoint barriers,
// drain for controlled shutdown of a single shard).
type ShardMode uint8

const (
	// ShardEnabled: submissions are accepted and dispatched.
	ShardEnabled ShardMode = iota
	// ShardPaused: submissions are accepted and queued but not dispatched.
	ShardPaused
	// ShardDraining: queued transactions dispatch, new submissions are
	// rejected; the shard parks itself in ShardPaused once empty.
	ShardDraining
)

func (m ShardMode) String() string {
	switch m {
	case ShardEnabled:
		return "enabled"
	case ShardPaused:
		return "paused"
	case ShardDraining:
		return "draining"
	default:
		return "invalid"
	}
}

// Txn is one in-flight data-plane transaction in serializable form: plain
// data instead of a goroutine stack parked on a channel, so a pending
// queue round-trips through Engine.Checkpoint byte-for-byte.
type Txn struct {
	// ID orders results deterministically (assigned at submission).
	ID uint64
	// Op is the data-plane opcode (opRead, opWrite or opDrain).
	Op uint8
	// Addr is the shard-local line address.
	Addr uint64
	// HasData marks a write payload in Data.
	HasData bool
	// Data is the 64-byte write payload (zero for reads and drains).
	Data nvm.Line
	// Epoch is the crash-barrier generation stamped at submission; a
	// transaction older than the environment's epoch retires unexecuted.
	Epoch uint64
}

// shardEnv is what a shard's execution state machine needs from its host:
// the crash-barrier generation, the device-down bit, and a way to report a
// mid-operation power loss. The goroutine Device backs it with atomics
// (cuts propagate immediately across concurrent workers); the
// deterministic Engine backs it with plain per-run snapshots (cuts apply
// at the end of the current run quantum, keeping every shard's outcome a
// pure function of its own stream).
type shardEnv interface {
	epochNow() uint64
	isDown() bool
	// powerCut reports that an inject.PowerLoss unwound an operation on
	// this shard; the host takes the device down and advances the barrier.
	powerCut()
}

// shardCore is the pure-data per-shard state machine shared by the
// goroutine-backed Device and the event-driven Engine: one controller, one
// simulated clock, one mode, and the counters its execution path touches.
// Nothing in here knows about channels or goroutines; exec is called by
// exactly one dispatcher at a time.
type shardCore struct {
	id   int
	env  shardEnv
	ctrl *memctrl.Controller
	reg  *telemetry.Registry
	mode ShardMode

	// now is the shard's private simulated clock.
	now sim.Time

	retired   *telemetry.Counter
	powerLoss *telemetry.Counter
}

// exec runs one request on the controller, converting an inject.PowerLoss
// unwind into a typed error and a device-wide crash barrier.
func (s *shardCore) exec(r *request) (res response) {
	// Data-plane requests admitted before the last crash barrier are
	// retired unexecuted: power was lost while they sat in the queue.
	switch r.op {
	case opRead, opWrite, opDrain:
		if r.epoch < s.env.epochNow() {
			s.retired.Inc()
			return response{err: ErrRetired}
		}
		if s.env.isDown() {
			return response{err: memctrl.ErrCrashed}
		}
	}

	defer func() {
		if p := recover(); p != nil {
			if pl, ok := p.(inject.PowerLoss); ok {
				// Simulated power cut mid-operation: take the whole device
				// down and retire everything still queued behind us.
				s.powerLoss.Inc()
				s.env.powerCut()
				res = response{err: &PowerError{Shard: s.id, Boundary: pl.Boundary}}
				return
			}
			res = response{err: &PanicError{Shard: s.id, Value: p}}
		}
	}()

	switch r.op {
	case opRead:
		before := s.now
		data, now, err := s.ctrl.ReadBlock(s.now, r.addr)
		s.now = now
		return response{data: data, latency: now - before, err: err}
	case opWrite:
		before := s.now
		now, err := s.ctrl.WriteBlock(s.now, r.addr, r.data)
		s.now = now
		return response{latency: now - before, err: err}
	case opDrain:
		before := s.now
		s.now = s.ctrl.DrainWPQ(s.now)
		return response{latency: s.now - before}
	case opFlush:
		before := s.now
		s.now = s.ctrl.FlushAll(s.now)
		return response{latency: s.now - before}
	case opCrash:
		return response{err: s.ctrl.Crash()}
	case opRecover:
		rep, err := s.ctrl.Recover()
		return response{report: rep, err: err}
	case opVerify:
		return response{err: s.ctrl.VerifyAll()}
	case opStats:
		return response{stats: s.ctrl.Stats()}
	case opHook:
		s.ctrl.SetHook(r.hook)
		return response{}
	default:
		return response{err: ErrClosed}
	}
}

// request converts a serializable transaction back into the internal
// request form exec dispatches on.
func (t *Txn) request() *request {
	r := &request{op: opcode(t.Op), addr: t.Addr, epoch: t.Epoch}
	if t.HasData {
		r.data = &t.Data
	}
	return r
}

// shardOf maps a device data address to its shard: global line g lives on
// shard g mod shards (line interleaving).
func shardOf(addr uint64, shards int) int {
	return int((addr / nvm.LineSize) % uint64(shards))
}

// toLocalAddr translates a device address to the owning shard's local
// address space: global line g becomes local line g / shards.
func toLocalAddr(addr uint64, shards int) uint64 {
	return (addr / nvm.LineSize) / uint64(shards) * nvm.LineSize
}

// checkLineAddr validates alignment and range of a device data address.
func checkLineAddr(addr, capacity uint64) error {
	if addr%nvm.LineSize != 0 {
		return fmt.Errorf("device: unaligned address %#x", addr)
	}
	if addr >= capacity {
		return fmt.Errorf("device: address %#x beyond capacity %#x", addr, capacity)
	}
	return nil
}

// checkpoint serializes the shard's mode, clock and pending transactions.
// The controller itself is checkpointed separately (length-prefixed) so a
// corrupt inner payload fails cleanly.
func appendTxns(w *sim.SnapW, pend []Txn) {
	w.U32(uint32(len(pend)))
	for i := range pend {
		t := &pend[i]
		w.U64(t.ID)
		w.U8(t.Op)
		w.U64(t.Addr)
		w.Bool(t.HasData)
		w.Raw(t.Data[:])
		w.U64(t.Epoch)
	}
}

func readTxns(r *sim.SnapR, maxPending int) []Txn {
	n := r.Count(8 + 1 + 8 + 1 + nvm.LineSize + 8)
	if n > maxPending {
		r.Fail(fmt.Errorf("device: pending queue of %d exceeds depth bound %d", n, maxPending))
		return nil
	}
	if n == 0 {
		return nil
	}
	pend := make([]Txn, n)
	for i := range pend {
		t := &pend[i]
		t.ID = r.U64()
		t.Op = r.U8()
		t.Addr = r.U64()
		t.HasData = r.Bool()
		copy(t.Data[:], r.Raw(nvm.LineSize))
		t.Epoch = r.U64()
	}
	return pend
}
