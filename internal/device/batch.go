package device

import (
	"fmt"
	"time"

	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// Batch op codes, the device-level vocabulary of a batched data-plane
// request. devnet's v3 batch frames carry these bytes on the wire, so
// they are fixed protocol constants, not an iota that may drift.
const (
	BatchRead  uint8 = 1
	BatchWrite uint8 = 2
	BatchDrain uint8 = 3
)

// BatchOp is one data-plane operation inside a batch. Addr is a device
// (global) address; Line is the write payload (ignored for reads and
// drains).
type BatchOp struct {
	Op   uint8
	Addr uint64
	Line nvm.Line
}

// BatchResult is the completion record of one batched op, written into
// the caller's result slice at the op's original index.
type BatchResult struct {
	Data    nvm.Line
	Latency sim.Time
	Err     error
}

// batchGroup is the per-shard slice of one batch: shard-local copies of
// the ops plus their original indices, and a reusable request/response
// pair so steady-state batch execution allocates nothing.
type batchGroup struct {
	ops  []BatchOp
	idx  []int32
	req  *request
	sent bool
}

// batchRun is the pooled scratch of one ExecBatch call.
type batchRun struct {
	groups []batchGroup
	used   []int32
}

// ExecBatch executes len(ops) data-plane operations as one unit: the ops
// are partitioned by shard, each shard's group is submitted as a single
// queue entry, and the shard worker coalesces and executes exactly that
// group — so the coalescing window is the batch itself, deterministic for
// a fixed batch composition regardless of queue-drain timing, and the
// whole batch costs one channel round-trip per shard instead of one per
// op.
//
// Per-op outcomes land in res at the op's index (len(res) must equal
// len(ops)). A full shard queue rejects that shard's entire group with a
// per-op *BusyError — none of the group's ops execute, so the caller may
// re-submit just those. ExecBatch itself only fails on length mismatch.
//
// Write coalescing within a group mirrors the worker's opportunistic
// batching: a write superseded by a later write to the same line (with no
// intervening read or drain) is dropped and acknowledged with its
// superseder's outcome at zero added latency.
func (d *Device) ExecBatch(ops []BatchOp, res []BatchResult) error {
	if len(ops) != len(res) {
		return fmt.Errorf("device: batch of %d ops with %d result slots", len(ops), len(res))
	}
	if len(ops) == 0 {
		return nil
	}
	br, _ := d.batchPool.Get().(*batchRun)
	if br == nil {
		br = &batchRun{}
	}
	if len(br.groups) < d.opts.Shards {
		br.groups = make([]batchGroup, d.opts.Shards)
	}
	br.used = br.used[:0]

	for i := range ops {
		op := &ops[i]
		var err error
		switch op.Op {
		case BatchRead, BatchWrite, BatchDrain:
			err = d.checkAddr(op.Addr)
		default:
			err = fmt.Errorf("device: unknown batch op %d", op.Op)
		}
		if err == nil && d.down.Load() {
			err = memctrl.ErrCrashed
		}
		if err != nil {
			res[i] = BatchResult{Err: err}
			continue
		}
		sh := int32(d.ShardOf(op.Addr))
		g := &br.groups[sh]
		if len(g.ops) == 0 {
			br.used = append(br.used, sh)
		}
		g.ops = append(g.ops, BatchOp{Op: op.Op, Addr: d.localAddr(op.Addr), Line: op.Line})
		g.idx = append(g.idx, int32(i))
	}

	epoch := d.epoch.Load()
	for _, sh := range br.used {
		g := &br.groups[sh]
		if g.req == nil {
			g.req = &request{resp: make(chan response, 1)}
		}
		g.req.op = opBatch
		g.req.epoch = epoch
		g.req.bops, g.req.bidx, g.req.bres = g.ops, g.idx, res
		s := d.shards[sh]
		d.subMu.RLock()
		if d.closed.Load() {
			d.subMu.RUnlock()
			for _, ix := range g.idx {
				res[ix] = BatchResult{Err: ErrClosed}
			}
			continue
		}
		select {
		case s.reqs <- g.req:
			d.subMu.RUnlock()
			g.sent = true
		default:
			pending := len(s.reqs)
			d.subMu.RUnlock()
			s.busy.Inc()
			err := &BusyError{Shard: s.id, Pending: pending, RetryAfter: s.retryHint(pending)}
			for _, ix := range g.idx {
				res[ix] = BatchResult{Err: err}
			}
		}
	}
	for _, sh := range br.used {
		g := &br.groups[sh]
		if g.sent {
			<-g.req.resp
			g.req.bops, g.req.bidx, g.req.bres = nil, nil, nil
		}
		g.ops, g.idx = g.ops[:0], g.idx[:0]
		g.sent = false
	}
	d.batchPool.Put(br)
	return nil
}

// execBatch runs one shard group of a batch on the worker goroutine:
// coalesce writes within the group, execute the survivors in order, and
// write each op's outcome into the batch's shared result slice at its
// original index (shards own disjoint index sets, so concurrent workers
// never touch the same slot). The group-local request r.breq is reused
// per op so the loop allocates nothing.
func (s *shard) execBatch(r *request) response {
	ops, idx, out := r.bops, r.bidx, r.bres
	s.batches.Inc()
	s.batched.Observe(uint64(len(ops)))

	if s.bSupersededBy == nil {
		s.bSupersededBy = make(map[int]int)
		s.bLastWrite = make(map[uint64]int)
	}
	supersededBy, lastWrite := s.bSupersededBy, s.bLastWrite
	clear(supersededBy)
	clear(lastWrite)
	for i := range ops {
		switch ops[i].Op {
		case BatchWrite:
			if j, ok := lastWrite[ops[i].Addr]; ok {
				supersededBy[j] = i
			}
			lastWrite[ops[i].Addr] = i
		case BatchRead:
			delete(lastWrite, ops[i].Addr)
		default:
			clear(lastWrite)
		}
	}

	for i := range ops {
		if _, dropped := supersededBy[i]; dropped {
			s.coalesced.Inc()
			continue
		}
		s.breq.addr = ops[i].Addr
		s.breq.epoch = r.epoch
		s.breq.data = nil
		switch ops[i].Op {
		case BatchRead:
			s.breq.op = opRead
		case BatchWrite:
			s.breq.op = opWrite
			s.breq.data = &ops[i].Line
		default:
			s.breq.op = opDrain
		}
		start := time.Now()
		res := s.exec(&s.breq)
		s.svc.observe(time.Since(start))
		out[idx[i]] = BatchResult{Data: res.data, Latency: res.latency, Err: res.err}
	}
	for i := range ops {
		if j, dropped := supersededBy[i]; dropped {
			// Mirror the absorbing write's outcome at zero added latency;
			// chains resolve because a superseder is never itself
			// superseded by an earlier index.
			for {
				if k, again := supersededBy[j]; again {
					j = k
					continue
				}
				break
			}
			out[idx[i]] = BatchResult{Err: out[idx[j]].Err}
		}
	}
	return response{}
}

// ExecBatch is the Engine's batched submission path: every op is queued,
// then Run dispatches the whole batch as one unit and the completions are
// folded back into res by transaction ID. The engine never coalesces
// (Info.BatchSize is 1), so per-op latencies match one-at-a-time
// submission; the batching saves the per-op Submit/Run round-trips.
// Pending transactions submitted outside this call are dispatched too
// (their results are simply not folded into res), so callers should not
// interleave ExecBatch with un-Run Submits.
func (e *Engine) ExecBatch(ops []BatchOp, res []BatchResult) error {
	if len(ops) != len(res) {
		return fmt.Errorf("device: batch of %d ops with %d result slots", len(ops), len(res))
	}
	if len(ops) == 0 {
		return nil
	}
	if cap(e.bids) < len(ops) {
		e.bids = make([]uint64, len(ops))
	}
	// ids[i] holds the op's transaction ID plus one (0 = not submitted),
	// increasing with i among submitted ops.
	ids := e.bids[:len(ops)]
	firstID := e.nextID
	for i := range ops {
		var (
			id  uint64
			err error
		)
		switch ops[i].Op {
		case BatchRead:
			id, err = e.submitTxn(opRead, ops[i].Addr, nil)
		case BatchWrite:
			id, err = e.submitTxn(opWrite, ops[i].Addr, &ops[i].Line)
		case BatchDrain:
			id, err = e.submitTxn(opDrain, ops[i].Addr, nil)
		default:
			err = fmt.Errorf("device: unknown batch op %d", ops[i].Op)
		}
		if err != nil {
			res[i] = BatchResult{Err: err}
			ids[i] = 0
			continue
		}
		ids[i] = id + 1
		// Overwritten on completion; survives only if the shard is paused
		// and the transaction never dispatches in this Run.
		res[i] = BatchResult{Err: fmt.Errorf("device: batch op %d not dispatched (shard paused?)", i)}
	}
	// Run returns completions in ID order; our ops' ids are in ID order
	// too, so a two-pointer merge folds them back. Completions of
	// transactions queued before this call (ID < firstID) are skipped.
	j := 0
	for _, tr := range e.Run() {
		if tr.ID < firstID {
			continue
		}
		want := tr.ID + 1
		for j < len(ops) && ids[j] != want {
			j++
		}
		if j < len(ops) {
			res[j] = BatchResult{Data: tr.Data, Latency: tr.Latency, Err: tr.Err}
			j++
		}
	}
	return nil
}
