package device_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/inject"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
)

func newTestDevice(t *testing.T, mutate func(*device.Options)) *device.Device {
	t.Helper()
	opts := device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("device-test-key"),
		Shards: 4,
	}
	if mutate != nil {
		mutate(&opts)
	}
	d, err := device.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// fill derives deterministic line content from an address and a salt.
func fill(addr uint64, salt uint64) nvm.Line {
	var l nvm.Line
	x := addr*0x9e3779b97f4a7c15 + salt*0xbf58476d1ce4e5b9 + 1
	for off := 0; off < nvm.LineSize; off += 8 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		for k := 0; k < 8; k++ {
			l[off+k] = byte(x >> (8 * uint(k)))
		}
	}
	return l
}

func TestAddressMappingRoundTrip(t *testing.T) {
	d := newTestDevice(t, nil)
	for _, addr := range []uint64{0, 64, 128, 192, 256, 64 * 12345, 4<<20 - 64} {
		s := d.ShardOf(addr)
		if s != int(addr/64%4) {
			t.Fatalf("ShardOf(%#x) = %d, want line interleave", addr, s)
		}
	}
	// Global -> (shard, local) -> global must be the identity.
	for line := uint64(0); line < 64; line++ {
		addr := line * 64
		got := d.GlobalAddr(d.ShardOf(addr), (line/4)*64)
		if got != addr {
			t.Fatalf("mapping round trip: %#x -> %#x", addr, got)
		}
	}
}

func TestReadWriteAcrossShards(t *testing.T) {
	d := newTestDevice(t, nil)
	const n = 64 // touches every shard repeatedly
	for i := uint64(0); i < n; i++ {
		addr := i * 64
		line := fill(addr, 1)
		if _, err := d.Write(addr, &line); err != nil {
			t.Fatalf("write %#x: %v", addr, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		addr := i * 64
		got, lat, err := d.Read(addr)
		if err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if want := fill(addr, 1); got != want {
			t.Fatalf("read %#x returned wrong data", addr)
		}
		if lat < 0 {
			t.Fatalf("read %#x: negative latency %v", addr, lat)
		}
	}
	st := d.Stats()
	if st.DataWrites != n || st.DataReads != n {
		t.Fatalf("stats: %d writes, %d reads; want %d each", st.DataWrites, st.DataReads, n)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := d.VerifyAll(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestRejectsBadAddresses(t *testing.T) {
	d := newTestDevice(t, nil)
	if _, _, err := d.Read(7); err == nil {
		t.Fatal("unaligned read accepted")
	}
	if _, _, err := d.Read(4 << 20); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

// gateHook blocks the first write boundary it sees until released, so
// tests can hold a shard worker mid-batch while they stuff its queue.
type gateHook struct {
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func newGateHook() *gateHook {
	return &gateHook{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateHook) Event(ev inject.Event) {
	if ev.Kind != inject.DeviceWrite {
		return
	}
	g.once.Do(func() {
		close(g.started)
		<-g.release
	})
}

func TestBackpressureTypedBusy(t *testing.T) {
	const depth = 4
	d := newTestDevice(t, func(o *device.Options) {
		o.Shards = 1
		o.QueueDepth = depth
	})
	gate := newGateHook()
	hooks := []inject.Hook{gate}
	if err := d.SetShardHooks(hooks); err != nil {
		t.Fatal(err)
	}

	// First write parks the worker inside the gate...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		line := fill(0, 2)
		if _, err := d.Write(0, &line); err != nil {
			t.Errorf("gated write: %v", err)
		}
	}()
	<-gate.started

	// ...then fill the queue with spaced submissions (the worker already
	// holds its batch, so nothing drains until the gate opens). Each
	// waiter blocks on its response; the last ones may bounce.
	for i := 1; i <= depth+1; i++ {
		addr := uint64(i) * 64
		wg.Add(1)
		go func() {
			defer wg.Done()
			line := fill(addr, 2)
			_, err := d.Write(addr, &line)
			if err != nil && !errors.Is(err, device.ErrBusy) {
				t.Errorf("queued write %#x: %v", addr, err)
			}
		}()
		time.Sleep(20 * time.Millisecond)
	}
	// The queue is now full: one more submission must bounce with the
	// typed error instead of blocking.
	var busy *device.BusyError
	line := fill((depth+10)*64, 2)
	_, err := d.Write((depth+10)*64, &line)
	if err == nil {
		t.Fatal("submission on a full queue succeeded; backpressure did not engage")
	}
	if !errors.As(err, &busy) {
		t.Fatalf("want *BusyError, got %v", err)
	}
	if !errors.Is(busy, device.ErrBusy) {
		t.Fatal("BusyError does not match ErrBusy sentinel")
	}
	if busy.Shard != 0 || busy.Pending == 0 || busy.RetryAfter <= 0 {
		t.Fatalf("busy hint incomplete: %+v", busy)
	}
	close(gate.release)
	wg.Wait()
}

func TestWriteCoalescingInBatch(t *testing.T) {
	d := newTestDevice(t, func(o *device.Options) {
		o.Shards = 1
		o.QueueDepth = 16
		o.BatchSize = 8
		o.Telemetry = true
	})
	gate := newGateHook()
	if err := d.SetShardHooks([]inject.Hook{gate}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		line := fill(64, 3)
		if _, err := d.Write(64, &line); err != nil {
			t.Errorf("gated write: %v", err)
		}
	}()
	<-gate.started

	// Three writes to the same line queue up behind the gate; when the
	// worker drains them in one batch, the first two coalesce into the
	// third.
	results := make(chan error, 3)
	for v := uint64(0); v < 3; v++ {
		line := fill(0, 10+v)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := d.Write(0, &line)
			results <- err
		}()
		// Space the submissions so they enqueue in salt order and the
		// worker drains all three in a single batch.
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if len(results) > 0 {
		t.Fatal("writes completed before gate release")
	}
	close(gate.release)
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("coalesced write: %v", err)
		}
	}

	got, _, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := fill(0, 12); got != want {
		t.Fatal("last write did not win after coalescing")
	}
	snap := d.Snapshot()
	if snap.Counters["device_coalesced_writes_total"] == 0 {
		t.Fatal("no writes were coalesced (batch never formed?)")
	}
}

func TestCrashRetiresQueuedRequests(t *testing.T) {
	d := newTestDevice(t, func(o *device.Options) {
		o.Shards = 1
		o.QueueDepth = 8
	})
	line := fill(0, 4)
	if _, err := d.Write(0, &line); err != nil {
		t.Fatal(err)
	}

	gate := newGateHook()
	if err := d.SetShardHooks([]inject.Hook{gate}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l := fill(64, 4)
		d.Write(64, &l) // parks the worker
	}()
	<-gate.started

	// Queue three more writes behind the gate, then crash: the barrier
	// must retire them unexecuted.
	errs := make([]error, 3)
	for i := range errs {
		i := i
		addr := uint64(2+i) * 64
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := fill(addr, 4)
			_, errs[i] = d.Write(addr, &l)
		}()
	}
	// Let the writes enqueue behind the gate, then start the crash; the
	// epoch advances (and opCrash lands in the queue) before the gate
	// opens, so the queued writes must retire.
	time.Sleep(100 * time.Millisecond)
	crashDone := make(chan error, 1)
	go func() { crashDone <- d.Crash() }()
	time.Sleep(100 * time.Millisecond)
	close(gate.release)
	if err := <-crashDone; err != nil {
		t.Fatalf("crash: %v", err)
	}
	wg.Wait()
	retired := 0
	for _, err := range errs {
		if errors.Is(err, device.ErrRetired) {
			retired++
		} else if err != nil && !errors.Is(err, memctrl.ErrCrashed) {
			t.Fatalf("queued write after crash: %v", err)
		}
	}
	if retired == 0 {
		t.Fatal("crash barrier retired nothing (gate raced the crash?)")
	}

	// Down until recovery.
	if _, _, err := d.Read(0); !errors.Is(err, memctrl.ErrCrashed) {
		t.Fatalf("read while down: %v", err)
	}
	rep, err := d.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rep.Shards) != 1 || rep.Shards[0] == nil {
		t.Fatalf("recovery report incomplete: %+v", rep)
	}
	if !rep.Clean() {
		t.Fatalf("crash-only recovery not clean: %+v", rep.Shards[0])
	}
	got, _, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != fill(0, 4) {
		t.Fatal("committed write lost across crash/recover")
	}
}

// TestSnapshotDeterministicPerShardStreams locks the core determinism
// contract: identical per-shard request streams produce byte-identical
// merged telemetry, whether the shards are driven by one goroutine or by
// one goroutine per shard.
func TestSnapshotDeterministicPerShardStreams(t *testing.T) {
	const shards = 4
	const opsPerShard = 200

	run := func(concurrent bool) []byte {
		d := newTestDevice(t, func(o *device.Options) {
			o.Shards = shards
			o.Telemetry = true
		})
		driveShard := func(s int) {
			for i := 0; i < opsPerShard; i++ {
				addr := d.GlobalAddr(s, uint64(i%37)*64)
				if i%3 == 2 {
					if _, _, err := d.Read(addr); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				} else {
					line := fill(addr, uint64(i))
					if _, err := d.Write(addr, &line); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				}
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for s := 0; s < shards; s++ {
				wg.Add(1)
				go func(s int) { defer wg.Done(); driveShard(s) }(s)
			}
			wg.Wait()
		} else {
			for s := 0; s < shards; s++ {
				driveShard(s)
			}
		}
		data, err := d.Snapshot().MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return data
	}

	sequential := run(false)
	for i := 0; i < 2; i++ {
		if got := run(true); !bytes.Equal(got, sequential) {
			t.Fatalf("snapshot differs between sequential and concurrent per-shard drivers (attempt %d)", i)
		}
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	d := newTestDevice(t, func(o *device.Options) {
		o.Shards = 4
		o.Telemetry = true
		o.QueueDepth = 16
	})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				addr := uint64((w*151+i*7)%2048) * 64
				if i%4 == 0 {
					_, _, err := d.Read(addr)
					if err != nil && !errors.Is(err, device.ErrBusy) {
						t.Errorf("read: %v", err)
					}
				} else {
					line := fill(addr, uint64(w))
					_, err := d.Write(addr, &line)
					if err != nil && !errors.Is(err, device.ErrBusy) {
						t.Errorf("write: %v", err)
					}
				}
			}
		}(w)
	}
	// Snapshots and stats race the load on purpose: both must be safe.
	for i := 0; i < 10; i++ {
		_ = d.Snapshot()
	}
	wg.Wait()
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseRejectsAndIsIdempotent(t *testing.T) {
	d := newTestDevice(t, nil)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Read(0); !errors.Is(err, device.ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestShardCountMustDivide(t *testing.T) {
	_, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("k"),
		Shards: 3, // 65536 lines % 3 != 0
	})
	if err == nil {
		t.Fatal("uneven shard split accepted")
	}
}

func TestInfo(t *testing.T) {
	d := newTestDevice(t, nil)
	info := d.Info()
	if info.Shards != 4 || info.CapacityBytes != 4<<20 || info.Mode != memctrl.ModeSRC.String() {
		t.Fatalf("info: %+v", info)
	}
}

func ExampleDevice() {
	d, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("example-key"),
		Shards: 2,
	})
	if err != nil {
		panic(err)
	}
	defer d.Close()
	line := nvm.Line{1, 2, 3}
	if _, err := d.Write(0, &line); err != nil {
		panic(err)
	}
	got, _, err := d.Read(0)
	if err != nil {
		panic(err)
	}
	fmt.Println(got[:3])
	// Output: [1 2 3]
}
