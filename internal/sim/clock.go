// Package sim provides the tiny timing substrate shared by the performance
// model: a picosecond-resolution clock and a bank-busy resource model. The
// reproduction is trace-driven rather than cycle-accurate, so the only
// global ordering primitive needed is a monotonically advancing clock that
// components charge latencies against.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated instant measured in integer picoseconds. Using an
// integer avoids float drift across billions of events; 2^63 ps is roughly
// 106 days of simulated time, far beyond any run we perform.
type Time int64

// FromDuration converts a wall-clock duration into simulated picoseconds.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds() * 1000) }

// Duration converts a simulated instant back into a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t/1000) * time.Nanosecond }

// Picoseconds returns the raw picosecond count.
func (t Time) Picoseconds() int64 { return int64(t) }

// String renders the time in nanoseconds for human consumption.
func (t Time) String() string { return fmt.Sprintf("%dns", t/1000) }

// Clock is the global simulation clock. The zero value starts at time zero.
type Clock struct {
	now Time
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative advances are ignored so
// that out-of-order latency reports cannot move time backwards.
func (c *Clock) Advance(d Time) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock to t if t is in the future.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}

// CyclesToTime converts a cycle count at the given frequency into simulated
// picoseconds, rounding to the nearest picosecond.
func CyclesToTime(cycles float64, hz float64) Time {
	return Time(cycles * 1e12 / hz)
}

// Banks models a set of independently busy resources (NVM banks). A request
// to bank b issued at time t starts at max(t, free[b]) and occupies the bank
// for its service latency.
type Banks struct {
	free []Time
}

// NewBanks returns a bank model with n banks, all free at time zero.
func NewBanks(n int) *Banks {
	if n <= 0 {
		n = 1
	}
	return &Banks{free: make([]Time, n)}
}

// N returns the number of banks.
func (b *Banks) N() int { return len(b.free) }

// BankFor maps a line address to a bank by low-order interleaving.
func (b *Banks) BankFor(lineAddr uint64) int { return int(lineAddr % uint64(len(b.free))) }

// Schedule reserves bank `bank` for `service` starting no earlier than
// `earliest` and returns the completion time.
func (b *Banks) Schedule(bank int, earliest Time, service Time) (done Time) {
	start := earliest
	if b.free[bank] > start {
		start = b.free[bank]
	}
	done = start + service
	b.free[bank] = done
	return done
}

// NextFree returns the time at which the given bank becomes idle.
func (b *Banks) NextFree(bank int) Time { return b.free[bank] }

// Reset marks every bank free at time zero.
func (b *Banks) Reset() {
	for i := range b.free {
		b.free[i] = 0
	}
}

// Checkpoint serializes the per-bank busy horizon.
func (b *Banks) Checkpoint(w *SnapW) {
	w.U32(uint32(len(b.free)))
	for _, t := range b.free {
		w.Time(t)
	}
}

// Restore loads a Checkpoint written by a Banks model of the same size.
func (b *Banks) Restore(r *SnapR) error {
	n := r.Count(8)
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(b.free) {
		return fmt.Errorf("sim: bank count %d, want %d", n, len(b.free))
	}
	for i := range b.free {
		b.free[i] = r.Time()
	}
	return r.Err()
}
