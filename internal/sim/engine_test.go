package sim

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestEngineDispatchOrder(t *testing.T) {
	var got []Event
	e := NewEngine(func(ev Event) { got = append(got, ev) })
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		e.Schedule(Time(rng.Int63n(50)), rng.Intn(7))
	}
	if n := e.Run(); n != 500 {
		t.Fatalf("dispatched %d events, want 500", n)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Before(got[i-1]) {
			t.Fatalf("event %d (%+v) dispatched after %+v", i, got[i], got[i-1])
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Run", e.Pending())
	}
}

func TestEngineTiesBreakByActorThenSeq(t *testing.T) {
	var got []Event
	e := NewEngine(func(ev Event) { got = append(got, ev) })
	e.Schedule(10, 3)
	e.Schedule(10, 1)
	e.Schedule(10, 1)
	e.Schedule(5, 9)
	e.Run()
	want := []Event{{5, 9, 3}, {10, 1, 1}, {10, 1, 2}, {10, 3, 0}}
	for i, ev := range want {
		if got[i] != ev {
			t.Fatalf("dispatch[%d] = %+v, want %+v", i, got[i], ev)
		}
	}
}

func TestEngineReentrantScheduleAndClock(t *testing.T) {
	var e *Engine
	hops := 0
	e = NewEngine(func(ev Event) {
		if hops++; hops < 5 {
			e.Schedule(ev.At+100, ev.Actor)
		}
	})
	e.Schedule(1000, 0)
	e.Run()
	if hops != 5 {
		t.Fatalf("hops = %d, want 5", hops)
	}
	if e.Now() != 1400 {
		t.Fatalf("Now() = %v, want 1400", e.Now())
	}
	// Scheduling in the past clamps to now.
	e.Schedule(3, 0)
	if ev, _ := e.Step(); ev.At != 1400 {
		t.Fatalf("past event dispatched at %v, want clamp to 1400", ev.At)
	}
}

func TestSnapRoundTrip(t *testing.T) {
	w := &SnapW{}
	w.U8(0xab)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(1 << 62)
	w.I64(-77)
	w.Time(12345)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte("payload"))
	w.String("name")
	w.Raw([]byte{1, 2, 3})

	r := NewSnapR(w.Data())
	if v := r.U8(); v != 0xab {
		t.Fatalf("U8 = %x", v)
	}
	if v := r.U16(); v != 0xbeef {
		t.Fatalf("U16 = %x", v)
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %x", v)
	}
	if v := r.U64(); v != 1<<62 {
		t.Fatalf("U64 = %x", v)
	}
	if v := r.I64(); v != -77 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.Time(); v != 12345 {
		t.Fatalf("Time = %v", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool mismatch")
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte("payload")) {
		t.Fatalf("Bytes = %q", v)
	}
	if v := r.String(); v != "name" {
		t.Fatalf("String = %q", v)
	}
	if v := r.Raw(3); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %v", v)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapRTruncationAndBounds(t *testing.T) {
	r := NewSnapR([]byte{1, 2})
	_ = r.U64()
	if r.Err() == nil {
		t.Fatal("want truncation error")
	}
	// Sticky: later reads stay zero without panicking.
	if r.U32() != 0 || r.Bytes() != nil {
		t.Fatal("poisoned reader returned data")
	}

	// A hostile count must not drive a huge allocation.
	w := &SnapW{}
	w.U32(1 << 30)
	r = NewSnapR(w.Data())
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("Count = %d, err = %v; want bound error", n, r.Err())
	}

	// Bool bytes other than 0/1 are decode errors.
	r = NewSnapR([]byte{7})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("want bool range error")
	}

	// Done flags trailing garbage.
	r = NewSnapR([]byte{0, 0})
	r.U8()
	if err := r.Done(); err == nil {
		t.Fatal("want trailing-bytes error")
	}
}

func TestSealOpenEnvelope(t *testing.T) {
	payload := []byte("checkpoint body")
	env := Seal(SnapKindEngine, 3, payload)
	got, err := Open(SnapKindEngine, 3, env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}

	if _, err := Open(SnapKindController, 3, env); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := Open(SnapKindEngine, 4, env); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := Open(SnapKindEngine, 3, env[:len(env)-1]); err == nil {
		t.Fatal("truncated envelope accepted")
	}
	flipped := append([]byte(nil), env...)
	flipped[13] ^= 0x40
	if _, err := Open(SnapKindEngine, 3, flipped); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	if _, err := Open(SnapKindEngine, 3, nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestBanksCheckpointRestore(t *testing.T) {
	b := NewBanks(4)
	b.Schedule(1, 100, 50)
	b.Schedule(3, 0, 10)
	w := &SnapW{}
	b.Checkpoint(w)

	b2 := NewBanks(4)
	if err := b2.Restore(NewSnapR(w.Data())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if b2.NextFree(i) != b.NextFree(i) {
			t.Fatalf("bank %d free at %v, want %v", i, b2.NextFree(i), b.NextFree(i))
		}
	}
	if err := NewBanks(5).Restore(NewSnapR(w.Data())); err == nil {
		t.Fatal("bank-count mismatch accepted")
	}
}
