package sim

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Snapshot codec: the deterministic binary format shared by every
// Checkpoint/Restore implementation in the tree. Writers are append-only;
// readers carry a sticky error so call sites can decode a whole structure
// and check once at the end. All integers are little-endian. The format has
// no self-description — reader and writer must agree field-for-field, which
// is enforced by the golden round-trip tests and the envelope version.

// SnapW accumulates a snapshot payload.
type SnapW struct {
	b []byte
}

// Data returns the accumulated payload.
func (w *SnapW) Data() []byte { return w.b }

// Len returns the number of bytes written so far.
func (w *SnapW) Len() int { return len(w.b) }

// U8 appends one byte.
func (w *SnapW) U8(v uint8) { w.b = append(w.b, v) }

// U16 appends a little-endian uint16.
func (w *SnapW) U16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }

// U32 appends a little-endian uint32.
func (w *SnapW) U32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }

// U64 appends a little-endian uint64.
func (w *SnapW) U64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

// I64 appends a little-endian int64.
func (w *SnapW) I64(v int64) { w.U64(uint64(v)) }

// Time appends a simulation timestamp.
func (w *SnapW) Time(t Time) { w.I64(int64(t)) }

// Bool appends a boolean as one byte.
func (w *SnapW) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Raw appends p verbatim, with no length prefix.
func (w *SnapW) Raw(p []byte) { w.b = append(w.b, p...) }

// Bytes appends a uint32 length prefix followed by p.
func (w *SnapW) Bytes(p []byte) {
	w.U32(uint32(len(p)))
	w.Raw(p)
}

// String appends s with a uint32 length prefix.
func (w *SnapW) String(s string) {
	w.U32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// SnapR decodes a snapshot payload. The first decode failure sets a sticky
// error; every subsequent read returns zero values, so a corrupted or
// truncated payload degrades to an error, never a panic — the property the
// checkpoint fuzz target asserts.
type SnapR struct {
	b   []byte
	off int
	err error
}

// NewSnapR wraps data for reading.
func NewSnapR(data []byte) *SnapR { return &SnapR{b: data} }

// Err returns the sticky decode error, if any.
func (r *SnapR) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *SnapR) Remaining() int { return len(r.b) - r.off }

// Done returns the sticky error, or an error if unread bytes remain.
func (r *SnapR) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("sim: snapshot has %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// Fail records err (the first one wins) and poisons further reads.
func (r *SnapR) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *SnapR) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.Fail(fmt.Errorf("sim: snapshot truncated (need %d bytes, have %d)", n, r.Remaining()))
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// U8 reads one byte.
func (r *SnapR) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U16 reads a little-endian uint16.
func (r *SnapR) U16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// U32 reads a little-endian uint32.
func (r *SnapR) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (r *SnapR) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads a little-endian int64.
func (r *SnapR) I64() int64 { return int64(r.U64()) }

// Time reads a simulation timestamp.
func (r *SnapR) Time() Time { return Time(r.I64()) }

// Bool reads a boolean; any byte other than 0 or 1 is a decode error.
func (r *SnapR) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(fmt.Errorf("sim: snapshot bool out of range"))
		return false
	}
}

// Raw reads exactly n bytes (a view into the payload, valid until the
// payload is mutated).
func (r *SnapR) Raw(n int) []byte { return r.take(n) }

// Bytes reads a uint32-length-prefixed byte slice.
func (r *SnapR) Bytes() []byte { return r.take(int(r.U32())) }

// String reads a uint32-length-prefixed string.
func (r *SnapR) String() string { return string(r.Bytes()) }

// Count reads a uint32 element count and validates it against the bytes
// actually remaining, assuming each element occupies at least elemSize
// bytes. This bounds allocations when decoding hostile input: a corrupted
// count fails here instead of driving a huge make().
func (r *SnapR) Count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > r.Remaining()/elemSize {
		r.Fail(fmt.Errorf("sim: snapshot count %d exceeds remaining payload", n))
		return 0
	}
	return n
}

// Envelope: every externally visible checkpoint is sealed as
//
//	"SOTC" | u16 kind | u16 version | u32 payload len | payload | u32 CRC32-C
//
// so Restore can cheaply reject foreign or corrupted bytes before touching
// any state.

// Snapshot envelope kinds.
const (
	SnapKindController uint16 = 1 // one memctrl.Controller
	SnapKindEngine     uint16 = 2 // a whole device.Engine
	SnapKindTrace      uint16 = 3 // a chaos replay trace
	SnapKindTenant     uint16 = 4 // a tenant.Service (embeds an engine checkpoint)
)

var snapMagic = [4]byte{'S', 'O', 'T', 'C'}

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

const snapEnvelopeOverhead = 4 + 2 + 2 + 4 + 4

// Seal wraps payload in the snapshot envelope.
func Seal(kind, version uint16, payload []byte) []byte {
	out := make([]byte, 0, len(payload)+snapEnvelopeOverhead)
	out = append(out, snapMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, kind)
	out = binary.LittleEndian.AppendUint16(out, version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out[:len(out)], snapCRC))
	return out
}

// Open validates the envelope (magic, kind, version, length, checksum) and
// returns the payload.
func Open(kind, version uint16, data []byte) ([]byte, error) {
	if len(data) < snapEnvelopeOverhead {
		return nil, fmt.Errorf("sim: snapshot too short (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != snapMagic {
		return nil, fmt.Errorf("sim: snapshot magic mismatch")
	}
	if k := binary.LittleEndian.Uint16(data[4:6]); k != kind {
		return nil, fmt.Errorf("sim: snapshot kind %d, want %d", k, kind)
	}
	if v := binary.LittleEndian.Uint16(data[6:8]); v != version {
		return nil, fmt.Errorf("sim: snapshot version %d, want %d", v, version)
	}
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	if len(data) != n+snapEnvelopeOverhead {
		return nil, fmt.Errorf("sim: snapshot length %d, envelope says %d", len(data)-snapEnvelopeOverhead, n)
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, snapCRC); got != want {
		return nil, fmt.Errorf("sim: snapshot checksum mismatch")
	}
	return data[12 : 12+n], nil
}
