package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	d := 150 * time.Nanosecond
	st := FromDuration(d)
	if st.Picoseconds() != 150_000 {
		t.Fatalf("150ns = %d ps", st.Picoseconds())
	}
	if st.Duration() != d {
		t.Fatalf("round trip %v", st.Duration())
	}
	if st.String() != "150ns" {
		t.Fatalf("String() = %q", st.String())
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.Advance(100)
	c.Advance(-50) // ignored
	if c.Now() != 100 {
		t.Fatalf("now = %v", c.Now())
	}
	c.AdvanceTo(50) // in the past; ignored
	if c.Now() != 100 {
		t.Fatal("clock moved backwards")
	}
	c.AdvanceTo(200)
	if c.Now() != 200 {
		t.Fatal("AdvanceTo failed")
	}
}

func TestCyclesToTime(t *testing.T) {
	// 2 cycles at 2 GHz = 1 ns = 1000 ps.
	if got := CyclesToTime(2, 2e9); got != 1000 {
		t.Fatalf("got %d ps", got)
	}
}

func TestBanksSerializeSameBank(t *testing.T) {
	b := NewBanks(4)
	d1 := b.Schedule(0, 0, 100)
	d2 := b.Schedule(0, 0, 100)
	if d1 != 100 || d2 != 200 {
		t.Fatalf("same-bank requests not serialized: %v %v", d1, d2)
	}
	// A different bank is independent.
	if d := b.Schedule(1, 0, 100); d != 100 {
		t.Fatalf("cross-bank request delayed: %v", d)
	}
}

func TestBanksRespectEarliest(t *testing.T) {
	b := NewBanks(2)
	if d := b.Schedule(0, 500, 100); d != 600 {
		t.Fatalf("start time ignored: %v", d)
	}
	if b.NextFree(0) != 600 {
		t.Fatal("NextFree wrong")
	}
	b.Reset()
	if b.NextFree(0) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestBankForStableAndInRange(t *testing.T) {
	b := NewBanks(16)
	f := func(line uint64) bool {
		k := b.BankFor(line)
		return k >= 0 && k < 16 && k == b.BankFor(line)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBanksZeroClampsToOne(t *testing.T) {
	b := NewBanks(0)
	if b.N() != 1 {
		t.Fatalf("banks = %d", b.N())
	}
}

// Property: completion times on one bank are non-decreasing regardless of
// request order.
func TestBankCompletionMonotone(t *testing.T) {
	f := func(starts []uint16) bool {
		b := NewBanks(1)
		var prev Time
		for _, s := range starts {
			d := b.Schedule(0, Time(s), 10)
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
