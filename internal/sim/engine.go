package sim

// Deterministic event-queue engine (akita-style). An Engine owns a priority
// queue of timestamped events; each event names an actor (a shard, in the
// device runtime) and the engine dispatches events strictly in (At, Actor,
// Seq) order. Because the ordering key is total and Seq is assigned at
// Schedule time, a run is a pure function of the schedule calls — the same
// seed and workload produce the same dispatch sequence on every machine and
// at any worker count, which is what makes checkpoints and time-travel
// replay possible.

// Event is one scheduled dispatch. Events are pure data; whatever work the
// actor performs happens in the handler the engine was built with.
type Event struct {
	// At is the simulated dispatch time.
	At Time
	// Actor identifies the state machine the event belongs to.
	Actor int
	// Seq is the schedule-order tiebreak for events with equal (At, Actor).
	Seq uint64
}

// Before reports whether e dispatches strictly before o under the engine's
// total order.
func (e Event) Before(o Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	if e.Actor != o.Actor {
		return e.Actor < o.Actor
	}
	return e.Seq < o.Seq
}

// Engine is a single-threaded deterministic event queue. The zero value is
// not usable; build one with NewEngine.
type Engine struct {
	heap    []Event
	seq     uint64
	now     Time
	handler func(Event)
}

// NewEngine returns an engine dispatching events to handler. The handler
// may call Schedule re-entrantly.
func NewEngine(handler func(Event)) *Engine {
	return &Engine{handler: handler}
}

// Now returns the dispatch time of the most recent event (the engine's
// notion of current simulated time).
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of undispatched events.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule enqueues an event for actor at time at. Events scheduled for the
// past dispatch at the current time, preserving monotonicity.
func (e *Engine) Schedule(at Time, actor int) {
	if at < e.now {
		at = e.now
	}
	e.push(Event{At: at, Actor: actor, Seq: e.seq})
	e.seq++
}

// Step dispatches the earliest pending event and returns it. ok is false
// when the queue is empty.
func (e *Engine) Step() (ev Event, ok bool) {
	if len(e.heap) == 0 {
		return Event{}, false
	}
	ev = e.pop()
	if ev.At > e.now {
		e.now = ev.At
	}
	e.handler(ev)
	return ev, true
}

// Run dispatches events until the queue drains and returns how many were
// dispatched.
func (e *Engine) Run() int {
	n := 0
	for {
		if _, ok := e.Step(); !ok {
			return n
		}
		n++
	}
}

// push/pop implement a manual binary min-heap over the (At, Actor, Seq)
// order; container/heap's interface indirection costs allocations on the
// hot path.

func (e *Engine) push(ev Event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heap[i].Before(e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() Event {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(e.heap) && e.heap[left].Before(e.heap[smallest]) {
			smallest = left
		}
		if right < len(e.heap) && e.heap[right].Before(e.heap[smallest]) {
			smallest = right
		}
		if smallest == i {
			return top
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
}
