package memctrl

import (
	"fmt"

	"soteria/internal/telemetry"
)

// telemetryHooks holds the controller's own metric handles. All handles
// are nil until AttachTelemetry is called; nil handles no-op, so an
// unattached controller pays one nil check per event.
type telemetryHooks struct {
	memRequests   *telemetry.Counter
	dataReads     *telemetry.Counter
	dataWrites    *telemetry.Counter
	coldReads     *telemetry.Counter
	nvmReads      *telemetry.Counter
	nvmWrites     [wcCount]*telemetry.Counter
	wpqForwards   *telemetry.Counter
	pageReencrypt *telemetry.Counter
	forcedWB      *telemetry.Counter
	recoveryLost  *telemetry.Counter
	recoveredOK   *telemetry.Counter
	fillsByLevel  []*telemetry.Counter // metadata fills per tree level (0 = MAC lines)

	readSpan  telemetry.SpanHandle // ReadBlock, in sim-time ticks
	writeSpan telemetry.SpanHandle // WriteBlock, in sim-time ticks
}

// AttachTelemetry registers the controller's metrics on r and cascades to
// every layer beneath it (metadata cache, WPQ, NVM device, crypto engine,
// shadow table and its BMT, fault handler). Passing nil detaches all of
// them. Span durations are measured on the controller's *simulated* clock,
// so for a fixed seed the whole registry snapshot is deterministic.
func (c *Controller) AttachTelemetry(r *telemetry.Registry) {
	c.telReg = r
	if r == nil {
		c.tel = telemetryHooks{}
	} else {
		c.tel = telemetryHooks{
			memRequests:   r.Counter("memctrl_mem_requests_total"),
			dataReads:     r.Counter("memctrl_data_reads_total"),
			dataWrites:    r.Counter("memctrl_data_writes_total"),
			coldReads:     r.Counter("memctrl_cold_reads_total"),
			nvmReads:      r.Counter("memctrl_nvm_reads_total"),
			wpqForwards:   r.Counter("memctrl_wpq_forwards_total"),
			pageReencrypt: r.Counter("memctrl_page_reencrypts_total"),
			forcedWB:      r.Counter("memctrl_forced_writebacks_total"),
			recoveryLost:  r.Counter("memctrl_recovery_lost_total"),
			recoveredOK:   r.Counter("memctrl_recovered_ok_total"),
		}
		for cat := WCData; cat < wcCount; cat++ {
			c.tel.nvmWrites[cat] = r.Counter("memctrl_nvm_writes_" + cat.String() + "_total")
		}
		levels := 0
		if c.layout != nil {
			levels = c.layout.TopLevel()
		}
		c.tel.fillsByLevel = make([]*telemetry.Counter, levels+1)
		for l := 0; l <= levels; l++ {
			c.tel.fillsByLevel[l] = r.Counter(fmt.Sprintf("memctrl_meta_fills_level_%d_total", l))
		}
		tracer := telemetry.NewTracer(r, func() int64 { return int64(c.now) })
		c.tel.readSpan = tracer.Handle("read_block")
		c.tel.writeSpan = tracer.Handle("write_block")
	}

	c.q.AttachTelemetry(r)
	c.dev.AttachTelemetry(r)
	if c.eng != nil {
		c.eng.AttachTelemetry(r)
	}
	if c.mcache != nil {
		c.mcache.AttachTelemetry(r)
	}
	if c.strat != nil && c.mode != ModeNonSecure && c.layout != nil {
		c.strat.attachTelemetry(c, r)
	}
	if c.fh != nil {
		c.fh.AttachTelemetry(r)
	}
}
