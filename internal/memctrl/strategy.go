package memctrl

import (
	"fmt"
	"slices"
	"sort"

	"soteria/internal/metacache"
	"soteria/internal/shadow"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// strategy is the metadata-persistence policy of the controller: what extra
// state is persisted on every metadata mutation, what survives a crash, and
// how a consistent image is rebuilt from it. The data path (encryption,
// MACs, the clone fault handler, the WPQ) is shared; a strategy only hooks
// the points where persistence decisions are made.
//
// Hook contract (all hooks run with the controller lock-free and
// single-threaded, like everything else):
//
//   - install runs once at construction under bootstrap (writes bypass the
//     WPQ and the books) and builds the strategy's persistent structures.
//   - onDirty fires after a metadata block was modified in cache (counter
//     bump, parent bump, recovery reseed). It may write tracking state but
//     must not evict.
//   - commitLeaf fires inside the sealed data-commit (and page-reencrypt)
//     transaction for the leaf counter block of the written data; whatever
//     it persists commits atomically with the ciphertext and data MAC.
//   - onClean fires after a block's write-back group was pushed; tracking
//     state for it may be retired.
//   - onDrop fires when a dirty block's update is lost (unverifiable
//     parent chain); tracking state must be retired so recovery does not
//     look for content that never landed.
//   - needsForce bounds in-cache counter drift: returning true forces a
//     write-back of the leaf after the sealed commit.
//   - afterOp runs at the end of every data operation, outside any seal;
//     deferred maintenance (e.g. Triad's relaxed-level write-backs) goes
//     here.
//   - onCrash captures whatever must survive into the strategy's persistent
//     registers; everything else is lost.
//   - recover rebuilds a verified image. It must clear c.crashed and
//     c.recovering itself (before reseeding the cache) and emit the
//     "recover-done" note on success.
type strategy interface {
	name() string
	// shadowLines returns how many NVM lines of shadow region the layout
	// must reserve for cacheSlots tracked blocks (0 = no shadow region).
	shadowLines(cacheSlots uint64) uint64
	install(c *Controller) error
	onDirty(c *Controller, home uint64)
	onClean(c *Controller, home uint64)
	onDrop(c *Controller, home uint64)
	commitLeaf(c *Controller, home uint64) error
	needsForce(c *Controller, blk *metacache.Block, slot int) bool
	afterOp(c *Controller) error
	onCrash(c *Controller)
	recover(c *Controller) (*RecoveryReport, error)
	// retireSlot drops one stale tracking slot during recovery reseed.
	retireSlot(c *Controller, slot int)
	trackedSlots(c *Controller) []uint64
	shadowStats(c *Controller) shadow.Stats
	attachTelemetry(c *Controller, r *telemetry.Registry)
	// checkpoint/restore serialize the strategy's volatile state (tracking
	// table handles, persistent registers not already held by the
	// controller, deferred work queues) as part of Controller.Checkpoint.
	// restore runs on a freshly installed strategy whose NVM image has
	// already been restored.
	checkpoint(c *Controller, w *sim.SnapW)
	restore(c *Controller, r *sim.SnapR) error
}

// DefaultStrategy is the strategy selected by an empty Options.Strategy.
const DefaultStrategy = "soteria"

// strategyFactories is the registry of metadata-persistence schemes, in
// presentation order. A new scheme is one entry here away from the full
// chaos conformance suite and the cross-scheme experiment table.
var strategyFactories = []struct {
	name string
	make func() strategy
}{
	{"soteria", func() strategy { return &soteriaStrategy{} }},
	{"anubis-shadow", func() strategy { return &anubisStrategy{} }},
	{"triad-nvm", func() strategy { return &triadStrategy{persistLevels: 1} }},
	{"triad-nvm-2", func() strategy { return &triadStrategy{persistLevels: 2} }},
}

// Strategies lists the registered metadata-persistence strategies in
// presentation order.
func Strategies() []string {
	out := make([]string, len(strategyFactories))
	for i, f := range strategyFactories {
		out[i] = f.name
	}
	return out
}

// newStrategy instantiates the named strategy ("" selects the default).
func newStrategy(name string) (strategy, error) {
	if name == "" {
		name = DefaultStrategy
	}
	for _, f := range strategyFactories {
		if f.name == name {
			return f.make(), nil
		}
	}
	return nil, fmt.Errorf("memctrl: unknown strategy %q (registered: %v)", name, Strategies())
}

// validateStrategyOptions rejects option combinations that only make sense
// for the Soteria shadow scheme.
func validateStrategyOptions(s strategy, opt Options) error {
	if s.name() == "soteria" {
		return nil
	}
	if opt.EagerTreeUpdate {
		return fmt.Errorf("memctrl: EagerTreeUpdate is a soteria-only ablation (strategy %q)", s.name())
	}
	if opt.DisableShadowHalfRepair {
		return fmt.Errorf("memctrl: DisableShadowHalfRepair needs Soteria duplicated entries (strategy %q)", s.name())
	}
	return nil
}

// Strategy returns the name of the controller's metadata-persistence
// strategy.
func (c *Controller) Strategy() string { return c.strat.name() }

// StrategyReliability describes the named strategy's persistent footprint
// for reliability modeling (faultsim scheme sizing): the shadow-region line
// count implied by a tracked-slot budget, and the Triad persisted-level
// threshold. persistLevels is 0 for schemes that persist every tree level
// on write-back (no level is recomputable at recovery); for Triad it is N,
// meaning levels strictly above N+1 are rebuilt wholesale while level N+1
// seeds the bounded counter search.
func StrategyReliability(name string, trackedSlots uint64) (shadowLines uint64, persistLevels int, err error) {
	s, err := newStrategy(name)
	if err != nil {
		return 0, 0, err
	}
	if t, ok := s.(*triadStrategy); ok {
		persistLevels = t.persistLevels
	}
	return s.shadowLines(trackedSlots), persistLevels, nil
}

// reseedRecovered reinstalls reconstructed blocks as dirty cache contents
// (which re-tracks them at their new slots), retires each block's
// superseded tracking slots, and flushes through the ordinary lazy
// write-back machinery, leaving NVM self-consistent. Shared by every
// tracking-table strategy.
//
// Each block's old slots are retired immediately after its re-insert, not
// at the end: once the flush starts folding in counter bumps, a stale entry
// left valid at the old slot would describe content older than what lands
// in NVM, and a nested crash would let the next recovery roll the block —
// and silently its already-flushed children — back to it. Between a
// re-insert and its retirement the duplicate entries are content-identical,
// so a crash in that window is harmless.
//
// Order matters: ascending old slot. Insert fills the lowest free way
// first, so the i-th re-seeded block lands at way i of its set, and any
// still-valid entry at that slot would belong to a block with a smaller
// minimum slot — re-inserted earlier, its old slots already retired. The
// re-insert therefore never overwrites a live entry.
func (c *Controller) reseedRecovered(recovered map[uint64]metacache.Block, slotsOf map[uint64][]uint64) {
	c.crashed = false
	c.recovering = false
	c.note("recover-reseed")
	order := make([]uint64, 0, len(recovered))
	for addr := range recovered {
		order = append(order, addr)
	}
	sort.Slice(order, func(i, j int) bool {
		return slices.Min(slotsOf[order[i]]) < slices.Min(slotsOf[order[j]])
	})
	for _, addr := range order {
		c.insertBlock(addr, recovered[addr], true)
		newSlot := c.mcache.SlotOf(addr)
		for _, s := range slotsOf[addr] {
			if int(s) != newSlot {
				c.strat.retireSlot(c, int(s))
			}
		}
	}
	c.FlushAll(c.now)
}

// wipeSlots clears tracking slots as recovery cleanup: each one describes
// content that now matches memory (or was already counted lost), so the
// wipe writes bypass the WPQ books like other recovery bookkeeping.
func (c *Controller) wipeSlots(reset func(uint64) error, slotLists ...[]uint64) error {
	c.bootstrap = true
	defer func() { c.bootstrap = false }()
	for _, slots := range slotLists {
		for _, s := range slots {
			c.seal("shadow-op")
			err := reset(s)
			c.unseal("shadow-op")
			if err != nil {
				return err
			}
		}
	}
	return nil
}
