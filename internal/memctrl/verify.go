package memctrl

import (
	"fmt"

	"soteria/internal/ctrenc"
	"soteria/internal/itree"
	"soteria/internal/nvm"
)

// VerifyAll audits the entire NVM image: every materialized metadata node
// must verify under its parent's counter (walking down from the on-chip
// root), every clone must match its home copy, and every materialized data
// block must pass its data-MAC check. Call FlushAll first so the cache and
// memory agree. This is a test/diagnostic walk, deliberately off the
// timing path.
func (c *Controller) VerifyAll() error {
	if c.mode == ModeNonSecure {
		return nil
	}
	if c.crashed {
		return ErrCrashed
	}
	if dirty := c.mcache.DirtyEntries(); len(dirty) != 0 {
		return fmt.Errorf("memctrl: VerifyAll with %d dirty cached blocks; call FlushAll first", len(dirty))
	}

	// Walk the tree top-down, keeping the verified content of each node
	// so children can be checked against a copy that actually verified
	// (the home copy might be the faulted one).
	top := c.layout.TopLevel()
	type nodeKey struct {
		level int
		index uint64
	}
	verifiedNodes := make(map[nodeKey]itree.Node)
	verifiedLeaves := make(map[uint64]ctrenc.CounterBlock)
	counterOf := func(level int, index uint64) (uint64, bool) {
		_, pindex, slot, stored := c.layout.Parent(level, index)
		if !stored {
			return c.root.Counters[slot], true
		}
		n, ok := verifiedNodes[nodeKey{level + 1, pindex}]
		if !ok {
			// Parent was pristine (never materialized): zero counter.
			return 0, true
		}
		return n.Counters[slot], true
	}
	for level := top; level >= 1; level-- {
		li := c.layout.Levels[level-1]
		for index := uint64(0); index < li.Nodes; index++ {
			home := c.layout.NodeAddr(level, index)
			if !c.dev.Materialized(home) && !c.anyCloneMaterialized(level, index) {
				continue // pristine subtree
			}
			pctr, _ := counterOf(level, index)
			// Soteria's availability invariant: at least one copy of
			// every node must verify under the parent counter. A
			// corrupt or stale *minority* of copies is legal — the
			// fault handler repairs them lazily on the next access or
			// write-back — but zero verifiable copies means the
			// covered region is unverifiable.
			verify := c.verifierFor(level, index, pctr)
			found := false
			for _, a := range c.layout.CopyAddrs(level, index) {
				r := c.dev.Read(a)
				if r.Uncorrectable {
					continue
				}
				line := r.Data
				if verify(&line) {
					if !found {
						if level > 1 {
							verifiedNodes[nodeKey{level, index}] = itree.DeserializeNode(&line)
						} else {
							verifiedLeaves[index] = ctrenc.DeserializeCounterBlock(&line)
						}
					}
					found = true
				}
			}
			if !found {
				return fmt.Errorf("memctrl: verify: no verifiable copy of L%d[%d]", level, index)
			}
		}
	}

	// Verify every data block that was ever written.
	var verr error
	c.dev.ForEachTouched(func(addr uint64) {
		if verr != nil || addr >= c.layout.DataBytes {
			return
		}
		blockIdx := addr / nvm.LineSize
		var ctr uint64
		if cb, ok := verifiedLeaves[c.layout.CounterBlockOf(blockIdx)]; ok {
			ctr = cb.Counter(c.layout.SlotOf(blockIdx))
		}
		if ctr == 0 {
			// Materialized without a counter bump: only legitimate
			// if the content is still all zeroes (e.g. an injected
			// fault on a pristine line would show up here).
			r := c.dev.Read(addr)
			if r.Uncorrectable || !isZeroLine(&r.Data) {
				verr = fmt.Errorf("memctrl: verify: block %#x has content but counter 0", addr)
			}
			return
		}
		r := c.dev.Read(addr)
		if r.Uncorrectable {
			verr = fmt.Errorf("memctrl: verify: data block %#x uncorrectable", addr)
			return
		}
		lineAddr, off := c.layout.DataMACAddr(blockIdx)
		mr := c.dev.Read(lineAddr)
		if mr.Uncorrectable {
			verr = fmt.Errorf("memctrl: verify: MAC line of block %#x uncorrectable", addr)
			return
		}
		var want uint64
		for i := 0; i < 8; i++ {
			want |= uint64(mr.Data[off+i]) << uint(8*i)
		}
		ct := r.Data
		if c.eng.DataMAC(addr, ctr, &ct) != want {
			verr = fmt.Errorf("memctrl: verify: data block %#x MAC mismatch", addr)
		}
	})
	return verr
}

// anyCloneMaterialized reports whether any clone slot of the node holds
// written storage.
func (c *Controller) anyCloneMaterialized(level int, index uint64) bool {
	li := c.layout.Levels[level-1]
	for ci := range li.CloneBases {
		if c.dev.Materialized(c.layout.CloneAddr(level, index, ci)) {
			return true
		}
	}
	return false
}
