package memctrl

import (
	"errors"
	"testing"

	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// The Crash/Recover lifecycle must reject misuse with typed errors rather
// than panicking or silently proceeding.

func TestDoubleCrashReturnsErrCrashed(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	if err := c.Crash(); err != nil {
		t.Fatalf("first crash: %v", err)
	}
	if err := c.Crash(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second crash: got %v, want ErrCrashed", err)
	}
}

func TestRecoverWithoutCrashReturnsErrNotCrashed(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	if _, err := c.Recover(); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("got %v, want ErrNotCrashed", err)
	}
	// Same after a full crash/recover cycle.
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("recover after recover: got %v, want ErrNotCrashed", err)
	}
}

func TestDataOpsWhileCrashedReturnErrCrashed(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var now sim.Time
	var line nvm.Line
	if _, err := c.WriteBlock(now, 0, &line); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadBlock(now, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read while crashed: got %v, want ErrCrashed", err)
	}
	if _, err := c.WriteBlock(now, 0, &line); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write while crashed: got %v, want ErrCrashed", err)
	}
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadBlock(now, 0); err != nil {
		t.Fatalf("read after recover: %v", err)
	}
}

func TestCrashRecoverCycleRepeats(t *testing.T) {
	c := newCtrl(t, ModeSAC)
	var now sim.Time
	var err error
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 40; i++ {
			var line nvm.Line
			line[0] = byte(cycle*40 + i)
			addr := uint64(i) * 4096 % (4 << 20)
			if now, err = c.WriteBlock(now, addr, &line); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Crash(); err != nil {
			t.Fatalf("cycle %d crash: %v", cycle, err)
		}
		rep, err := c.Recover()
		if err != nil {
			t.Fatalf("cycle %d recover: %v", cycle, err)
		}
		if len(rep.FailedBlocks) != 0 || len(rep.LostSlots) != 0 {
			t.Fatalf("cycle %d lost data: %+v", cycle, rep)
		}
		for i := 0; i < 40; i++ {
			addr := uint64(i) * 4096 % (4 << 20)
			pt, _, err := c.ReadBlock(now, addr)
			if err != nil {
				t.Fatalf("cycle %d read back %#x: %v", cycle, addr, err)
			}
			if pt[0] != byte(cycle*40+i) {
				t.Fatalf("cycle %d block %d: got %d", cycle, i, pt[0])
			}
		}
	}
}

func TestNonSecureCrashIsNoop(t *testing.T) {
	c := newCtrl(t, ModeNonSecure)
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
}
