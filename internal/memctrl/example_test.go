package memctrl_test

import (
	"fmt"

	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
)

// Example shows the controller's whole lifecycle: encrypted writes,
// verified reads, power loss, and recovery.
func Example() {
	ctrl, err := memctrl.New(config.TestSystem(), memctrl.ModeSRC, []byte("key"), memctrl.Options{})
	if err != nil {
		panic(err)
	}

	var line nvm.Line
	copy(line[:], "hello, persistent world")
	now, err := ctrl.WriteBlock(0, 4096, &line)
	if err != nil {
		panic(err)
	}

	// Power loss with dirty security metadata on chip, then recovery via
	// the Anubis shadow table and Osiris counter trials.
	ctrl.Crash()
	if _, err := ctrl.Recover(); err != nil {
		panic(err)
	}

	data, _, err := ctrl.ReadBlock(now, 4096)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(data[:23]))
	// Output: hello, persistent world
}
