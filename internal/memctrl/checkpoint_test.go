package memctrl

import (
	"bytes"
	"testing"

	"soteria/internal/config"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

func buildCkptController(t *testing.T, mode Mode, strategy string) *Controller {
	t.Helper()
	c, err := New(config.TestSystem(), mode, []byte("checkpoint-test-key"), Options{Strategy: strategy})
	if err != nil {
		t.Fatalf("New(%v, %q): %v", mode, strategy, err)
	}
	return c
}

// ckptLine is deterministic workload content (distinct from the chaos
// harness generator so tests cannot accidentally share oracles).
func ckptLine(i int) nvm.Line {
	var l nvm.Line
	x := uint64(i)*0x9e3779b97f4a7c15 + 0xdeadbeef
	for off := 0; off < nvm.LineSize; off += 8 {
		x ^= x >> 31
		x *= 0xd6e8feb86659fd93
		for b := 0; b < 8; b++ {
			l[off+b] = byte(x >> (8 * b))
		}
	}
	return l
}

// driveCkptWorkload runs a deterministic mixed read/write sequence and
// returns the final controller clock.
func driveCkptWorkload(t *testing.T, c *Controller, start sim.Time, ops int) sim.Time {
	t.Helper()
	now := start
	var err error
	for i := 0; i < ops; i++ {
		addr := uint64((i*37)%512) * nvm.LineSize
		if i%4 == 3 {
			_, now, err = c.ReadBlock(now, addr)
		} else {
			line := ckptLine(i)
			now, err = c.WriteBlock(now, addr, &line)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	return now
}

func TestCheckpointRoundTripAllStrategies(t *testing.T) {
	for _, strategy := range Strategies() {
		t.Run(strategy, func(t *testing.T) {
			a := buildCkptController(t, ModeSAC, strategy)
			now := driveCkptWorkload(t, a, 0, 80)

			ckpt, err := a.Checkpoint()
			if err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			b := buildCkptController(t, ModeSAC, strategy)
			if err := b.Restore(ckpt); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			ckpt2, err := b.Checkpoint()
			if err != nil {
				t.Fatalf("Checkpoint after restore: %v", err)
			}
			if !bytes.Equal(ckpt, ckpt2) {
				t.Fatalf("restore is not byte-identical: %d vs %d bytes", len(ckpt), len(ckpt2))
			}

			// The restored controller must behave identically from here on:
			// same reads, same clock, same next checkpoint.
			nowA := driveCkptWorkload(t, a, now, 40)
			nowB := driveCkptWorkload(t, b, now, 40)
			if nowA != nowB {
				t.Fatalf("clocks diverged after restore: %v vs %v", nowA, nowB)
			}
			for i := 0; i < 16; i++ {
				addr := uint64((i*37)%512) * nvm.LineSize
				da, ta, errA := a.ReadBlock(nowA, addr)
				db, tb, errB := b.ReadBlock(nowB, addr)
				if (errA == nil) != (errB == nil) || da != db || ta != tb {
					t.Fatalf("read %#x diverged: (%v,%v) vs (%v,%v)", addr, ta, errA, tb, errB)
				}
				nowA, nowB = ta, tb
			}
			ca, err := a.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			cb, err := b.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ca, cb) {
				t.Fatal("original and restored controllers diverged after continued execution")
			}
			nowA = a.FlushAll(nowA)
			nowB = b.FlushAll(nowB)
			if nowA != nowB {
				t.Fatalf("flush clocks diverged: %v vs %v", nowA, nowB)
			}
			if err := a.VerifyAll(); err != nil {
				t.Fatalf("VerifyAll (original): %v", err)
			}
			if err := b.VerifyAll(); err != nil {
				t.Fatalf("VerifyAll (restored): %v", err)
			}
		})
	}
}

func TestCheckpointRoundTripNonSecure(t *testing.T) {
	a := buildCkptController(t, ModeNonSecure, "")
	driveCkptWorkload(t, a, 0, 50)
	ckpt, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b := buildCkptController(t, ModeNonSecure, "")
	if err := b.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	ckpt2, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt, ckpt2) {
		t.Fatal("non-secure restore is not byte-identical")
	}
}

func TestCheckpointWhileCrashedThenRecover(t *testing.T) {
	for _, strategy := range Strategies() {
		t.Run(strategy, func(t *testing.T) {
			a := buildCkptController(t, ModeSAC, strategy)
			driveCkptWorkload(t, a, 0, 60)
			if err := a.Crash(); err != nil {
				t.Fatalf("Crash: %v", err)
			}
			ckpt, err := a.Checkpoint()
			if err != nil {
				t.Fatalf("Checkpoint while crashed: %v", err)
			}
			b := buildCkptController(t, ModeSAC, strategy)
			if err := b.Restore(ckpt); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			ckpt2, err := b.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ckpt, ckpt2) {
				t.Fatal("crashed-state restore is not byte-identical")
			}

			// Restore-then-recover must equal straight-line recover.
			repA, err := a.Recover()
			if err != nil {
				t.Fatalf("Recover (original): %v", err)
			}
			repB, err := b.Recover()
			if err != nil {
				t.Fatalf("Recover (restored): %v", err)
			}
			if repA.TrackedEntries != repB.TrackedEntries ||
				repA.RecoveredBlocks != repB.RecoveredBlocks ||
				len(repA.FailedBlocks) != len(repB.FailedBlocks) ||
				len(repA.LostSlots) != len(repB.LostSlots) {
				t.Fatalf("recovery reports diverged: %+v vs %+v", repA, repB)
			}
			ca, err := a.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			cb, err := b.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ca, cb) {
				t.Fatal("post-recovery states diverged")
			}
			a.FlushAll(0)
			if err := a.VerifyAll(); err != nil {
				t.Fatalf("VerifyAll: %v", err)
			}
		})
	}
}

func TestCheckpointRejectsMismatchedTarget(t *testing.T) {
	a := buildCkptController(t, ModeSAC, "soteria")
	driveCkptWorkload(t, a, 0, 20)
	ckpt, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	if err := buildCkptController(t, ModeSAC, "anubis-shadow").Restore(ckpt); err == nil {
		t.Fatal("strategy mismatch accepted")
	}
	if err := buildCkptController(t, ModeBaseline, "soteria").Restore(ckpt); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	if err := a.Restore(ckpt[:len(ckpt)-3]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	flipped := append([]byte(nil), ckpt...)
	flipped[len(flipped)/2] ^= 0x20
	if err := a.Restore(flipped); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}
