package memctrl

import (
	"testing"

	"soteria/internal/config"
)

// TestWriteBlockSteadyStateZeroAllocs pins the warm-cache secure write
// path at zero heap allocations per operation. The working set is sized
// so every metadata block is cache-resident and rotated so no minor
// counter approaches overflow (which would trigger a legitimate
// major-counter rewrite) during the measured runs; what remains is the
// pure datapath — encrypt, MAC, tree update, WPQ admission — which must
// run entirely out of controller-owned scratch.
func TestWriteBlockSteadyStateZeroAllocs(t *testing.T) {
	for _, strategy := range Strategies() {
		t.Run("strategy="+strategy, func(t *testing.T) {
			ctrl, err := New(config.TestSystem(), ModeSRC, []byte("alloc-test"), Options{Strategy: strategy})
			if err != nil {
				t.Fatal(err)
			}
			var line [64]byte
			now := ctrl.DrainWPQ(0)
			for i := 0; i < 512; i++ {
				if now, err = ctrl.WriteBlock(now, uint64(i)*64, &line); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			avg := testing.AllocsPerRun(256, func() {
				if now, err = ctrl.WriteBlock(now, uint64(i%512)*64, &line); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if avg != 0 {
				t.Fatalf("steady-state WriteBlock allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}

// TestReadBlockSteadyStateZeroAllocs is the read-side companion: a warm
// verified read must not allocate either.
func TestReadBlockSteadyStateZeroAllocs(t *testing.T) {
	ctrl, err := New(config.TestSystem(), ModeSRC, []byte("alloc-test"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var line [64]byte
	now := ctrl.DrainWPQ(0)
	for i := 0; i < 512; i++ {
		if now, err = ctrl.WriteBlock(now, uint64(i)*64, &line); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(256, func() {
		if _, now, err = ctrl.ReadBlock(now, uint64(i%512)*64); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state ReadBlock allocates %.2f objects/op, want 0", avg)
	}
}
