package memctrl

import (
	"fmt"

	"soteria/internal/metacache"
	"soteria/internal/sim"
)

// ckptFormatVersion is the controller checkpoint envelope version; bump it
// whenever any serialized layout below (or in a component Checkpoint)
// changes shape.
const ckptFormatVersion = 1

// Checkpoint serializes the controller's complete state — persistent
// registers, timing, statistics, banks, the full NVM image, the WPQ, the
// metadata cache, fault-handler books and the strategy's tracking state —
// into a self-validating envelope. Checkpoints are only taken at operation
// boundaries: a controller inside a sealed transaction or with in-flight
// write-backs refuses (those states exist only within one ReadBlock/
// WriteBlock call and are never observable by the engine runtime).
//
// Restoring onto a controller built with the same config, mode, key and
// options reproduces the source byte-for-byte: Restore(A.Checkpoint())
// followed by Checkpoint() yields identical bytes.
func (c *Controller) Checkpoint() ([]byte, error) {
	if c.sealDepth != 0 || c.bootstrap || c.recovering {
		return nil, fmt.Errorf("memctrl: checkpoint inside a transaction (seal depth %d)", c.sealDepth)
	}
	if len(c.inflight) != 0 || len(c.forcing) != 0 || len(c.pinned) != 0 {
		return nil, fmt.Errorf("memctrl: checkpoint with in-flight write-backs")
	}
	w := &sim.SnapW{}

	// Identity: enough to reject a checkpoint aimed at a differently
	// configured controller before any state is touched.
	w.U8(uint8(c.mode))
	w.String(c.strat.name())
	w.U64(c.cfg.NVM.CapacityBytes)
	w.U64(c.dev.Capacity())
	w.I64(int64(c.osirisLimit))
	w.Bool(c.eager)
	w.Bool(c.opt.DisableShadowHalfRepair)

	// Persistent on-chip registers.
	for _, ctr := range c.root.Counters {
		w.U64(ctr)
	}
	w.U64(c.root.MAC)
	w.U64(c.shadowRoot)

	// Volatile scalars.
	w.Time(c.now)
	w.Bool(c.crashed)
	w.I64(int64(c.cascade))

	w.U64(c.stats.MemRequests)
	w.U64(c.stats.DataReads)
	w.U64(c.stats.DataWrites)
	w.U64(c.stats.ColdReads)
	for _, v := range c.stats.NVMWrites {
		w.U64(v)
	}
	w.U64(c.stats.NVMReads)
	w.U64(c.stats.WPQForwards)
	w.U64(c.stats.PageReencrypt)
	w.U64(c.stats.ForcedWB)
	w.U64(c.stats.RecoveredOK)
	w.U64(c.stats.RecoveryLost)

	c.banks.Checkpoint(w)
	c.dev.Checkpoint(w)
	c.q.Checkpoint(w)
	if c.mode != ModeNonSecure {
		c.mcache.Checkpoint(w)
		c.fh.Checkpoint(w)
		c.strat.checkpoint(c, w)
	}
	return sim.Seal(sim.SnapKindController, ckptFormatVersion, w.Data()), nil
}

// Restore replaces the controller's state with a Checkpoint. The target
// must be freshly constructed with the same config, mode, key and options
// as the source; mismatches are rejected by the identity header. A decode
// failure can leave the target partially restored — treat it as unusable.
func (c *Controller) Restore(data []byte) error {
	payload, err := sim.Open(sim.SnapKindController, ckptFormatVersion, data)
	if err != nil {
		return err
	}
	r := sim.NewSnapR(payload)

	if m := Mode(r.U8()); r.Err() == nil && m != c.mode {
		return fmt.Errorf("memctrl: checkpoint mode %v, controller is %v", m, c.mode)
	}
	if s := r.String(); r.Err() == nil && s != c.strat.name() {
		return fmt.Errorf("memctrl: checkpoint strategy %q, controller runs %q", s, c.strat.name())
	}
	if cap := r.U64(); r.Err() == nil && cap != c.cfg.NVM.CapacityBytes {
		return fmt.Errorf("memctrl: checkpoint data capacity %d, controller has %d", cap, c.cfg.NVM.CapacityBytes)
	}
	if cap := r.U64(); r.Err() == nil && cap != c.dev.Capacity() {
		return fmt.Errorf("memctrl: checkpoint device capacity %d, controller has %d", cap, c.dev.Capacity())
	}
	if lim := int(r.I64()); r.Err() == nil && lim != c.osirisLimit {
		return fmt.Errorf("memctrl: checkpoint Osiris limit %d, controller has %d", lim, c.osirisLimit)
	}
	if e := r.Bool(); r.Err() == nil && e != c.eager {
		return fmt.Errorf("memctrl: checkpoint eager=%v, controller has %v", e, c.eager)
	}
	if n := r.Bool(); r.Err() == nil && n != c.opt.DisableShadowHalfRepair {
		return fmt.Errorf("memctrl: checkpoint half-repair options differ")
	}
	if r.Err() != nil {
		return r.Err()
	}

	for i := range c.root.Counters {
		c.root.Counters[i] = r.U64()
	}
	c.root.MAC = r.U64()
	c.shadowRoot = r.U64()

	c.now = r.Time()
	c.crashed = r.Bool()
	c.recovering = false
	c.cascade = int(r.I64())

	c.stats.MemRequests = r.U64()
	c.stats.DataReads = r.U64()
	c.stats.DataWrites = r.U64()
	c.stats.ColdReads = r.U64()
	for i := range c.stats.NVMWrites {
		c.stats.NVMWrites[i] = r.U64()
	}
	c.stats.NVMReads = r.U64()
	c.stats.WPQForwards = r.U64()
	c.stats.PageReencrypt = r.U64()
	c.stats.ForcedWB = r.U64()
	c.stats.RecoveredOK = r.U64()
	c.stats.RecoveryLost = r.U64()
	if r.Err() != nil {
		return r.Err()
	}

	if err := c.banks.Restore(r); err != nil {
		return err
	}
	if err := c.dev.Restore(r); err != nil {
		return err
	}
	if err := c.q.Restore(r); err != nil {
		return err
	}
	if c.mode != ModeNonSecure {
		if err := c.mcache.Restore(r); err != nil {
			return err
		}
		if err := c.fh.Restore(r); err != nil {
			return err
		}
		if err := c.strat.restore(c, r); err != nil {
			return err
		}
	}

	// Transient per-operation structures restart empty.
	c.inflight = make(map[uint64]*metacache.Block)
	c.forcing = make(map[uint64]bool)
	c.pinned = make(map[uint64]bool)
	c.sealDepth = 0
	return r.Done()
}
