package memctrl

import (
	"math/rand"
	"testing"

	"soteria/internal/config"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

func newEager(t *testing.T, mode Mode) *Controller {
	t.Helper()
	c, err := New(config.TestSystem(), mode, []byte("eager"), Options{EagerTreeUpdate: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEagerRoundTripAndVerify(t *testing.T) {
	c := newEager(t, ModeSRC)
	rng := rand.New(rand.NewSource(1))
	var now sim.Time
	var err error
	lines := make(map[uint64]nvm.Line)
	for i := 0; i < 100; i++ {
		a := uint64(rng.Intn(1<<12)) * 64
		var l nvm.Line
		rng.Read(l[:8])
		if now, err = c.WriteBlock(now, a, &l); err != nil {
			t.Fatal(err)
		}
		lines[a] = l
	}
	for a, want := range lines {
		got, nn, err := c.ReadBlock(now, a)
		if err != nil || got != want {
			t.Fatalf("block %#x: %v", a, err)
		}
		now = nn
	}
	// Eager: the image must verify with NO flush — the root is already
	// fresh and nothing dirty is pending.
	if err := c.VerifyAll(); err != nil {
		t.Fatalf("eager image not self-consistent: %v", err)
	}
}

func TestEagerLeavesNothingDirty(t *testing.T) {
	c := newEager(t, ModeBaseline)
	var now sim.Time
	var err error
	var l nvm.Line
	for i := 0; i < 50; i++ {
		if now, err = c.WriteBlock(now, uint64(i)*4096, &l); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(c.mcache.DirtyEntries()); n != 0 {
		t.Fatalf("%d dirty blocks after eager writes", n)
	}
	if c.ShadowStats().EntryWrites != 0 {
		t.Fatal("eager mode wrote shadow entries")
	}
}

func TestEagerCrashRecoveryIsTrivial(t *testing.T) {
	c := newEager(t, ModeSRC)
	var now sim.Time
	var err error
	var l nvm.Line
	l[0] = 0x77
	if now, err = c.WriteBlock(now, 0, &l); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrackedEntries != 0 {
		t.Fatalf("eager recovery tracked %d entries; expected none", rep.TrackedEntries)
	}
	got, _, err := c.ReadBlock(now, 0)
	if err != nil || got != l {
		t.Fatalf("data lost across eager crash: %v", err)
	}
}

func TestEagerCostsMoreThanLazy(t *testing.T) {
	run := func(eager bool) (sim.Time, uint64) {
		c, err := New(config.TestSystem(), ModeBaseline, []byte("k"), Options{EagerTreeUpdate: eager})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		var now sim.Time
		var l nvm.Line
		// A write-hot region: exactly the case lazy updates win —
		// repeated counter bumps coalesce in the cache, while eager
		// mode flushes the whole branch on every single store.
		for i := 0; i < 2000; i++ {
			a := uint64(rng.Intn(64)) * 64
			if now, err = c.WriteBlock(now, a, &l); err != nil {
				t.Fatal(err)
			}
		}
		return c.DrainWPQ(now), c.Stats().TotalNVMWrites()
	}
	lazyT, lazyW := run(false)
	eagerT, eagerW := run(true)
	if float64(eagerW) <= 1.5*float64(lazyW) {
		t.Fatalf("eager writes (%d) should far exceed lazy (%d)", eagerW, lazyW)
	}
	if eagerT <= lazyT {
		t.Fatalf("eager time (%v) not above lazy (%v)", eagerT, lazyT)
	}
}
