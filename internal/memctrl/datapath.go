package memctrl

import (
	"fmt"

	"soteria/internal/ctrenc"
	"soteria/internal/metacache"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// ReadBlock services one 64-byte read at a data-region address (as issued
// by an LLC miss). It returns the plaintext, the completion time, and any
// security or reliability error. Addresses must be line-aligned and inside
// the data region.
func (c *Controller) ReadBlock(now sim.Time, addr uint64) ([nvm.LineSize]byte, sim.Time, error) {
	if err := c.checkDataAddr(addr); err != nil {
		return nvm.Line{}, now, err
	}
	c.now = now
	c.stats.MemRequests++
	c.stats.DataReads++
	c.tel.memRequests.Inc()
	c.tel.dataReads.Inc()
	sp := c.tel.readSpan.Start()
	defer sp.End()

	if c.mode == ModeNonSecure {
		r := c.readNVM(addr)
		if r.Uncorrectable {
			return r.Data, c.now, fmt.Errorf("%w: block %#x", ErrDataError, addr)
		}
		return r.Data, c.now, nil
	}

	blockIdx := addr / nvm.LineSize
	leafIdx := c.layout.CounterBlockOf(blockIdx)
	slot := c.layout.SlotOf(blockIdx)

	cb, err := c.getBlock(1, leafIdx)
	if err != nil {
		return nvm.Line{}, c.now, err
	}
	counter := cb.Counter.Counter(slot)

	// Cold-read semantics: a never-written block reads as zeroes with
	// nothing to verify. (The counter can be non-zero here: a page
	// re-encryption bumps the major counter of untouched siblings.)
	if !c.dev.Materialized(addr) {
		// The hardware still performs the array read; only the
		// zero-content semantics are a simulation convenience.
		c.chargeReadLatency(addr)
		c.stats.ColdReads++
		c.tel.coldReads.Inc()
		return nvm.Line{}, c.now, c.strat.afterOp(c)
	}

	// The data fetch and OTP generation overlap (Fig 1), so only the
	// memory latency is charged; the MAC fetch may add a second access
	// on a MAC-line miss.
	r := c.readNVM(addr)
	if r.Uncorrectable {
		return nvm.Line{}, c.now, fmt.Errorf("%w: block %#x", ErrDataError, addr)
	}
	want, err := c.dataMAC(blockIdx)
	if err != nil {
		return nvm.Line{}, c.now, err
	}
	ct := r.Data
	if got := c.eng.DataMAC(addr, counter, &ct); got != want {
		return nvm.Line{}, c.now, fmt.Errorf("%w: block %#x", ErrMACMismatch, addr)
	}
	pt := c.eng.Decrypt(addr, counter, &ct)
	// Deferred strategy maintenance (e.g. Triad's relaxed-level
	// write-backs queued by this read's eviction cascades) runs outside
	// any seal.
	return pt, c.now, c.strat.afterOp(c)
}

// WriteBlock services one 64-byte write at a data-region address (an LLC
// write-back). The block's minor counter advances, the ciphertext and its
// MAC persist through the WPQ, and the Anubis shadow entry for the counter
// block is refreshed — the paper's "maximum of three writes (cipher, data
// MAC and Shadow log) per write".
func (c *Controller) WriteBlock(now sim.Time, addr uint64, data *[nvm.LineSize]byte) (sim.Time, error) {
	if err := c.checkDataAddr(addr); err != nil {
		return now, err
	}
	c.now = now
	c.stats.MemRequests++
	c.stats.DataWrites++
	c.tel.memRequests.Inc()
	c.tel.dataWrites.Inc()
	sp := c.tel.writeSpan.Start()
	defer sp.End()

	if c.mode == ModeNonSecure {
		c.pushWrite(addr, data, WCData)
		return c.now, nil
	}

	blockIdx := addr / nvm.LineSize
	leafIdx := c.layout.CounterBlockOf(blockIdx)
	slot := c.layout.SlotOf(blockIdx)

	cb, err := c.getBlock(1, leafIdx)
	if err != nil {
		return c.now, err
	}
	home := c.layout.NodeAddr(1, leafIdx)
	// Pin the leaf for the duration of this write. Its counter is about to
	// advance in cache; if an eviction cascade (the MAC-line miss below,
	// or a re-encryption fetch) wrote the bumped counter and its shadow
	// entry back before the sealed data commit lands, a crash in between
	// would recover the new counter with the old ciphertext still in NVM —
	// the block would decrypt under neither value. Hardware pins the MSHR
	// entry of an in-progress write the same way.
	c.pinned[home] = true
	defer delete(c.pinned, home)
	if cb.Counter.Increment(slot) {
		// Minor overflow: re-encrypt the whole covered page under an
		// incremented major counter, then retry the bump.
		if err := c.reencryptPage(leafIdx); err != nil {
			return c.now, err
		}
		cb, err = c.getBlock(1, leafIdx)
		if err != nil {
			return c.now, err
		}
		if cb.Counter.Increment(slot) {
			panic("memctrl: minor overflow immediately after page re-encryption")
		}
	}
	counter := cb.Counter.Counter(slot)
	cb.UpdatesPerSlot[slot]++
	needForce := c.strat.needsForce(c, cb, slot)
	c.mcache.MarkDirty(home)

	// Pre-ensure the MAC line is resident: its miss path can trigger
	// eviction cascades, which must not run inside the sealed commit
	// below. The pin above keeps those cascades away from the leaf, whose
	// incremented counter must stay volatile until the commit.
	if _, err := c.getMACLine(blockIdx); err != nil {
		return c.now, err
	}

	// The paper's "maximum of three writes (cipher, data MAC and Shadow
	// log) per write" commit atomically from the ADR domain: ciphertext,
	// MAC line and shadow entry are one sealed transaction. Tearing them
	// (e.g. a durable shadow entry whose data MAC never landed) would make
	// the block unrecoverable despite being tracked.
	ct := c.eng.Encrypt(addr, counter, data)
	c.seal("data-commit")
	c.pushWrite(addr, &ct, WCData)
	err = c.setDataMAC(blockIdx, c.eng.DataMAC(addr, counter, &ct))
	if err == nil {
		// Strategy commit: the Soteria shadow-log write, or Triad's
		// persisted-level write-back chain — atomic with the ciphertext
		// and MAC, so a crash can never strand an acknowledged write.
		err = c.strat.commitLeaf(c, home)
	}
	c.unseal("data-commit")
	if err != nil {
		return c.now, err
	}
	if needForce {
		// Osiris bound: the counter may not drift further from its
		// NVM copy than recovery can search.
		if err := c.forceWriteback(home); err != nil {
			return c.now, err
		}
	}
	if c.eager {
		// Eager-update ablation (§2.5): flush the whole branch so the
		// on-chip root reflects this write immediately.
		if err := c.eagerPropagate(leafIdx); err != nil {
			return c.now, err
		}
	}
	if err := c.strat.afterOp(c); err != nil {
		return c.now, err
	}
	return c.now, nil
}

// eagerPropagate force-writes the leaf's branch bottom-up; each write-back
// dirties the next level, which the following iteration flushes, ending at
// the on-chip root.
func (c *Controller) eagerPropagate(leafIdx uint64) error {
	level, index := 1, leafIdx
	for {
		home := c.layout.NodeAddr(level, index)
		if _, ok := c.mcache.Peek(home); ok {
			if err := c.forceWriteback(home); err != nil {
				return err
			}
		}
		_, pindex, _, stored := c.layout.Parent(level, index)
		if !stored {
			return nil
		}
		level, index = level+1, pindex
	}
}

// reencryptPage handles a minor-counter overflow: the major counter bumps,
// every minor resets, and all covered blocks that exist in memory are
// re-encrypted and re-MACed under their new counters. The whole rewrite is
// modelled as one crash-atomic transaction — a page caught half
// re-encrypted under a bumped major would be unrecoverable, so real
// hardware must (and the paper's rarity argument lets it) commit the
// overflow handling atomically.
func (c *Controller) reencryptPage(leafIdx uint64) error {
	c.seal("page-reencrypt")
	err := c.reencryptPageInner(leafIdx)
	c.unseal("page-reencrypt")
	return err
}

func (c *Controller) reencryptPageInner(leafIdx uint64) error {
	cb, err := c.getBlock(1, leafIdx)
	if err != nil {
		return err
	}
	home := c.layout.NodeAddr(1, leafIdx)
	var oldCounters [ctrenc.CountersPerBlock]uint64
	for i := range oldCounters {
		oldCounters[i] = cb.Counter.Counter(i)
	}
	cb.Counter.BumpMajor()
	newMajorCounter := cb.Counter // value copy for stable counters during the loop

	firstBlock := leafIdx * uint64(ctrenc.CountersPerBlock)
	for i := 0; i < ctrenc.CountersPerBlock; i++ {
		blockIdx := firstBlock + uint64(i)
		if blockIdx >= c.layout.DataBlocks {
			break
		}
		addr := blockIdx * nvm.LineSize
		if !c.dev.Materialized(addr) {
			continue // never written; nothing to re-encrypt
		}
		r := c.readNVM(addr)
		if r.Uncorrectable {
			return fmt.Errorf("%w: block %#x during page re-encryption", ErrDataError, addr)
		}
		ct := r.Data
		want, err := c.dataMAC(blockIdx)
		if err != nil {
			return err
		}
		if got := c.eng.DataMAC(addr, oldCounters[i], &ct); got != want {
			return fmt.Errorf("%w: block %#x during page re-encryption", ErrMACMismatch, addr)
		}
		pt := c.eng.Decrypt(addr, oldCounters[i], &ct)
		nct := c.eng.Encrypt(addr, newMajorCounter.Counter(i), &pt)
		c.pushWrite(addr, &nct, WCData)
		if err := c.setDataMAC(blockIdx, c.eng.DataMAC(addr, newMajorCounter.Counter(i), &nct)); err != nil {
			return err
		}
	}

	// The leaf changed wholesale: refresh bookkeeping and its tracking
	// state. (Re-peek: the loop may have reshuffled the cache.)
	if blk, ok := c.mcache.Peek(home); ok {
		for i := range blk.UpdatesPerSlot {
			blk.UpdatesPerSlot[i] = 0
		}
		c.mcache.MarkDirty(home)
		if err := c.strat.commitLeaf(c, home); err != nil {
			return err
		}
	} else {
		// Evicted mid-loop (written back with the new major). Nothing
		// more to do: memory already holds the re-encrypted state.
		_ = blk
	}
	c.stats.PageReencrypt++
	c.tel.pageReencrypt.Inc()
	return nil
}

func (c *Controller) checkDataAddr(addr uint64) error {
	if c.crashed {
		return ErrCrashed
	}
	if addr%nvm.LineSize != 0 {
		return fmt.Errorf("memctrl: unaligned data address %#x", addr)
	}
	limit := c.cfg.NVM.CapacityBytes
	if addr >= limit {
		return fmt.Errorf("memctrl: data address %#x beyond capacity %#x", addr, limit)
	}
	return nil
}

// DrainWPQ advances time until every write accepted so far has left the
// write pending queue — the timing effect of an sfence/durability barrier.
// (Functionally WPQ writes are already durable; only time passes.)
func (c *Controller) DrainWPQ(now sim.Time) sim.Time {
	c.now = now
	c.now = c.q.FlushTime(c.now)
	return c.now
}

// FlushAll writes back every dirty metadata block (leaf levels first so
// parent bumps are folded in), then waits for the WPQ to drain. It leaves
// the NVM image fully self-consistent — the state VerifyAll checks and a
// clean shutdown produces.
func (c *Controller) FlushAll(now sim.Time) sim.Time {
	c.now = now
	if c.mode == ModeNonSecure {
		c.now = c.q.FlushTime(c.now)
		return c.now
	}
	for pass := 0; ; pass++ {
		if pass > c.layout.TopLevel()+2 {
			panic("memctrl: FlushAll failed to reach a fixpoint")
		}
		dirty := c.mcache.DirtyEntries()
		// Lowest level first: leaf write-backs dirty their parents,
		// which later iterations of this pass pick up.
		work := false
		for level := 0; level <= c.layout.TopLevel(); level++ {
			for _, e := range dirty {
				if e.Value.Level != level || e.Value.Kind == metacache.KindMAC {
					continue
				}
				if _, ok := c.mcache.Peek(e.Addr); !ok {
					continue
				}
				// Skip if a cascade already cleaned it.
				if !stillDirty(c, e.Addr) {
					continue
				}
				if err := c.forceWriteback(e.Addr); err != nil {
					// Unverifiable parent chain: the update is lost
					// (already accounted); clean the line so the
					// flush can terminate.
					c.stats.RecoveryLost++
					c.tel.recoveryLost.Inc()
					c.mcache.CleanLine(e.Addr)
				}
				work = true
			}
		}
		if !work {
			break
		}
	}
	c.now = c.q.FlushTime(c.now)
	return c.now
}

func stillDirty(c *Controller, addr uint64) bool {
	for _, d := range c.mcache.DirtyEntries() {
		if d.Addr == addr {
			return true
		}
	}
	return false
}
