// Package memctrl is the secure NVM memory controller — the component the
// whole paper is about. It composes every substrate in this repository:
//
//   - counter-mode encryption with split counters (internal/ctrenc),
//   - a lazily updated SGX-style Tree of Counters (internal/itree),
//   - the volatile metadata cache (internal/metacache),
//   - Anubis shadow tracking with Soteria's duplicated entries
//     (internal/shadow) and Osiris counter recovery (internal/osiris),
//   - Soteria metadata cloning and fault handling (internal/core),
//   - an ADR write-pending queue over a fault-injectable, ECC-protected
//     NVM device (internal/wpq, internal/nvm, internal/ecc).
//
// The controller is byte-accurate (data really is encrypted, MACed,
// verified and recovered) and simultaneously maintains the timing model the
// performance figures are measured on.
package memctrl

import (
	"errors"
	"fmt"

	"soteria/internal/config"
	"soteria/internal/core"
	"soteria/internal/ctrenc"
	"soteria/internal/ecc"
	"soteria/internal/inject"
	"soteria/internal/itree"
	"soteria/internal/metacache"
	"soteria/internal/nvm"
	"soteria/internal/shadow"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
	"soteria/internal/wpq"
)

// Mode selects the protection scheme, matching the schemes compared in
// Fig 10 and Fig 11 of the paper.
type Mode int

// Controller modes.
const (
	// ModeNonSecure is a plain NVM controller: no encryption, no
	// integrity tree, no shadow region.
	ModeNonSecure Mode = iota
	// ModeBaseline is the paper's Secure Baseline: counter-mode
	// encryption, lazily updated ToC, Anubis cache tracking — no
	// clones, single-copy shadow entries.
	ModeBaseline
	// ModeSRC is Soteria Relaxed Cloning.
	ModeSRC
	// ModeSAC is Soteria Aggressive Cloning.
	ModeSAC
)

func (m Mode) String() string {
	switch m {
	case ModeNonSecure:
		return "non-secure"
	case ModeBaseline:
		return "secure-baseline"
	case ModeSRC:
		return "soteria-SRC"
	case ModeSAC:
		return "soteria-SAC"
	default:
		return "?"
	}
}

// Policy returns the clone policy a mode implies.
func (m Mode) Policy() core.ClonePolicy {
	switch m {
	case ModeSRC:
		return core.SRC()
	case ModeSAC:
		return core.SAC()
	default:
		return core.Baseline()
	}
}

// WriteCat categorizes NVM writes for the Fig 10b breakdown.
type WriteCat int

// NVM write categories.
const (
	WCData WriteCat = iota
	WCDataMAC
	WCShadow
	WCMetadata // home-copy metadata write-back
	WCClone    // Soteria clone writes
	WCRecovery
	wcCount
)

func (w WriteCat) String() string {
	return [...]string{"data", "data-mac", "shadow", "metadata", "clone", "recovery"}[w]
}

// Stats aggregates controller activity.
type Stats struct {
	MemRequests   uint64
	DataReads     uint64
	DataWrites    uint64
	ColdReads     uint64
	NVMWrites     [wcCount]uint64
	NVMReads      uint64
	WPQForwards   uint64
	PageReencrypt uint64
	ForcedWB      uint64
	RecoveredOK   uint64
	RecoveryLost  uint64
}

// TotalNVMWrites sums all write categories.
func (s Stats) TotalNVMWrites() uint64 {
	var t uint64
	for _, v := range s.NVMWrites {
		t += v
	}
	return t
}

// Errors surfaced by the controller.
var (
	// ErrUnverifiable: a metadata node (and all of its clones, if any)
	// is dead; the covered region cannot be verified.
	ErrUnverifiable = errors.New("memctrl: metadata unverifiable")
	// ErrTamper: integrity verification failed with clean ECC on all
	// copies — an active attack signature.
	ErrTamper = errors.New("memctrl: integrity violation (tamper/replay)")
	// ErrDataError: the data block itself holds an uncorrectable error.
	ErrDataError = errors.New("memctrl: uncorrectable data error")
	// ErrMACMismatch: the data MAC check failed.
	ErrMACMismatch = errors.New("memctrl: data MAC mismatch")
	// ErrCrashed: the controller needs Recover() before use.
	ErrCrashed = errors.New("memctrl: controller crashed; call Recover")
	// ErrNotCrashed: Recover was called on a live controller.
	ErrNotCrashed = errors.New("memctrl: Recover called without a crash")
)

// Options tune non-default controller behaviour.
type Options struct {
	// OsirisLimit bounds in-cache counter increments between forced
	// write-backs; zero selects the default.
	OsirisLimit int
	// EagerTreeUpdate switches the ToC from the paper's lazy update to
	// the eager scheme of §2.5: every data write propagates fresh MACs
	// along the whole branch to the root. The root is always current, so
	// no Anubis shadow tracking is needed (and none is performed) — but
	// every write turns into a branch of write-backs, the "extreme
	// slowdown" the paper cites as the reason to go lazy. Exposed for
	// the ablation experiment.
	EagerTreeUpdate bool
	// DisableShadowHalfRepair plumbs shadow.Options.DisableHalfRepair
	// through: recovery skips the duplicated-half repair, deliberately
	// breaking Soteria's shadow resilience. Debug/chaos-harness only.
	DisableShadowHalfRepair bool
	// Strategy selects the metadata-persistence scheme (what is persisted
	// on metadata mutations, what survives a crash, how recovery rebuilds
	// a verified image). Empty selects DefaultStrategy ("soteria"); see
	// Strategies() for the registered schemes.
	Strategy string
}

// Controller is the secure memory controller front-end. It is not
// goroutine-safe: the simulation is single-threaded by design.
type Controller struct {
	cfg    config.SystemConfig
	mode   Mode
	policy core.ClonePolicy
	layout *itree.Layout
	dev    *nvm.Device
	banks  *sim.Banks
	q      *wpq.Queue
	eng    *ctrenc.Engine
	mcache *metacache.Cache
	shadow *shadow.Table
	fh     *core.FaultHandler
	strat  strategy

	// Persistent on-chip registers (survive power loss in the ADR
	// domain): the ToC root node and the shadow-BMT root.
	root       itree.Node
	shadowRoot uint64

	readLat, writeLat sim.Time
	fwdLat            sim.Time
	osirisLimit       int
	eager             bool

	now        sim.Time
	crashed    bool
	recovering bool
	bootstrap  bool
	stats      Stats
	cascade    int
	opt        Options
	tel        telemetryHooks
	telReg     *telemetry.Registry // remembered so Recover can re-attach the fresh shadow table

	// hook observes seal/note events (chaos injection); sealDepth tracks
	// nesting so helpers stay balanced across early returns.
	hook      inject.Hook
	sealDepth int

	// forcing marks home addresses whose forced write-back is already on
	// the stack, so a nested insertion steers victim selection away from
	// them instead of recursing into the same write-back.
	forcing map[uint64]bool

	// pinned marks home addresses held by an in-progress data write: the
	// leaf counter advances in cache before the sealed data commit, and an
	// eviction in that window would make the increment durable ahead of
	// the ciphertext. Victim selection steers around pinned blocks.
	pinned map[uint64]bool

	// inflight holds metadata blocks currently being written back,
	// keyed by home address. While a block is in flight, getBlock serves
	// the in-flight copy so that nested write-backs (eviction cascades)
	// apply their parent-counter bumps to the copy that will actually be
	// serialized — otherwise a concurrent re-fetch of the stale NVM copy
	// could roll those bumps back.
	inflight map[uint64]*metacache.Block

	// wbAddrs/wbWrites are write-back scratch, reused across calls: the
	// copy-address list and its atomic write group are fully consumed by
	// PushAtomic before anything can re-enter writebackBlock.
	wbAddrs  []uint64
	wbWrites []wpq.Write
}

// New constructs a controller in the given mode over a fresh NVM device.
func New(cfg config.SystemConfig, mode Mode, key []byte, opt Options) (*Controller, error) {
	return newController(cfg, mode, mode.Policy(), key, opt)
}

// NewWithPolicy constructs a secure controller with an explicit clone
// policy (used by depth-sweep ablations). Shadow entries are duplicated
// (Soteria style) whenever the policy clones anything.
func NewWithPolicy(cfg config.SystemConfig, policy core.ClonePolicy, key []byte, opt Options) (*Controller, error) {
	mode := ModeSRC
	if policy.Depth(1, 9) == 1 && policy.Depth(9, 9) == 1 {
		mode = ModeBaseline
	}
	return newController(cfg, mode, policy, key, opt)
}

func newController(cfg config.SystemConfig, mode Mode, policy core.ClonePolicy, key []byte, opt Options) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	c := &Controller{
		cfg:         cfg,
		mode:        mode,
		policy:      policy,
		readLat:     sim.FromDuration(cfg.NVM.ReadLatency),
		writeLat:    sim.FromDuration(cfg.NVM.WriteLatency),
		fwdLat:      sim.FromDuration(cfg.NVM.ReadLatency) / 10,
		osirisLimit: opt.OsirisLimit,
		eager:       opt.EagerTreeUpdate,
		opt:         opt,
		inflight:    make(map[uint64]*metacache.Block),
		forcing:     make(map[uint64]bool),
		pinned:      make(map[uint64]bool),
	}
	if c.osirisLimit <= 0 {
		c.osirisLimit = defaultOsirisLimit
	}
	strat, err := newStrategy(opt.Strategy)
	if err != nil {
		return nil, err
	}
	if err := validateStrategyOptions(strat, opt); err != nil {
		return nil, err
	}
	c.strat = strat
	c.banks = sim.NewBanks(cfg.NVM.Banks)

	if mode == ModeNonSecure {
		dev, err := nvm.NewDevice(cfg.NVM.CapacityBytes, ecc.NewChipkill())
		if err != nil {
			return nil, err
		}
		c.dev = dev
		q, err := wpq.New(dev, c.banks, cfg.NVM.WPQEntries, c.writeLat)
		if err != nil {
			return nil, err
		}
		c.q = q
		return c, nil
	}

	mcfg := cfg.Security.MetadataCache
	shadowLines := c.strat.shadowLines(uint64(mcfg.Sets() * mcfg.Ways))

	// First pass to learn the level count, second to size clone regions.
	probe, err := itree.NewLayout(itree.Params{
		DataBytes:    cfg.NVM.CapacityBytes,
		CounterArity: cfg.Security.CounterArity,
		TreeArity:    cfg.Security.TreeArity,
	})
	if err != nil {
		return nil, err
	}
	layout, err := itree.NewLayout(itree.Params{
		DataBytes:     cfg.NVM.CapacityBytes,
		CounterArity:  cfg.Security.CounterArity,
		TreeArity:     cfg.Security.TreeArity,
		CloneDepths:   policy.Depths(probe.TopLevel()),
		ShadowEntries: shadowLines,
	})
	if err != nil {
		return nil, err
	}
	if err := core.CheckDepths(layout, policy); err != nil {
		return nil, err
	}
	c.layout = layout

	dev, err := nvm.NewDevice(roundUp(layout.Total, nvm.LineSize), ecc.NewChipkill())
	if err != nil {
		return nil, err
	}
	c.dev = dev
	q, err := wpq.New(dev, c.banks, cfg.NVM.WPQEntries, c.writeLat)
	if err != nil {
		return nil, err
	}
	c.q = q

	eng, err := ctrenc.NewEngine(key)
	if err != nil {
		return nil, err
	}
	c.eng = eng

	mc, err := metacache.New(mcfg, layout.TopLevel())
	if err != nil {
		return nil, err
	}
	c.mcache = mc

	// Strategy installation initializes its tracking structures (e.g. the
	// shadow table and its BMT); those boot-time writes go straight to the
	// device without timing charges or statistics.
	c.bootstrap = true
	err = c.strat.install(c)
	c.bootstrap = false
	if err != nil {
		return nil, err
	}

	c.fh = core.NewFaultHandler(devMem{dev}, layout)
	return c, nil
}

const defaultOsirisLimit = 8

func roundUp(v, m uint64) uint64 { return (v + m - 1) / m * m }

// shadowOptions derives the shadow-table options from the mode and the
// debug knobs.
func (c *Controller) shadowOptions() shadow.Options {
	return shadow.Options{
		Duplicate:         c.mode != ModeBaseline,
		DisableHalfRepair: c.opt.DisableShadowHalfRepair,
	}
}

// SetHook installs the chaos-injection hook on the controller and on every
// layer below it (WPQ, device). Passing nil removes it everywhere.
func (c *Controller) SetHook(h inject.Hook) {
	c.hook = h
	c.q.SetHook(h)
	c.dev.SetWriteHook(h)
}

// seal begins a crash-atomic transaction: device writes until the matching
// unseal are committed from the ADR domain as one unit and must not be
// torn by the injection hook.
func (c *Controller) seal(label string) {
	c.sealDepth++
	if c.hook != nil {
		c.hook.Event(inject.Event{Kind: inject.SealBegin, Label: label})
	}
}

func (c *Controller) unseal(label string) {
	c.sealDepth--
	if c.hook != nil {
		c.hook.Event(inject.Event{Kind: inject.SealEnd, Label: label})
	}
}

// note emits a free-form phase marker to the hook.
func (c *Controller) note(label string) {
	if c.hook != nil {
		c.hook.Event(inject.Event{Kind: inject.Note, Label: label})
	}
}

// Mode returns the controller's protection mode.
func (c *Controller) Mode() Mode { return c.mode }

// TrackedSlots lists the tracking slots currently holding valid entries —
// the blocks the strategy is tracking right now. Empty in non-secure mode,
// after a crash (table handles are volatile), and for strategies that keep
// no tracking table. The chaos harness uses it to aim shadow-entry faults
// at entries that actually matter.
func (c *Controller) TrackedSlots() []uint64 {
	if c.mode == ModeNonSecure {
		return nil
	}
	return c.strat.trackedSlots(c)
}

// Layout exposes the NVM address map (nil in non-secure mode).
func (c *Controller) Layout() *itree.Layout { return c.layout }

// Device exposes the underlying NVM for fault injection in tests and
// experiments.
func (c *Controller) Device() *nvm.Device { return c.dev }

// Stats returns a copy of the controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

// MetaStats returns the metadata cache statistics (zero value in
// non-secure mode).
func (c *Controller) MetaStats() metacache.Stats {
	if c.mcache == nil {
		return metacache.Stats{}
	}
	return c.mcache.Stats()
}

// WPQStats returns the write-pending-queue statistics.
func (c *Controller) WPQStats() wpq.Stats { return c.q.Stats() }

// FaultStats returns the Soteria fault-handler statistics (zero value in
// non-secure mode).
func (c *Controller) FaultStats() core.Stats {
	if c.fh == nil {
		return core.Stats{}
	}
	return c.fh.Stats()
}

// ShadowStats returns tracking-table statistics (zero value in non-secure
// mode and for strategies without a tracking table).
func (c *Controller) ShadowStats() shadow.Stats {
	if c.mode == ModeNonSecure {
		return shadow.Stats{}
	}
	return c.strat.shadowStats(c)
}

// devMem adapts the device for the fault handler (repair writes bypass the
// WPQ: recovery is off the critical path).
type devMem struct{ dev *nvm.Device }

func (m devMem) ReadLine(addr uint64) (nvm.Line, bool) {
	r := m.dev.Read(addr)
	return r.Data, r.Uncorrectable
}

func (m devMem) WriteLine(addr uint64, line *nvm.Line) { m.dev.Write(addr, line) }

// shadowStore adapts WPQ-routed I/O for the shadow table; writes are
// counted in the shadow category and coalesce in the WPQ.
type shadowStore struct{ c *Controller }

func (c *Controller) shadowStore() shadow.Store { return shadowStore{c} }

func (s shadowStore) ReadLine(addr uint64) ([nvm.LineSize]byte, error) {
	r := s.c.dev.Read(addr)
	if r.Uncorrectable {
		return r.Data, fmt.Errorf("memctrl: uncorrectable shadow line %#x", addr)
	}
	return r.Data, nil
}

func (s shadowStore) WriteLine(addr uint64, data *[nvm.LineSize]byte) {
	// The shadow *table* lives in NVM and its writes are the Anubis
	// "shadow log" cost. The shadow *tree* above it is tiny (tens of kB)
	// and is held in ADR-protected on-chip SRAM — like the WPQ, it
	// persists across power loss without consuming NVM write bandwidth.
	// The device stands in for that SRAM functionally.
	if s.c.layout.ShadowTreeLn > 0 && addr >= s.c.layout.ShadowTreeBase {
		s.c.dev.Write(addr, data)
		return
	}
	s.c.pushWrite(addr, data, WCShadow)
}

func (s shadowStore) ReadRaw(addr uint64) (nvm.Line, []int, bool) {
	r := s.c.dev.Read(addr)
	if r.Uncorrectable {
		return s.c.dev.ReadRaw(addr), r.BadWords, true
	}
	return r.Data, nil, false
}

// pushWrite routes one line write through the WPQ, updating the category
// accounting (coalesced writes cost no NVM write). During bootstrap the
// write bypasses the WPQ and the books.
func (c *Controller) pushWrite(addr uint64, data *nvm.Line, cat WriteCat) {
	if c.bootstrap {
		c.dev.Write(addr, data)
		return
	}
	if !c.q.Pending(c.now, addr) {
		c.stats.NVMWrites[cat]++
		c.tel.nvmWrites[cat].Inc()
	}
	c.now = c.q.Push(c.now, addr, data)
}

// ResetStats zeroes every statistics counter (controller, metadata cache
// excluded — its histograms reset with it — WPQ and fault handler), so
// experiments can discard warm-up effects. The metadata cache and WPQ keep
// their contents; only the books are cleared.
func (c *Controller) ResetStats() {
	c.stats = Stats{}
	if c.fh != nil {
		c.fh.ResetStats()
	}
}

// readNVM reads one line, forwarding from the WPQ when the write is still
// pending, otherwise charging the bank read latency.
func (c *Controller) readNVM(addr uint64) nvm.ReadResult {
	if c.q.Pending(c.now, addr) {
		c.stats.WPQForwards++
		c.tel.wpqForwards.Inc()
		c.now += c.fwdLat
		return c.dev.Read(addr)
	}
	bank := c.banks.BankFor(addr / nvm.LineSize)
	c.now = c.banks.Schedule(bank, c.now, c.readLat)
	c.stats.NVMReads++
	c.tel.nvmReads.Inc()
	return c.dev.Read(addr)
}
