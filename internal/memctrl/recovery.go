package memctrl

import (
	"fmt"

	"soteria/internal/ctrenc"
	"soteria/internal/itree"
	"soteria/internal/metacache"
	"soteria/internal/nvm"
	"soteria/internal/osiris"
	"soteria/internal/shadow"
)

// Crash models a sudden power loss: every volatile structure (the metadata
// cache, the WPQ occupancy bookkeeping, in-flight write-back state and the
// shadow table's in-memory mirror) vanishes. Writes already accepted by
// the WPQ are durable (ADR), and the two on-chip roots survive in their
// persistent registers. The controller refuses further data operations
// until Recover is called.
//
// Crashing an already-crashed controller returns ErrCrashed — unless a
// recovery is in progress, in which case the nested crash is legal: the
// shadow-BMT root is re-captured from the live table (recovery's own
// shadow writes moved it) and the next Recover starts over from the
// entries that survive on NVM.
func (c *Controller) Crash() error {
	if c.mode == ModeNonSecure {
		return nil // nothing volatile matters
	}
	if c.crashed && !c.recovering {
		return ErrCrashed
	}
	c.mcache.DropAll()
	c.strat.onCrash(c)
	c.q.Reset()
	c.inflight = make(map[uint64]*metacache.Block)
	c.forcing = make(map[uint64]bool)
	c.pinned = make(map[uint64]bool)
	c.cascade = 0
	c.sealDepth = 0
	c.recovering = false
	c.crashed = true
	return nil
}

// FailedBlock is one tracked metadata block whose reconstruction failed,
// with the reason it was lost.
type FailedBlock struct {
	Addr   uint64
	Reason string
}

// RecoveryReport summarizes what Recover reconstructed.
type RecoveryReport struct {
	// TrackedEntries is the number of valid shadow entries found.
	TrackedEntries int
	// RecoveredBlocks is how many metadata blocks were reconstructed
	// and verified against their shadow MACs.
	RecoveredBlocks int
	// LostSlots lists shadow slots that could not be read at all.
	LostSlots []uint64
	// FailedBlocks lists tracked blocks whose reconstruction failed
	// verification (unrecoverable updates), each with its reason.
	FailedBlocks []FailedBlock
	// HalfRepairs counts Soteria duplicated-entry repairs performed.
	HalfRepairs uint64
}

// Recover rebuilds a consistent, verifiable memory image after Crash().
// The mechanics are the strategy's: Soteria reattaches the shadow table and
// patches stale copies with tracked counter LSBs (leaf minors through
// Osiris), the Anubis content table replays exact block images, and Triad
// re-derives its relaxed tree levels from the persisted ones by bounded
// counter search. All of them end with the reconstructed blocks reseeded as
// dirty cache contents and flushed through the ordinary lazy write-back
// machinery, leaving NVM self-consistent; a crash *during* recovery is
// always survivable (the next Recover starts over).
func (c *Controller) Recover() (*RecoveryReport, error) {
	if c.mode == ModeNonSecure {
		return &RecoveryReport{}, nil
	}
	if !c.crashed {
		return nil, ErrNotCrashed
	}
	c.recovering = true
	c.note("recover-begin")
	return c.strat.recover(c)
}

// counterTotal sums a reconstructed block's counters. Counters only ever
// grow, so of two reconstructions of the same block the one with the larger
// total is the fresher.
func counterTotal(b *metacache.Block) uint64 {
	var t uint64
	if b.Kind == metacache.KindCounter {
		for i := 0; i < ctrenc.CountersPerBlock; i++ {
			t += b.Counter.Counter(i)
		}
		return t
	}
	for _, v := range b.Node.Counters {
		t += v
	}
	return t
}

// recoverBlock reconstructs one tracked metadata block from whichever raw
// copy (home or clone) yields content matching the shadow entry's MAC.
// The entry MAC is keyed and binds the block's full content and home
// address, so acceptance through it is as strong as the parent-counter
// check used on the normal read path — and unlike that check it does not
// depend on how far the parent's own write-back had progressed when power
// failed.
func (c *Controller) recoverBlock(level int, index uint64, e shadow.Entry) (metacache.Block, error) {
	var lastErr error
	for _, addr := range c.layout.CopyAddrs(level, index) {
		r := c.dev.Read(addr)
		if r.Uncorrectable {
			if lastErr == nil {
				lastErr = fmt.Errorf("copy %#x uncorrectable", addr)
			}
			continue
		}
		line := r.Data
		blk, err := c.reconstruct(level, index, e, &line)
		if err != nil {
			lastErr = err
			continue
		}
		return blk, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no stored copies")
	}
	return metacache.Block{}, fmt.Errorf("memctrl: cannot reconstruct L%d[%d] from any copy: %v", level, index, lastErr)
}

// reconstruct patches one stale copy of (level, index) with the entry's
// counter LSBs (leaf minors via Osiris) and accepts the result iff it
// reproduces the entry's content MAC.
func (c *Controller) reconstruct(level int, index uint64, e shadow.Entry, line *nvm.Line) (metacache.Block, error) {
	var blk metacache.Block
	if level == 1 {
		stale := ctrenc.DeserializeCounterBlock(line)
		rec, err := c.recoverLeaf(index, stale, e.LSBs[0])
		if err != nil {
			return metacache.Block{}, err
		}
		blk = metacache.Block{
			Kind: metacache.KindCounter, Level: 1, Index: index,
			Counter: rec,
		}
	} else {
		stale := itree.DeserializeNode(line)
		rec := stale
		for i := range rec.Counters {
			rec.Counters[i] = osiris.RestoreLSB(stale.Counters[i], e.LSBs[i]) & itree.CounterMask
		}
		blk = metacache.Block{Kind: metacache.KindNode, Level: level, Index: index, Node: rec}
	}

	ser := serializeBlock(&blk)
	if shadow.ContentMAC(c.eng, e.Addr, &ser) != e.MAC {
		detail := ""
		if level == 1 {
			stale := ctrenc.DeserializeCounterBlock(line)
			detail = fmt.Sprintf(" (stale major=%d minors=%v; rec major=%d minors=%v; lsb=%#x)",
				stale.Major, nonzero(stale.Minors[:]), blk.Counter.Major, nonzero(blk.Counter.Minors[:]), e.LSBs[0])
		}
		return metacache.Block{}, fmt.Errorf("memctrl: reconstructed L%d[%d] fails shadow MAC%s", level, index, detail)
	}
	return blk, nil
}

// nonzero renders the non-zero slots of a counter array for diagnostics.
func nonzero(m []uint8) map[int]uint8 {
	out := map[int]uint8{}
	for i, v := range m {
		if v != 0 {
			out[i] = v
		}
	}
	return out
}

// recoverLeaf rebuilds a split-counter block: the major counter from its
// shadow LSBs, each minor via Osiris trials against the persisted per-block
// data MACs.
func (c *Controller) recoverLeaf(index uint64, stale ctrenc.CounterBlock, majorLSB uint16) (ctrenc.CounterBlock, error) {
	var sc osiris.SplitCounters
	sc.Major = stale.Major
	copy(sc.Minors[:], stale.Minors[:])

	firstBlock := index * uint64(ctrenc.CountersPerBlock)
	verify := func(slot int, counter uint64) bool {
		blockIdx := firstBlock + uint64(slot)
		if blockIdx >= c.layout.DataBlocks {
			// Slot beyond the data region: only the pristine zero
			// counter is acceptable.
			return counter&((1<<ctrenc.MinorBits)-1) == 0
		}
		addr := blockIdx * nvm.LineSize
		if counter&((1<<ctrenc.MinorBits)-1) == 0 && !c.dev.Materialized(addr) {
			// A never-written block: a zero minor is the pristine
			// state under any major (page re-encryptions skip
			// untouched blocks).
			return true
		}
		r := c.dev.Read(addr)
		if r.Uncorrectable {
			return false
		}
		lineAddr, off := c.layout.DataMACAddr(blockIdx)
		mr := c.dev.Read(lineAddr)
		if mr.Uncorrectable {
			return false
		}
		var want uint64
		for i := 0; i < 8; i++ {
			want |= uint64(mr.Data[off+i]) << uint(8*i)
		}
		ct := r.Data
		return c.eng.DataMAC(addr, counter, &ct) == want
	}

	rec, failed, err := osiris.RecoverBlock(sc, majorLSB, c.osirisLimit, verify)
	if err != nil {
		return ctrenc.CounterBlock{}, err
	}
	if len(failed) > 0 {
		return ctrenc.CounterBlock{}, fmt.Errorf("memctrl: Osiris could not recover %d minors of counter block %d", len(failed), index)
	}
	var out ctrenc.CounterBlock
	out.Major = rec.Major
	copy(out.Minors[:], rec.Minors[:])
	return out, nil
}
