package memctrl

import (
	"fmt"
	"sort"

	"soteria/internal/core"
	"soteria/internal/ctrenc"
	"soteria/internal/itree"
	"soteria/internal/metacache"
	"soteria/internal/nvm"
	"soteria/internal/osiris"
	"soteria/internal/shadow"
)

// Crash models a sudden power loss: every volatile structure (the metadata
// cache and the shadow table's in-memory mirror) vanishes. Writes already
// accepted by the WPQ are durable (ADR), and the two on-chip roots survive
// in their persistent registers. The controller refuses further data
// operations until Recover is called.
func (c *Controller) Crash() {
	if c.mode == ModeNonSecure {
		return // nothing volatile matters
	}
	c.mcache.DropAll()
	c.shadowRoot = c.shadow.Root()
	c.shadow = nil
	c.crashed = true
}

// RecoveryReport summarizes what Recover reconstructed.
type RecoveryReport struct {
	// TrackedEntries is the number of valid shadow entries found.
	TrackedEntries int
	// RecoveredBlocks is how many metadata blocks were reconstructed
	// and verified against their shadow MACs.
	RecoveredBlocks int
	// LostSlots lists shadow slots that could not be read at all.
	LostSlots []uint64
	// FailedBlocks lists tracked blocks whose reconstruction failed
	// verification (unrecoverable updates), with the reasons in
	// FailReasons (parallel slice).
	FailedBlocks []uint64
	FailReasons  []string
	// HalfRepairs counts Soteria duplicated-entry repairs performed.
	HalfRepairs uint64
}

// Recover rebuilds a consistent, verifiable memory image after Crash():
//
//  1. Reattach the shadow table using the persistent BMT root; read every
//     entry, repairing half-dead entries from their Soteria duplicates.
//  2. Top-down, reconstruct each tracked metadata block: the stale NVM copy
//     (fetched through the Soteria fault handler, so clones absorb faults)
//     plus the entry's 16-bit counter LSBs; leaf minors come back through
//     Osiris trials against the persisted data MACs. Every reconstruction
//     must match the MAC captured in its shadow entry.
//  3. Reinstall the reconstructed blocks as dirty cache contents and flush,
//     which replays the normal lazy write-back machinery (parent bumps,
//     fresh MACs, clone writes) and leaves NVM self-consistent.
func (c *Controller) Recover() (*RecoveryReport, error) {
	if c.mode == ModeNonSecure {
		return &RecoveryReport{}, nil
	}
	if !c.crashed {
		return nil, fmt.Errorf("memctrl: Recover called without a crash")
	}

	tbl, err := shadow.Attach(c.eng, c.shadowStore(), c.layout.ShadowBase, c.layout.ShadowEntries,
		c.layout.ShadowTreeBase, c.shadowRoot, shadow.Options{Duplicate: c.mode != ModeBaseline})
	if err != nil {
		return nil, err
	}
	slotEntries, lostSlots := tbl.LoadAllSlots()
	rep := &RecoveryReport{TrackedEntries: len(slotEntries), LostSlots: lostSlots, HalfRepairs: tbl.Stats().HalfRepairs}
	c.stats.RecoveryLost += uint64(len(lostSlots))

	// Clear every occupied or unreadable slot now: the tracked blocks are
	// about to be re-seeded into the cache at possibly *different* ways,
	// and an orphaned entry left at an old slot would resurface at the
	// next crash describing long-stale content.
	c.bootstrap = true // wipe writes are recovery bookkeeping, not workload writes
	for _, se := range slotEntries {
		if err := tbl.Reset(se.Slot); err != nil {
			c.bootstrap = false
			return nil, err
		}
	}
	for _, s := range lostSlots {
		if err := tbl.Reset(s); err != nil {
			c.bootstrap = false
			return nil, err
		}
	}
	c.bootstrap = false
	entries := make([]shadow.Entry, len(slotEntries))
	for i, se := range slotEntries {
		entries[i] = se.Entry
	}

	// Sort top-down: parents must be reconstructed before their children
	// so the children verify under the recovered parent counters.
	type tracked struct {
		e     shadow.Entry
		level int
		index uint64
	}
	var work []tracked
	for _, e := range entries {
		loc := c.layout.Locate(e.Addr)
		if loc.Kind != itree.RegionMetadata {
			rep.FailedBlocks = append(rep.FailedBlocks, e.Addr)
			continue
		}
		work = append(work, tracked{e: e, level: loc.Level, index: loc.Index})
	}
	sort.Slice(work, func(i, j int) bool { return work[i].level > work[j].level })

	recovered := make(map[uint64]metacache.Block)
	for _, w := range work {
		blk, err := c.recoverBlock(w.level, w.index, w.e, recovered)
		if err != nil {
			rep.FailedBlocks = append(rep.FailedBlocks, w.e.Addr)
			rep.FailReasons = append(rep.FailReasons, err.Error())
			c.stats.RecoveryLost++
			continue
		}
		recovered[w.e.Addr] = blk
		rep.RecoveredBlocks++
		c.stats.RecoveredOK++
	}

	// Fresh volatile state: install the shadow table and seed the cache
	// with the reconstructed blocks as dirty, then flush through the
	// ordinary write-back path. The shadow table has one slot per cache
	// way and the tracked blocks were simultaneously resident before the
	// crash, so reinsertion cannot evict.
	c.shadow = tbl
	c.crashed = false
	for addr, blk := range recovered {
		c.insertBlock(addr, blk, true)
	}
	c.FlushAll(c.now)
	return rep, nil
}

// recoveredCounterOf returns the counter protecting (level, index) during
// recovery: from the recovered map when the parent was tracked, otherwise
// from the (consistent) NVM copy fetched through the fault handler.
func (c *Controller) recoveredCounterOf(level int, index uint64, recovered map[uint64]metacache.Block) (uint64, error) {
	_, pindex, slot, stored := c.layout.Parent(level, index)
	if !stored {
		return c.root.Counters[slot], nil
	}
	pHome := c.layout.NodeAddr(level+1, pindex)
	if pb, ok := recovered[pHome]; ok {
		return pb.Node.Counters[slot], nil
	}
	pctr, err := c.recoveredCounterOf(level+1, pindex, recovered)
	if err != nil {
		return 0, err
	}
	line, out := c.fh.ReadVerified(level+1, pindex, c.verifierFor(level+1, pindex, pctr))
	if out == core.OutcomeUnverifiable || out == core.OutcomeTamper {
		return 0, fmt.Errorf("memctrl: recovery cannot verify parent L%d[%d]: %v", level+1, pindex, out)
	}
	n := itree.DeserializeNode(&line)
	return n.Counters[slot], nil
}

// recoverBlock reconstructs one tracked metadata block.
func (c *Controller) recoverBlock(level int, index uint64, e shadow.Entry, recovered map[uint64]metacache.Block) (metacache.Block, error) {
	pctr, err := c.recoveredCounterOf(level, index, recovered)
	if err != nil {
		return metacache.Block{}, err
	}
	// The stale NVM copy still verifies under the current parent counter
	// (the parent's slot only advances when this block writes back), and
	// the fault handler lets clones absorb any NVM faults on the way.
	line, out := c.fh.ReadVerified(level, index, c.verifierFor(level, index, pctr))
	if out == core.OutcomeUnverifiable || out == core.OutcomeTamper {
		return metacache.Block{}, fmt.Errorf("memctrl: stale copy of L%d[%d] unusable: %v", level, index, out)
	}

	var blk metacache.Block
	if level == 1 {
		stale := ctrenc.DeserializeCounterBlock(&line)
		rec, err := c.recoverLeaf(index, stale, e.LSBs[0])
		if err != nil {
			return metacache.Block{}, err
		}
		blk = metacache.Block{
			Kind: metacache.KindCounter, Level: 1, Index: index,
			Counter:        rec,
			UpdatesPerSlot: make([]uint32, ctrenc.CountersPerBlock),
		}
	} else {
		stale := itree.DeserializeNode(&line)
		rec := stale
		for i := range rec.Counters {
			rec.Counters[i] = osiris.RestoreLSB(stale.Counters[i], e.LSBs[i]) & itree.CounterMask
		}
		blk = metacache.Block{Kind: metacache.KindNode, Level: level, Index: index, Node: rec}
	}

	// The reconstruction must reproduce the exact content the shadow
	// entry captured.
	ser := serializeBlock(&blk)
	if shadow.ContentMAC(c.eng, e.Addr, &ser) != e.MAC {
		detail := ""
		if level == 1 {
			stale := ctrenc.DeserializeCounterBlock(&line)
			detail = fmt.Sprintf(" (stale major=%d minors=%v; rec major=%d minors=%v; lsb=%#x)",
				stale.Major, nonzero(stale.Minors[:]), blk.Counter.Major, nonzero(blk.Counter.Minors[:]), e.LSBs[0])
		}
		return metacache.Block{}, fmt.Errorf("memctrl: reconstructed L%d[%d] fails shadow MAC%s", level, index, detail)
	}
	return blk, nil
}

// nonzero renders the non-zero slots of a counter array for diagnostics.
func nonzero(m []uint8) map[int]uint8 {
	out := map[int]uint8{}
	for i, v := range m {
		if v != 0 {
			out[i] = v
		}
	}
	return out
}

// recoverLeaf rebuilds a split-counter block: the major counter from its
// shadow LSBs, each minor via Osiris trials against the persisted per-block
// data MACs.
func (c *Controller) recoverLeaf(index uint64, stale ctrenc.CounterBlock, majorLSB uint16) (ctrenc.CounterBlock, error) {
	var sc osiris.SplitCounters
	sc.Major = stale.Major
	copy(sc.Minors[:], stale.Minors[:])

	firstBlock := index * uint64(ctrenc.CountersPerBlock)
	verify := func(slot int, counter uint64) bool {
		blockIdx := firstBlock + uint64(slot)
		if blockIdx >= c.layout.DataBlocks {
			// Slot beyond the data region: only the pristine zero
			// counter is acceptable.
			return counter&((1<<ctrenc.MinorBits)-1) == 0
		}
		addr := blockIdx * nvm.LineSize
		if counter&((1<<ctrenc.MinorBits)-1) == 0 && !c.dev.Materialized(addr) {
			// A never-written block: a zero minor is the pristine
			// state under any major (page re-encryptions skip
			// untouched blocks).
			return true
		}
		r := c.dev.Read(addr)
		if r.Uncorrectable {
			return false
		}
		lineAddr, off := c.layout.DataMACAddr(blockIdx)
		mr := c.dev.Read(lineAddr)
		if mr.Uncorrectable {
			return false
		}
		var want uint64
		for i := 0; i < 8; i++ {
			want |= uint64(mr.Data[off+i]) << uint(8*i)
		}
		ct := r.Data
		return c.eng.DataMAC(addr, counter, &ct) == want
	}

	rec, failed, err := osiris.RecoverBlock(sc, majorLSB, c.osirisLimit, verify)
	if err != nil {
		return ctrenc.CounterBlock{}, err
	}
	if len(failed) > 0 {
		return ctrenc.CounterBlock{}, fmt.Errorf("memctrl: Osiris could not recover %d minors of counter block %d", len(failed), index)
	}
	var out ctrenc.CounterBlock
	out.Major = rec.Major
	copy(out.Minors[:], rec.Minors[:])
	return out, nil
}
