package memctrl

import (
	"fmt"
	"slices"
	"sort"

	"soteria/internal/ctrenc"
	"soteria/internal/itree"
	"soteria/internal/metacache"
	"soteria/internal/nvm"
	"soteria/internal/osiris"
	"soteria/internal/shadow"
)

// Crash models a sudden power loss: every volatile structure (the metadata
// cache, the WPQ occupancy bookkeeping, in-flight write-back state and the
// shadow table's in-memory mirror) vanishes. Writes already accepted by
// the WPQ are durable (ADR), and the two on-chip roots survive in their
// persistent registers. The controller refuses further data operations
// until Recover is called.
//
// Crashing an already-crashed controller returns ErrCrashed — unless a
// recovery is in progress, in which case the nested crash is legal: the
// shadow-BMT root is re-captured from the live table (recovery's own
// shadow writes moved it) and the next Recover starts over from the
// entries that survive on NVM.
func (c *Controller) Crash() error {
	if c.mode == ModeNonSecure {
		return nil // nothing volatile matters
	}
	if c.crashed && !c.recovering {
		return ErrCrashed
	}
	c.mcache.DropAll()
	if c.shadow != nil {
		c.shadowRoot = c.shadow.Root()
		c.shadow = nil
	}
	c.q.Reset()
	c.inflight = make(map[uint64]*metacache.Block)
	c.forcing = make(map[uint64]bool)
	c.pinned = make(map[uint64]bool)
	c.cascade = 0
	c.sealDepth = 0
	c.recovering = false
	c.crashed = true
	return nil
}

// FailedBlock is one tracked metadata block whose reconstruction failed,
// with the reason it was lost.
type FailedBlock struct {
	Addr   uint64
	Reason string
}

// RecoveryReport summarizes what Recover reconstructed.
type RecoveryReport struct {
	// TrackedEntries is the number of valid shadow entries found.
	TrackedEntries int
	// RecoveredBlocks is how many metadata blocks were reconstructed
	// and verified against their shadow MACs.
	RecoveredBlocks int
	// LostSlots lists shadow slots that could not be read at all.
	LostSlots []uint64
	// FailedBlocks lists tracked blocks whose reconstruction failed
	// verification (unrecoverable updates), each with its reason.
	FailedBlocks []FailedBlock
	// HalfRepairs counts Soteria duplicated-entry repairs performed.
	HalfRepairs uint64
}

// Recover rebuilds a consistent, verifiable memory image after Crash():
//
//  1. Reattach the shadow table using the persistent BMT root; read every
//     entry, repairing half-dead entries from their Soteria duplicates.
//  2. Reconstruct each tracked metadata block independently: a stale NVM
//     copy (home or any clone) plus the entry's 16-bit counter LSBs; leaf
//     minors come back through Osiris trials against the persisted data
//     MACs. A reconstruction is accepted exactly when it reproduces the
//     keyed MAC captured in its shadow entry, which makes recovery
//     insensitive to the order in which a crash tore parent and child
//     write-backs.
//  3. Reinstall the reconstructed blocks as dirty cache contents (which
//     re-tracks them at their new slots), retiring each block's old slots
//     as it is re-tracked, and flush through the ordinary lazy write-back
//     machinery (parent bumps, fresh MACs, clone writes), leaving NVM
//     self-consistent. At every instant each tracked block is described
//     by at least one durable entry, and entries for the same block only
//     coexist while content-identical, so a crash *during* recovery loses
//     nothing: the next Recover simply starts over.
//  4. Finally clear whatever slots remain valid (unreconstructible
//     blocks, already counted as lost).
func (c *Controller) Recover() (*RecoveryReport, error) {
	if c.mode == ModeNonSecure {
		return &RecoveryReport{}, nil
	}
	if !c.crashed {
		return nil, ErrNotCrashed
	}
	c.recovering = true
	c.note("recover-begin")

	root := c.shadowRoot
	if c.shadow != nil {
		// A previous Recover attempt was interrupted after installing the
		// table; its root is the current one.
		root = c.shadow.Root()
		c.shadow = nil
	}
	tbl, err := shadow.Attach(c.eng, c.shadowStore(), c.layout.ShadowBase, c.layout.ShadowEntries,
		c.layout.ShadowTreeBase, root, c.shadowOptions())
	if err != nil {
		return nil, err
	}
	// Install immediately: every shadow mutation from here on lands in the
	// live table, so a nested crash re-captures a root that matches NVM.
	c.shadow = tbl
	if c.telReg != nil {
		tbl.AttachTelemetry(c.telReg)
	}

	slotEntries, lostSlots := tbl.LoadAllSlots()
	rep := &RecoveryReport{TrackedEntries: len(slotEntries), LostSlots: lostSlots, HalfRepairs: tbl.Stats().HalfRepairs}
	c.stats.RecoveryLost += uint64(len(lostSlots))
	c.tel.recoveryLost.Add(uint64(len(lostSlots)))
	c.note("recover-load-done")

	// Reconstruct every tracked block. Entries are self-contained (the
	// entry MAC is the acceptance test), so no ordering between levels is
	// needed. Duplicate entries for the same block are a legal artifact of
	// crashing an earlier recovery between re-tracking and slot cleanup,
	// and the copies can disagree: the fresher one has absorbed the
	// parent-counter bumps of that recovery's flush. Every entry is tried,
	// and when several reconstruct, the one with the largest counters wins
	// — counters only ever grow, so picking a smaller reconstruction would
	// roll the block (and, silently, its already-flushed children) back.
	recovered := make(map[uint64]metacache.Block)
	failReason := make(map[uint64]string)
	slotsOf := make(map[uint64][]uint64)
	for _, se := range slotEntries {
		e := se.Entry
		loc := c.layout.Locate(e.Addr)
		if loc.Kind != itree.RegionMetadata {
			rep.FailedBlocks = append(rep.FailedBlocks,
				FailedBlock{Addr: e.Addr, Reason: "shadow entry outside the metadata region"})
			c.stats.RecoveryLost++
			c.tel.recoveryLost.Inc()
			continue
		}
		slotsOf[e.Addr] = append(slotsOf[e.Addr], se.Slot)
		blk, err := c.recoverBlock(loc.Level, loc.Index, e)
		if err != nil {
			if _, seen := failReason[e.Addr]; !seen {
				failReason[e.Addr] = err.Error()
			}
			continue
		}
		if prev, dup := recovered[e.Addr]; !dup || counterTotal(&blk) > counterTotal(&prev) {
			recovered[e.Addr] = blk
		}
	}
	reported := make(map[uint64]bool)
	for _, se := range slotEntries {
		addr := se.Entry.Addr
		if c.layout.Locate(addr).Kind != itree.RegionMetadata {
			continue
		}
		if _, ok := recovered[addr]; ok || reported[addr] {
			continue
		}
		reported[addr] = true
		rep.FailedBlocks = append(rep.FailedBlocks, FailedBlock{Addr: addr, Reason: failReason[addr]})
		c.stats.RecoveryLost++
		c.tel.recoveryLost.Inc()
	}
	rep.RecoveredBlocks = len(recovered)
	c.stats.RecoveredOK += uint64(len(recovered))
	c.tel.recoveredOK.Add(uint64(len(recovered)))

	// Fresh volatile state: seed the cache with the reconstructed blocks
	// as dirty — which writes their entries at their new slots — and flush
	// through the ordinary write-back path. The shadow table has one slot
	// per cache way and the tracked blocks were simultaneously resident
	// before the crash, so reinsertion cannot evict.
	//
	// Each block's superseded slots are retired immediately after its
	// re-insert, not at the end: once the flush starts folding in counter
	// bumps, a stale entry left valid at the old slot would describe
	// content older than what lands in NVM, and a nested crash would let
	// the next recovery roll the block — and silently its already-flushed
	// children — back to it. Between a re-insert and its retirement the
	// duplicate entries are content-identical, so a crash in that window
	// is harmless.
	//
	// Order matters: ascending old slot. Insert fills the lowest free way
	// first, so the i-th re-seeded block lands at way i of its set, and
	// any still-valid entry at that slot would belong to a block with a
	// smaller minimum slot — re-inserted earlier, its old slots already
	// retired. The re-insert therefore never overwrites a live entry.
	c.crashed = false
	c.recovering = false
	c.note("recover-reseed")
	order := make([]uint64, 0, len(recovered))
	for addr := range recovered {
		order = append(order, addr)
	}
	sort.Slice(order, func(i, j int) bool {
		return slices.Min(slotsOf[order[i]]) < slices.Min(slotsOf[order[j]])
	})
	for _, addr := range order {
		c.insertBlock(addr, recovered[addr], true)
		newSlot := c.mcache.SlotOf(addr)
		for _, s := range slotsOf[addr] {
			if int(s) != newSlot {
				c.invalidateSlot(int(s))
			}
		}
	}
	c.FlushAll(c.now)

	// Cleanup: the flush untracked the re-seeded blocks; what remains
	// valid is stale pre-crash entries at old slots (the blocks moved
	// ways) plus anything the flush had to abandon. Clearing them is pure
	// bookkeeping — each one describes content that now matches memory —
	// so the wipe writes bypass the WPQ books like other recovery
	// bookkeeping.
	c.bootstrap = true
	for _, s := range tbl.ValidSlots() {
		c.seal("shadow-op")
		err := tbl.Reset(s)
		c.unseal("shadow-op")
		if err != nil {
			c.bootstrap = false
			return rep, err
		}
	}
	for _, s := range lostSlots {
		c.seal("shadow-op")
		err := tbl.Reset(s)
		c.unseal("shadow-op")
		if err != nil {
			c.bootstrap = false
			return rep, err
		}
	}
	c.bootstrap = false
	c.note("recover-done")
	return rep, nil
}

// counterTotal sums a reconstructed block's counters. Counters only ever
// grow, so of two reconstructions of the same block the one with the larger
// total is the fresher.
func counterTotal(b *metacache.Block) uint64 {
	var t uint64
	if b.Kind == metacache.KindCounter {
		for i := 0; i < ctrenc.CountersPerBlock; i++ {
			t += b.Counter.Counter(i)
		}
		return t
	}
	for _, v := range b.Node.Counters {
		t += v
	}
	return t
}

// recoverBlock reconstructs one tracked metadata block from whichever raw
// copy (home or clone) yields content matching the shadow entry's MAC.
// The entry MAC is keyed and binds the block's full content and home
// address, so acceptance through it is as strong as the parent-counter
// check used on the normal read path — and unlike that check it does not
// depend on how far the parent's own write-back had progressed when power
// failed.
func (c *Controller) recoverBlock(level int, index uint64, e shadow.Entry) (metacache.Block, error) {
	var lastErr error
	for _, addr := range c.layout.CopyAddrs(level, index) {
		r := c.dev.Read(addr)
		if r.Uncorrectable {
			if lastErr == nil {
				lastErr = fmt.Errorf("copy %#x uncorrectable", addr)
			}
			continue
		}
		line := r.Data
		blk, err := c.reconstruct(level, index, e, &line)
		if err != nil {
			lastErr = err
			continue
		}
		return blk, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no stored copies")
	}
	return metacache.Block{}, fmt.Errorf("memctrl: cannot reconstruct L%d[%d] from any copy: %v", level, index, lastErr)
}

// reconstruct patches one stale copy of (level, index) with the entry's
// counter LSBs (leaf minors via Osiris) and accepts the result iff it
// reproduces the entry's content MAC.
func (c *Controller) reconstruct(level int, index uint64, e shadow.Entry, line *nvm.Line) (metacache.Block, error) {
	var blk metacache.Block
	if level == 1 {
		stale := ctrenc.DeserializeCounterBlock(line)
		rec, err := c.recoverLeaf(index, stale, e.LSBs[0])
		if err != nil {
			return metacache.Block{}, err
		}
		blk = metacache.Block{
			Kind: metacache.KindCounter, Level: 1, Index: index,
			Counter: rec,
		}
	} else {
		stale := itree.DeserializeNode(line)
		rec := stale
		for i := range rec.Counters {
			rec.Counters[i] = osiris.RestoreLSB(stale.Counters[i], e.LSBs[i]) & itree.CounterMask
		}
		blk = metacache.Block{Kind: metacache.KindNode, Level: level, Index: index, Node: rec}
	}

	ser := serializeBlock(&blk)
	if shadow.ContentMAC(c.eng, e.Addr, &ser) != e.MAC {
		detail := ""
		if level == 1 {
			stale := ctrenc.DeserializeCounterBlock(line)
			detail = fmt.Sprintf(" (stale major=%d minors=%v; rec major=%d minors=%v; lsb=%#x)",
				stale.Major, nonzero(stale.Minors[:]), blk.Counter.Major, nonzero(blk.Counter.Minors[:]), e.LSBs[0])
		}
		return metacache.Block{}, fmt.Errorf("memctrl: reconstructed L%d[%d] fails shadow MAC%s", level, index, detail)
	}
	return blk, nil
}

// nonzero renders the non-zero slots of a counter array for diagnostics.
func nonzero(m []uint8) map[int]uint8 {
	out := map[int]uint8{}
	for i, v := range m {
		if v != 0 {
			out[i] = v
		}
	}
	return out
}

// recoverLeaf rebuilds a split-counter block: the major counter from its
// shadow LSBs, each minor via Osiris trials against the persisted per-block
// data MACs.
func (c *Controller) recoverLeaf(index uint64, stale ctrenc.CounterBlock, majorLSB uint16) (ctrenc.CounterBlock, error) {
	var sc osiris.SplitCounters
	sc.Major = stale.Major
	copy(sc.Minors[:], stale.Minors[:])

	firstBlock := index * uint64(ctrenc.CountersPerBlock)
	verify := func(slot int, counter uint64) bool {
		blockIdx := firstBlock + uint64(slot)
		if blockIdx >= c.layout.DataBlocks {
			// Slot beyond the data region: only the pristine zero
			// counter is acceptable.
			return counter&((1<<ctrenc.MinorBits)-1) == 0
		}
		addr := blockIdx * nvm.LineSize
		if counter&((1<<ctrenc.MinorBits)-1) == 0 && !c.dev.Materialized(addr) {
			// A never-written block: a zero minor is the pristine
			// state under any major (page re-encryptions skip
			// untouched blocks).
			return true
		}
		r := c.dev.Read(addr)
		if r.Uncorrectable {
			return false
		}
		lineAddr, off := c.layout.DataMACAddr(blockIdx)
		mr := c.dev.Read(lineAddr)
		if mr.Uncorrectable {
			return false
		}
		var want uint64
		for i := 0; i < 8; i++ {
			want |= uint64(mr.Data[off+i]) << uint(8*i)
		}
		ct := r.Data
		return c.eng.DataMAC(addr, counter, &ct) == want
	}

	rec, failed, err := osiris.RecoverBlock(sc, majorLSB, c.osirisLimit, verify)
	if err != nil {
		return ctrenc.CounterBlock{}, err
	}
	if len(failed) > 0 {
		return ctrenc.CounterBlock{}, fmt.Errorf("memctrl: Osiris could not recover %d minors of counter block %d", len(failed), index)
	}
	var out ctrenc.CounterBlock
	out.Major = rec.Major
	copy(out.Minors[:], rec.Minors[:])
	return out, nil
}
