package memctrl

import (
	"encoding/binary"
	"fmt"

	"soteria/internal/core"
	"soteria/internal/ctrenc"
	"soteria/internal/itree"
	"soteria/internal/metacache"
	"soteria/internal/nvm"
	"soteria/internal/shadow"
	"soteria/internal/wpq"
)

// maxCascade bounds the eviction/writeback recursion. A correctly sized
// metadata cache never approaches this; hitting it indicates a livelock
// bug, so we fail loudly.
const maxCascade = 512

// isZeroLine reports whether a line is all zeroes (the pristine,
// never-written state of a metadata node).
func isZeroLine(l *nvm.Line) bool {
	for _, b := range l {
		if b != 0 {
			return false
		}
	}
	return true
}

// verifierFor builds the MAC-check predicate for metadata node (level,
// index) under the protecting parent counter. The pristine all-zero state
// is valid exactly when the parent counter is still zero (the node was
// never written back, so the only legitimate content is the initial one —
// and replaying zeroes later fails because the parent counter has moved).
func (c *Controller) verifierFor(level int, index uint64, pctr uint64) func(*nvm.Line) bool {
	if level == 1 {
		return func(l *nvm.Line) bool {
			if isZeroLine(l) {
				return pctr == 0
			}
			cb := ctrenc.DeserializeCounterBlock(l)
			return cb.ContentMAC(c.eng, index, pctr) == cb.MAC
		}
	}
	return func(l *nvm.Line) bool {
		if isZeroLine(l) {
			return pctr == 0
		}
		n := itree.DeserializeNode(l)
		return n.ContentMAC(c.eng, level, index, pctr) == n.MAC
	}
}

// decodeBlock turns a verified line into a metadata cache payload.
func (c *Controller) decodeBlock(level int, index uint64, line *nvm.Line) metacache.Block {
	if level == 1 {
		return metacache.Block{
			Kind:           metacache.KindCounter,
			Level:          1,
			Index:          index,
			Counter: ctrenc.DeserializeCounterBlock(line),
		}
	}
	return metacache.Block{
		Kind:  metacache.KindNode,
		Level: level,
		Index: index,
		Node:  itree.DeserializeNode(line),
	}
}

// serializeBlock renders a metadata block's current content (MAC field
// included as stored).
func serializeBlock(b *metacache.Block) nvm.Line {
	switch b.Kind {
	case metacache.KindCounter:
		return b.Counter.Serialize()
	case metacache.KindNode:
		return b.Node.Serialize()
	default:
		return b.Raw
	}
}

// parentCounterOf returns the counter protecting node (level, index),
// ensuring the parent chain is resident and verified.
func (c *Controller) parentCounterOf(level int, index uint64) (uint64, error) {
	_, pindex, slot, stored := c.layout.Parent(level, index)
	if !stored {
		return c.root.Counters[slot], nil
	}
	pb, err := c.getBlock(level+1, pindex)
	if err != nil {
		return 0, err
	}
	return pb.Node.Counters[slot], nil
}

// getBlock returns a trusted metadata block, fetching and verifying it (and
// its ancestor chain) as needed. If the block is currently being written
// back, its in-flight copy is returned — that copy is what will reach NVM,
// so counter bumps must land there. The returned pointer is valid only
// until the next cache-mutating call.
func (c *Controller) getBlock(level int, index uint64) (*metacache.Block, error) {
	home := c.layout.NodeAddr(level, index)
	if b, ok := c.inflight[home]; ok {
		return b, nil
	}
	for tries := 0; tries < 64; tries++ {
		if b, ok := c.mcache.Lookup(home); ok {
			return b, nil
		}
		if err := c.fetchBlock(level, index); err != nil {
			return nil, err
		}
	}
	panic(fmt.Sprintf("memctrl: livelock fetching metadata L%d[%d]", level, index))
}

// fetchBlock reads node (level, index) from NVM, verifies it through the
// Soteria fault handler (which consults clones on failure), and inserts it
// clean into the metadata cache.
func (c *Controller) fetchBlock(level int, index uint64) error {
	home := c.layout.NodeAddr(level, index)
	pctr, err := c.parentCounterOf(level, index)
	if err != nil {
		return err
	}
	preClones := c.fh.Stats().CloneLookups
	line, out := c.fh.ReadVerified(level, index, c.verifierFor(level, index, pctr))
	// Timing: the home read always happens; each clone consulted adds a
	// read. (Purify writes are off the critical path.)
	c.chargeReadLatency(home)
	for n := c.fh.Stats().CloneLookups - preClones; n > 0; n-- {
		c.chargeReadLatency(home)
	}
	switch out {
	case core.OutcomeUnverifiable:
		return fmt.Errorf("%w: L%d[%d]", ErrUnverifiable, level, index)
	case core.OutcomeTamper:
		return fmt.Errorf("%w: L%d[%d]", ErrTamper, level, index)
	}
	// The parent fetch above can cascade into write-backs that
	// themselves pull this very block into the cache (and advance its
	// counters). Inserting the NVM copy now would roll those updates
	// back; the resident copy is authoritative.
	if _, ok := c.mcache.Peek(home); ok {
		return nil
	}
	if level >= 0 && level < len(c.tel.fillsByLevel) {
		c.tel.fillsByLevel[level].Inc()
	}
	c.insertBlock(home, c.decodeBlock(level, index, &line), false)
	return nil
}

// chargeReadLatency advances time for one NVM line read without performing
// the functional read.
func (c *Controller) chargeReadLatency(addr uint64) {
	if c.q.Pending(c.now, addr) {
		c.stats.WPQForwards++
		c.tel.wpqForwards.Inc()
		c.now += c.fwdLat
		return
	}
	bank := c.banks.BankFor(addr / nvm.LineSize)
	c.now = c.banks.Schedule(bank, c.now, c.readLat)
	c.stats.NVMReads++
	c.tel.nvmReads.Inc()
}

// insertBlock places a block into the metadata cache, fully handling any
// eviction this causes (write-back with lazy parent update, clone writes,
// shadow maintenance). When dirty is true the new block's shadow entry is
// written as well.
func (c *Controller) insertBlock(home uint64, blk metacache.Block, dirty bool) {
	// Crash safety: a dirty victim's shadow entry must stay valid until
	// the victim's write-back clone group is durable, and its slot is only
	// then handed to the new occupant. Evicting first and writing back
	// afterwards would force an early entry invalidation, leaving the
	// victim's in-cache updates untracked across a crash in the window. So
	// dirty victims are force-written *while still resident* (which clears
	// their entry after the group is pushed), and only then replaced.
	for guard := 0; ; guard++ {
		if guard > maxCascade {
			panic("memctrl: victim pre-clean failed to converge")
		}
		v, has := c.mcache.Victim(home)
		if !has || !v.Dirty {
			break
		}
		if v.Value.Kind == metacache.KindMAC {
			// MAC lines are write-through and should never be dirty;
			// handle defensively.
			line := v.Value.Raw
			c.pushWrite(c.macLineAddr(v.Value.Index), &line, WCDataMAC)
			c.mcache.CleanLine(v.Addr)
			continue
		}
		if c.forcing[v.Addr] || c.pinned[v.Addr] {
			// The victim's write-back is already on the stack (this
			// insertion is part of its parent-ensure cascade), or the
			// block is pinned by the data write in progress — persisting
			// its bumped counter before the sealed data commit would
			// strand the data on a crash in between. Refresh its LRU
			// state so selection moves to another way instead.
			c.mcache.Touch(v.Addr)
			continue
		}
		c.mcache.NoteEvictionWriteback(v.Value.Level)
		if err := c.forceWriteback(v.Addr); err != nil {
			// Unverifiable parent chain: the update is lost (the fault
			// handler accounted the coverage loss). Drop the tracking
			// entry so the insertion can proceed.
			c.stats.RecoveryLost++
			c.tel.recoveryLost.Inc()
			c.mcache.CleanLine(v.Addr)
			c.strat.onDrop(c, v.Addr)
		}
	}
	// The pre-clean cascade can fetch (and advance the counters of) this
	// very block while writing back a victim that happens to be one of its
	// children. The resident copy is then authoritative; overwriting it
	// with the stale decoded line would roll those bumps back and break
	// the children's MACs.
	if _, ok := c.mcache.Peek(home); ok {
		if dirty {
			c.mcache.MarkDirty(home)
			if blk.Kind != metacache.KindMAC {
				c.strat.onDirty(c, home)
			}
		}
		return
	}
	ev, has := c.mcache.Insert(home, blk, dirty)
	if has && ev.Dirty {
		// Unreachable in normal operation — the loop above cleaned the
		// victim and nothing between the final peek and the insert can
		// dirty it — kept as a safety net.
		if ev.Value.Kind == metacache.KindMAC {
			line := ev.Value.Raw
			c.pushWrite(c.macLineAddr(ev.Value.Index), &line, WCDataMAC)
		} else if err := c.writebackBlock(&ev.Value); err != nil {
			c.stats.RecoveryLost++
			c.tel.recoveryLost.Inc()
		}
	}
	if dirty && blk.Kind != metacache.KindMAC {
		c.strat.onDirty(c, home)
	}
}

// writebackBlock persists a metadata block that is no longer (or not)
// resident: it bumps the parent counter (the lazy ToC update), recomputes
// the block's MAC under the new parent counter, and pushes the home copy
// plus every configured clone through the WPQ as one atomic group.
//
// blk must be a stable pointer (an evicted entry's local copy, or a
// resident way protected by a pre-ensured parent — see forceWriteback).
// The block is registered as in-flight for the duration, so any nested
// write-back that needs to bump one of blk's own counters mutates *this*
// copy, which is serialized only afterwards.
func (c *Controller) writebackBlock(blk *metacache.Block) error {
	c.cascade++
	defer func() { c.cascade-- }()
	if c.cascade > maxCascade {
		panic("memctrl: eviction cascade exceeded bound")
	}
	level, index := blk.Level, blk.Index
	home := c.layout.NodeAddr(level, index)
	if _, dup := c.inflight[home]; dup {
		panic(fmt.Sprintf("memctrl: L%d[%d] written back re-entrantly", level, index))
	}
	c.inflight[home] = blk
	defer delete(c.inflight, home)

	_, pindex, slot, stored := c.layout.Parent(level, index)
	var pctr uint64
	if !stored {
		c.root.Increment(slot)
		pctr = c.root.Counters[slot]
	} else {
		pHome := c.layout.NodeAddr(level+1, pindex)
		pb, err := c.getBlock(level+1, pindex)
		if err != nil {
			return err
		}
		pb.Node.Increment(slot)
		pctr = pb.Node.Counters[slot]
		// Per-slot bump accounting bounds how far the parent's in-cache
		// counters can drift from NVM — Triad's relaxed levels use it the
		// way Osiris uses leaf UpdatesPerSlot.
		pb.UpdatesPerSlot[slot]++
		c.mcache.MarkDirty(pHome)
		c.strat.onDirty(c, pHome)
	}

	switch blk.Kind {
	case metacache.KindCounter:
		blk.Counter.MAC = blk.Counter.ContentMAC(c.eng, index, pctr)
	case metacache.KindNode:
		blk.Node.MAC = blk.Node.ContentMAC(c.eng, level, index, pctr)
	}
	line := serializeBlock(blk)

	// The addr/write scratch is consumed before any path that could
	// re-enter writebackBlock (the parent cascade above is done), so one
	// controller-owned buffer suffices even under nested write-backs.
	c.wbAddrs = c.layout.AppendCopyAddrs(c.wbAddrs[:0], level, index)
	addrs := c.wbAddrs
	if cap(c.wbWrites) < len(addrs) {
		c.wbWrites = make([]wpq.Write, len(addrs))
	}
	writes := c.wbWrites[:len(addrs)]
	for i, a := range addrs {
		writes[i] = wpq.Write{Addr: a, Data: line}
	}
	c.now = c.q.PushAtomic(c.now, writes)
	c.stats.NVMWrites[WCMetadata]++
	c.tel.nvmWrites[WCMetadata].Inc()
	c.stats.NVMWrites[WCClone] += uint64(len(addrs) - 1)
	c.tel.nvmWrites[WCClone].Add(uint64(len(addrs) - 1))
	// The persisted copy is in sync with the cache again: reset the
	// per-slot drift accounting (Osiris bound for leaves, Triad relaxed
	// bound for nodes).
	for i := range blk.UpdatesPerSlot {
		blk.UpdatesPerSlot[i] = 0
	}
	return nil
}

// shadowUpdate (re)writes the shadow entry describing the dirty block at
// home — called on every in-cache modification, the Anubis "shadow log"
// write.
func (c *Controller) shadowUpdate(home uint64) {
	if c.shadow == nil || c.eager {
		// Eager mode keeps the root fresh on every write; there is no
		// stale state for a shadow entry to recover, so the Anubis log
		// is not maintained.
		return
	}
	blk, ok := c.mcache.Peek(home)
	if !ok || blk.Kind == metacache.KindMAC {
		return
	}
	slot := c.mcache.SlotOf(home)
	line := serializeBlock(blk)
	e := shadow.Entry{
		Valid: true,
		Addr:  home,
		MAC:   shadow.ContentMAC(c.eng, home, &line),
	}
	if blk.Kind == metacache.KindCounter {
		e.LSBs[0] = uint16(blk.Counter.Major & 0xFFFF)
	} else {
		for i, ctr := range blk.Node.Counters {
			e.LSBs[i] = uint16(ctr & 0xFFFF)
		}
	}
	// One shadow-table operation — the entry line plus its eager BMT
	// update and the on-chip root — commits atomically from the ADR
	// domain; a torn entry/tree pair would fail BMT verification and lose
	// the tracked block.
	c.seal("shadow-op")
	err := c.shadow.Write(slot, e)
	c.unseal("shadow-op")
	if err != nil {
		panic(fmt.Sprintf("memctrl: shadow write: %v", err))
	}
}

// invalidateSlot clears one shadow slot as a crash-atomic shadow-table
// operation.
func (c *Controller) invalidateSlot(slot int) {
	c.seal("shadow-op")
	err := c.shadow.Invalidate(slot)
	c.unseal("shadow-op")
	if err != nil {
		panic(fmt.Sprintf("memctrl: shadow invalidate: %v", err))
	}
}

// forceWriteback flushes a resident dirty block to memory without evicting
// it (the Osiris in-cache update bound and FlushAll both use this). The
// block stays cached, clean.
func (c *Controller) forceWriteback(home uint64) error {
	blk, ok := c.mcache.Peek(home)
	if !ok {
		return nil
	}
	if c.forcing[home] {
		// Already being written back higher on the stack; that call will
		// complete the job.
		return nil
	}
	c.forcing[home] = true
	defer delete(c.forcing, home)
	// Pre-ensure the parent chain: the fetch cascade this can trigger
	// must run *before* we commit to writing the resident copy, because
	// the cascade may evict (and thereby already write back) this very
	// block, or modify its counters via nested write-backs.
	level, index := blk.Level, blk.Index
	if _, pindex, _, stored := c.layout.Parent(level, index); stored {
		if _, err := c.getBlock(level+1, pindex); err != nil {
			return err
		}
	}
	blk, ok = c.mcache.Peek(home)
	if !ok {
		// The pre-ensure cascade evicted it — which wrote it back.
		c.stats.ForcedWB++
		c.tel.forcedWB.Inc()
		return nil
	}
	// From here on no cache mutation can happen (the parent is resident,
	// so writebackBlock's lookup hits), making the resident pointer
	// stable for the duration.
	if err := c.writebackBlock(blk); err != nil {
		return err
	}
	c.mcache.CleanLine(home)
	// The tracking entry is dropped only now, after the block's clone
	// group has been accepted into the persistence domain: a crash between
	// the two steps merely leaves a benign entry describing content that
	// already matches memory.
	c.strat.onClean(c, home)
	c.stats.ForcedWB++
	c.tel.forcedWB.Inc()
	return nil
}

// --- data-MAC lines ---------------------------------------------------------

func (c *Controller) macLineAddr(lineIdx uint64) uint64 {
	return c.layout.MACBase + lineIdx*nvm.LineSize
}

// getMACLine returns the cached packed-MAC line covering dataBlock,
// fetching it from NVM on a miss. MAC lines sit outside the tree (the data
// MAC itself is the authenticator), so no verification chain is needed.
func (c *Controller) getMACLine(dataBlock uint64) (*metacache.Block, error) {
	lineAddr, _ := c.layout.DataMACAddr(dataBlock)
	lineIdx := (lineAddr - c.layout.MACBase) / nvm.LineSize
	for tries := 0; tries < 64; tries++ {
		if b, ok := c.mcache.Lookup(lineAddr); ok {
			return b, nil
		}
		r := c.readNVM(lineAddr)
		if r.Uncorrectable {
			return nil, fmt.Errorf("%w: MAC line %d", ErrDataError, lineIdx)
		}
		if _, ok := c.mcache.Peek(lineAddr); ok {
			continue // raced with a cascade; resident copy wins
		}
		if len(c.tel.fillsByLevel) > 0 {
			c.tel.fillsByLevel[0].Inc() // MAC lines fill as level 0
		}
		c.insertBlock(lineAddr, metacache.Block{Kind: metacache.KindMAC, Index: lineIdx, Raw: r.Data}, false)
	}
	panic("memctrl: livelock fetching MAC line")
}

// dataMAC reads the stored MAC of a data block.
func (c *Controller) dataMAC(dataBlock uint64) (uint64, error) {
	b, err := c.getMACLine(dataBlock)
	if err != nil {
		return 0, err
	}
	_, off := c.layout.DataMACAddr(dataBlock)
	return binary.LittleEndian.Uint64(b.Raw[off : off+8]), nil
}

// setDataMAC updates a data block's MAC: the cached line is modified and
// written through immediately (MAC persists together with the ciphertext,
// which is what makes Osiris recovery possible).
func (c *Controller) setDataMAC(dataBlock uint64, mac uint64) error {
	b, err := c.getMACLine(dataBlock)
	if err != nil {
		return err
	}
	_, off := c.layout.DataMACAddr(dataBlock)
	binary.LittleEndian.PutUint64(b.Raw[off:off+8], mac)
	lineAddr, _ := c.layout.DataMACAddr(dataBlock)
	line := b.Raw
	c.pushWrite(lineAddr, &line, WCDataMAC)
	return nil
}
