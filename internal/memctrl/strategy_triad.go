package memctrl

import (
	"fmt"
	"slices"

	"soteria/internal/itree"
	"soteria/internal/metacache"
	"soteria/internal/osiris"
	"soteria/internal/shadow"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
	"soteria/internal/wpq"
)

// triadBumpLimit bounds how many times a relaxed node's slot may be bumped
// in cache before the node is queued for a deferred write-back — the relaxed
// analogue of the leaf Osiris update bound.
const triadBumpLimit = 64

// triadWindow is the recovery search window: the maximum distance between a
// stored parent-slot counter and the counter a child's persisted MAC was
// computed under. Drift accrues up to triadBumpLimit before the parent is
// queued, plus whatever the remainder of the in-flight operation adds before
// the queue drains (generously bounded by the cascade guard).
const triadWindow = triadBumpLimit + 2*maxCascade + 16

// triadStrategy is Triad-NVM's selective persistence (Alwadi et al.): tree
// levels <= persistLevels are written to NVM inside the sealed data-commit
// transaction, while higher ("relaxed") levels stay lazy and are re-derived
// after a crash by bounded counter search upward from the persisted levels.
// No shadow region is reserved at all — the scheme trades recovery-time tree
// reconstruction (work proportional to the materialized tree, not the cache)
// for zero steady-state tracking writes.
type triadStrategy struct {
	// persistLevels is the threshold N: levels 1..N persist on every data
	// write, levels N+1..top are relaxed.
	persistLevels int

	// deferForce queues relaxed nodes whose in-cache drift crossed
	// triadBumpLimit; drained by afterOp outside any seal. deferSet
	// deduplicates the queue.
	deferForce []uint64
	deferSet   map[uint64]bool
}

func (s *triadStrategy) name() string {
	if s.persistLevels == 1 {
		return "triad-nvm"
	}
	return fmt.Sprintf("triad-nvm-%d", s.persistLevels)
}

// shadowLines: none. Triad keeps no tracking table.
func (s *triadStrategy) shadowLines(cacheSlots uint64) uint64 { return 0 }

func (s *triadStrategy) install(c *Controller) error {
	top := c.layout.TopLevel()
	if s.persistLevels < 1 || s.persistLevels >= top {
		return fmt.Errorf("memctrl: triad persisted-level threshold %d outside [1,%d)", s.persistLevels, top)
	}
	s.deferSet = make(map[uint64]bool)
	return nil
}

// onDirty watches relaxed-level drift: once any slot of a relaxed node has
// absorbed triadBumpLimit bumps since its last write-back, the node is
// queued for a deferred force so the recovery search window stays sound.
func (s *triadStrategy) onDirty(c *Controller, home uint64) {
	blk, ok := c.mcache.Peek(home)
	if !ok || blk.Kind != metacache.KindNode || blk.Level <= s.persistLevels {
		return
	}
	if s.deferSet[home] {
		return
	}
	over := false
	for i := range blk.Node.Counters {
		if blk.UpdatesPerSlot[i] >= triadBumpLimit {
			over = true
			break
		}
	}
	if !over {
		return
	}
	s.deferSet[home] = true
	s.deferForce = append(s.deferForce, home)
}

func (s *triadStrategy) onClean(c *Controller, home uint64) {}
func (s *triadStrategy) onDrop(c *Controller, home uint64)  {}

// commitLeaf persists the leaf counter block and its ancestors up to the
// persisted-level threshold. The caller holds the data-commit seal, so the
// chain lands atomically with the ciphertext and data MAC — a crash can
// never strand an acknowledged write behind an unpersisted counter.
func (s *triadStrategy) commitLeaf(c *Controller, home uint64) error {
	blk, ok := c.mcache.Peek(home)
	if !ok {
		return nil
	}
	level, index := blk.Level, blk.Index
	for level <= s.persistLevels {
		h := c.layout.NodeAddr(level, index)
		if c.mcache.IsDirty(h) {
			if err := c.forceWriteback(h); err != nil {
				return err
			}
		}
		_, pindex, _, stored := c.layout.Parent(level, index)
		if !stored {
			break
		}
		level, index = level+1, pindex
	}
	return nil
}

// needsForce: never. The leaf is force-written by commitLeaf on every data
// write, so its drift is always zero and the Osiris bound is moot.
func (s *triadStrategy) needsForce(c *Controller, blk *metacache.Block, slot int) bool {
	return false
}

// afterOp drains the deferred-force queue outside any seal. A node that went
// clean in the meantime (eviction, FlushAll) is skipped; an unverifiable
// parent chain loses the update, accounted exactly like FlushAll does.
func (s *triadStrategy) afterOp(c *Controller) error {
	if len(s.deferForce) == 0 {
		return nil
	}
	// Index-based loop: a force can bump (and queue) ancestors, appending
	// to the slice mid-drain.
	for i := 0; i < len(s.deferForce); i++ {
		home := s.deferForce[i]
		delete(s.deferSet, home)
		if !c.mcache.IsDirty(home) {
			continue
		}
		if err := c.forceWriteback(home); err != nil {
			c.stats.RecoveryLost++
			c.tel.recoveryLost.Inc()
			c.mcache.CleanLine(home)
		}
	}
	s.deferForce = s.deferForce[:0]
	return nil
}

func (s *triadStrategy) onCrash(c *Controller) {
	s.deferForce = s.deferForce[:0]
	clear(s.deferSet)
}

func (s *triadStrategy) retireSlot(c *Controller, slot int) {}

func (s *triadStrategy) trackedSlots(c *Controller) []uint64 { return nil }

func (s *triadStrategy) shadowStats(c *Controller) shadow.Stats { return shadow.Stats{} }

func (s *triadStrategy) attachTelemetry(c *Controller, r *telemetry.Registry) {}

// checkpoint: only the deferred-force queue is volatile strategy state.
func (s *triadStrategy) checkpoint(c *Controller, w *sim.SnapW) {
	w.U32(uint32(len(s.deferForce)))
	for _, home := range s.deferForce {
		w.U64(home)
	}
}

func (s *triadStrategy) restore(c *Controller, r *sim.SnapR) error {
	n := r.Count(8)
	if r.Err() != nil {
		return r.Err()
	}
	s.deferForce = s.deferForce[:0]
	s.deferSet = make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		home := r.U64()
		s.deferForce = append(s.deferForce, home)
		s.deferSet[home] = true
	}
	return r.Err()
}

// storedSlot reads the smallest readable stored value of one parent slot
// (home or clone; the copies agree unless faulted, and a faulted copy must
// not inflate the search base past the true counter).
func (s *triadStrategy) storedSlot(c *Controller, level int, index uint64, slot int) uint64 {
	var best uint64
	found := false
	for _, a := range c.layout.CopyAddrs(level, index) {
		if !c.dev.Materialized(a) {
			continue
		}
		r := c.dev.Read(a)
		if r.Uncorrectable {
			continue
		}
		line := r.Data
		n := itree.DeserializeNode(&line)
		v := n.Counters[slot] & itree.CounterMask
		if !found || v < best {
			best, found = v, true
		}
	}
	return best
}

// recover re-derives the relaxed tree levels from the persisted ones.
//
// Pass 1 walks every materialized leaf counter block and pins its parent
// slot exactly: the leaf's stored MAC was computed under the parent's
// current (possibly never-persisted) counter, which a bounded search from
// the stored value recovers — the same trick Osiris plays for leaf minors,
// one level up. Pass 2 closes the live tree upward, fencing every ancestor
// slot at stored+window+1: strictly above any counter an old child version
// could have been MACed under, so nothing stale can be replayed into the
// rebuilt tree. The write pass then re-MACs and rewrites every rebuilt node
// bottom-up (level-2 content is exact; higher contents are fresh fences).
//
// The whole procedure reads persisted state and writes idempotent
// derivations of it, so a crash at any point during recovery just makes the
// next attempt start over — fences move further up, which is always legal.
func (s *triadStrategy) recover(c *Controller) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	top := c.layout.TopLevel()

	type rbNode struct {
		counters [8]uint64
		live     [8]bool
	}
	rebuild := make([]map[uint64]*rbNode, top+1)
	for l := 2; l <= top; l++ {
		rebuild[l] = make(map[uint64]*rbNode)
	}
	getNode := func(level int, index uint64) *rbNode {
		n := rebuild[level][index]
		if n == nil {
			n = &rbNode{}
			rebuild[level][index] = n
		}
		return n
	}

	// Pass 1: exact parent counters for every materialized leaf.
	for idx := uint64(0); idx < c.layout.Levels[0].Nodes; idx++ {
		if !c.dev.Materialized(c.layout.NodeAddr(1, idx)) && !c.anyCloneMaterialized(1, idx) {
			continue
		}
		rep.TrackedEntries++
		_, pindex, slot, stored := c.layout.Parent(1, idx)
		var base uint64
		if stored {
			base = s.storedSlot(c, 2, pindex, slot)
		} else {
			base = c.root.Counters[slot]
		}
		exact, found := uint64(0), false
		for _, a := range c.layout.CopyAddrs(1, idx) {
			r := c.dev.Read(a)
			if r.Uncorrectable {
				continue
			}
			line := r.Data
			if v, ok := osiris.RecoverValue(base, triadWindow, func(v uint64) bool {
				return c.verifierFor(1, idx, v&itree.CounterMask)(&line)
			}); ok {
				exact, found = v&itree.CounterMask, true
				break
			}
		}
		if found {
			rep.RecoveredBlocks++
			c.stats.RecoveredOK++
			c.tel.recoveredOK.Inc()
		} else {
			rep.FailedBlocks = append(rep.FailedBlocks, FailedBlock{
				Addr:   c.layout.NodeAddr(1, idx),
				Reason: "no leaf copy verifies within the Triad search window",
			})
			c.stats.RecoveryLost++
			c.tel.recoveryLost.Inc()
		}
		if !stored {
			continue // degenerate single-level tree: the root register is exact
		}
		pn := getNode(2, pindex)
		pn.live[slot] = true
		if found {
			pn.counters[slot] = exact
		} else {
			// Fence an unrecoverable leaf's slot above anything its MAC
			// could have been computed under.
			pn.counters[slot] = (base + triadWindow + 1) & itree.CounterMask
		}
	}
	c.note("recover-load-done")

	// Pass 2: close the live tree upward with replay fences. A relaxed
	// node is materialized only if it was once written back, which requires
	// a bumped slot, which requires a materialized child — so the upward
	// closure of the live leaves covers every materialized node.
	for level := 2; level < top; level++ {
		for index := range rebuild[level] {
			_, pindex, slot, _ := c.layout.Parent(level, index)
			pn := getNode(level+1, pindex)
			if !pn.live[slot] {
				pn.live[slot] = true
				base := s.storedSlot(c, level+1, pindex, slot)
				pn.counters[slot] = (base + triadWindow + 1) & itree.CounterMask
			}
		}
	}

	// Write pass: re-MAC and rewrite every rebuilt node, home plus clones
	// atomically, in deterministic order. Counters at all levels are final
	// before the first MAC is computed.
	for level := 2; level <= top; level++ {
		idxs := make([]uint64, 0, len(rebuild[level]))
		for index := range rebuild[level] {
			idxs = append(idxs, index)
		}
		slices.Sort(idxs)
		for _, index := range idxs {
			var node itree.Node
			node.Counters = rebuild[level][index].counters
			var pctr uint64
			_, pindex, slot, stored := c.layout.Parent(level, index)
			if !stored {
				c.root.Increment(slot)
				pctr = c.root.Counters[slot]
			} else {
				pctr = rebuild[level+1][pindex].counters[slot]
			}
			node.MAC = node.ContentMAC(c.eng, level, index, pctr)
			blk := metacache.Block{Kind: metacache.KindNode, Level: level, Index: index, Node: node}
			line := serializeBlock(&blk)
			addrs := c.layout.CopyAddrs(level, index)
			writes := make([]wpq.Write, len(addrs))
			for i, a := range addrs {
				writes[i] = wpq.Write{Addr: a, Data: line}
			}
			c.now = c.q.PushAtomic(c.now, writes)
			c.stats.NVMWrites[WCRecovery] += uint64(len(addrs))
			c.tel.nvmWrites[WCRecovery].Add(uint64(len(addrs)))
		}
	}

	c.crashed = false
	c.recovering = false
	c.FlushAll(c.now)
	c.note("recover-done")
	return rep, nil
}
