package memctrl

import (
	"fmt"

	"soteria/internal/itree"
	"soteria/internal/metacache"
	"soteria/internal/shadow"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// anubisStrategy is the Anubis SMC-style full-content shadow scheme (Huang
// & Hua): every dirty metadata block's complete 64-byte image is persisted
// in a content table, so recovery simply replays the images — no Osiris
// trials, no stale-copy patching, near-constant work per tracked entry.
// The trade-offs against Soteria: twice the shadow-region footprint, two
// shadow lines per update instead of one, and no duplicated-half
// resilience (an uncorrectable error in a tracked entry loses it, the gap
// Soteria's Fig 8b closes).
type anubisStrategy struct {
	tbl   *shadow.ContentTable
	root  uint64 // persistent on-chip register: the content-table BMT root
	slots uint64
}

func (s *anubisStrategy) name() string { return "anubis-shadow" }

// shadowLines: two shadow lines (header + image) per cache slot.
func (s *anubisStrategy) shadowLines(cacheSlots uint64) uint64 {
	return cacheSlots * shadow.ContentLinesPerSlot
}

func (s *anubisStrategy) install(c *Controller) error {
	slots := c.layout.ShadowEntries / shadow.ContentLinesPerSlot
	tbl, err := shadow.NewContentTable(c.eng, c.shadowStore(), c.layout.ShadowBase, slots,
		c.layout.ShadowTreeBase)
	if err != nil {
		return err
	}
	s.tbl = tbl
	s.root = tbl.Root()
	s.slots = slots
	return nil
}

// update (re)writes the full-content entry for the dirty block at home —
// the Anubis shadow-log write, header and image in one crash-atomic
// shadow-table operation.
func (s *anubisStrategy) update(c *Controller, home uint64) {
	if s.tbl == nil {
		return
	}
	blk, ok := c.mcache.Peek(home)
	if !ok || blk.Kind == metacache.KindMAC {
		return
	}
	slot := c.mcache.SlotOf(home)
	line := serializeBlock(blk)
	c.seal("shadow-op")
	err := s.tbl.Write(slot, home, &line)
	c.unseal("shadow-op")
	if err != nil {
		panic(fmt.Sprintf("memctrl: content shadow write: %v", err))
	}
}

func (s *anubisStrategy) invalidate(c *Controller, slot int) {
	c.seal("shadow-op")
	err := s.tbl.Invalidate(slot)
	c.unseal("shadow-op")
	if err != nil {
		panic(fmt.Sprintf("memctrl: content shadow invalidate: %v", err))
	}
}

func (s *anubisStrategy) onDirty(c *Controller, home uint64) { s.update(c, home) }

func (s *anubisStrategy) onClean(c *Controller, home uint64) {
	if slot := c.mcache.SlotOf(home); slot >= 0 && s.tbl != nil {
		s.invalidate(c, slot)
	}
}

func (s *anubisStrategy) onDrop(c *Controller, home uint64) {
	if slot := c.mcache.SlotOf(home); slot >= 0 && s.tbl != nil {
		s.invalidate(c, slot)
	}
}

func (s *anubisStrategy) commitLeaf(c *Controller, home uint64) error {
	s.update(c, home)
	return nil
}

// needsForce: never. The content entry is the exact in-cache image, so
// counters may drift arbitrarily far from their NVM copies — there is no
// bounded search at recovery to stay within.
func (s *anubisStrategy) needsForce(c *Controller, blk *metacache.Block, slot int) bool {
	return false
}

func (s *anubisStrategy) afterOp(c *Controller) error { return nil }

func (s *anubisStrategy) onCrash(c *Controller) {
	if s.tbl != nil {
		s.root = s.tbl.Root()
		s.tbl = nil
	}
}

func (s *anubisStrategy) retireSlot(c *Controller, slot int) { s.invalidate(c, slot) }

func (s *anubisStrategy) trackedSlots(c *Controller) []uint64 {
	if s.tbl == nil {
		return nil
	}
	return s.tbl.ValidSlots()
}

func (s *anubisStrategy) shadowStats(c *Controller) shadow.Stats {
	if s.tbl == nil {
		return shadow.Stats{}
	}
	return s.tbl.Stats()
}

func (s *anubisStrategy) attachTelemetry(c *Controller, r *telemetry.Registry) {
	if s.tbl != nil {
		s.tbl.AttachTelemetry(r)
	}
}

// checkpoint: the persistent root register plus the live table's volatile
// state (nil after a crash).
func (s *anubisStrategy) checkpoint(c *Controller, w *sim.SnapW) {
	w.U64(s.root)
	w.U64(s.slots)
	w.Bool(s.tbl != nil)
	if s.tbl != nil {
		s.tbl.Checkpoint(w)
	}
}

func (s *anubisStrategy) restore(c *Controller, r *sim.SnapR) error {
	s.root = r.U64()
	if slots := r.U64(); r.Err() == nil && slots != s.slots {
		return fmt.Errorf("memctrl: checkpoint content slots %d, strategy has %d", slots, s.slots)
	}
	if !r.Bool() {
		s.tbl = nil
		return r.Err()
	}
	tbl, err := shadow.RestoreContentTable(c.eng, c.shadowStore(), c.layout.ShadowBase, s.slots,
		c.layout.ShadowTreeBase, r)
	if err != nil {
		return err
	}
	s.tbl = tbl
	if c.telReg != nil {
		tbl.AttachTelemetry(c.telReg)
	}
	return nil
}

// recover reattaches the content table using the persistent BMT root,
// replays every tracked block's exact image, reseeds and flushes. Each
// entry already carries a verified image (BMT plus header MAC), so there
// is no reconstruction step to fail: an entry either loads or its slot is
// lost.
func (s *anubisStrategy) recover(c *Controller) (*RecoveryReport, error) {
	root := s.root
	if s.tbl != nil {
		// A previous Recover attempt was interrupted after installing the
		// table; its root is the current one.
		root = s.tbl.Root()
		s.tbl = nil
	}
	tbl, err := shadow.AttachContent(c.eng, c.shadowStore(), c.layout.ShadowBase, s.slots,
		c.layout.ShadowTreeBase, root)
	if err != nil {
		return nil, err
	}
	// Install immediately: every shadow mutation from here on lands in the
	// live table, so a nested crash re-captures a root that matches NVM.
	s.tbl = tbl
	if c.telReg != nil {
		tbl.AttachTelemetry(c.telReg)
	}

	entries, lostSlots := tbl.LoadAllSlots()
	rep := &RecoveryReport{TrackedEntries: len(entries), LostSlots: lostSlots}
	c.stats.RecoveryLost += uint64(len(lostSlots))
	c.tel.recoveryLost.Add(uint64(len(lostSlots)))
	c.note("recover-load-done")

	// Decode every tracked image. Duplicate entries for the same block are
	// a legal artifact of crashing an earlier recovery between re-tracking
	// and slot cleanup; the one with the largest counters is the fresher
	// (counters only ever grow).
	recovered := make(map[uint64]metacache.Block)
	slotsOf := make(map[uint64][]uint64)
	for _, se := range entries {
		loc := c.layout.Locate(se.Addr)
		if loc.Kind != itree.RegionMetadata {
			rep.FailedBlocks = append(rep.FailedBlocks,
				FailedBlock{Addr: se.Addr, Reason: "content entry outside the metadata region"})
			c.stats.RecoveryLost++
			c.tel.recoveryLost.Inc()
			continue
		}
		slotsOf[se.Addr] = append(slotsOf[se.Addr], se.Slot)
		line := se.Line
		blk := c.decodeBlock(loc.Level, loc.Index, &line)
		if prev, dup := recovered[se.Addr]; !dup || counterTotal(&blk) > counterTotal(&prev) {
			recovered[se.Addr] = blk
		}
	}
	rep.RecoveredBlocks = len(recovered)
	c.stats.RecoveredOK += uint64(len(recovered))
	c.tel.recoveredOK.Add(uint64(len(recovered)))

	c.reseedRecovered(recovered, slotsOf)

	if err := c.wipeSlots(tbl.Reset, tbl.ValidSlots(), lostSlots); err != nil {
		return rep, err
	}
	c.note("recover-done")
	return rep, nil
}
