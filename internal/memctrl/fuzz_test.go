package memctrl

import (
	"errors"
	"math/rand"
	"testing"

	"soteria/internal/config"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// TestRandomizedLifecycle is the big correctness hammer: a long random
// interleaving of reads, writes, crashes, recoveries, flushes and benign
// fault injections, with a shadow model of expected contents. At every
// point, reads must return the last written value and periodic VerifyAll
// audits must pass. Any lost counter bump, stale MAC, broken shadow entry
// or recovery bug shows up here.
func TestRandomizedLifecycle(t *testing.T) {
	for _, mode := range []Mode{ModeBaseline, ModeSRC, ModeSAC} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			runLifecycle(t, mode, 42)
		})
	}
}

func runLifecycle(t *testing.T, mode Mode, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := newCtrl(t, mode)
	expect := make(map[uint64]nvm.Line)
	var now sim.Time

	const blocks = 1 << 12 // 256 kB working set
	addr := func() uint64 { return uint64(rng.Intn(blocks)) * 64 }

	steps := 4000
	if testing.Short() {
		steps = 800
	}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 45: // write
			a := addr()
			var l nvm.Line
			rng.Read(l[:8])
			l[8] = byte(step)
			var err error
			if now, err = c.WriteBlock(now, a, &l); err != nil {
				t.Fatalf("step %d: write: %v", step, err)
			}
			expect[a] = l
		case op < 85: // read
			a := addr()
			got, nn, err := c.ReadBlock(now, a)
			if err != nil {
				t.Fatalf("step %d: read %#x: %v", step, a, err)
			}
			now = nn
			want, ok := expect[a]
			if !ok {
				want = nvm.Line{}
			}
			if got != want {
				t.Fatalf("step %d: data mismatch at %#x", step, a)
			}
		case op < 90: // crash + recover
			c.Crash()
			rep, err := c.Recover()
			if err != nil {
				t.Fatalf("step %d: recover: %v", step, err)
			}
			if len(rep.LostSlots) != 0 || len(rep.FailedBlocks) != 0 {
				t.Fatalf("step %d: recovery losses: %+v", step, rep)
			}
		case op < 94: // flush + full audit
			now = c.FlushAll(now)
			if err := c.VerifyAll(); err != nil {
				t.Fatalf("step %d: verify: %v", step, err)
			}
		case op < 97 && mode != ModeBaseline: // benign fault: kill one metadata copy
			lay := c.Layout()
			level := 1 + rng.Intn(lay.TopLevel())
			li := lay.Levels[level-1]
			index := uint64(rng.Intn(int(li.Nodes)))
			copies := lay.CopyAddrs(level, index)
			// Never kill the last readable copy: this test checks fault
			// *absorption*; total-loss accounting has its own tests.
			victim := copies[rng.Intn(len(copies))]
			healthy := 0
			for _, a := range copies {
				if a != victim && !c.Device().Read(a).Uncorrectable {
					healthy++
				}
			}
			if healthy > 0 && c.Device().Materialized(victim) {
				c.Device().CorruptLine(victim)
			}
		default: // benign fault on baseline: correctable single bit
			lay := c.Layout()
			a := lay.NodeAddr(1, uint64(rng.Intn(int(lay.Levels[0].Nodes))))
			if c.Device().Materialized(a) {
				c.Device().FlipBit(a+uint64(rng.Intn(64)), uint(rng.Intn(8)))
			}
		}
	}

	// Final audit: flush, verify, and check every expected value.
	now = c.FlushAll(now)
	if err := c.VerifyAll(); err != nil {
		t.Fatalf("final verify: %v", err)
	}
	for a, want := range expect {
		got, nn, err := c.ReadBlock(now, a)
		if err != nil {
			t.Fatalf("final read %#x: %v", a, err)
		}
		if got != want {
			t.Fatalf("final data mismatch at %#x", a)
		}
		now = nn
	}
}

// TestLifecycleSeeds runs shorter lifecycles across several seeds so the
// interleavings differ.
func TestLifecycleSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed fuzz is slow")
	}
	for seed := int64(100); seed < 104; seed++ {
		seed := seed
		t.Run(ModeSRC.String(), func(t *testing.T) {
			runLifecycle(t, ModeSRC, seed)
		})
	}
}

// TestCrashDuringHeavyEvictionPressure crashes while the metadata cache is
// thrashing (deep eviction cascades in flight between operations), the
// state recovery finds hardest.
func TestCrashDuringHeavyEvictionPressure(t *testing.T) {
	c := newCtrl(t, ModeSAC)
	rng := rand.New(rand.NewSource(9))
	var now sim.Time
	var err error
	written := make(map[uint64]nvm.Line)
	// Touch far more counter blocks than the cache holds.
	for i := 0; i < 4000; i++ {
		a := uint64(rng.Intn(1<<15)) * 64 * 64 % (4 << 20) &^ 63
		var l nvm.Line
		l[0] = byte(i)
		l[1] = byte(i >> 8)
		if now, err = c.WriteBlock(now, a, &l); err != nil {
			t.Fatal(err)
		}
		written[a] = l
		if i%500 == 499 {
			c.Crash()
			if _, err := c.Recover(); err != nil {
				t.Fatalf("recover at %d: %v", i, err)
			}
		}
	}
	for a, want := range written {
		got, nn, err := c.ReadBlock(now, a)
		if err != nil || got != want {
			t.Fatalf("block %#x: %v", a, err)
		}
		now = nn
	}
}

// TestDoubleCrashWithoutIntermediateWrites: recovery must be idempotent.
func TestDoubleCrash(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var l nvm.Line
	l[0] = 0xAA
	now, err := c.WriteBlock(0, 0, &l)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.Crash()
		if _, err := c.Recover(); err != nil {
			t.Fatalf("recover %d: %v", i, err)
		}
	}
	got, _, err := c.ReadBlock(now, 0)
	if err != nil || got != l {
		t.Fatalf("data lost after repeated crashes: %v", err)
	}
	if err := c.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverWithoutCrashRejected guards the API contract.
func TestRecoverWithoutCrash(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	if _, err := c.Recover(); err == nil {
		t.Fatal("Recover without Crash accepted")
	}
}

// TestFaultDuringRecovery: metadata home copies die while the controller is
// down; recovery must route around them via clones.
func TestFaultDuringRecovery(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var now sim.Time
	var err error
	var l nvm.Line
	l[0] = 0x5A
	for i := 0; i < 20; i++ {
		if now, err = c.WriteBlock(now, uint64(i)*4096, &l); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash()
	// While power is out, the home copies of several counter blocks rot.
	lay := c.Layout()
	for i := uint64(0); i < 5; i++ {
		if c.Device().Materialized(lay.NodeAddr(1, i)) {
			c.Device().CorruptLine(lay.NodeAddr(1, i))
		}
	}
	rep, err := c.Recover()
	if err != nil {
		t.Fatalf("recover with rotten home copies: %v", err)
	}
	if len(rep.FailedBlocks) != 0 {
		t.Fatalf("failed blocks: %v", rep.FailedBlocks)
	}
	for i := 0; i < 20; i++ {
		got, nn, err := c.ReadBlock(now, uint64(i)*4096)
		if err != nil || got != l {
			t.Fatalf("block %d after recovery: %v", i, err)
		}
		now = nn
	}
}

// TestUnverifiableIsStickyUntilRepair: after a total metadata loss the
// region keeps failing, while unrelated regions keep working.
func TestUnverifiableContainment(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var now sim.Time
	var err error
	var l nvm.Line
	for i := 0; i < 8; i++ {
		if now, err = c.WriteBlock(now, uint64(i)*4096, &l); err != nil {
			t.Fatal(err)
		}
	}
	now = c.FlushAll(now)
	c.mcache.DropAll()
	for _, a := range c.Layout().CopyAddrs(1, 0) {
		c.Device().CorruptLine(a)
	}
	for try := 0; try < 3; try++ {
		if _, _, err := c.ReadBlock(now, 0); !errors.Is(err, ErrUnverifiable) {
			t.Fatalf("try %d: err = %v", try, err)
		}
	}
	// Containment: the second counter block's region is untouched.
	if _, _, err := c.ReadBlock(now, 4096); err != nil {
		t.Fatalf("unrelated region affected: %v", err)
	}
	fs := c.FaultStats()
	if fs.UnverifiableNodes == 0 {
		t.Fatal("loss not accounted")
	}
}

// TestWPQAtomicityBound: SAC's deepest clone groups must always fit the
// configured WPQ, even at the minimum 8-entry queue of §3.2.1.
func TestWPQAtomicityBoundAtMinimumQueue(t *testing.T) {
	cfg := config.TestSystem()
	cfg.NVM.WPQEntries = 8 // the paper's minimum
	c, err := New(cfg, ModeSAC, []byte("k"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Time
	var l nvm.Line
	// Enough traffic to force top-level write-backs.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		a := uint64(rng.Intn(1<<16)) * 64 % (4 << 20) &^ 63
		if now, err = c.WriteBlock(now, a, &l); err != nil {
			t.Fatal(err)
		}
	}
	now = c.FlushAll(now)
	if err := c.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if got := c.WPQStats().MaxDepth; got > 8 {
		t.Fatalf("WPQ depth %d exceeded capacity", got)
	}
}
