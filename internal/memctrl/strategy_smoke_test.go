package memctrl

import (
	"fmt"
	"testing"

	"soteria/internal/config"
	"soteria/internal/nvm"
)

func TestStrategySmokeCrashRecover(t *testing.T) {
	for _, name := range Strategies() {
		t.Run(name, func(t *testing.T) {
			ctrl, err := New(config.TestSystem(), ModeSRC, []byte("k"), Options{Strategy: name})
			if err != nil {
				t.Fatal(err)
			}
			want := map[uint64]nvm.Line{}
			for i := 0; i < 300; i++ {
				addr := uint64(i%96) * 64
				var line nvm.Line
				copy(line[:], fmt.Sprintf("v%d-%d", i, addr))
				if _, err := ctrl.WriteBlock(0, addr, &line); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				want[addr] = line
			}
			if err := ctrl.Crash(); err != nil {
				t.Fatal(err)
			}
			rep, err := ctrl.Recover()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if len(rep.FailedBlocks) != 0 || len(rep.LostSlots) != 0 {
				t.Fatalf("report: %+v", rep)
			}
			for addr, w := range want {
				got, _, err := ctrl.ReadBlock(0, addr)
				if err != nil {
					t.Fatalf("read %#x: %v", addr, err)
				}
				if got != w {
					t.Fatalf("addr %#x mismatch", addr)
				}
			}
			ctrl.FlushAll(0)
			if err := ctrl.VerifyAll(); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}
