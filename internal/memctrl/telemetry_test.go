package memctrl

import (
	"bytes"
	"math/rand"
	"testing"

	"soteria/internal/config"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// runTelemetryWorkload drives a controller through a seeded mixed
// read/write workload and returns the final time.
func runTelemetryWorkload(t *testing.T, c *Controller, seed int64, ops int) sim.Time {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var now sim.Time
	var err error
	for i := 0; i < ops; i++ {
		a := uint64(rng.Intn(1<<12)) * nvm.LineSize
		if rng.Intn(2) == 0 {
			var l nvm.Line
			rng.Read(l[:8])
			now, err = c.WriteBlock(now, a, &l)
		} else {
			_, now, err = c.ReadBlock(now, a)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return now
}

// TestTelemetryMatchesStats: the counters the registry accumulates must
// agree with the legacy Stats structs they mirror — the differential
// contract that locks the wiring down.
func TestTelemetryMatchesStats(t *testing.T) {
	for _, mode := range []Mode{ModeBaseline, ModeSRC, ModeSAC} {
		t.Run(mode.String(), func(t *testing.T) {
			c, err := New(config.TestSystem(), mode, []byte("tel"), Options{})
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			c.AttachTelemetry(reg)
			// Device stats accumulate from construction (shadow-table
			// bootstrap); telemetry starts counting at attach.
			devBase := c.Device().Stats()
			runTelemetryWorkload(t, c, 42, 400)
			c.FlushAll(c.now)

			snap := reg.Snapshot()
			st := c.Stats()
			checks := map[string]uint64{
				"memctrl_mem_requests_total":      st.MemRequests,
				"memctrl_data_reads_total":        st.DataReads,
				"memctrl_data_writes_total":       st.DataWrites,
				"memctrl_cold_reads_total":        st.ColdReads,
				"memctrl_nvm_reads_total":         st.NVMReads,
				"memctrl_wpq_forwards_total":      st.WPQForwards,
				"memctrl_forced_writebacks_total": st.ForcedWB,
				"memctrl_page_reencrypts_total":   st.PageReencrypt,
			}
			for cat := WCData; cat < wcCount; cat++ {
				checks["memctrl_nvm_writes_"+cat.String()+"_total"] = st.NVMWrites[cat]
			}
			ms := c.MetaStats()
			checks["metacache_hits_total"] = ms.Hits
			checks["metacache_misses_total"] = ms.Misses
			checks["metacache_dirty_tree_evictions_total"] = ms.DirtyTreeEvictions
			ws := c.WPQStats()
			checks["wpq_inserts_total"] = ws.Inserts
			checks["wpq_coalesced_total"] = ws.Coalesced
			checks["wpq_stalls_total"] = ws.Stalls
			checks["wpq_atomic_sets_total"] = ws.AtomicSets
			ds := c.Device().Stats()
			checks["nvm_reads_total"] = ds.Reads - devBase.Reads
			checks["nvm_writes_total"] = ds.Writes - devBase.Writes
			ss := c.ShadowStats()
			checks["shadow_entry_writes_total"] = ss.EntryWrites
			checks["shadow_invalidations_total"] = ss.Invalidations
			fs := c.FaultStats()
			checks["fault_reads_total"] = fs.Reads

			for name, want := range checks {
				if got := snap.Counters[name]; got != want {
					t.Errorf("%s = %d, want %d (stats)", name, got, want)
				}
			}
			if got, want := snap.Gauges["wpq_depth_max"], int64(ws.MaxDepth); got != want {
				t.Errorf("wpq_depth_max = %d, want %d", got, want)
			}
			if snap.Counters["trace_read_block_total"] != st.DataReads {
				t.Errorf("read_block spans = %d, want %d",
					snap.Counters["trace_read_block_total"], st.DataReads)
			}
			if snap.Counters["trace_write_block_total"] != st.DataWrites {
				t.Errorf("write_block spans = %d, want %d",
					snap.Counters["trace_write_block_total"], st.DataWrites)
			}
		})
	}
}

// TestTelemetryDeterministic: two controllers with identical seeds must
// produce byte-identical telemetry JSON — the per-controller half of the
// golden-snapshot guarantee.
func TestTelemetryDeterministic(t *testing.T) {
	run := func() []byte {
		c, err := New(config.TestSystem(), ModeSRC, []byte("det"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		c.AttachTelemetry(reg)
		runTelemetryWorkload(t, c, 7, 300)
		c.FlushAll(c.now)
		data, err := reg.Snapshot().MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical seeds produced different telemetry:\n%s\n---\n%s", a, b)
	}
}

// TestTelemetryDetached: a controller with no registry (and one detached
// via AttachTelemetry(nil)) must behave identically to an attached one —
// telemetry must never perturb simulation state.
func TestTelemetryDetached(t *testing.T) {
	mk := func(attach bool) *Controller {
		c, err := New(config.TestSystem(), ModeSRC, []byte("off"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			c.AttachTelemetry(telemetry.NewRegistry())
		} else {
			c.AttachTelemetry(telemetry.NewRegistry())
			c.AttachTelemetry(nil) // detach again
		}
		return c
	}
	on, off := mk(true), mk(false)
	tOn := runTelemetryWorkload(t, on, 99, 200)
	tOff := runTelemetryWorkload(t, off, 99, 200)
	if tOn != tOff {
		t.Fatalf("telemetry changed simulated time: %d vs %d", tOn, tOff)
	}
	if on.Stats() != off.Stats() {
		t.Fatalf("telemetry changed controller stats:\n%+v\n%+v", on.Stats(), off.Stats())
	}
}

// TestTelemetrySurvivesRecovery: crash recovery swaps in a fresh shadow
// table; its activity must keep landing in the attached registry.
func TestTelemetrySurvivesRecovery(t *testing.T) {
	c, err := New(config.TestSystem(), ModeSRC, []byte("rec"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.AttachTelemetry(reg)
	runTelemetryWorkload(t, c, 5, 100)
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot().Counters["shadow_entry_writes_total"]
	runTelemetryWorkload(t, c, 6, 100)
	after := reg.Snapshot().Counters["shadow_entry_writes_total"]
	if after <= before {
		t.Fatalf("shadow telemetry dead after recovery: %d -> %d", before, after)
	}
}
