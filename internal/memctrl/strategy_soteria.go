package memctrl

import (
	"soteria/internal/itree"
	"soteria/internal/metacache"
	"soteria/internal/shadow"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// soteriaStrategy is the paper's scheme: an Anubis shadow table with one
// entry per metadata-cache way, each entry holding the tracked block's
// 16-bit counter LSBs plus a keyed content MAC, duplicated into two
// independently decodable halves (Soteria's resilience twist). Recovery
// patches stale NVM copies with the LSBs — leaf minors through Osiris
// trials against the persisted data MACs — and accepts a reconstruction
// exactly when it reproduces the entry MAC.
type soteriaStrategy struct{}

func (s *soteriaStrategy) name() string { return "soteria" }

// shadowLines: one shadow line per cache slot (the entry), plus the BMT the
// layout adds on top.
func (s *soteriaStrategy) shadowLines(cacheSlots uint64) uint64 { return cacheSlots }

// install builds the shadow table over the reserved region; those boot-time
// writes go straight to the device (bootstrap is set by the caller).
func (s *soteriaStrategy) install(c *Controller) error {
	tbl, err := shadow.NewTable(c.eng, c.shadowStore(), c.layout.ShadowBase, c.layout.ShadowEntries,
		c.layout.ShadowTreeBase, c.shadowOptions())
	if err != nil {
		return err
	}
	c.shadow = tbl
	c.shadowRoot = tbl.Root()
	return nil
}

func (s *soteriaStrategy) onDirty(c *Controller, home uint64) { c.shadowUpdate(home) }

func (s *soteriaStrategy) onClean(c *Controller, home uint64) {
	if slot := c.mcache.SlotOf(home); slot >= 0 && c.shadow != nil {
		c.invalidateSlot(slot)
	}
}

func (s *soteriaStrategy) onDrop(c *Controller, home uint64) {
	if slot := c.mcache.SlotOf(home); slot >= 0 && c.shadow != nil {
		c.invalidateSlot(slot)
	}
}

func (s *soteriaStrategy) commitLeaf(c *Controller, home uint64) error {
	c.shadowUpdate(home)
	return nil
}

// needsForce enforces the Osiris bound: the counter may not drift further
// from its NVM copy than recovery can search.
func (s *soteriaStrategy) needsForce(c *Controller, blk *metacache.Block, slot int) bool {
	return !c.eager && blk.UpdatesPerSlot[slot] >= uint32(c.osirisLimit)
}

func (s *soteriaStrategy) afterOp(c *Controller) error { return nil }

// onCrash re-captures the shadow-BMT root into its persistent register; the
// table handle itself is volatile.
func (s *soteriaStrategy) onCrash(c *Controller) {
	if c.shadow != nil {
		c.shadowRoot = c.shadow.Root()
		c.shadow = nil
	}
}

func (s *soteriaStrategy) retireSlot(c *Controller, slot int) { c.invalidateSlot(slot) }

func (s *soteriaStrategy) trackedSlots(c *Controller) []uint64 {
	if c.shadow == nil {
		return nil
	}
	return c.shadow.ValidSlots()
}

func (s *soteriaStrategy) shadowStats(c *Controller) shadow.Stats {
	if c.shadow == nil {
		return shadow.Stats{}
	}
	return c.shadow.Stats()
}

func (s *soteriaStrategy) attachTelemetry(c *Controller, r *telemetry.Registry) {
	if c.shadow != nil {
		c.shadow.AttachTelemetry(r)
	}
}

// checkpoint: the live table's volatile state, or just its absence (after a
// crash the handle is nil and the root register — serialized by the
// controller — is all that survives).
func (s *soteriaStrategy) checkpoint(c *Controller, w *sim.SnapW) {
	w.Bool(c.shadow != nil)
	if c.shadow != nil {
		c.shadow.Checkpoint(w)
	}
}

func (s *soteriaStrategy) restore(c *Controller, r *sim.SnapR) error {
	if !r.Bool() {
		c.shadow = nil
		return r.Err()
	}
	tbl, err := shadow.RestoreTable(c.eng, c.shadowStore(), c.layout.ShadowBase, c.layout.ShadowEntries,
		c.layout.ShadowTreeBase, c.shadowOptions(), r)
	if err != nil {
		return err
	}
	c.shadow = tbl
	if c.telReg != nil {
		tbl.AttachTelemetry(c.telReg)
	}
	return nil
}

// recover rebuilds a consistent, verifiable memory image after Crash():
//
//  1. Reattach the shadow table using the persistent BMT root; read every
//     entry, repairing half-dead entries from their Soteria duplicates.
//  2. Reconstruct each tracked metadata block independently: a stale NVM
//     copy (home or any clone) plus the entry's 16-bit counter LSBs; leaf
//     minors come back through Osiris trials against the persisted data
//     MACs. A reconstruction is accepted exactly when it reproduces the
//     keyed MAC captured in its shadow entry, which makes recovery
//     insensitive to the order in which a crash tore parent and child
//     write-backs.
//  3. Reseed and flush (reseedRecovered). At every instant each tracked
//     block is described by at least one durable entry, and entries for
//     the same block only coexist while content-identical, so a crash
//     *during* recovery loses nothing: the next Recover starts over.
//  4. Finally clear whatever slots remain valid (unreconstructible blocks,
//     already counted as lost).
func (s *soteriaStrategy) recover(c *Controller) (*RecoveryReport, error) {
	root := c.shadowRoot
	if c.shadow != nil {
		// A previous Recover attempt was interrupted after installing the
		// table; its root is the current one.
		root = c.shadow.Root()
		c.shadow = nil
	}
	tbl, err := shadow.Attach(c.eng, c.shadowStore(), c.layout.ShadowBase, c.layout.ShadowEntries,
		c.layout.ShadowTreeBase, root, c.shadowOptions())
	if err != nil {
		return nil, err
	}
	// Install immediately: every shadow mutation from here on lands in the
	// live table, so a nested crash re-captures a root that matches NVM.
	c.shadow = tbl
	if c.telReg != nil {
		tbl.AttachTelemetry(c.telReg)
	}

	slotEntries, lostSlots := tbl.LoadAllSlots()
	rep := &RecoveryReport{TrackedEntries: len(slotEntries), LostSlots: lostSlots, HalfRepairs: tbl.Stats().HalfRepairs}
	c.stats.RecoveryLost += uint64(len(lostSlots))
	c.tel.recoveryLost.Add(uint64(len(lostSlots)))
	c.note("recover-load-done")

	// Reconstruct every tracked block. Entries are self-contained (the
	// entry MAC is the acceptance test), so no ordering between levels is
	// needed. Duplicate entries for the same block are a legal artifact of
	// crashing an earlier recovery between re-tracking and slot cleanup,
	// and the copies can disagree: the fresher one has absorbed the
	// parent-counter bumps of that recovery's flush. Every entry is tried,
	// and when several reconstruct, the one with the largest counters wins
	// — counters only ever grow, so picking a smaller reconstruction would
	// roll the block (and, silently, its already-flushed children) back.
	recovered := make(map[uint64]metacache.Block)
	failReason := make(map[uint64]string)
	slotsOf := make(map[uint64][]uint64)
	for _, se := range slotEntries {
		e := se.Entry
		loc := c.layout.Locate(e.Addr)
		if loc.Kind != itree.RegionMetadata {
			rep.FailedBlocks = append(rep.FailedBlocks,
				FailedBlock{Addr: e.Addr, Reason: "shadow entry outside the metadata region"})
			c.stats.RecoveryLost++
			c.tel.recoveryLost.Inc()
			continue
		}
		slotsOf[e.Addr] = append(slotsOf[e.Addr], se.Slot)
		blk, err := c.recoverBlock(loc.Level, loc.Index, e)
		if err != nil {
			if _, seen := failReason[e.Addr]; !seen {
				failReason[e.Addr] = err.Error()
			}
			continue
		}
		if prev, dup := recovered[e.Addr]; !dup || counterTotal(&blk) > counterTotal(&prev) {
			recovered[e.Addr] = blk
		}
	}
	reported := make(map[uint64]bool)
	for _, se := range slotEntries {
		addr := se.Entry.Addr
		if c.layout.Locate(addr).Kind != itree.RegionMetadata {
			continue
		}
		if _, ok := recovered[addr]; ok || reported[addr] {
			continue
		}
		reported[addr] = true
		rep.FailedBlocks = append(rep.FailedBlocks, FailedBlock{Addr: addr, Reason: failReason[addr]})
		c.stats.RecoveryLost++
		c.tel.recoveryLost.Inc()
	}
	rep.RecoveredBlocks = len(recovered)
	c.stats.RecoveredOK += uint64(len(recovered))
	c.tel.recoveredOK.Add(uint64(len(recovered)))

	// Fresh volatile state: seed the cache with the reconstructed blocks
	// as dirty — which writes their entries at their new slots — and flush
	// through the ordinary write-back path. The shadow table has one slot
	// per cache way and the tracked blocks were simultaneously resident
	// before the crash, so reinsertion cannot evict.
	c.reseedRecovered(recovered, slotsOf)

	// Cleanup: the flush untracked the re-seeded blocks; what remains
	// valid is stale pre-crash entries at old slots (the blocks moved
	// ways) plus anything the flush had to abandon.
	if err := c.wipeSlots(tbl.Reset, tbl.ValidSlots(), lostSlots); err != nil {
		return rep, err
	}
	c.note("recover-done")
	return rep, nil
}
