package memctrl

import (
	"errors"
	"math/rand"
	"testing"

	"soteria/internal/config"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

func newCtrl(t testing.TB, mode Mode) *Controller {
	t.Helper()
	c, err := New(config.TestSystem(), mode, []byte("test-key"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func allModes() []Mode {
	return []Mode{ModeNonSecure, ModeBaseline, ModeSRC, ModeSAC}
}

func fill(seed int64, n int) []nvm.Line {
	rng := rand.New(rand.NewSource(seed))
	out := make([]nvm.Line, n)
	for i := range out {
		rng.Read(out[i][:])
	}
	return out
}

func TestReadWriteRoundTripAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCtrl(t, mode)
			lines := fill(1, 100)
			var now sim.Time
			var err error
			for i, l := range lines {
				addr := uint64(i) * 4096 // spread across counter blocks
				if now, err = c.WriteBlock(now, addr, &l); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			for i, l := range lines {
				addr := uint64(i) * 4096
				got, nn, err := c.ReadBlock(now, addr)
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if got != l {
					t.Fatalf("block %d mismatch", i)
				}
				now = nn
			}
			if now <= 0 {
				t.Fatal("no simulated time elapsed")
			}
		})
	}
}

func TestColdReadReturnsZeros(t *testing.T) {
	for _, mode := range allModes() {
		c := newCtrl(t, mode)
		got, _, err := c.ReadBlock(0, 12345*64)
		if err != nil {
			t.Fatalf("%v: cold read: %v", mode, err)
		}
		if got != (nvm.Line{}) {
			t.Fatalf("%v: cold read not zero", mode)
		}
	}
}

func TestDataIsEncryptedAtRest(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var pt nvm.Line
	copy(pt[:], "extremely secret persistent data! it must never hit the array.")
	if _, err := c.WriteBlock(0, 0, &pt); err != nil {
		t.Fatal(err)
	}
	raw := c.Device().ReadRaw(0)
	if raw == pt {
		t.Fatal("plaintext stored in NVM")
	}
	var zero nvm.Line
	if raw == zero {
		t.Fatal("nothing stored in NVM")
	}
}

func TestOverwriteChangesCiphertext(t *testing.T) {
	// Counter-mode freshness: writing the same plaintext twice must
	// produce different ciphertexts (the counter advanced).
	c := newCtrl(t, ModeBaseline)
	var pt nvm.Line
	pt[0] = 0x55
	_, err := c.WriteBlock(0, 64, &pt)
	if err != nil {
		t.Fatal(err)
	}
	ct1 := c.Device().ReadRaw(64)
	if _, err = c.WriteBlock(0, 64, &pt); err != nil {
		t.Fatal(err)
	}
	ct2 := c.Device().ReadRaw(64)
	if ct1 == ct2 {
		t.Fatal("same pad reused for consecutive writes (counter not advancing)")
	}
}

func TestCiphertextTamperDetected(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var pt nvm.Line
	pt[3] = 9
	now, err := c.WriteBlock(0, 128, &pt)
	if err != nil {
		t.Fatal(err)
	}
	// Under Chipkill a single flipped bit would be corrected; flip one
	// symbol in two chips so ECC passes the corruption through...
	// actually two chips is uncorrectable. Tamper = attacker rewrites
	// the line (with internally consistent ECC), so model it as a raw
	// overwrite through the device API.
	raw := c.Device().ReadRaw(128)
	raw[3] ^= 0x01
	l := raw
	c.Device().Write(128, &l)
	_, _, err = c.ReadBlock(now, 128)
	if !errors.Is(err, ErrMACMismatch) {
		t.Fatalf("tampered ciphertext read err = %v, want MAC mismatch", err)
	}
}

func TestDataReplayDetected(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var v1, v2 nvm.Line
	v1[0], v2[0] = 1, 2
	now, err := c.WriteBlock(0, 256, &v1)
	if err != nil {
		t.Fatal(err)
	}
	// Capture old ciphertext AND old MAC line (the strongest replay).
	oldCT := c.Device().ReadRaw(256)
	macAddr, _ := c.Layout().DataMACAddr(256 / 64)
	oldMAC := c.Device().ReadRaw(macAddr)

	if now, err = c.WriteBlock(now, 256, &v2); err != nil {
		t.Fatal(err)
	}
	// Evict metadata so the controller re-reads... the counter is what
	// defeats the replay, and it lives in the (trusted) cache or the
	// tree; either way the MAC recomputation uses the *current* counter.
	ct, mac := oldCT, oldMAC
	c.Device().Write(256, &ct)
	c.Device().Write(macAddr, &mac)
	_, _, err = c.ReadBlock(now, 256)
	if !errors.Is(err, ErrMACMismatch) {
		t.Fatalf("replayed data read err = %v, want MAC mismatch", err)
	}
}

func TestFlushAllThenVerifyAll(t *testing.T) {
	for _, mode := range []Mode{ModeBaseline, ModeSRC, ModeSAC} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCtrl(t, mode)
			lines := fill(2, 300)
			var now sim.Time
			var err error
			rng := rand.New(rand.NewSource(7))
			for i, l := range lines {
				addr := (uint64(rng.Intn(1 << 14))) * 64 // 1MB region, collisions OK
				if now, err = c.WriteBlock(now, addr, &l); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			now = c.FlushAll(now)
			if err := c.VerifyAll(); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}

func TestEvictionsHappenAndAreMostlyLeafLevel(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var now sim.Time
	var err error
	var l nvm.Line
	// Touch many distinct counter blocks (stride = 64 blocks * 64 B)
	// to overflow the tiny test metadata cache.
	for i := 0; i < 2000; i++ {
		addr := (uint64(i) * 4096) % (4 << 20)
		l[0] = byte(i)
		if now, err = c.WriteBlock(now, addr, &l); err != nil {
			t.Fatal(err)
		}
	}
	ms := c.MetaStats()
	if ms.DirtyTreeEvictions == 0 {
		t.Fatal("no metadata evictions despite thrashing")
	}
	leaf := ms.EvictionsByLevel.Count(1)
	total := ms.EvictionsByLevel.Total()
	if float64(leaf)/float64(total) < 0.5 {
		t.Fatalf("leaf evictions only %d of %d; lazy update should bias leaves", leaf, total)
	}
	// Upper levels must be rarer than lower levels overall (Fig 4).
	if top := ms.EvictionsByLevel.Count(c.Layout().TopLevel()); top > leaf {
		t.Fatalf("top-level evictions (%d) exceed leaf (%d)", top, leaf)
	}
}

func TestSRCWritesMoreThanBaselineSACMost(t *testing.T) {
	run := func(mode Mode) Stats {
		c := newCtrl(t, mode)
		var now sim.Time
		var err error
		var l nvm.Line
		for i := 0; i < 3000; i++ {
			addr := (uint64(i) * 4096) % (4 << 20)
			if now, err = c.WriteBlock(now, addr, &l); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	base := run(ModeBaseline)
	src := run(ModeSRC)
	sac := run(ModeSAC)
	if base.NVMWrites[WCClone] != 0 {
		t.Fatal("baseline produced clone writes")
	}
	if src.NVMWrites[WCClone] == 0 {
		t.Fatal("SRC produced no clone writes despite evictions")
	}
	if sac.NVMWrites[WCClone] < src.NVMWrites[WCClone] {
		t.Fatalf("SAC clones (%d) < SRC clones (%d)", sac.NVMWrites[WCClone], src.NVMWrites[WCClone])
	}
	if src.TotalNVMWrites() <= base.TotalNVMWrites() {
		t.Fatal("SRC total writes not above baseline")
	}
}

func TestMetadataFaultRepairedFromClone(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var l nvm.Line
	l[0] = 0xAB
	now, err := c.WriteBlock(0, 0, &l)
	if err != nil {
		t.Fatal(err)
	}
	now = c.FlushAll(now)
	// Drop the cached copy so the next access re-reads NVM.
	c.mcache.DropAll()
	// Kill the home copy of counter block 0.
	c.Device().CorruptLine(c.Layout().NodeAddr(1, 0))
	got, _, err := c.ReadBlock(now, 0)
	if err != nil {
		t.Fatalf("read after metadata fault: %v", err)
	}
	if got != l {
		t.Fatal("wrong data after clone repair")
	}
	if c.FaultStats().Repairs != 1 {
		t.Fatalf("repairs = %d, want 1", c.FaultStats().Repairs)
	}
	// Home copy purified.
	if r := c.Device().Read(c.Layout().NodeAddr(1, 0)); r.Uncorrectable {
		t.Fatal("home copy not purified")
	}
}

func TestBaselineMetadataFaultIsUnverifiable(t *testing.T) {
	c := newCtrl(t, ModeBaseline)
	var l nvm.Line
	now, err := c.WriteBlock(0, 0, &l)
	if err != nil {
		t.Fatal(err)
	}
	now = c.FlushAll(now)
	c.mcache.DropAll()
	c.Device().CorruptLine(c.Layout().NodeAddr(1, 0))
	_, _, err = c.ReadBlock(now, 0)
	if !errors.Is(err, ErrUnverifiable) {
		t.Fatalf("err = %v, want unverifiable", err)
	}
	fs := c.FaultStats()
	if fs.UnverifiableBytes != 64*64 {
		t.Fatalf("unverifiable bytes = %d, want 4096 (one counter block's coverage)", fs.UnverifiableBytes)
	}
	if fs.UDR(c.Layout().DataBytes) <= 0 {
		t.Fatal("UDR not recorded")
	}
}

func TestUpperLevelFaultLosesMoreCoverage(t *testing.T) {
	c := newCtrl(t, ModeBaseline)
	var l nvm.Line
	now, err := c.WriteBlock(0, 0, &l)
	if err != nil {
		t.Fatal(err)
	}
	now = c.FlushAll(now)
	c.mcache.DropAll()
	// Kill an L2 node: 8x the coverage of a counter block.
	c.Device().CorruptLine(c.Layout().NodeAddr(2, 0))
	if _, _, err = c.ReadBlock(now, 0); !errors.Is(err, ErrUnverifiable) {
		t.Fatalf("err = %v", err)
	}
	if got := c.FaultStats().UnverifiableBytes; got != 8*64*64 {
		t.Fatalf("L2 loss = %d bytes, want %d", got, 8*64*64)
	}
}

func TestCrashRecoveryPreservesData(t *testing.T) {
	for _, mode := range []Mode{ModeBaseline, ModeSRC, ModeSAC} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCtrl(t, mode)
			lines := fill(3, 200)
			var now sim.Time
			var err error
			for i, l := range lines {
				addr := uint64(i) * 4096
				if now, err = c.WriteBlock(now, addr, &l); err != nil {
					t.Fatal(err)
				}
			}
			// Crash with plenty of dirty metadata in the cache.
			if len(c.mcache.DirtyEntries()) == 0 {
				t.Fatal("test wants dirty state at crash")
			}
			c.Crash()
			if _, _, err := c.ReadBlock(now, 0); !errors.Is(err, ErrCrashed) {
				t.Fatal("controller served reads while crashed")
			}
			rep, err := c.Recover()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if rep.RecoveredBlocks == 0 {
				t.Fatal("recovery reconstructed nothing despite dirty state")
			}
			if len(rep.FailedBlocks) != 0 || len(rep.LostSlots) != 0 {
				t.Fatalf("recovery losses: %+v", rep)
			}
			if err := c.VerifyAll(); err != nil {
				t.Fatalf("post-recovery verify: %v", err)
			}
			for i, l := range lines {
				got, nn, err := c.ReadBlock(now, uint64(i)*4096)
				if err != nil {
					t.Fatalf("post-recovery read %d: %v", i, err)
				}
				if got != l {
					t.Fatalf("post-recovery data mismatch at %d", i)
				}
				now = nn
			}
		})
	}
}

func TestCrashRecoveryWithShadowFaultSoteriaVsBaseline(t *testing.T) {
	prepare := func(mode Mode) (*Controller, sim.Time) {
		c := newCtrl(t, mode)
		var now sim.Time
		var err error
		var l nvm.Line
		l[0] = 0x77
		if now, err = c.WriteBlock(now, 0, &l); err != nil {
			t.Fatal(err)
		}
		c.Crash()
		// Find the shadow slot tracking counter block 0 and kill one
		// codeword in it.
		for s := uint64(0); s < c.Layout().ShadowEntries; s++ {
			addr := c.Layout().ShadowEntryAddr(s)
			raw := c.Device().ReadRaw(addr)
			if raw != (nvm.Line{}) {
				// Candidate valid entry: corrupt word 1 (first half).
				c.Device().CorruptWord(addr, 1)
			}
		}
		return c, now
	}

	// Soteria (duplicated halves): recovery survives.
	c, _ := prepare(ModeSRC)
	rep, err := c.Recover()
	if err != nil {
		t.Fatalf("SRC recover: %v", err)
	}
	if len(rep.LostSlots) != 0 || rep.HalfRepairs == 0 {
		t.Fatalf("SRC should half-repair: %+v", rep)
	}
	if err := c.VerifyAll(); err != nil {
		t.Fatal(err)
	}

	// Anubis baseline (single copy): the entry is lost.
	c, _ = prepare(ModeBaseline)
	rep, err = c.Recover()
	if err != nil {
		t.Fatalf("baseline recover: %v", err)
	}
	if len(rep.LostSlots) == 0 {
		t.Fatal("baseline recovery should lose the corrupted shadow entry")
	}
}

func TestPageReencryptionOnMinorOverflow(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var now sim.Time
	var err error
	other := nvm.Line{1: 0xEE}
	// Populate a sibling block in the same page so re-encryption has
	// real work to do.
	if now, err = c.WriteBlock(now, 64, &other); err != nil {
		t.Fatal(err)
	}
	var l nvm.Line
	for i := 0; i <= 63; i++ { // 64 writes: minor 0 -> 63 -> overflow
		l[0] = byte(i)
		if now, err = c.WriteBlock(now, 0, &l); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if c.Stats().PageReencrypt != 1 {
		t.Fatalf("page re-encryptions = %d, want 1", c.Stats().PageReencrypt)
	}
	// Both blocks still read back correctly.
	got, now, err := c.ReadBlock(now, 0)
	if err != nil || got != l {
		t.Fatalf("block 0 after re-encryption: %v", err)
	}
	got, _, err = c.ReadBlock(now, 64)
	if err != nil || got != other {
		t.Fatalf("sibling after re-encryption: %v", err)
	}
	now = c.FlushAll(now)
	if err := c.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestOsirisBoundForcesWriteback(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var now sim.Time
	var err error
	var l nvm.Line
	for i := 0; i < defaultOsirisLimit+2; i++ {
		if now, err = c.WriteBlock(now, 0, &l); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().ForcedWB == 0 {
		t.Fatal("Osiris bound never forced a write-back")
	}
}

func TestCrashRecoveryAfterManyUpdatesWithinOsirisBound(t *testing.T) {
	// Several in-cache updates to multiple slots, then crash: Osiris
	// must recover every minor by data-MAC trials.
	c := newCtrl(t, ModeSRC)
	var now sim.Time
	var err error
	lines := fill(4, 5)
	for round := 0; round < 3; round++ {
		for i := range lines {
			lines[i][0] = byte(round*10 + i)
			if now, err = c.WriteBlock(now, uint64(i)*64, &lines[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := range lines {
		got, nn, err := c.ReadBlock(now, uint64(i)*64)
		if err != nil || got != lines[i] {
			t.Fatalf("block %d after recovery: %v", i, err)
		}
		now = nn
	}
	if err := c.VerifyAll(); err == nil {
		// VerifyAll requires a flushed cache; flush then verify.
	}
	c.FlushAll(now)
	if err := c.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNonSecureUncorrectableSurfaces(t *testing.T) {
	c := newCtrl(t, ModeNonSecure)
	var l nvm.Line
	now, err := c.WriteBlock(0, 0, &l)
	if err != nil {
		t.Fatal(err)
	}
	c.Device().CorruptWord(0, 0)
	if _, _, err := c.ReadBlock(now, 0); !errors.Is(err, ErrDataError) {
		t.Fatalf("err = %v, want data error", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	var l nvm.Line
	now, err := c.WriteBlock(0, 0, &l)
	if err != nil {
		t.Fatal(err)
	}
	if _, now, err = c.ReadBlock(now, 0); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.MemRequests != 2 || s.DataReads != 1 || s.DataWrites != 1 {
		t.Fatalf("request accounting: %+v", s)
	}
	if s.NVMWrites[WCData] != 1 {
		t.Fatalf("data writes = %d", s.NVMWrites[WCData])
	}
	if s.NVMWrites[WCDataMAC] == 0 || s.NVMWrites[WCShadow] == 0 {
		t.Fatalf("MAC/shadow writes missing: %+v", s.NVMWrites)
	}
	c.ResetStats()
	if c.Stats().MemRequests != 0 {
		t.Fatal("reset failed")
	}
	_ = now
}

func TestRejectsBadAddresses(t *testing.T) {
	c := newCtrl(t, ModeSRC)
	if _, _, err := c.ReadBlock(0, 3); err == nil {
		t.Fatal("unaligned read accepted")
	}
	if _, err := c.WriteBlock(0, c.cfg.NVM.CapacityBytes, &nvm.Line{}); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}
