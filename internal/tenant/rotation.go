package tenant

import (
	"fmt"

	"soteria/internal/ctrenc"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// RotationStatus reports the progress of a tenant's key rotation.
type RotationStatus struct {
	// Rotating is true while lines may still be sealed under Epoch-1.
	Rotating bool
	// Epoch is the current key-domain epoch.
	Epoch uint32
	// Cursor is the sweep position (lines [0, Cursor) are guaranteed
	// current-epoch). Volatile: restarts at zero after a crash.
	Cursor uint64
	// DataLines is the extent size, for progress reporting.
	DataLines uint64
}

// Done reports sweep completion.
func (st RotationStatus) Done() bool { return !st.Rotating }

// Rotate begins an online key rotation for tenant id: the epoch advances
// and the Rotating flag is set in ONE persisted record write — the
// crash-atomic transition — before any line is sealed under the new
// epoch. From that point reads accept (and lazily rewrite) lines under
// either epoch, new writes seal under the new epoch, and RotateStep
// sweeps the stragglers. A crash anywhere in between recovers into the
// same rotating state and simply resumes.
func (s *Service) Rotate(id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.lookup(id)
	if err != nil {
		return err
	}
	if ts.rec.Rotating {
		return ErrRotating
	}
	ts.rec.Epoch++
	ts.rec.Rotating = true
	ts.rotCursor = 0
	if err := s.persistRecord(ts); err != nil {
		ts.rec.Epoch--
		ts.rec.Rotating = false
		return err
	}
	return nil
}

// RotateStep advances tenant id's rotation sweep by up to maxLines lines,
// re-encrypting any line still sealed under the previous epoch. It
// returns the number of lines actually rewritten and whether the rotation
// completed. Completion (clearing Rotating, retiring the old epoch's
// keys) is again a single persisted record write.
//
// The sweep is idempotent: a line already under the current epoch is
// skipped, so restarting from cursor zero after a crash redoes no
// cryptographic work beyond re-reading. Sweep operations bypass quota
// admission — rotation is service work, not tenant traffic.
func (s *Service) RotateStep(id uint32, maxLines int) (rotated int, done bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.lookup(id)
	if err != nil {
		return 0, false, err
	}
	if !ts.rec.Rotating {
		return 0, true, ErrNotRotating
	}
	if maxLines <= 0 {
		maxLines = 1
	}
	for i := 0; i < maxLines && ts.rotCursor < ts.rec.DataLines; i++ {
		_, _, rot, err := s.readLine(ts, ts.rotCursor, true)
		if err != nil {
			return rotated, false, err
		}
		if rot {
			rotated++
		}
		ts.rotCursor++
	}
	if ts.rotCursor < ts.rec.DataLines {
		return rotated, false, nil
	}
	// Sweep complete: every line is current-epoch (or never written).
	// Persist the completion, then drop the old epoch's engine — its key
	// domain is dead from here on, so a read of old-epoch ciphertext now
	// fails integrity like any other foreign data.
	ts.rec.Rotating = false
	if err := s.persistRecord(ts); err != nil {
		ts.rec.Rotating = true
		return rotated, false, err
	}
	delete(s.engines, uint64(ts.rec.ID)<<32|uint64(ts.rec.Epoch-1))
	return rotated, true, nil
}

// RotateStatus reports tenant id's rotation progress.
func (s *Service) RotateStatus(id uint32) (RotationStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.lookup(id)
	if err != nil {
		return RotationStatus{}, err
	}
	return RotationStatus{
		Rotating:  ts.rec.Rotating,
		Epoch:     ts.rec.Epoch,
		Cursor:    ts.rotCursor,
		DataLines: ts.rec.DataLines,
	}, nil
}

// VerifyTenant authenticates every written line of tenant id under its
// admissible epochs — the tenant-layer analogue of the device's
// VerifyAll. Quota admission is bypassed; no lazy rewrites happen.
func (s *Service) VerifyTenant(id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.lookup(id)
	if err != nil {
		return err
	}
	for line := uint64(0); line < ts.rec.DataLines; line++ {
		if _, _, _, err := s.readLine(ts, line, false); err != nil {
			return err
		}
	}
	return nil
}

// CrossCheck attempts to open victim's line addr under attacker's key
// domain, bypassing the namespace confinement that normally makes the
// attempt impossible to even express. It returns nil when isolation HELD
// (the open failed with an integrity error) and a descriptive error when
// anything else happened — the oracle the chaos tenants leg runs at every
// crash point.
func (s *Service) CrossCheck(attacker, victim uint32, addr uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	att, err := s.lookup(attacker)
	if err != nil {
		return err
	}
	vic, err := s.lookup(victim)
	if err != nil {
		return err
	}
	line := addr / nvm.LineSize
	if line >= vic.rec.DataLines {
		return &RangeError{Tenant: victim, Addr: addr, Lines: vic.rec.DataLines}
	}
	gLine, gOff := vic.rec.guardLine(line)
	var lat sim.Time
	gl, err := s.guardLineRef(gLine, &lat)
	if err != nil {
		return err
	}
	ge := getGuardEntry(gl, gOff)
	if !ge.written() {
		// Nothing stored, nothing to steal.
		return nil
	}
	// Try every (attacker epoch, guard entry) combination the attacker's
	// read path would — each entry names its physical slot by counter
	// parity — and each must fail to authenticate.
	epochs := []uint32{att.rec.Epoch}
	if att.rec.Rotating && att.rec.Epoch > 1 {
		epochs = append(epochs, att.rec.Epoch-1)
	}
	for _, e := range epochs {
		eng := s.dataEngine(att.rec.ID, e)
		for _, slot := range [2]struct {
			mac uint64
			ctr uint32
			gen uint32
		}{{ge.curMAC, ge.curCtr, ge.curGen}, {ge.prevMAC, ge.prevCtr, ge.prevGen}} {
			if slot.ctr == 0 {
				continue
			}
			data, _, err := s.eng.Read(vic.rec.dataLine(line, slot.ctr) * nvm.LineSize)
			if err != nil {
				return err
			}
			if eng.MAC(ctrenc.DomainTenant, line, ctrWord(e, slot.gen, slot.ctr), data[:]) == slot.mac {
				return &isolationBreach{attacker: attacker, victim: victim, line: line, epoch: e}
			}
		}
	}
	return nil
}

// isolationBreach is CrossCheck's failure: a foreign line authenticated
// under the attacker's keys. It should be unconstructible.
type isolationBreach struct {
	attacker, victim uint32
	line             uint64
	epoch            uint32
}

func (e *isolationBreach) Error() string {
	return fmt.Sprintf("tenant isolation breach: tenant %d authenticated tenant %d line %d under epoch %d",
		e.attacker, e.victim, e.line, e.epoch)
}
