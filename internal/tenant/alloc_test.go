package tenant_test

import (
	"testing"

	"soteria/internal/nvm"
	"soteria/internal/tenant"
)

// TestSingleTenantSteadyStateZeroAllocs pins the warm single-tenant
// read+write path — admission, guard cache hit, seal, two engine
// synchronous ops — at zero heap allocations per operation. The first
// pass over the working set warms the guard cache and the key-domain
// engine; what remains is the pure datapath running out of service-owned
// scratch, through the engine's trySync fast path.
func TestSingleTenantSteadyStateZeroAllocs(t *testing.T) {
	_, svc := newService(t, 4, tenant.Options{})
	const lines = 64
	if _, err := svc.Provision(1, lines, 0); err != nil {
		t.Fatal(err)
	}
	var l nvm.Line
	for i := uint64(0); i < lines; i++ {
		if _, err := svc.Write(1, i*nvm.LineSize, &l); err != nil {
			t.Fatal(err)
		}
	}
	i := uint64(0)
	avg := testing.AllocsPerRun(512, func() {
		addr := (i % lines) * nvm.LineSize
		if _, err := svc.Write(1, addr, &l); err != nil {
			t.Fatal(err)
		}
		if _, _, err := svc.Read(1, addr); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state tenant read+write allocates %.2f objects/op, want 0", avg)
	}
}
