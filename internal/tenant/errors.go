package tenant

import (
	"errors"
	"fmt"
)

// Sentinel errors of the tenant layer. The concrete errors below carry
// detail but match these sentinels through errors.Is, so callers (and the
// devnet status mapping) can branch without type assertions.
var (
	// ErrQuota: the tenant exhausted its hard operation budget for the
	// current quota window. The concrete error is a *QuotaError. Unlike
	// BusyError backpressure this is NOT retryable: the budget does not
	// refill until the window rolls, so a tight retry loop only burns its
	// budget (see devnet.ClassQuota).
	ErrQuota = errors.New("tenant: operation quota exhausted")
	// ErrAuth: the presented tenant token does not authenticate the
	// tenant, or the session is not bound to the tenant it addressed.
	ErrAuth = errors.New("tenant: authentication failed")
	// ErrIntegrity: no (key epoch, guard MAC) combination authenticates
	// the stored line — the typed failure a cross-tenant or cross-epoch
	// read attempt must produce. The concrete error is an *IntegrityError.
	ErrIntegrity = errors.New("tenant: line failed MAC verification")
	// ErrNoSuchTenant: the tenant id is not provisioned.
	ErrNoSuchTenant = errors.New("tenant: no such tenant")
	// ErrExists: the tenant id is already provisioned.
	ErrExists = errors.New("tenant: already provisioned")
	// ErrRotating: the operation cannot start while a rotation is already
	// in progress for the tenant.
	ErrRotating = errors.New("tenant: key rotation already in progress")
	// ErrNotRotating: RotateStep on a tenant with no rotation in progress.
	ErrNotRotating = errors.New("tenant: no key rotation in progress")
)

// QuotaError is the hard admission rejection: the tenant used its whole
// per-window operation budget. Distinct from device.BusyError (fair-share
// backpressure, retryable) by construction and by wire status.
type QuotaError struct {
	// Tenant is the rejected tenant id.
	Tenant uint32
	// Used is the number of operations admitted in the current window.
	Used uint32
	// Budget is the tenant's per-window operation budget.
	Budget uint32
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %d: quota exhausted (%d/%d ops this window)", e.Tenant, e.Used, e.Budget)
}

// Is matches ErrQuota.
func (e *QuotaError) Is(target error) bool { return target == ErrQuota }

// AuthError reports a failed tenant authentication.
type AuthError struct {
	Tenant uint32
}

func (e *AuthError) Error() string {
	return fmt.Sprintf("tenant %d: authentication failed", e.Tenant)
}

// Is matches ErrAuth.
func (e *AuthError) Is(target error) bool { return target == ErrAuth }

// IntegrityError reports that a tenant-layer line failed authentication
// under every admissible (epoch, guard MAC) combination. It is what a
// cross-tenant read attempt observes: foreign ciphertext never verifies
// under the attacker's key domain.
type IntegrityError struct {
	// Tenant is the key domain the open was attempted under.
	Tenant uint32
	// Line is the tenant-local line index.
	Line uint64
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("tenant %d: line %d failed MAC verification", e.Tenant, e.Line)
}

// Is matches ErrIntegrity.
func (e *IntegrityError) Is(target error) bool { return target == ErrIntegrity }

// RangeError reports a tenant-local address outside the tenant's extent —
// the namespace-confinement barrier that makes one tenant's addresses
// unable to even name another tenant's lines.
type RangeError struct {
	Tenant uint32
	// Addr is the offending tenant-local byte address.
	Addr uint64
	// Lines is the tenant's extent size in 64-byte lines.
	Lines uint64
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("tenant %d: address %#x beyond extent of %d lines", e.Tenant, e.Addr, e.Lines)
}
