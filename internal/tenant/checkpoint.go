package tenant

import (
	"fmt"

	"soteria/internal/ctrenc"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// tenantCkptVersion is bumped on any change to the checkpoint layout.
const tenantCkptVersion = 1

// Checkpoint serializes the whole service — identity, the registry image,
// the volatile quota/rotation bookkeeping the registry does not persist,
// and a full engine checkpoint — as one sealed snapshot. Restore on an
// identically configured service is byte-identical: Restore(Checkpoint())
// followed by Checkpoint() returns the same bytes. The registry records
// are carried in the snapshot (not re-read from the restored device)
// precisely to keep that identity: reloading them through the engine
// would advance the device clocks. Key-domain engines and the guard cache
// are pure caches and excluded; per-tenant telemetry restarts.
func (s *Service) Checkpoint() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := &sim.SnapW{}
	// Identity.
	w.U32(uint32(s.opts.MaxTenants))
	w.U32(uint32(s.opts.QuotaWindow))
	w.U32(uint32(s.opts.FairBurst))
	w.U64(s.keyCheck())
	// Registry image + volatile service state.
	w.U64(s.sb.nextFree)
	w.U32(s.sb.gen)
	w.U64(s.opClock)
	var count uint32
	for _, ts := range s.recs {
		if ts != nil {
			count++
		}
	}
	w.U32(count)
	for _, ts := range s.recs {
		if ts == nil {
			continue
		}
		enc := ts.rec.encode()
		w.Bytes(enc[:])
		w.U64(ts.windowID)
		w.U32(ts.usedOps)
		w.U64(ts.rotCursor)
	}
	// The device underneath (which holds the persistent registry, guard
	// tables and ciphertext).
	eng, err := s.eng.Checkpoint()
	if err != nil {
		return nil, err
	}
	w.Bytes(eng)
	return sim.Seal(sim.SnapKindTenant, tenantCkptVersion, w.Data()), nil
}

// Restore replaces the service's entire state with a checkpoint taken
// from an identically configured service: the engine is restored first,
// then the registry and volatile per-tenant state are rebuilt from the
// snapshot's own registry image. On a decode or identity error nothing is
// touched; if the engine restore fails after decoding succeeded, the
// engine's own guarantees apply.
func (s *Service) Restore(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload, err := sim.Open(sim.SnapKindTenant, tenantCkptVersion, data)
	if err != nil {
		return err
	}
	r := sim.NewSnapR(payload)
	if n := int(r.U32()); r.Err() == nil && n != s.opts.MaxTenants {
		return fmt.Errorf("tenant: checkpoint for %d tenants, service has %d", n, s.opts.MaxTenants)
	}
	if n := int(r.U32()); r.Err() == nil && n != s.opts.QuotaWindow {
		return fmt.Errorf("tenant: checkpoint quota window %d, service has %d", n, s.opts.QuotaWindow)
	}
	if n := int(r.U32()); r.Err() == nil && n != s.opts.FairBurst {
		return fmt.Errorf("tenant: checkpoint fair burst %d, service has %d", n, s.opts.FairBurst)
	}
	if k := r.U64(); r.Err() == nil && k != s.keyCheck() {
		return fmt.Errorf("tenant: checkpoint sealed under a different master key")
	}
	nextFree := r.U64()
	gen := r.U32()
	opClock := r.U64()
	type staged struct {
		rec      Record
		windowID uint64
		usedOps  uint32
		cursor   uint64
	}
	count := r.U32()
	if r.Err() == nil && int(count) > s.opts.MaxTenants {
		return fmt.Errorf("tenant: checkpoint names %d tenants, max is %d", count, s.opts.MaxTenants)
	}
	stages := make([]staged, 0, count)
	for i := uint32(0); i < count && r.Err() == nil; i++ {
		raw := r.Bytes()
		if r.Err() != nil {
			break
		}
		if len(raw) != nvm.LineSize {
			return fmt.Errorf("tenant: checkpoint record %d is %d bytes", i, len(raw))
		}
		var l nvm.Line
		copy(l[:], raw)
		rec, err := decodeRecord(&l)
		if err != nil {
			return err
		}
		if rec.ID == 0 || int(rec.ID) > s.opts.MaxTenants {
			return fmt.Errorf("tenant: checkpoint record names tenant %d", rec.ID)
		}
		if rec.AuthCheck != s.token(rec.ID) {
			return fmt.Errorf("tenant: checkpoint record %d token does not derive from the master key", rec.ID)
		}
		stages = append(stages, staged{rec: rec, windowID: r.U64(), usedOps: r.U32(), cursor: r.U64()})
	}
	engCkpt := r.Bytes()
	if err := r.Done(); err != nil {
		return err
	}
	if err := s.eng.Restore(engCkpt); err != nil {
		return err
	}
	// Engine state is now the checkpointed image; rebuild the in-memory
	// registry from the snapshot and drop every volatile cache.
	s.sb.nextFree = nextFree
	s.sb.gen = gen
	s.sb.maxTenants = uint32(s.opts.MaxTenants)
	s.sb.capLines = s.capLines
	s.sb.keyCheck = s.keyCheck()
	s.opClock = opClock
	s.recs = make([]*tenantState, s.opts.MaxTenants+1)
	s.active = 0
	s.guards = map[uint64]*nvm.Line{}
	s.engines = map[uint64]*ctrenc.Engine{}
	for _, st := range stages {
		ts := s.install(st.rec)
		ts.windowID = st.windowID
		ts.usedOps = st.usedOps
		ts.rotCursor = st.cursor
	}
	return nil
}
