// Package tenant layers a multi-tenant secure-memory service over the
// deterministic engine-hosted device: a crash-persistent tenant registry,
// per-tenant key domains derived from one master key (ctrenc subkeys),
// address-space virtualization mapping (tenant, addr) onto the sharded
// physical space, per-tenant quotas with fair-share admission, and online
// key rotation as lazy re-encryption with a crash-safely persisted
// rotation epoch.
//
// Physical layout (units: 64-byte lines of the device's global space):
//
//	line 0                        superblock
//	lines 1..MaxTenants           one registry record per tenant id
//	lines MaxTenants+1..          bump-allocated tenant extents
//
// A tenant's extent is contiguous in global line space — which stripes it
// across every shard, since the device interleaves lines — and holds TWO
// physical slot lines per data line (shadow paging: slot = write counter
// parity) followed by its guard table (32-byte guard entries, two per
// line). Registry, guard and data lines are all ordinary device lines,
// so they inherit the device's own encryption, integrity tree and WPQ
// crash-consistency; the tenant layer's ciphertext and MACs sit on top as
// the per-tenant key domain.
package tenant

import (
	"encoding/binary"
	"fmt"

	"soteria/internal/nvm"
)

const (
	// superMagic/recordMagic tag the registry's persistent lines.
	superMagic  uint64 = 0x31305342_544f53 // "SOTSB01\0" little-endian
	recordMagic uint32 = 0x4e455453        // "STEN"

	// registryVersion is bumped on any change to the persistent registry
	// layout (superblock or record codec).
	registryVersion = 1

	// DefaultMaxTenants bounds tenant ids (1..DefaultMaxTenants) and sizes
	// the registry region.
	DefaultMaxTenants = 64

	// guardEntrySize is one guard-table entry: current and previous data
	// MAC plus their write counters. Two entries per 64-byte guard line.
	guardEntrySize    = 32
	guardEntriesPerLn = nvm.LineSize / guardEntrySize

	// flagActive/flagRotating are the record flag bits.
	flagActive   = 1 << 0
	flagRotating = 1 << 1
)

// superblock is the persistent root of the registry (line 0).
type superblock struct {
	maxTenants uint32
	capLines   uint64
	// nextFree is the bump allocator's high-water line. It is advanced
	// and persisted BEFORE the record that uses the space, so a crash
	// between the two leaks the reservation instead of overlapping it.
	nextFree uint64
	// keyCheck detects opening a registry with the wrong master key.
	keyCheck uint64
	// gen is the boot generation, bumped (and persisted) every time an
	// existing registry is opened. It is mixed into every counter word, so
	// a write retried after a crash can never reuse the one-time pad of
	// the torn pre-crash attempt even though the per-line counter restarts
	// from the last durably guarded value.
	gen uint32
}

func (sb *superblock) encode() nvm.Line {
	var l nvm.Line
	binary.LittleEndian.PutUint64(l[0:8], superMagic)
	binary.LittleEndian.PutUint32(l[8:12], registryVersion)
	binary.LittleEndian.PutUint32(l[12:16], sb.maxTenants)
	binary.LittleEndian.PutUint64(l[16:24], sb.capLines)
	binary.LittleEndian.PutUint64(l[24:32], sb.nextFree)
	binary.LittleEndian.PutUint64(l[32:40], sb.keyCheck)
	binary.LittleEndian.PutUint32(l[40:44], sb.gen)
	return l
}

func decodeSuperblock(l *nvm.Line) (superblock, error) {
	var sb superblock
	if binary.LittleEndian.Uint64(l[0:8]) != superMagic {
		return sb, fmt.Errorf("tenant: bad superblock magic")
	}
	if v := binary.LittleEndian.Uint32(l[8:12]); v != registryVersion {
		return sb, fmt.Errorf("tenant: registry version %d, want %d", v, registryVersion)
	}
	sb.maxTenants = binary.LittleEndian.Uint32(l[12:16])
	sb.capLines = binary.LittleEndian.Uint64(l[16:24])
	sb.nextFree = binary.LittleEndian.Uint64(l[24:32])
	sb.keyCheck = binary.LittleEndian.Uint64(l[32:40])
	sb.gen = binary.LittleEndian.Uint32(l[40:44])
	return sb, nil
}

// Record is one tenant's registry entry. The persistent fields round-trip
// through one 64-byte registry line; a record update is a single
// acknowledged device write, which is the crash-safety unit every state
// transition below (provisioning, rotation begin, rotation completion)
// leans on.
type Record struct {
	// ID is the tenant id (1..MaxTenants); its registry line is line ID.
	ID uint32
	// Active marks a provisioned tenant.
	Active bool
	// Rotating marks an in-progress key rotation: Epoch is already the
	// new key domain, Epoch-1 is still admissible for reads, and the
	// rotation sweep is re-encrypting stragglers.
	Rotating bool
	// Epoch is the current key-domain epoch (starts at 1).
	Epoch uint32
	// QuotaOps is the hard per-window operation budget (0 = unlimited).
	QuotaOps uint32
	// BaseLine is the first global line of the tenant's extent.
	BaseLine uint64
	// DataLines is the extent's data size in lines. The physical data
	// region holds two slot lines per data line (shadow paging), and
	// ceil(DataLines/2) guard lines follow it.
	DataLines uint64
	// AuthCheck is the tenant's access token (a master-key MAC); stored
	// so a wrong-master-key open is detected at load.
	AuthCheck uint64
}

// guardLines is the size of the tenant's guard table in lines.
func (r *Record) guardLines() uint64 {
	return (r.DataLines + guardEntriesPerLn - 1) / guardEntriesPerLn
}

// extentLines is the tenant's total footprint: two physical slots per
// data line plus the guard table.
func (r *Record) extentLines() uint64 { return 2*r.DataLines + r.guardLines() }

// dataLine maps a tenant-local line index and a slot parity (write
// counter & 1) to the global line of that physical slot. The two slots of
// a line are adjacent; successive writes alternate between them, so the
// slot a write lands in never holds the value the guard's slots still
// reference.
func (r *Record) dataLine(i uint64, parity uint32) uint64 {
	return r.BaseLine + 2*i + uint64(parity&1)
}

// guardLine maps a tenant-local line index to the global line holding its
// guard entry, and the entry's byte offset within that line.
func (r *Record) guardLine(i uint64) (line uint64, off int) {
	return r.BaseLine + 2*r.DataLines + i/guardEntriesPerLn,
		int(i%guardEntriesPerLn) * guardEntrySize
}

func (r *Record) encode() nvm.Line {
	var l nvm.Line
	binary.LittleEndian.PutUint32(l[0:4], recordMagic)
	binary.LittleEndian.PutUint32(l[4:8], r.ID)
	var flags uint8
	if r.Active {
		flags |= flagActive
	}
	if r.Rotating {
		flags |= flagRotating
	}
	l[8] = flags
	binary.LittleEndian.PutUint32(l[12:16], r.Epoch)
	binary.LittleEndian.PutUint32(l[16:20], r.QuotaOps)
	binary.LittleEndian.PutUint64(l[24:32], r.BaseLine)
	binary.LittleEndian.PutUint64(l[32:40], r.DataLines)
	binary.LittleEndian.PutUint64(l[40:48], r.AuthCheck)
	return l
}

func decodeRecord(l *nvm.Line) (Record, error) {
	var r Record
	if binary.LittleEndian.Uint32(l[0:4]) != recordMagic {
		return r, fmt.Errorf("tenant: bad record magic")
	}
	r.ID = binary.LittleEndian.Uint32(l[4:8])
	r.Active = l[8]&flagActive != 0
	r.Rotating = l[8]&flagRotating != 0
	r.Epoch = binary.LittleEndian.Uint32(l[12:16])
	r.QuotaOps = binary.LittleEndian.Uint32(l[16:20])
	r.BaseLine = binary.LittleEndian.Uint64(l[24:32])
	r.DataLines = binary.LittleEndian.Uint64(l[32:40])
	r.AuthCheck = binary.LittleEndian.Uint64(l[40:48])
	return r, nil
}

// guardEntry is one data line's authentication state: the MAC, write
// counter and boot generation of the current value and of the previous
// value. The write protocol writes the NEW ciphertext into the stale
// physical slot first (slot = counter parity — the slot holding the
// two-writes-old version nothing references anymore) and then commits
// with a single guard-entry write. The guard write is therefore the
// atomic commit point: a crash anywhere before it leaves the old guard
// whose cur slot still points at intact old ciphertext; a crash after it
// exposes the new value, whose data write already landed. Ctr is 0 only
// for a never-written slot (the first write uses counter 1), which is how
// an untouched line reads back as zeros without a MAC.
type guardEntry struct {
	curMAC  uint64
	prevMAC uint64
	curCtr  uint32
	prevCtr uint32
	curGen  uint32
	prevGen uint32
}

func (g *guardEntry) written() bool { return g.curCtr != 0 }

func putGuardEntry(l *nvm.Line, off int, g guardEntry) {
	binary.LittleEndian.PutUint64(l[off:off+8], g.curMAC)
	binary.LittleEndian.PutUint64(l[off+8:off+16], g.prevMAC)
	binary.LittleEndian.PutUint32(l[off+16:off+20], g.curCtr)
	binary.LittleEndian.PutUint32(l[off+20:off+24], g.prevCtr)
	binary.LittleEndian.PutUint32(l[off+24:off+28], g.curGen)
	binary.LittleEndian.PutUint32(l[off+28:off+32], g.prevGen)
}

func getGuardEntry(l *nvm.Line, off int) guardEntry {
	return guardEntry{
		curMAC:  binary.LittleEndian.Uint64(l[off : off+8]),
		prevMAC: binary.LittleEndian.Uint64(l[off+8 : off+16]),
		curCtr:  binary.LittleEndian.Uint32(l[off+16 : off+20]),
		prevCtr: binary.LittleEndian.Uint32(l[off+20 : off+24]),
		curGen:  binary.LittleEndian.Uint32(l[off+24 : off+28]),
		prevGen: binary.LittleEndian.Uint32(l[off+28 : off+32]),
	}
}
