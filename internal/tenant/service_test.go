package tenant_test

import (
	"bytes"
	"errors"
	"testing"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/tenant"
)

func newEngine(t testing.TB, shards int) *device.Engine {
	t.Helper()
	eng, err := device.NewEngine(device.EngineOptions{
		Options: device.Options{
			System:     config.TestSystem(),
			Mode:       memctrl.ModeSAC,
			Key:        []byte("tenant-test-device-key"),
			Shards:     shards,
			QueueDepth: 16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func newService(t testing.TB, shards int, opts tenant.Options) (*device.Engine, *tenant.Service) {
	t.Helper()
	if opts.MasterKey == nil {
		opts.MasterKey = []byte("tenant-test-master-key")
	}
	eng := newEngine(t, shards)
	svc, err := tenant.New(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, svc
}

func fill(b byte) *nvm.Line {
	var l nvm.Line
	for i := range l {
		l[i] = b
	}
	return &l
}

// TestRoundTripAndPersistence: writes read back, survive a reopen of the
// service on the same engine, and unwritten lines read as zeros.
func TestRoundTripAndPersistence(t *testing.T) {
	eng, svc := newService(t, 4, tenant.Options{})
	tok, err := svc.Provision(1, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Authenticate(1, tok); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i += 2 {
		if _, err := svc.Write(1, uint64(i)*nvm.LineSize, fill(byte(i+1))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	check := func(s *tenant.Service) {
		t.Helper()
		for i := 0; i < 32; i++ {
			got, _, err := s.Read(1, uint64(i)*nvm.LineSize)
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			want := nvm.Line{}
			if i%2 == 0 {
				want = *fill(byte(i + 1))
			}
			if got != want {
				t.Fatalf("line %d: got %x want %x", i, got[0], want[0])
			}
		}
	}
	check(svc)

	// Reopen on the same device: registry and data must come back.
	svc2, err := tenant.New(eng, tenant.Options{MasterKey: []byte("tenant-test-master-key")})
	if err != nil {
		t.Fatal(err)
	}
	check(svc2)

	// Wrong master key must be rejected at open.
	if _, err := tenant.New(eng, tenant.Options{MasterKey: []byte("wrong")}); err == nil {
		t.Fatal("opened the registry with the wrong master key")
	}
}

// TestTypedErrors: every admission failure carries its typed error.
func TestTypedErrors(t *testing.T) {
	_, svc := newService(t, 2, tenant.Options{QuotaWindow: 64})
	if _, err := svc.Provision(1, 8, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Provision(1, 8, 0); !errors.Is(err, tenant.ErrExists) {
		t.Fatalf("double provision: %v", err)
	}
	if _, _, err := svc.Read(2, 0); !errors.Is(err, tenant.ErrNoSuchTenant) {
		t.Fatalf("absent tenant: %v", err)
	}
	if err := svc.Authenticate(1, 0xdead); !errors.Is(err, tenant.ErrAuth) {
		t.Fatalf("bad token: %v", err)
	}
	var re *tenant.RangeError
	if _, _, err := svc.Read(1, 8*nvm.LineSize); !errors.As(err, &re) {
		t.Fatalf("out of extent: %v", err)
	}
	if _, _, err := svc.Read(1, 7); !errors.As(err, &re) {
		t.Fatalf("unaligned: %v", err)
	}
	// Quota: 4 ops then a typed, non-retryable *QuotaError.
	for i := 0; i < 4; i++ {
		if _, _, err := svc.Read(1, 0); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	var qe *tenant.QuotaError
	_, _, err := svc.Read(1, 0)
	if !errors.As(err, &qe) || !errors.Is(err, tenant.ErrQuota) {
		t.Fatalf("quota: %v", err)
	}
	if qe.Tenant != 1 || qe.Budget != 4 {
		t.Fatalf("quota detail: %+v", qe)
	}
}

// TestFairShare: with two active tenants, a hog is throttled with a
// retryable BusyError (shard -2) once past its share, while the other
// tenant still gets in; a lone tenant is never throttled.
func TestFairShare(t *testing.T) {
	_, svc := newService(t, 2, tenant.Options{QuotaWindow: 64, FairBurst: 1})
	if _, err := svc.Provision(1, 8, 0); err != nil {
		t.Fatal(err)
	}
	// Lone tenant: the whole window is its share.
	for i := 0; i < 100; i++ {
		if _, _, err := svc.Read(1, 0); err != nil {
			t.Fatalf("lone op %d: %v", i, err)
		}
	}
	if _, err := svc.Provision(2, 8, 0); err != nil {
		t.Fatal(err)
	}
	// Two tenants, share = 64/2 = 32. Let tenant 1 hog.
	var be *device.BusyError
	hogged := 0
	for i := 0; i < 64; i++ {
		_, _, err := svc.Read(1, 0)
		if err == nil {
			hogged++
			continue
		}
		if !errors.As(err, &be) {
			t.Fatalf("hog op %d: %v", i, err)
		}
		break
	}
	if be == nil || be.Shard != -2 {
		t.Fatalf("expected tenant-gate BusyError, got %+v after %d ops", be, hogged)
	}
	if hogged > 32 {
		t.Fatalf("hog admitted %d ops, share is 32", hogged)
	}
	// The other tenant must still be admitted.
	if _, _, err := svc.Read(2, 0); err != nil {
		t.Fatalf("victim read: %v", err)
	}
}

// TestIsolation: a tenant's ciphertext never authenticates under another
// tenant's key domain, and tenant-local addressing cannot name foreign
// lines at all.
func TestIsolation(t *testing.T) {
	_, svc := newService(t, 4, tenant.Options{})
	if _, err := svc.Provision(1, 16, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Provision(2, 16, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := svc.Write(1, uint64(i)*nvm.LineSize, fill(0xAA)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		if err := svc.CrossCheck(2, 1, uint64(i)*nvm.LineSize); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if err := svc.CrossCheck(1, 2, uint64(i)*nvm.LineSize); err != nil {
			t.Fatalf("reverse line %d: %v", i, err)
		}
	}
	if err := svc.VerifyTenant(1); err != nil {
		t.Fatal(err)
	}
	if err := svc.VerifyTenant(2); err != nil {
		t.Fatal(err)
	}
}

// TestRotationUnderLoad: begin a rotation, interleave writes and sweep
// steps, and assert zero acknowledged-write loss plus epoch retirement at
// completion.
func TestRotationUnderLoad(t *testing.T) {
	_, svc := newService(t, 4, tenant.Options{})
	const lines = 64
	if _, err := svc.Provision(1, lines, 0); err != nil {
		t.Fatal(err)
	}
	want := map[uint64]nvm.Line{}
	for i := 0; i < lines; i++ {
		l := fill(byte(i))
		if _, err := svc.Write(1, uint64(i)*nvm.LineSize, l); err != nil {
			t.Fatal(err)
		}
		want[uint64(i)] = *l
	}
	if err := svc.Rotate(1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Rotate(1); !errors.Is(err, tenant.ErrRotating) {
		t.Fatalf("double rotate: %v", err)
	}
	// Live load during the sweep: writes land in the new epoch, reads
	// lazily rewrite, the sweep mops up the rest.
	step := 0
	for {
		st, err := svc.RotateStatus(1)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done() {
			break
		}
		// Interleaved traffic.
		wl := uint64(step % lines)
		l := fill(byte(0x80 + step))
		if _, err := svc.Write(1, wl*nvm.LineSize, l); err != nil {
			t.Fatal(err)
		}
		want[wl] = *l
		rl := uint64((step * 7) % lines)
		got, _, err := svc.Read(1, rl*nvm.LineSize)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[rl] {
			t.Fatalf("mid-rotation read %d diverged", rl)
		}
		if _, _, err := svc.RotateStep(1, 8); err != nil {
			t.Fatal(err)
		}
		step++
	}
	if _, _, err := svc.RotateStep(1, 8); !errors.Is(err, tenant.ErrNotRotating) {
		t.Fatalf("step after completion: %v", err)
	}
	st, _ := svc.RotateStatus(1)
	if st.Epoch != 2 {
		t.Fatalf("epoch %d after one rotation", st.Epoch)
	}
	for i := uint64(0); i < lines; i++ {
		got, _, err := svc.Read(1, i*nvm.LineSize)
		if err != nil {
			t.Fatalf("post-rotation read %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("post-rotation line %d diverged", i)
		}
	}
	if err := svc.VerifyTenant(1); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoverMidRotation: a power cut in the middle of a rotation
// sweep loses no acknowledged write; after recovery the rotation resumes
// from cursor zero and completes.
func TestCrashRecoverMidRotation(t *testing.T) {
	_, svc := newService(t, 4, tenant.Options{})
	const lines = 32
	if _, err := svc.Provision(1, lines, 0); err != nil {
		t.Fatal(err)
	}
	want := map[uint64]nvm.Line{}
	for i := 0; i < lines; i++ {
		l := fill(byte(i + 1))
		if _, err := svc.Write(1, uint64(i)*nvm.LineSize, l); err != nil {
			t.Fatal(err)
		}
		want[uint64(i)] = *l
	}
	if err := svc.Rotate(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RotateStep(1, lines/2); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	st, err := svc.RotateStatus(1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Rotating || st.Cursor != 0 {
		t.Fatalf("rotation state after recovery: %+v", st)
	}
	for i := uint64(0); i < lines; i++ {
		got, _, err := svc.Read(1, i*nvm.LineSize)
		if err != nil {
			t.Fatalf("post-crash read %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("post-crash line %d diverged", i)
		}
	}
	for {
		_, done, err := svc.RotateStep(1, 8)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if err := svc.VerifyTenant(1); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRestoreGolden: tenant state round-trips byte-identically
// through Checkpoint/Restore — including mid-rotation, mid-window state —
// and a restored service serves the same data.
func TestCheckpointRestoreGolden(t *testing.T) {
	eng, svc := newService(t, 4, tenant.Options{QuotaWindow: 128})
	if _, err := svc.Provision(1, 24, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Provision(3, 8, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if _, err := svc.Write(1, uint64(i)*nvm.LineSize, fill(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Rotate(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RotateStep(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Write(3, 0, fill(0x33)); err != nil {
		t.Fatal(err)
	}

	ckpt, err := svc.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Identity: re-checkpoint without restore is already byte-identical.
	again, err := svc.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt, again) {
		t.Fatal("checkpoint is not deterministic")
	}

	// Mutate, then restore and verify the checkpoint round-trips.
	if _, err := svc.Write(1, 0, fill(0xFF)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	back, err := svc.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt, back) {
		t.Fatal("Checkpoint -> Restore -> Checkpoint is not byte-identical")
	}
	got, _, err := svc.Read(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != *fill(0) {
		t.Fatalf("restored line 0 = %x, want pre-mutation value", got[0])
	}
	st, err := svc.RotateStatus(1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Rotating || st.Cursor != 10 || st.Epoch != 2 {
		t.Fatalf("restored rotation state: %+v", st)
	}

	// A fresh service over the same engine restores the same bytes too.
	svc2, err := tenant.New(eng, tenant.Options{
		MasterKey: []byte("tenant-test-master-key"), QuotaWindow: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc2.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	back2, err := svc2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt, back2) {
		t.Fatal("restore onto a fresh service is not byte-identical")
	}
}

// TestTelemetryPerTenant: the per-tenant registries count the right ops.
func TestTelemetryPerTenant(t *testing.T) {
	_, svc := newService(t, 2, tenant.Options{Telemetry: true, QuotaWindow: 64})
	if _, err := svc.Provision(1, 8, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Write(1, 0, fill(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Write(1, 0, fill(1)); !errors.Is(err, tenant.ErrQuota) {
		t.Fatal("expected quota rejection")
	}
	snap, err := svc.Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["tenant_writes_total"] != 3 {
		t.Fatalf("writes counter: %+v", snap.Counters)
	}
	if snap.Counters["tenant_quota_rejects_total"] != 1 {
		t.Fatalf("quota counter: %+v", snap.Counters)
	}
}
