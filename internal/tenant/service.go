package tenant

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"soteria/internal/ctrenc"
	"soteria/internal/device"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// Options configures a Service.
type Options struct {
	// MasterKey roots every tenant key domain (required). It is
	// deliberately separate from the device's own encryption key: the
	// device layer is the "hardware" at-rest protection, the tenant layer
	// is the per-tenant domain on top.
	MasterKey []byte
	// MaxTenants bounds tenant ids (1..MaxTenants) and sizes the registry
	// region. Default DefaultMaxTenants. Fixed at first format; opening an
	// existing registry with a different value is rejected.
	MaxTenants int
	// QuotaWindow is the length, in admitted operations service-wide, of
	// one quota window. Hard budgets (Record.QuotaOps) and fair-share
	// throttling both reset when the window rolls. Default 1024.
	QuotaWindow int
	// FairBurst is the burst factor of fair-share admission: with T
	// active tenants, one tenant may take at most FairBurst/T of a
	// window before being throttled with a retryable BusyError. Default 2.
	FairBurst int
	// Telemetry enables the per-tenant metric registries.
	Telemetry bool
}

func (o *Options) fill() error {
	if len(o.MasterKey) == 0 {
		return fmt.Errorf("tenant: MasterKey is required")
	}
	if o.MaxTenants <= 0 {
		o.MaxTenants = DefaultMaxTenants
	}
	if o.QuotaWindow <= 0 {
		o.QuotaWindow = 1024
	}
	if o.FairBurst <= 0 {
		o.FairBurst = 2
	}
	return nil
}

// tenantState is one provisioned tenant's in-memory state: the persistent
// record plus the volatile quota/rotation bookkeeping and metric handles.
type tenantState struct {
	rec Record

	// windowID/usedOps implement the deterministic quota window: usedOps
	// resets lazily when the service-wide op clock enters a new window.
	windowID uint64
	usedOps  uint32
	// rotCursor is the rotation sweep position. Volatile on purpose: the
	// sweep is idempotent (it only rewrites lines still under the old
	// epoch), so after a crash it simply restarts from zero.
	rotCursor uint64

	reg            *telemetry.Registry
	reads          *telemetry.Counter
	writes         *telemetry.Counter
	quotaRejects   *telemetry.Counter
	busyRejects    *telemetry.Counter
	rotatedLines   *telemetry.Counter
	integrityFails *telemetry.Counter
	latencyPS      *telemetry.Histogram
}

// Service is the multi-tenant secure-memory service over one
// deterministic engine-hosted device. All methods are safe for concurrent
// use (one internal mutex serializes them onto the single-threaded
// engine), and the whole service state rides Checkpoint/Restore.
//
// Crash-safety protocol of the data path — the invariant the per-tenant
// chaos oracle checks:
//
//  1. A write seals the plaintext under the tenant's current epoch key
//     with a fresh per-line write counter and the current boot
//     generation, writes the ciphertext into the STALE physical slot
//     (each tenant line has two, selected by counter parity; the stale
//     one holds the two-writes-old version nothing references), then
//     commits with a single guard-entry write (prev slot <- old cur, cur
//     slot <- new MAC+counter+generation). Each device write is
//     individually crash-atomic and durable once acknowledged, so the
//     guard write is the atomic commit point: a crash before it leaves
//     the old guard pointing at intact old ciphertext in the other slot,
//     a crash after it exposes the new value whose data already landed.
//  2. A read accepts the line under the guard's cur OR prev slot (each
//     naming its own physical slot by parity), under the current epoch
//     and — only while a rotation is in progress — the previous epoch.
//  3. Anything else fails with a typed *IntegrityError — which is exactly
//     what a cross-tenant or cross-epoch open attempt produces, since
//     foreign ciphertext never authenticates under the reader's keys.
//
// The boot generation (persisted in the superblock, bumped on every
// reopen) is mixed into the counter word so a write retried after a crash
// never reuses the one-time pad of its torn pre-crash attempt.
type Service struct {
	mu     sync.Mutex
	eng    *device.Engine
	opts   Options
	master *ctrenc.Engine

	capLines uint64
	sb       superblock
	recs     []*tenantState // indexed by tenant id; 0 unused
	active   int

	// engines caches the per-(tenant, epoch) data engines; pure key
	// derivations, rebuilt on demand, never serialized.
	engines map[uint64]*ctrenc.Engine
	// guards caches guard lines (volatile write-through cache; dropped on
	// crash/recover/restore). Entries are committed only after the device
	// acknowledged the corresponding write, so the cache never runs ahead
	// of durable state.
	guards map[uint64]*nvm.Line

	// opClock counts admitted operations service-wide; opClock /
	// QuotaWindow is the current quota window id.
	opClock uint64

	// scratch buffers keep the sealed ciphertext and guard-line updates
	// off the heap on the steady-state path (the engine's Write interface
	// takes a pointer, which would otherwise force a stack line to
	// escape).
	scratchData  nvm.Line
	scratchGuard nvm.Line
}

// New opens (or formats) the tenant registry on an engine-hosted device.
// The engine must be up; the caller keeps ownership (Close does not close
// the engine).
func New(eng *device.Engine, opts Options) (*Service, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if eng.Down() {
		return nil, fmt.Errorf("tenant: device is down; recover it first")
	}
	capLines := eng.Info().CapacityBytes / nvm.LineSize
	if need := uint64(opts.MaxTenants) + 2; capLines < need {
		return nil, fmt.Errorf("tenant: device of %d lines cannot hold a %d-tenant registry", capLines, opts.MaxTenants)
	}
	master, err := ctrenc.NewEngine(opts.MasterKey)
	if err != nil {
		return nil, err
	}
	s := &Service{
		eng:      eng,
		opts:     opts,
		master:   master,
		capLines: capLines,
		engines:  map[uint64]*ctrenc.Engine{},
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// keyCheck is the master-key fingerprint stored in the superblock.
func (s *Service) keyCheck() uint64 {
	sub := s.master.DeriveSubkey("tenant-keycheck", 0, 0)
	return binary.LittleEndian.Uint64(sub[:8])
}

// token derives tenant id's access token from the master key. Epoch 0 on
// purpose: rotating a tenant's data keys must not invalidate its
// credentials.
func (s *Service) token(id uint32) uint64 {
	sub := s.master.DeriveSubkey("tenant-auth", uint64(id), 0)
	return binary.LittleEndian.Uint64(sub[:8])
}

// load (re)builds the in-memory registry from the device: the superblock
// (formatting a fresh device) and every provisioned record. Volatile
// caches are dropped; the op clock is preserved.
func (s *Service) load() error {
	line0, _, err := s.eng.Read(0)
	if err != nil {
		return fmt.Errorf("tenant: read superblock: %w", err)
	}
	if line0 == (nvm.Line{}) {
		// Fresh device: format. The arena starts right after the registry.
		s.sb = superblock{
			maxTenants: uint32(s.opts.MaxTenants),
			capLines:   s.capLines,
			nextFree:   uint64(s.opts.MaxTenants) + 1,
			keyCheck:   s.keyCheck(),
			gen:        1,
		}
		enc := s.sb.encode()
		if _, err := s.eng.Write(0, &enc); err != nil {
			return fmt.Errorf("tenant: format superblock: %w", err)
		}
	} else {
		sb, err := decodeSuperblock(&line0)
		if err != nil {
			return err
		}
		if sb.keyCheck != s.keyCheck() {
			return fmt.Errorf("tenant: master key does not match the registry")
		}
		if int(sb.maxTenants) != s.opts.MaxTenants {
			return fmt.Errorf("tenant: registry sized for %d tenants, options say %d", sb.maxTenants, s.opts.MaxTenants)
		}
		if sb.capLines != s.capLines {
			return fmt.Errorf("tenant: registry formatted for %d lines, device has %d", sb.capLines, s.capLines)
		}
		s.sb = sb
		// Reopening (boot, or crash recovery): advance the boot generation
		// durably before any data write, fencing off every pre-crash
		// counter word a torn write might have consumed.
		s.sb.gen++
		if err := s.persistSuper(); err != nil {
			return err
		}
	}
	s.recs = make([]*tenantState, s.opts.MaxTenants+1)
	s.active = 0
	s.guards = map[uint64]*nvm.Line{}
	for id := 1; id <= s.opts.MaxTenants; id++ {
		l, _, err := s.eng.Read(uint64(id) * nvm.LineSize)
		if err != nil {
			return fmt.Errorf("tenant: read record %d: %w", id, err)
		}
		if l == (nvm.Line{}) {
			continue
		}
		rec, err := decodeRecord(&l)
		if err != nil {
			return fmt.Errorf("tenant: record %d: %w", id, err)
		}
		if rec.ID != uint32(id) {
			return fmt.Errorf("tenant: record line %d names tenant %d", id, rec.ID)
		}
		if rec.AuthCheck != s.token(rec.ID) {
			return fmt.Errorf("tenant: record %d token does not derive from the master key", id)
		}
		s.install(rec)
	}
	return nil
}

// install builds the in-memory state for one record.
func (s *Service) install(rec Record) *tenantState {
	ts := &tenantState{rec: rec}
	if s.opts.Telemetry {
		ts.reg = telemetry.NewRegistry()
		ts.reads = ts.reg.Counter("tenant_reads_total")
		ts.writes = ts.reg.Counter("tenant_writes_total")
		ts.quotaRejects = ts.reg.Counter("tenant_quota_rejects_total")
		ts.busyRejects = ts.reg.Counter("tenant_fair_share_rejects_total")
		ts.rotatedLines = ts.reg.Counter("tenant_rotated_lines_total")
		ts.integrityFails = ts.reg.Counter("tenant_integrity_failures_total")
		ts.latencyPS = ts.reg.Histogram("tenant_op_latency_ps", telemetry.ExpBounds(40))
	}
	s.recs[rec.ID] = ts
	if rec.Active {
		s.active++
	}
	return ts
}

// persistRecord writes ts's record line through the device (durable at
// ack — the crash-safety unit of every registry state transition).
func (s *Service) persistRecord(ts *tenantState) error {
	enc := ts.rec.encode()
	if _, err := s.eng.Write(uint64(ts.rec.ID)*nvm.LineSize, &enc); err != nil {
		return fmt.Errorf("tenant: persist record %d: %w", ts.rec.ID, err)
	}
	return nil
}

// persistSuper writes the superblock.
func (s *Service) persistSuper() error {
	enc := s.sb.encode()
	if _, err := s.eng.Write(0, &enc); err != nil {
		return fmt.Errorf("tenant: persist superblock: %w", err)
	}
	return nil
}

// Provision creates tenant id with a dataLines-line extent and the given
// hard quota (0 = unlimited), returning its access token. The allocator
// reserves space in the superblock before the record becomes visible, so
// a crash between the two writes leaks the reservation but can never
// hand two tenants overlapping extents.
func (s *Service) Provision(id uint32, dataLines uint64, quotaOps uint32) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == 0 || int(id) > s.opts.MaxTenants {
		return 0, fmt.Errorf("tenant: id %d out of range [1,%d]", id, s.opts.MaxTenants)
	}
	if s.recs[id] != nil {
		return 0, fmt.Errorf("%w: id %d", ErrExists, id)
	}
	if dataLines == 0 {
		return 0, fmt.Errorf("tenant: extent must be at least one line")
	}
	rec := Record{
		ID: id, Active: true, Epoch: 1, QuotaOps: quotaOps,
		BaseLine: s.sb.nextFree, DataLines: dataLines,
		AuthCheck: s.token(id),
	}
	need := rec.extentLines()
	if rec.BaseLine+need > s.capLines {
		return 0, fmt.Errorf("tenant: extent of %d lines does not fit (%d free)", need, s.capLines-s.sb.nextFree)
	}
	s.sb.nextFree += need
	if err := s.persistSuper(); err != nil {
		s.sb.nextFree -= need
		return 0, err
	}
	ts := s.install(rec)
	if err := s.persistRecord(ts); err != nil {
		s.recs[id] = nil
		s.active--
		return 0, err
	}
	return rec.AuthCheck, nil
}

// Token re-derives tenant id's access token (operator convenience).
func (s *Service) Token(id uint32) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.lookup(id); err != nil {
		return 0, err
	}
	return s.token(id), nil
}

// Authenticate verifies an access token for tenant id.
func (s *Service) Authenticate(id uint32, token uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.lookup(id)
	if err != nil {
		return &AuthError{Tenant: id}
	}
	if token != ts.rec.AuthCheck {
		return &AuthError{Tenant: id}
	}
	return nil
}

// Tenants lists the provisioned records in id order.
func (s *Service) Tenants() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, ts := range s.recs {
		if ts != nil {
			out = append(out, ts.rec)
		}
	}
	return out
}

// Info returns tenant id's record.
func (s *Service) Info(id uint32) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.lookup(id)
	if err != nil {
		return Record{}, err
	}
	return ts.rec, nil
}

// lookup resolves an active tenant (callers hold s.mu).
func (s *Service) lookup(id uint32) (*tenantState, error) {
	if id == 0 || int(id) >= len(s.recs) || s.recs[id] == nil || !s.recs[id].rec.Active {
		return nil, ErrNoSuchTenant
	}
	return s.recs[id], nil
}

// admit runs the admission path for one data operation: resolve the
// tenant, confine the address to its extent, then apply the hard quota
// and the fair-share throttle. On success the tenant-local line index is
// returned and the op is charged to the current window.
func (s *Service) admit(id uint32, addr uint64) (*tenantState, uint64, error) {
	ts, err := s.lookup(id)
	if err != nil {
		return nil, 0, err
	}
	if addr%nvm.LineSize != 0 {
		return nil, 0, &RangeError{Tenant: id, Addr: addr, Lines: ts.rec.DataLines}
	}
	line := addr / nvm.LineSize
	if line >= ts.rec.DataLines {
		return nil, 0, &RangeError{Tenant: id, Addr: addr, Lines: ts.rec.DataLines}
	}
	window := uint64(s.opts.QuotaWindow)
	if w := s.opClock / window; w != ts.windowID {
		ts.windowID = w
		ts.usedOps = 0
	}
	// Hard quota: a non-retryable, typed rejection. The budget refills
	// only when the window rolls, so retrying is pure waste — which is
	// why the devnet client classifies it ClassQuota and gives up at once.
	if ts.rec.QuotaOps > 0 && ts.usedOps >= ts.rec.QuotaOps {
		ts.quotaRejects.Inc()
		return nil, 0, &QuotaError{Tenant: id, Used: ts.usedOps, Budget: ts.rec.QuotaOps}
	}
	// Fair-share admission rides the existing BusyError backpressure:
	// with T active tenants contending, one tenant may burst to
	// FairBurst/T of a window before being throttled with a retryable
	// BusyError (shard -2 marks the tenant gate, like -1 marks the
	// server's in-flight cap). A lone tenant is never throttled.
	if s.active > 1 {
		share := uint32(uint64(s.opts.FairBurst) * window / uint64(s.active))
		if share == 0 {
			share = 1
		}
		if ts.usedOps >= share {
			ts.busyRejects.Inc()
			left := window - s.opClock%window
			return nil, 0, &device.BusyError{
				Shard:      -2,
				Pending:    int(ts.usedOps),
				RetryAfter: time.Duration(left) * 10 * time.Microsecond,
			}
		}
	}
	ts.usedOps++
	s.opClock++
	return ts, line, nil
}

// dataEngine returns the cached crypto engine of one (tenant, epoch) key
// domain, deriving it from the master key on first use.
func (s *Service) dataEngine(id, epoch uint32) *ctrenc.Engine {
	k := uint64(id)<<32 | uint64(epoch)
	if e := s.engines[k]; e != nil {
		return e
	}
	sub := s.master.DeriveSubkey("tenant-data", uint64(id), uint64(epoch))
	e := ctrenc.MustNewEngine(sub[:])
	s.engines[k] = e
	return e
}

// ctrWord packs (epoch, boot generation, write counter) into the counter
// word fed to the OTP and MAC: unique per encryption within a key domain,
// so the pad is never reused — including across a crash-retry, which
// repeats the counter but under a fresh generation. Epoch and generation
// are truncated to 16 bits; both count rare operator-scale events
// (rotations, reboots), so wrap-around is out of scale.
func ctrWord(epoch, gen, ctr uint32) uint64 {
	return uint64(epoch&0xffff)<<48 | uint64(gen&0xffff)<<32 | uint64(ctr)
}

// guardLineRef returns the cached guard line, reading it through the
// device on a miss. The latency of a device read (cache miss) is added to
// *lat; a hit costs nothing, modeling controller-resident metadata.
func (s *Service) guardLineRef(gLine uint64, lat *sim.Time) (*nvm.Line, error) {
	if l := s.guards[gLine]; l != nil {
		return l, nil
	}
	data, t, err := s.eng.Read(gLine * nvm.LineSize)
	if err != nil {
		return nil, err
	}
	*lat += t
	l := new(nvm.Line)
	*l = data
	s.guards[gLine] = l
	return l, nil
}

// Write services one 64-byte tenant write: admission, then the sealed
// guard-first/data-second protocol under the tenant's current epoch.
func (s *Service) Write(id uint32, addr uint64, data *nvm.Line) (sim.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, line, err := s.admit(id, addr)
	if err != nil {
		return 0, err
	}
	lat, err := s.writeLine(ts, line, data, ts.rec.Epoch)
	if err != nil {
		return lat, err
	}
	ts.writes.Inc()
	ts.latencyPS.Observe(uint64(lat))
	return lat, nil
}

// writeLine seals and stores one tenant line under the given epoch: the
// ciphertext goes into the stale physical slot (counter parity) first,
// then one guard-entry write (prev <- cur, cur <- new) commits it. Both
// are acknowledged device writes; the guard cache commits only after the
// guard ack, so it never runs ahead of durable state.
func (s *Service) writeLine(ts *tenantState, line uint64, data *nvm.Line, epoch uint32) (sim.Time, error) {
	var lat sim.Time
	gLine, gOff := ts.rec.guardLine(line)
	gl, err := s.guardLineRef(gLine, &lat)
	if err != nil {
		return lat, err
	}
	ge := getGuardEntry(gl, gOff)
	newCtr := ge.curCtr + 1
	gen := s.sb.gen
	eng := s.dataEngine(ts.rec.ID, epoch)
	w := ctrWord(epoch, gen, newCtr)
	s.scratchData = eng.Encrypt(line, w, (*[nvm.LineSize]byte)(data))
	mac := eng.MAC(ctrenc.DomainTenant, line, w, s.scratchData[:])

	// Data first. The target slot (newCtr's parity) is the one the guard's
	// prev entry references — destroying it is safe because under
	// data-first ordering the cur entry always names ciphertext that was
	// durable before the guard named it, so recovery never needs prev.
	t, err := s.eng.Write(ts.rec.dataLine(line, newCtr)*nvm.LineSize, &s.scratchData)
	lat += t
	if err != nil {
		return lat, err
	}

	s.scratchGuard = *gl
	putGuardEntry(&s.scratchGuard, gOff, guardEntry{
		curMAC: mac, prevMAC: ge.curMAC,
		curCtr: newCtr, prevCtr: ge.curCtr,
		curGen: gen, prevGen: ge.curGen,
	})
	t, err = s.eng.Write(gLine*nvm.LineSize, &s.scratchGuard)
	lat += t
	if err != nil {
		return lat, err
	}
	*gl = s.scratchGuard
	return lat, nil
}

// Read services one 64-byte tenant read, lazily re-encrypting lines still
// under the previous epoch while a rotation is in progress (the
// read/write-back rotation path).
func (s *Service) Read(id uint32, addr uint64) (nvm.Line, sim.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, line, err := s.admit(id, addr)
	if err != nil {
		return nvm.Line{}, 0, err
	}
	data, lat, _, err := s.readLine(ts, line, true)
	if err != nil {
		return nvm.Line{}, lat, err
	}
	ts.reads.Inc()
	ts.latencyPS.Observe(uint64(lat))
	return data, lat, nil
}

// readLine loads, authenticates and decrypts one tenant line. The guard's
// cur and prev entries (each naming its physical slot by counter parity)
// are tried under the current epoch and — only while rotating — the
// previous epoch; the first match decides. The cur trial under the
// current epoch is the steady-state path and costs exactly one data read;
// further slots load lazily. With rewrite set, a line that matched under
// the previous epoch is re-sealed under the current one in place (lazy
// rotation). rotated reports that rewrite.
func (s *Service) readLine(ts *tenantState, line uint64, rewrite bool) (out nvm.Line, lat sim.Time, rotated bool, err error) {
	gLine, gOff := ts.rec.guardLine(line)
	gl, err := s.guardLineRef(gLine, &lat)
	if err != nil {
		return nvm.Line{}, lat, false, err
	}
	ge := getGuardEntry(gl, gOff)
	if !ge.written() {
		// Never written: reads back as zeros, no MAC to check.
		return nvm.Line{}, lat, false, nil
	}

	curEpoch := ts.rec.Epoch
	epochs := [2]uint32{curEpoch, 0}
	nEpochs := 1
	if ts.rec.Rotating && curEpoch > 1 {
		epochs[1] = curEpoch - 1
		nEpochs = 2
	}
	var slotData [2]nvm.Line
	var slotRead [2]bool
	for ei := 0; ei < nEpochs; ei++ {
		e := epochs[ei]
		eng := s.dataEngine(ts.rec.ID, e)
		// cur entry, then prev entry (prev is vestigial for crash
		// recovery under data-first ordering, but kept admissible so the
		// guard entry stays self-describing).
		macs := [2]uint64{ge.curMAC, ge.prevMAC}
		ctrs := [2]uint32{ge.curCtr, ge.prevCtr}
		gens := [2]uint32{ge.curGen, ge.prevGen}
		for si := 0; si < 2; si++ {
			if ctrs[si] == 0 {
				continue
			}
			p := ctrs[si] & 1
			if !slotRead[p] {
				d, t, err := s.eng.Read(ts.rec.dataLine(line, p) * nvm.LineSize)
				lat += t
				if err != nil {
					return nvm.Line{}, lat, false, err
				}
				slotData[p] = d
				slotRead[p] = true
			}
			w := ctrWord(e, gens[si], ctrs[si])
			if eng.MAC(ctrenc.DomainTenant, line, w, slotData[p][:]) == macs[si] {
				out = eng.Decrypt(line, w, (*[nvm.LineSize]byte)(&slotData[p]))
				return s.finishRead(ts, line, out, lat, e, curEpoch, rewrite)
			}
		}
	}
	ts.integrityFails.Inc()
	return nvm.Line{}, lat, false, &IntegrityError{Tenant: ts.rec.ID, Line: line}
}

// finishRead applies the lazy-rotation write-back when the line matched
// under a stale epoch.
func (s *Service) finishRead(ts *tenantState, line uint64, out nvm.Line, lat sim.Time, matched, cur uint32, rewrite bool) (nvm.Line, sim.Time, bool, error) {
	if matched == cur || !rewrite {
		return out, lat, false, nil
	}
	t, err := s.writeLine(ts, line, &out, cur)
	lat += t
	if err != nil {
		return nvm.Line{}, lat, false, err
	}
	ts.rotatedLines.Inc()
	return out, lat, true, nil
}

// --- device-plane passthroughs ---------------------------------------------

// DeviceInfo describes the underlying device.
func (s *Service) DeviceInfo() device.Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Info()
}

// Down reports whether the underlying device is in the post-crash state.
func (s *Service) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Down()
}

// Flush is the device-wide durability barrier.
func (s *Service) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Flush()
}

// Crash cuts power across the whole device.
func (s *Service) Crash() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Crash()
}

// Recover rebuilds the device after a crash, drops every volatile tenant
// cache (the guard cache may be ahead of or behind the recovered image)
// and reloads the registry from the device — the tenant layer's analogue
// of a reboot. Quota windows and rotation cursors restart; the rotation
// protocol is built so that restarting the sweep from zero is safe.
func (s *Service) Recover() (*device.RecoveryReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.eng.Recover()
	if err != nil {
		return rep, err
	}
	if err := s.load(); err != nil {
		return rep, err
	}
	return rep, nil
}

// VerifyAll re-verifies the device's own integrity protection across the
// full physical image (registry, guard tables and tenant ciphertext all
// live under it).
func (s *Service) VerifyAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.VerifyAll()
}

// DeviceSnapshot merges the device's per-shard telemetry registries.
func (s *Service) DeviceSnapshot() *telemetry.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Snapshot()
}

// Snapshot returns tenant id's metric registry snapshot (empty when
// telemetry is disabled).
func (s *Service) Snapshot(id uint32) (*telemetry.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if ts.reg == nil {
		return &telemetry.Snapshot{}, nil
	}
	return ts.reg.Snapshot(), nil
}

// Close marks the service closed. The engine stays with its owner.
func (s *Service) Close() error { return nil }
