package metacache

import (
	"testing"

	"soteria/internal/config"
)

// allocSink keeps lookups observable so the compiler cannot elide them.
var allocSink uint64

// TestLookupHitZeroAllocs pins the warm-cache hit path at zero heap
// allocations per lookup: the flat set-indexed backing hands out a
// pointer into the resident line array, so a hit must touch no
// allocator at all. A regression here means the backing regrew per-entry
// heap boxes.
func TestLookupHitZeroAllocs(t *testing.T) {
	m, err := New(config.CacheConfig{SizeBytes: 64 * config.BlockSize, Ways: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]uint64, 16)
	for i := range addrs {
		addrs[i] = uint64(i) * config.BlockSize
		m.Insert(addrs[i], Block{Kind: KindCounter, Level: 1, Index: uint64(i)}, false)
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		b, ok := m.Lookup(addrs[i%len(addrs)])
		if !ok {
			t.Fatal("warm lookup missed")
		}
		allocSink += b.Index
		i++
	})
	if avg != 0 {
		t.Fatalf("Cache.Lookup hit allocates %.2f objects/op, want 0", avg)
	}
}
