package metacache

import (
	"fmt"

	"soteria/internal/ctrenc"
	"soteria/internal/sim"
)

// Checkpoint serializes the cache image — every (set, way) line with its
// decoded payload, the LRU tick, and the statistics — in flat array order,
// which is already deterministic.
func (m *Cache) Checkpoint(w *sim.SnapW) {
	w.U32(uint32(len(m.lines)))
	w.U32(uint32(m.ways))
	w.U64(m.tick)

	w.U64(m.cs.Hits)
	w.U64(m.cs.Misses)
	w.U64(m.cs.Evictions)
	w.U64(m.cs.Writebacks)
	w.U64(m.st.DirtyTreeEvictions)
	counts := m.st.EvictionsByLevel.Counts()
	w.U32(uint32(len(counts)))
	for _, c := range counts {
		w.U64(c)
	}

	for i := range m.lines {
		l := &m.lines[i]
		w.Bool(l.valid)
		if !l.valid {
			continue
		}
		w.Bool(l.dirty)
		w.U64(l.tag)
		w.U64(l.lru)
		b := &l.block
		w.U8(uint8(b.Kind))
		w.I64(int64(b.Level))
		w.U64(b.Index)
		w.U64(b.Counter.Major)
		w.Raw(b.Counter.Minors[:])
		w.U64(b.Counter.MAC)
		for _, c := range b.Node.Counters {
			w.U64(c)
		}
		w.U64(b.Node.MAC)
		w.Raw(b.Raw[:])
		for _, u := range b.UpdatesPerSlot {
			w.U32(u)
		}
	}
}

// Restore loads a Checkpoint written by a cache of identical geometry.
func (m *Cache) Restore(r *sim.SnapR) error {
	if n := r.U32(); int(n) != len(m.lines) {
		return fmt.Errorf("metacache: checkpoint has %d slots, cache has %d", n, len(m.lines))
	}
	if wys := r.U32(); int(wys) != m.ways {
		return fmt.Errorf("metacache: checkpoint ways %d, cache has %d", wys, m.ways)
	}
	m.tick = r.U64()

	m.cs.Hits = r.U64()
	m.cs.Misses = r.U64()
	m.cs.Evictions = r.U64()
	m.cs.Writebacks = r.U64()
	m.st.DirtyTreeEvictions = r.U64()
	nBuckets := r.Count(8)
	if r.Err() != nil {
		return r.Err()
	}
	counts := make([]uint64, nBuckets)
	for i := range counts {
		counts[i] = r.U64()
	}
	if r.Err() != nil {
		return r.Err()
	}
	if err := m.st.EvictionsByLevel.SetCounts(counts); err != nil {
		return err
	}

	for i := range m.lines {
		l := &m.lines[i]
		if !r.Bool() {
			*l = line{}
			continue
		}
		l.valid = true
		l.dirty = r.Bool()
		l.tag = r.U64()
		l.lru = r.U64()
		b := &l.block
		b.Kind = Kind(r.U8())
		b.Level = int(r.I64())
		b.Index = r.U64()
		b.Counter.Major = r.U64()
		copy(b.Counter.Minors[:], r.Raw(ctrenc.CountersPerBlock))
		b.Counter.MAC = r.U64()
		for j := range b.Node.Counters {
			b.Node.Counters[j] = r.U64()
		}
		b.Node.MAC = r.U64()
		copy(b.Raw[:], r.Raw(len(b.Raw)))
		for j := range b.UpdatesPerSlot {
			b.UpdatesPerSlot[j] = r.U32()
		}
		if r.Err() != nil {
			return r.Err()
		}
	}
	return r.Err()
}
