package metacache

import (
	"testing"

	"soteria/internal/config"
)

func newMC(t *testing.T) *Cache {
	t.Helper()
	// 2 sets x 2 ways.
	m, err := New(config.CacheConfig{SizeBytes: 256, Ways: 2, LatencyCycles: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestKindStrings(t *testing.T) {
	if KindCounter.String() != "counter" || KindNode.String() != "node" ||
		KindMAC.String() != "mac" || Kind(0).String() != "?" {
		t.Fatal("kind strings wrong")
	}
}

func TestEvictionHistogramOnlyCountsDirtyTreeBlocks(t *testing.T) {
	m := newMC(t)
	// Fill set 0 (addresses stride = sets*64 = 128).
	m.Insert(0, Block{Kind: KindCounter, Level: 1}, true)
	m.Insert(128, Block{Kind: KindNode, Level: 2}, true)
	// Evict the counter block (LRU).
	if _, has := m.Insert(256, Block{Kind: KindMAC}, false); !has {
		t.Fatal("no eviction")
	}
	st := m.Stats()
	if st.DirtyTreeEvictions != 1 || st.EvictionsByLevel.Count(1) != 1 {
		t.Fatalf("histogram %v, dirty %d", st.EvictionsByLevel, st.DirtyTreeEvictions)
	}
	// Evict the node (dirty, level 2).
	m.Insert(384, Block{Kind: KindMAC}, false)
	if m.Stats().EvictionsByLevel.Count(2) != 1 {
		t.Fatal("level-2 eviction not histogrammed")
	}
	// Clean MAC eviction must not count.
	m.Insert(512, Block{Kind: KindMAC}, false)
	if m.Stats().DirtyTreeEvictions != 2 {
		t.Fatal("MAC eviction counted as tree eviction")
	}
}

func TestSlotOfMatchesSetWay(t *testing.T) {
	m := newMC(t)
	m.Insert(64, Block{Kind: KindCounter, Level: 1}, false) // set 1
	slot := m.SlotOf(64)
	if slot < 0 || slot >= m.Slots() {
		t.Fatalf("slot %d out of range %d", slot, m.Slots())
	}
	// Set 1, first way -> slot = set*ways + way = 2.
	if slot != 2 {
		t.Fatalf("slot = %d, want 2", slot)
	}
	if m.SlotOf(192) != -1 {
		t.Fatal("absent block has a slot")
	}
	if m.Slots() != 4 {
		t.Fatalf("slots = %d", m.Slots())
	}
}

func TestDirtyLifecycle(t *testing.T) {
	m := newMC(t)
	m.Insert(0, Block{Kind: KindCounter, Level: 1, UpdatesPerSlot: [64]uint32{}}, false)
	if len(m.DirtyEntries()) != 0 {
		t.Fatal("clean insert is dirty")
	}
	if !m.MarkDirty(0) {
		t.Fatal("mark failed")
	}
	if len(m.DirtyEntries()) != 1 {
		t.Fatal("dirty not listed")
	}
	m.CleanLine(0)
	if len(m.DirtyEntries()) != 0 {
		t.Fatal("clean failed")
	}
	b, ok := m.Peek(0)
	if !ok || b.Kind != KindCounter {
		t.Fatal("peek failed")
	}
	if m.Len() != 1 {
		t.Fatal("len wrong")
	}
	dropped := m.DropAll()
	if len(dropped) != 0 { // it was clean
		t.Fatal("clean drop returned entries")
	}
	if m.Len() != 0 {
		t.Fatal("DropAll left residents")
	}
}

func TestInvalidate(t *testing.T) {
	m := newMC(t)
	m.Insert(0, Block{Kind: KindNode, Level: 3}, true)
	e, ok := m.Invalidate(0)
	if !ok || !e.Dirty || e.Value.Level != 3 {
		t.Fatalf("invalidate: %+v %v", e, ok)
	}
	if _, ok := m.Lookup(0); ok {
		t.Fatal("still resident")
	}
}
