package metacache

import (
	"fmt"
	"math/rand"
	"testing"

	"soteria/internal/config"
	"soteria/internal/telemetry"
)

// refLine is one line of the reference model.
type refLine struct {
	valid bool
	dirty bool
	addr  uint64
	lru   uint64
	block Block
}

// refCache is a deliberately naive re-implementation of the metadata
// cache's contract: plain per-set slices, linear scans, explicit LRU
// timestamps. It mirrors the documented semantics of internal/cache
// (true-LRU, write-back, replace-in-place on re-insert) without sharing
// any code with it, so the differential test below can catch a divergence
// in either implementation.
type refCache struct {
	sets     [][]refLine
	setMask  uint64
	lineBits uint
	tick     uint64

	hits, misses, evictions, writebacks uint64
	dirtyTreeEvictions                  uint64
	invalidates, dropAlls               uint64
	hitsByLevel, dirtyEvByLevel         map[int]uint64
}

func newRefCache(cfg config.CacheConfig) *refCache {
	nsets := cfg.Sets()
	r := &refCache{
		sets:           make([][]refLine, nsets),
		setMask:        uint64(nsets - 1),
		hitsByLevel:    map[int]uint64{},
		dirtyEvByLevel: map[int]uint64{},
	}
	for s := config.BlockSize; s > 1; s >>= 1 {
		r.lineBits++
	}
	for i := range r.sets {
		r.sets[i] = make([]refLine, cfg.Ways)
	}
	return r
}

func (r *refCache) set(addr uint64) []refLine {
	return r.sets[(addr>>r.lineBits)&r.setMask]
}

func (r *refCache) find(addr uint64) *refLine {
	base := addr &^ (config.BlockSize - 1)
	for i, l := range r.set(addr) {
		if l.valid && l.addr == base {
			return &r.set(addr)[i]
		}
	}
	return nil
}

func (r *refCache) lookup(addr uint64) (Block, bool) {
	if l := r.find(addr); l != nil {
		r.tick++
		l.lru = r.tick
		r.hits++
		r.hitsByLevel[l.block.Level]++
		return l.block, true
	}
	r.misses++
	return Block{}, false
}

func (r *refCache) insert(addr uint64, b Block, dirty bool) (evAddr uint64, evDirty bool, hasEvict bool) {
	r.tick++
	base := addr &^ (config.BlockSize - 1)
	if l := r.find(addr); l != nil {
		l.block = b
		l.dirty = l.dirty || dirty
		l.lru = r.tick
		return 0, false, false
	}
	ws := r.set(addr)
	victim := -1
	for i := range ws {
		if !ws[i].valid {
			victim = i
			break
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(ws); i++ {
			if ws[i].lru < ws[victim].lru {
				victim = i
			}
		}
		evAddr, evDirty, hasEvict = ws[victim].addr, ws[victim].dirty, true
		r.evictions++
		if evDirty {
			r.writebacks++
		}
		if evDirty && ws[victim].block.Kind != KindMAC {
			r.dirtyTreeEvictions++
			r.dirtyEvByLevel[ws[victim].block.Level]++
		}
	}
	ws[victim] = refLine{valid: true, dirty: dirty, addr: base, lru: r.tick, block: b}
	return evAddr, evDirty, hasEvict
}

func (r *refCache) markDirty(addr uint64) bool {
	if l := r.find(addr); l != nil {
		l.dirty = true
		return true
	}
	return false
}

func (r *refCache) cleanLine(addr uint64) {
	if l := r.find(addr); l != nil {
		l.dirty = false
	}
}

func (r *refCache) invalidate(addr uint64) bool {
	if l := r.find(addr); l != nil {
		*l = refLine{}
		r.invalidates++
		return true
	}
	return false
}

func (r *refCache) dropAll() (dirty int) {
	for s := range r.sets {
		for w := range r.sets[s] {
			if r.sets[s][w].valid && r.sets[s][w].dirty {
				dirty++
			}
			r.sets[s][w] = refLine{}
		}
	}
	r.dropAlls++
	return dirty
}

func (r *refCache) len() int {
	n := 0
	for s := range r.sets {
		for w := range r.sets[s] {
			if r.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// randomBlock builds a metadata block whose kind/level distribution covers
// MAC lines (never counted as dirty tree evictions) and tree levels
// 1..levels.
func randomBlock(rng *rand.Rand, levels int, index uint64) Block {
	switch rng.Intn(4) {
	case 0:
		return Block{Kind: KindMAC, Level: 0, Index: index}
	case 1:
		return Block{Kind: KindCounter, Level: 1, Index: index}
	default:
		return Block{Kind: KindNode, Level: 2 + rng.Intn(levels-1), Index: index}
	}
}

// TestMetacacheDifferential drives the real metadata cache and the naive
// reference model through the same seeded randomized access sequence and
// demands identical observable behaviour at every step: hit/miss results,
// eviction victims (address, dirty bit, payload kind), residency, the
// legacy statistics, and the telemetry counters.
func TestMetacacheDifferential(t *testing.T) {
	const (
		levels = 5
		ops    = 10_000
	)
	cfg := config.CacheConfig{SizeBytes: 64 * config.BlockSize, Ways: 4, LatencyCycles: 1}
	for _, seed := range []int64{1, 2, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			m, err := New(cfg, levels)
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			m.AttachTelemetry(reg)
			ref := newRefCache(cfg)
			rng := rand.New(rand.NewSource(seed))

			// 4x the line capacity so sets stay under eviction pressure.
			addr := func() uint64 {
				return uint64(rng.Intn(4*64)) * config.BlockSize
			}

			for i := 0; i < ops; i++ {
				switch op := rng.Intn(100); {
				case op < 40: // lookup
					a := addr()
					gb, gok := m.Lookup(a)
					wb, wok := ref.lookup(a)
					if gok != wok {
						t.Fatalf("op %d: Lookup(%#x) hit=%v, reference says %v", i, a, gok, wok)
					}
					if gok && (gb.Kind != wb.Kind || gb.Level != wb.Level || gb.Index != wb.Index) {
						t.Fatalf("op %d: Lookup(%#x) payload %+v != reference %+v", i, a, gb, wb)
					}
				case op < 75: // insert
					a := addr()
					b := randomBlock(rng, levels, uint64(i))
					dirty := rng.Intn(2) == 0
					ev, has := m.Insert(a, b, dirty)
					wAddr, wDirty, wHas := ref.insert(a, b, dirty)
					if has != wHas {
						t.Fatalf("op %d: Insert(%#x) evicted=%v, reference says %v", i, a, has, wHas)
					}
					if has && (ev.Addr != wAddr || ev.Dirty != wDirty) {
						t.Fatalf("op %d: Insert(%#x) evicted (%#x dirty=%v), reference (%#x dirty=%v)",
							i, a, ev.Addr, ev.Dirty, wAddr, wDirty)
					}
				case op < 85: // mark dirty
					a := addr()
					if got, want := m.MarkDirty(a), ref.markDirty(a); got != want {
						t.Fatalf("op %d: MarkDirty(%#x) = %v, reference %v", i, a, got, want)
					}
				case op < 92: // clean (counts a writeback in telemetry)
					a := addr()
					m.CleanLine(a)
					ref.cleanLine(a)
				case op < 99: // invalidate
					a := addr()
					_, got := m.Invalidate(a)
					if want := ref.invalidate(a); got != want {
						t.Fatalf("op %d: Invalidate(%#x) = %v, reference %v", i, a, got, want)
					}
				default: // rare power loss
					got := len(m.DropAll())
					if want := ref.dropAll(); got != want {
						t.Fatalf("op %d: DropAll dropped %d dirty lines, reference %d", i, got, want)
					}
				}
				if m.Len() != ref.len() {
					t.Fatalf("op %d: residency %d != reference %d", i, m.Len(), ref.len())
				}
			}

			st := m.Stats()
			stChecks := []struct {
				name      string
				got, want uint64
			}{
				{"hits", st.Hits, ref.hits},
				{"misses", st.Misses, ref.misses},
				{"evictions", st.Evictions, ref.evictions},
				{"writebacks", st.Writebacks, ref.writebacks},
				{"dirty tree evictions", st.DirtyTreeEvictions, ref.dirtyTreeEvictions},
			}
			for _, c := range stChecks {
				if c.got != c.want {
					t.Errorf("Stats %s = %d, reference %d", c.name, c.got, c.want)
				}
			}
			for l := 0; l <= levels; l++ {
				if got, want := uint64(st.EvictionsByLevel.Count(l)), ref.dirtyEvByLevel[l]; got != want {
					t.Errorf("EvictionsByLevel[%d] = %d, reference %d", l, got, want)
				}
			}

			snap := reg.Snapshot()
			telChecks := map[string]uint64{
				"metacache_hits_total":                 ref.hits,
				"metacache_misses_total":               ref.misses,
				"metacache_evictions_total":            ref.evictions,
				"metacache_dirty_tree_evictions_total": ref.dirtyTreeEvictions,
				"metacache_invalidates_total":          ref.invalidates,
				"metacache_dropall_total":              ref.dropAlls,
			}
			for l := 0; l <= levels; l++ {
				telChecks[fmt.Sprintf("metacache_hits_level_%d_total", l)] = ref.hitsByLevel[l]
				telChecks[fmt.Sprintf("metacache_dirty_evictions_level_%d_total", l)] = ref.dirtyEvByLevel[l]
			}
			for name, want := range telChecks {
				if got := snap.Counters[name]; got != want {
					t.Errorf("telemetry %s = %d, reference %d", name, got, want)
				}
			}
		})
	}
}
