// Package metacache implements the security-metadata cache with the
// payload types and the per-level eviction statistics that drive Figures 4
// and 10c of the paper. The metadata cache is the volatile on-chip
// structure (Table 3: 512 kB, 8-way) holding decoded counter blocks, ToC
// nodes and packed data-MAC lines; everything in it is trusted (it is
// inside the processor), and everything in it is lost at a crash.
//
// Unlike the data hierarchy (internal/cache), the metadata cache sits on
// the controller's per-access critical path, so its backing store is a
// single flat array of sets×ways lines — direct set/way indexing, inline
// LRU stamps, no per-entry heap boxes — while preserving the generic
// cache's observable semantics exactly (the differential test drives both
// against the same reference model). It reuses internal/cache's Stats and
// Entry types so callers are unchanged.
package metacache

import (
	"fmt"

	"soteria/internal/cache"
	"soteria/internal/config"
	"soteria/internal/ctrenc"
	"soteria/internal/itree"
	"soteria/internal/nvm"
	"soteria/internal/stats"
	"soteria/internal/telemetry"
)

// Kind labels what a cached metadata block is.
type Kind int

// Metadata block kinds.
const (
	// KindCounter is a leaf split-counter block (tree level 1).
	KindCounter Kind = iota + 1
	// KindNode is an intermediate ToC node (tree level >= 2).
	KindNode
	// KindMAC is a packed line of eight data MACs. MAC lines are
	// cacheable but sit outside the integrity tree (Synergy-style),
	// so they are never cloned and never tracked by the shadow table.
	KindMAC
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindNode:
		return "node"
	case KindMAC:
		return "mac"
	default:
		return "?"
	}
}

// Block is the decoded payload of one metadata cache line.
type Block struct {
	Kind  Kind
	Level int    // 1 for counters, >=2 for nodes, 0 for MAC lines
	Index uint64 // node index within its level, or MAC line index
	// Counter holds the decoded split-counter block when Kind ==
	// KindCounter.
	Counter ctrenc.CounterBlock
	// Node holds the decoded ToC node when Kind == KindNode.
	Node itree.Node
	// Raw holds the packed MAC line when Kind == KindMAC.
	Raw nvm.Line
	// UpdatesPerSlot counts in-cache minor-counter increments since the
	// block was last written back; the Osiris bound forces a write-back
	// when any slot reaches the recovery limit. Only used for
	// KindCounter. A fixed array (not a slice) so a decoded block never
	// drags a heap allocation into the cache line.
	UpdatesPerSlot [ctrenc.CountersPerBlock]uint32
}

// Stats aggregates metadata-cache behaviour for the evaluation figures.
type Stats struct {
	cache.Stats
	// EvictionsByLevel histograms dirty tree evictions per level
	// (bucket i = level i; bucket 0 = MAC lines), the data behind
	// Fig 4.
	EvictionsByLevel *stats.Histogram
	// DirtyTreeEvictions counts dirty counter/node evictions only
	// (the numerator of Fig 10c).
	DirtyTreeEvictions uint64
}

// telemetryHooks holds the cache's metric handles. All fields are nil
// until AttachTelemetry is called, and nil handles are no-ops, so an
// unattached cache pays one nil check per event.
type telemetryHooks struct {
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	evictions   *telemetry.Counter
	writebacks  *telemetry.Counter
	hitsByLevel []*telemetry.Counter // bucket 0 = MAC lines, i = tree level i
	evByLevel   []*telemetry.Counter // dirty tree evictions per level
	dirtyEvict  *telemetry.Counter
	invalidates *telemetry.Counter
	dropAll     *telemetry.Counter
}

// line is one (set, way) slot of the flat backing array.
type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
	block Block
}

// Cache is the metadata cache: set-associative, write-back, true-LRU,
// backed by one flat array indexed as lines[set*ways+way].
type Cache struct {
	lines    []line
	ways     int
	setMask  uint64
	setBits  uint
	lineBits uint
	tick     uint64

	cs     cache.Stats
	levels int
	st     Stats
	tel    telemetryHooks
}

// AttachTelemetry registers the cache's metrics on r (nil detaches). The
// per-level series mirror Fig 4: bucket 0 is MAC lines, bucket i is tree
// level i.
func (m *Cache) AttachTelemetry(r *telemetry.Registry) {
	if r == nil {
		m.tel = telemetryHooks{}
		return
	}
	m.tel = telemetryHooks{
		hits:        r.Counter("metacache_hits_total"),
		misses:      r.Counter("metacache_misses_total"),
		evictions:   r.Counter("metacache_evictions_total"),
		writebacks:  r.Counter("metacache_writebacks_total"),
		dirtyEvict:  r.Counter("metacache_dirty_tree_evictions_total"),
		invalidates: r.Counter("metacache_invalidates_total"),
		dropAll:     r.Counter("metacache_dropall_total"),
	}
	m.tel.hitsByLevel = make([]*telemetry.Counter, m.levels+1)
	m.tel.evByLevel = make([]*telemetry.Counter, m.levels+1)
	for l := 0; l <= m.levels; l++ {
		m.tel.hitsByLevel[l] = r.Counter(fmt.Sprintf("metacache_hits_level_%d_total", l))
		m.tel.evByLevel[l] = r.Counter(fmt.Sprintf("metacache_dirty_evictions_level_%d_total", l))
	}
}

// noteLevel increments a per-level counter, tolerating out-of-range
// levels (defensive: MAC lines carry level 0).
func noteLevel(ctrs []*telemetry.Counter, level int) {
	if level >= 0 && level < len(ctrs) {
		ctrs[level].Inc()
	}
}

// New constructs a metadata cache from its configuration; levels is the
// number of stored tree levels (for the eviction histogram).
func New(cfg config.CacheConfig, levels int) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	m := &Cache{
		lines:   make([]line, nsets*cfg.Ways),
		ways:    cfg.Ways,
		setMask: uint64(nsets - 1),
		levels:  levels,
		st:      Stats{EvictionsByLevel: stats.NewHistogram(levels + 1)},
	}
	for s := config.BlockSize; s > 1; s >>= 1 {
		m.lineBits++
	}
	for s := nsets; s > 1; s >>= 1 {
		m.setBits++
	}
	return m, nil
}

// index splits addr into its set and tag.
func (m *Cache) index(addr uint64) (set uint64, tag uint64) {
	l := addr >> m.lineBits
	return l & m.setMask, l >> m.setBits
}

// set returns the ways of one set as a subslice of the flat array.
func (m *Cache) set(set uint64) []line {
	base := int(set) * m.ways
	return m.lines[base : base+m.ways]
}

// addrOf reassembles the line-aligned address of a (set, tag) pair.
func (m *Cache) addrOf(set, tag uint64) uint64 {
	return (tag<<m.setBits | set) << m.lineBits
}

// find returns the way index holding addr within its set, or -1.
func (m *Cache) find(ws []line, tag uint64) int {
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return i
		}
	}
	return -1
}

// Lookup probes for the block with the given home address. On a hit it
// refreshes LRU state and returns a pointer to the payload (callers may
// mutate it in place).
func (m *Cache) Lookup(homeAddr uint64) (*Block, bool) {
	set, tag := m.index(homeAddr)
	ws := m.set(set)
	if i := m.find(ws, tag); i >= 0 {
		m.tick++
		ws[i].lru = m.tick
		m.cs.Hits++
		m.tel.hits.Inc()
		noteLevel(m.tel.hitsByLevel, ws[i].block.Level)
		return &ws[i].block, true
	}
	m.cs.Misses++
	m.tel.misses.Inc()
	return nil, false
}

// Peek probes without LRU/statistics side effects.
func (m *Cache) Peek(homeAddr uint64) (*Block, bool) {
	set, tag := m.index(homeAddr)
	ws := m.set(set)
	if i := m.find(ws, tag); i >= 0 {
		return &ws[i].block, true
	}
	return nil, false
}

// MarkDirty marks a resident block dirty.
func (m *Cache) MarkDirty(homeAddr uint64) bool {
	set, tag := m.index(homeAddr)
	ws := m.set(set)
	if i := m.find(ws, tag); i >= 0 {
		ws[i].dirty = true
		return true
	}
	return false
}

// CleanLine clears a resident block's dirty bit after write-back.
func (m *Cache) CleanLine(homeAddr uint64) {
	m.tel.writebacks.Inc()
	set, tag := m.index(homeAddr)
	ws := m.set(set)
	if i := m.find(ws, tag); i >= 0 {
		ws[i].dirty = false
	}
}

// Insert fills the block, returning any evicted victim. Dirty tree
// evictions are histogrammed by level. Inserting a resident address
// replaces its payload in place (dirty bits OR together) and evicts
// nothing.
func (m *Cache) Insert(homeAddr uint64, b Block, dirty bool) (cache.Entry[Block], bool) {
	set, tag := m.index(homeAddr)
	ws := m.set(set)
	m.tick++
	if i := m.find(ws, tag); i >= 0 {
		ws[i].block = b
		ws[i].dirty = ws[i].dirty || dirty
		ws[i].lru = m.tick
		return cache.Entry[Block]{}, false
	}
	victim := -1
	for i := range ws {
		if !ws[i].valid {
			victim = i
			break
		}
	}
	var (
		ev  cache.Entry[Block]
		has bool
	)
	if victim == -1 {
		victim = 0
		for i := 1; i < len(ws); i++ {
			if ws[i].lru < ws[victim].lru {
				victim = i
			}
		}
		ev = cache.Entry[Block]{
			Addr:  m.addrOf(set, ws[victim].tag),
			Dirty: ws[victim].dirty,
			Value: ws[victim].block,
		}
		has = true
		m.cs.Evictions++
		m.tel.evictions.Inc()
		if ws[victim].dirty {
			m.cs.Writebacks++
		}
		if ws[victim].dirty && ws[victim].block.Kind != KindMAC {
			m.st.EvictionsByLevel.Observe(ws[victim].block.Level)
			m.st.DirtyTreeEvictions++
			m.tel.dirtyEvict.Inc()
			noteLevel(m.tel.evByLevel, ws[victim].block.Level)
		}
	}
	ws[victim] = line{valid: true, dirty: dirty, tag: tag, lru: m.tick, block: b}
	return ev, has
}

// Victim predicts what Insert(homeAddr, ...) would evict, without
// changing any cache state: nothing when the address is resident or its
// set has a free way, otherwise the set's LRU line. The secure controller
// uses this to write back a dirty victim *before* the insertion so the
// victim's shadow-table entry stays valid until its contents are durable.
func (m *Cache) Victim(homeAddr uint64) (cache.Entry[Block], bool) {
	set, tag := m.index(homeAddr)
	ws := m.set(set)
	if m.find(ws, tag) >= 0 {
		return cache.Entry[Block]{}, false
	}
	for i := range ws {
		if !ws[i].valid {
			return cache.Entry[Block]{}, false
		}
	}
	victim := 0
	for i := 1; i < len(ws); i++ {
		if ws[i].lru < ws[victim].lru {
			victim = i
		}
	}
	return cache.Entry[Block]{
		Addr:  m.addrOf(set, ws[victim].tag),
		Dirty: ws[victim].dirty,
		Value: ws[victim].block,
	}, true
}

// Touch refreshes a resident block's LRU state (no hit is counted).
func (m *Cache) Touch(homeAddr uint64) {
	set, tag := m.index(homeAddr)
	ws := m.set(set)
	if i := m.find(ws, tag); i >= 0 {
		m.tick++
		ws[i].lru = m.tick
	}
}

// NoteEvictionWriteback records one dirty tree block written back under
// eviction pressure. The controller pre-cleans dirty victims (write-back
// while still resident, then evict clean) for crash safety, so these
// events no longer surface as dirty evictions in Insert; this keeps the
// Fig 4 per-level histogram counting them.
func (m *Cache) NoteEvictionWriteback(level int) {
	m.st.EvictionsByLevel.Observe(level)
	m.st.DirtyTreeEvictions++
	m.tel.dirtyEvict.Inc()
	noteLevel(m.tel.evByLevel, level)
}

// Invalidate drops one line without write-back.
func (m *Cache) Invalidate(homeAddr uint64) (cache.Entry[Block], bool) {
	set, tag := m.index(homeAddr)
	ws := m.set(set)
	if i := m.find(ws, tag); i >= 0 {
		e := cache.Entry[Block]{
			Addr:  homeAddr &^ (config.BlockSize - 1),
			Dirty: ws[i].dirty,
			Value: ws[i].block,
		}
		ws[i] = line{}
		m.tel.invalidates.Inc()
		return e, true
	}
	return cache.Entry[Block]{}, false
}

// DropAll models power loss: every line vanishes; the dirty ones are
// returned so tests can reason about what recovery must reconstruct.
func (m *Cache) DropAll() []cache.Entry[Block] {
	m.tel.dropAll.Inc()
	var dirty []cache.Entry[Block]
	for i := range m.lines {
		l := &m.lines[i]
		if l.valid && l.dirty {
			set := uint64(i / m.ways)
			dirty = append(dirty, cache.Entry[Block]{
				Addr:  m.addrOf(set, l.tag),
				Dirty: true,
				Value: l.block,
			})
		}
		*l = line{}
	}
	return dirty
}

// IsDirty reports whether the block at homeAddr is resident and dirty,
// without allocating or touching LRU state.
func (m *Cache) IsDirty(homeAddr uint64) bool {
	set, tag := m.index(homeAddr)
	ws := m.set(set)
	i := m.find(ws, tag)
	return i >= 0 && ws[i].dirty
}

// DirtyEntries lists resident dirty blocks, in set order.
func (m *Cache) DirtyEntries() []cache.Entry[Block] {
	var out []cache.Entry[Block]
	for i := range m.lines {
		l := &m.lines[i]
		if l.valid && l.dirty {
			set := uint64(i / m.ways)
			out = append(out, cache.Entry[Block]{
				Addr:  m.addrOf(set, l.tag),
				Dirty: true,
				Value: l.block,
			})
		}
	}
	return out
}

// SlotOf returns the shadow-table slot (set*ways + way) of a resident
// block, or -1. The Anubis shadow table has exactly one entry per cache
// way.
func (m *Cache) SlotOf(homeAddr uint64) int {
	set, tag := m.index(homeAddr)
	ws := m.set(set)
	w := m.find(ws, tag)
	if w < 0 {
		return -1
	}
	return int(set)*m.ways + w
}

// Slots returns the total number of (set, way) slots.
func (m *Cache) Slots() int { return len(m.lines) }

// Stats returns a snapshot of the metadata cache statistics.
func (m *Cache) Stats() Stats {
	s := m.st
	s.Stats = m.cs
	return s
}

// Len returns the number of resident blocks.
func (m *Cache) Len() int {
	n := 0
	for i := range m.lines {
		if m.lines[i].valid {
			n++
		}
	}
	return n
}
