// Package metacache wraps the generic cache with the security-metadata
// payload types and the per-level eviction statistics that drive Figures 4
// and 10c of the paper. The metadata cache is the volatile on-chip
// structure (Table 3: 512 kB, 8-way) holding decoded counter blocks, ToC
// nodes and packed data-MAC lines; everything in it is trusted (it is
// inside the processor), and everything in it is lost at a crash.
package metacache

import (
	"fmt"

	"soteria/internal/cache"
	"soteria/internal/config"
	"soteria/internal/ctrenc"
	"soteria/internal/itree"
	"soteria/internal/nvm"
	"soteria/internal/stats"
	"soteria/internal/telemetry"
)

// Kind labels what a cached metadata block is.
type Kind int

// Metadata block kinds.
const (
	// KindCounter is a leaf split-counter block (tree level 1).
	KindCounter Kind = iota + 1
	// KindNode is an intermediate ToC node (tree level >= 2).
	KindNode
	// KindMAC is a packed line of eight data MACs. MAC lines are
	// cacheable but sit outside the integrity tree (Synergy-style),
	// so they are never cloned and never tracked by the shadow table.
	KindMAC
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindNode:
		return "node"
	case KindMAC:
		return "mac"
	default:
		return "?"
	}
}

// Block is the decoded payload of one metadata cache line.
type Block struct {
	Kind  Kind
	Level int    // 1 for counters, >=2 for nodes, 0 for MAC lines
	Index uint64 // node index within its level, or MAC line index
	// Counter holds the decoded split-counter block when Kind ==
	// KindCounter.
	Counter ctrenc.CounterBlock
	// Node holds the decoded ToC node when Kind == KindNode.
	Node itree.Node
	// Raw holds the packed MAC line when Kind == KindMAC.
	Raw nvm.Line
	// UpdatesPerSlot counts in-cache minor-counter increments since the
	// block was last written back; the Osiris bound forces a write-back
	// when any slot reaches the recovery limit. Only used for
	// KindCounter.
	UpdatesPerSlot []uint32
}

// Stats aggregates metadata-cache behaviour for the evaluation figures.
type Stats struct {
	cache.Stats
	// EvictionsByLevel histograms dirty tree evictions per level
	// (bucket i = level i; bucket 0 = MAC lines), the data behind
	// Fig 4.
	EvictionsByLevel *stats.Histogram
	// DirtyTreeEvictions counts dirty counter/node evictions only
	// (the numerator of Fig 10c).
	DirtyTreeEvictions uint64
}

// telemetryHooks holds the cache's metric handles. All fields are nil
// until AttachTelemetry is called, and nil handles are no-ops, so an
// unattached cache pays one nil check per event.
type telemetryHooks struct {
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	evictions   *telemetry.Counter
	writebacks  *telemetry.Counter
	hitsByLevel []*telemetry.Counter // bucket 0 = MAC lines, i = tree level i
	evByLevel   []*telemetry.Counter // dirty tree evictions per level
	dirtyEvict  *telemetry.Counter
	invalidates *telemetry.Counter
	dropAll     *telemetry.Counter
}

// Cache is the metadata cache.
type Cache struct {
	c      *cache.Cache[Block]
	levels int
	st     Stats
	tel    telemetryHooks
}

// AttachTelemetry registers the cache's metrics on r (nil detaches). The
// per-level series mirror Fig 4: bucket 0 is MAC lines, bucket i is tree
// level i.
func (m *Cache) AttachTelemetry(r *telemetry.Registry) {
	if r == nil {
		m.tel = telemetryHooks{}
		return
	}
	m.tel = telemetryHooks{
		hits:        r.Counter("metacache_hits_total"),
		misses:      r.Counter("metacache_misses_total"),
		evictions:   r.Counter("metacache_evictions_total"),
		writebacks:  r.Counter("metacache_writebacks_total"),
		dirtyEvict:  r.Counter("metacache_dirty_tree_evictions_total"),
		invalidates: r.Counter("metacache_invalidates_total"),
		dropAll:     r.Counter("metacache_dropall_total"),
	}
	m.tel.hitsByLevel = make([]*telemetry.Counter, m.levels+1)
	m.tel.evByLevel = make([]*telemetry.Counter, m.levels+1)
	for l := 0; l <= m.levels; l++ {
		m.tel.hitsByLevel[l] = r.Counter(fmt.Sprintf("metacache_hits_level_%d_total", l))
		m.tel.evByLevel[l] = r.Counter(fmt.Sprintf("metacache_dirty_evictions_level_%d_total", l))
	}
}

// noteLevel increments a per-level counter, tolerating out-of-range
// levels (defensive: MAC lines carry level 0).
func noteLevel(ctrs []*telemetry.Counter, level int) {
	if level >= 0 && level < len(ctrs) {
		ctrs[level].Inc()
	}
}

// New constructs a metadata cache from its configuration; levels is the
// number of stored tree levels (for the eviction histogram).
func New(cfg config.CacheConfig, levels int) (*Cache, error) {
	c, err := cache.New[Block](cfg)
	if err != nil {
		return nil, err
	}
	return &Cache{
		c:      c,
		levels: levels,
		st:     Stats{EvictionsByLevel: stats.NewHistogram(levels + 1)},
	}, nil
}

// Lookup probes for the block with the given home address.
func (m *Cache) Lookup(homeAddr uint64) (*Block, bool) {
	b, ok := m.c.Lookup(homeAddr)
	if ok {
		m.tel.hits.Inc()
		noteLevel(m.tel.hitsByLevel, b.Level)
	} else {
		m.tel.misses.Inc()
	}
	return b, ok
}

// Peek probes without LRU/statistics side effects.
func (m *Cache) Peek(homeAddr uint64) (*Block, bool) { return m.c.Peek(homeAddr) }

// MarkDirty marks a resident block dirty.
func (m *Cache) MarkDirty(homeAddr uint64) bool { return m.c.MarkDirty(homeAddr) }

// CleanLine clears a resident block's dirty bit after write-back.
func (m *Cache) CleanLine(homeAddr uint64) {
	m.tel.writebacks.Inc()
	m.c.CleanLine(homeAddr)
}

// Insert fills the block, returning any evicted victim. Dirty tree
// evictions are histogrammed by level.
func (m *Cache) Insert(homeAddr uint64, b Block, dirty bool) (cache.Entry[Block], bool) {
	ev, has := m.c.Insert(homeAddr, b, dirty)
	if has {
		m.tel.evictions.Inc()
	}
	if has && ev.Dirty && ev.Value.Kind != KindMAC {
		m.st.EvictionsByLevel.Observe(ev.Value.Level)
		m.st.DirtyTreeEvictions++
		m.tel.dirtyEvict.Inc()
		noteLevel(m.tel.evByLevel, ev.Value.Level)
	}
	return ev, has
}

// Victim predicts what Insert(homeAddr, ...) would evict, without
// changing any cache state.
func (m *Cache) Victim(homeAddr uint64) (cache.Entry[Block], bool) {
	return m.c.Victim(homeAddr)
}

// Touch refreshes a resident block's LRU state (no hit is counted).
func (m *Cache) Touch(homeAddr uint64) { m.c.Touch(homeAddr) }

// NoteEvictionWriteback records one dirty tree block written back under
// eviction pressure. The controller pre-cleans dirty victims (write-back
// while still resident, then evict clean) for crash safety, so these
// events no longer surface as dirty evictions in Insert; this keeps the
// Fig 4 per-level histogram counting them.
func (m *Cache) NoteEvictionWriteback(level int) {
	m.st.EvictionsByLevel.Observe(level)
	m.st.DirtyTreeEvictions++
	m.tel.dirtyEvict.Inc()
	noteLevel(m.tel.evByLevel, level)
}

// Invalidate drops one line without write-back.
func (m *Cache) Invalidate(homeAddr uint64) (cache.Entry[Block], bool) {
	e, ok := m.c.Invalidate(homeAddr)
	if ok {
		m.tel.invalidates.Inc()
	}
	return e, ok
}

// DropAll models power loss: every line vanishes; the dirty ones are
// returned so tests can reason about what recovery must reconstruct.
func (m *Cache) DropAll() []cache.Entry[Block] {
	m.tel.dropAll.Inc()
	return m.c.DropAll()
}

// DirtyEntries lists resident dirty blocks.
func (m *Cache) DirtyEntries() []cache.Entry[Block] { return m.c.DirtyEntries() }

// SlotOf returns the shadow-table slot (set*ways + way) of a resident
// block, or -1. The Anubis shadow table has exactly one entry per cache
// way.
func (m *Cache) SlotOf(homeAddr uint64) int {
	w := m.c.WayOf(homeAddr)
	if w < 0 {
		return -1
	}
	return m.c.SetOf(homeAddr)*m.c.Ways() + w
}

// Slots returns the total number of (set, way) slots.
func (m *Cache) Slots() int { return m.c.Sets() * m.c.Ways() }

// Stats returns a snapshot of the metadata cache statistics.
func (m *Cache) Stats() Stats {
	s := m.st
	s.Stats = m.c.Stats()
	return s
}

// Len returns the number of resident blocks.
func (m *Cache) Len() int { return m.c.Len() }
