package cache

import (
	"testing"
	"testing/quick"

	"soteria/internal/config"
)

func tiny() config.CacheConfig {
	// 4 sets x 2 ways x 64B = 512B
	return config.CacheConfig{SizeBytes: 512, Ways: 2, LatencyCycles: 1}
}

func TestBasicHitMiss(t *testing.T) {
	c := MustNew[int](tiny())
	if _, ok := c.Lookup(0); ok {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0, 42, false)
	v, ok := c.Lookup(0)
	if !ok || *v != 42 {
		t.Fatalf("lookup after insert: %v %v", v, ok)
	}
	// Same line, different byte offset.
	v, ok = c.Lookup(63)
	if !ok || *v != 42 {
		t.Fatal("offset within line missed")
	}
	if _, ok := c.Lookup(64); ok {
		t.Fatal("adjacent line hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew[string](tiny()) // 4 sets, 2 ways
	// Three lines mapping to set 0: line addresses 0, 256, 512 (4 sets * 64 = 256 stride).
	c.Insert(0, "a", false)
	c.Insert(256, "b", false)
	c.Lookup(0) // make "a" most recently used
	ev, has := c.Insert(512, "c", false)
	if !has {
		t.Fatal("no eviction from full set")
	}
	if ev.Addr != 256 || ev.Value != "b" {
		t.Fatalf("evicted %+v, want line 256 (b)", ev)
	}
	if !c.Contains(0) || !c.Contains(512) || c.Contains(256) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := MustNew[int](tiny())
	c.Insert(0, 1, true)
	c.Insert(256, 2, false)
	ev, has := c.Insert(512, 3, false)
	if !has || !ev.Dirty || ev.Addr != 0 {
		t.Fatalf("dirty eviction wrong: %+v %v", ev, has)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatal("writeback not counted")
	}
}

func TestInsertExistingMergesDirty(t *testing.T) {
	c := MustNew[int](tiny())
	c.Insert(0, 1, true)
	if _, has := c.Insert(0, 2, false); has {
		t.Fatal("re-insert evicted something")
	}
	v, _ := c.Peek(0)
	if *v != 2 {
		t.Fatal("payload not replaced")
	}
	e, ok := c.Invalidate(0)
	if !ok || !e.Dirty {
		t.Fatal("dirty bit lost on re-insert")
	}
}

func TestMarkDirtyAndClean(t *testing.T) {
	c := MustNew[int](tiny())
	if c.MarkDirty(0) {
		t.Fatal("marked absent line dirty")
	}
	c.Insert(0, 1, false)
	if !c.MarkDirty(0) {
		t.Fatal("failed to mark resident line")
	}
	if got := c.DirtyEntries(); len(got) != 1 || got[0].Addr != 0 {
		t.Fatalf("dirty entries %v", got)
	}
	c.CleanLine(0)
	if len(c.DirtyEntries()) != 0 {
		t.Fatal("clean line still dirty")
	}
}

func TestDropAllReturnsDirtyOnly(t *testing.T) {
	c := MustNew[int](tiny())
	c.Insert(0, 1, true)
	c.Insert(64, 2, false)
	c.Insert(128, 3, true)
	dirty := c.DropAll()
	if len(dirty) != 2 {
		t.Fatalf("dropped %d dirty lines, want 2", len(dirty))
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty after DropAll")
	}
}

func TestWaySetOf(t *testing.T) {
	c := MustNew[int](tiny())
	c.Insert(256, 7, false) // set 0 (line 4, 4 sets -> set 0)
	if c.SetOf(256) != 0 {
		t.Fatalf("SetOf(256) = %d", c.SetOf(256))
	}
	if w := c.WayOf(256); w != 0 {
		t.Fatalf("WayOf = %d", w)
	}
	if c.WayOf(64) != -1 {
		t.Fatal("WayOf for absent line should be -1")
	}
}

// Property: the cache never holds more lines than its capacity, and a line
// just inserted is always resident.
func TestCapacityInvariant(t *testing.T) {
	cfg := config.CacheConfig{SizeBytes: 2048, Ways: 4, LatencyCycles: 1}
	capacity := cfg.SizeBytes / config.BlockSize
	c := MustNew[uint64](cfg)
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			addr := uint64(a) * config.BlockSize
			c.Insert(addr, addr, a%2 == 0)
			if !c.Contains(addr) {
				return false
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with W ways, any W distinct lines of one set are simultaneously
// resident after being inserted back-to-back (no premature eviction).
func TestFullSetResidency(t *testing.T) {
	cfg := config.CacheConfig{SizeBytes: 4096, Ways: 8, LatencyCycles: 1}
	c := MustNew[int](cfg)
	sets := uint64(cfg.Sets())
	for i := uint64(0); i < 8; i++ {
		c.Insert(i*sets*config.BlockSize, int(i), false)
	}
	for i := uint64(0); i < 8; i++ {
		if !c.Contains(i * sets * config.BlockSize) {
			t.Fatalf("way %d evicted early", i)
		}
	}
}

func TestRejectsBadConfig(t *testing.T) {
	if _, err := New[int](config.CacheConfig{SizeBytes: 100, Ways: 3}); err == nil {
		t.Fatal("bad config accepted")
	}
}
