// Package cache implements the generic set-associative, write-back, LRU
// cache used for every cache in the simulated system: the L1/L2/LLC data
// hierarchy and the on-chip security-metadata cache. The cache is generic
// over its payload so the data hierarchy can carry empty payloads (presence
// only) while the metadata cache carries decoded counter blocks and tree
// nodes.
package cache

import (
	"fmt"

	"soteria/internal/config"
)

// Stats aggregates cache activity counters.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64 // total evictions of valid lines
	Writebacks uint64 // evictions of dirty lines
}

// MissRatio returns misses / (hits+misses), or 0 when unused.
func (s Stats) MissRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// Entry is an evicted cache line handed back to the caller.
type Entry[V any] struct {
	Addr  uint64 // line-aligned byte address
	Dirty bool
	Value V
}

type way[V any] struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
	value V
}

// Cache is a set-associative write-back cache with true-LRU replacement.
// It is a purely functional model: it tracks presence, dirtiness, and an
// arbitrary payload, but charges no latency itself (timing is the
// controller's business).
type Cache[V any] struct {
	sets     []([]way[V])
	setMask  uint64
	lineBits uint
	tick     uint64
	stats    Stats
}

// New constructs a cache from a config.CacheConfig.
func New[V any](cfg config.CacheConfig) (*Cache[V], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	c := &Cache[V]{
		sets:     make([][]way[V], nsets),
		setMask:  uint64(nsets - 1),
		lineBits: lineBits(),
	}
	for i := range c.sets {
		c.sets[i] = make([]way[V], cfg.Ways)
	}
	return c, nil
}

func lineBits() uint {
	b := uint(0)
	for s := config.BlockSize; s > 1; s >>= 1 {
		b++
	}
	return b
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew[V any](cfg config.CacheConfig) *Cache[V] {
	c, err := New[V](cfg)
	if err != nil {
		panic(fmt.Sprintf("cache: %v", err))
	}
	return c
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache[V]) Stats() Stats { return c.stats }

// Sets returns the number of sets.
func (c *Cache[V]) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache[V]) Ways() int { return len(c.sets[0]) }

func (c *Cache[V]) index(addr uint64) (set uint64, tag uint64) {
	line := addr >> c.lineBits
	return line & c.setMask, line >> uint(popcount(c.setMask))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Lookup probes the cache. On a hit it refreshes LRU state and returns a
// pointer to the payload (callers may mutate it in place). Stats are
// updated.
func (c *Cache[V]) Lookup(addr uint64) (*V, bool) {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			c.tick++
			ws[i].lru = c.tick
			c.stats.Hits++
			return &ws[i].value, true
		}
	}
	c.stats.Misses++
	return nil, false
}

// Peek probes without touching LRU state or statistics.
func (c *Cache[V]) Peek(addr uint64) (*V, bool) {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return &ws[i].value, true
		}
	}
	return nil, false
}

// Contains reports presence without disturbing anything.
func (c *Cache[V]) Contains(addr uint64) bool {
	_, ok := c.Peek(addr)
	return ok
}

// MarkDirty sets the dirty bit of a resident line; it reports whether the
// line was present.
func (c *Cache[V]) MarkDirty(addr uint64) bool {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			ws[i].dirty = true
			return true
		}
	}
	return false
}

// Insert fills addr with value. If the victim way holds a valid line, that
// line is returned as evicted (dirty lines are the caller's responsibility
// to write back). Inserting an address that is already resident replaces
// its payload and returns no eviction.
func (c *Cache[V]) Insert(addr uint64, value V, dirty bool) (evicted Entry[V], hasEvict bool) {
	set, tag := c.index(addr)
	ws := c.sets[set]
	c.tick++
	// Already resident: replace in place.
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			ws[i].value = value
			ws[i].dirty = ws[i].dirty || dirty
			ws[i].lru = c.tick
			return Entry[V]{}, false
		}
	}
	// Free way?
	victim := -1
	for i := range ws {
		if !ws[i].valid {
			victim = i
			break
		}
	}
	// LRU victim.
	if victim == -1 {
		victim = 0
		for i := 1; i < len(ws); i++ {
			if ws[i].lru < ws[victim].lru {
				victim = i
			}
		}
		evicted = Entry[V]{
			Addr:  c.addrOf(set, ws[victim].tag),
			Dirty: ws[victim].dirty,
			Value: ws[victim].value,
		}
		hasEvict = true
		c.stats.Evictions++
		if ws[victim].dirty {
			c.stats.Writebacks++
		}
	}
	ws[victim] = way[V]{valid: true, dirty: dirty, tag: tag, lru: c.tick, value: value}
	return evicted, hasEvict
}

// Victim predicts what Insert(addr, ...) would evict right now, without
// changing any state: nothing when addr is already resident or its set has
// a free way, otherwise the set's LRU line. The secure controller uses
// this to write back a dirty victim *before* the insertion so the victim's
// shadow-table entry stays valid until its contents are durable.
func (c *Cache[V]) Victim(addr uint64) (Entry[V], bool) {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return Entry[V]{}, false
		}
	}
	for i := range ws {
		if !ws[i].valid {
			return Entry[V]{}, false
		}
	}
	victim := 0
	for i := 1; i < len(ws); i++ {
		if ws[i].lru < ws[victim].lru {
			victim = i
		}
	}
	return Entry[V]{
		Addr:  c.addrOf(set, ws[victim].tag),
		Dirty: ws[victim].dirty,
		Value: ws[victim].value,
	}, true
}

// Touch refreshes the LRU state of a resident line without counting a hit.
// The controller uses it to steer victim selection away from a line whose
// write-back is already in progress.
func (c *Cache[V]) Touch(addr uint64) {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			c.tick++
			ws[i].lru = c.tick
			return
		}
	}
}

func (c *Cache[V]) addrOf(set, tag uint64) uint64 {
	line := tag<<uint(popcount(c.setMask)) | set
	return line << c.lineBits
}

// Invalidate drops a resident line (returning it) without write-back —
// what a power loss does to volatile state.
func (c *Cache[V]) Invalidate(addr uint64) (Entry[V], bool) {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			e := Entry[V]{Addr: addr &^ (config.BlockSize - 1), Dirty: ws[i].dirty, Value: ws[i].value}
			ws[i] = way[V]{}
			return e, true
		}
	}
	return Entry[V]{}, false
}

// DropAll invalidates every line without write-back and returns the lines
// that were dirty. It models the loss of volatile state at a crash.
func (c *Cache[V]) DropAll() []Entry[V] {
	var dirty []Entry[V]
	for s := range c.sets {
		for w := range c.sets[s] {
			e := &c.sets[s][w]
			if e.valid && e.dirty {
				dirty = append(dirty, Entry[V]{Addr: c.addrOf(uint64(s), e.tag), Dirty: true, Value: e.value})
			}
			*e = way[V]{}
		}
	}
	return dirty
}

// DirtyEntries returns (without invalidating) every dirty resident line,
// in set order. Used by flush paths and by Anubis-style tracking audits.
func (c *Cache[V]) DirtyEntries() []Entry[V] {
	var out []Entry[V]
	for s := range c.sets {
		for w := range c.sets[s] {
			e := &c.sets[s][w]
			if e.valid && e.dirty {
				out = append(out, Entry[V]{Addr: c.addrOf(uint64(s), e.tag), Dirty: true, Value: e.value})
			}
		}
	}
	return out
}

// CleanLine clears the dirty bit of a resident line (after a write-back).
func (c *Cache[V]) CleanLine(addr uint64) {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			ws[i].dirty = false
			return
		}
	}
}

// Len returns the number of valid lines currently resident.
func (c *Cache[V]) Len() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// WayOf returns the way index at which addr is resident, or -1. The Anubis
// shadow table is indexed by (set, way), so the controller needs this.
func (c *Cache[V]) WayOf(addr uint64) int {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return i
		}
	}
	return -1
}

// SetOf returns the set index addr maps to.
func (c *Cache[V]) SetOf(addr uint64) int {
	set, _ := c.index(addr)
	return int(set)
}
