package reliability

import (
	"math"
	"testing"

	"soteria/internal/core"
)

func TestNonSecureLossIsLinear(t *testing.T) {
	m, err := NewExpectedLossModel(4<<40, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []int{1, 2, 5, 10} {
		got := m.ExpectedLossBytes(e)
		if math.Abs(got-float64(e)*64) > 1e-6 {
			t.Fatalf("non-secure loss for %d errors = %v, want %v", e, got, float64(e)*64)
		}
	}
}

func TestSecureAmplificationMatchesPaper(t *testing.T) {
	// Fig 3 / §2.7: for a 4 TB memory the secure system loses ~12x more
	// (one extra "data region" of expected loss per tree level; a 4 TB
	// tree has 10 stored levels -> ~11x by our exact layout, and the
	// paper's rounding of levels gives 12x).
	amp, err := AmplificationFactor(4 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if amp < 10 || amp > 13 {
		t.Fatalf("amplification = %.2f, want ~11-12x", amp)
	}
	// Amplification grows with memory size (more levels).
	small, _ := AmplificationFactor(1 << 30)
	if small >= amp {
		t.Fatalf("1 GiB amplification (%v) not below 4 TiB (%v)", small, amp)
	}
}

func TestExpectedLossScalesWithErrors(t *testing.T) {
	m, _ := NewExpectedLossModel(4<<40, true, nil)
	l1 := m.ExpectedLossBytes(1)
	l5 := m.ExpectedLossBytes(5)
	if math.Abs(l5-5*l1) > l1*0.3 {
		t.Fatalf("loss not ~linear in errors: %v vs 5*%v", l5, l1)
	}
	if m.ExpectedLossBytes(0) != 0 {
		t.Fatal("zero errors should lose nothing")
	}
}

func TestCloningCollapsesExpectedLoss(t *testing.T) {
	plain, _ := NewExpectedLossModel(1<<40, true, nil)
	probe := plain.Layout.TopLevel()
	src, err := NewExpectedLossModel(1<<40, true, core.SRC().Depths(probe))
	if err != nil {
		t.Fatal(err)
	}
	e := 4
	lp := plain.ExpectedLossBytes(e)
	ls := src.ExpectedLossBytes(e)
	// With one clone everywhere, a node dies only if two of the four
	// errors land on the same node's two copies — vanishingly unlikely,
	// so the secure system's expected loss collapses to ~the non-secure
	// level (e * 64B).
	if ls > float64(e)*64*1.01 {
		t.Fatalf("SRC expected loss %v not collapsed to data-only (%v)", ls, float64(e)*64)
	}
	if lp < 10*ls {
		t.Fatalf("cloning did not help: plain %v vs SRC %v", lp, ls)
	}
}

func TestSystemMTBFMatchesPaper(t *testing.T) {
	// §4: "Our calculated MTBF ranges between 694 Hours (1 FIT) to 8.6
	// Hours (80 FIT)".
	m1, err := SystemMTBF(1, PaperClusterNodes, PaperClusterDIMMs, PaperClusterChips)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1-694.4) > 1 {
		t.Fatalf("MTBF(1 FIT) = %v h, want ~694 h", m1)
	}
	m80, _ := SystemMTBF(80, PaperClusterNodes, PaperClusterDIMMs, PaperClusterChips)
	if math.Abs(m80-8.68) > 0.1 {
		t.Fatalf("MTBF(80 FIT) = %v h, want ~8.6 h", m80)
	}
	if _, err := SystemMTBF(0, 1, 1, 1); err == nil {
		t.Fatal("zero FIT accepted")
	}
}

func TestResilienceGain(t *testing.T) {
	base := []float64{1e-5, 2e-5, 4e-5}
	scheme := []float64{1e-8, 2e-8, 4e-8}
	g := ResilienceGain(base, scheme, 1e-12)
	if math.Abs(g-1000) > 1 {
		t.Fatalf("gain = %v, want 1000", g)
	}
	// Zero scheme losses use the floor.
	g = ResilienceGain([]float64{1e-6}, []float64{0}, 1e-9)
	if math.Abs(g-1000) > 1 {
		t.Fatalf("floored gain = %v", g)
	}
	// Zero baseline points are skipped entirely.
	g = ResilienceGain([]float64{0, 1e-6}, []float64{0, 1e-8}, 1e-12)
	if math.Abs(g-100) > 1 {
		t.Fatalf("gain with skipped point = %v", g)
	}
	if ResilienceGain(nil, nil, 0) != 0 {
		t.Fatal("empty input should give 0")
	}
}
