// Package reliability provides the closed-form analyses in the paper that
// do not need Monte Carlo simulation: the expected-loss model behind Fig 3
// and the motivation of §2.7 (footnote 2: E[X] = sum_i X_i * P(X_i)), the
// MTBF sanity check of §4, and the resilience-ratio summaries of §5.3.
package reliability

import (
	"fmt"

	"soteria/internal/itree"
	"soteria/internal/stats"
)

// ExpectedLossModel captures the Fig 3 setting: a memory of a given size,
// optionally integrity-protected, in which some number of uncorrectable
// errors land uniformly at random over the occupied storage (data plus, for
// the secure memory, counters and tree nodes).
type ExpectedLossModel struct {
	Layout *itree.Layout
	// Secure selects whether metadata exists (and hence whether errors
	// can amplify into unverifiable regions).
	Secure bool
	// CloneDepths optionally models Soteria: a level-i node only loses
	// its coverage if all copies are hit, which for a handful of
	// uniform errors is negligible — exactly Soteria's argument.
	CloneDepths []int
}

// NewExpectedLossModel builds the model for a memory of dataBytes with the
// paper's 64-ary counters and 8-ary tree.
func NewExpectedLossModel(dataBytes uint64, secure bool, cloneDepths []int) (*ExpectedLossModel, error) {
	lay, err := itree.NewLayout(itree.Params{
		DataBytes:    dataBytes,
		CounterArity: 64,
		TreeArity:    8,
		CloneDepths:  cloneDepths,
	})
	if err != nil {
		return nil, err
	}
	return &ExpectedLossModel{Layout: lay, Secure: secure, CloneDepths: cloneDepths}, nil
}

// totalBytes is the storage errors can land in.
func (m *ExpectedLossModel) totalBytes() float64 {
	t := float64(m.Layout.DataBytes)
	if m.Secure {
		t += float64(m.Layout.MetadataBytes())
		for i, li := range m.Layout.Levels {
			if i < len(m.CloneDepths) && m.CloneDepths[i] > 1 {
				t += float64(li.Nodes*itree.BlockSize) * float64(m.CloneDepths[i]-1)
			}
		}
	}
	return t
}

// ExpectedLossBytes returns E[lost or unverifiable data] for `errors`
// uniformly placed uncorrectable errors, the quantity plotted in Fig 3.
//
// Each error in the data region loses one 64-byte block. Each error in a
// level-i node renders that node's coverage unverifiable — and because
// every level's nodes jointly cover the whole memory, each level
// contributes the same expected loss as the data region itself, making the
// secure memory roughly (1 + levels)x less resilient (§2.7: "the expected
// amount of data lost ... is roughly n x that of the non-secure memory
// system, where n is the number of levels").
func (m *ExpectedLossModel) ExpectedLossBytes(errors int) float64 {
	if errors <= 0 {
		return 0
	}
	total := m.totalBytes()
	// P(error hits the data region) * 64 bytes lost.
	perError := float64(m.Layout.DataBytes) / total * itree.BlockSize
	if m.Secure {
		for i, li := range m.Layout.Levels {
			depth := 1
			if i < len(m.CloneDepths) && m.CloneDepths[i] > 0 {
				depth = m.CloneDepths[i]
			}
			pNodeHit := float64(itree.BlockSize) / total
			if depth == 1 {
				// Expected loss from this level: nodes * P(node hit) * coverage.
				perError += float64(li.Nodes) * pNodeHit * float64(li.CoverBytes)
				continue
			}
			// With d copies, a single error cannot kill a node; the
			// leading term needs `depth` of the `errors` to land on
			// the same node's copies. For the error counts of Fig 3
			// this is negligible but we keep the exact leading term:
			// P(all d copies hit by specific errors) summed over
			// combinations, divided back by `errors` (the caller
			// multiplies by it).
			if errors >= depth {
				comb := combinations(errors, depth)
				pAll := 1.0
				for k := 0; k < depth; k++ {
					pAll *= pNodeHit
				}
				perError += float64(li.Nodes) * comb * pAll * float64(li.CoverBytes) / float64(errors)
			}
		}
	}
	return float64(errors) * perError
}

func combinations(n, k int) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// AmplificationFactor returns the ratio of expected loss in the secure
// memory to the non-secure memory — Fig 3's headline "12x" for a 4 TB
// system.
func AmplificationFactor(dataBytes uint64) (float64, error) {
	sec, err := NewExpectedLossModel(dataBytes, true, nil)
	if err != nil {
		return 0, err
	}
	non, err := NewExpectedLossModel(dataBytes, false, nil)
	if err != nil {
		return 0, err
	}
	return sec.ExpectedLossBytes(1) / non.ExpectedLossBytes(1), nil
}

// SystemMTBF returns the mean time between failures, in hours, for a
// cluster of `nodes` nodes with `dimmsPerNode` DIMMs of `chipsPerDIMM`
// devices each, at the given per-chip FIT rate — §4's sanity check against
// the field-study MTBFs (694 h at FIT 1 down to 8.6 h at FIT 80 for the
// 20k-node system).
func SystemMTBF(fitPerChip float64, nodes, dimmsPerNode, chipsPerDIMM int) (float64, error) {
	devices := float64(nodes) * float64(dimmsPerNode) * float64(chipsPerDIMM)
	rate := fitPerChip * devices // failures per 1e9 hours
	if rate <= 0 {
		return 0, fmt.Errorf("reliability: non-positive failure rate")
	}
	return 1e9 / rate, nil
}

// PaperCluster are the §4 constants: 20k nodes, 4 DIMMs each, 18 chips per
// DIMM.
const (
	PaperClusterNodes = 20000
	PaperClusterDIMMs = 4
	PaperClusterChips = 18
)

// ResilienceGain summarizes Fig 11's headline numbers: the geometric mean,
// across FIT points, of baselineUDR / schemeUDR. Points where the scheme
// saw zero loss are folded in using the smallest resolvable UDR
// (lossFloor), mirroring how the paper reports "no data loss observed" at
// low FIT.
func ResilienceGain(baselineUDR, schemeUDR []float64, lossFloor float64) float64 {
	if len(baselineUDR) != len(schemeUDR) || len(baselineUDR) == 0 {
		return 0
	}
	ratios := make([]float64, 0, len(baselineUDR))
	for i := range baselineUDR {
		b, s := baselineUDR[i], schemeUDR[i]
		if b <= 0 {
			continue // nothing to compare at this FIT point
		}
		if s <= 0 {
			s = lossFloor
		}
		ratios = append(ratios, b/s)
	}
	return stats.GeoMean(ratios)
}
