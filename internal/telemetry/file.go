package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
)

// WriteFile persists the snapshot to path, picking the format from the
// extension: ".prom" and ".txt" select the Prometheus text exposition
// format, anything else the deterministic indented JSON. labels follows
// WritePrometheus (ignored for JSON). "-" writes JSON to stdout. This is
// the shared sink behind every command's -metrics flag.
func (s *Snapshot) WriteFile(path, labels string) error {
	if path == "-" {
		return s.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".prom", ".txt":
		err = s.WritePrometheus(f, labels)
	default:
		err = s.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. It backs the
// commands' -pprof flag; inspect the output with `go tool pprof`.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}
