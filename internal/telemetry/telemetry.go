// Package telemetry is the instrumentation substrate of the whole
// controller stack: a zero-allocation metrics registry (counters, gauges,
// bounded histograms) plus a lightweight scoped-span tracer, threaded
// through memctrl, metacache, wpq, nvm, ctrenc, itree and faultsim.
//
// Two properties shape every design decision here:
//
//   - Nil safety. A component that was never attached to a registry holds
//     nil metric handles, and every method on a nil handle is a no-op. The
//     hot paths therefore pay exactly one nil check per event when
//     telemetry is disabled — verified by the package benchmarks and the
//     root-level controller benchmarks.
//
//   - Determinism. Snapshots contain only quantities derived from the
//     simulation itself (counts, sim-time durations), never wall-clock
//     time, and serialize with sorted keys. The same seed therefore
//     produces a byte-identical metrics JSON at any worker count, which is
//     what makes the model-based differential tests and the golden
//     snapshot test possible.
//
// Metric updates are atomic, so a registry may be snapshotted (or scraped
// by an exporter) while the simulation owning it is still running, and
// per-worker registries may be merged without races.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The nil Counter is
// valid and ignores every update, which is how disabled telemetry costs
// nothing on the hot path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric (occupancies, derived ratios). The nil
// Gauge ignores every update.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded histogram over uint64 samples: len(bounds)
// finite buckets (sample <= bounds[i]) plus one overflow bucket. Bounds
// are fixed at registration, so Observe never allocates. The nil
// Histogram ignores every sample.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Binary search over the fixed bounds: the bucket is the first bound
	// >= v; misses land in the overflow bucket.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 for nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ExpBounds builds n exponentially spaced bounds 1, 2, 4, ... — the
// standard shape for latency histograms in sim ticks.
func ExpBounds(n int) []uint64 {
	out := make([]uint64, n)
	v := uint64(1)
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// LinearBounds builds n linearly spaced bounds start, start+step, ...
// (occupancy histograms).
func LinearBounds(start, step uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = start + uint64(i)*step
	}
	return out
}

// Registry holds the named metrics of one simulation. The nil Registry is
// valid: every lookup on it returns a nil handle, so an unattached
// component is fully disabled. Registration is mutex-guarded; metric
// updates are lock-free.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the named counter. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given bucket bounds. Bounds must be ascending; re-registration
// keeps the original bounds. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]uint64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric in place. Handles held by
// components stay valid — this is the "discard warm-up effects" hook, the
// telemetry sibling of the controllers' ResetStats.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// names returns the sorted metric names of one kind (deterministic
// iteration order for snapshots and exporters).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
