package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// HistogramSnapshot is the serialized form of one bounded histogram.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds; Counts has one extra
	// overflow bucket at the end.
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry. It serializes
// deterministically: encoding/json emits map keys sorted, and every value
// is an integer derived from the simulation, so identical seeds produce
// byte-identical snapshots at any worker count.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. Nil registries yield an
// empty (but usable) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.v.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v.Load()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge folds o into s: counters and gauges add, histograms add
// bucket-wise (bounds must match; mismatched histograms are summarized by
// count/sum only). Merging in a fixed order is deterministic because
// every operation is integer addition.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	for k, v := range o.Gauges {
		s.Gauges[k] += v
	}
	for k, oh := range o.Histograms {
		sh, ok := s.Histograms[k]
		if !ok {
			sh = HistogramSnapshot{
				Bounds: append([]uint64(nil), oh.Bounds...),
				Counts: make([]uint64, len(oh.Counts)),
			}
		}
		if len(sh.Counts) == len(oh.Counts) {
			for i := range oh.Counts {
				sh.Counts[i] += oh.Counts[i]
			}
		}
		sh.Count += oh.Count
		sh.Sum += oh.Sum
		s.Histograms[k] = sh
	}
}

// MarshalIndentJSON renders the snapshot as deterministic, human-readable
// JSON (the format the golden-snapshot test locks byte for byte).
func (s *Snapshot) MarshalIndentJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteJSON writes the indented JSON snapshot followed by a newline.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := s.MarshalIndentJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// promName sanitizes a metric name for the Prometheus text format.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, metrics sorted by name. labels, when non-empty, is a
// preformatted label body (e.g. `mode="soteria-SRC"`) applied to every
// series. Counters gain the conventional _total-compatible counter type,
// histograms expand into cumulative le-labelled buckets plus _sum/_count.
func (s *Snapshot) WritePrometheus(w io.Writer, labels string) error {
	wrap := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case extra == "":
			return "{" + labels + "}"
		case labels == "":
			return "{" + extra + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		n := "soteria_" + promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", n, n, wrap(""), s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := "soteria_" + promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", n, n, wrap(""), s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := "soteria_" + promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", n, wrap(fmt.Sprintf(`le="%d"`, b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", n, wrap(`le="+Inf"`), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", n, wrap(""), h.Sum, n, wrap(""), h.Count); err != nil {
			return err
		}
	}
	return nil
}
