package telemetry

import "testing"

// BenchmarkCounterDisabled measures the disabled (nil-handle) hot path —
// this is what every instrumented component pays when no registry is
// attached, and it must stay at the cost of a nil check.
func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterEnabled measures the enabled path (one atomic add).
func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramDisabled measures a nil histogram observation.
func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

// BenchmarkHistogramEnabled measures a bounded-histogram observation
// (binary search + two atomic adds); it must not allocate.
func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("h", ExpBounds(32))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i & 0xFFFF))
	}
}

// BenchmarkSpanDisabled measures a disabled scoped span.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	h := tr.Handle("op")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := h.Start()
		sp.End()
	}
}

// BenchmarkSpanEnabled measures an enabled scoped span over a trivial
// clock; it must not allocate.
func BenchmarkSpanEnabled(b *testing.B) {
	var now int64
	tr := NewTracer(NewRegistry(), func() int64 { now++; return now })
	h := tr.Handle("op")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := h.Start()
		sp.End()
	}
}
