package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: every handle and the registry itself must be fully
// usable as nil — this is the "disabled = no overhead" contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", ExpBounds(4))
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	g.SetMax(10)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must stay zero")
	}
	r.Reset() // must not panic
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}

	var tr *Tracer
	sh := tr.Handle("op")
	sp := sh.Start()
	sp.End()
	sh.Observe(5)
	if NewTracer(nil, func() int64 { return 0 }) != nil {
		t.Fatal("tracer over nil registry must be nil")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("ops") != c {
		t.Fatal("re-registration must return the same counter")
	}

	g := r.Gauge("depth")
	g.Set(4)
	g.SetMax(2)
	if g.Value() != 4 {
		t.Fatalf("SetMax lowered the gauge: %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax = %d, want 9", g.Value())
	}

	h := r.Histogram("lat", []uint64{1, 2, 4, 8})
	for _, v := range []uint64{0, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["lat"]
	want := []uint64{2, 1, 1, 1, 2} // <=1:{0,1} <=2:{2} <=4:{3} <=8:{5} over:{9,100}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Count != 7 || hs.Sum != 120 {
		t.Fatalf("count/sum = %d/%d, want 7/120", hs.Count, hs.Sum)
	}
}

func TestSpanTracing(t *testing.T) {
	r := NewRegistry()
	var now int64
	tr := NewTracer(r, func() int64 { return now })
	h := tr.Handle("read")
	sp := h.Start()
	now += 37
	sp.End()
	h.Observe(3)
	snap := r.Snapshot()
	if got := snap.Counters["trace_read_total"]; got != 2 {
		t.Fatalf("span count = %d, want 2", got)
	}
	if got := snap.Histograms["trace_read_ticks"].Sum; got != 40 {
		t.Fatalf("span ticks sum = %d, want 40", got)
	}
}

// TestSnapshotDeterminism: two registries fed identical event streams must
// produce byte-identical JSON, regardless of registration order.
func TestSnapshotDeterminism(t *testing.T) {
	feed := func(r *Registry, reverse bool) {
		names := []string{"alpha", "beta", "gamma"}
		if reverse {
			names = []string{"gamma", "beta", "alpha"}
		}
		for _, n := range names {
			r.Counter(n).Add(7)
			r.Gauge("g_" + n).Set(3)
			r.Histogram("h_"+n, ExpBounds(8)).Observe(5)
		}
	}
	a, b := NewRegistry(), NewRegistry()
	feed(a, false)
	feed(b, true)
	ja, err := a.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", ja, jb)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h", []uint64{1, 10}).Observe(4)
	data, err := r.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 3 || back.Gauges["g"] != -2 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestSnapshotMerge(t *testing.T) {
	mk := func(n uint64) *Snapshot {
		r := NewRegistry()
		r.Counter("c").Add(n)
		r.Gauge("g").Set(int64(n))
		r.Histogram("h", []uint64{8}).Observe(n)
		return r.Snapshot()
	}
	s := mk(3)
	s.Merge(mk(4))
	s.Merge(nil)
	if s.Counters["c"] != 7 || s.Gauges["g"] != 7 {
		t.Fatalf("merge sums wrong: %+v", s)
	}
	h := s.Histograms["h"]
	if h.Count != 2 || h.Sum != 7 || h.Counts[0] != 2 {
		t.Fatalf("histogram merge wrong: %+v", h)
	}
	// Merge into an empty snapshot (the runner's per-point fold).
	var empty Snapshot
	empty.Merge(s)
	if empty.Counters["c"] != 7 || empty.Histograms["h"].Count != 2 {
		t.Fatalf("merge into empty lost data: %+v", empty)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", ExpBounds(4))
	c.Add(9)
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset must zero metrics in place")
	}
	c.Inc() // handle stays live
	if c.Value() != 1 {
		t.Fatal("handle dead after reset")
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("metacache_hits_total").Add(12)
	r.Gauge("wpq_depth_max").Set(5)
	r.Histogram("wpq_drain_ticks", []uint64{10, 100}).Observe(50)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf, `mode="SRC"`); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`soteria_metacache_hits_total{mode="SRC"} 12`,
		`soteria_wpq_depth_max{mode="SRC"} 5`,
		`soteria_wpq_drain_ticks_bucket{mode="SRC",le="100"} 1`,
		`soteria_wpq_drain_ticks_bucket{mode="SRC",le="+Inf"} 1`,
		`soteria_wpq_drain_ticks_sum{mode="SRC"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentUpdates exercises the registry from many goroutines under
// -race: registration, updates and snapshots must all be safe.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", ExpBounds(8))
			g := r.Gauge("gauge")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(uint64(i % 50))
				g.SetMax(int64(i))
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*iters {
		t.Fatalf("lost updates: %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("hist", nil).Count(); got != workers*iters {
		t.Fatalf("lost histogram samples: %d", got)
	}
}
