package telemetry

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestAttachSnapshotRace hammers the full concurrent surface of a
// registry at once — lazy registration of fresh metrics (attach), hot
// updates through shared handles, span tracing, snapshots with export,
// and resets — and relies on the race detector for the verdict. This is
// exactly the shape of a live device: shard workers attach and update
// while an HTTP scraper snapshots and a recovery path resets.
func TestAttachSnapshotRace(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, func() int64 { return 7 })
	const iters = 400
	var wg sync.WaitGroup

	// Registrars: keep creating metrics (and re-resolving existing ones)
	// while everything else runs.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter(fmt.Sprintf("attach_ctr_%d_%d", w, i)).Inc()
				r.Gauge(fmt.Sprintf("attach_gauge_%d_%d", w, i)).Set(int64(i))
				r.Histogram(fmt.Sprintf("attach_hist_%d_%d", w, i), ExpBounds(8)).Observe(uint64(i))
				sp := tr.Handle(fmt.Sprintf("attach_span_%d", w)).Start()
				sp.End()
			}
		}(w)
	}

	// Updaters: hot-path traffic through shared handles.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_ctr")
			g := r.Gauge("shared_gauge")
			h := r.Histogram("shared_hist", ExpBounds(8))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.SetMax(int64(i))
				h.Observe(uint64(i % 100))
			}
		}()
	}

	// Snapshotters: capture, merge into a private accumulator, export.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			merged := &Snapshot{}
			for i := 0; i < iters/10; i++ {
				s := r.Snapshot()
				merged.Merge(s)
				if _, err := s.MarshalIndentJSON(); err != nil {
					t.Error(err)
					return
				}
				if err := s.WritePrometheus(io.Discard, `race="test"`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Resetter: the warm-up-discard hook, concurrent with everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/20; i++ {
			r.Reset()
		}
	}()

	wg.Wait()

	// Sanity: the registry is still coherent after the storm.
	s := r.Snapshot()
	if _, ok := s.Counters["shared_ctr"]; !ok {
		t.Fatal("shared counter vanished")
	}
	if len(s.Histograms) == 0 {
		t.Fatal("no histograms survived")
	}
}
