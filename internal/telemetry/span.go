package telemetry

// Tracer hands out scoped spans whose durations are recorded into bounded
// histograms. The clock is pluggable: the memory controller traces with
// its *simulated* clock, so span durations (and therefore snapshots) are
// deterministic for a given seed; a wall-clock tracer is equally valid
// for profiling but must not feed golden snapshots.
//
// The nil Tracer, like every other handle in this package, is valid and
// records nothing.
type Tracer struct {
	reg   *Registry
	clock func() int64
}

// NewTracer builds a tracer over the registry with the given clock. A nil
// registry yields a nil tracer (fully disabled).
func NewTracer(reg *Registry, clock func() int64) *Tracer {
	if reg == nil || clock == nil {
		return nil
	}
	return &Tracer{reg: reg, clock: clock}
}

// spanBoundsN is the bucket count of span-duration histograms: powers of
// two up to 2^31 ticks, wide enough for every simulated latency.
const spanBoundsN = 32

// SpanHandle is a named trace point, resolved once at attach time so
// Start/End never touch the registry map. The zero SpanHandle is valid
// and disabled.
type SpanHandle struct {
	t     *Tracer
	hist  *Histogram
	count *Counter
}

// Handle resolves (registering on first use) the named trace point. The
// histogram is "trace_<name>_ticks" and the op counter "trace_<name>_total".
func (t *Tracer) Handle(name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{
		t:     t,
		hist:  t.reg.Histogram("trace_"+name+"_ticks", ExpBounds(spanBoundsN)),
		count: t.reg.Counter("trace_" + name + "_total"),
	}
}

// Span is one in-progress scoped measurement. It is a value (no
// allocation per span); call End exactly once.
type Span struct {
	h     SpanHandle
	start int64
}

// Start opens a span at the current clock reading.
func (h SpanHandle) Start() Span {
	if h.t == nil {
		return Span{}
	}
	return Span{h: h, start: h.t.clock()}
}

// End closes the span, recording its duration and counting the op.
func (s Span) End() {
	if s.h.t == nil {
		return
	}
	d := s.h.t.clock() - s.start
	if d < 0 {
		d = 0
	}
	s.h.hist.Observe(uint64(d))
	s.h.count.Inc()
}

// Observe records an externally measured duration under the handle (for
// call sites that already know the elapsed time, e.g. the WPQ's
// drain-completion schedule).
func (h SpanHandle) Observe(d int64) {
	if h.t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.hist.Observe(uint64(d))
	h.count.Inc()
}
