// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from the simulators in this repository. Each experiment
// returns stats.Table values so the cmd/experiments binary, the root-level
// benchmarks and EXPERIMENTS.md all render identical numbers.
package experiments

import (
	"fmt"

	"soteria/internal/config"
	"soteria/internal/cpusim"
	"soteria/internal/memctrl"
	"soteria/internal/runner"
	"soteria/internal/stats"
	"soteria/internal/telemetry"
	"soteria/internal/workload"
)

// PerfParams scales the performance experiments (Fig 4, Fig 10a/b/c).
// The paper simulated 500M instructions per workload on gem5; the defaults
// here run the same sweep at a laptop-friendly scale, and every knob can be
// raised toward paper scale.
type PerfParams struct {
	// Ops is the number of measured memory operations per workload.
	Ops uint64
	// Warmup operations run before statistics reset.
	Warmup uint64
	// Footprint is each workload's data footprint in bytes.
	Footprint uint64
	// Seed fixes workload randomness.
	Seed int64
	// Workloads filters the suite (nil = all).
	Workloads []string
	// Modes filters the schemes (nil = baseline, SRC, SAC).
	Modes []memctrl.Mode
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Progress receives throttled sweep updates (nil = silent).
	Progress func(runner.Progress)
	// MetaCacheBytes shrinks the metadata cache for laptop-scale runs:
	// the paper simulates 500M instructions against a 512 kB metadata
	// cache; at a ~1000x smaller op budget the cache-capacity-to-
	// footprint-traversed ratio is preserved by shrinking the cache
	// instead. Zero keeps Table 3's 512 kB (use with paper-scale -ops).
	MetaCacheBytes int
	// CollectTelemetry attaches a telemetry registry to every
	// simulation's controller (after the warm-up stats reset) and merges
	// the snapshots, in (workload, mode) job order, into
	// PerfResults.Telemetry. Off by default: the registries cost a few
	// nanoseconds per counted event.
	CollectTelemetry bool
	// LLCBytes scales the LLC together with the metadata cache. The
	// governing relationship in Table 3 is that the metadata cache
	// *covers* (512 kB x 64 = 32 MB) far more data than the LLC holds
	// (8 MB), so LLC write-backs mostly hit cached counters; scaling
	// one without the other distorts exactly the eviction behaviour the
	// figures measure. Zero keeps Table 3's 8 MB.
	LLCBytes int
}

// DefaultPerfParams returns the scale used by `cmd/experiments` by default.
func DefaultPerfParams() PerfParams {
	return PerfParams{
		Ops:            150_000,
		Warmup:         30_000,
		Footprint:      64 << 20,
		Seed:           1,
		MetaCacheBytes: 128 << 10, // covers 8 MB of data via counters
		LLCBytes:       1 << 20,   // 1/8 of the coverage, like Table 3
	}
}

func (p PerfParams) modes() []memctrl.Mode {
	if len(p.Modes) != 0 {
		return p.Modes
	}
	return []memctrl.Mode{memctrl.ModeBaseline, memctrl.ModeSRC, memctrl.ModeSAC}
}

func (p PerfParams) workloads() []workload.Workload {
	if len(p.Workloads) == 0 {
		return workload.All()
	}
	var out []workload.Workload
	for _, n := range p.Workloads {
		out = append(out, workload.ByNameMust(n))
	}
	return out
}

// PerfRun is the result of one (workload, mode) simulation.
type PerfRun struct {
	Workload string
	Mode     memctrl.Mode
	Result   cpusim.Result
}

// PerfResults indexes runs by workload and mode.
type PerfResults struct {
	Params PerfParams
	Runs   map[string]map[memctrl.Mode]cpusim.Result
	Names  []string
	// Telemetry is the merged snapshot of every simulation (nil unless
	// Params.CollectTelemetry). The merge order is the fixed job order,
	// so the snapshot does not depend on Parallelism.
	Telemetry *telemetry.Snapshot
}

// Get returns one run's result.
func (r *PerfResults) Get(name string, mode memctrl.Mode) cpusim.Result {
	return r.Runs[name][mode]
}

// RunPerf executes the full (workload x mode) sweep. Simulations are
// independent and run in parallel.
func RunPerf(p PerfParams) (*PerfResults, error) {
	if p.Ops == 0 {
		p = DefaultPerfParams()
	}
	ws := p.workloads()
	modes := p.modes()
	res := &PerfResults{Params: p, Runs: make(map[string]map[memctrl.Mode]cpusim.Result)}
	for _, w := range ws {
		res.Names = append(res.Names, w.Name)
		res.Runs[w.Name] = make(map[memctrl.Mode]cpusim.Result)
	}

	type job struct {
		w    workload.Workload
		mode memctrl.Mode
	}
	var jobs []job
	for _, w := range ws {
		for _, m := range modes {
			jobs = append(jobs, job{w, m})
		}
	}
	eng := runner.New(runner.Options{Workers: p.Parallelism, OnProgress: p.Progress})
	runs := make([]cpusim.Result, len(jobs))
	snaps := make([]*telemetry.Snapshot, len(jobs))
	err := eng.Do("perf", len(jobs), func(i int) error {
		r, snap, err := runOne(jobs[i].w, jobs[i].mode, p)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", jobs[i].w.Name, jobs[i].mode, err)
		}
		runs[i], snaps[i] = r, snap
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		res.Runs[j.w.Name][j.mode] = runs[i]
	}
	if p.CollectTelemetry {
		res.Telemetry = &telemetry.Snapshot{}
		for _, s := range snaps {
			res.Telemetry.Merge(s)
		}
	}
	return res, nil
}

func runOne(w workload.Workload, mode memctrl.Mode, p PerfParams) (cpusim.Result, *telemetry.Snapshot, error) {
	cfg := config.Table3()
	if p.MetaCacheBytes > 0 {
		cfg.Security.MetadataCache.SizeBytes = p.MetaCacheBytes
	}
	if p.LLCBytes > 0 {
		cfg.LLC.SizeBytes = p.LLCBytes
	}
	ctrl, err := memctrl.New(cfg, mode, []byte("experiments"), memctrl.Options{})
	if err != nil {
		return cpusim.Result{}, nil, err
	}
	cpu, err := cpusim.New(cfg, ctrl)
	if err != nil {
		return cpusim.Result{}, nil, err
	}
	gen := w.New(p.Footprint, p.Seed)
	if p.Warmup > 0 {
		if _, err := cpu.Run(gen, p.Warmup); err != nil {
			return cpusim.Result{}, nil, err
		}
		ctrl.ResetStats()
	}
	var reg *telemetry.Registry
	if p.CollectTelemetry {
		reg = telemetry.NewRegistry()
		ctrl.AttachTelemetry(reg)
	}
	res, err := cpu.Run(gen, p.Warmup+p.Ops)
	if err != nil {
		return cpusim.Result{}, nil, err
	}
	return res, reg.Snapshot(), nil
}

// Fig10a renders the execution-time overhead of SRC and SAC over the secure
// baseline (the paper reports ~1% / ~1.1% averages).
func Fig10a(r *PerfResults) *stats.Table {
	t := stats.NewTable("Fig 10a — execution time normalized to secure baseline",
		"workload", "baseline", "SRC", "SAC", "SRC overhead %", "SAC overhead %")
	var srcs, sacs []float64
	for _, name := range r.Names {
		base := float64(r.Get(name, memctrl.ModeBaseline).ExecTime)
		src := float64(r.Get(name, memctrl.ModeSRC).ExecTime)
		sac := float64(r.Get(name, memctrl.ModeSAC).ExecTime)
		srcs = append(srcs, src/base)
		sacs = append(sacs, sac/base)
		t.AddRow(name, 1.0, src/base, sac/base, (src/base-1)*100, (sac/base-1)*100)
	}
	t.AddRow("average", 1.0, stats.Mean(srcs), stats.Mean(sacs),
		(stats.Mean(srcs)-1)*100, (stats.Mean(sacs)-1)*100)
	return t
}

// Fig10b renders the NVM write overhead of SRC and SAC over the baseline
// (paper: ~4.3% and ~4.4%).
func Fig10b(r *PerfResults) *stats.Table {
	t := stats.NewTable("Fig 10b — NVM writes normalized to secure baseline",
		"workload", "baseline writes", "SRC writes", "SAC writes", "SRC overhead %", "SAC overhead %")
	var srcs, sacs []float64
	for _, name := range r.Names {
		bs := r.Get(name, memctrl.ModeBaseline).Ctrl
		ss := r.Get(name, memctrl.ModeSRC).Ctrl
		as := r.Get(name, memctrl.ModeSAC).Ctrl
		b, s, a := float64(bs.TotalNVMWrites()), float64(ss.TotalNVMWrites()), float64(as.TotalNVMWrites())
		if b == 0 {
			// A cache-resident workload that never wrote to NVM in
			// this window has no meaningful overhead ratio.
			t.AddRow(name, 0, ss.TotalNVMWrites(), as.TotalNVMWrites(), "n/a", "n/a")
			continue
		}
		srcs = append(srcs, s/b)
		sacs = append(sacs, a/b)
		t.AddRow(name, bs.TotalNVMWrites(), ss.TotalNVMWrites(), as.TotalNVMWrites(),
			(s/b-1)*100, (a/b-1)*100)
	}
	t.AddRow("average", "", "", "", (stats.Mean(srcs)-1)*100, (stats.Mean(sacs)-1)*100)
	return t
}

// Fig10c renders metadata-cache evictions per memory request (the paper
// observes ~1.3% on average, overwhelmingly from the leaf level).
func Fig10c(r *PerfResults) *stats.Table {
	t := stats.NewTable("Fig 10c — metadata cache evictions per memory request",
		"workload", "memory ops", "dirty tree evictions", "evictions/op %")
	var fr []float64
	for _, name := range r.Names {
		res := r.Get(name, memctrl.ModeSRC)
		ops := res.MemOps
		ev := res.Meta.DirtyTreeEvictions
		pct := 0.0
		if ops > 0 {
			pct = float64(ev) / float64(ops) * 100
		}
		fr = append(fr, pct)
		t.AddRow(name, ops, ev, pct)
	}
	t.AddRow("average", "", "", stats.Mean(fr))
	return t
}

// Fig4 renders the share of dirty evictions coming from each tree level
// under the lazy update (the paper's Fig 4: upper levels are rarely
// touched).
func Fig4(r *PerfResults) *stats.Table {
	// Find the deepest tree among runs (constant across workloads).
	levels := 0
	for _, name := range r.Names {
		res := r.Get(name, memctrl.ModeSRC)
		if res.Meta.EvictionsByLevel != nil && res.Meta.EvictionsByLevel.Buckets()-1 > levels {
			levels = res.Meta.EvictionsByLevel.Buckets() - 1
		}
	}
	headers := []string{"workload"}
	for l := 1; l <= levels; l++ {
		headers = append(headers, fmt.Sprintf("L%d %%", l))
	}
	t := stats.NewTable("Fig 4 — eviction share per Merkle-tree level (lazy update)", headers...)
	for _, name := range r.Names {
		res := r.Get(name, memctrl.ModeSRC)
		row := make([]interface{}, 0, levels+1)
		row = append(row, name)
		h := res.Meta.EvictionsByLevel
		for l := 1; l <= levels; l++ {
			row = append(row, h.Fraction(l)*100)
		}
		t.AddRow(row...)
	}
	return t
}
