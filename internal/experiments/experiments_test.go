package experiments

import (
	"bytes"
	"strings"
	"testing"

	"soteria/internal/memctrl"
)

func smallPerf() PerfParams {
	p := DefaultPerfParams()
	p.Ops = 8000
	p.Warmup = 2000
	p.Footprint = 16 << 20
	p.Workloads = []string{"uBENCH128", "hashmap"}
	return p
}

func TestRunPerfAndFigures(t *testing.T) {
	res, err := RunPerf(smallPerf())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 2 {
		t.Fatalf("names %v", res.Names)
	}
	for _, name := range res.Names {
		for _, m := range []memctrl.Mode{memctrl.ModeBaseline, memctrl.ModeSRC, memctrl.ModeSAC} {
			r := res.Get(name, m)
			if r.MemOps == 0 || r.ExecTime == 0 {
				t.Fatalf("%s/%v empty result", name, m)
			}
		}
	}
	fig10a := Fig10a(res)
	fig10b := Fig10b(res)
	fig10c := Fig10c(res)
	fig4 := Fig4(res)
	// Each figure has one row per workload (plus averages for 10a/b/c).
	if fig10a.NumRows() != 3 || fig10b.NumRows() != 3 || fig10c.NumRows() != 3 || fig4.NumRows() != 2 {
		t.Fatalf("row counts: %d %d %d %d", fig10a.NumRows(), fig10b.NumRows(), fig10c.NumRows(), fig4.NumRows())
	}
	var buf bytes.Buffer
	if err := fig10a.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "uBENCH128") {
		t.Fatal("figure missing workload row")
	}
}

func TestFig3Table(t *testing.T) {
	tab, err := Fig3(1<<40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 {
		t.Fatalf("rows %d", tab.NumRows())
	}
}

func TestTable2Table3Table4(t *testing.T) {
	if Table2().NumRows() != 2 {
		t.Fatal("table 2")
	}
	if Table3().NumRows() < 8 {
		t.Fatal("table 3")
	}
	if Table4().NumRows() < 6 {
		t.Fatal("table 4")
	}
}

func TestMTBFTable(t *testing.T) {
	tab, err := MTBFTable([]float64{1, 80})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatal("rows")
	}
}

func TestFig11SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	p := DefaultRelParams()
	p.Trials = 4000
	p.FITs = []float64{80}
	r, err := Fig11(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.NumRows() != 1 {
		t.Fatal("rows")
	}
	if len(r.UDRs["baseline"]) != 1 {
		t.Fatal("UDR series missing")
	}
	// Ordering must hold even at tiny trial counts (SRC/SAC may be 0).
	if r.UDRs["SRC"][0] > r.UDRs["baseline"][0] && r.UDRs["baseline"][0] > 0 {
		t.Fatal("SRC worse than baseline")
	}
}

func TestMetaMissTable(t *testing.T) {
	res, err := RunPerf(smallPerf())
	if err != nil {
		t.Fatal(err)
	}
	tab := MetaMissTable(res)
	if tab.NumRows() != 2 {
		t.Fatalf("rows %d", tab.NumRows())
	}
}

func TestAblationEagerLazy(t *testing.T) {
	p := smallPerf()
	p.Workloads = []string{"uBENCH64"}
	tab, err := AblationEagerLazy(p)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 {
		t.Fatalf("rows %d", tab.NumRows())
	}
}

func TestAblationCloneDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("depth sweep is slow")
	}
	p := smallPerf()
	rel := DefaultRelParams()
	rel.Trials = 2000
	tab, err := AblationCloneDepth(p, rel, 80)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 {
		t.Fatalf("rows %d", tab.NumRows())
	}
}

func TestFig12SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	p := DefaultRelParams()
	p.Trials = 4000
	tab, err := Fig12(p, 80, 8<<40)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("rows %d", tab.NumRows())
	}
}
