package experiments

import (
	"fmt"

	"soteria/internal/config"
	"soteria/internal/core"
	"soteria/internal/faultsim"
	"soteria/internal/reliability"
	"soteria/internal/runner"
	"soteria/internal/stats"
)

// Fig3 renders the motivation experiment: expected lost/unverifiable data
// versus the number of uncorrectable errors, for a 4 TB memory with and
// without integrity protection (the paper's ~12x amplification).
func Fig3(memBytes uint64, maxErrors int) (*stats.Table, error) {
	if memBytes == 0 {
		memBytes = 4 << 40
	}
	if maxErrors <= 0 {
		maxErrors = 10
	}
	sec, err := reliability.NewExpectedLossModel(memBytes, true, nil)
	if err != nil {
		return nil, err
	}
	non, err := reliability.NewExpectedLossModel(memBytes, false, nil)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("Fig 3 — expected lost/unverifiable data, %s memory", stats.FormatBytes(float64(memBytes))),
		"uncorrectable errors", "non-secure loss", "secure loss", "amplification")
	for e := 1; e <= maxErrors; e++ {
		n := non.ExpectedLossBytes(e)
		s := sec.ExpectedLossBytes(e)
		t.AddRow(e, stats.FormatBytes(n), stats.FormatBytes(s), s/n)
	}
	return t, nil
}

// Table2 renders the SRC/SAC clone-depth table.
func Table2() *stats.Table {
	src, sac := core.Table2()
	t := stats.NewTable("Table 2 — Soteria metadata cloning depth (9-level tree)",
		"scheme", "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9")
	row := func(name string, d []int) {
		cells := make([]interface{}, 0, 10)
		cells = append(cells, name)
		for _, v := range d {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	row("SRC", src)
	row("SAC", sac)
	return t
}

// MTBFTable renders the §4 sanity check: cluster MTBF across the FIT sweep.
func MTBFTable(fits []float64) (*stats.Table, error) {
	if len(fits) == 0 {
		fits = []float64{1, 2, 5, 10, 20, 40, 80}
	}
	t := stats.NewTable("§4 — system MTBF for 20k nodes x 4 DIMMs x 18 chips",
		"FIT/chip", "MTBF (hours)")
	for _, f := range fits {
		m, err := reliability.SystemMTBF(f, reliability.PaperClusterNodes,
			reliability.PaperClusterDIMMs, reliability.PaperClusterChips)
		if err != nil {
			return nil, err
		}
		t.AddRow(f, m)
	}
	return t, nil
}

// RelParams scales the Monte Carlo reliability experiments (Fig 11/12).
type RelParams struct {
	// Trials per FIT point (conditional importance-sampled trials).
	Trials int
	// FITs to sweep; nil selects the paper's 1..80 range.
	FITs []float64
	// Seed fixes the fault stream.
	Seed int64
	// ShadowSlots sizes the shadow region (metadata cache slots).
	ShadowSlots uint64
	// Workers bounds sweep parallelism (0 = GOMAXPROCS). Results are
	// bit-identical for any value.
	Workers int
	// CacheDir enables on-disk Monte Carlo result caching ("" = off).
	CacheDir string
	// Progress receives throttled sweep updates (nil = silent).
	Progress func(runner.Progress)
	// OnPoint receives every completed sweep point with its result and
	// telemetry snapshot (nil = discard). See runner.Options.OnPoint.
	OnPoint func(runner.Point)
	// Logf receives engine warnings, e.g. corrupt cache entries being
	// invalidated (nil = discard). See runner.Options.Logf.
	Logf func(format string, args ...interface{})
}

// engine builds the experiment engine the reliability sweeps share.
func (p RelParams) engine() *runner.Engine {
	return runner.New(runner.Options{
		Workers: p.Workers, CacheDir: p.CacheDir, OnProgress: p.Progress,
		OnPoint: p.OnPoint, Logf: p.Logf,
	})
}

// sweep assembles the common FaultSweep skeleton.
func (p RelParams) sweep(label string, cfg config.FaultSimConfig, schemes []*faultsim.Scheme) runner.FaultSweep {
	return runner.FaultSweep{
		Config:      cfg,
		FITs:        p.FITs,
		Trials:      p.Trials,
		Seed:        p.Seed,
		Conditional: true,
		Schemes:     schemes,
		Label:       label,
	}
}

// DefaultRelParams returns the default Monte Carlo scale.
func DefaultRelParams() RelParams {
	return RelParams{
		Trials:      120_000,
		FITs:        []float64{1, 2, 5, 10, 20, 40, 80},
		Seed:        7,
		ShadowSlots: 8192,
	}
}

// Fig11Result carries the rendered table plus the headline gains.
type Fig11Result struct {
	Table *stats.Table
	// GainSRC / GainSAC are the geometric-mean UDR reductions versus the
	// baseline (the paper reports 2.5e3 and 3.7e4).
	GainSRC, GainSAC float64
	// UDRs[scheme][fitIndex]
	UDRs map[string][]float64
}

// Fig11 runs the UDR-versus-FIT sweep for baseline, SRC and SAC under
// Chipkill (the paper's Fig 11).
func Fig11(p RelParams) (*Fig11Result, error) {
	if p.Trials == 0 {
		p = DefaultRelParams()
	}
	fsCfg := config.Table4()
	d := fsCfg.DIMM
	schemes := make([]*faultsim.Scheme, 0, 3)
	for _, pol := range []core.ClonePolicy{core.Baseline(), core.SRC(), core.SAC()} {
		s, err := faultsim.BuildScheme(d, pol, p.ShadowSlots)
		if err != nil {
			return nil, err
		}
		schemes = append(schemes, s)
	}

	t := stats.NewTable("Fig 11 — UDR vs FIT under Chipkill (5-year lifetime)",
		"FIT/chip", "baseline UDR", "SRC UDR", "SAC UDR", "UE trials (cond.)")
	udrs := map[string][]float64{"baseline": nil, "SRC": nil, "SAC": nil}
	results, err := p.engine().RunFaultSweep(p.sweep("fig11", fsCfg, schemes))
	if err != nil {
		return nil, err
	}
	for i, fit := range p.FITs {
		res := results[i]
		b := res.Schemes[0].UDR(res.Trials)
		s := res.Schemes[1].UDR(res.Trials)
		a := res.Schemes[2].UDR(res.Trials)
		udrs["baseline"] = append(udrs["baseline"], b)
		udrs["SRC"] = append(udrs["SRC"], s)
		udrs["SAC"] = append(udrs["SAC"], a)
		t.AddRow(fit, b, s, a, res.Schemes[0].TrialsWithUE)
	}
	// Loss floor: one 64-byte line per trial set, the smallest resolvable
	// loss of the sweep.
	floor := 64.0 / (float64(p.Trials) * float64(schemes[0].Layout.DataBytes))
	return &Fig11Result{
		Table:   t,
		GainSRC: reliability.ResilienceGain(udrs["baseline"], udrs["SRC"], floor),
		GainSAC: reliability.ResilienceGain(udrs["baseline"], udrs["SAC"], floor),
		UDRs:    udrs,
	}, nil
}

// StrongECC reproduces the §3.1/§6.2 design comparison (Fig 5): is it
// better to strengthen the module's ECC for everyone, or to clone the
// security metadata? It reports UDR across the FIT sweep for the baseline
// under Chipkill, the baseline under a double-Chipkill "stronger ECC", and
// SRC under plain Chipkill. The paper's claim: "Soteria with baseline ECC
// can provide better survivability of security metadata compared to a
// stronger ECC working alone."
func StrongECC(p RelParams) (*stats.Table, error) {
	if p.Trials == 0 {
		p = DefaultRelParams()
	}
	fsCfg := config.Table4()
	d := fsCfg.DIMM
	base, err := faultsim.BuildScheme(d, core.Baseline(), p.ShadowSlots)
	if err != nil {
		return nil, err
	}
	src, err := faultsim.BuildScheme(d, core.SRC(), p.ShadowSlots)
	if err != nil {
		return nil, err
	}
	eng := p.engine()
	weakSweep := p.sweep("strongecc/chipkill", fsCfg, []*faultsim.Scheme{base, src})
	multiSweep := p.sweep("strongecc/multibit", fsCfg, []*faultsim.Scheme{base})
	multiSweep.ECC = faultsim.ECCMultiBit
	doubleSweep := p.sweep("strongecc/double", fsCfg, []*faultsim.Scheme{base})
	doubleSweep.ECC = faultsim.ECCDoubleChipkill
	weak, err := eng.RunFaultSweep(weakSweep)
	if err != nil {
		return nil, err
	}
	multibit, err := eng.RunFaultSweep(multiSweep)
	if err != nil {
		return nil, err
	}
	double, err := eng.RunFaultSweep(doubleSweep)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("§6.2 — stronger ECC vs metadata cloning (UDR)",
		"FIT/chip", "baseline + Chipkill", "baseline + multi-bit ECC", "baseline + 2x-Chipkill", "SRC + Chipkill")
	for i, fit := range p.FITs {
		t.AddRow(fit,
			weak[i].Schemes[0].UDR(weak[i].Trials),
			multibit[i].Schemes[0].UDR(multibit[i].Trials),
			double[i].Schemes[0].UDR(double[i].Trials),
			weak[i].Schemes[1].UDR(weak[i].Trials))
	}
	return t, nil
}

// TreeComparison quantifies the §6.1 discussion: BMT intermediate nodes
// are recomputable from children (so only leaf faults lose data), while
// ToC nodes are not — the resilience gap Soteria's clones close. Columns:
// ToC baseline, BMT with no clones, BMT with leaf-only SRC-style clones,
// and ToC SRC.
func TreeComparison(p RelParams, fit float64) (*stats.Table, error) {
	if p.Trials == 0 {
		p = DefaultRelParams()
	}
	if fit == 0 {
		fit = 80
	}
	fsCfg := config.Table4()
	d := fsCfg.DIMM
	tocBase, err := faultsim.BuildScheme(d, core.Baseline(), p.ShadowSlots)
	if err != nil {
		return nil, err
	}
	tocSRC, err := faultsim.BuildScheme(d, core.SRC(), p.ShadowSlots)
	if err != nil {
		return nil, err
	}
	bmt, err := faultsim.BuildScheme(d, core.Baseline(), p.ShadowSlots)
	if err != nil {
		return nil, err
	}
	bmt.Name = "BMT"
	bmt.RecomputableIntermediates = true
	leafPolicy, err := core.Custom("BMT+leaf-clones", []int{2, 1})
	if err != nil {
		return nil, err
	}
	bmtClones, err := faultsim.BuildScheme(d, leafPolicy, p.ShadowSlots)
	if err != nil {
		return nil, err
	}
	bmtClones.RecomputableIntermediates = true

	res, err := p.engine().RunFaultPoint(
		p.sweep("trees", fsCfg, []*faultsim.Scheme{tocBase, bmt, bmtClones, tocSRC}), fit)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("§6.1 — integrity-tree comparison (UDR at FIT=%g)", fit),
		"scheme", "UDR", "vs ToC baseline")
	base := res.Schemes[0].UDR(res.Trials)
	for _, s := range res.Schemes {
		udr := s.UDR(res.Trials)
		gain := 0.0
		if udr > 0 {
			gain = base / udr
		}
		t.AddRow(s.Name, udr, gain)
	}
	return t, nil
}

// Fig12 projects per-DIMM loss ratios onto a practical memory size (the
// paper uses 8 TB) and splits total loss into L_error and L_unverifiable
// for non-secure, baseline, SRC and SAC.
func Fig12(p RelParams, fit float64, targetBytes uint64) (*stats.Table, error) {
	if p.Trials == 0 {
		p = DefaultRelParams()
	}
	if fit == 0 {
		fit = 40
	}
	if targetBytes == 0 {
		targetBytes = 8 << 40
	}
	fsCfg := config.Table4()
	d := fsCfg.DIMM
	schemes := []*faultsim.Scheme{faultsim.NonSecureScheme(d)}
	for _, pol := range []core.ClonePolicy{core.Baseline(), core.SRC(), core.SAC()} {
		s, err := faultsim.BuildScheme(d, pol, p.ShadowSlots)
		if err != nil {
			return nil, err
		}
		schemes = append(schemes, s)
	}
	res, err := p.engine().RunFaultPoint(p.sweep("fig12", fsCfg, schemes), fit)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable(
		fmt.Sprintf("Fig 12 — expected 5-year data loss scaled to %s (FIT=%g)",
			stats.FormatBytes(float64(targetBytes)), fit),
		"scheme", "L_error", "L_unverifiable", "L_total", "vs non-secure")
	nsTotal := 0.0
	for i, sr := range res.Schemes {
		scale := float64(targetBytes)
		lErr := sr.ErrorRatio(res.Trials) * scale
		lUnv := sr.UDR(res.Trials) * scale
		total := lErr + lUnv
		if i == 0 {
			nsTotal = total
		}
		ratio := 0.0
		if nsTotal > 0 {
			ratio = total / nsTotal
		}
		t.AddRow(sr.Name, stats.FormatBytes(lErr), stats.FormatBytes(lUnv), stats.FormatBytes(total), ratio)
	}
	return t, nil
}
