package experiments

import (
	"strconv"
	"strings"
	"testing"

	"soteria/internal/memctrl"
)

// TestSchemeZooGoldenStructure runs the cross-scheme table at a small scale
// and asserts its shape and the scheme-defining signatures: every
// registered strategy gets a row, tracking-table schemes pay shadow writes
// where Triad pays none, and the recomputable Triad levels can only lower
// the UDR relative to full-persistence Soteria.
func TestSchemeZooGoldenStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	p := DefaultSchemeZooParams()
	p.Ops, p.Warmup, p.Trials = 2_000, 400, 5_000
	tab, err := SchemeZoo(p)
	if err != nil {
		t.Fatal(err)
	}
	names := memctrl.Strategies()
	assertShape(t, tab, len(names))

	cell := func(row int, col string) string {
		t.Helper()
		for i, h := range tab.Headers() {
			if h == col {
				return tab.Row(row)[i]
			}
		}
		t.Fatalf("no column %q in %v", col, tab.Headers())
		return ""
	}
	num := func(row int, col string) float64 {
		t.Helper()
		v, err := strconv.ParseFloat(cell(row, col), 64)
		if err != nil {
			t.Fatalf("row %d %s = %q: %v", row, col, cell(row, col), err)
		}
		return v
	}

	rowOf := map[string]int{}
	for i := range names {
		if got := cell(i, "scheme"); got != names[i] {
			t.Fatalf("row %d scheme = %q, want %q (registry order)", i, got, names[i])
		}
		rowOf[names[i]] = i
	}
	for name, i := range rowOf {
		if ns := num(i, "steady ns/op"); ns <= 0 {
			t.Errorf("%s: steady ns/op = %g, want > 0", name, ns)
		}
		if amp := num(i, "NVM write amp"); amp <= 1 {
			t.Errorf("%s: write amplification = %g, want > 1 (metadata always rides along)", name, amp)
		}
		if udr := num(i, "UDR"); udr <= 0 {
			t.Errorf("%s: UDR = %g, want > 0 at this trial count", name, udr)
		}
		shadow := num(i, "shadow wr/op")
		isTriad := strings.HasPrefix(name, "triad")
		if isTriad && shadow != 0 {
			t.Errorf("%s: shadow wr/op = %g, want 0 (no tracking table)", name, shadow)
		}
		if !isTriad && shadow <= 0 {
			t.Errorf("%s: shadow wr/op = %g, want > 0 (tracking table)", name, shadow)
		}
	}
	// Anubis writes two shadow lines per update to Soteria's one.
	if a, s := num(rowOf["anubis-shadow"], "shadow wr/op"), num(rowOf["soteria"], "shadow wr/op"); a <= s {
		t.Errorf("anubis shadow wr/op %g <= soteria %g, want more (2 lines per update)", a, s)
	}
	// Recomputable relaxed levels only remove loss modes: triad UDR can
	// never exceed the full-persistence soteria UDR on the same DIMM, and
	// persisting one more level (triad-nvm-2) can only add loss modes
	// relative to triad-nvm.
	sot := num(rowOf["soteria"], "UDR")
	t1 := num(rowOf["triad-nvm"], "UDR")
	t2 := num(rowOf["triad-nvm-2"], "UDR")
	if t1 > sot {
		t.Errorf("triad-nvm UDR %g exceeds soteria %g", t1, sot)
	}
	if t2 > sot {
		t.Errorf("triad-nvm-2 UDR %g exceeds soteria %g", t2, sot)
	}
	if t1 > t2 {
		t.Errorf("triad-nvm UDR %g exceeds triad-nvm-2 %g (more persisted levels, fewer recomputable)", t1, t2)
	}
}
