package experiments

import (
	"fmt"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/loadgen"
	"soteria/internal/memctrl"
	"soteria/internal/stats"
	"soteria/internal/tenant"
)

// TenantExpParams scales the multi-tenant service experiments: throughput
// and latency under tenant contention, fairness of the admission
// throttle, and the cost of an online key rotation under live load. All
// runs are in-process (loadgen.RunTenants over a LocalTenantConn), single
// driver, so every number derives from the simulated clocks and the
// tables are deterministic for a fixed seed.
type TenantExpParams struct {
	// Ops is the total operation budget per run, split evenly across the
	// run's tenants.
	Ops int
	// Lines is each tenant's extent size in 64-byte lines.
	Lines uint64
	// Seed drives every stream.
	Seed int64
	// Workload names the internal/workload pattern each stream replays.
	Workload string
	// TenantCounts is the contention sweep (one run per count).
	TenantCounts []int
	// Shards configures the underlying device.
	Shards int
	// RotateStride is the lines-per-step granularity of the interleaved
	// rotation sweep.
	RotateStride int
}

// DefaultTenantExpParams returns the scale used by cmd/experiments.
func DefaultTenantExpParams() TenantExpParams {
	return TenantExpParams{
		Ops:          20_000,
		Lines:        128,
		Seed:         1,
		Workload:     "hashmap",
		TenantCounts: []int{1, 2, 4, 8, 16},
		Shards:       4,
		RotateStride: 8,
	}
}

func (p TenantExpParams) fill() TenantExpParams {
	d := DefaultTenantExpParams()
	if p.Ops <= 0 {
		p.Ops = d.Ops
	}
	if p.Lines == 0 {
		p.Lines = d.Lines
	}
	if p.Workload == "" {
		p.Workload = d.Workload
	}
	if len(p.TenantCounts) == 0 {
		p.TenantCounts = d.TenantCounts
	}
	if p.Shards <= 0 {
		p.Shards = d.Shards
	}
	if p.RotateStride <= 0 {
		p.RotateStride = d.RotateStride
	}
	return p
}

// tenantRun provisions n tenants on a fresh engine-hosted device and
// runs one multi-tenant load run, optionally with a rotation armed.
func tenantRun(p TenantExpParams, n int, rotate uint32, rotateAt int) (*loadgen.TenantReport, error) {
	eng, err := device.NewEngine(device.EngineOptions{
		Options: device.Options{
			System:     config.TestSystem(),
			Mode:       memctrl.ModeSAC,
			Key:        []byte("experiments-tenant-device-key"),
			Shards:     p.Shards,
			QueueDepth: 16,
		},
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	svc, err := tenant.New(eng, tenant.Options{MasterKey: []byte("experiments-tenant-master")})
	if err != nil {
		return nil, err
	}
	specs := make([]loadgen.TenantSpec, n)
	for i := range specs {
		id := uint32(i + 1)
		token, err := svc.Provision(id, p.Lines, 0)
		if err != nil {
			return nil, fmt.Errorf("provision tenant %d: %w", id, err)
		}
		specs[i] = loadgen.TenantSpec{ID: id, Token: token, Lines: p.Lines}
	}
	conn := loadgen.NewLocalTenantConn(svc)
	return loadgen.RunTenants(loadgen.TenantParams{
		Dial:         func() (loadgen.TenantConn, error) { return conn, nil },
		Tenants:      specs,
		Ops:          p.Ops,
		Seed:         p.Seed,
		Workload:     p.Workload,
		RotateTenant: rotate,
		RotateAt:     rotateAt,
		RotateStride: p.RotateStride,
		Admin:        conn,
	})
}

// TenantContention sweeps the tenant count at a fixed total op budget:
// per-tenant key domains and guard metadata make every operation more
// expensive than the flat device, and the fair-share throttle keeps the
// service evenly divided — the fairness column is Jain's index over the
// per-tenant achieved rates.
func TenantContention(p TenantExpParams) (*stats.Table, error) {
	p = p.fill()
	t := stats.NewTable(
		fmt.Sprintf("Multi-tenant contention — %s, %d ops total, %d-line extents",
			p.Workload, p.Ops, p.Lines),
		"tenants", "ops done", "throttled", "mean (ns)", "p50 (ns)", "p99 (ns)",
		"per-tenant ops/sim-ms", "fairness (Jain)")
	for _, n := range p.TenantCounts {
		rep, err := tenantRun(p, n, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("tenants=%d: %w", n, err)
		}
		var done, throttled uint64
		var rates []float64
		for _, pr := range rep.Per {
			done += pr.Ops
			throttled += pr.Throttled
			rates = append(rates, pr.RateOpsPerSimMs)
		}
		t.AddRow(n, done, throttled,
			stats.FormatFloat(rep.All.MeanSimNanos), stats.FormatFloat(rep.All.P50),
			stats.FormatFloat(rep.All.P99), stats.FormatFloat(stats.Mean(rates)),
			stats.FormatFloat(rep.Fairness))
	}
	return t, nil
}

// TenantRotation measures an online key rotation under live load: the
// same seeded run with and without a rotation armed mid-way on one
// victim tenant. Lazy re-encryption means the victim keeps serving
// during the sweep; the cost shows up as the sweep's extra device
// traffic and in the victim's latency profile.
func TenantRotation(p TenantExpParams) (*stats.Table, error) {
	p = p.fill()
	const n, victim = 4, uint32(2)
	base, err := tenantRun(p, n, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	rot, err := tenantRun(p, n, victim, p.Ops/2)
	if err != nil {
		return nil, fmt.Errorf("rotation: %w", err)
	}
	victimOf := func(rep *loadgen.TenantReport) loadgen.TenantResult {
		for _, pr := range rep.Per {
			if pr.ID == victim {
				return pr
			}
		}
		return loadgen.TenantResult{}
	}
	t := stats.NewTable(
		fmt.Sprintf("Online key rotation under load — %d tenants, victim tenant %d, %d ops",
			n, victim, p.Ops),
		"run", "victim ops", "victim mean (ns)", "victim p99 (ns)",
		"rotated lines", "sweep steps", "sweep span (ops)")
	bv := victimOf(base)
	t.AddRow("no rotation", bv.Ops, stats.FormatFloat(bv.Latency.MeanSimNanos),
		stats.FormatFloat(bv.Latency.P99), 0, 0, 0)
	rv := victimOf(rot)
	r := rot.Rotation
	t.AddRow("rotation mid-run", rv.Ops, stats.FormatFloat(rv.Latency.MeanSimNanos),
		stats.FormatFloat(rv.Latency.P99), r.Lines, r.Steps, r.DoneAtOp-r.StartedAtOp)
	return t, nil
}
