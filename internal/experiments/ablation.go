package experiments

import (
	"fmt"

	"soteria/internal/config"
	"soteria/internal/core"
	"soteria/internal/cpusim"
	"soteria/internal/faultsim"
	"soteria/internal/memctrl"
	"soteria/internal/stats"
	"soteria/internal/workload"
)

// AblationCloneDepth sweeps uniform clone depths 1..5 and reports both what
// they cost (NVM writes, from the performance model) and what they buy
// (UDR, from the fault simulator). It quantifies the design argument behind
// Table 2: uniform deep cloning pays leaf-level write cost for resilience
// that SAC's targeted upper-level investment gets almost for free.
func AblationCloneDepth(perf PerfParams, rel RelParams, fit float64) (*stats.Table, error) {
	if perf.Ops == 0 {
		perf = DefaultPerfParams()
		perf.Ops, perf.Warmup = 40_000, 10_000
	}
	if rel.Trials == 0 {
		rel = DefaultRelParams()
		rel.Trials = 40_000
	}
	if fit == 0 {
		fit = 80
	}
	wl := workload.ByNameMust("hashmap")
	fsCfg := config.Table4()

	t := stats.NewTable(
		fmt.Sprintf("Ablation — uniform clone depth (hashmap writes; UDR at FIT=%g)", fit),
		"depth", "NVM writes", "write overhead %", "UDR", "UDR vs depth-1")
	var baseWrites, baseUDR float64
	for depth := 1; depth <= core.MaxDepth; depth++ {
		policy, err := core.Custom(fmt.Sprintf("uniform-%d", depth), []int{depth})
		if err != nil {
			return nil, err
		}
		res, err := runPolicy(wl, policy, perf)
		if err != nil {
			return nil, err
		}
		writes := float64(res.Ctrl.TotalNVMWrites())

		scheme, err := faultsim.BuildScheme(fsCfg.DIMM, policy, rel.ShadowSlots)
		if err != nil {
			return nil, err
		}
		mc, err := rel.engine().RunFaultPoint(
			rel.sweep("ablation-depth", fsCfg, []*faultsim.Scheme{scheme}), fit)
		if err != nil {
			return nil, err
		}
		udr := mc.Schemes[0].UDR(mc.Trials)

		if depth == 1 {
			baseWrites, baseUDR = writes, udr
		}
		gain := 0.0
		if udr > 0 {
			gain = baseUDR / udr
		}
		t.AddRow(depth, uint64(writes), (writes/baseWrites-1)*100, udr, gain)
	}
	return t, nil
}

// runPolicy runs one workload under an arbitrary clone policy (the
// controller modes only expose baseline/SRC/SAC, so this builds the
// controller by construction-equivalent means: a custom policy maps onto
// the nearest mode semantics via depth table).
func runPolicy(w workload.Workload, policy core.ClonePolicy, p PerfParams) (cpusim.Result, error) {
	cfg := config.Table3()
	if p.MetaCacheBytes > 0 {
		cfg.Security.MetadataCache.SizeBytes = p.MetaCacheBytes
	}
	if p.LLCBytes > 0 {
		cfg.LLC.SizeBytes = p.LLCBytes
	}
	ctrl, err := memctrl.NewWithPolicy(cfg, policy, []byte("ablation"), memctrl.Options{})
	if err != nil {
		return cpusim.Result{}, err
	}
	cpu, err := cpusim.New(cfg, ctrl)
	if err != nil {
		return cpusim.Result{}, err
	}
	gen := w.New(p.Footprint, p.Seed)
	if p.Warmup > 0 {
		if _, err := cpu.Run(gen, p.Warmup); err != nil {
			return cpusim.Result{}, err
		}
		ctrl.ResetStats()
	}
	return cpu.Run(gen, p.Warmup+p.Ops)
}

// AblationEagerLazy compares the paper's lazy tree update against the eager
// scheme of §2.5 on write-heavy workloads — quantifying the "extreme
// slowdown" that motivates lazy updates (and hence the whole
// Anubis/Soteria recovery machinery).
func AblationEagerLazy(p PerfParams) (*stats.Table, error) {
	if p.Ops == 0 {
		p = DefaultPerfParams()
		p.Ops, p.Warmup = 40_000, 10_000
	}
	names := p.Workloads
	if len(names) == 0 {
		names = []string{"uBENCH64", "hashmap", "tpcc", "queue"}
	}
	t := stats.NewTable("Ablation — lazy vs eager tree update (§2.5)",
		"workload", "lazy time", "eager time", "slowdown x", "lazy writes", "eager writes", "writes x")
	for _, name := range names {
		w := workload.ByNameMust(name)
		lazy, err := runWithOptions(w, p, memctrl.Options{})
		if err != nil {
			return nil, err
		}
		eager, err := runWithOptions(w, p, memctrl.Options{EagerTreeUpdate: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			lazy.ExecTime.Duration().String(), eager.ExecTime.Duration().String(),
			float64(eager.ExecTime)/float64(lazy.ExecTime),
			lazy.Ctrl.TotalNVMWrites(), eager.Ctrl.TotalNVMWrites(),
			float64(eager.Ctrl.TotalNVMWrites())/float64(lazy.Ctrl.TotalNVMWrites()))
	}
	return t, nil
}

func runWithOptions(w workload.Workload, p PerfParams, opt memctrl.Options) (cpusim.Result, error) {
	cfg := config.Table3()
	if p.MetaCacheBytes > 0 {
		cfg.Security.MetadataCache.SizeBytes = p.MetaCacheBytes
	}
	if p.LLCBytes > 0 {
		cfg.LLC.SizeBytes = p.LLCBytes
	}
	ctrl, err := memctrl.New(cfg, memctrl.ModeBaseline, []byte("ablation"), opt)
	if err != nil {
		return cpusim.Result{}, err
	}
	cpu, err := cpusim.New(cfg, ctrl)
	if err != nil {
		return cpusim.Result{}, err
	}
	gen := w.New(p.Footprint, p.Seed)
	if p.Warmup > 0 {
		if _, err := cpu.Run(gen, p.Warmup); err != nil {
			return cpusim.Result{}, err
		}
		ctrl.ResetStats()
	}
	return cpu.Run(gen, p.Warmup+p.Ops)
}

// MetaMissTable reports the §5.1 observation that the metadata cache miss
// rate stays low ("less than 4% for most applications" for tree nodes).
func MetaMissTable(r *PerfResults) *stats.Table {
	t := stats.NewTable("§5.1 — metadata cache behaviour",
		"workload", "accesses", "misses", "miss rate %")
	for _, name := range r.Names {
		res := r.Get(name, memctrl.ModeSRC)
		s := res.Meta
		t.AddRow(name, s.Hits+s.Misses, s.Misses, s.MissRatio()*100)
	}
	return t
}
