package experiments

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"soteria/internal/config"
	"soteria/internal/core"
	"soteria/internal/faultsim"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/stats"
)

// SchemeZooParams scales the cross-scheme comparison of the registered
// metadata-persistence strategies (the "scheme zoo"). Every number in the
// resulting table is deterministic for a fixed parameter set: the steady
// state and recovery columns come from the simulated clock and device
// operation counts (never wall time), and the UDR column is a seeded
// Monte Carlo.
type SchemeZooParams struct {
	// Ops is the number of measured data operations per scheme.
	Ops int
	// Warmup operations run before the statistics reset.
	Warmup int
	// Seed fixes the workload and the fault stream.
	Seed int64
	// Trials is the Monte Carlo trial count for the UDR column.
	Trials int
	// FIT is the per-chip failure rate for the UDR column.
	FIT float64
	// ShadowSlots is the tracked-slot budget used to size each scheme's
	// shadow region on the Table 4 DIMM.
	ShadowSlots uint64
	// Workers bounds Monte Carlo parallelism (0 = GOMAXPROCS). Results
	// are bit-identical for any value.
	Workers int
}

// DefaultSchemeZooParams returns the scale used by `cmd/experiments`.
func DefaultSchemeZooParams() SchemeZooParams {
	return SchemeZooParams{
		Ops:         20_000,
		Warmup:      4_000,
		Seed:        1,
		Trials:      120_000,
		FIT:         40,
		ShadowSlots: 8192,
	}
}

// schemeRun holds one strategy's measured columns.
type schemeRun struct {
	name        string
	nsPerOp     float64
	writeAmp    float64
	shadowPerOp float64
	recReads    uint64
	recWrites   uint64
	recNS       int64
	recovered   int
	udr         float64
}

// SchemeZoo drives every registered metadata-persistence strategy through
// the identical seeded workload on the test system and reports, per scheme:
// steady-state latency (simulated ns per operation), NVM write
// amplification (total lines written per data line written), shadow-region
// write cost per operation, the cost of a crash recovery (device lines
// read/written and the latency-weighted estimate), and the unverifiable
// data ratio under the Table 4 fault model. It is the experiment behind
// `results/schemes.md` and `cmd/experiments -run schemes`.
func SchemeZoo(p SchemeZooParams) (*stats.Table, error) {
	if p.Ops == 0 {
		p = DefaultSchemeZooParams()
	}
	udrs, err := schemeUDRs(p)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("Scheme zoo — metadata-persistence strategies (test system, SRC clones, UDR at FIT=%g)", p.FIT),
		"scheme", "steady ns/op", "NVM write amp", "shadow wr/op",
		"recovery lines R/W", "recovery est", "recovered blocks", "UDR")
	for _, name := range memctrl.Strategies() {
		r, err := runSchemeWorkload(p, name)
		if err != nil {
			return nil, err
		}
		r.udr = udrs[name]
		t.AddRow(r.name,
			stats.FormatFloat(r.nsPerOp),
			stats.FormatFloat(r.writeAmp),
			stats.FormatFloat(r.shadowPerOp),
			fmt.Sprintf("%d/%d", r.recReads, r.recWrites),
			fmt.Sprintf("%.2fus", float64(r.recNS)/1e3),
			r.recovered,
			stats.FormatFloat(r.udr))
	}
	return t, nil
}

// runSchemeWorkload measures one strategy's steady-state and recovery
// columns on the small test system. The op schedule (3:1 write:read over
// the whole data region) is derived only from the seed, so every strategy
// sees the same trace.
func runSchemeWorkload(p SchemeZooParams, name string) (schemeRun, error) {
	r := schemeRun{name: name}
	sys := config.TestSystem()
	ctrl, err := memctrl.New(sys, memctrl.ModeSRC, []byte("scheme-zoo"), memctrl.Options{Strategy: name})
	if err != nil {
		return r, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	blocks := int64(ctrl.Layout().DataBlocks)
	var now sim.Time
	var line nvm.Line
	op := func(i int) error {
		addr := uint64(rng.Int63n(blocks)) * nvm.LineSize
		if i%4 == 3 {
			_, n, err := ctrl.ReadBlock(now, addr)
			now = n
			return err
		}
		binary.LittleEndian.PutUint64(line[:8], uint64(i))
		n, err := ctrl.WriteBlock(now, addr, &line)
		now = n
		return err
	}
	for i := 0; i < p.Warmup; i++ {
		if err := op(i); err != nil {
			return r, fmt.Errorf("%s warmup op %d: %w", name, i, err)
		}
	}
	ctrl.ResetStats()
	start := now
	for i := 0; i < p.Ops; i++ {
		if err := op(p.Warmup + i); err != nil {
			return r, fmt.Errorf("%s op %d: %w", name, i, err)
		}
	}
	st := ctrl.Stats()
	r.nsPerOp = float64((now - start).Duration().Nanoseconds()) / float64(p.Ops)
	if data := st.NVMWrites[memctrl.WCData]; data > 0 {
		r.writeAmp = float64(st.TotalNVMWrites()) / float64(data)
	}
	r.shadowPerOp = float64(st.NVMWrites[memctrl.WCShadow]) / float64(p.Ops)

	// Recovery cost: cut power mid-steady-state and count the device
	// lines the rebuild touches. The simulator does not model recovery
	// latency on the clock (recovery runs "outside time"), so the
	// estimate prices the counted operations at the configured PCM array
	// latencies instead.
	if err := ctrl.Crash(); err != nil {
		return r, fmt.Errorf("%s crash: %w", name, err)
	}
	before := ctrl.Device().Stats()
	rep, err := ctrl.Recover()
	if err != nil {
		return r, fmt.Errorf("%s recover: %w", name, err)
	}
	if len(rep.FailedBlocks) > 0 || len(rep.LostSlots) > 0 {
		return r, fmt.Errorf("%s recovery lost data with no faults injected: %+v", name, rep)
	}
	after := ctrl.Device().Stats()
	r.recReads = after.Reads - before.Reads
	r.recWrites = after.Writes - before.Writes
	r.recNS = int64(r.recReads)*sys.NVM.ReadLatency.Nanoseconds() +
		int64(r.recWrites)*sys.NVM.WriteLatency.Nanoseconds()
	r.recovered = rep.RecoveredBlocks
	if err := ctrl.VerifyAll(); err != nil {
		return r, fmt.Errorf("%s post-recovery verify: %w", name, err)
	}
	return r, nil
}

// schemeUDRs runs one Monte Carlo over the Table 4 DIMM with every
// strategy's layout instantiated side by side: each scheme sizes its own
// shadow region (Soteria one line per slot, Anubis two, Triad none) and
// Triad variants mark their relaxed tree levels recomputable.
func schemeUDRs(p SchemeZooParams) (map[string]float64, error) {
	fsCfg := config.Table4()
	names := memctrl.Strategies()
	schemes := make([]*faultsim.Scheme, 0, len(names))
	for _, name := range names {
		lines, persistLevels, err := memctrl.StrategyReliability(name, p.ShadowSlots)
		if err != nil {
			return nil, err
		}
		s, err := faultsim.BuildScheme(fsCfg.DIMM, core.SRC(), lines)
		if err != nil {
			return nil, err
		}
		s.Name = name
		if persistLevels > 0 {
			// Level N+1 seeds the bounded counter search, everything
			// above it is rewritten wholesale at recovery.
			s.RecomputableAbove = persistLevels + 1
		}
		schemes = append(schemes, s)
	}
	res, err := faultsim.Run(faultsim.Options{
		Config:      fsCfg,
		TotalFIT:    p.FIT,
		Trials:      p.Trials,
		Seed:        p.Seed,
		Workers:     p.Workers,
		Conditional: true,
	}, schemes)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(names))
	for i, name := range names {
		out[name] = res.Schemes[i].UDR(res.Trials)
	}
	return out, nil
}
