package experiments

import (
	"math/rand"

	"soteria/internal/stats"
	"soteria/internal/wear"
)

// WearLeveling demonstrates the Start-Gap substrate (§2.3/§7 background):
// hot-spotted write streams with and without leveling, reporting the
// max/mean wear ratio (1.0 = perfectly even).
func WearLeveling(lines uint64, writes int, psi uint64, seed int64) (*stats.Table, error) {
	if lines == 0 {
		lines = 4096
	}
	if writes == 0 {
		writes = 2_000_000
	}
	if psi == 0 {
		psi = 100
	}
	t := stats.NewTable("Start-Gap wear leveling — max/mean wear (1.0 = even)",
		"write pattern", "unleveled", "start-gap", "improvement x", "move overhead %")

	patterns := []struct {
		name string
		next func(rng *rand.Rand, i int) uint64
	}{
		{"uniform random", func(rng *rand.Rand, i int) uint64 { return rng.Uint64() % lines }},
		{"90% one hot line", func(rng *rand.Rand, i int) uint64 {
			if rng.Intn(10) != 0 {
				return 7
			}
			return rng.Uint64() % lines
		}},
		{"zipf hot set", func(rng *rand.Rand, i int) uint64 {
			z := rng.Uint64() % lines
			for k := 0; k < 3; k++ { // crude skew: min of draws
				if w := rng.Uint64() % lines; w < z {
					z = w
				}
			}
			return z
		}},
		{"sequential sweep", func(rng *rand.Rand, i int) uint64 { return uint64(i) % lines }},
	}

	for _, p := range patterns {
		rng := rand.New(rand.NewSource(seed))
		unleveled := make([]uint64, lines)
		leveledWear := make([]uint64, lines+1)
		store := make([][64]byte, lines+1)
		region, err := wear.NewRegion(lines, psi,
			func(phys uint64) [64]byte { return store[phys] },
			func(phys uint64, d *[64]byte) { leveledWear[phys]++; store[phys] = *d })
		if err != nil {
			return nil, err
		}
		var v [64]byte
		for i := 0; i < writes; i++ {
			la := p.next(rng, i)
			unleveled[la]++
			region.Write(la, &v)
		}
		un := wear.WearSpread(unleveled)
		lv := wear.WearSpread(leveledWear)
		improvement := 0.0
		if lv > 0 {
			improvement = un / lv
		}
		overhead := float64(region.StartGapState().Moves()) / float64(writes) * 100
		t.AddRow(p.name, un, lv, improvement, overhead)
	}
	return t, nil
}
