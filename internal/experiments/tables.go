package experiments

import (
	"fmt"

	"soteria/internal/config"
	"soteria/internal/stats"
)

// Table3 renders the simulated system configuration.
func Table3() *stats.Table {
	c := config.Table3()
	t := stats.NewTable("Table 3 — simulated system configuration", "parameter", "value")
	t.AddRow("CPU", fmt.Sprintf("%d cores, x86-64-style trace-driven, %.2f GHz", c.CPU.Cores, c.CPU.ClockHz/1e9))
	t.AddRow("L1", fmt.Sprintf("private, %d cycles, %dkB, %d-way", c.L1.LatencyCycles, c.L1.SizeBytes>>10, c.L1.Ways))
	t.AddRow("L2", fmt.Sprintf("private, %d cycles, %dkB, %d-way", c.L2.LatencyCycles, c.L2.SizeBytes>>10, c.L2.Ways))
	t.AddRow("LLC", fmt.Sprintf("shared, %d cycles, %dMB, %d-way", c.LLC.LatencyCycles, c.LLC.SizeBytes>>20, c.LLC.Ways))
	t.AddRow("cache line", fmt.Sprintf("%dB", config.BlockSize))
	t.AddRow("NVM capacity", stats.FormatBytes(float64(c.NVM.CapacityBytes)))
	t.AddRow("PCM latencies", fmt.Sprintf("read %v, write %v", c.NVM.ReadLatency, c.NVM.WriteLatency))
	t.AddRow("encryption", fmt.Sprintf("AES counter mode, %d-way split counter", c.Security.CounterArity))
	t.AddRow("Merkle tree", fmt.Sprintf("ToC style, arity=%d", c.Security.TreeArity))
	t.AddRow("metadata cache", fmt.Sprintf("%dkB, %d-way", c.Security.MetadataCache.SizeBytes>>10, c.Security.MetadataCache.Ways))
	t.AddRow("WPQ", fmt.Sprintf("%d entries (ADR)", c.NVM.WPQEntries))
	return t
}

// Table4 renders the FaultSim configuration.
func Table4() *stats.Table {
	c := config.Table4()
	t := stats.NewTable("Table 4 — FaultSim configuration", "parameter", "value")
	t.AddRow("chips, chips/rank, bus per chip", fmt.Sprintf("%d, %d, %d", c.DIMM.Chips, c.DIMM.ChipsPerRank, c.DIMM.BusBits))
	t.AddRow("ranks, banks, rows, cols", fmt.Sprintf("%d, %d, %d, %d", c.DIMM.Ranks, c.DIMM.Banks, c.DIMM.Rows, c.DIMM.Cols))
	t.AddRow("repair mechanism", "Chipkill (RS symbol correction)")
	t.AddRow("failure distribution", "Hopper (Sridharan et al.)")
	t.AddRow("FIT", "varied 1-80 for sensitivity")
	t.AddRow("data block", fmt.Sprintf("%d bits", c.DIMM.DataBlockBits))
	t.AddRow("simulated lifetime", fmt.Sprintf("%.0f years", c.Years))
	t.AddRow("scrub interval", fmt.Sprintf("%v", c.ScrubInterval))
	t.AddRow("simulations", fmt.Sprintf("%d (importance-sampled)", c.Trials))
	return t
}
