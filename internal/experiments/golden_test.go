package experiments

import (
	"strconv"
	"testing"

	"soteria/internal/stats"
)

// Golden-structure tests: now that every Monte Carlo sweep is block-
// deterministic (identical for any worker count), the tables the
// experiments emit have a fixed shape and fixed orderings that can be
// asserted directly instead of eyeballed.

// assertShape checks that every row has exactly one cell per header.
func assertShape(t *testing.T, tab *stats.Table, rows int) {
	t.Helper()
	if tab.NumRows() != rows {
		t.Fatalf("%s: rows = %d, want %d", tab.Title, tab.NumRows(), rows)
	}
	cols := len(tab.Headers())
	if cols == 0 {
		t.Fatalf("%s: no headers", tab.Title)
	}
	for i := 0; i < tab.NumRows(); i++ {
		if got := len(tab.Row(i)); got != cols {
			t.Fatalf("%s: row %d has %d cells, want %d", tab.Title, i, got, cols)
		}
	}
}

func TestFig11GoldenStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	p := DefaultRelParams()
	p.Trials = 4_000
	p.FITs = []float64{1, 20, 80}
	r, err := Fig11(p)
	if err != nil {
		t.Fatal(err)
	}
	assertShape(t, r.Table, len(p.FITs))
	want := []string{"FIT/chip", "baseline UDR", "SRC UDR", "SAC UDR", "UE trials (cond.)"}
	if h := r.Table.Headers(); len(h) != len(want) {
		t.Fatalf("headers = %v, want %v", h, want)
	} else {
		for i := range want {
			if h[i] != want[i] {
				t.Fatalf("header %d = %q, want %q", i, h[i], want[i])
			}
		}
	}
	// The first column is the FIT point, in sweep order.
	for i, fit := range p.FITs {
		got, err := strconv.ParseFloat(r.Table.Row(i)[0], 64)
		if err != nil || got != fit {
			t.Fatalf("row %d FIT cell = %q, want %g", i, r.Table.Row(i)[0], fit)
		}
	}
	// Resilience ordering must hold at every FIT point: the paper's whole
	// argument is SAC >= SRC >= baseline protection, i.e. SAC UDR <= SRC
	// UDR <= baseline UDR (ties at zero allowed for the tiny trial count).
	for i, fit := range p.FITs {
		b, s, a := r.UDRs["baseline"][i], r.UDRs["SRC"][i], r.UDRs["SAC"][i]
		if b <= 0 {
			t.Fatalf("FIT %g: baseline UDR = %g, want > 0", fit, b)
		}
		if s > b {
			t.Fatalf("FIT %g: SRC UDR %g exceeds baseline %g", fit, s, b)
		}
		if a > s {
			t.Fatalf("FIT %g: SAC UDR %g exceeds SRC %g", fit, a, s)
		}
	}
	// More faults, more loss: the baseline UDR must grow across the sweep.
	first, last := r.UDRs["baseline"][0], r.UDRs["baseline"][len(p.FITs)-1]
	if last <= first {
		t.Fatalf("baseline UDR not increasing across FIT sweep: %g at FIT %g vs %g at FIT %g",
			first, p.FITs[0], last, p.FITs[len(p.FITs)-1])
	}
}

func TestFig12GoldenStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	p := DefaultRelParams()
	p.Trials = 4_000
	tab, err := Fig12(p, 80, 8<<40)
	if err != nil {
		t.Fatal(err)
	}
	assertShape(t, tab, 4)
	wantRows := []string{"non-secure", "baseline", "SRC", "SAC"}
	for i, name := range wantRows {
		if got := tab.Row(i)[0]; got != name {
			t.Fatalf("row %d scheme = %q, want %q", i, got, name)
		}
	}
	// The non-secure row is the reference: its "vs non-secure" ratio is 1.
	if ratio := tab.Row(0)[4]; ratio != "1.000" {
		t.Fatalf("non-secure ratio cell = %q, want 1.000", ratio)
	}
}

func TestTable2GoldenStructure(t *testing.T) {
	tab := Table2()
	assertShape(t, tab, 2)
	if len(tab.Headers()) != 10 { // scheme + L1..L9
		t.Fatalf("headers = %v", tab.Headers())
	}
	if tab.Row(0)[0] != "SRC" || tab.Row(1)[0] != "SAC" {
		t.Fatalf("scheme rows = %q, %q", tab.Row(0)[0], tab.Row(1)[0])
	}
	// SAC invests more clones at upper levels than SRC does (that is the
	// "asymmetric" in selective asymmetric cloning): its top-level count
	// must strictly exceed SRC's.
	srcTop, err1 := strconv.Atoi(tab.Row(0)[9])
	sacTop, err2 := strconv.Atoi(tab.Row(1)[9])
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable L9 cells %q, %q", tab.Row(0)[9], tab.Row(1)[9])
	}
	if sacTop <= srcTop {
		t.Fatalf("SAC top-level clones (%d) not above SRC's (%d)", sacTop, srcTop)
	}
}

func TestConfigTablesGoldenStructure(t *testing.T) {
	for _, tab := range []*stats.Table{Table3(), Table4()} {
		assertShape(t, tab, tab.NumRows())
		if tab.NumRows() < 6 {
			t.Fatalf("%s: only %d rows", tab.Title, tab.NumRows())
		}
	}
}

func TestPerfTablesGoldenStructure(t *testing.T) {
	res, err := RunPerf(smallPerf())
	if err != nil {
		t.Fatal(err)
	}
	workloads := len(res.Names)
	// Fig 10a/b/c carry one row per workload plus an average row.
	assertShape(t, Fig10a(res), workloads+1)
	assertShape(t, Fig10b(res), workloads+1)
	assertShape(t, Fig10c(res), workloads+1)
	fig4 := Fig4(res)
	assertShape(t, fig4, workloads)
	if len(fig4.Headers()) < 2 {
		t.Fatalf("Fig 4 has no level columns: %v", fig4.Headers())
	}
	// Every average row is labelled.
	for _, tab := range []*stats.Table{Fig10a(res), Fig10b(res), Fig10c(res)} {
		if got := tab.Row(tab.NumRows() - 1)[0]; got != "average" {
			t.Fatalf("%s: last row starts with %q, want average", tab.Title, got)
		}
	}
}

func TestTenantTablesGoldenStructure(t *testing.T) {
	p := TenantExpParams{Ops: 800, Lines: 32, Seed: 1, TenantCounts: []int{1, 2, 4}}
	tab, err := TenantContention(p)
	if err != nil {
		t.Fatal(err)
	}
	assertShape(t, tab, len(p.TenantCounts))
	// Contention column: the first cell of row i is the tenant count.
	for i, n := range p.TenantCounts {
		if got := tab.Row(i)[0]; got != strconv.Itoa(n) {
			t.Fatalf("row %d tenants cell = %q, want %d", i, got, n)
		}
	}
	// Fairness stays an index: (0, 1] in every row.
	for i := range p.TenantCounts {
		f, err := strconv.ParseFloat(tab.Row(i)[7], 64)
		if err != nil || f <= 0 || f > 1 {
			t.Fatalf("row %d fairness = %q (%v)", i, tab.Row(i)[7], err)
		}
	}
	rot, err := TenantRotation(p)
	if err != nil {
		t.Fatal(err)
	}
	assertShape(t, rot, 2)
	if rot.Row(0)[0] != "no rotation" || rot.Row(1)[0] != "rotation mid-run" {
		t.Fatalf("rotation rows = %q, %q", rot.Row(0)[0], rot.Row(1)[0])
	}
	// The armed run must actually have swept lines.
	if lines := rot.Row(1)[4]; lines == "0" {
		t.Fatalf("rotation run swept no lines")
	}
}
