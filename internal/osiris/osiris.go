// Package osiris implements the counter-recovery scheme of Osiris (Ye et
// al., MICRO 2018) as used by Soteria (Table 1: "for counter recovery, we
// use the state-of-the-art scheme, Osiris").
//
// The idea: encryption counters cached on chip may be ahead of their stale
// NVM copy when power fails. If the controller bounds the number of
// in-cache increments between write-backs to N, recovery can try the stale
// value plus 0..N increments and accept the candidate that passes an
// independent check — here, the per-block data MAC that was persisted
// together with every ciphertext write. Because each data block carries its
// own MAC, every minor counter of a 64-ary split-counter block is
// recoverable independently, and the major counter's low bits are restored
// from the Anubis shadow entry.
package osiris

import "fmt"

// DefaultLimit is the default bound on in-cache counter increments between
// forced write-backs (Osiris uses a small constant; 8 keeps recovery trials
// cheap while making forced write-backs rare).
const DefaultLimit = 8

// RecoverValue searches stale, stale+1, ..., stale+limit for the first
// value accepted by verify. ok is false when no candidate passes — the
// counter was updated more times than the bound allows (a controller bug)
// or the verification target itself is corrupt.
func RecoverValue(stale uint64, limit int, verify func(v uint64) bool) (uint64, bool) {
	for d := 0; d <= limit; d++ {
		if v := stale + uint64(d); verify(v) {
			return v, true
		}
	}
	return 0, false
}

// RestoreLSB returns the smallest value >= stale whose low 16 bits equal
// lsb. This reconstructs a full counter from its stale memory copy plus the
// 16-bit LSBs kept in a Soteria shadow entry; it is exact as long as the
// counter advanced fewer than 2^16 times since its last write-back, which
// the controller guarantees by forcing a write-back before the LSBs can
// wrap (§3.2.1 of the paper argues 2^16 in-cache updates without eviction
// is already "extremely rare").
func RestoreLSB(stale uint64, lsb uint16) uint64 {
	high := stale >> 16
	cand := high<<16 | uint64(lsb)
	if cand < stale {
		cand += 1 << 16
	}
	return cand
}

// Verifier checks a candidate counter for one slot of a split-counter
// block, typically by recomputing the data MAC of the covered block.
type Verifier func(slot int, counter uint64) bool

// SplitCounters is the minimal view of a split-counter block that recovery
// manipulates (mirrors ctrenc.CounterBlock without importing it, keeping
// this package dependency-free and independently testable).
type SplitCounters struct {
	Major  uint64
	Minors [64]uint8
}

// Counter returns the combined counter of slot i (major<<6 | minor).
func (s *SplitCounters) Counter(i int) uint64 { return s.Major<<6 | uint64(s.Minors[i]) }

// RecoverBlock reconstructs the up-to-date state of a split-counter block:
// the major counter from its shadow LSBs, then each minor independently by
// bounded trials against verify. Slots whose verification never passes are
// reported in failed (their covered data blocks are unrecoverable).
func RecoverBlock(stale SplitCounters, majorLSB uint16, limit int, verify Verifier) (rec SplitCounters, failed []int, err error) {
	if limit < 0 {
		return rec, nil, fmt.Errorf("osiris: negative trial limit %d", limit)
	}
	rec = stale
	rec.Major = RestoreLSB(stale.Major, majorLSB)
	majorBumped := rec.Major != stale.Major
	for slot := range rec.Minors {
		start := uint64(stale.Minors[slot])
		if majorBumped {
			// A major bump re-encrypted the page and zeroed minors;
			// the stale minors are meaningless, so search from 0.
			start = 0
		}
		v, ok := RecoverValue(start, limit, func(m uint64) bool {
			if m > 63 {
				return false
			}
			return verify(slot, rec.Major<<6|m)
		})
		if !ok {
			failed = append(failed, slot)
			continue
		}
		rec.Minors[slot] = uint8(v)
	}
	return rec, failed, nil
}
