package osiris

import (
	"testing"
	"testing/quick"
)

func TestRecoverValueFindsTruth(t *testing.T) {
	f := func(stale uint64, deltaRaw uint8) bool {
		stale &= 1<<40 - 1 // keep additions far from overflow
		delta := uint64(deltaRaw % (DefaultLimit + 1))
		truth := stale + delta
		v, ok := RecoverValue(stale, DefaultLimit, func(c uint64) bool { return c == truth })
		return ok && v == truth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverValueFailsBeyondLimit(t *testing.T) {
	truth := uint64(100)
	_, ok := RecoverValue(90, 8, func(c uint64) bool { return c == truth })
	if ok {
		t.Fatal("recovered a counter 10 increments ahead with limit 8")
	}
}

func TestRestoreLSB(t *testing.T) {
	cases := []struct {
		stale uint64
		lsb   uint16
		want  uint64
	}{
		{0x12345, 0x2345, 0x12345},                             // unchanged
		{0x12345, 0x2350, 0x12350},                             // advanced, no carry
		{0x1FFF0, 0x0005, 0x20005},                             // advanced across the 16-bit wrap
		{0, 0, 0},                                              // zero
		{0xFFFF, 0x0000, 0x10000},                              // exact wrap boundary
		{0x2FFFF, 0xFFFF, 0x2FFFF},                             // max LSB unchanged
		{1<<56 - 2, 0x0001, (1<<56 - 2) - 0xFFFE + 0xFFFF + 2}, // near top
	}
	for _, c := range cases {
		if got := RestoreLSB(c.stale, c.lsb); got != c.want {
			t.Errorf("RestoreLSB(%#x, %#x) = %#x, want %#x", c.stale, c.lsb, got, c.want)
		}
	}
}

func TestRestoreLSBProperty(t *testing.T) {
	// For any stale value and any advance < 2^16, restoring from the
	// advanced value's LSBs recovers it exactly.
	f := func(staleRaw uint64, adv uint16) bool {
		stale := staleRaw & (1<<48 - 1)
		truth := stale + uint64(adv)
		got := RestoreLSB(stale, uint16(truth&0xFFFF))
		return got == truth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverBlockMinorsIndependently(t *testing.T) {
	var truth SplitCounters
	truth.Major = 7
	stale := truth
	// Advance a few minors by varying amounts within the limit.
	truth.Minors[0] = 3
	truth.Minors[13] = 8
	truth.Minors[63] = 1
	stale.Minors[13] = 5 // stale by 3
	verify := func(slot int, counter uint64) bool { return counter == truth.Counter(slot) }
	rec, failed, err := RecoverBlock(stale, uint16(truth.Major&0xFFFF), DefaultLimit, verify)
	if err != nil || len(failed) != 0 {
		t.Fatalf("failed slots %v err %v", failed, err)
	}
	if rec != truth {
		t.Fatalf("recovered %+v want %+v", rec, truth)
	}
}

func TestRecoverBlockAfterMajorBump(t *testing.T) {
	// The cached block did a major bump (page re-encryption) after the
	// last write-back: stale minors are garbage; recovery must restart
	// minors from zero under the new major.
	var truth SplitCounters
	truth.Major = 0x10001
	truth.Minors[2] = 4
	stale := SplitCounters{Major: 0x10000}
	stale.Minors[2] = 60
	stale.Minors[9] = 33
	verify := func(slot int, counter uint64) bool { return counter == truth.Counter(slot) }
	rec, failed, err := RecoverBlock(stale, uint16(truth.Major&0xFFFF), DefaultLimit, verify)
	if err != nil || len(failed) != 0 {
		t.Fatalf("failed %v err %v", failed, err)
	}
	if rec != truth {
		t.Fatalf("recovered major %#x minors[2]=%d", rec.Major, rec.Minors[2])
	}
}

func TestRecoverBlockReportsFailedSlots(t *testing.T) {
	var truth SplitCounters
	stale := truth
	truth.Minors[5] = DefaultLimit + 3 // beyond the trial bound
	verify := func(slot int, counter uint64) bool { return counter == truth.Counter(slot) }
	_, failed, err := RecoverBlock(stale, 0, DefaultLimit, verify)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != 5 {
		t.Fatalf("failed = %v, want [5]", failed)
	}
}

func TestRecoverBlockRejectsNegativeLimit(t *testing.T) {
	if _, _, err := RecoverBlock(SplitCounters{}, 0, -1, func(int, uint64) bool { return true }); err == nil {
		t.Fatal("negative limit accepted")
	}
}
