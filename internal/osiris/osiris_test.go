package osiris

import (
	"testing"
	"testing/quick"
)

func TestRecoverValueFindsTruth(t *testing.T) {
	f := func(stale uint64, deltaRaw uint8) bool {
		stale &= 1<<40 - 1 // keep additions far from overflow
		delta := uint64(deltaRaw % (DefaultLimit + 1))
		truth := stale + delta
		v, ok := RecoverValue(stale, DefaultLimit, func(c uint64) bool { return c == truth })
		return ok && v == truth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverValueFailsBeyondLimit(t *testing.T) {
	truth := uint64(100)
	_, ok := RecoverValue(90, 8, func(c uint64) bool { return c == truth })
	if ok {
		t.Fatal("recovered a counter 10 increments ahead with limit 8")
	}
}

func TestRestoreLSB(t *testing.T) {
	cases := []struct {
		stale uint64
		lsb   uint16
		want  uint64
	}{
		{0x12345, 0x2345, 0x12345},                             // unchanged
		{0x12345, 0x2350, 0x12350},                             // advanced, no carry
		{0x1FFF0, 0x0005, 0x20005},                             // advanced across the 16-bit wrap
		{0, 0, 0},                                              // zero
		{0xFFFF, 0x0000, 0x10000},                              // exact wrap boundary
		{0x2FFFF, 0xFFFF, 0x2FFFF},                             // max LSB unchanged
		{1<<56 - 2, 0x0001, (1<<56 - 2) - 0xFFFE + 0xFFFF + 2}, // near top
	}
	for _, c := range cases {
		if got := RestoreLSB(c.stale, c.lsb); got != c.want {
			t.Errorf("RestoreLSB(%#x, %#x) = %#x, want %#x", c.stale, c.lsb, got, c.want)
		}
	}
}

func TestRestoreLSBProperty(t *testing.T) {
	// For any stale value and any advance < 2^16, restoring from the
	// advanced value's LSBs recovers it exactly.
	f := func(staleRaw uint64, adv uint16) bool {
		stale := staleRaw & (1<<48 - 1)
		truth := stale + uint64(adv)
		got := RestoreLSB(stale, uint16(truth&0xFFFF))
		return got == truth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverBlockMinorsIndependently(t *testing.T) {
	var truth SplitCounters
	truth.Major = 7
	stale := truth
	// Advance a few minors by varying amounts within the limit.
	truth.Minors[0] = 3
	truth.Minors[13] = 8
	truth.Minors[63] = 1
	stale.Minors[13] = 5 // stale by 3
	verify := func(slot int, counter uint64) bool { return counter == truth.Counter(slot) }
	rec, failed, err := RecoverBlock(stale, uint16(truth.Major&0xFFFF), DefaultLimit, verify)
	if err != nil || len(failed) != 0 {
		t.Fatalf("failed slots %v err %v", failed, err)
	}
	if rec != truth {
		t.Fatalf("recovered %+v want %+v", rec, truth)
	}
}

func TestRecoverBlockAfterMajorBump(t *testing.T) {
	// The cached block did a major bump (page re-encryption) after the
	// last write-back: stale minors are garbage; recovery must restart
	// minors from zero under the new major.
	var truth SplitCounters
	truth.Major = 0x10001
	truth.Minors[2] = 4
	stale := SplitCounters{Major: 0x10000}
	stale.Minors[2] = 60
	stale.Minors[9] = 33
	verify := func(slot int, counter uint64) bool { return counter == truth.Counter(slot) }
	rec, failed, err := RecoverBlock(stale, uint16(truth.Major&0xFFFF), DefaultLimit, verify)
	if err != nil || len(failed) != 0 {
		t.Fatalf("failed %v err %v", failed, err)
	}
	if rec != truth {
		t.Fatalf("recovered major %#x minors[2]=%d", rec.Major, rec.Minors[2])
	}
}

func TestRecoverBlockReportsFailedSlots(t *testing.T) {
	var truth SplitCounters
	stale := truth
	truth.Minors[5] = DefaultLimit + 3 // beyond the trial bound
	verify := func(slot int, counter uint64) bool { return counter == truth.Counter(slot) }
	_, failed, err := RecoverBlock(stale, 0, DefaultLimit, verify)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != 5 {
		t.Fatalf("failed = %v, want [5]", failed)
	}
}

func TestRecoverBlockRejectsNegativeLimit(t *testing.T) {
	if _, _, err := RecoverBlock(SplitCounters{}, 0, -1, func(int, uint64) bool { return true }); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestRestoreLSBWrapEdges(t *testing.T) {
	// Edge cases around the 16-bit wrap that the crash-recovery path
	// depends on: a stale value exactly at a wrap boundary, LSBs equal to
	// the stale low bits (no advance), and advances that straddle the
	// boundary from both sides.
	cases := []struct {
		name  string
		stale uint64
		lsb   uint16
		want  uint64
	}{
		{"stale at wrap, no advance", 0x10000, 0x0000, 0x10000},
		{"stale at wrap, small advance", 0x10000, 0x0007, 0x10007},
		{"stale at wrap, max lsb", 0x10000, 0xFFFF, 0x1FFFF},
		{"stale one below wrap, lsb equal", 0xFFFF, 0xFFFF, 0xFFFF},
		{"stale one below wrap, advance wraps", 0xFFFF, 0x0001, 0x10001},
		{"lsb equals stale low bits mid-range", 0x3ABCD, 0xABCD, 0x3ABCD},
		{"advance of exactly 2^16-1", 0x20001, 0x0000, 0x30000},
		{"zero stale, lsb only", 0, 0x1234, 0x1234},
	}
	for _, c := range cases {
		if got := RestoreLSB(c.stale, c.lsb); got != c.want {
			t.Errorf("%s: RestoreLSB(%#x, %#x) = %#x, want %#x", c.name, c.stale, c.lsb, got, c.want)
		}
	}
}

func TestRecoverValueEdgeCases(t *testing.T) {
	never := func(uint64) bool { return false }
	cases := []struct {
		name   string
		stale  uint64
		limit  int
		verify func(uint64) bool
		want   uint64
		wantOK bool
	}{
		{"limit 0 accepts exact stale", 42, 0, func(v uint64) bool { return v == 42 }, 42, true},
		{"limit 0 rejects any advance", 42, 0, func(v uint64) bool { return v == 43 }, 0, false},
		{"verify never passes", 7, 8, never, 0, false},
		{"verify never passes, limit 0", 7, 0, never, 0, false},
		{"truth at the limit boundary", 10, 8, func(v uint64) bool { return v == 18 }, 18, true},
		{"truth one past the limit", 10, 8, func(v uint64) bool { return v == 19 }, 0, false},
	}
	for _, c := range cases {
		got, ok := RecoverValue(c.stale, c.limit, c.verify)
		if ok != c.wantOK || got != c.want {
			t.Errorf("%s: RecoverValue(%d, %d) = (%d, %v), want (%d, %v)",
				c.name, c.stale, c.limit, got, ok, c.want, c.wantOK)
		}
	}
}
