package devnet

import (
	"encoding/json"
	"errors"
	"fmt"

	"soteria/internal/tenant"
)

// TenantInfo is the JSON body of an OpTenantInfo response.
type TenantInfo struct {
	ID        uint32 `json:"id"`
	Epoch     uint32 `json:"epoch"`
	Rotating  bool   `json:"rotating"`
	Cursor    uint64 `json:"cursor"`
	DataLines uint64 `json:"data_lines"`
	QuotaOps  uint32 `json:"quota_ops"`
}

// TenantRecord is the JSON element of an OpTenantList response.
type TenantRecord struct {
	ID        uint32 `json:"id"`
	Epoch     uint32 `json:"epoch"`
	Rotating  bool   `json:"rotating"`
	DataLines uint64 `json:"data_lines"`
	QuotaOps  uint32 `json:"quota_ops"`
}

// handleTenantControl serves the flat control/introspection ops on a
// tenant-only server (no flat device): they route to the tenant service's
// underlying device. Flat data ops are rejected — in tenant mode every
// line belongs to some tenant's key domain.
func (s *Server) handleTenantControl(req wireRequest) []byte {
	svc := s.opts.Tenants
	seq := req.seq
	switch req.op {
	case OpPing:
		return respOK(seq, 0, nil)
	case OpInfo:
		data, err := json.Marshal(svc.DeviceInfo())
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	case OpHealth:
		data, err := json.Marshal(s.Health())
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	case OpFlush:
		if err := svc.Flush(); err != nil {
			return respFromErr(seq, err)
		}
		return respOK(seq, 0, nil)
	case OpCrash:
		if err := svc.Crash(); err != nil {
			return respFromErr(seq, err)
		}
		return respOK(seq, 0, nil)
	case OpRecover:
		rep, err := svc.Recover()
		if err != nil {
			return respFromErr(seq, err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	case OpSnapshot:
		data, err := svc.DeviceSnapshot().MarshalIndentJSON()
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	case OpRead, OpWrite, OpDrain:
		return respErr(seq, fmt.Errorf("flat data ops are disabled on a tenant-only server"))
	default:
		return respErr(seq, fmt.Errorf("unknown op %d", req.op))
	}
}

// handleTenant executes one tenant-plane request against the configured
// tenant service. Data ops require the connection to be bound (attached)
// to the tenant they address; admin ops (create, rotate, step, info,
// list, metrics) are operator-plane and need no binding, matching the
// flat protocol's stance that Crash/Recover are trusted-operator ops.
func (s *Server) handleTenant(req wireRequest, bound *uint32) []byte {
	seq := req.seq
	svc := s.opts.Tenants
	if svc == nil {
		return respErr(seq, fmt.Errorf("tenant ops are not enabled on this server"))
	}
	f, err := ParseTenantFrame(req.op, req.body)
	if err != nil {
		s.frameErrors.Inc()
		return respErr(seq, err)
	}
	switch f.Op {
	case OpTenantAttach:
		if err := svc.Authenticate(f.Tenant, f.Token); err != nil {
			*bound = 0
			return respFromErr(seq, err)
		}
		*bound = f.Tenant
		return respOK(seq, 0, nil)
	case OpTenantRead:
		if *bound == 0 || *bound != f.Tenant {
			return respFromErr(seq, &tenant.AuthError{Tenant: f.Tenant})
		}
		line, lat, err := svc.Read(f.Tenant, f.Addr)
		if err != nil {
			return respFromErr(seq, err)
		}
		return respOK(seq, lat, line[:])
	case OpTenantWrite:
		if *bound == 0 || *bound != f.Tenant {
			return respFromErr(seq, &tenant.AuthError{Tenant: f.Tenant})
		}
		lat, err := svc.Write(f.Tenant, f.Addr, &f.Line)
		if err != nil {
			return respFromErr(seq, err)
		}
		s.appliedWrites.Inc()
		return respOK(seq, lat, nil)
	case OpTenantCreate:
		token, err := svc.Provision(f.Tenant, f.Lines, f.Quota)
		if err != nil {
			return respFromErr(seq, err)
		}
		return respOK(seq, 0, putU64(nil, token))
	case OpTenantRotate:
		if err := svc.Rotate(f.Tenant); err != nil {
			return respFromErr(seq, err)
		}
		return respOK(seq, 0, nil)
	case OpTenantStep:
		rotated, done, err := svc.RotateStep(f.Tenant, int(f.Max))
		if err != nil && !errors.Is(err, tenant.ErrNotRotating) {
			return respFromErr(seq, err)
		}
		st, serr := svc.RotateStatus(f.Tenant)
		if serr != nil {
			return respFromErr(seq, serr)
		}
		body := make([]byte, 0, 13)
		if done || !st.Rotating {
			body = append(body, 1)
		} else {
			body = append(body, 0)
		}
		body = putU32(body, uint32(rotated))
		return respOK(seq, 0, putU64(body, st.Cursor))
	case OpTenantInfo:
		rec, err := svc.Info(f.Tenant)
		if err != nil {
			return respFromErr(seq, err)
		}
		st, err := svc.RotateStatus(f.Tenant)
		if err != nil {
			return respFromErr(seq, err)
		}
		data, err := json.Marshal(TenantInfo{
			ID: rec.ID, Epoch: rec.Epoch, Rotating: st.Rotating,
			Cursor: st.Cursor, DataLines: rec.DataLines, QuotaOps: rec.QuotaOps,
		})
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	case OpTenantList:
		recs := svc.Tenants()
		out := make([]TenantRecord, 0, len(recs))
		for _, r := range recs {
			out = append(out, TenantRecord{
				ID: r.ID, Epoch: r.Epoch, Rotating: r.Rotating,
				DataLines: r.DataLines, QuotaOps: r.QuotaOps,
			})
		}
		data, err := json.Marshal(out)
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	case OpTenantMetrics:
		snap, err := svc.Snapshot(f.Tenant)
		if err != nil {
			return respFromErr(seq, err)
		}
		data, err := snap.MarshalIndentJSON()
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	default:
		return respErr(seq, fmt.Errorf("unknown tenant op %d", f.Op))
	}
}
