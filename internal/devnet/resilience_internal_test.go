package devnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/telemetry"
)

// rawServer brings up a device and a hardened server, returning the
// dial address plus the server's telemetry registry so tests can read
// the resilience counters.
func rawServer(t *testing.T, sopts ServerOptions) (*device.Device, *telemetry.Registry, string) {
	t.Helper()
	dev, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("devnet-raw-test-key"),
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sopts.Telemetry = reg
	srv := NewServerWith(dev, sopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		<-done
		dev.Close()
	})
	return dev, reg, ln.Addr().String()
}

// exchange writes one request frame and reads the response payload.
func exchange(t *testing.T, conn net.Conn, req []byte) []byte {
	t.Helper()
	if err := writeFrame(conn, req); err != nil {
		t.Fatalf("write frame: %v", err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return resp
}

// TestDedupWindowAnswersRetriedWrite replays the exact bytes of a
// committed write — what a client that lost the first response does —
// and checks the server acknowledges from the dedup window without
// applying the write a second time.
func TestDedupWindowAnswersRetriedWrite(t *testing.T) {
	_, reg, addr := rawServer(t, ServerOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var line nvm.Line
	for i := range line {
		line[i] = byte(i) ^ 0xa5
	}
	body := putU64(make([]byte, 0, 8+nvm.LineSize), 3*nvm.LineSize)
	body = append(body, line[:]...)
	req := append(encodeRequest(OpWrite, 42, 7, len(body)), body...)

	first := exchange(t, conn, req)
	if first[0] != StatusOK {
		t.Fatalf("first write status %d", first[0])
	}
	second := exchange(t, conn, req)
	if !bytes.Equal(first, second) {
		t.Fatalf("retried write answered differently:\n first %x\nsecond %x", first, second)
	}
	if got := reg.Counter("devnet_server_applied_writes_total").Value(); got != 1 {
		t.Fatalf("write applied %d times, want exactly once", got)
	}
	if got := reg.Counter("devnet_server_dedup_hits_total").Value(); got != 1 {
		t.Fatalf("dedup hits = %d, want 1", got)
	}

	// A fresh sequence number from the same session must execute.
	req2 := append(encodeRequest(OpWrite, 42, 8, len(body)), body...)
	if resp := exchange(t, conn, req2); resp[0] != StatusOK {
		t.Fatalf("fresh seq status %d", resp[0])
	}
	if got := reg.Counter("devnet_server_applied_writes_total").Value(); got != 2 {
		t.Fatalf("applied writes after fresh seq = %d, want 2", got)
	}
}

// TestSessionZeroBypassesDedup: session 0 marks a client that opted out
// of idempotency; identical frames must re-execute.
func TestSessionZeroBypassesDedup(t *testing.T) {
	_, reg, addr := rawServer(t, ServerOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var line nvm.Line
	body := putU64(make([]byte, 0, 8+nvm.LineSize), 0)
	body = append(body, line[:]...)
	req := append(encodeRequest(OpWrite, 0, 1, len(body)), body...)
	exchange(t, conn, req)
	exchange(t, conn, req)
	if got := reg.Counter("devnet_server_applied_writes_total").Value(); got != 2 {
		t.Fatalf("session-0 writes applied %d times, want 2", got)
	}
}

// TestCorruptFrameRejected flips one payload byte in an otherwise valid
// frame; the CRC must catch it before the request executes.
func TestCorruptFrameRejected(t *testing.T) {
	_, reg, addr := rawServer(t, ServerOptions{ReadStall: 200 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf bytes.Buffer
	req := encodeRequest(OpPing, 9, 1, 0)
	if err := writeFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[frameHeaderSize] ^= 0x40 // corrupt the first payload byte
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFrame(conn); err == nil {
		t.Fatal("server answered a corrupt frame instead of dropping the connection")
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("devnet_server_frame_errors_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("frame error never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStalledPeerDropped sends part of a frame and then goes silent; the
// stall deadline must kill the connection instead of pinning a handler
// goroutine forever.
func TestStalledPeerDropped(t *testing.T) {
	_, reg, addr := rawServer(t, ServerOptions{ReadStall: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf bytes.Buffer
	if err := writeFrame(&buf, encodeRequest(OpPing, 0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(buf.Bytes()[:frameHeaderSize+3]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		t.Fatal("read succeeded; server should have dropped the stalled connection")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("stall drop took %v, want well under the 5s default", waited)
	}
	if got := reg.Counter("devnet_server_stall_drops_total").Value(); got == 0 {
		t.Fatal("stall drop not counted")
	}
}

// TestIdleConnectionDropped: a connection that never sends anything is
// reaped once the idle budget runs out.
func TestIdleConnectionDropped(t *testing.T) {
	_, reg, addr := rawServer(t, ServerOptions{IdleTimeout: 150 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		t.Fatal("idle connection survived")
	}
	if got := reg.Counter("devnet_server_idle_drops_total").Value(); got == 0 {
		t.Fatal("idle drop not counted")
	}
}

// TestFrameLengthCapped: a header claiming more than maxFrame bytes is a
// typed frame error, not an allocation.
func TestFrameLengthCapped(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0], raw[1], raw[2], raw[3] = 0xff, 0xff, 0xff, 0xff
	_, err := readFrame(bytes.NewReader(raw))
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("huge length header: got %v, want *FrameError", err)
	}
}

// TestTruncatedFrameIsTransportError: a frame whose stream ends mid-
// payload surfaces as unexpected EOF, which the client taxonomy
// classifies as retryable transport.
func TestTruncatedFrameIsTransportError(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:frameHeaderSize+20]
	_, err := readFrame(bytes.NewReader(raw))
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("truncated frame: got %v, want unexpected EOF", err)
	}
	if ClassOf(err) != ClassTransport {
		t.Fatalf("truncated frame classed %v, want transport", ClassOf(err))
	}
	if !Retryable(err) {
		t.Fatal("truncated frame should be retryable")
	}
}
