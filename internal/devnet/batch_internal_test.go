package devnet

import (
	"bytes"
	"errors"
	"testing"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
)

func batchTestLine(addr uint64, salt byte) nvm.Line {
	var l nvm.Line
	for i := range l {
		l[i] = byte(addr>>uint(8*(i%8))) ^ salt ^ byte(i)
	}
	return l
}

// buildBatchFrame encodes a full sealed batch frame for the given ops.
func buildBatchFrame(session, seq uint64, ops []device.BatchOp) []byte {
	buf := newBatchFrame(nil, session)
	for i := range ops {
		buf = appendBatchOp(buf, ops[i].Op, ops[i].Addr, &ops[i].Line)
	}
	sealBatchFrame(buf, seq, len(ops))
	return buf
}

func TestBatchFrameRoundTrip(t *testing.T) {
	ops := []device.BatchOp{
		{Op: device.BatchWrite, Addr: 0, Line: batchTestLine(0, 1)},
		{Op: device.BatchRead, Addr: 64},
		{Op: device.BatchDrain, Addr: 128},
		{Op: device.BatchWrite, Addr: 192, Line: batchTestLine(192, 2)},
	}
	buf := buildBatchFrame(42, 7, ops)

	// The sealed buffer must be a valid frame end to end.
	payload, err := readFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req, err := parseRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.op != OpBatch || req.session != 42 || req.seq != 7 {
		t.Fatalf("request header = (%d, %d, %d)", req.op, req.session, req.seq)
	}
	got, err := decodeBatchOps(req.body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i].Op != ops[i].Op || got[i].Addr != ops[i].Addr {
			t.Fatalf("op %d decoded as %+v", i, got[i])
		}
		if ops[i].Op == device.BatchWrite && got[i].Line != ops[i].Line {
			t.Fatalf("op %d line corrupted", i)
		}
	}
}

func TestDecodeBatchOpsRejects(t *testing.T) {
	valid := buildBatchFrame(1, 1, []device.BatchOp{{Op: device.BatchRead, Addr: 64}})
	body := valid[frameHeaderSize+reqHeaderSize:]

	cases := map[string][]byte{
		"short body":       {0, 0},
		"zero count":       {0, 0, 0, 0},
		"huge count":       {0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated entry":  body[:len(body)-3],
		"unknown op":       append([]byte{0, 0, 0, 1}, 9, 0, 0, 0, 0, 0, 0, 0, 0),
		"trailing bytes":   append(append([]byte{}, body...), 0xaa),
		"truncated write":  append([]byte{0, 0, 0, 1}, device.BatchWrite, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3),
		"count over limit": {0, 0, 0x20, 0x01, device.BatchRead, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, b := range cases {
		if _, err := decodeBatchOps(b, nil); err == nil {
			t.Errorf("%s: accepted", name)
		} else {
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Errorf("%s: rejection is %T, want *FrameError", name, err)
			}
		}
	}
}

func TestBatchResultsIterator(t *testing.T) {
	line := batchTestLine(64, 3)
	out := putU32(nil, 3)
	out = appendBatchResult(out, StatusOK, 1234, line[:])
	out = appendBatchResult(out, StatusOK, 56, nil)
	out = appendBatchErr(out, &device.BusyError{Shard: 2, Pending: 9})

	it, err := parseBatchResults(out)
	if err != nil {
		t.Fatal(err)
	}
	st, lat, body, err := it.next()
	if err != nil || st != StatusOK || lat != 1234 || !bytes.Equal(body, line[:]) {
		t.Fatalf("entry 0 = (%d, %d, %d bytes, %v)", st, lat, len(body), err)
	}
	st, _, body, err = it.next()
	if err != nil || st != StatusOK || len(body) != 0 {
		t.Fatalf("entry 1 = (%d, %d bytes, %v)", st, len(body), err)
	}
	st, _, body, err = it.next()
	if err != nil || st != StatusBusy {
		t.Fatalf("entry 2 = (%d, %v)", st, err)
	}
	busy := statusError(st, body)
	var be *device.BusyError
	if !errors.As(busy, &be) || be.Shard != 2 || be.Pending != 9 {
		t.Fatalf("busy decoded as %v", busy)
	}
	if it.remaining() != 0 || it.trailing() != 0 {
		t.Fatal("iterator not fully consumed")
	}
	if _, _, _, err := it.next(); err == nil {
		t.Fatal("next past the end did not fail")
	}

	// Truncated mid-entry.
	if it, err := parseBatchResults(out[:6]); err == nil {
		if _, _, _, err := it.next(); err == nil {
			t.Fatal("truncated entry accepted")
		}
	}
}

// TestBatchCodecAllocs pins the zero-copy encode/decode contract: once
// buffers are warm, encoding and decoding a batch frame allocates
// nothing.
func TestBatchCodecAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	const n = 64
	ops := make([]device.BatchOp, n)
	for i := range ops {
		addr := uint64(i) * 64
		if i%4 == 3 {
			ops[i] = device.BatchOp{Op: device.BatchRead, Addr: addr}
		} else {
			ops[i] = device.BatchOp{Op: device.BatchWrite, Addr: addr, Line: batchTestLine(addr, 5)}
		}
	}
	var buf []byte
	var dst []device.BatchOp
	encodeDecode := func() {
		buf = newBatchFrame(buf, 77)
		for i := range ops {
			buf = appendBatchOp(buf, ops[i].Op, ops[i].Addr, &ops[i].Line)
		}
		sealBatchFrame(buf, 9, n)
		var err error
		dst, err = decodeBatchOps(buf[frameHeaderSize+reqHeaderSize:], dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(dst) != n {
			t.Fatal("decode lost ops")
		}
	}
	encodeDecode() // warm the buffers
	if allocs := testing.AllocsPerRun(50, encodeDecode); allocs > 0 {
		t.Fatalf("batch encode+decode allocates %.2f per frame, want 0", allocs)
	}
}

// TestServerBatchDispatchAllocs pins the server-side steady state: a
// session-0 batch frame pushed straight through dispatch (decode, device
// execution, response build) must not allocate per op.
func TestServerBatchDispatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	dev, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("dispatch-alloc-key"),
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	s := NewServer(dev)

	const n = 32
	ops := make([]device.BatchOp, n)
	for i := range ops {
		addr := uint64(i) * 64
		if i%4 == 3 {
			ops[i] = device.BatchOp{Op: device.BatchRead, Addr: addr}
		} else {
			ops[i] = device.BatchOp{Op: device.BatchWrite, Addr: addr, Line: batchTestLine(addr, 9)}
		}
	}
	frame := buildBatchFrame(0, 1, ops) // session 0: no dedup caching
	payload := frame[frameHeaderSize:]

	var bound uint32
	var bs batchScratch
	// Prime every line (the read slots too) so reads return known bytes.
	prime := make([]device.BatchOp, n)
	for i := range prime {
		addr := uint64(i) * 64
		prime[i] = device.BatchOp{Op: device.BatchWrite, Addr: addr, Line: batchTestLine(addr, 9)}
	}
	if resp := s.dispatch(buildBatchFrame(0, 2, prime)[frameHeaderSize:], &bound, &bs); resp[0] != StatusOK {
		t.Fatalf("prime batch status %d", resp[0])
	}
	run := func() {
		resp := s.dispatch(payload, &bound, &bs)
		if resp[0] != StatusOK {
			t.Fatalf("batch dispatch status %d", resp[0])
		}
	}
	for i := 0; i < 16; i++ {
		run() // warm scratch, metadata caches, NVM backing lines
	}
	allocs := testing.AllocsPerRun(20, run)
	if perOp := allocs / n; perOp >= 0.25 {
		t.Fatalf("dispatch allocates %.2f per batch (%.3f per op), want ~0", allocs, perOp)
	}

	// And the response must carry a per-op result for every op.
	resp := s.dispatch(payload, &bound, &bs)
	wr, err := parseResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	it, err := parseBatchResults(wr.body)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		st, _, body, err := it.next()
		if err != nil {
			t.Fatal(err)
		}
		if st != StatusOK {
			t.Fatalf("op %d status %d (%s)", i, st, body)
		}
		if ops[i].Op == device.BatchRead {
			want := batchTestLine(ops[i].Addr, 9)
			if !bytes.Equal(body, want[:]) {
				t.Fatalf("op %d read wrong data", i)
			}
		}
	}
}
