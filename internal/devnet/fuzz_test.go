package devnet

import (
	"bytes"
	"errors"
	"testing"

	"soteria/internal/device"
)

// frameBytes renders a valid frame for the seed corpus.
func frameBytes(payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame throws arbitrary byte streams at the full inbound
// decode path — framing, request parsing, response parsing. The
// invariants: no panic, no over-allocation from a lying length header
// (readFramePayload grows with the bytes that actually arrive), and a
// frame that decodes must re-encode to the same payload.
func FuzzDecodeFrame(f *testing.F) {
	// Valid frames: ping request, write-shaped request, OK response,
	// busy response.
	f.Add(frameBytes(encodeRequest(OpPing, 1, 1, 0)))
	f.Add(frameBytes(append(encodeRequest(OpWrite, 42, 9, 72), make([]byte, 72)...)))
	f.Add(frameBytes(respOK(9, 0, []byte("body"))))
	f.Add(frameBytes(respErr(3, bytes.ErrTooLarge)))
	// Truncated frame: header promises more than the stream holds.
	f.Add(frameBytes(encodeRequest(OpRead, 7, 2, 8))[:10])
	// Lying length header: claims 1 GiB.
	f.Add([]byte{0x40, 0x00, 0x00, 0x00, 0, 0, 0, 0})
	// Bad checksum.
	f.Add(func() []byte {
		b := frameBytes(encodeRequest(OpPing, 1, 1, 0))
		b[len(b)-1] ^= 0xff
		return b
	}())
	// Empty and tiny inputs.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame that decoded must survive a round trip bit-for-bit.
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		reread, err := readFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(payload, reread) {
			t.Fatal("frame payload not stable across re-encode")
		}
		// Both interpretations of the payload must be panic-free.
		if req, err := parseRequest(payload); err == nil {
			_ = req.op
			_ = req.body
		}
		if resp, err := parseResponse(payload); err == nil {
			_ = resp.status
			_ = resp.body
		}
	})
}

// FuzzParseRequest hits the request parser directly, bypassing framing,
// so short and malformed payloads are explored densely.
func FuzzParseRequest(f *testing.F) {
	f.Add(encodeRequest(OpPing, 1, 1, 0))
	f.Add(append(encodeRequest(OpWrite, 2, 2, 72), make([]byte, 72)...))
	f.Add([]byte{})
	f.Add(make([]byte, reqHeaderSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := parseRequest(data)
		if err != nil {
			return
		}
		if len(req.body) > len(data) {
			t.Fatal("parsed body longer than input")
		}
	})
}

// FuzzParseResponse mirrors FuzzParseRequest for the client side.
func FuzzParseResponse(f *testing.F) {
	f.Add(respOK(1, 0, nil))
	f.Add(respErr(2, bytes.ErrTooLarge))
	f.Add([]byte{})
	f.Add(make([]byte, respHeaderSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := parseResponse(data)
		if err != nil {
			return
		}
		if len(resp.body) > len(data) {
			t.Fatal("parsed body longer than input")
		}
		// statusError must map any status/body combination without
		// panicking — this is what a corrupted-but-CRC-colliding response
		// would hit.
		_ = statusError(resp.status, resp.body)
	})
}

// FuzzTenantFrame throws arbitrary (op, body) pairs at the tenant-plane
// body codec — the single parse point for every tenant op the server
// accepts. The invariants: never panic, reject with a typed *FrameError
// on any length mismatch, and any accepted body must re-encode
// byte-identically (no silently ignored trailing bytes, no lossy fields).
func FuzzTenantFrame(f *testing.F) {
	seed := []TenantFrame{
		{Op: OpTenantAttach, Tenant: 1, Token: 0xdeadbeefcafef00d},
		{Op: OpTenantRead, Tenant: 2, Addr: 64 * 17},
		{Op: OpTenantWrite, Tenant: 3, Addr: 128, Line: [64]byte{1, 2, 3}},
		{Op: OpTenantCreate, Tenant: 4, Lines: 4096, Quota: 100},
		{Op: OpTenantRotate, Tenant: 5},
		{Op: OpTenantStep, Tenant: 6, Max: 32},
		{Op: OpTenantInfo, Tenant: 7},
		{Op: OpTenantList},
		{Op: OpTenantMetrics, Tenant: 8},
	}
	for _, s := range seed {
		f.Add(s.Op, s.Encode())
	}
	// Off-by-one lengths, truncations, non-tenant ops, trailing garbage.
	f.Add(OpTenantAttach, []byte{})
	f.Add(OpTenantWrite, make([]byte, 12))
	f.Add(OpTenantRead, make([]byte, 13))
	f.Add(OpPing, []byte{1, 2, 3})
	f.Add(uint8(255), []byte{})
	f.Add(OpTenantList, []byte{0})

	f.Fuzz(func(t *testing.T, op uint8, body []byte) {
		frame, err := ParseTenantFrame(op, body)
		if err != nil {
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("reject is not a *FrameError: %v", err)
			}
			return
		}
		re := frame.Encode()
		if !bytes.Equal(re, body) {
			t.Fatalf("accepted body is not stable: in %x, out %x", body, re)
		}
		back, err := ParseTenantFrame(op, re)
		if err != nil {
			t.Fatalf("re-parse of encoded frame failed: %v", err)
		}
		if back != frame {
			t.Fatal("frame not stable across re-encode")
		}
	})
}

// batchFuzzFrame builds a loadgen-shaped batch frame for the fuzz seed
// corpus: the generator's 3:1 write:read mix with periodic drains.
func batchFuzzFrame(session, seq uint64, count int) []byte {
	buf := newBatchFrame(nil, session)
	for i := 0; i < count; i++ {
		addr := uint64(i) * 64
		switch {
		case i%4 == 3:
			buf = appendBatchOp(buf, device.BatchRead, addr, nil)
		case i%16 == 8:
			buf = appendBatchOp(buf, device.BatchDrain, addr, nil)
		default:
			line := batchTestLine(addr, byte(seq))
			buf = appendBatchOp(buf, device.BatchWrite, addr, &line)
		}
	}
	sealBatchFrame(buf, seq, count)
	return buf
}

// FuzzDecodeBatchFrame drives arbitrary byte streams through the full
// v3 inbound path — framing, request parsing, batch-body decoding — and
// the response-side result iterator. The invariants: no panic; every
// rejection of a framed batch body is a typed *FrameError; and any
// accepted batch body must re-encode byte-identically (the decoder
// accepts exactly the encoder's language, nothing more).
func FuzzDecodeBatchFrame(f *testing.F) {
	// Well-formed frames at loadgen-typical batch sizes.
	f.Add(batchFuzzFrame(1, 1, 1))
	f.Add(batchFuzzFrame(7, 3, 8))
	f.Add(batchFuzzFrame(42, 9, 64))
	f.Add(batchFuzzFrame(0, 2, 17))
	// A batch response frame exercises the result iterator side.
	f.Add(func() []byte {
		line := batchTestLine(64, 1)
		body := putU32(nil, 3)
		body = appendBatchResult(body, StatusOK, 1234, line[:])
		body = appendBatchResult(body, StatusOK, 77, nil)
		body = appendBatchErr(body, &device.BusyError{Shard: 1, Pending: 3})
		resp := append(respOK(5, 0, nil), body...)
		return frameBytes(resp)
	}())
	// Mutilated variants: truncated mid-entry, corrupted count, bad op.
	f.Add(batchFuzzFrame(1, 1, 4)[:frameHeaderSize+reqHeaderSize+7])
	f.Add(func() []byte {
		b := batchFuzzFrame(1, 1, 4)
		b[frameHeaderSize+reqHeaderSize+3] = 0xff // count low byte
		return b
	}())
	f.Add(func() []byte {
		b := batchFuzzFrame(1, 1, 4)
		b[batchBodyOff] = 0x99 // first entry's op code
		return b
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if req, err := parseRequest(payload); err == nil && req.op == OpBatch {
			ops, derr := decodeBatchOps(req.body, nil)
			if derr != nil {
				var fe *FrameError
				if !errors.As(derr, &fe) {
					t.Fatalf("batch rejection is %T (%v), want *FrameError", derr, derr)
				}
				return
			}
			// Accepted: re-encoding the decoded ops must reproduce the
			// original frame bit for bit (header, seq, count, entries).
			re := newBatchFrame(nil, req.session)
			for i := range ops {
				re = appendBatchOp(re, ops[i].Op, ops[i].Addr, &ops[i].Line)
			}
			sealBatchFrame(re, req.seq, len(ops))
			orig := data[:frameHeaderSize+len(payload)]
			if !bytes.Equal(re, orig) {
				t.Fatal("accepted batch frame did not round-trip byte-identically")
			}
		}
		// Response-side: the result iterator must consume any StatusOK
		// body without panicking, stopping cleanly at the first defect.
		if resp, err := parseResponse(payload); err == nil && resp.status == StatusOK {
			if it, err := parseBatchResults(resp.body); err == nil {
				for {
					if _, _, _, err := it.next(); err != nil {
						break
					}
					if it.remaining() == 0 {
						break
					}
				}
			}
		}
	})
}
