package devnet

import "sync"

// SessionTable is the server's idempotency state: for every client
// session it keeps a sliding window of recently executed sequence
// numbers and their successful response payloads. A retransmitted
// (session, seq) whose original already succeeded is answered from the
// cache without touching the device — that is what makes a blind client
// retry of a write exactly-once.
//
// Only successful (StatusOK) responses are cached: a failed operation
// did not commit anything, so re-executing it on retry is both safe and
// required (the failure may have been transient, e.g. a crash barrier
// that recovery has since cleared).
//
// The table is deliberately a standalone object rather than a Server
// field: a supervisor that kills and restarts the server hands the same
// table to the replacement, modeling dedup state that lives in the
// persistence domain alongside the data it protects. An acknowledged
// write survives a power cut; so must the record that it was
// acknowledged, or a retry straddling the crash double-applies.
type SessionTable struct {
	mu          sync.Mutex
	window      int
	maxSessions int
	clock       uint64
	sessions    map[uint64]*sessionState

	hits, misses, stores, evictions uint64
}

type sessionState struct {
	lastUsed uint64
	entries  map[uint64][]byte
	order    []uint64 // insertion ring, oldest first
}

// NewSessionTable builds a table keeping the last window responses per
// session across at most maxSessions sessions (LRU-evicted). Zero or
// negative arguments select the defaults (16 entries, 1024 sessions);
// the client is stop-and-wait, so even a window of 1 is correct — the
// slack absorbs future pipelined clients.
func NewSessionTable(window, maxSessions int) *SessionTable {
	if window <= 0 {
		window = 16
	}
	if maxSessions <= 0 {
		maxSessions = 1024
	}
	return &SessionTable{
		window:      window,
		maxSessions: maxSessions,
		sessions:    make(map[uint64]*sessionState),
	}
}

// Cached returns the stored response for (session, seq), if any.
func (t *SessionTable) Cached(session, seq uint64) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock++
	s, ok := t.sessions[session]
	if !ok {
		t.misses++
		return nil, false
	}
	s.lastUsed = t.clock
	resp, ok := s.entries[seq]
	if !ok {
		t.misses++
		return nil, false
	}
	t.hits++
	return resp, true
}

// Store records a successful response for (session, seq), evicting the
// oldest window entry and, if a new session pushes the table over its
// session cap, the least-recently-used session.
func (t *SessionTable) Store(session, seq uint64, resp []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock++
	t.stores++
	s, ok := t.sessions[session]
	if !ok {
		if len(t.sessions) >= t.maxSessions {
			t.evictLRU()
		}
		s = &sessionState{entries: make(map[uint64][]byte, t.window)}
		t.sessions[session] = s
	}
	s.lastUsed = t.clock
	if _, dup := s.entries[seq]; !dup && len(s.order) >= t.window {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, oldest)
	}
	if _, dup := s.entries[seq]; !dup {
		s.order = append(s.order, seq)
	}
	s.entries[seq] = resp
}

// evictLRU drops the least-recently-used session. Called with t.mu held.
func (t *SessionTable) evictLRU() {
	var victim uint64
	var oldest uint64
	first := true
	for id, s := range t.sessions {
		if first || s.lastUsed < oldest {
			victim, oldest, first = id, s.lastUsed, false
		}
	}
	if !first {
		delete(t.sessions, victim)
		t.evictions++
	}
}

// Sessions returns the number of live sessions.
func (t *SessionTable) Sessions() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// Hits returns how many lookups were answered from the cache — each one
// is a retry that would otherwise have re-executed.
func (t *SessionTable) Hits() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits
}
