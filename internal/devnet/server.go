package devnet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
	"soteria/internal/tenant"
)

// ServerOptions harden one server against misbehaving peers and
// overload. The zero value selects production-shaped defaults; tests
// shrink the timeouts to keep regression runs fast.
type ServerOptions struct {
	// ReadStall bounds the gap between consecutive bytes of one frame
	// once its first byte has arrived: a peer that stalls mid-frame is
	// disconnected, a slow-but-moving peer is not. Default 5s.
	ReadStall time.Duration
	// WriteTimeout bounds writing one response frame. Default 10s.
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a connection may sit between requests
	// before it is dropped (half-dead peers cannot pin a goroutine
	// forever). Default 2 minutes; negative disables.
	IdleTimeout time.Duration
	// MaxInFlight caps concurrently executing requests server-wide;
	// excess requests are shed with StatusBusy and a retry-after hint
	// instead of queueing without bound. Default 64; negative disables.
	MaxInFlight int
	// Sessions is the idempotency window. Nil builds a private table; a
	// supervisor that restarts the server passes the same table to the
	// replacement so retries straddling the restart stay exactly-once.
	Sessions *SessionTable
	// Telemetry, when non-nil, receives the server's own resilience
	// counters (devnet_server_*). It is kept separate from the device's
	// registries so wire snapshots stay byte-identical to local ones.
	Telemetry *telemetry.Registry
	// Tenants, when non-nil, enables the tenant plane (OpTenantAttach and
	// friends) against this multi-tenant service. The flat device may then
	// be nil, in which case data ops are tenant-only and the control ops
	// (flush, crash, recover, snapshot) route to the service's device.
	Tenants *tenant.Service
	// Logf, when non-nil, receives connection lifecycle lines.
	Logf func(format string, args ...any)
}

func (o *ServerOptions) fill() {
	if o.ReadStall <= 0 {
		o.ReadStall = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 64
	}
	if o.Sessions == nil {
		o.Sessions = NewSessionTable(0, 0)
	}
}

// Health is the readiness probe served by OpHealth.
type Health struct {
	// Ready: accepting connections and the device is up.
	Ready bool `json:"ready"`
	// Draining: a graceful shutdown is in progress.
	Draining bool `json:"draining"`
	// DeviceDown: the device crashed (or lost power) and awaits recovery.
	DeviceDown bool `json:"device_down"`
	// InFlight is the number of requests currently executing.
	InFlight int `json:"in_flight"`
	// Sessions is the dedup table occupancy.
	Sessions int `json:"sessions"`
	// Shards is the device shard count.
	Shards int `json:"shards"`
}

// Server serves one device over TCP. Connections are handled
// concurrently; requests on one connection are sequential (the protocol
// is strict request/response), so each connection behaves as one
// closed-loop client — the regime under which the device is
// deterministic. Each connection handler is panic-isolated and bounded
// by read/write deadlines, and a server-wide in-flight cap sheds load
// with typed backpressure instead of queueing without bound.
type Server struct {
	dev  *device.Device
	opts ServerOptions
	ln   net.Listener

	// Logf, when non-nil, receives connection lifecycle lines (kept for
	// callers predating ServerOptions.Logf).
	Logf func(format string, args ...any)

	sessions *SessionTable
	inflight atomic.Int64

	mu       sync.Mutex
	draining bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup

	connsTotal    *telemetry.Counter
	shed          *telemetry.Counter
	panics        *telemetry.Counter
	dedupHits     *telemetry.Counter
	frameErrors   *telemetry.Counter
	idleDrops     *telemetry.Counter
	stallDrops    *telemetry.Counter
	appliedWrites *telemetry.Counter
}

// NewServer wraps a device with default hardening options. The caller
// keeps ownership of the device: Shutdown stops serving but does not
// Close it.
func NewServer(dev *device.Device) *Server {
	return NewServerWith(dev, ServerOptions{})
}

// NewServerWith wraps a device with explicit hardening options.
func NewServerWith(dev *device.Device, opts ServerOptions) *Server {
	opts.fill()
	s := &Server{dev: dev, opts: opts, sessions: opts.Sessions, conns: map[net.Conn]struct{}{}}
	reg := opts.Telemetry
	s.connsTotal = reg.Counter("devnet_server_conns_total")
	s.shed = reg.Counter("devnet_server_shed_total")
	s.panics = reg.Counter("devnet_server_handler_panics_total")
	s.dedupHits = reg.Counter("devnet_server_dedup_hits_total")
	s.frameErrors = reg.Counter("devnet_server_frame_errors_total")
	s.idleDrops = reg.Counter("devnet_server_idle_drops_total")
	s.stallDrops = reg.Counter("devnet_server_stall_drops_total")
	s.appliedWrites = reg.Counter("devnet_server_applied_writes_total")
	return s
}

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error; after Shutdown the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	draining := s.draining
	s.mu.Unlock()
	if draining {
		// Shutdown/Abort won the race before this listener was
		// registered; close it here or it would leak (still bound) with
		// nobody left to close it.
		ln.Close()
		return net.ErrClosed
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsTotal.Inc()
		go s.serveConn(conn)
	}
}

// Shutdown drains gracefully: stop accepting, let every in-flight request
// finish, then close the connections. The device itself is left running.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Abort is the non-graceful sibling of Shutdown: stop accepting and
// sever every connection immediately (RST where the platform allows),
// as a process kill would. Requests already executing still finish —
// their responses just never reach the peer — so by the time Abort
// returns no handler is touching the device and a supervisor may Crash
// it. The dedup table survives for the replacement server.
func (s *Server) Abort() {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		hardClose(c)
	}
	s.wg.Wait()
}

// hardClose severs a connection abruptly: linger 0 turns the close into
// a reset instead of an orderly FIN, which is what a dying process does.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// Health reports the server's readiness.
func (s *Server) Health() Health {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	down := s.dev != nil && s.dev.Down()
	shards := 0
	if s.dev != nil {
		shards = s.dev.Info().Shards
	}
	if s.dev == nil && s.opts.Tenants != nil {
		down = s.opts.Tenants.Down()
		shards = s.opts.Tenants.DeviceInfo().Shards
	}
	return Health{
		Ready:      !draining && !down,
		Draining:   draining,
		DeviceDown: down,
		InFlight:   int(s.inflight.Load()),
		Sessions:   s.sessions.Sessions(),
		Shards:     shards,
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	} else if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// stallConn re-arms the read deadline before every Read, so a transfer
// that keeps making progress never times out while a stalled peer does.
type stallConn struct {
	net.Conn
	stall time.Duration
}

func (c stallConn) Read(p []byte) (int, error) {
	c.Conn.SetReadDeadline(time.Now().Add(c.stall))
	return c.Conn.Read(p)
}

// serveConn runs the request/response loop for one connection. Waiting
// for a request polls with a short deadline so a drain is noticed
// between requests and an idle budget can expire; once a frame starts
// arriving, stall-based deadlines take over. A panic anywhere in the
// loop takes down only this connection.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Inc()
			s.logf("devnet: %v connection panic: %v", conn.RemoteAddr(), p)
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	s.logf("devnet: %v connected", conn.RemoteAddr())
	// bound is this connection's authenticated tenant (0 = none). It is
	// per-connection on purpose: a binding must not outlive the transport
	// that proved possession of the token.
	var bound uint32
	// Per-connection receive buffer and batch scratch: the request loop
	// reuses both across frames, so a steady stream of batches costs no
	// per-frame allocations on the server.
	var rbuf []byte
	var bs batchScratch
	for {
		hdr, err := s.awaitHeader(conn)
		if err != nil {
			s.logf("devnet: %v gone: %v", conn.RemoteAddr(), err)
			return
		}
		payload, err := readFramePayloadInto(stallConn{conn, s.opts.ReadStall}, hdr, &rbuf)
		if err != nil {
			var fe *FrameError
			if errors.As(err, &fe) {
				s.frameErrors.Inc()
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				s.stallDrops.Inc()
			}
			s.logf("devnet: %v bad frame: %v", conn.RemoteAddr(), err)
			return
		}
		conn.SetReadDeadline(time.Time{})
		resp := s.dispatch(payload, &bound, &bs)
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		if err := writeFrame(conn, resp); err != nil {
			s.logf("devnet: %v write: %v", conn.RemoteAddr(), err)
			return
		}
		conn.SetWriteDeadline(time.Time{})
	}
}

// awaitHeader blocks until a full frame header arrives, the idle budget
// expires, or the server drains. The wait polls in short slices so a
// drain is honored promptly; once the first byte is in, the peer is
// mid-frame and the stall rule applies to the header's remainder.
func (s *Server) awaitHeader(conn net.Conn) ([frameHeaderSize]byte, error) {
	var hdr [frameHeaderSize]byte
	const poll = 250 * time.Millisecond
	idleDeadline := time.Now().Add(s.opts.IdleTimeout)
	got := 0
	for got < frameHeaderSize {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return hdr, errors.New("draining")
		}
		wait := poll
		if got > 0 && s.opts.ReadStall < wait {
			wait = s.opts.ReadStall
		}
		conn.SetReadDeadline(time.Now().Add(wait))
		n, err := conn.Read(hdr[got:])
		got += n
		if err != nil {
			var nerr net.Error
			if !errors.As(err, &nerr) || !nerr.Timeout() {
				return hdr, err
			}
			// Timeout slice. Mid-header, a single stall window is the
			// whole budget; idle (no bytes yet) runs down IdleTimeout.
			if got > 0 {
				if n == 0 {
					s.stallDrops.Inc()
					return hdr, fmt.Errorf("peer stalled mid-header after %d bytes", got)
				}
				continue
			}
			if s.opts.IdleTimeout >= 0 && time.Now().After(idleDeadline) {
				s.idleDrops.Inc()
				return hdr, fmt.Errorf("idle for %v", s.opts.IdleTimeout)
			}
		}
	}
	return hdr, nil
}

// dispatch parses one request payload, applies the dedup window and the
// in-flight cap, and executes it panic-isolated. bound is the calling
// connection's tenant binding; bs is its reusable batch scratch.
func (s *Server) dispatch(payload []byte, bound *uint32, bs *batchScratch) []byte {
	req, err := parseRequest(payload)
	if err != nil {
		s.frameErrors.Inc()
		return respErr(0, err)
	}
	// Attach mutates per-connection state, so it must execute on every
	// connection that sends it — a dedup hit replaying a cached OK
	// without binding would leave the new connection unauthenticated.
	if req.session != 0 && req.op != OpTenantAttach {
		if cached, ok := s.sessions.Cached(req.session, req.seq); ok {
			s.dedupHits.Inc()
			return cached
		}
	}
	if s.opts.MaxInFlight > 0 {
		if n := s.inflight.Add(1); n > int64(s.opts.MaxInFlight) {
			s.inflight.Add(-1)
			s.shed.Inc()
			return respFromErr(req.seq, &device.BusyError{
				Shard:      -1,
				Pending:    int(n - 1),
				RetryAfter: time.Duration(n) * 100 * time.Microsecond,
			})
		}
		defer s.inflight.Add(-1)
	}
	resp := s.handleSafe(req, bound, bs)
	// Only successful responses enter the dedup window: a failure did
	// not commit, so the retry must re-execute. Attach stays out for the
	// same reason it skips the lookup above. A StatusOK batch ALWAYS
	// enters the window even though some of its per-op results may be
	// failures: the batch executed, and a retransmit must replay the
	// identical per-op outcomes rather than re-executing anything.
	if req.session != 0 && req.op != OpTenantAttach && len(resp) > 0 && resp[0] == StatusOK {
		if req.op == OpBatch {
			// The batch response aliases per-connection scratch the next
			// batch overwrites; the dedup window needs its own copy (one
			// allocation per batch, amortized across its ops).
			resp = append([]byte(nil), resp...)
		}
		s.sessions.Store(req.session, req.seq, resp)
	}
	return resp
}

// handleSafe confines a handler panic to an error response, keeping the
// connection (and every other connection) alive.
func (s *Server) handleSafe(req wireRequest, bound *uint32, bs *batchScratch) (resp []byte) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Inc()
			s.logf("devnet: handler panic on op %d: %v", req.op, p)
			resp = respErr(req.seq, fmt.Errorf("internal: handler panic: %v", p))
		}
	}()
	if req.op >= OpTenantAttach && req.op <= OpTenantMetrics {
		return s.handleTenant(req, bound)
	}
	if req.op == OpBatch {
		return s.handleBatch(req, bs)
	}
	return s.handle(req)
}

// handle executes one request and builds the response payload.
func (s *Server) handle(req wireRequest) []byte {
	op, body, seq := req.op, req.body, req.seq
	if s.dev == nil && s.opts.Tenants != nil {
		// Tenant-only server: the control plane routes to the tenant
		// service's device; the flat data plane does not exist.
		return s.handleTenantControl(req)
	}
	switch op {
	case OpPing:
		return respOK(seq, 0, nil)
	case OpInfo:
		data, err := json.Marshal(s.dev.Info())
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	case OpHealth:
		data, err := json.Marshal(s.Health())
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	case OpRead:
		addr, ok := bodyAddr(body)
		if !ok {
			return respErr(seq, fmt.Errorf("read: want 8-byte address, got %d bytes", len(body)))
		}
		line, lat, err := s.dev.Read(addr)
		if err != nil {
			return respFromErr(seq, err)
		}
		return respOK(seq, lat, line[:])
	case OpWrite:
		if len(body) != 8+nvm.LineSize {
			return respErr(seq, fmt.Errorf("write: want address + %d-byte line, got %d bytes", nvm.LineSize, len(body)))
		}
		addr := binary.BigEndian.Uint64(body)
		var line nvm.Line
		copy(line[:], body[8:])
		lat, err := s.dev.Write(addr, &line)
		if err != nil {
			return respFromErr(seq, err)
		}
		s.appliedWrites.Inc()
		return respOK(seq, lat, nil)
	case OpDrain:
		addr, ok := bodyAddr(body)
		if !ok {
			return respErr(seq, fmt.Errorf("drain: want 8-byte address, got %d bytes", len(body)))
		}
		if err := s.dev.Drain(addr); err != nil {
			return respFromErr(seq, err)
		}
		return respOK(seq, 0, nil)
	case OpFlush:
		if err := s.dev.Flush(); err != nil {
			return respFromErr(seq, err)
		}
		return respOK(seq, 0, nil)
	case OpCrash:
		if err := s.dev.Crash(); err != nil {
			return respFromErr(seq, err)
		}
		return respOK(seq, 0, nil)
	case OpRecover:
		rep, err := s.dev.Recover()
		if err != nil {
			return respFromErr(seq, err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	case OpSnapshot:
		data, err := s.dev.Snapshot().MarshalIndentJSON()
		if err != nil {
			return respErr(seq, err)
		}
		return respOK(seq, 0, data)
	default:
		return respErr(seq, fmt.Errorf("unknown op %d", op))
	}
}

func bodyAddr(body []byte) (uint64, bool) {
	if len(body) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(body), true
}

func respHeader(status uint8, seq uint64, lat sim.Time, bodyCap int) []byte {
	out := make([]byte, 0, respHeaderSize+bodyCap)
	out = append(out, status)
	out = putU64(out, seq)
	return putU64(out, uint64(lat))
}

func respOK(seq uint64, lat sim.Time, body []byte) []byte {
	return append(respHeader(StatusOK, seq, lat, len(body)), body...)
}

func respErr(seq uint64, err error) []byte {
	return append(respHeader(StatusError, seq, 0, len(err.Error())), err.Error()...)
}

// respFromErr maps the device's and tenant layer's typed error surfaces
// onto wire statuses.
func respFromErr(seq uint64, err error) []byte {
	var busy *device.BusyError
	var power *device.PowerError
	var quota *tenant.QuotaError
	var auth *tenant.AuthError
	var integ *tenant.IntegrityError
	switch {
	case errors.As(err, &quota):
		out := respHeader(StatusQuota, seq, 0, 12)
		out = putU32(out, quota.Tenant)
		out = putU32(out, quota.Used)
		return putU32(out, quota.Budget)
	case errors.As(err, &auth):
		out := respHeader(StatusTenantDenied, seq, 0, 4)
		return putU32(out, auth.Tenant)
	case errors.As(err, &integ):
		out := respHeader(StatusTenantIntegrity, seq, 0, 12)
		out = putU32(out, integ.Tenant)
		return putU64(out, integ.Line)
	case errors.As(err, &busy):
		out := respHeader(StatusBusy, seq, 0, 16)
		out = putU32(out, uint32(int32(busy.Shard)))
		out = putU32(out, uint32(busy.Pending))
		return putU64(out, uint64(busy.RetryAfter.Nanoseconds()))
	case errors.As(err, &power):
		out := respHeader(StatusPowerLoss, seq, 0, 12)
		out = putU32(out, uint32(int32(power.Shard)))
		return putU64(out, uint64(power.Boundary))
	case errors.Is(err, memctrl.ErrCrashed):
		return respHeader(StatusCrashed, seq, 0, 0)
	case errors.Is(err, device.ErrRetired):
		return respHeader(StatusRetired, seq, 0, 0)
	case errors.Is(err, device.ErrClosed):
		return respHeader(StatusClosed, seq, 0, 0)
	default:
		return respErr(seq, err)
	}
}

// batchScratch is one connection's reusable batch-execution state:
// decoded ops, per-op results, and the response buffer. Reuse makes the
// steady-state batch path allocation-free on the server.
type batchScratch struct {
	ops  []device.BatchOp
	res  []device.BatchResult
	resp []byte
}

// handleBatch executes one OpBatch frame: decode into the connection's
// scratch, run the whole batch through the device as one unit (per-shard
// coalesced groups, one queue entry per shard — device.ExecBatch), and
// encode the per-op outcomes. The response header is StatusOK whenever
// the batch executed; individual failures ride inside as per-op
// status/body pairs. Batch-level failures keep their v2 meanings: the
// in-flight cap sheds the whole frame with StatusBusy before this
// handler runs, and a malformed body is StatusError.
func (s *Server) handleBatch(req wireRequest, bs *batchScratch) []byte {
	if s.dev == nil {
		return respErr(req.seq, fmt.Errorf("batch: this server has no flat data plane"))
	}
	if bs == nil {
		bs = &batchScratch{}
	}
	ops, err := decodeBatchOps(req.body, bs.ops)
	if err != nil {
		s.frameErrors.Inc()
		return respErr(req.seq, err)
	}
	bs.ops = ops
	if cap(bs.res) < len(ops) {
		bs.res = make([]device.BatchResult, len(ops))
	}
	res := bs.res[:len(ops)]
	if err := s.dev.ExecBatch(ops, res); err != nil {
		return respFromErr(req.seq, err)
	}
	out := bs.resp[:0]
	out = append(out, StatusOK)
	out = putU64(out, req.seq)
	out = putU64(out, 0) // latency is per-op inside the body
	out = putU32(out, uint32(len(ops)))
	for i := range res {
		if res[i].Err != nil {
			out = appendBatchErr(out, res[i].Err)
			continue
		}
		if ops[i].Op == device.BatchWrite {
			// The exactly-once oracle counts writes the device applied;
			// a dedup-replayed batch never reaches this loop.
			s.appliedWrites.Inc()
		}
		var body []byte
		if ops[i].Op == device.BatchRead {
			body = res[i].Data[:]
		}
		out = appendBatchResult(out, StatusOK, uint64(res[i].Latency), body)
	}
	bs.resp = out
	return out
}

// appendBatchErr appends one failed per-op result, mapping the device's
// and tenant layer's typed error surfaces onto the same wire statuses
// and bodies respFromErr uses, so the client's statusError reconstructs
// them identically.
func appendBatchErr(out []byte, err error) []byte {
	var (
		busy  *device.BusyError
		power *device.PowerError
		quota *tenant.QuotaError
		auth  *tenant.AuthError
		integ *tenant.IntegrityError
		tmp   [16]byte
	)
	switch {
	case errors.As(err, &quota):
		bePutU32(tmp[:], quota.Tenant)
		bePutU32(tmp[4:], quota.Used)
		bePutU32(tmp[8:], quota.Budget)
		return appendBatchResult(out, StatusQuota, 0, tmp[:12])
	case errors.As(err, &auth):
		bePutU32(tmp[:], auth.Tenant)
		return appendBatchResult(out, StatusTenantDenied, 0, tmp[:4])
	case errors.As(err, &integ):
		bePutU32(tmp[:], integ.Tenant)
		bePutU64(tmp[4:], integ.Line)
		return appendBatchResult(out, StatusTenantIntegrity, 0, tmp[:12])
	case errors.As(err, &busy):
		bePutU32(tmp[:], uint32(int32(busy.Shard)))
		bePutU32(tmp[4:], uint32(busy.Pending))
		bePutU64(tmp[8:], uint64(busy.RetryAfter.Nanoseconds()))
		return appendBatchResult(out, StatusBusy, 0, tmp[:16])
	case errors.As(err, &power):
		bePutU32(tmp[:], uint32(int32(power.Shard)))
		bePutU64(tmp[4:], uint64(power.Boundary))
		return appendBatchResult(out, StatusPowerLoss, 0, tmp[:12])
	case errors.Is(err, memctrl.ErrCrashed):
		return appendBatchResult(out, StatusCrashed, 0, nil)
	case errors.Is(err, device.ErrRetired):
		return appendBatchResult(out, StatusRetired, 0, nil)
	case errors.Is(err, device.ErrClosed):
		return appendBatchResult(out, StatusClosed, 0, nil)
	default:
		return appendBatchResult(out, StatusError, 0, []byte(err.Error()))
	}
}
