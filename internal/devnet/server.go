package devnet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// Server serves one device over TCP. Connections are handled
// concurrently; requests on one connection are sequential (the protocol
// is strict request/response), so each connection behaves as one
// closed-loop client — the regime under which the device is
// deterministic.
type Server struct {
	dev *device.Device
	ln  net.Listener

	// Logf, when non-nil, receives connection lifecycle lines.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	draining bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// NewServer wraps a device. The caller keeps ownership of the device:
// Shutdown stops serving but does not Close it.
func NewServer(dev *device.Device) *Server {
	return &Server{dev: dev, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error; after Shutdown the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown drains gracefully: stop accepting, let every in-flight request
// finish, then close the connections. The device itself is left running.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// serveConn runs the request/response loop for one connection. Reads poll
// with a short deadline so a drain is noticed between requests; a request
// already received is always answered before the connection closes.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	s.logf("devnet: %v connected", conn.RemoteAddr())
	for {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			s.logf("devnet: %v drained", conn.RemoteAddr())
			return
		}
		conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		req, err := readFrame(conn)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			s.logf("devnet: %v gone: %v", conn.RemoteAddr(), err)
			return
		}
		conn.SetReadDeadline(time.Time{})
		if err := writeFrame(conn, s.handle(req)); err != nil {
			s.logf("devnet: %v write: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// handle executes one request payload and builds the response payload.
func (s *Server) handle(req []byte) []byte {
	if len(req) < 1 {
		return respErr(fmt.Errorf("empty request"))
	}
	op, body := req[0], req[1:]
	switch op {
	case OpPing:
		return respOK(0, nil)
	case OpInfo:
		data, err := json.Marshal(s.dev.Info())
		if err != nil {
			return respErr(err)
		}
		return respOK(0, data)
	case OpRead:
		addr, ok := bodyAddr(body)
		if !ok {
			return respErr(fmt.Errorf("read: want 8-byte address, got %d bytes", len(body)))
		}
		line, lat, err := s.dev.Read(addr)
		if err != nil {
			return respFromErr(err)
		}
		return respOK(lat, line[:])
	case OpWrite:
		if len(body) != 8+nvm.LineSize {
			return respErr(fmt.Errorf("write: want address + %d-byte line, got %d bytes", nvm.LineSize, len(body)))
		}
		addr := binary.BigEndian.Uint64(body)
		var line nvm.Line
		copy(line[:], body[8:])
		lat, err := s.dev.Write(addr, &line)
		if err != nil {
			return respFromErr(err)
		}
		return respOK(lat, nil)
	case OpDrain:
		addr, ok := bodyAddr(body)
		if !ok {
			return respErr(fmt.Errorf("drain: want 8-byte address, got %d bytes", len(body)))
		}
		if err := s.dev.Drain(addr); err != nil {
			return respFromErr(err)
		}
		return respOK(0, nil)
	case OpFlush:
		if err := s.dev.Flush(); err != nil {
			return respFromErr(err)
		}
		return respOK(0, nil)
	case OpCrash:
		if err := s.dev.Crash(); err != nil {
			return respFromErr(err)
		}
		return respOK(0, nil)
	case OpRecover:
		rep, err := s.dev.Recover()
		if err != nil {
			return respFromErr(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			return respErr(err)
		}
		return respOK(0, data)
	case OpSnapshot:
		data, err := s.dev.Snapshot().MarshalIndentJSON()
		if err != nil {
			return respErr(err)
		}
		return respOK(0, data)
	default:
		return respErr(fmt.Errorf("unknown op %d", op))
	}
}

func bodyAddr(body []byte) (uint64, bool) {
	if len(body) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(body), true
}

func respOK(lat sim.Time, body []byte) []byte {
	out := make([]byte, 0, 9+len(body))
	out = append(out, StatusOK)
	out = putU64(out, uint64(lat))
	return append(out, body...)
}

func respErr(err error) []byte {
	out := make([]byte, 0, 9+len(err.Error()))
	out = append(out, StatusError)
	out = putU64(out, 0)
	return append(out, err.Error()...)
}

// respFromErr maps the device's typed error surface onto wire statuses.
func respFromErr(err error) []byte {
	var busy *device.BusyError
	var power *device.PowerError
	switch {
	case errors.As(err, &busy):
		out := make([]byte, 0, 25)
		out = append(out, StatusBusy)
		out = putU64(out, 0)
		out = putU32(out, uint32(busy.Shard))
		out = putU32(out, uint32(busy.Pending))
		return putU64(out, uint64(busy.RetryAfter.Nanoseconds()))
	case errors.As(err, &power):
		out := make([]byte, 0, 21)
		out = append(out, StatusPowerLoss)
		out = putU64(out, 0)
		out = putU32(out, uint32(power.Shard))
		return putU64(out, uint64(power.Boundary))
	case errors.Is(err, memctrl.ErrCrashed):
		return []byte{StatusCrashed, 0, 0, 0, 0, 0, 0, 0, 0}
	case errors.Is(err, device.ErrRetired):
		return []byte{StatusRetired, 0, 0, 0, 0, 0, 0, 0, 0}
	case errors.Is(err, device.ErrClosed):
		return []byte{StatusClosed, 0, 0, 0, 0, 0, 0, 0, 0}
	default:
		return respErr(err)
	}
}
