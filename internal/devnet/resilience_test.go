package devnet_test

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/inject"
	"soteria/internal/memctrl"
	"soteria/internal/telemetry"
)

// startServerWith is startServer with explicit hardening options,
// returning the server's telemetry registry too.
func startServerWith(t *testing.T, sopts devnet.ServerOptions) (*device.Device, *telemetry.Registry, string) {
	t.Helper()
	dev, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("devnet-resilience-key"),
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sopts.Telemetry = reg
	srv := devnet.NewServerWith(dev, sopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		<-done
		dev.Close()
	})
	return dev, reg, ln.Addr().String()
}

// TestClientTimeoutIsTypedAndRetried points a client at a listener that
// accepts and then plays dead. Every attempt must end in a typed
// transport timeout, the retry budget must be honored, and the final
// error must carry the attempt count.
func TestClientTimeoutIsTypedAndRetried(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, answer nothing
		}
	}()

	reg := telemetry.NewRegistry()
	c, err := devnet.DialWith(ln.Addr().String(), devnet.Options{
		OpTimeout: 100 * time.Millisecond,
		Retry: devnet.RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  10 * time.Millisecond,
		},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	err = c.Ping()
	if err == nil {
		t.Fatal("ping against a dead listener succeeded")
	}
	var oe *devnet.OpError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OpError, got %T: %v", err, err)
	}
	if oe.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", oe.Attempts)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error does not unwrap to a net timeout: %v", err)
	}
	if devnet.ClassOf(oe.Err) != devnet.ClassTransport {
		t.Fatalf("underlying class = %v, want transport", devnet.ClassOf(oe.Err))
	}
	if got := reg.Counter("devnet_client_timeouts_total").Value(); got != 3 {
		t.Fatalf("timeouts counted = %d, want 3", got)
	}
	if got := reg.Counter("devnet_client_gave_up_total").Value(); got != 1 {
		t.Fatalf("gave-up counted = %d, want 1", got)
	}
	// 3 attempts x 100ms deadline plus two short backoffs: the whole
	// operation must come nowhere near an unbounded hang.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("operation took %v, deadlines are not being applied", elapsed)
	}
}

// TestClientRecoversAcrossServerRestart kills the server mid-session and
// brings a new one up on the same address; the client's reconnect loop
// must ride through without the caller seeing an error.
func TestClientRecoversAcrossServerRestart(t *testing.T) {
	dev, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("devnet-restart-key"),
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	sessions := devnet.NewSessionTable(0, 0)
	srv := devnet.NewServerWith(dev, devnet.ServerOptions{Sessions: sessions})
	go srv.Serve(ln)

	reg := telemetry.NewRegistry()
	c, err := devnet.DialWith(addr, devnet.Options{
		OpTimeout: 500 * time.Millisecond,
		Retry: devnet.RetryPolicy{
			MaxAttempts: -1,
			MaxElapsed:  10 * time.Second,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
		},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	line := testLine(0, 7)
	if _, err := c.Write(0, &line); err != nil {
		t.Fatalf("write before restart: %v", err)
	}

	srv.Abort()

	// Restart on the same port with the same dedup table.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	srv2 := devnet.NewServerWith(dev, devnet.ServerOptions{Sessions: sessions})
	done := make(chan struct{})
	go func() { defer close(done); srv2.Serve(ln2) }()
	defer func() { srv2.Shutdown(); <-done }()

	got, _, err := c.Read(0)
	if err != nil {
		t.Fatalf("read across restart: %v", err)
	}
	if got != line {
		t.Fatal("read across restart returned wrong data")
	}
	if reg.Counter("devnet_client_reconnects_total").Value() == 0 {
		t.Fatal("client never counted a reconnect")
	}
}

// gateHook blocks every device write until released, holding the
// server's handler in flight.
type gateHook struct {
	gate    chan struct{}
	once    sync.Once
	blocked chan struct{}
}

func newGateHook() *gateHook {
	return &gateHook{gate: make(chan struct{}), blocked: make(chan struct{})}
}

func (h *gateHook) Event(ev inject.Event) {
	if ev.Kind != inject.DeviceWrite {
		return
	}
	h.once.Do(func() { close(h.blocked) })
	<-h.gate
}

func (h *gateHook) release() {
	select {
	case <-h.gate:
	default:
		close(h.gate)
	}
}

// TestOverloadShedsWithBusy holds one request in flight with a blocking
// injection hook and checks that the next request is shed with a typed
// server-level BusyError instead of queueing behind it.
func TestOverloadShedsWithBusy(t *testing.T) {
	dev, reg, addr := startServerWith(t, devnet.ServerOptions{MaxInFlight: 1})
	hook := newGateHook()
	defer hook.release()
	if err := dev.SetHook(hook); err != nil {
		t.Fatal(err)
	}

	blocked, err := devnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer blocked.Close()
	writeDone := make(chan error, 1)
	go func() {
		line := testLine(0, 3)
		if _, err := blocked.Write(0, &line); err != nil {
			writeDone <- err
			return
		}
		writeDone <- blocked.Flush()
	}()
	select {
	case <-hook.blocked:
	case err := <-writeDone:
		t.Fatalf("write finished without blocking: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("hook never saw a device write")
	}

	probe, err := devnet.DialWith(addr, devnet.Options{
		Retry: devnet.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	err = probe.Ping()
	var busy *device.BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("want BusyError from shed server, got %v", err)
	}
	if busy.Shard != -1 {
		t.Fatalf("server-level shed shard = %d, want -1", busy.Shard)
	}
	if busy.RetryAfter <= 0 {
		t.Fatal("shed busy carries no retry-after hint")
	}
	if devnet.ClassOf(err) != devnet.ClassBusy {
		t.Fatalf("shed classed %v, want busy", devnet.ClassOf(err))
	}
	if reg.Counter("devnet_server_shed_total").Value() == 0 {
		t.Fatal("shed not counted")
	}

	hook.release()
	if err := <-writeDone; err != nil {
		t.Fatalf("blocked writer failed after release: %v", err)
	}
	if err := dev.SetHook(nil); err != nil {
		t.Fatal(err)
	}
	// With the gate open the shed clears and retries succeed.
	if err := probe.Ping(); err != nil {
		t.Fatalf("ping after release: %v", err)
	}
}

// TestHealthProbe checks the readiness bit tracks device state.
func TestHealthProbe(t *testing.T) {
	dev, _, addr := startServerWith(t, devnet.ServerOptions{})
	c, err := devnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.DeviceDown || h.Shards != 4 {
		t.Fatalf("healthy probe = %+v", h)
	}

	if err := dev.Crash(); err != nil {
		t.Fatal(err)
	}
	h, err = c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Ready || !h.DeviceDown {
		t.Fatalf("post-crash probe = %+v", h)
	}

	if _, err := dev.Recover(); err != nil {
		t.Fatal(err)
	}
	h, err = c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Ready {
		t.Fatalf("post-recovery probe = %+v", h)
	}
}

// TestHandlerPanicIsolated serves a nil device, so any data op panics
// inside the handler. The panic must come back as a typed server error
// on the same connection, which stays usable.
func TestHandlerPanicIsolated(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := devnet.NewServerWith(nil, devnet.ServerOptions{Telemetry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() { srv.Shutdown(); <-done }()

	c, err := devnet.DialWith(ln.Addr().String(), devnet.Options{
		Retry: devnet.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Info()
	if err == nil {
		t.Fatal("info on a nil device succeeded")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("want panic surfaced as server error, got %v", err)
	}
	if devnet.ClassOf(err) != devnet.ClassFatal {
		t.Fatalf("handler panic classed %v, want fatal", devnet.ClassOf(err))
	}
	if reg.Counter("devnet_server_handler_panics_total").Value() == 0 {
		t.Fatal("panic not counted")
	}
	// Same connection, next request: the server must still answer.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after handler panic: %v", err)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatalf("health after handler panic: %v", err)
	}
	if h.Shards != 0 {
		t.Fatalf("nil-device health shards = %d", h.Shards)
	}
}
