package devnet_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/tenant"
)

// startTenantServer brings up an engine-hosted device, a tenant service
// over it, and a tenant-enabled server (no flat device) on a loopback
// port.
func startTenantServer(t *testing.T, sopts devnet.ServerOptions) (*tenant.Service, string) {
	t.Helper()
	eng, err := device.NewEngine(device.EngineOptions{
		Options: device.Options{
			System:     config.TestSystem(),
			Mode:       memctrl.ModeSAC,
			Key:        []byte("devnet-tenant-device-key"),
			Shards:     4,
			QueueDepth: 16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := tenant.New(eng, tenant.Options{MasterKey: []byte("devnet-tenant-master")})
	if err != nil {
		t.Fatal(err)
	}
	sopts.Tenants = svc
	srv := devnet.NewServerWith(nil, sopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		<-done
		eng.Close()
	})
	return svc, ln.Addr().String()
}

// TestTenantWireRoundTrip drives the full tenant plane over TCP:
// provision, attach, data ops, rotation, introspection, and the control
// plane routed through the tenant service.
func TestTenantWireRoundTrip(t *testing.T) {
	svc, addr := startTenantServer(t, devnet.ServerOptions{})
	c, err := devnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	token, err := c.TenantCreate(1, 64, 0)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	want, err := svc.Token(1)
	if err != nil || token != want {
		t.Fatalf("token over the wire %x, local %x (%v)", token, want, err)
	}

	// Data ops before attach must be denied with the typed error.
	if _, _, err := c.TenantRead(1, 0); !errors.Is(err, tenant.ErrAuth) {
		t.Fatalf("unattached read: %v", err)
	}
	// Attach with a wrong token must fail and not bind.
	if err := c.AttachTenant(1, token^1); !errors.Is(err, tenant.ErrAuth) {
		t.Fatalf("bad-token attach: %v", err)
	}
	if err := c.AttachTenant(1, token); err != nil {
		t.Fatalf("attach: %v", err)
	}

	for i := uint64(0); i < 64; i++ {
		line := testLine(i*nvm.LineSize, 7)
		if _, err := c.TenantWrite(1, i*nvm.LineSize, &line); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 64; i++ {
		got, _, err := c.TenantRead(1, i*nvm.LineSize)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != testLine(i*nvm.LineSize, 7) {
			t.Fatalf("line %d diverged over the wire", i)
		}
	}

	// Rotation over the wire, driven to completion.
	if err := c.TenantRotate(1); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	for {
		_, _, done, err := c.TenantRotateStep(1, 16)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if done {
			break
		}
	}
	info, err := c.TenantInfo(1)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.Epoch != 2 || info.Rotating {
		t.Fatalf("post-rotation info: %+v", info)
	}
	got, _, err := c.TenantRead(1, 0)
	if err != nil || got != testLine(0, 7) {
		t.Fatalf("post-rotation read: %v", err)
	}

	list, err := c.TenantList()
	if err != nil || len(list) != 1 || list[0].ID != 1 {
		t.Fatalf("list: %+v (%v)", list, err)
	}

	// Control plane routes to the tenant service's device.
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	h, err := c.Health()
	if err != nil || !h.Ready || h.Shards != 4 {
		t.Fatalf("health: %+v (%v)", h, err)
	}
	// Flat data ops are disabled in tenant-only mode.
	if _, _, err := c.Read(0); err == nil {
		t.Fatal("flat read succeeded on a tenant-only server")
	}
}

// TestTenantQuotaNotRetried: a quota rejection must surface immediately
// as a typed *TenantQuotaError — ClassQuota, not ClassBusy — without
// burning the retry budget.
func TestTenantQuotaNotRetried(t *testing.T) {
	_, addr := startTenantServer(t, devnet.ServerOptions{})
	c, err := devnet.DialWith(addr, devnet.Options{
		// A long backoff makes an accidental retry visible as a timeout.
		Retry: devnet.RetryPolicy{MaxAttempts: 5, BaseBackoff: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	token, err := c.TenantCreate(1, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachTenant(1, token); err != nil {
		t.Fatal(err)
	}
	var line nvm.Line
	for i := 0; i < 3; i++ {
		if _, err := c.TenantWrite(1, 0, &line); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	start := time.Now()
	_, err = c.TenantWrite(1, 0, &line)
	elapsed := time.Since(start)
	var qe *devnet.TenantQuotaError
	if !errors.As(err, &qe) || !errors.Is(err, tenant.ErrQuota) {
		t.Fatalf("quota error: %v", err)
	}
	if qe.Tenant != 1 || qe.Budget != 3 {
		t.Fatalf("quota detail: %+v", qe)
	}
	if devnet.ClassOf(err) != devnet.ClassQuota {
		t.Fatalf("class: %v", devnet.ClassOf(err))
	}
	if devnet.Retryable(err) {
		t.Fatal("quota error claims to be retryable")
	}
	if elapsed > time.Second {
		t.Fatalf("quota rejection took %v — it was retried", elapsed)
	}
}

// TestTenantReattachAfterReconnect: killing the connection under an
// attached client must not strand it — the client replays the binding on
// its self-healed connection and the retried data op lands.
func TestTenantReattachAfterReconnect(t *testing.T) {
	_, addr := startTenantServer(t, devnet.ServerOptions{})
	c, err := devnet.DialWith(addr, devnet.Options{
		Retry: devnet.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	token, err := c.TenantCreate(1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachTenant(1, token); err != nil {
		t.Fatal(err)
	}
	line := testLine(0, 9)
	if _, err := c.TenantWrite(1, 0, &line); err != nil {
		t.Fatal(err)
	}
	// Sever the transport out from under the client. The next op fails
	// over to a fresh connection, which starts unbound on the server; the
	// client must re-attach before retrying.
	c.BreakConnForTest()
	got, _, err := c.TenantRead(1, 0)
	if err != nil {
		t.Fatalf("read after reconnect: %v", err)
	}
	if got != line {
		t.Fatal("line diverged across reconnect")
	}
}
