//go:build !race

package devnet_test

const raceEnabled = false
