// v3 batched framing: one OpBatch frame carries many data-plane ops,
// encoded append-only into a reusable buffer and decoded in place, so the
// steady-state hot path on both sides allocates nothing per op.
//
// Request body (after the [u8 op][u64 session][u64 seq] header):
//
//	[u32 count]
//	count × [u8 op][u64 addr]            op = device.BatchRead/BatchDrain
//	        [u8 op][u64 addr][64B line]  op = device.BatchWrite
//
// Response body (status StatusOK — "the batch executed"; per-op outcomes
// are inside):
//
//	[u32 count]
//	count × [u8 status][u64 latency ps][u16 blen][blen-byte body]
//
// Per-op status/body pairs reuse the v2 vocabulary (statusError decodes
// them), so a batched busy/retired/crash surfaces exactly like its
// stop-and-wait sibling. A non-OK batch-level status means nothing in the
// frame executed: StatusBusy is the server shedding the whole batch
// (retransmit it), StatusError a malformed frame (fatal).
//
// Dedup: the whole batch is one (session, seq) unit. A transport-level
// retransmit replays the identical per-op results from the dedup window;
// an op that failed retryably inside an executed batch was never applied
// and must be re-enqueued under a NEW sequence number (the pipelined
// client does both).
package devnet

import (
	"fmt"

	"soteria/internal/device"
	"soteria/internal/nvm"
)

// maxBatchOps bounds ops per batch frame: 4096 writes ≈ 300 KiB, far
// under maxFrame, and enough to amortize any per-frame cost.
const maxBatchOps = 4096

// Batch frame geometry: the encode buffer reserves the frame header up
// front so one sealed buffer is one conn.Write.
const (
	batchSeqOff   = frameHeaderSize + 9  // seq u64 inside the request header
	batchCountOff = frameHeaderSize + 17 // count u32 right after the header
	batchBodyOff  = batchCountOff + 4
)

// batchEntrySize returns the wire size of one request entry.
func batchEntrySize(op uint8) int {
	if op == device.BatchWrite {
		return 1 + 8 + nvm.LineSize
	}
	return 1 + 8
}

// newBatchFrame resets buf to an unsealed OpBatch request frame for the
// session: zeroed frame-header space, request header with a placeholder
// sequence, zero count. Append entries with appendBatchOp, then
// sealBatchFrame.
func newBatchFrame(buf []byte, session uint64) []byte {
	buf = buf[:0]
	var zero [frameHeaderSize]byte
	buf = append(buf, zero[:]...)
	buf = append(buf, OpBatch)
	buf = putU64(buf, session)
	buf = putU64(buf, 0) // seq, patched by sealBatchFrame
	buf = putU32(buf, 0) // count, patched by sealBatchFrame
	return buf
}

// appendBatchOp appends one entry to an unsealed batch frame. op is a
// device.Batch* code; line is required for BatchWrite and ignored
// otherwise.
func appendBatchOp(buf []byte, op uint8, addr uint64, line *nvm.Line) []byte {
	buf = append(buf, op)
	buf = putU64(buf, addr)
	if op == device.BatchWrite {
		buf = append(buf, line[:]...)
	}
	return buf
}

// sealBatchFrame patches the sequence number and op count into an
// encoded batch frame and fills the leading frame header (length + CRC
// over the payload), leaving buf ready for a single Write.
func sealBatchFrame(buf []byte, seq uint64, count int) {
	bePutU64(buf[batchSeqOff:], seq)
	bePutU32(buf[batchCountOff:], uint32(count))
	sealFrame(buf)
}

// sealFrame fills buf's leading frame-header space from its payload
// (buf[frameHeaderSize:]), so the whole buffer goes out in one Write
// instead of writeFrame's header-then-payload pair.
func sealFrame(buf []byte) {
	payload := buf[frameHeaderSize:]
	bePutU32(buf, uint32(len(payload)))
	bePutU32(buf[4:], crcChecksum(payload))
}

// decodeBatchOps parses a batch request body into dst (reusing its
// capacity) and returns the ops. Every malformation is a *FrameError:
// the decoder accepts exactly what the encoder emits — count in
// [1, maxBatchOps], known op codes, no trailing bytes.
func decodeBatchOps(body []byte, dst []device.BatchOp) ([]device.BatchOp, error) {
	if len(body) < 4 {
		return nil, &FrameError{Reason: fmt.Sprintf("batch: short body (%d bytes)", len(body))}
	}
	count := beU32(body)
	if count == 0 || count > maxBatchOps {
		return nil, &FrameError{Reason: fmt.Sprintf("batch: count %d outside [1, %d]", count, maxBatchOps)}
	}
	body = body[4:]
	dst = dst[:0]
	for i := uint32(0); i < count; i++ {
		if len(body) < 9 {
			return nil, &FrameError{Reason: fmt.Sprintf("batch: entry %d truncated (%d bytes left)", i, len(body))}
		}
		op := body[0]
		switch op {
		case device.BatchRead, device.BatchDrain:
			dst = append(dst, device.BatchOp{Op: op, Addr: beU64(body[1:])})
			body = body[9:]
		case device.BatchWrite:
			if len(body) < 9+nvm.LineSize {
				return nil, &FrameError{Reason: fmt.Sprintf("batch: write entry %d truncated (%d bytes left)", i, len(body))}
			}
			bop := device.BatchOp{Op: op, Addr: beU64(body[1:])}
			copy(bop.Line[:], body[9:9+nvm.LineSize])
			dst = append(dst, bop)
			body = body[9+nvm.LineSize:]
		default:
			return nil, &FrameError{Reason: fmt.Sprintf("batch: entry %d has unknown op %d", i, op)}
		}
	}
	if len(body) != 0 {
		return nil, &FrameError{Reason: fmt.Sprintf("batch: %d trailing bytes after %d entries", len(body), count)}
	}
	return dst, nil
}

// appendBatchResult appends one per-op result entry to a batch response
// body under construction.
func appendBatchResult(out []byte, status uint8, latPS uint64, body []byte) []byte {
	out = append(out, status)
	out = putU64(out, latPS)
	out = append(out, byte(len(body)>>8), byte(len(body)))
	return append(out, body...)
}

// batchResults iterates a batch response body. Zero-copy: next's body
// aliases the response buffer.
type batchResults struct {
	body []byte
	n    uint32
	i    uint32
}

// parseBatchResults validates the count prefix and returns an iterator.
func parseBatchResults(body []byte) (batchResults, error) {
	if len(body) < 4 {
		return batchResults{}, &FrameError{Reason: fmt.Sprintf("batch: short response body (%d bytes)", len(body))}
	}
	n := beU32(body)
	if n == 0 || n > maxBatchOps {
		return batchResults{}, &FrameError{Reason: fmt.Sprintf("batch: response count %d outside [1, %d]", n, maxBatchOps)}
	}
	return batchResults{body: body[4:], n: n}, nil
}

// next yields the next per-op result. After the last entry, remaining
// reports whether the body had trailing garbage.
func (r *batchResults) next() (status uint8, latPS uint64, body []byte, err error) {
	if r.i >= r.n {
		return 0, 0, nil, &FrameError{Reason: fmt.Sprintf("batch: response ended after %d entries, want %d", r.i, r.n)}
	}
	if len(r.body) < 11 {
		return 0, 0, nil, &FrameError{Reason: fmt.Sprintf("batch: response entry %d truncated (%d bytes left)", r.i, len(r.body))}
	}
	status = r.body[0]
	latPS = beU64(r.body[1:])
	blen := int(r.body[9])<<8 | int(r.body[10])
	if len(r.body) < 11+blen {
		return 0, 0, nil, &FrameError{Reason: fmt.Sprintf("batch: response entry %d body truncated (want %d, have %d)", r.i, blen, len(r.body)-11)}
	}
	body = r.body[11 : 11+blen]
	r.body = r.body[11+blen:]
	r.i++
	return status, latPS, body, nil
}

// remaining returns the unconsumed entry count (and the iterator is
// clean only if the body is fully consumed too).
func (r *batchResults) remaining() int { return int(r.n - r.i) }

// trailing reports leftover bytes after the declared entries.
func (r *batchResults) trailing() int {
	if r.i == r.n {
		return len(r.body)
	}
	return 0
}
