package devnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/tenant"
)

// TenantQuotaError is the typed, non-retryable quota rejection a client
// operation surfaces when the addressed tenant exhausted its per-window
// budget. It is the tenant layer's *tenant.QuotaError reconstructed from
// StatusQuota — aliased here so wire-facing code can name it without
// importing the tenant package.
type TenantQuotaError = tenant.QuotaError

// FrameError reports a protocol-level failure on the wire: a corrupted
// checksum, an oversized or malformed frame, or a response that does not
// answer the in-flight request. The connection that produced it is
// poisoned (the stream can no longer be trusted to be in sync), so the
// client drops it and retries over a fresh one.
type FrameError struct {
	Reason string
}

func (e *FrameError) Error() string { return "devnet: " + e.Reason }

// Class partitions the error surface of a devnet operation by how a
// caller should react. Loadgen and the chaos harness branch on it; the
// client's retry loop is driven by it.
type Class int

const (
	// ClassFatal: retrying cannot help (semantic rejection, closed
	// device, unknown server error). Surface it.
	ClassFatal Class = iota
	// ClassTransport: the connection failed or produced garbage before a
	// trustworthy response arrived. The operation may or may not have
	// executed — safe to retry only because the server deduplicates by
	// (session, seq).
	ClassTransport
	// ClassBusy: typed backpressure (shard queue full, or the server's
	// max-in-flight cap). The operation did not execute; honor the
	// retry-after hint.
	ClassBusy
	// ClassRetired: the request was retired unexecuted by a crash
	// barrier. Retry after the device recovers.
	ClassRetired
	// ClassDown: the device is crashed or lost power. Retryable only in
	// supervised deployments where something will run recovery
	// (RetryPolicy.RetryDown); otherwise the caller must Recover.
	ClassDown
	// ClassQuota: the tenant's hard per-window operation budget is
	// exhausted. NOT retryable — unlike ClassBusy backpressure the budget
	// does not refill on any timescale a retry loop should wait for, so
	// the client surfaces the typed *TenantQuotaError immediately and the
	// caller sheds or re-plans load.
	ClassQuota
)

func (c Class) String() string {
	switch c {
	case ClassFatal:
		return "fatal"
	case ClassTransport:
		return "transport"
	case ClassBusy:
		return "busy"
	case ClassRetired:
		return "retired"
	case ClassDown:
		return "down"
	case ClassQuota:
		return "quota"
	default:
		return "?"
	}
}

// ClassOf classifies any error produced by a devnet operation.
func ClassOf(err error) Class {
	switch {
	case err == nil:
		return ClassFatal
	case errors.Is(err, tenant.ErrQuota):
		return ClassQuota
	case errors.Is(err, device.ErrBusy):
		return ClassBusy
	case errors.Is(err, device.ErrRetired):
		return ClassRetired
	case errors.Is(err, memctrl.ErrCrashed), errors.Is(err, device.ErrPowerLoss):
		return ClassDown
	case errors.Is(err, device.ErrClosed):
		return ClassFatal
	}
	var fe *FrameError
	if errors.As(err, &fe) {
		return ClassTransport
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return ClassTransport
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return ClassTransport
	}
	return ClassFatal
}

// Retryable reports whether the default client policy would retry err
// (transport faults, backpressure, and crash-barrier retirement; not
// ClassDown, which needs RetryPolicy.RetryDown).
func Retryable(err error) bool {
	switch ClassOf(err) {
	case ClassTransport, ClassBusy, ClassRetired:
		return true
	default:
		return false
	}
}

// OpError is returned when the client's retry budget ran out. It wraps
// the last underlying error, so errors.Is/As still see the typed cause.
type OpError struct {
	// Op names the operation ("write", "recover", ...).
	Op string
	// Attempts is how many times the operation was tried.
	Attempts int
	// Elapsed is the wall-clock time spent, including backoff waits.
	Elapsed time.Duration
	// Err is the last error observed.
	Err error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("devnet: %s gave up after %d attempts in %v: %v", e.Op, e.Attempts, e.Elapsed.Round(time.Millisecond), e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }
