package devnet

// BreakConnForTest severs the client's current connection without
// clearing it, simulating a transport failure the next operation will
// discover mid-exchange. Test-only.
func (c *Client) BreakConnForTest() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
	}
}
