package devnet

import (
	"encoding/json"
	"fmt"
	"time"

	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// sendAttach replays the stored tenant binding on the current connection.
// Called with c.mu held and a live connection. Session 0 and sequence 0:
// the attach must execute on this connection (the server keeps it out of
// the dedup window anyway), and it is not one of the client's numbered
// operations.
func (c *Client) sendAttach() error {
	f := TenantFrame{Op: OpTenantAttach, Tenant: c.tenantID, Token: c.tenantTok}
	req := append(encodeRequest(OpTenantAttach, 0, 0, 12), f.Encode()...)
	c.conn.SetDeadline(time.Now().Add(c.opts.OpTimeout))
	defer c.conn.SetDeadline(time.Time{})
	if err := writeFrame(c.conn, req); err != nil {
		return c.noteTimeout(fmt.Errorf("devnet: attach send: %w", err))
	}
	payload, err := readFrameInto(c.conn, &c.rbuf)
	if err != nil {
		return c.noteTimeout(fmt.Errorf("devnet: attach receive: %w", err))
	}
	resp, err := parseResponse(payload)
	if err != nil {
		return err
	}
	if resp.seq != 0 {
		return &FrameError{Reason: fmt.Sprintf("attach answered with sequence %d", resp.seq)}
	}
	return statusError(resp.status, resp.body)
}

// AttachTenant authenticates this client's connection as tenant id and
// remembers the binding, transparently re-attaching after every
// reconnect. Data ops (TenantRead/TenantWrite) require it.
func (c *Client) AttachTenant(id uint32, token uint64) error {
	c.mu.Lock()
	c.attached = true
	c.tenantID = id
	c.tenantTok = token
	c.mu.Unlock()
	f := TenantFrame{Op: OpTenantAttach, Tenant: id, Token: token}
	_, _, err := c.do("tenant-attach", OpTenantAttach, f.Encode())
	if err != nil {
		c.mu.Lock()
		c.attached = false
		c.mu.Unlock()
	}
	return err
}

// TenantRead services one 64-byte read in the attached tenant's space.
func (c *Client) TenantRead(id uint32, addr uint64) (nvm.Line, sim.Time, error) {
	var line nvm.Line
	f := TenantFrame{Op: OpTenantRead, Tenant: id, Addr: addr}
	lat, body, err := c.do("tenant-read", OpTenantRead, f.Encode())
	if err != nil {
		return line, 0, err
	}
	if len(body) != nvm.LineSize {
		return line, 0, &FrameError{Reason: fmt.Sprintf("tenant read returned %d bytes", len(body))}
	}
	copy(line[:], body)
	return line, lat, nil
}

// TenantWrite services one 64-byte write in the attached tenant's space.
// Retries are exactly-once through the server's dedup window, like flat
// writes. A quota rejection surfaces as a *TenantQuotaError and is NOT
// retried: the budget will not refill inside a retry loop's horizon.
func (c *Client) TenantWrite(id uint32, addr uint64, data *nvm.Line) (sim.Time, error) {
	f := TenantFrame{Op: OpTenantWrite, Tenant: id, Addr: addr, Line: *data}
	lat, _, err := c.do("tenant-write", OpTenantWrite, f.Encode())
	return lat, err
}

// TenantCreate provisions a tenant (operator plane) and returns its
// access token.
func (c *Client) TenantCreate(id uint32, lines uint64, quotaOps uint32) (uint64, error) {
	f := TenantFrame{Op: OpTenantCreate, Tenant: id, Lines: lines, Quota: quotaOps}
	_, body, err := c.do("tenant-create", OpTenantCreate, f.Encode())
	if err != nil {
		return 0, err
	}
	if len(body) != 8 {
		return 0, &FrameError{Reason: fmt.Sprintf("tenant create returned %d bytes", len(body))}
	}
	return beU64(body), nil
}

// TenantRotate begins an online key rotation (operator plane).
func (c *Client) TenantRotate(id uint32) error {
	f := TenantFrame{Op: OpTenantRotate, Tenant: id}
	_, _, err := c.do("tenant-rotate", OpTenantRotate, f.Encode())
	return err
}

// TenantRotateStep advances a rotation sweep by up to max lines,
// reporting progress (operator plane).
func (c *Client) TenantRotateStep(id uint32, max uint32) (rotated uint32, cursor uint64, done bool, err error) {
	f := TenantFrame{Op: OpTenantStep, Tenant: id, Max: max}
	_, body, err := c.do("tenant-step", OpTenantStep, f.Encode())
	if err != nil {
		return 0, 0, false, err
	}
	if len(body) != 13 {
		return 0, 0, false, &FrameError{Reason: fmt.Sprintf("tenant step returned %d bytes", len(body))}
	}
	return beU32(body[1:]), beU64(body[5:]), body[0] != 0, nil
}

// TenantInfo fetches one tenant's record and rotation progress.
func (c *Client) TenantInfo(id uint32) (TenantInfo, error) {
	var info TenantInfo
	f := TenantFrame{Op: OpTenantInfo, Tenant: id}
	_, body, err := c.do("tenant-info", OpTenantInfo, f.Encode())
	if err != nil {
		return info, err
	}
	return info, json.Unmarshal(body, &info)
}

// TenantList fetches the provisioned tenants (operator plane).
func (c *Client) TenantList() ([]TenantRecord, error) {
	f := TenantFrame{Op: OpTenantList}
	_, body, err := c.do("tenant-list", OpTenantList, f.Encode())
	if err != nil {
		return nil, err
	}
	var out []TenantRecord
	return out, json.Unmarshal(body, &out)
}

// TenantMetrics fetches one tenant's telemetry snapshot.
func (c *Client) TenantMetrics(id uint32) (*telemetry.Snapshot, error) {
	f := TenantFrame{Op: OpTenantMetrics, Tenant: id}
	_, body, err := c.do("tenant-metrics", OpTenantMetrics, f.Encode())
	if err != nil {
		return nil, err
	}
	snap := &telemetry.Snapshot{}
	return snap, json.Unmarshal(body, snap)
}
