package devnet

import (
	"encoding/binary"
	"fmt"

	"soteria/internal/nvm"
)

// TenantFrame is the parsed body of one tenant-plane request. One codec
// (ParseTenantFrame / Encode) is the single entry and exit point for
// every tenant op body on both sides of the wire, so the fuzz target
// exercises exactly what the server parses: any byte string either
// decodes into a frame that re-encodes to the same bytes, or is rejected
// with a typed *FrameError — never a panic, never a silent truncation.
type TenantFrame struct {
	// Op is the tenant-plane opcode (OpTenantAttach..OpTenantMetrics).
	Op uint8
	// Tenant is the addressed tenant id (every op except OpTenantList).
	Tenant uint32
	// Token is the access token (OpTenantAttach).
	Token uint64
	// Addr is the tenant-local byte address (OpTenantRead/OpTenantWrite).
	Addr uint64
	// Line is the payload line (OpTenantWrite).
	Line nvm.Line
	// Lines is the extent size in lines (OpTenantCreate).
	Lines uint64
	// Quota is the per-window op budget, 0 = unlimited (OpTenantCreate).
	Quota uint32
	// Max is the sweep step bound (OpTenantStep).
	Max uint32
}

// tenantBodyLen is the exact body length of each tenant op, or -1 for a
// non-tenant op.
func tenantBodyLen(op uint8) int {
	switch op {
	case OpTenantAttach:
		return 12
	case OpTenantRead:
		return 12
	case OpTenantWrite:
		return 12 + nvm.LineSize
	case OpTenantCreate:
		return 16
	case OpTenantRotate, OpTenantInfo, OpTenantMetrics:
		return 4
	case OpTenantStep:
		return 8
	case OpTenantList:
		return 0
	default:
		return -1
	}
}

// ParseTenantFrame decodes one tenant op body. Length is checked exactly:
// trailing garbage is a reject, not an ignore.
func ParseTenantFrame(op uint8, body []byte) (TenantFrame, error) {
	want := tenantBodyLen(op)
	if want < 0 {
		return TenantFrame{}, &FrameError{Reason: fmt.Sprintf("op %d is not a tenant op", op)}
	}
	if len(body) != want {
		return TenantFrame{}, &FrameError{Reason: fmt.Sprintf("tenant op %d body is %d bytes, want %d", op, len(body), want)}
	}
	f := TenantFrame{Op: op}
	if op != OpTenantList {
		f.Tenant = binary.BigEndian.Uint32(body[:4])
	}
	switch op {
	case OpTenantAttach:
		f.Token = binary.BigEndian.Uint64(body[4:12])
	case OpTenantRead:
		f.Addr = binary.BigEndian.Uint64(body[4:12])
	case OpTenantWrite:
		f.Addr = binary.BigEndian.Uint64(body[4:12])
		copy(f.Line[:], body[12:])
	case OpTenantCreate:
		f.Lines = binary.BigEndian.Uint64(body[4:12])
		f.Quota = binary.BigEndian.Uint32(body[12:16])
	case OpTenantStep:
		f.Max = binary.BigEndian.Uint32(body[4:8])
	}
	return f, nil
}

// Encode renders the frame back into its wire body. For every frame that
// ParseTenantFrame accepted, Encode returns the input bytes exactly.
func (f *TenantFrame) Encode() []byte {
	n := tenantBodyLen(f.Op)
	if n < 0 {
		return nil
	}
	out := make([]byte, 0, n)
	if f.Op != OpTenantList {
		out = putU32(out, f.Tenant)
	}
	switch f.Op {
	case OpTenantAttach:
		out = putU64(out, f.Token)
	case OpTenantRead:
		out = putU64(out, f.Addr)
	case OpTenantWrite:
		out = putU64(out, f.Addr)
		out = append(out, f.Line[:]...)
	case OpTenantCreate:
		out = putU64(out, f.Lines)
		out = putU32(out, f.Quota)
	case OpTenantStep:
		out = putU32(out, f.Max)
	}
	return out
}
