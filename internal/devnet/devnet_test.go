package devnet_test

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
)

// startServer brings up a device and a server on a loopback port and
// returns the dial address.
func startServer(t *testing.T, mutate func(*device.Options)) (*device.Device, string) {
	t.Helper()
	opts := device.Options{
		System:    config.TestSystem(),
		Mode:      memctrl.ModeSRC,
		Key:       []byte("devnet-test-key"),
		Shards:    4,
		Telemetry: true,
	}
	if mutate != nil {
		mutate(&opts)
	}
	dev, err := device.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := devnet.NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		<-done
		dev.Close()
	})
	return dev, ln.Addr().String()
}

func testLine(addr uint64, salt byte) nvm.Line {
	var l nvm.Line
	for i := range l {
		l[i] = byte(addr>>uint(8*(i%8))) ^ salt ^ byte(i)
	}
	return l
}

func TestWireRoundTrip(t *testing.T) {
	dev, addr := startServer(t, nil)
	c, err := devnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info != dev.Info() {
		t.Fatalf("info over the wire %+v != local %+v", info, dev.Info())
	}

	for i := uint64(0); i < 32; i++ {
		a := i * nvm.LineSize
		line := testLine(a, 1)
		if _, err := c.Write(a, &line); err != nil {
			t.Fatalf("write %#x: %v", a, err)
		}
	}
	for i := uint64(0); i < 32; i++ {
		a := i * nvm.LineSize
		got, lat, err := c.Read(a)
		if err != nil {
			t.Fatalf("read %#x: %v", a, err)
		}
		if got != testLine(a, 1) {
			t.Fatalf("read %#x returned wrong data", a)
		}
		if lat <= 0 {
			t.Fatalf("read %#x: non-positive latency %v", a, lat)
		}
	}
	if err := c.Drain(0); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	// The wire snapshot must be byte-identical to the local rendering.
	wire, err := c.SnapshotJSON()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	local, err := dev.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, local) {
		t.Fatal("wire snapshot differs from local snapshot")
	}
}

func TestWireErrorSurface(t *testing.T) {
	_, addr := startServer(t, nil)
	c, err := devnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	line := testLine(0, 2)
	if _, err := c.Write(0, &line); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	// Down: data ops come back as the same sentinel the local API uses.
	if _, _, err := c.Read(0); !errors.Is(err, memctrl.ErrCrashed) {
		t.Fatalf("read while down: %v", err)
	}
	rep, err := c.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rep.Shards) != 4 || !rep.Clean() {
		t.Fatalf("recovery report: %+v", rep)
	}
	got, _, err := c.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != line {
		t.Fatal("committed write lost across wire crash/recover")
	}
	// Unaligned address: a generic server-side error, not a hang.
	if _, _, err := c.Read(7); err == nil {
		t.Fatal("unaligned read accepted over the wire")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t, nil)
	const clients = 4
	var wg sync.WaitGroup
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := devnet.Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				a := uint64(k*64+i) * nvm.LineSize
				line := testLine(a, byte(k))
				if _, err := c.Write(a, &line); err != nil {
					t.Errorf("client %d write: %v", k, err)
					return
				}
				got, _, err := c.Read(a)
				if err != nil {
					t.Errorf("client %d read: %v", k, err)
					return
				}
				if got != line {
					t.Errorf("client %d: wrong data at %#x", k, a)
					return
				}
			}
		}(k)
	}
	wg.Wait()
}

func TestGracefulShutdownAnswersInFlight(t *testing.T) {
	dev, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("devnet-test-key"),
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	srv := devnet.NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()

	c, err := devnet.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	line := testLine(0, 3)
	if _, err := c.Write(0, &line); err != nil {
		t.Fatal(err)
	}

	srv.Shutdown()
	<-done
	// The drained connection is closed; the next request fails at the
	// transport, not by hanging.
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded after shutdown")
	}
	// The device itself is still alive and served the committed write.
	got, _, err := dev.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != line {
		t.Fatal("device lost data across server shutdown")
	}
}
