//go:build !race

package devnet

const raceEnabled = false
