package devnet

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"time"

	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
	"soteria/internal/tenant"
)

// RetryPolicy governs how a Client reacts to retryable failures. Every
// retry re-sends the same (session, seq), so the server's dedup window
// guarantees a retried operation whose original already committed is
// acknowledged without being applied twice.
type RetryPolicy struct {
	// MaxAttempts caps total attempts per operation. 0 selects the
	// default (5); negative means unlimited (bounded by MaxElapsed).
	MaxAttempts int
	// MaxElapsed caps the wall-clock time spent on one operation,
	// backoff waits included. 0 selects the default (30s).
	MaxElapsed time.Duration
	// BaseBackoff is the first retry's wait (default 5ms); each further
	// retry doubles it, capped at MaxBackoff (default 500ms), plus up to
	// 50% seeded jitter so a fleet of retrying clients decorrelates.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryDown also retries ClassDown errors (device crashed / power
	// lost). Only safe in supervised deployments where something will
	// run recovery; otherwise a crashed device retries forever.
	RetryDown bool
}

func (p *RetryPolicy) fill() {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 5
	}
	if p.MaxElapsed <= 0 {
		p.MaxElapsed = 30 * time.Second
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
}

// Options configures a resilient client.
type Options struct {
	// DialTimeout bounds each (re)connection attempt. Default 5s.
	DialTimeout time.Duration
	// OpTimeout is the per-attempt round-trip deadline: send the request
	// and receive the full response within it or the attempt counts as a
	// transport timeout and is retried. Default 30s.
	OpTimeout time.Duration
	// Retry is the retry policy; its zero value selects the defaults.
	Retry RetryPolicy
	// Session identifies this client in the server's dedup window. 0
	// (the default) draws a random non-zero id.
	Session uint64
	// Seed drives backoff jitter; 0 derives it from the session id.
	Seed int64
	// Telemetry, when non-nil, receives the client's resilience counters
	// (devnet_client_*) and the retry-backoff histogram.
	Telemetry *telemetry.Registry
	// Logf, when non-nil, receives reconnect/retry diagnostics.
	Logf func(format string, args ...any)
}

// Client drives a remote device over TCP and satisfies device.Client,
// reconstructing the device's typed error surface from the wire statuses
// so code written against the in-process device runs unchanged against a
// server. It is self-healing: every operation runs under a deadline, a
// broken connection is replaced automatically with capped exponential
// backoff, and failed attempts are retried idempotently (the server
// deduplicates by session and sequence). A Client serializes its
// requests (the protocol is strict stop-and-wait); open several clients
// for concurrency.
type Client struct {
	addr string
	opts Options

	mu   sync.Mutex
	conn net.Conn
	seq  uint64
	rng  *mrand.Rand

	// req and rbuf are the pooled request/receive buffers: a client in
	// steady state allocates nothing per data op. Response bodies alias
	// rbuf and are valid only until the next operation, so accessors
	// that return bytes to the caller copy first.
	req  []byte
	rbuf []byte

	// attached/tenantID/tenantTok hold the tenant binding, replayed on
	// every reconnect (the binding is per-connection on the server).
	attached  bool
	tenantID  uint32
	tenantTok uint64

	retries    *telemetry.Counter
	reconnects *telemetry.Counter
	timeouts   *telemetry.Counter
	busyWaits  *telemetry.Counter
	gaveUp     *telemetry.Counter
	backoffNS  *telemetry.Histogram
}

var _ device.Client = (*Client)(nil)

// Dial connects to a devnet server with default options.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, Options{})
}

// DialWith connects with explicit resilience options. The first
// connection is established eagerly so an unreachable server fails
// fast; later reconnects happen inside the retry loop.
func DialWith(addr string, opts Options) (*Client, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.OpTimeout <= 0 {
		opts.OpTimeout = 30 * time.Second
	}
	opts.Retry.fill()
	if opts.Session == 0 {
		opts.Session = randomSession()
	}
	if opts.Seed == 0 {
		opts.Seed = int64(opts.Session)
	}
	c := &Client{addr: addr, opts: opts, rng: mrand.New(mrand.NewSource(opts.Seed))}
	reg := opts.Telemetry
	c.retries = reg.Counter("devnet_client_retries_total")
	c.reconnects = reg.Counter("devnet_client_reconnects_total")
	c.timeouts = reg.Counter("devnet_client_timeouts_total")
	c.busyWaits = reg.Counter("devnet_client_busy_waits_total")
	c.gaveUp = reg.Counter("devnet_client_gave_up_total")
	c.backoffNS = reg.Histogram("devnet_client_retry_backoff_ns", telemetry.ExpBounds(40))
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

func randomSession() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// Crypto randomness is best-effort uniqueness, not security;
			// fall back to the wall clock.
			return uint64(time.Now().UnixNano()) | 1
		}
		if v := binary.BigEndian.Uint64(b[:]); v != 0 {
			return v
		}
	}
}

// Session returns the client's dedup session id.
func (c *Client) Session() uint64 { return c.opts.Session }

// Close closes the connection. The remote device keeps running.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// do runs one logical operation: assign a sequence number, then attempt
// and retry under the policy until it succeeds, fails fatally, or the
// budget runs out.
func (c *Client) do(opName string, op uint8, body []byte) (sim.Time, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	seq := c.seq
	c.req = c.req[:0]
	c.req = append(c.req, op)
	c.req = putU64(c.req, c.opts.Session)
	c.req = putU64(c.req, seq)
	c.req = append(c.req, body...)
	return c.retryLoop(opName, c.req, seq)
}

// doAddr is do for the addr(+line) data ops, encoding the body straight
// into the pooled request buffer so the hot path builds no intermediate
// body slice.
func (c *Client) doAddr(opName string, op uint8, addr uint64, line *nvm.Line) (sim.Time, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	seq := c.seq
	c.req = c.req[:0]
	c.req = append(c.req, op)
	c.req = putU64(c.req, c.opts.Session)
	c.req = putU64(c.req, seq)
	c.req = putU64(c.req, addr)
	if line != nil {
		c.req = append(c.req, line[:]...)
	}
	return c.retryLoop(opName, c.req, seq)
}

// retryLoop drives one encoded request to success, fatal failure, or
// budget exhaustion. Called with c.mu held.
func (c *Client) retryLoop(opName string, req []byte, seq uint64) (sim.Time, []byte, error) {
	start := time.Now()
	pol := c.opts.Retry
	backoff := pol.BaseBackoff
	for attempt := 1; ; attempt++ {
		lat, respBody, err := c.attempt(req, seq)
		if err == nil {
			return lat, respBody, nil
		}
		class := ClassOf(err)
		retryable := class == ClassTransport || class == ClassBusy || class == ClassRetired ||
			(class == ClassDown && pol.RetryDown)
		if !retryable {
			return 0, nil, err
		}
		if class == ClassTransport {
			c.dropConn()
		}
		exhausted := pol.MaxAttempts > 0 && attempt >= pol.MaxAttempts
		if elapsed := time.Since(start); exhausted || elapsed+backoff > pol.MaxElapsed {
			c.gaveUp.Inc()
			return 0, nil, &OpError{Op: opName, Attempts: attempt, Elapsed: time.Since(start), Err: err}
		}
		wait := backoff
		if backoff < pol.MaxBackoff {
			backoff *= 2
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
		if class == ClassBusy {
			// Honor the server's retry-after estimate when it is more
			// conservative than our own schedule.
			c.busyWaits.Inc()
			var be *device.BusyError
			if errors.As(err, &be) && be.RetryAfter > wait {
				wait = be.RetryAfter
				if wait > pol.MaxBackoff {
					wait = pol.MaxBackoff
				}
			}
		}
		wait += time.Duration(c.rng.Int63n(int64(wait/2) + 1))
		c.backoffNS.Observe(uint64(wait))
		c.retries.Inc()
		c.logf("devnet: %s attempt %d failed (%s: %v), retrying in %v", opName, attempt, class, err, wait)
		time.Sleep(wait)
	}
}

// dropConn discards a connection the retry loop no longer trusts.
func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// attempt performs one request/response exchange, reconnecting first if
// the previous attempt poisoned the connection. Called with c.mu held.
func (c *Client) attempt(req []byte, seq uint64) (sim.Time, []byte, error) {
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
		if err != nil {
			return 0, nil, err
		}
		c.conn = conn
		c.reconnects.Inc()
		c.logf("devnet: reconnected to %s", c.addr)
		if c.attached {
			// The tenant binding died with the old connection; restore it
			// before the retried operation runs, or the server would
			// reject the data op the retry is trying to land.
			if err := c.sendAttach(); err != nil {
				return 0, nil, err
			}
		}
	}
	c.conn.SetDeadline(time.Now().Add(c.opts.OpTimeout))
	defer c.conn.SetDeadline(time.Time{})
	if err := writeFrame(c.conn, req); err != nil {
		return 0, nil, c.noteTimeout(fmt.Errorf("devnet: send: %w", err))
	}
	payload, err := readFrameInto(c.conn, &c.rbuf)
	if err != nil {
		return 0, nil, c.noteTimeout(fmt.Errorf("devnet: receive: %w", err))
	}
	resp, err := parseResponse(payload)
	if err != nil {
		return 0, nil, err
	}
	if resp.seq != seq {
		return 0, nil, &FrameError{Reason: fmt.Sprintf("response for sequence %d, want %d", resp.seq, seq)}
	}
	if derr := statusError(resp.status, resp.body); derr != nil {
		return 0, nil, derr
	}
	return sim.Time(resp.latPS), resp.body, nil
}

// noteTimeout counts deadline expirations for the resilience report.
func (c *Client) noteTimeout(err error) error {
	if ne, ok := errAsNet(err); ok && ne.Timeout() {
		c.timeouts.Inc()
	}
	return err
}

func errAsNet(err error) (net.Error, bool) {
	var ne net.Error
	return ne, errors.As(err, &ne)
}

// statusError reconstructs the device's typed error surface from a wire
// status (nil for StatusOK).
func statusError(status uint8, body []byte) error {
	switch status {
	case StatusOK:
		return nil
	case StatusBusy:
		if len(body) != 16 {
			return &FrameError{Reason: fmt.Sprintf("malformed busy body (%d bytes)", len(body))}
		}
		return &device.BusyError{
			Shard:      int(int32(binary.BigEndian.Uint32(body))),
			Pending:    int(binary.BigEndian.Uint32(body[4:])),
			RetryAfter: time.Duration(binary.BigEndian.Uint64(body[8:])) * time.Nanosecond,
		}
	case StatusCrashed:
		return memctrl.ErrCrashed
	case StatusClosed:
		return device.ErrClosed
	case StatusPowerLoss:
		if len(body) != 12 {
			return &FrameError{Reason: fmt.Sprintf("malformed power-loss body (%d bytes)", len(body))}
		}
		return &device.PowerError{
			Shard:    int(int32(binary.BigEndian.Uint32(body))),
			Boundary: int(binary.BigEndian.Uint64(body[4:])),
		}
	case StatusRetired:
		return device.ErrRetired
	case StatusQuota:
		if len(body) != 12 {
			return &FrameError{Reason: fmt.Sprintf("malformed quota body (%d bytes)", len(body))}
		}
		return &tenant.QuotaError{
			Tenant: binary.BigEndian.Uint32(body),
			Used:   binary.BigEndian.Uint32(body[4:]),
			Budget: binary.BigEndian.Uint32(body[8:]),
		}
	case StatusTenantDenied:
		if len(body) != 4 {
			return &FrameError{Reason: fmt.Sprintf("malformed denied body (%d bytes)", len(body))}
		}
		return &tenant.AuthError{Tenant: binary.BigEndian.Uint32(body)}
	case StatusTenantIntegrity:
		if len(body) != 12 {
			return &FrameError{Reason: fmt.Sprintf("malformed integrity body (%d bytes)", len(body))}
		}
		return &tenant.IntegrityError{
			Tenant: binary.BigEndian.Uint32(body),
			Line:   binary.BigEndian.Uint64(body[4:]),
		}
	case StatusError:
		return fmt.Errorf("devnet: server: %s", body)
	default:
		return &FrameError{Reason: fmt.Sprintf("unknown status %d", status)}
	}
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, _, err := c.do("ping", OpPing, nil)
	return err
}

// Info fetches the remote device description.
func (c *Client) Info() (device.Info, error) {
	var info device.Info
	_, body, err := c.do("info", OpInfo, nil)
	if err != nil {
		return info, err
	}
	return info, json.Unmarshal(body, &info)
}

// Health fetches the server's readiness probe.
func (c *Client) Health() (Health, error) {
	var h Health
	_, body, err := c.do("health", OpHealth, nil)
	if err != nil {
		return h, err
	}
	return h, json.Unmarshal(body, &h)
}

// Read services one 64-byte read.
func (c *Client) Read(addr uint64) (nvm.Line, sim.Time, error) {
	var line nvm.Line
	lat, body, err := c.doAddr("read", OpRead, addr, nil)
	if err != nil {
		return line, 0, err
	}
	if len(body) != nvm.LineSize {
		return line, 0, &FrameError{Reason: fmt.Sprintf("read returned %d bytes", len(body))}
	}
	copy(line[:], body)
	return line, lat, nil
}

// Write services one 64-byte write. Retries are safe: the request
// carries this client's session and a fresh sequence number, and the
// server acknowledges a duplicate of an already-committed write from
// its dedup window without applying it again.
func (c *Client) Write(addr uint64, data *nvm.Line) (sim.Time, error) {
	lat, _, err := c.doAddr("write", OpWrite, addr, data)
	return lat, err
}

// Drain waits until the shard owning addr has drained its WPQ.
func (c *Client) Drain(addr uint64) error {
	_, _, err := c.doAddr("drain", OpDrain, addr, nil)
	return err
}

// Flush is the device-wide durability barrier.
func (c *Client) Flush() error {
	_, _, err := c.do("flush", OpFlush, nil)
	return err
}

// Crash cuts power across the whole remote device.
func (c *Client) Crash() error {
	_, _, err := c.do("crash", OpCrash, nil)
	return err
}

// Recover rebuilds the remote device and returns its report.
func (c *Client) Recover() (*device.RecoveryReport, error) {
	_, body, err := c.do("recover", OpRecover, nil)
	if err != nil {
		return nil, err
	}
	rep := &device.RecoveryReport{}
	if err := json.Unmarshal(body, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// SnapshotJSON fetches the remote device's merged telemetry snapshot in
// its canonical JSON rendering (byte-identical to a local
// Snapshot().MarshalIndentJSON()).
func (c *Client) SnapshotJSON() ([]byte, error) {
	_, body, err := c.do("snapshot", OpSnapshot, nil)
	if err != nil {
		return nil, err
	}
	// body aliases the pooled receive buffer; hand the caller a copy.
	return append([]byte(nil), body...), nil
}
