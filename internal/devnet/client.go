package devnet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// Client drives a remote device over one TCP connection. It satisfies
// device.Client, reconstructing the device's typed error surface from the
// wire statuses, so code written against the in-process device runs
// unchanged against a server. A Client serializes its requests (the
// protocol is strict request/response); open several clients for
// concurrency.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

var _ device.Client = (*Client)(nil)

// Dial connects to a devnet server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection. The remote device keeps running.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request payload and decodes the response header,
// returning the simulated latency, the response body, and the decoded
// device error (nil on StatusOK).
func (c *Client) roundTrip(req []byte) (sim.Time, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, req); err != nil {
		return 0, nil, fmt.Errorf("devnet: send: %w", err)
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return 0, nil, fmt.Errorf("devnet: receive: %w", err)
	}
	if len(resp) < 9 {
		return 0, nil, fmt.Errorf("devnet: short response (%d bytes)", len(resp))
	}
	status := resp[0]
	lat := sim.Time(binary.BigEndian.Uint64(resp[1:9]))
	body := resp[9:]
	switch status {
	case StatusOK:
		return lat, body, nil
	case StatusBusy:
		if len(body) != 16 {
			return 0, nil, fmt.Errorf("devnet: malformed busy body (%d bytes)", len(body))
		}
		return 0, nil, &device.BusyError{
			Shard:      int(binary.BigEndian.Uint32(body)),
			Pending:    int(binary.BigEndian.Uint32(body[4:])),
			RetryAfter: time.Duration(binary.BigEndian.Uint64(body[8:])) * time.Nanosecond,
		}
	case StatusCrashed:
		return 0, nil, memctrl.ErrCrashed
	case StatusClosed:
		return 0, nil, device.ErrClosed
	case StatusPowerLoss:
		if len(body) != 12 {
			return 0, nil, fmt.Errorf("devnet: malformed power-loss body (%d bytes)", len(body))
		}
		return 0, nil, &device.PowerError{
			Shard:    int(binary.BigEndian.Uint32(body)),
			Boundary: int(binary.BigEndian.Uint64(body[4:])),
		}
	case StatusRetired:
		return 0, nil, device.ErrRetired
	case StatusError:
		return 0, nil, fmt.Errorf("devnet: server: %s", body)
	default:
		return 0, nil, fmt.Errorf("devnet: unknown status %d", status)
	}
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, _, err := c.roundTrip([]byte{OpPing})
	return err
}

// Info fetches the remote device description.
func (c *Client) Info() (device.Info, error) {
	var info device.Info
	_, body, err := c.roundTrip([]byte{OpInfo})
	if err != nil {
		return info, err
	}
	return info, json.Unmarshal(body, &info)
}

// Read services one 64-byte read.
func (c *Client) Read(addr uint64) (nvm.Line, sim.Time, error) {
	var line nvm.Line
	lat, body, err := c.roundTrip(putU64([]byte{OpRead}, addr))
	if err != nil {
		return line, 0, err
	}
	if len(body) != nvm.LineSize {
		return line, 0, fmt.Errorf("devnet: read returned %d bytes", len(body))
	}
	copy(line[:], body)
	return line, lat, nil
}

// Write services one 64-byte write.
func (c *Client) Write(addr uint64, data *nvm.Line) (sim.Time, error) {
	req := putU64([]byte{OpWrite}, addr)
	req = append(req, data[:]...)
	lat, _, err := c.roundTrip(req)
	return lat, err
}

// Drain waits until the shard owning addr has drained its WPQ.
func (c *Client) Drain(addr uint64) error {
	_, _, err := c.roundTrip(putU64([]byte{OpDrain}, addr))
	return err
}

// Flush is the device-wide durability barrier.
func (c *Client) Flush() error {
	_, _, err := c.roundTrip([]byte{OpFlush})
	return err
}

// Crash cuts power across the whole remote device.
func (c *Client) Crash() error {
	_, _, err := c.roundTrip([]byte{OpCrash})
	return err
}

// Recover rebuilds the remote device and returns its report.
func (c *Client) Recover() (*device.RecoveryReport, error) {
	_, body, err := c.roundTrip([]byte{OpRecover})
	if err != nil {
		return nil, err
	}
	rep := &device.RecoveryReport{}
	if err := json.Unmarshal(body, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// SnapshotJSON fetches the remote device's merged telemetry snapshot in
// its canonical JSON rendering (byte-identical to a local
// Snapshot().MarshalIndentJSON()).
func (c *Client) SnapshotJSON() ([]byte, error) {
	_, body, err := c.roundTrip([]byte{OpSnapshot})
	return body, err
}
