package devnet

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"time"

	"soteria/internal/device"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// PipeOptions configures a pipelined client.
type PipeOptions struct {
	Options

	// Window is how many sealed batches may be awaiting responses at
	// once. Default 8; clamped to the server's dedup window (16) so a
	// go-back-N retransmit can always be answered from cache.
	Window int
	// MaxBatch caps ops per batch frame; a full batch is sealed and sent
	// automatically. Default 64.
	MaxBatch int
}

// PipeHandler receives the outcome of one submitted op. data is non-nil
// only for a successful BatchRead and aliases the receive buffer: it is
// valid only for the duration of the call (copy it to keep it). lat is
// the simulated device latency. err, when non-nil, is the same typed
// error surface a stop-and-wait Client returns; an op that exhausted its
// retry budget arrives wrapped in *OpError.
type PipeHandler func(tag uint64, op uint8, data *nvm.Line, lat sim.Time, err error)

// pendOp tracks one submitted op: the caller's tag, the op code, how
// many times it has been sent in a batch that executed, and the byte
// span [off, off+n) of its encoded entry inside its batch's buffer so a
// retry can re-transcribe it without re-encoding.
type pendOp struct {
	tag      uint64
	op       uint8
	attempts int
	off, n   int
}

// pbatch is one batch frame: the sealed wire bytes (frame header
// included, one conn.Write) and the ops inside it, in entry order.
type pbatch struct {
	seq uint64
	buf []byte
	ops []pendOp
}

// retryQueue accumulates ops that failed retryably inside an executed
// batch. Entry bytes are copied out of the dying batch's buffer so the
// batch can be recycled immediately.
type retryQueue struct {
	ops []pendOp
	buf []byte
}

// Pipe is a pipelined batched client: ops are submitted asynchronously,
// packed into OpBatch frames, and up to Window frames ride the
// connection at once, so throughput is bounded by the wire and the
// device instead of by round-trips. Outcomes are delivered to the
// PipeHandler exactly once per submitted op, in batch order.
//
// Resilience mirrors the stop-and-wait Client but is window-aware:
//
//   - A transport failure, a sequence mismatch, or a batch-level
//     retryable status drops the connection and, after backoff, redials
//     and retransmits every unanswered batch in order (go-back-N). The
//     server's dedup window replays results for any batch that already
//     executed, so retransmits never re-apply writes. These count as
//     devnet_client_batch_retransmits_total, NOT as op retries.
//   - An op that failed retryably inside an executed batch (shard busy,
//     retired by a crash, down with RetryDown) was never applied; it is
//     re-enqueued into a later batch under a NEW sequence number after
//     the policy's backoff. Only these increment
//     devnet_client_retries_total.
//
// A Pipe is not safe for concurrent use; everything (including handler
// callbacks) runs on the calling goroutine. Responses in one batch are
// delivered before the next batch's, but ops in flight concurrently are
// unordered relative to each other on the server — callers that need
// read-your-write per key must not have two ops for the same key in
// flight at once.
type Pipe struct {
	addr string
	opts PipeOptions
	h    PipeHandler

	conn net.Conn
	seq  uint64
	rng  *mrand.Rand
	err  error // sticky fatal error; set once, delivered to all pending ops

	cur      *pbatch   // open batch accepting Submits (nil when empty)
	inflight []*pbatch // sealed, sent, awaiting responses; FIFO by seq
	free     []*pbatch // recycled batches
	rbuf     []byte    // pooled receive buffer

	// Double-buffered retry queues: deliver() appends to retry while
	// flushRetries drains the other, so a retry queued during a nested
	// receive never corrupts the drain in progress.
	retry      retryQueue
	retrySpare retryQueue
	retryWait  time.Duration // max backoff owed before the next retry flush

	opRetries   *telemetry.Counter
	retransmits *telemetry.Counter
	reconnects  *telemetry.Counter
	timeouts    *telemetry.Counter
	busyWaits   *telemetry.Counter
	gaveUp      *telemetry.Counter
	backoffNS   *telemetry.Histogram
}

var errPipeClosed = errors.New("devnet: pipe closed")

// DialPipe connects a pipelined client. The handler is required; the
// first connection is established eagerly.
func DialPipe(addr string, h PipeHandler, opts PipeOptions) (*Pipe, error) {
	if h == nil {
		return nil, errors.New("devnet: DialPipe requires a handler")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.OpTimeout <= 0 {
		opts.OpTimeout = 30 * time.Second
	}
	opts.Retry.fill()
	if opts.Session == 0 {
		opts.Session = randomSession()
	}
	if opts.Seed == 0 {
		opts.Seed = int64(opts.Session)
	}
	if opts.Window <= 0 {
		opts.Window = 8
	}
	if opts.Window > 16 {
		// The server's dedup window defaults to 16 responses per session;
		// more batches in flight than that and a go-back-N retransmit
		// could miss the cache and re-execute a committed batch.
		opts.Window = 16
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if opts.MaxBatch > maxBatchOps {
		opts.MaxBatch = maxBatchOps
	}
	p := &Pipe{addr: addr, opts: opts, h: h, rng: mrand.New(mrand.NewSource(opts.Seed))}
	reg := opts.Telemetry
	p.opRetries = reg.Counter("devnet_client_retries_total")
	p.retransmits = reg.Counter("devnet_client_batch_retransmits_total")
	p.reconnects = reg.Counter("devnet_client_reconnects_total")
	p.timeouts = reg.Counter("devnet_client_timeouts_total")
	p.busyWaits = reg.Counter("devnet_client_busy_waits_total")
	p.gaveUp = reg.Counter("devnet_client_gave_up_total")
	p.backoffNS = reg.Histogram("devnet_client_retry_backoff_ns", telemetry.ExpBounds(40))
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	p.conn = conn
	return p, nil
}

// Session returns the pipe's dedup session id.
func (p *Pipe) Session() uint64 { return p.opts.Session }

func (p *Pipe) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// Submit enqueues one op. op is a device.Batch* code; line is required
// for BatchWrite. The op's outcome arrives via the handler during a
// later Submit, Kick, Wait, or Flush call. A non-nil return means the
// pipe has failed fatally (the handler has already seen every pending
// op's error).
func (p *Pipe) Submit(tag uint64, op uint8, addr uint64, line *nvm.Line) error {
	if p.err != nil {
		return p.err
	}
	switch op {
	case device.BatchRead, device.BatchDrain:
	case device.BatchWrite:
		if line == nil {
			return errors.New("devnet: Submit: write without a line")
		}
	default:
		return fmt.Errorf("devnet: Submit: unknown batch op %d", op)
	}
	if len(p.retry.ops) > 0 {
		if err := p.flushRetries(); err != nil {
			return err
		}
	}
	b := p.ensureCur()
	off := len(b.buf)
	b.buf = appendBatchOp(b.buf, op, addr, line)
	b.ops = append(b.ops, pendOp{tag: tag, op: op, attempts: 1, off: off, n: len(b.buf) - off})
	if len(b.ops) >= p.opts.MaxBatch {
		return p.seal()
	}
	return nil
}

// Kick seals and sends the open batch (if any) without waiting for
// responses, after flushing any owed retries.
func (p *Pipe) Kick() error {
	if p.err != nil {
		return p.err
	}
	if err := p.flushRetries(); err != nil {
		return err
	}
	return p.seal()
}

// Wait makes progress: it seals pending work if nothing is in flight,
// then receives one batch's responses (delivering their outcomes). Use
// it to pace an open loop — e.g. spin Wait until a busy slot frees.
func (p *Pipe) Wait() error {
	if p.err != nil {
		return p.err
	}
	if len(p.inflight) == 0 {
		if err := p.flushRetries(); err != nil {
			return err
		}
		if err := p.seal(); err != nil {
			return err
		}
	}
	if len(p.inflight) > 0 {
		return p.recvOne()
	}
	return nil
}

// Flush drives everything submitted so far — current batch, in-flight
// batches, queued retries — to a delivered outcome.
func (p *Pipe) Flush() error {
	for {
		if p.err != nil {
			return p.err
		}
		if len(p.inflight) == 0 && (p.cur == nil || len(p.cur.ops) == 0) && len(p.retry.ops) == 0 {
			return nil
		}
		if err := p.Wait(); err != nil {
			return err
		}
	}
}

// Close tears the pipe down. Pending ops (if any) are failed to the
// handler; call Flush first for a clean shutdown.
func (p *Pipe) Close() error {
	if p.err == nil {
		if len(p.inflight) > 0 || (p.cur != nil && len(p.cur.ops) > 0) || len(p.retry.ops) > 0 {
			p.fail(errPipeClosed)
		} else {
			p.err = errPipeClosed
		}
	}
	p.dropConn()
	return nil
}

// ensureCur returns the open batch, recycling a free one if possible.
func (p *Pipe) ensureCur() *pbatch {
	if p.cur == nil {
		var b *pbatch
		if n := len(p.free); n > 0 {
			b, p.free = p.free[n-1], p.free[:n-1]
		} else {
			b = &pbatch{}
		}
		b.buf = newBatchFrame(b.buf, p.opts.Session)
		b.ops = b.ops[:0]
		p.cur = b
	}
	return p.cur
}

// seal closes the open batch, waits for window space, and sends it.
func (p *Pipe) seal() error {
	b := p.cur
	if b == nil || len(b.ops) == 0 {
		return nil
	}
	for len(p.inflight) >= p.opts.Window {
		if err := p.recvOne(); err != nil {
			return err
		}
	}
	p.cur = nil
	p.seq++
	b.seq = p.seq
	sealBatchFrame(b.buf, b.seq, len(b.ops))
	p.inflight = append(p.inflight, b)
	if err := p.send(b); err != nil {
		return p.recover(err)
	}
	return nil
}

// send writes one sealed batch under the op deadline.
func (p *Pipe) send(b *pbatch) error {
	if p.conn == nil {
		return errors.New("devnet: no connection")
	}
	p.conn.SetWriteDeadline(time.Now().Add(p.opts.OpTimeout))
	_, err := p.conn.Write(b.buf)
	p.conn.SetWriteDeadline(time.Time{})
	if err != nil {
		p.noteTimeout(err)
	}
	return err
}

// recvOne receives and delivers the oldest in-flight batch's responses,
// recovering the connection as needed. Returns only the pipe's fatal
// error; retryable trouble is handled internally.
func (p *Pipe) recvOne() error {
	for {
		if p.err != nil {
			return p.err
		}
		if len(p.inflight) == 0 {
			return nil
		}
		if p.conn == nil {
			if err := p.recover(errors.New("devnet: no connection")); err != nil {
				return err
			}
		}
		b := p.inflight[0]
		p.conn.SetReadDeadline(time.Now().Add(p.opts.OpTimeout))
		payload, err := readFrameInto(p.conn, &p.rbuf)
		if p.conn != nil {
			p.conn.SetReadDeadline(time.Time{})
		}
		if err != nil {
			p.noteTimeout(err)
			if err := p.recover(fmt.Errorf("devnet: receive: %w", err)); err != nil {
				return err
			}
			continue
		}
		resp, perr := parseResponse(payload)
		if perr == nil && resp.seq != b.seq {
			perr = &FrameError{Reason: fmt.Sprintf("response for sequence %d, want %d", resp.seq, b.seq)}
		}
		if perr != nil {
			if err := p.recover(perr); err != nil {
				return err
			}
			continue
		}
		if resp.status != StatusOK {
			derr := statusError(resp.status, resp.body)
			class := ClassOf(derr)
			retryable := class == ClassTransport || class == ClassBusy || class == ClassRetired ||
				(class == ClassDown && p.opts.Retry.RetryDown)
			if !retryable {
				// Batch-level fatal: nothing in the frame executed and
				// retrying cannot help.
				return p.fail(derr)
			}
			// Batch-level retryable (e.g. the server shed the whole batch):
			// nothing executed; recover retransmits it with the SAME seq.
			if class == ClassBusy {
				p.busyWaits.Inc()
			}
			if err := p.recover(derr); err != nil {
				return err
			}
			continue
		}
		// Validate the whole body before firing any handler, so a
		// malformed response never delivers a partial batch (recovery
		// would then replay it and double-deliver).
		if verr := validateBatchResponse(b, resp.body); verr != nil {
			if err := p.recover(verr); err != nil {
				return err
			}
			continue
		}
		p.deliver(b, resp.body)
		p.pop()
		return nil
	}
}

// validateBatchResponse checks a StatusOK batch body end to end:
// count matches the batch, every entry parses, read bodies are
// line-sized.
func validateBatchResponse(b *pbatch, body []byte) error {
	it, err := parseBatchResults(body)
	if err != nil {
		return err
	}
	if int(it.n) != len(b.ops) {
		return &FrameError{Reason: fmt.Sprintf("batch: response has %d results, want %d", it.n, len(b.ops))}
	}
	for i := range b.ops {
		st, _, obody, err := it.next()
		if err != nil {
			return err
		}
		if st == StatusOK && b.ops[i].op == device.BatchRead && len(obody) != nvm.LineSize {
			return &FrameError{Reason: fmt.Sprintf("batch: read result %d has %d bytes", i, len(obody))}
		}
	}
	if n := it.trailing(); n != 0 {
		return &FrameError{Reason: fmt.Sprintf("batch: %d trailing bytes after results", n)}
	}
	return nil
}

// deliver fires the handler for every op in a validated StatusOK batch,
// re-enqueueing per-op retryable failures. The body has already been
// validated, so iteration cannot fail.
func (p *Pipe) deliver(b *pbatch, body []byte) {
	it, _ := parseBatchResults(body)
	for i := range b.ops {
		st, lat, obody, _ := it.next()
		op := &b.ops[i]
		if st == StatusOK {
			var data *nvm.Line
			if op.op == device.BatchRead {
				data = (*nvm.Line)(obody)
			}
			p.h(op.tag, op.op, data, sim.Time(lat), nil)
			continue
		}
		derr := statusError(st, obody)
		class := ClassOf(derr)
		retryable := class == ClassBusy || class == ClassRetired ||
			(class == ClassDown && p.opts.Retry.RetryDown)
		if retryable && (p.opts.Retry.MaxAttempts < 0 || op.attempts < p.opts.Retry.MaxAttempts) {
			if class == ClassBusy {
				p.busyWaits.Inc()
			}
			p.opRetries.Inc()
			p.queueRetry(b, i, derr)
			continue
		}
		if retryable {
			p.gaveUp.Inc()
			derr = &OpError{Op: batchOpName(op.op), Attempts: op.attempts, Err: derr}
		}
		p.h(op.tag, op.op, nil, 0, derr)
	}
}

// queueRetry copies op i's entry bytes out of its batch and schedules
// it for re-submission under a new sequence number.
func (p *Pipe) queueRetry(b *pbatch, i int, cause error) {
	op := b.ops[i]
	if w := p.backoffFor(op.attempts, cause); w > p.retryWait {
		p.retryWait = w
	}
	off := len(p.retry.buf)
	p.retry.buf = append(p.retry.buf, b.buf[op.off:op.off+op.n]...)
	op.off = off
	op.attempts++
	p.retry.ops = append(p.retry.ops, op)
}

// backoffFor computes the policy backoff for an op's next attempt,
// stretched to a server retry-after hint when that is longer.
func (p *Pipe) backoffFor(attempts int, cause error) time.Duration {
	pol := p.opts.Retry
	w := pol.BaseBackoff
	for a := 1; a < attempts && w < pol.MaxBackoff; a++ {
		w *= 2
	}
	if w > pol.MaxBackoff {
		w = pol.MaxBackoff
	}
	var be *device.BusyError
	if errors.As(cause, &be) && be.RetryAfter > w {
		w = be.RetryAfter
		if w > pol.MaxBackoff {
			w = pol.MaxBackoff
		}
	}
	return w
}

// flushRetries sleeps the owed backoff once, then re-submits every
// queued retry into fresh batches under new sequence numbers.
func (p *Pipe) flushRetries() error {
	if len(p.retry.ops) == 0 {
		return nil
	}
	if wait := p.retryWait; wait > 0 {
		p.retryWait = 0
		wait += time.Duration(p.rng.Int63n(int64(wait/2) + 1))
		p.backoffNS.Observe(uint64(wait))
		p.logf("devnet: retrying %d batched ops in %v", len(p.retry.ops), wait)
		time.Sleep(wait)
	}
	// Swap queues so retries queued while we drain (recvOne inside
	// seal may deliver a batch) land in a clean queue.
	q := p.retry
	p.retry = p.retrySpare
	p.retry.ops = p.retry.ops[:0]
	p.retry.buf = p.retry.buf[:0]
	for i := range q.ops {
		op := q.ops[i]
		b := p.ensureCur()
		off := len(b.buf)
		b.buf = append(b.buf, q.buf[op.off:op.off+op.n]...)
		op.off = off
		b.ops = append(b.ops, op)
		if len(b.ops) >= p.opts.MaxBatch {
			if err := p.seal(); err != nil {
				// Fatal: ops already moved to cur were failed by fail();
				// fail the rest of the queue here so every op still gets
				// exactly one handler call.
				cause := p.err
				if cause == nil {
					cause = err
				}
				for _, rop := range q.ops[i+1:] {
					p.h(rop.tag, rop.op, nil, 0, cause)
				}
				p.retrySpare = retryQueue{ops: q.ops[:0], buf: q.buf[:0]}
				return err
			}
		}
	}
	p.retrySpare = retryQueue{ops: q.ops[:0], buf: q.buf[:0]}
	return nil
}

// recover handles a window-level failure: drop the connection first
// (so the old server handler stops executing against it promptly),
// back off, redial, and retransmit every unanswered batch in order.
// The dedup window answers any batch that already executed from cache.
func (p *Pipe) recover(cause error) error {
	if p.err != nil {
		return p.err
	}
	p.dropConn()
	pol := p.opts.Retry
	start := time.Now()
	backoff := pol.BaseBackoff
	var be *device.BusyError
	if errors.As(cause, &be) && be.RetryAfter > backoff {
		backoff = be.RetryAfter
		if backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
	for attempt := 1; ; attempt++ {
		if pol.MaxAttempts > 0 && attempt > pol.MaxAttempts {
			p.gaveUp.Inc()
			return p.fail(&OpError{Op: "pipeline", Attempts: attempt - 1, Elapsed: time.Since(start), Err: cause})
		}
		wait := backoff + time.Duration(p.rng.Int63n(int64(backoff/2)+1))
		if time.Since(start)+wait > pol.MaxElapsed {
			p.gaveUp.Inc()
			return p.fail(&OpError{Op: "pipeline", Attempts: attempt - 1, Elapsed: time.Since(start), Err: cause})
		}
		p.backoffNS.Observe(uint64(wait))
		p.logf("devnet: pipeline recovering (%s: %v), reconnecting in %v", ClassOf(cause), cause, wait)
		time.Sleep(wait)
		if backoff < pol.MaxBackoff {
			backoff *= 2
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
		conn, err := net.DialTimeout("tcp", p.addr, p.opts.DialTimeout)
		if err != nil {
			cause = err
			continue
		}
		p.conn = conn
		p.reconnects.Inc()
		ok := true
		for _, b := range p.inflight {
			if err := p.send(b); err != nil {
				cause = err
				p.dropConn()
				ok = false
				break
			}
			p.retransmits.Inc()
		}
		if ok {
			p.logf("devnet: pipeline reconnected, %d batches retransmitted", len(p.inflight))
			return nil
		}
	}
}

// fail marks the pipe fatally dead and delivers the error to every op
// still pending anywhere (in flight, open batch, retry queue), so the
// handler fires exactly once per submitted op even on the failure path.
func (p *Pipe) fail(cause error) error {
	if p.err != nil {
		return p.err
	}
	p.err = cause
	p.dropConn()
	for _, b := range p.inflight {
		for i := range b.ops {
			p.h(b.ops[i].tag, b.ops[i].op, nil, 0, cause)
		}
	}
	p.inflight = p.inflight[:0]
	if p.cur != nil {
		for i := range p.cur.ops {
			p.h(p.cur.ops[i].tag, p.cur.ops[i].op, nil, 0, cause)
		}
		p.cur = nil
	}
	for i := range p.retry.ops {
		p.h(p.retry.ops[i].tag, p.retry.ops[i].op, nil, 0, cause)
	}
	p.retry.ops = p.retry.ops[:0]
	p.retry.buf = p.retry.buf[:0]
	return cause
}

// pop retires the delivered head-of-line batch into the free list.
func (p *Pipe) pop() {
	b := p.inflight[0]
	copy(p.inflight, p.inflight[1:])
	p.inflight = p.inflight[:len(p.inflight)-1]
	p.free = append(p.free, b)
}

func (p *Pipe) dropConn() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

func (p *Pipe) noteTimeout(err error) {
	if ne, ok := errAsNet(err); ok && ne.Timeout() {
		p.timeouts.Inc()
	}
}

func batchOpName(op uint8) string {
	switch op {
	case device.BatchRead:
		return "read"
	case device.BatchWrite:
		return "write"
	case device.BatchDrain:
		return "drain"
	}
	return "batch-op"
}
