// Package devnet puts a sharded internal/device behind a TCP socket with
// a small length-prefixed binary protocol, so load generators and other
// processes can drive a live secure-NVM device service. The wire client
// satisfies device.Client, making in-process and over-the-wire use
// interchangeable.
//
// Framing: every message is [u32 big-endian payload length][payload].
// A request payload is [u8 op][op-specific body]; a response payload is
// [u8 status][u64 latency in simulated picoseconds][status/op-specific
// body]. All integers are big-endian. Request bodies:
//
//	OpPing     —
//	OpInfo     —                       response body: device.Info JSON
//	OpRead     [u64 addr]              response body: 64-byte line
//	OpWrite    [u64 addr][64B line]
//	OpDrain    [u64 addr]
//	OpFlush    —
//	OpCrash    —
//	OpRecover  —                       response body: device.RecoveryReport JSON
//	OpSnapshot —                       response body: telemetry snapshot JSON
//
// Error statuses carry typed bodies so the client can reconstruct the
// device's error surface exactly (see StatusBusy etc.).
package devnet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol ops.
const (
	OpPing uint8 = iota + 1
	OpInfo
	OpRead
	OpWrite
	OpDrain
	OpFlush
	OpCrash
	OpRecover
	OpSnapshot
)

// Response statuses.
const (
	// StatusOK: body is op-specific.
	StatusOK uint8 = iota
	// StatusBusy: body is [u32 shard][u32 pending][u64 retry-after ns].
	StatusBusy
	// StatusCrashed: the device is down; Recover it. Empty body.
	StatusCrashed
	// StatusClosed: the device is shut down. Empty body.
	StatusClosed
	// StatusPowerLoss: body is [u32 shard][u64 boundary].
	StatusPowerLoss
	// StatusRetired: the request was queued when power was cut. Empty body.
	StatusRetired
	// StatusError: body is a UTF-8 error string.
	StatusError
)

// maxFrame bounds a frame payload; snapshots of big registries are the
// largest legitimate message, and 16 MiB is far beyond any of them.
const maxFrame = 16 << 20

// writeFrame sends one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("devnet: frame of %d bytes exceeds the %d-byte cap", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func putU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func putU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}
