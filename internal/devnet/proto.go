// Package devnet puts a sharded internal/device behind a TCP socket with
// a small length-prefixed binary protocol, so load generators and other
// processes can drive a live secure-NVM device service. The wire client
// satisfies device.Client, making in-process and over-the-wire use
// interchangeable, and is self-healing: per-operation deadlines,
// automatic reconnect with capped exponential backoff, and idempotent
// retries keyed by a (session, sequence) pair the server deduplicates.
//
// Framing: every message is [u32 big-endian payload length][u32 CRC-32C
// of the payload][payload]. The checksum makes corruption on the wire a
// typed *FrameError instead of silent protocol desync — a corrupted
// frame poisons only its connection, and the client retries over a
// fresh one.
//
// A request payload is [u8 op][u64 session][u64 seq][op-specific body].
// A non-zero session enrolls the request in the server's dedup window:
// a retransmitted (session, seq) whose original already executed and
// succeeded is answered from the cached response without re-executing,
// which is what makes blind client retries of writes safe. Session 0
// opts out (stateless tooling).
//
// A response payload is [u8 status][u64 seq echo][u64 latency in
// simulated picoseconds][status/op-specific body]. The echoed sequence
// lets the client reject a response that does not answer the request it
// has in flight. All integers are big-endian. Request bodies:
//
//	OpPing     —
//	OpInfo     —                       response body: device.Info JSON
//	OpRead     [u64 addr]              response body: 64-byte line
//	OpWrite    [u64 addr][64B line]
//	OpDrain    [u64 addr]
//	OpFlush    —
//	OpCrash    —
//	OpRecover  —                       response body: device.RecoveryReport JSON
//	OpSnapshot —                       response body: telemetry snapshot JSON
//	OpHealth   —                       response body: Health JSON
//
// Error statuses carry typed bodies so the client can reconstruct the
// device's error surface exactly (see StatusBusy etc.).
package devnet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Protocol ops.
const (
	OpPing uint8 = iota + 1
	OpInfo
	OpRead
	OpWrite
	OpDrain
	OpFlush
	OpCrash
	OpRecover
	OpSnapshot
	OpHealth

	// Tenant plane (see tenantframe.go for the body codec). A session must
	// OpTenantAttach with a valid token before its data ops; the binding
	// is per-connection, so attach bypasses the dedup window and the
	// client replays it after every reconnect.
	//
	//	OpTenantAttach  [u32 tenant][u64 token]
	//	OpTenantRead    [u32 tenant][u64 addr]           response: 64-byte line
	//	OpTenantWrite   [u32 tenant][u64 addr][64B line]
	//	OpTenantCreate  [u32 tenant][u64 lines][u32 quota]  response: [u64 token]
	//	OpTenantRotate  [u32 tenant]
	//	OpTenantStep    [u32 tenant][u32 max]            response: [u8 done][u32 rotated][u64 cursor]
	//	OpTenantInfo    [u32 tenant]                     response: TenantInfo JSON
	//	OpTenantList    —                                response: []tenant.Record JSON
	//	OpTenantMetrics [u32 tenant]                     response: telemetry snapshot JSON
	OpTenantAttach
	OpTenantRead
	OpTenantWrite
	OpTenantCreate
	OpTenantRotate
	OpTenantStep
	OpTenantInfo
	OpTenantList
	OpTenantMetrics

	// OpBatch is the v3 batched data plane: one frame carries up to
	// maxBatchOps read/write/drain operations, executed by the server as
	// one device batch (see batch.go for the body codec and DESIGN.md
	// "Wire-speed front-end" for the pipelining and dedup rules). The
	// whole batch is one (session, seq) dedup unit.
	OpBatch
)

// Response statuses.
const (
	// StatusOK: body is op-specific.
	StatusOK uint8 = iota
	// StatusBusy: body is [i32 shard][u32 pending][u64 retry-after ns].
	// Shard -1 means the server itself shed the request (max-in-flight
	// cap), not a device shard queue.
	StatusBusy
	// StatusCrashed: the device is down; Recover it. Empty body.
	StatusCrashed
	// StatusClosed: the device is shut down. Empty body.
	StatusClosed
	// StatusPowerLoss: body is [i32 shard][u64 boundary].
	StatusPowerLoss
	// StatusRetired: the request was queued when power was cut. Empty body.
	StatusRetired
	// StatusError: body is a UTF-8 error string.
	StatusError
	// StatusQuota: the tenant's hard per-window operation budget is
	// exhausted. Body is [u32 tenant][u32 used][u32 budget]. NOT
	// retryable — distinct from StatusBusy by design (see ClassQuota).
	StatusQuota
	// StatusTenantDenied: the session is not (or cannot be) bound to the
	// tenant it addressed. Body is [u32 tenant].
	StatusTenantDenied
	// StatusTenantIntegrity: the line failed tenant-layer MAC
	// verification. Body is [u32 tenant][u64 line].
	StatusTenantIntegrity
)

// maxFrame bounds a frame payload; snapshots of big registries are the
// largest legitimate message, and 16 MiB is far beyond any of them.
const maxFrame = 16 << 20

// frameChunk bounds how much readFrame allocates ahead of bytes actually
// received, so a lying length header cannot make the receiver allocate
// maxFrame from a 8-byte prefix.
const frameChunk = 64 << 10

// Header sizes: frame = [u32 len][u32 crc]; request payload starts
// [u8 op][u64 session][u64 seq]; response payload starts
// [u8 status][u64 seq][u64 latency].
const (
	frameHeaderSize = 8
	reqHeaderSize   = 17
	respHeaderSize  = 17
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeFrame sends one checksummed length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one frame: header, then payload, then CRC check.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return readFramePayload(r, hdr)
}

// readFramePayload reads and verifies a frame body whose header has
// already been consumed. The payload buffer grows in bounded chunks as
// bytes actually arrive, so a header claiming maxFrame cannot make the
// receiver allocate maxFrame before the stream has to deliver.
func readFramePayload(r io.Reader, hdr [frameHeaderSize]byte) ([]byte, error) {
	var scratch []byte
	return readFramePayloadInto(r, hdr, &scratch)
}

// readFramePayloadInto is readFramePayload reusing *scratch's capacity
// across calls, so a steady-state receive loop allocates nothing once
// the buffer has grown to its working-set size. The returned payload
// aliases *scratch and is valid until the next call.
func readFramePayloadInto(r io.Reader, hdr [frameHeaderSize]byte, scratch *[]byte) ([]byte, error) {
	n := binary.BigEndian.Uint32(hdr[:4])
	want := binary.BigEndian.Uint32(hdr[4:])
	if n > maxFrame {
		return nil, &FrameError{Reason: fmt.Sprintf("frame of %d bytes exceeds the %d-byte cap", n, maxFrame)}
	}
	payload := (*scratch)[:0]
	for len(payload) < int(n) {
		chunk := min(int(n)-len(payload), frameChunk)
		off := len(payload)
		if cap(payload) >= off+chunk {
			payload = payload[:off+chunk]
		} else {
			payload = append(payload, make([]byte, chunk)...)
		}
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			*scratch = payload[:0]
			return nil, err
		}
	}
	*scratch = payload
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, &FrameError{Reason: fmt.Sprintf("payload checksum %08x does not match header %08x", got, want)}
	}
	return payload, nil
}

// readFrameInto receives one frame into *scratch (header, payload, CRC
// check), the zero-steady-state-alloc sibling of readFrame.
func readFrameInto(r io.Reader, scratch *[]byte) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return readFramePayloadInto(r, hdr, scratch)
}

// wireRequest is one parsed request payload.
type wireRequest struct {
	op      uint8
	session uint64
	seq     uint64
	body    []byte
}

// encodeRequest builds a request payload with room for body bytes.
func encodeRequest(op uint8, session, seq uint64, bodyCap int) []byte {
	out := make([]byte, 0, reqHeaderSize+bodyCap)
	out = append(out, op)
	out = putU64(out, session)
	return putU64(out, seq)
}

// parseRequest splits a request payload into its header and body.
func parseRequest(payload []byte) (wireRequest, error) {
	if len(payload) < reqHeaderSize {
		return wireRequest{}, &FrameError{Reason: fmt.Sprintf("short request (%d bytes, want >= %d)", len(payload), reqHeaderSize)}
	}
	return wireRequest{
		op:      payload[0],
		session: binary.BigEndian.Uint64(payload[1:9]),
		seq:     binary.BigEndian.Uint64(payload[9:17]),
		body:    payload[17:],
	}, nil
}

// wireResponse is one parsed response payload.
type wireResponse struct {
	status uint8
	seq    uint64
	latPS  uint64
	body   []byte
}

// parseResponse splits a response payload into its header and body.
func parseResponse(payload []byte) (wireResponse, error) {
	if len(payload) < respHeaderSize {
		return wireResponse{}, &FrameError{Reason: fmt.Sprintf("short response (%d bytes, want >= %d)", len(payload), respHeaderSize)}
	}
	return wireResponse{
		status: payload[0],
		seq:    binary.BigEndian.Uint64(payload[1:9]),
		latPS:  binary.BigEndian.Uint64(payload[9:17]),
		body:   payload[17:],
	}, nil
}

func putU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func putU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func beU32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

func beU64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

func bePutU32(b []byte, v uint32) { binary.BigEndian.PutUint32(b, v) }

func bePutU64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

func crcChecksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }
