//go:build race

package devnet

// raceEnabled skips allocation-count assertions under the race
// detector, whose runtime instrumentation allocates.
const raceEnabled = true
