package devnet_test

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

func TestPipeRoundTrip(t *testing.T) {
	_, addr := startServer(t, nil)

	data := make(map[uint64]nvm.Line)
	errs := make(map[uint64]error)
	oks := 0
	p, err := devnet.DialPipe(addr, func(tag uint64, op uint8, line *nvm.Line, lat sim.Time, err error) {
		if err != nil {
			errs[tag] = err
			return
		}
		oks++
		if line != nil {
			data[tag] = *line
		}
	}, devnet.PipeOptions{Window: 4, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 100
	for i := uint64(0); i < n; i++ {
		line := testLine(i*64, 3)
		if err := p.Submit(i, device.BatchWrite, i*64, &line); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if err := p.Submit(1000+i, device.BatchRead, i*64, nil); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := p.Submit(2000+i, device.BatchDrain, i*64, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(errs) != 0 {
		t.Fatalf("unexpected op errors: %v", errs)
	}
	for i := uint64(0); i < n; i++ {
		if data[1000+i] != testLine(i*64, 3) {
			t.Fatalf("read %d returned wrong data", i)
		}
	}
}

func TestPipePerOpErrorDoesNotPoisonPipe(t *testing.T) {
	_, addr := startServer(t, nil)

	outcomes := make(map[uint64]error)
	p, err := devnet.DialPipe(addr, func(tag uint64, op uint8, line *nvm.Line, lat sim.Time, err error) {
		outcomes[tag] = err
	}, devnet.PipeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// An out-of-range address fails its own op fatally; its batch mates
	// and later ops must be unaffected.
	line := testLine(0, 1)
	if err := p.Submit(1, device.BatchWrite, 0, &line); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(2, device.BatchRead, 1<<60, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(3, device.BatchRead, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if outcomes[1] != nil || outcomes[3] != nil {
		t.Fatalf("healthy ops failed: %v / %v", outcomes[1], outcomes[3])
	}
	if outcomes[2] == nil {
		t.Fatal("out-of-range read did not fail")
	}
	// The pipe is still usable.
	if err := p.Submit(4, device.BatchRead, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if outcomes[4] != nil {
		t.Fatalf("op after per-op error failed: %v", outcomes[4])
	}
}

// TestPipeSteadyStateAllocs pins the pipelined client's zero-copy
// contract: once warm, a batched op costs well under one allocation on
// the client.
func TestPipeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	_, addr := startServer(t, nil)

	var sink nvm.Line
	p, err := devnet.DialPipe(addr, func(tag uint64, op uint8, line *nvm.Line, lat sim.Time, err error) {
		if err != nil {
			t.Errorf("op %d: %v", tag, err)
		}
		if line != nil {
			sink = *line
		}
	}, devnet.PipeOptions{Window: 4, MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 64
	lines := make([]nvm.Line, n)
	for i := range lines {
		lines[i] = testLine(uint64(i)*64, 7)
	}
	round := func() {
		for i := uint64(0); i < n; i++ {
			var err error
			if i%4 == 3 {
				err = p.Submit(i, device.BatchRead, i*64, nil)
			} else {
				err = p.Submit(i, device.BatchWrite, i*64, &lines[i])
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		round() // warm buffers, free lists, server scratch
	}
	allocs := testing.AllocsPerRun(20, round)
	if perOp := allocs / n; perOp >= 0.5 {
		t.Fatalf("pipelined op costs %.3f allocs (%.1f per round), want < 0.5", perOp, allocs)
	}
	_ = sink
}

// killingProxy relays TCP between the client and a devnet server, but
// closes connection i after relaying schedule[i] response frames —
// a deterministic connection-loss schedule for retransmit tests.
type killingProxy struct {
	ln       net.Listener
	backend  string
	schedule []int

	mu    sync.Mutex
	conns int
}

func startKillingProxy(t *testing.T, backend string, schedule []int) *killingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kp := &killingProxy{ln: ln, backend: backend, schedule: schedule}
	go kp.run()
	t.Cleanup(func() { ln.Close() })
	return kp
}

func (kp *killingProxy) addr() string { return kp.ln.Addr().String() }

func (kp *killingProxy) connCount() int {
	kp.mu.Lock()
	defer kp.mu.Unlock()
	return kp.conns
}

func (kp *killingProxy) run() {
	for {
		client, err := kp.ln.Accept()
		if err != nil {
			return
		}
		kp.mu.Lock()
		idx := kp.conns
		kp.conns++
		kp.mu.Unlock()
		budget := -1 // unlimited
		if idx < len(kp.schedule) {
			budget = kp.schedule[idx]
		}
		server, err := net.Dial("tcp", kp.backend)
		if err != nil {
			client.Close()
			continue
		}
		go func() { io.Copy(server, client); server.Close() }()
		kp.relayResponses(client, server, budget)
		client.Close()
		server.Close()
	}
}

// relayResponses forwards whole response frames server→client, cutting
// the connection after budget frames (budget < 0: forward forever).
func (kp *killingProxy) relayResponses(client, server net.Conn, budget int) {
	var hdr [8]byte
	buf := make([]byte, 64<<10)
	for n := 0; budget < 0 || n < budget; n++ {
		if _, err := io.ReadFull(server, hdr[:]); err != nil {
			return
		}
		size := int(binary.BigEndian.Uint32(hdr[:4]))
		if size > len(buf) {
			buf = make([]byte, size)
		}
		if _, err := io.ReadFull(server, buf[:size]); err != nil {
			return
		}
		if _, err := client.Write(hdr[:]); err != nil {
			return
		}
		if _, err := client.Write(buf[:size]); err != nil {
			return
		}
	}
}

// TestPipeRetransmitOnConnectionLoss drives the pipelined client
// through a deterministic schedule of connection kills and checks the
// window-aware resilience contract: every op is delivered exactly once
// and applied exactly once, recovery shows up as reconnects and
// go-back-N batch retransmits, and NOT as per-op retries (nothing
// failed inside an executed batch).
func TestPipeRetransmitOnConnectionLoss(t *testing.T) {
	dev, backend := startServer(t, nil)
	kp := startKillingProxy(t, backend, []int{2, 1, 3})

	reg := telemetry.NewRegistry()
	delivered := make(map[uint64]int)
	var opErrs []error
	p, err := devnet.DialPipe(kp.addr(), func(tag uint64, op uint8, line *nvm.Line, lat sim.Time, err error) {
		delivered[tag]++
		if err != nil {
			opErrs = append(opErrs, err)
		}
	}, devnet.PipeOptions{
		Options: devnet.Options{
			Telemetry: reg,
			Retry: devnet.RetryPolicy{
				MaxAttempts: -1,
				MaxElapsed:  30 * time.Second,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  10 * time.Millisecond,
			},
		},
		Window:   4,
		MaxBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 160
	for i := uint64(0); i < n; i++ {
		line := testLine(i*64, 5)
		if err := p.Submit(i, device.BatchWrite, i*64, &line); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	if len(opErrs) != 0 {
		t.Fatalf("op errors through kill schedule: %v", opErrs)
	}
	for i := uint64(0); i < n; i++ {
		if delivered[i] != 1 {
			t.Fatalf("op %d delivered %d times, want exactly once", i, delivered[i])
		}
	}
	// Every write applied exactly once despite the retransmits: the
	// device's content must match, via a fresh stop-and-wait client
	// straight to the backend.
	c, err := devnet.Dial(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(0); i < n; i++ {
		line, _, err := c.Read(i * 64)
		if err != nil {
			t.Fatal(err)
		}
		if line != testLine(i*64, 5) {
			t.Fatalf("line %d corrupted by retransmit", i)
		}
	}
	_ = dev

	if kp.connCount() < 4 {
		t.Fatalf("kill schedule only produced %d connections", kp.connCount())
	}
	counters := map[string]uint64{
		"devnet_client_reconnects_total":        reg.Counter("devnet_client_reconnects_total").Value(),
		"devnet_client_batch_retransmits_total": reg.Counter("devnet_client_batch_retransmits_total").Value(),
		"devnet_client_retries_total":           reg.Counter("devnet_client_retries_total").Value(),
		"devnet_client_gave_up_total":           reg.Counter("devnet_client_gave_up_total").Value(),
	}
	if counters["devnet_client_reconnects_total"] < 3 {
		t.Fatalf("reconnects = %d, want >= 3 (schedule kills 3 connections): %v", counters["devnet_client_reconnects_total"], counters)
	}
	if counters["devnet_client_batch_retransmits_total"] == 0 {
		t.Fatalf("no batch retransmits recorded: %v", counters)
	}
	if counters["devnet_client_retries_total"] != 0 {
		t.Fatalf("go-back-N recovery leaked into per-op retries: %v", counters)
	}
	if counters["devnet_client_gave_up_total"] != 0 {
		t.Fatalf("gave up under an unlimited-attempt policy: %v", counters)
	}
}
