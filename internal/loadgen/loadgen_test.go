package loadgen_test

import (
	"bytes"
	"flag"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/loadgen"
	"soteria/internal/memctrl"
)

var update = flag.Bool("update", false, "rewrite golden files")

// compile-time: the wire client is a loadgen connection.
var _ loadgen.Conn = (*devnet.Client)(nil)

func newDevice(t *testing.T, shards int) *device.Device {
	t.Helper()
	dev, err := device.New(device.Options{
		System:    config.TestSystem(),
		Mode:      memctrl.ModeSRC,
		Key:       []byte("loadgen-test-key"),
		Shards:    shards,
		Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	return dev
}

func serve(t *testing.T, dev *device.Device) string {
	t.Helper()
	srv := devnet.NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	t.Cleanup(func() { srv.Shutdown(); <-done })
	return ln.Addr().String()
}

// TestSnapshotByteIdenticalAcrossWorkers is the acceptance golden test: a
// fixed seed and op count produce a byte-identical merged telemetry
// snapshot over the wire at every worker count, and that snapshot matches
// the checked-in golden file (refresh with go test ./internal/loadgen
// -run Golden -update).
func TestSnapshotByteIdenticalAcrossWorkers(t *testing.T) {
	const shards = 4
	var first []byte
	var firstRep *loadgen.Report
	for _, workers := range []int{1, 2, 4} {
		dev := newDevice(t, shards)
		addr := serve(t, dev)
		rep, snap, err := loadgen.Run(loadgen.Params{
			Dial:     func() (loadgen.Conn, error) { return devnet.Dial(addr) },
			Workers:  workers,
			Ops:      600,
			Seed:     42,
			Workload: "hashmap",
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Read.Count == 0 || rep.Write.Count == 0 {
			t.Fatalf("workers=%d: degenerate run: %+v", workers, rep)
		}
		if first == nil {
			first, firstRep = snap, rep
			continue
		}
		if !bytes.Equal(snap, first) {
			t.Errorf("workers=%d: telemetry snapshot differs from workers=1", workers)
		}
		rep.Workers = firstRep.Workers // the one field allowed to differ
		if !reflect.DeepEqual(rep, firstRep) {
			t.Errorf("workers=%d: report differs from workers=1:\n%+v\n%+v", workers, rep, firstRep)
		}
	}

	golden := filepath.Join("testdata", "golden_snapshot.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("snapshot deviates from %s (run with -update after intended changes)", golden)
	}
}

// TestLocalConnMatchesWire cross-checks the two transports: the same run
// through an in-process connection and through TCP must observe the same
// snapshot bytes.
func TestLocalConnMatchesWire(t *testing.T) {
	run := func(dial func() (loadgen.Conn, error)) []byte {
		_, snap, err := loadgen.Run(loadgen.Params{
			Dial:     dial,
			Workers:  2,
			Ops:      300,
			Seed:     7,
			Workload: "btree",
		})
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	devLocal := newDevice(t, 2)
	local := run(func() (loadgen.Conn, error) { return loadgen.NewLocalConn(devLocal), nil })

	devWire := newDevice(t, 2)
	addr := serve(t, devWire)
	wire := run(func() (loadgen.Conn, error) { return devnet.Dial(addr) })

	if !bytes.Equal(local, wire) {
		t.Fatal("in-process and wire runs observed different snapshots")
	}
}

func TestReportMarkdownIsMachineParsable(t *testing.T) {
	dev := newDevice(t, 2)
	rep, _, err := loadgen.Run(loadgen.Params{
		Dial:     func() (loadgen.Conn, error) { return loadgen.NewLocalConn(dev), nil },
		Ops:      200,
		Seed:     3,
		Workload: "hashmap",
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "|") {
			t.Fatalf("non-table stdout line: %q", line)
		}
	}
}
