package loadgen

import (
	"fmt"
	"sync"

	"soteria/internal/device"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/trace"
)

// PipeHandler mirrors devnet.PipeHandler so the generator can take a
// pipelined dialer without importing the transport package.
type PipeHandler func(tag uint64, op uint8, data *nvm.Line, lat sim.Time, err error)

// PipeConn is the pipelined slice of the devnet surface the generator
// needs; devnet.Pipe implements it directly.
type PipeConn interface {
	// Submit enqueues one op tagged for the completion handler. It may
	// block on window back-pressure, running the handler inline for
	// completions it reaps while waiting.
	Submit(tag uint64, op uint8, addr uint64, line *nvm.Line) error
	// Flush drives the pipe until every submitted op has completed.
	Flush() error
	Close() error
}

// runPipelined is Run's open-loop branch: Conns connection goroutines,
// each owning the shard streams congruent to its index, submit in
// round-robin stream order through a windowed pipelined client.
//
// Determinism: shard ownership guarantees all of a shard's ops arrive on
// one connection in stream order, and batch composition is a pure
// function of the submission sequence (batches seal at MaxBatch ops, not
// on timers), so the per-shard simulated latencies — and therefore the
// report and the server snapshot — do not depend on scheduling. Only
// wall-clock throughput does.
func runPipelined(p *Params, streams []*shardStream, shards int) error {
	conns := p.Conns
	var wg sync.WaitGroup
	errs := make([]error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var opErr error // first fatal per-op error, set by the handler
			pc, err := p.DialPipe(func(tag uint64, op uint8, _ *nvm.Line, lat sim.Time, err error) {
				s := streams[tag]
				if err != nil {
					if opErr == nil {
						opErr = fmt.Errorf("loadgen: shard %d %s: %w", s.shard, batchOpName(op), err)
					}
					return
				}
				switch op {
				case device.BatchRead:
					s.reads.observe(lat)
					s.simBusy += uint64(lat)
				case device.BatchWrite:
					s.writes.observe(lat)
					s.simBusy += uint64(lat)
				default:
					s.barriers++
				}
			})
			if err != nil {
				errs[c] = fmt.Errorf("loadgen: conn %d dial: %w", c, err)
				return
			}
			defer pc.Close()
			owned := make([]*shardStream, 0, shards/conns+1)
			for i := c; i < shards; i += conns {
				owned = append(owned, streams[i])
			}
			for opErr == nil {
				live := 0
				for _, s := range owned {
					if s.remaining <= 0 {
						continue
					}
					live++
					if err := s.pipeStep(pc); err != nil {
						errs[c] = err
						return
					}
				}
				if live == 0 {
					break
				}
			}
			if err := pc.Flush(); err != nil && opErr == nil {
				opErr = err
			}
			errs[c] = opErr
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// pipeStep submits the stream's next operation, tagged with the shard
// index so the completion handler can route the latency back here.
func (s *shardStream) pipeStep(pc PipeConn) error {
	var rec trace.Record
	if !s.gen.Next(&rec) {
		s.remaining = 0
		return nil
	}
	tag := uint64(s.shard)
	var err error
	switch rec.Op {
	case trace.OpRead:
		err = pc.Submit(tag, device.BatchRead, s.globalAddr(rec.Addr), nil)
	case trace.OpWrite, trace.OpWritePersist:
		line := s.lineContent(s.writeIdx)
		s.writeIdx++
		err = pc.Submit(tag, device.BatchWrite, s.globalAddr(rec.Addr), &line)
	case trace.OpBarrier:
		err = pc.Submit(tag, device.BatchDrain, uint64(s.shard)*nvm.LineSize, nil)
	}
	if err != nil {
		return fmt.Errorf("loadgen: shard %d submit: %w", s.shard, err)
	}
	s.remaining--
	return nil
}

func batchOpName(op uint8) string {
	switch op {
	case device.BatchRead:
		return "read"
	case device.BatchWrite:
		return "write"
	case device.BatchDrain:
		return "drain"
	}
	return "batch-op"
}
