package loadgen

import (
	"soteria/internal/device"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// LocalConn adapts an in-process *device.Device to Conn, so the load
// generator (and its tests) can drive a device without a socket. Close is
// a no-op: the caller owns the device.
type LocalConn struct {
	dev *device.Device
}

// NewLocalConn wraps a device.
func NewLocalConn(dev *device.Device) *LocalConn { return &LocalConn{dev: dev} }

// Info implements Conn.
func (c *LocalConn) Info() (device.Info, error) { return c.dev.Info(), nil }

// Read implements Conn.
func (c *LocalConn) Read(addr uint64) (nvm.Line, sim.Time, error) { return c.dev.Read(addr) }

// Write implements Conn.
func (c *LocalConn) Write(addr uint64, data *nvm.Line) (sim.Time, error) {
	return c.dev.Write(addr, data)
}

// Drain implements Conn.
func (c *LocalConn) Drain(addr uint64) error { return c.dev.Drain(addr) }

// SnapshotJSON implements Conn.
func (c *LocalConn) SnapshotJSON() ([]byte, error) {
	return c.dev.Snapshot().MarshalIndentJSON()
}

// Close implements Conn; the device stays up.
func (c *LocalConn) Close() error { return nil }
