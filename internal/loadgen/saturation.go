package loadgen

import (
	"fmt"
	"io"
	"time"

	"soteria/internal/stats"
)

// SaturationCell is one grid point of the front-end saturation sweep.
// Pipeline 0 means the stop-and-wait front end with Conns workers;
// otherwise Conns pipelined connections with the given window and batch.
type SaturationCell struct {
	Conns    int
	Pipeline int
	Batch    int
}

func (c SaturationCell) mode() string {
	if c.Pipeline > 0 {
		return "pipelined"
	}
	return "stop-and-wait"
}

// SaturationPoint couples a cell with its run outcome. WallOpsPerSec is
// the only machine-dependent figure; WriteSaturationMarkdown excludes it
// so the committed curve stays deterministic.
type SaturationPoint struct {
	Cell          SaturationCell
	Report        *Report
	WallOpsPerSec float64
}

// DefaultSaturationGrid climbs from a single stop-and-wait worker to the
// fully scaled-out pipelined front end.
func DefaultSaturationGrid() []SaturationCell {
	return []SaturationCell{
		{Conns: 1},
		{Conns: 2},
		{Conns: 4},
		{Conns: 1, Pipeline: 4, Batch: 32},
		{Conns: 2, Pipeline: 4, Batch: 32},
		{Conns: 4, Pipeline: 4, Batch: 32},
		{Conns: 4, Pipeline: 8, Batch: 64},
	}
}

// SaturationParams configures a sweep.
type SaturationParams struct {
	// Cells is the grid to sweep; empty means DefaultSaturationGrid.
	Cells []SaturationCell
	// Ops, Seed, Workload are shared by every cell (each on a fresh
	// server, so points are independent and individually deterministic).
	Ops      int
	Seed     int64
	Workload string
	// Start brings up a fresh device and server for one cell and returns
	// its dial hooks plus a teardown. The pipelined dialer must honor the
	// cell's Pipeline/Batch as the pipe's window and batch sizes.
	Start func(cell SaturationCell) (dial func() (Conn, error), dialPipe func(h PipeHandler) (PipeConn, error), stop func(), err error)
	// Logf, when non-nil, receives per-cell progress (stderr material).
	Logf func(format string, args ...any)
}

// RunSaturation sweeps the grid, one fresh server per cell.
func RunSaturation(p SaturationParams) ([]SaturationPoint, error) {
	cells := p.Cells
	if len(cells) == 0 {
		cells = DefaultSaturationGrid()
	}
	if p.Ops <= 0 {
		p.Ops = 4000
	}
	if p.Workload == "" {
		p.Workload = "hashmap"
	}
	logf := p.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	points := make([]SaturationPoint, 0, len(cells))
	for _, cell := range cells {
		dial, dialPipe, stop, err := p.Start(cell)
		if err != nil {
			return nil, fmt.Errorf("loadgen: saturation cell %+v: start: %w", cell, err)
		}
		params := Params{Dial: dial, Ops: p.Ops, Seed: p.Seed, Workload: p.Workload}
		if cell.Pipeline > 0 {
			params.DialPipe = dialPipe
			params.Conns = cell.Conns
			params.Pipeline = cell.Pipeline
			params.Batch = cell.Batch
		} else {
			params.Workers = cell.Conns
		}
		start := time.Now()
		rep, _, err := Run(params)
		wall := time.Since(start)
		stop()
		if err != nil {
			return nil, fmt.Errorf("loadgen: saturation cell %+v: %w", cell, err)
		}
		pt := SaturationPoint{Cell: cell, Report: rep}
		if acked := rep.Read.Count + rep.Write.Count + rep.Barriers; wall > 0 {
			pt.WallOpsPerSec = float64(acked) / wall.Seconds()
		}
		logf("loadgen: saturation %s conns=%d window=%d batch=%d: %.0f ops/s wall",
			cell.mode(), cell.Conns, cell.Pipeline, cell.Batch, pt.WallOpsPerSec)
		points = append(points, pt)
	}
	return points, nil
}

// WriteSaturationMarkdown renders the sweep as a deterministic table:
// every column derives from the simulated clocks and the fixed request
// streams, so the file is stable across machines and can be committed.
// Wall-clock rates stay in SaturationPoint (and the Logf stream).
func WriteSaturationMarkdown(w io.Writer, points []SaturationPoint) error {
	if _, err := fmt.Fprintf(w, "# Front-end saturation curve\n\n"+
		"Deterministic sweep: each row is a fresh server driven with the same\n"+
		"seeded per-shard request streams; all figures derive from the device's\n"+
		"simulated clocks. Wall-clock throughput is machine-dependent and is\n"+
		"reported on stderr by `loadgen -saturation`, not here.\n\n"); err != nil {
		return err
	}
	if len(points) == 0 {
		return nil
	}
	r0 := points[0].Report
	if _, err := fmt.Fprintf(w, "Workload `%s`, %d ops, %d shards per cell.\n\n",
		r0.Workload, r0.Ops, r0.Shards); err != nil {
		return err
	}
	t := stats.NewTable("saturation",
		"mode", "conns", "window", "batch", "acked ops",
		"read p50 (ns)", "read p99 (ns)", "write p50 (ns)", "write p99 (ns)",
		"sim makespan (ns)", "ops per sim-ms")
	for _, pt := range points {
		r := pt.Report
		acked := r.Read.Count + r.Write.Count + r.Barriers
		perSimMs := 0.0
		if r.SimNanos > 0 {
			perSimMs = float64(r.Read.Count+r.Write.Count) / (r.SimNanos / 1e6)
		}
		t.AddRow(pt.Cell.mode(), pt.Cell.Conns, pt.Cell.Pipeline, pt.Cell.Batch, acked,
			stats.FormatFloat(r.Read.P50), stats.FormatFloat(r.Read.P99),
			stats.FormatFloat(r.Write.P50), stats.FormatFloat(r.Write.P99),
			stats.FormatFloat(r.SimNanos), stats.FormatFloat(perSimMs))
	}
	return t.WriteMarkdown(w)
}
