package loadgen_test

import (
	"bytes"
	"net"
	"testing"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/loadgen"
	"soteria/internal/memctrl"
	"soteria/internal/tenant"
)

// compile-time: the wire client speaks both tenant planes.
var (
	_ loadgen.TenantConn  = (*devnet.Client)(nil)
	_ loadgen.TenantAdmin = (*devnet.Client)(nil)
	_ loadgen.TenantConn  = (*loadgen.LocalTenantConn)(nil)
	_ loadgen.TenantAdmin = (*loadgen.LocalTenantConn)(nil)
)

// newTenantService provisions n equal tenants on a fresh engine-hosted
// device and returns the service plus the stream specs.
func newTenantService(t *testing.T, n int, lines uint64) (*tenant.Service, []loadgen.TenantSpec) {
	t.Helper()
	eng, err := device.NewEngine(device.EngineOptions{
		Options: device.Options{
			System:     config.TestSystem(),
			Mode:       memctrl.ModeSAC,
			Key:        []byte("loadgen-tenant-device-key"),
			Shards:     4,
			QueueDepth: 16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	svc, err := tenant.New(eng, tenant.Options{MasterKey: []byte("loadgen-tenant-master")})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]loadgen.TenantSpec, n)
	for i := range specs {
		id := uint32(i + 1)
		token, err := svc.Provision(id, lines, 0)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = loadgen.TenantSpec{ID: id, Token: token, Lines: lines}
	}
	return svc, specs
}

// TestRunTenantsDeterministic: two identical runs over fresh services
// must render byte-identical reports, every stream must complete its
// share, and the run must verify reads against its own content oracle.
func TestRunTenantsDeterministic(t *testing.T) {
	var first []byte
	for run := 0; run < 2; run++ {
		svc, specs := newTenantService(t, 4, 64)
		rep, err := loadgen.RunTenants(loadgen.TenantParams{
			Dial:     func() (loadgen.TenantConn, error) { return loadgen.NewLocalTenantConn(svc), nil },
			Tenants:  specs,
			Ops:      800,
			Seed:     42,
			Workload: "hashmap",
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rep.Per {
			if p.Ops == 0 {
				t.Fatalf("tenant %d did no work: %+v", p.ID, p)
			}
		}
		if rep.Verified == 0 {
			t.Fatal("no reads were verified against the content oracle")
		}
		if rep.Fairness <= 0.5 || rep.Fairness > 1.0 {
			t.Fatalf("implausible fairness index %v", rep.Fairness)
		}
		var buf bytes.Buffer
		if err := rep.WriteMarkdown(&buf); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("reports differ across identical runs:\n%s\n----\n%s", first, buf.Bytes())
		}
	}
}

// TestRunTenantsRotationUnderLoad arms an online key rotation mid-run
// and checks it completes while the streams keep verifying content —
// i.e. lazy re-encryption never serves a stale or foreign line.
func TestRunTenantsRotationUnderLoad(t *testing.T) {
	svc, specs := newTenantService(t, 3, 48)
	conn := loadgen.NewLocalTenantConn(svc)
	rep, err := loadgen.RunTenants(loadgen.TenantParams{
		Dial:         func() (loadgen.TenantConn, error) { return conn, nil },
		Tenants:      specs,
		Ops:          600,
		Seed:         7,
		Workload:     "hashmap",
		RotateTenant: 2,
		RotateAt:     100,
		RotateStride: 4,
		Admin:        conn,
	})
	if err != nil {
		t.Fatal(err)
	}
	rot := rep.Rotation
	if rot == nil || !rot.Done {
		t.Fatalf("rotation did not finish: %+v", rot)
	}
	if rot.Lines == 0 || rot.StartedAtOp < 100 || rot.DoneAtOp < rot.StartedAtOp {
		t.Fatalf("implausible rotation result: %+v", rot)
	}
	rec, err := svc.Info(2)
	if err != nil || rec.Epoch != 2 {
		t.Fatalf("tenant 2 epoch = %d (%v), want 2", rec.Epoch, err)
	}
	if err := svc.VerifyTenant(2); err != nil {
		t.Fatalf("post-rotation verify: %v", err)
	}
}

// TestRunTenantsOverWire runs the same generator against a tenant-mode
// server over TCP, one session per tenant, rotation driven over the
// operator plane.
func TestRunTenantsOverWire(t *testing.T) {
	svc, specs := newTenantService(t, 2, 32)
	addr := serveTenants(t, svc)
	admin, err := devnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	rep, err := loadgen.RunTenants(loadgen.TenantParams{
		Dial:         func() (loadgen.TenantConn, error) { return devnet.Dial(addr) },
		Tenants:      specs,
		Ops:          300,
		Seed:         3,
		Workload:     "hashmap",
		RotateTenant: 1,
		RotateAt:     60,
		Admin:        admin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rotation == nil || !rep.Rotation.Done {
		t.Fatalf("rotation over the wire did not finish: %+v", rep.Rotation)
	}
	if rep.Verified == 0 {
		t.Fatal("no reads verified over the wire")
	}
}

func serveTenants(t *testing.T, svc *tenant.Service) string {
	t.Helper()
	srv := devnet.NewServerWith(nil, devnet.ServerOptions{Tenants: svc})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	t.Cleanup(func() { srv.Shutdown(); <-done })
	return ln.Addr().String()
}
