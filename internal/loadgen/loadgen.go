// Package loadgen is a deterministic closed-loop load generator for the
// sharded secure-NVM device service. It replays internal/workload access
// patterns against a live server (or any device.Client-shaped connection)
// and reports throughput and latency percentiles computed from the
// device's simulated clocks — wall-clock time never enters the report, so
// a run is reproducible bit for bit.
//
// Determinism model: the Ops budget is split into one request stream per
// *shard* (seeded per shard, like internal/runner's block scheduling
// splits work units, not workers), and each worker drives the shards it
// owns closed-loop — at most one request in flight per shard, in stream
// order. A shard's controller, sim clock and telemetry then depend only
// on its own stream, so the merged telemetry snapshot and the latency
// report are byte-identical at any -workers setting.
package loadgen

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"

	"soteria/internal/device"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/stats"
	"soteria/internal/telemetry"
	"soteria/internal/trace"
	"soteria/internal/workload"
)

// Conn is the slice of the device surface the generator needs. Both
// devnet.Client (over TCP) and deviceConn (in-process, for tests)
// implement it.
type Conn interface {
	Info() (device.Info, error)
	Read(addr uint64) (nvm.Line, sim.Time, error)
	Write(addr uint64, data *nvm.Line) (sim.Time, error)
	Drain(addr uint64) error
	SnapshotJSON() ([]byte, error)
	Close() error
}

// Params configures one run.
type Params struct {
	// Dial opens one connection; it is called once per worker plus once
	// for the control connection.
	Dial func() (Conn, error)
	// Workers drives the shards concurrently; capped at the shard count
	// (extra workers would own no shards). Default 1.
	Workers int
	// Ops is the total operation budget, split across shards as evenly
	// as the stream allows (shard i gets the i-th residue). Default 1000.
	Ops int
	// Seed drives every per-shard stream.
	Seed int64
	// Workload names the internal/workload pattern to replay.
	Workload string
	// Footprint is the per-shard data footprint the generator walks;
	// 0 means the shard's whole capacity.
	Footprint uint64
	// Logf, when non-nil, receives progress lines (stderr material).
	Logf func(format string, args ...any)
	// Resilience, when non-nil, is the registry the run's connections
	// report their devnet_client_* counters into (the caller wires it
	// through its Dial). After the run the counters appear in the report
	// as a sorted table — on a healthy network they are all zero, so the
	// table stays deterministic; under faults they quantify the retry
	// traffic the run absorbed.
	Resilience *telemetry.Registry

	// DialPipe, when non-nil, switches the run to the pipelined open-loop
	// mode: Conns connection goroutines submit through windowed batching
	// clients instead of Workers stop-and-wait loops. The handler passed
	// to DialPipe must be installed as the pipe's completion handler.
	DialPipe func(h PipeHandler) (PipeConn, error)
	// Conns is the pipelined connection count (pipelined mode only);
	// capped at the shard count. Default 1.
	Conns int
	// Pipeline and Batch record the window and batch sizes the caller
	// configured on its pipes; they only annotate the report (the pipe
	// itself enforces them).
	Pipeline int
	Batch    int
}

// ResilienceCounter is one named client-resilience counter in a report.
type ResilienceCounter struct {
	Name  string
	Value uint64
}

// LatencySummary describes one operation class's simulated latencies in
// nanoseconds, derived from per-shard log2 histograms.
type LatencySummary struct {
	Count              uint64
	P50, P90, P95, P99 float64
	Max                float64
	MeanSimNanos       float64
	TotalSimNanos      float64
}

// Report is the deterministic outcome of a run.
type Report struct {
	Workload string
	// Mode is "stop-and-wait" (closed loop, Workers connections) or
	// "pipelined" (open loop, Conns windowed batching connections).
	Mode     string
	Shards   int
	Workers  int
	Conns    int
	Pipeline int
	Batch    int
	Ops      int
	Barriers uint64
	Read     LatencySummary
	Write    LatencySummary
	// SimNanos is the busiest shard's total simulated service time — the
	// run's simulated makespan under perfect shard parallelism.
	SimNanos float64
	// Resilience holds the run's client retry/timeout/reconnect counters
	// (sorted by name) when Params.Resilience was set.
	Resilience []ResilienceCounter
}

// classHist is a worker-local latency histogram: log2 buckets over
// simulated picoseconds. No locks — each shard's stats are owned by the
// one worker driving it.
type classHist struct {
	buckets [65]uint64
	count   uint64
	sum     uint64 // ps
	max     uint64 // ps
}

func (h *classHist) observe(t sim.Time) {
	ps := uint64(t)
	h.buckets[bits.Len64(ps)]++
	h.count++
	h.sum += ps
	if ps > h.max {
		h.max = ps
	}
}

func (h *classHist) merge(o *classHist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the upper bound (in ns) of the bucket holding the
// q-th sample — a deterministic, conservative percentile estimate.
func (h *classHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if n > 0 && seen > target {
			return float64(uint64(1)<<uint(i)) / 1e3
		}
	}
	return float64(h.max) / 1e3
}

func (h *classHist) summary() LatencySummary {
	s := LatencySummary{
		Count: h.count,
		P50:   h.quantile(0.50),
		P90:   h.quantile(0.90),
		P95:   h.quantile(0.95),
		P99:   h.quantile(0.99),
		Max:   float64(h.max) / 1e3,
	}
	s.TotalSimNanos = float64(h.sum) / 1e3
	if h.count > 0 {
		s.MeanSimNanos = s.TotalSimNanos / float64(h.count)
	}
	return s
}

// shardStream is one shard's deterministic request stream plus the stats
// it accumulates. Exactly one worker touches it.
type shardStream struct {
	shard     int
	remaining int
	gen       trace.Generator
	lines     uint64 // shard-local line count
	stride    uint64 // device shard count, for the global mapping
	seed      int64
	writeIdx  int
	reads     classHist
	writes    classHist
	barriers  uint64
	simBusy   uint64 // ps, sum of op latencies on this shard
}

// globalAddr maps a generator byte address into this shard's slice of the
// device address space (the inverse of the device's line interleave).
func (s *shardStream) globalAddr(addr uint64) uint64 {
	local := (addr / nvm.LineSize) % s.lines
	return (local*s.stride + uint64(s.shard)) * nvm.LineSize
}

// lineContent derives the deterministic payload of this shard's i-th
// write (splitmix64, like the chaos harness's content oracle).
func (s *shardStream) lineContent(i int) nvm.Line {
	var l nvm.Line
	x := uint64(s.seed)*0x9e3779b97f4a7c15 + uint64(s.shard+1)*0x94d049bb133111eb + uint64(i+1)*0xbf58476d1ce4e5b9
	for off := 0; off < nvm.LineSize; off += 8 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		for k := 0; k < 8; k++ {
			l[off+k] = byte(x >> (8 * uint(k)))
		}
	}
	return l
}

// step executes the stream's next operation on conn.
func (s *shardStream) step(conn Conn) error {
	var rec trace.Record
	if !s.gen.Next(&rec) {
		s.remaining = 0
		return nil
	}
	switch rec.Op {
	case trace.OpRead:
		addr := s.globalAddr(rec.Addr)
		_, lat, err := conn.Read(addr)
		if err != nil {
			return fmt.Errorf("shard %d read %#x: %w", s.shard, addr, err)
		}
		s.reads.observe(lat)
		s.simBusy += uint64(lat)
	case trace.OpWrite, trace.OpWritePersist:
		addr := s.globalAddr(rec.Addr)
		line := s.lineContent(s.writeIdx)
		s.writeIdx++
		lat, err := conn.Write(addr, &line)
		if err != nil {
			return fmt.Errorf("shard %d write %#x: %w", s.shard, addr, err)
		}
		s.writes.observe(lat)
		s.simBusy += uint64(lat)
	case trace.OpBarrier:
		if err := conn.Drain(uint64(s.shard) * nvm.LineSize); err != nil {
			return fmt.Errorf("shard %d drain: %w", s.shard, err)
		}
		s.barriers++
	}
	s.remaining--
	return nil
}

// Run executes one load-generation run and returns the deterministic
// report plus the server's merged telemetry snapshot (canonical JSON),
// fetched over a control connection after every stream finishes.
func Run(p Params) (*Report, []byte, error) {
	if p.Ops <= 0 {
		p.Ops = 1000
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	logf := p.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	wl, err := workload.ByName(p.Workload)
	if err != nil {
		return nil, nil, err
	}

	control, err := p.Dial()
	if err != nil {
		return nil, nil, fmt.Errorf("loadgen: control dial: %w", err)
	}
	defer control.Close()
	info, err := control.Info()
	if err != nil {
		return nil, nil, fmt.Errorf("loadgen: info: %w", err)
	}
	shards := info.Shards
	if p.Workers > shards {
		p.Workers = shards
	}
	shardLines := info.CapacityBytes / nvm.LineSize / uint64(shards)
	footprint := p.Footprint
	if footprint == 0 || footprint > shardLines*nvm.LineSize {
		footprint = shardLines * nvm.LineSize
	}

	// One deterministic stream per shard; the worker that drives it is an
	// execution detail.
	streams := make([]*shardStream, shards)
	for i := range streams {
		streams[i] = &shardStream{
			shard:     i,
			remaining: p.Ops/shards + btoi(i < p.Ops%shards),
			gen:       wl.New(footprint, p.Seed+int64(i)*0x9e37),
			lines:     shardLines,
			stride:    uint64(shards),
			seed:      p.Seed,
		}
	}
	if p.DialPipe != nil {
		if p.Conns <= 0 {
			p.Conns = 1
		}
		if p.Conns > shards {
			p.Conns = shards
		}
		logf("loadgen: %s over %d shards, %d ops, %d pipelined conns (window %d, batch %d)",
			wl.Name, shards, p.Ops, p.Conns, p.Pipeline, p.Batch)
		if err := runPipelined(&p, streams, shards); err != nil {
			return nil, nil, err
		}
	} else {
		logf("loadgen: %s over %d shards, %d ops, %d workers", wl.Name, shards, p.Ops, p.Workers)
		if err := runStopAndWait(&p, streams, shards); err != nil {
			return nil, nil, err
		}
	}

	snapshot, err := control.SnapshotJSON()
	if err != nil {
		return nil, nil, fmt.Errorf("loadgen: snapshot: %w", err)
	}

	// Merge per-shard stats in shard order (same rule as the device's
	// telemetry merge): the report is independent of worker scheduling.
	rep := &Report{Workload: wl.Name, Mode: "stop-and-wait", Shards: shards, Workers: p.Workers, Ops: p.Ops}
	if p.DialPipe != nil {
		rep.Mode = "pipelined"
		rep.Workers = 0
		rep.Conns = p.Conns
		rep.Pipeline = p.Pipeline
		rep.Batch = p.Batch
	}
	var reads, writes classHist
	for _, s := range streams {
		reads.merge(&s.reads)
		writes.merge(&s.writes)
		rep.Barriers += s.barriers
		if busy := float64(s.simBusy) / 1e3; busy > rep.SimNanos {
			rep.SimNanos = busy
		}
	}
	rep.Read = reads.summary()
	rep.Write = writes.summary()
	if p.Resilience != nil {
		snap := p.Resilience.Snapshot()
		for name, v := range snap.Counters {
			rep.Resilience = append(rep.Resilience, ResilienceCounter{Name: name, Value: v})
		}
		sort.Slice(rep.Resilience, func(i, j int) bool { return rep.Resilience[i].Name < rep.Resilience[j].Name })
	}
	return rep, snapshot, nil
}

// runStopAndWait is Run's closed-loop branch: Workers connection
// goroutines each drive the shard streams they own, one op in flight
// per shard, round-robin across the owned shards.
func runStopAndWait(p *Params, streams []*shardStream, shards int) error {
	var wg sync.WaitGroup
	errs := make([]error, p.Workers)
	for w := 0; w < p.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := p.Dial()
			if err != nil {
				errs[w] = fmt.Errorf("loadgen: worker %d dial: %w", w, err)
				return
			}
			defer conn.Close()
			// Round-robin the owned shards, one op per visit, until all
			// are exhausted: closed loop per shard, fair across shards.
			owned := make([]*shardStream, 0, shards/p.Workers+1)
			for i := w; i < shards; i += p.Workers {
				owned = append(owned, streams[i])
			}
			for {
				live := 0
				for _, s := range owned {
					if s.remaining <= 0 {
						continue
					}
					live++
					if err := s.step(conn); err != nil {
						errs[w] = err
						return
					}
				}
				if live == 0 {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// WriteMarkdown renders the report as the machine-parsable tables the CLI
// prints on stdout.
func (r *Report) WriteMarkdown(w io.Writer) error {
	front := fmt.Sprintf("%d workers", r.Workers)
	if r.Mode == "pipelined" {
		front = fmt.Sprintf("%d conns × window %d × batch %d", r.Conns, r.Pipeline, r.Batch)
	}
	t := stats.NewTable(
		fmt.Sprintf("loadgen: %s — %d ops, %d shards, %s", r.Workload, r.Ops, r.Shards, front),
		"op", "count", "mean (ns)", "p50 (ns)", "p90 (ns)", "p95 (ns)", "p99 (ns)", "max (ns)")
	addRow := func(name string, s LatencySummary) {
		t.AddRow(name, s.Count, stats.FormatFloat(s.MeanSimNanos), stats.FormatFloat(s.P50),
			stats.FormatFloat(s.P90), stats.FormatFloat(s.P95), stats.FormatFloat(s.P99), stats.FormatFloat(s.Max))
	}
	addRow("read", r.Read)
	addRow("write", r.Write)
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	tp := stats.NewTable("throughput (simulated)",
		"metric", "value")
	tp.AddRow("barriers", r.Barriers)
	tp.AddRow("sim makespan (ns)", stats.FormatFloat(r.SimNanos))
	if r.SimNanos > 0 {
		opsDone := float64(r.Read.Count + r.Write.Count)
		tp.AddRow("ops per sim-ms", stats.FormatFloat(opsDone/(r.SimNanos/1e6)))
	}
	if err := tp.WriteMarkdown(w); err != nil {
		return err
	}
	if len(r.Resilience) > 0 {
		tr := stats.NewTable("client resilience", "counter", "value")
		for _, c := range r.Resilience {
			tr.AddRow(c.Name, c.Value)
		}
		return tr.WriteMarkdown(w)
	}
	return nil
}
