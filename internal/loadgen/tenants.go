package loadgen

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"soteria/internal/device"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/stats"
	"soteria/internal/tenant"
	"soteria/internal/trace"
	"soteria/internal/workload"
)

// TenantConn is the tenant-plane slice of the connection surface the
// multi-tenant generator needs. devnet.Client implements it over TCP
// (where a session binds to one tenant at attach time), and
// LocalTenantConn implements it in-process for tests and experiments.
type TenantConn interface {
	AttachTenant(id uint32, token uint64) error
	TenantRead(id uint32, addr uint64) (nvm.Line, sim.Time, error)
	TenantWrite(id uint32, addr uint64, data *nvm.Line) (sim.Time, error)
	Close() error
}

// TenantAdmin is the operator-plane slice used to drive an online key
// rotation while the data streams run. devnet.Client and LocalTenantConn
// both implement it.
type TenantAdmin interface {
	TenantRotate(id uint32) error
	TenantRotateStep(id uint32, max uint32) (rotated uint32, cursor uint64, done bool, err error)
}

// TenantSpec names one tenant stream: the tenant to attach and the
// extent the stream walks.
type TenantSpec struct {
	ID    uint32
	Token uint64
	// Lines is the tenant's extent size in 64-byte lines (the stream's
	// footprint).
	Lines uint64
}

// TenantParams configures one multi-tenant run.
type TenantParams struct {
	// Dial opens one connection; called once per tenant, because the
	// network protocol binds a session to a single tenant at attach time.
	Dial func() (TenantConn, error)
	// Tenants lists the streams. Each must already be provisioned.
	Tenants []TenantSpec
	// Ops is the total operation budget, split across tenants as evenly
	// as possible (tenant i gets the i-th residue). Default 1000.
	Ops int
	// Seed drives every per-tenant stream.
	Seed int64
	// Workload names the internal/workload pattern each stream replays.
	Workload string
	// RotateTenant, when non-zero, kicks an online key rotation for that
	// tenant once RotateAt operations have completed, then interleaves
	// RotateStride-line sweep steps with the data streams until it
	// finishes — measuring rotation cost under live load.
	RotateTenant uint32
	// RotateAt is the global completed-op count that triggers the
	// rotation. Default: half the budget.
	RotateAt int
	// RotateStride is the number of lines each interleaved sweep step
	// re-encrypts. Default 8.
	RotateStride int
	// Admin drives the rotation; required when RotateTenant is set.
	Admin TenantAdmin
	// Logf, when non-nil, receives progress lines (stderr material).
	Logf func(format string, args ...any)
}

// TenantResult is one tenant stream's outcome.
type TenantResult struct {
	ID        uint32
	Ops       uint64 // completed reads + writes
	Reads     uint64
	Writes    uint64
	Throttled uint64 // fair-share BusyError rejections absorbed
	Latency   LatencySummary
	// SimBusyNanos is the stream's total simulated service time.
	SimBusyNanos float64
	// RateOpsPerSimMs is the stream's achieved rate over its own
	// simulated busy time — the quantity the fairness index compares.
	RateOpsPerSimMs float64
}

// RotationResult describes the online rotation a run drove.
type RotationResult struct {
	Tenant uint32
	// StartedAtOp / DoneAtOp are global completed-op counts.
	StartedAtOp uint64
	DoneAtOp    uint64
	Steps       uint64
	Lines       uint64
	Done        bool
}

// TenantReport is the deterministic outcome of a multi-tenant run.
type TenantReport struct {
	Workload string
	Ops      int
	Barriers uint64
	Per      []TenantResult
	// All aggregates every tenant's operation latencies.
	All LatencySummary
	// Fairness is Jain's index over the per-tenant achieved rates:
	// 1.0 means perfectly even service, 1/n means one tenant got
	// everything.
	Fairness float64
	Rotation *RotationResult
	// Verified counts reads checked against the content oracle (every
	// read of a line the run itself wrote).
	Verified uint64
}

// tenantStream is one tenant's deterministic request stream plus the
// stats it accumulates. The single driver goroutine owns all of them.
type tenantStream struct {
	spec      TenantSpec
	conn      TenantConn
	remaining int
	gen       trace.Generator
	// pending holds an op a fair-share throttle bounced, replayed on the
	// next round-robin visit (the generator has no pushback).
	pending  *trace.Record
	seed     int64
	writeIdx int
	// committed is the content oracle: line -> index of the last write
	// the server acknowledged, so every later read can be verified.
	committed map[uint64]int
	hist      classHist
	reads     uint64
	writes    uint64
	barriers  uint64
	throttled uint64
	verified  uint64
	simBusy   uint64 // ps
}

// lineContent derives the deterministic payload of this tenant's i-th
// write (splitmix64, same family as the chaos harness's oracle).
func (s *tenantStream) lineContent(i int) nvm.Line {
	var l nvm.Line
	x := uint64(s.seed)*0x9e3779b97f4a7c15 + uint64(s.spec.ID)*0x94d049bb133111eb + uint64(i+1)*0xbf58476d1ce4e5b9
	for off := 0; off < nvm.LineSize; off += 8 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		for k := 0; k < 8; k++ {
			l[off+k] = byte(x >> (8 * uint(k)))
		}
	}
	return l
}

// step executes the stream's next operation. It returns (progress,
// error): a fair-share throttle leaves the op pending (progress=false)
// so the driver retries it on the next round-robin visit, by which time
// the other tenants' admitted ops have advanced the quota window.
func (s *tenantStream) step() (bool, error) {
	var rec trace.Record
	if s.pending != nil {
		rec, s.pending = *s.pending, nil
	} else if !s.gen.Next(&rec) {
		s.remaining = 0
		return true, nil
	}
	line := (rec.Addr / nvm.LineSize) % s.spec.Lines
	addr := line * nvm.LineSize
	switch rec.Op {
	case trace.OpRead:
		data, lat, err := s.conn.TenantRead(s.spec.ID, addr)
		if busy(err) {
			s.throttled++
			s.pending = &rec
			return false, nil
		}
		if err != nil {
			return false, fmt.Errorf("tenant %d read %#x: %w", s.spec.ID, addr, err)
		}
		if idx, ok := s.committed[line]; ok {
			if want := s.lineContent(idx); data != want {
				return false, fmt.Errorf("tenant %d line %#x: read returned stale or foreign content (want write %d)", s.spec.ID, addr, idx)
			}
			s.verified++
		}
		s.hist.observe(lat)
		s.reads++
		s.simBusy += uint64(lat)
	case trace.OpWrite, trace.OpWritePersist:
		content := s.lineContent(s.writeIdx)
		lat, err := s.conn.TenantWrite(s.spec.ID, addr, &content)
		if busy(err) {
			s.throttled++
			s.pending = &rec
			return false, nil
		}
		if err != nil {
			return false, fmt.Errorf("tenant %d write %#x: %w", s.spec.ID, addr, err)
		}
		s.committed[line] = s.writeIdx
		s.writeIdx++
		s.hist.observe(lat)
		s.writes++
		s.simBusy += uint64(lat)
	case trace.OpBarrier:
		// The tenant plane has no per-shard drain; every acknowledged
		// write is already durable, so a barrier is a no-op.
		s.barriers++
	}
	s.remaining--
	return true, nil
}

// busy reports whether err is the retryable fair-share (or queue-full)
// backpressure signal. Quota errors are deliberately NOT matched: a hard
// budget does not refill by retrying, so they abort the stream.
func busy(err error) bool {
	var be *device.BusyError
	return errors.As(err, &be)
}

// RunTenants executes one multi-tenant load run: one deterministic
// closed-loop stream per tenant, driven round-robin by a single
// goroutine (one op per visit — the interleaving, and with it the quota
// windows and per-shard sim clocks, is then fully reproducible for a
// fixed seed). Every read of a line the run itself wrote is verified
// against the deterministic content oracle, so the run doubles as an
// end-to-end isolation check: a key-domain mix-up surfaces as a verify
// failure, not a silent wrong answer.
func RunTenants(p TenantParams) (*TenantReport, error) {
	if len(p.Tenants) == 0 {
		return nil, fmt.Errorf("loadgen: no tenant streams")
	}
	if p.Ops <= 0 {
		p.Ops = 1000
	}
	if p.RotateTenant != 0 {
		if p.Admin == nil {
			return nil, fmt.Errorf("loadgen: RotateTenant set but no Admin connection")
		}
		if p.RotateAt <= 0 {
			p.RotateAt = p.Ops / 2
		}
		if p.RotateStride <= 0 {
			p.RotateStride = 8
		}
	}
	logf := p.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	wl, err := workload.ByName(p.Workload)
	if err != nil {
		return nil, err
	}

	n := len(p.Tenants)
	streams := make([]*tenantStream, n)
	for i, spec := range p.Tenants {
		if spec.Lines == 0 {
			return nil, fmt.Errorf("loadgen: tenant %d has a zero-line extent", spec.ID)
		}
		conn, err := p.Dial()
		if err != nil {
			return nil, fmt.Errorf("loadgen: tenant %d dial: %w", spec.ID, err)
		}
		defer conn.Close()
		if err := conn.AttachTenant(spec.ID, spec.Token); err != nil {
			return nil, fmt.Errorf("loadgen: tenant %d attach: %w", spec.ID, err)
		}
		streams[i] = &tenantStream{
			spec:      spec,
			conn:      conn,
			remaining: p.Ops/n + btoi(i < p.Ops%n),
			gen:       wl.New(spec.Lines*nvm.LineSize, p.Seed+int64(spec.ID)*0x9e37),
			seed:      p.Seed,
			committed: map[uint64]int{},
		}
	}
	logf("loadgen: %s over %d tenants, %d ops", wl.Name, n, p.Ops)

	rot := &RotationResult{Tenant: p.RotateTenant}
	var completed uint64
	rotating := false
	for {
		live, progressed := 0, false
		for _, s := range streams {
			if s.remaining <= 0 {
				continue
			}
			live++
			ok, err := s.step()
			if err != nil {
				return nil, err
			}
			if ok {
				progressed = true
				completed++
			}
			if p.RotateTenant != 0 && !rotating && !rot.Done && completed >= uint64(p.RotateAt) {
				if err := p.Admin.TenantRotate(p.RotateTenant); err != nil {
					return nil, fmt.Errorf("loadgen: rotate tenant %d: %w", p.RotateTenant, err)
				}
				rotating = true
				rot.StartedAtOp = completed
				logf("loadgen: rotation of tenant %d armed at op %d", p.RotateTenant, completed)
			}
		}
		if rotating {
			moved, _, done, err := p.Admin.TenantRotateStep(p.RotateTenant, uint32(p.RotateStride))
			if err != nil {
				return nil, fmt.Errorf("loadgen: rotate step: %w", err)
			}
			rot.Steps++
			rot.Lines += uint64(moved)
			progressed = progressed || moved > 0
			if done {
				rotating = false
				rot.Done = true
				rot.DoneAtOp = completed
				logf("loadgen: rotation done at op %d (%d lines in %d steps)", completed, rot.Lines, rot.Steps)
			}
		}
		if live == 0 && !rotating {
			break
		}
		if live > 0 && !progressed {
			// Every live stream was throttled and nothing advanced the
			// service's op clock, so no retry can ever succeed.
			return nil, fmt.Errorf("loadgen: fair-share livelock: %d streams throttled with no admitted ops to roll the quota window", live)
		}
	}

	rep := &TenantReport{Workload: wl.Name, Ops: p.Ops}
	if p.RotateTenant != 0 {
		rep.Rotation = rot
	}
	var all classHist
	var rates []float64
	for _, s := range streams {
		res := TenantResult{
			ID:           s.spec.ID,
			Ops:          s.reads + s.writes,
			Reads:        s.reads,
			Writes:       s.writes,
			Throttled:    s.throttled,
			Latency:      s.hist.summary(),
			SimBusyNanos: float64(s.simBusy) / 1e3,
		}
		if s.simBusy > 0 {
			res.RateOpsPerSimMs = float64(res.Ops) / (res.SimBusyNanos / 1e6)
		}
		rep.Per = append(rep.Per, res)
		rep.Barriers += s.barriers
		rep.Verified += s.verified
		all.merge(&s.hist)
		rates = append(rates, res.RateOpsPerSimMs)
	}
	sort.Slice(rep.Per, func(i, j int) bool { return rep.Per[i].ID < rep.Per[j].ID })
	rep.All = all.summary()
	rep.Fairness = jain(rates)
	return rep, nil
}

// jain computes Jain's fairness index (sum x)^2 / (n * sum x^2) over the
// per-tenant rates: 1.0 when all rates are equal, 1/n at total
// starvation of all but one.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// WriteMarkdown renders the report as deterministic machine-parsable
// tables.
func (r *TenantReport) WriteMarkdown(w io.Writer) error {
	t := stats.NewTable(
		fmt.Sprintf("loadgen: %s — %d ops, %d tenants", r.Workload, r.Ops, len(r.Per)),
		"tenant", "ops", "reads", "writes", "throttled",
		"mean (ns)", "p50 (ns)", "p99 (ns)", "ops per sim-ms")
	for _, p := range r.Per {
		t.AddRow(p.ID, p.Ops, p.Reads, p.Writes, p.Throttled,
			stats.FormatFloat(p.Latency.MeanSimNanos), stats.FormatFloat(p.Latency.P50),
			stats.FormatFloat(p.Latency.P99), stats.FormatFloat(p.RateOpsPerSimMs))
	}
	if err := t.WriteMarkdown(w); err != nil {
		return err
	}
	ts := stats.NewTable("multi-tenant summary", "metric", "value")
	ts.AddRow("fairness (Jain)", stats.FormatFloat(r.Fairness))
	ts.AddRow("all-ops p50 (ns)", stats.FormatFloat(r.All.P50))
	ts.AddRow("all-ops p99 (ns)", stats.FormatFloat(r.All.P99))
	ts.AddRow("reads verified", r.Verified)
	ts.AddRow("barriers", r.Barriers)
	if rot := r.Rotation; rot != nil {
		ts.AddRow("rotation tenant", rot.Tenant)
		ts.AddRow("rotation lines", rot.Lines)
		ts.AddRow("rotation steps", rot.Steps)
		ts.AddRow("rotation started at op", rot.StartedAtOp)
		ts.AddRow("rotation done at op", rot.DoneAtOp)
	}
	return ts.WriteMarkdown(w)
}

// LocalTenantConn adapts an in-process *tenant.Service to TenantConn and
// TenantAdmin, so the generator (and its tests) can drive a tenant
// service without a socket. Close is a no-op: the caller owns the
// service. Unlike a network session it enforces no per-connection tenant
// binding — AttachTenant just verifies the token.
type LocalTenantConn struct {
	svc *tenant.Service
}

// NewLocalTenantConn wraps a tenant service.
func NewLocalTenantConn(svc *tenant.Service) *LocalTenantConn {
	return &LocalTenantConn{svc: svc}
}

// AttachTenant implements TenantConn.
func (c *LocalTenantConn) AttachTenant(id uint32, token uint64) error {
	return c.svc.Authenticate(id, token)
}

// TenantRead implements TenantConn.
func (c *LocalTenantConn) TenantRead(id uint32, addr uint64) (nvm.Line, sim.Time, error) {
	return c.svc.Read(id, addr)
}

// TenantWrite implements TenantConn.
func (c *LocalTenantConn) TenantWrite(id uint32, addr uint64, data *nvm.Line) (sim.Time, error) {
	return c.svc.Write(id, addr, data)
}

// TenantRotate implements TenantAdmin.
func (c *LocalTenantConn) TenantRotate(id uint32) error { return c.svc.Rotate(id) }

// TenantRotateStep implements TenantAdmin, mirroring the server
// handler's shape: ErrNotRotating means the sweep already finished.
func (c *LocalTenantConn) TenantRotateStep(id uint32, max uint32) (uint32, uint64, bool, error) {
	rotated, done, err := c.svc.RotateStep(id, int(max))
	if err != nil && !errors.Is(err, tenant.ErrNotRotating) {
		return 0, 0, false, err
	}
	st, err := c.svc.RotateStatus(id)
	if err != nil {
		return 0, 0, false, err
	}
	return uint32(rotated), st.Cursor, done || !st.Rotating, nil
}

// Close implements TenantConn; the service stays up.
func (c *LocalTenantConn) Close() error { return nil }
