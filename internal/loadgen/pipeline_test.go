package loadgen_test

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"soteria/internal/devnet"
	"soteria/internal/loadgen"
	"soteria/internal/telemetry"
)

// compile-time: the pipelined wire client is a loadgen pipe connection,
// and its handler type matches the generator's.
var _ loadgen.PipeConn = (*devnet.Pipe)(nil)
var _ devnet.PipeHandler = devnet.PipeHandler(loadgen.PipeHandler(nil))

// pipeParams builds pipelined run params against addr.
func pipeParams(addr string, conns, window, batch int, reg *telemetry.Registry, retry devnet.RetryPolicy) loadgen.Params {
	return loadgen.Params{
		Dial: func() (loadgen.Conn, error) { return devnet.Dial(addr) },
		DialPipe: func(h loadgen.PipeHandler) (loadgen.PipeConn, error) {
			return devnet.DialPipe(addr, devnet.PipeHandler(h), devnet.PipeOptions{
				Options:  devnet.Options{Telemetry: reg, Retry: retry},
				Window:   window,
				MaxBatch: batch,
			})
		},
		Conns:      conns,
		Pipeline:   window,
		Batch:      batch,
		Ops:        600,
		Seed:       42,
		Workload:   "hashmap",
		Resilience: reg,
	}
}

// TestPipelinedRunDeterministic pins the pipelined mode's determinism
// contract: for a fixed grid point, repeated runs on fresh devices yield
// an identical report and a byte-identical server telemetry snapshot.
func TestPipelinedRunDeterministic(t *testing.T) {
	const shards = 4
	for _, conns := range []int{1, 2} {
		var first []byte
		var firstRep *loadgen.Report
		for trial := 0; trial < 2; trial++ {
			dev := newDevice(t, shards)
			addr := serve(t, dev)
			rep, snap, err := loadgen.Run(pipeParams(addr, conns, 4, 16, nil, devnet.RetryPolicy{}))
			if err != nil {
				t.Fatalf("conns=%d trial %d: %v", conns, trial, err)
			}
			if rep.Mode != "pipelined" || rep.Conns != conns {
				t.Fatalf("report mode/conns = %q/%d", rep.Mode, rep.Conns)
			}
			if got := rep.Read.Count + rep.Write.Count + rep.Barriers; got != uint64(rep.Ops) {
				t.Fatalf("conns=%d: %d ops acked, want %d", conns, got, rep.Ops)
			}
			if rep.Read.P95 == 0 || rep.Read.P95 > rep.Read.P99 {
				t.Fatalf("conns=%d: implausible read p95 %v (p99 %v)", conns, rep.Read.P95, rep.Read.P99)
			}
			if trial == 0 {
				first, firstRep = snap, rep
				continue
			}
			if string(snap) != string(first) {
				t.Errorf("conns=%d: telemetry snapshot differs between identical runs", conns)
			}
			if !reflect.DeepEqual(rep, firstRep) {
				t.Errorf("conns=%d: report differs between identical runs:\n%+v\n%+v", conns, rep, firstRep)
			}
		}
	}
}

// TestPipelinedMatchesStopAndWaitOpMix checks the pipelined branch
// replays exactly the same per-shard streams as the stop-and-wait
// branch: op-class counts and barrier counts agree, and the server saw
// batch frames.
func TestPipelinedMatchesStopAndWaitOpMix(t *testing.T) {
	const shards = 4
	dev := newDevice(t, shards)
	addr := serve(t, dev)
	base, _, err := loadgen.Run(loadgen.Params{
		Dial:     func() (loadgen.Conn, error) { return devnet.Dial(addr) },
		Workers:  2,
		Ops:      600,
		Seed:     42,
		Workload: "hashmap",
	})
	if err != nil {
		t.Fatal(err)
	}

	dev2 := newDevice(t, shards)
	addr2 := serve(t, dev2)
	rep, snap, err := loadgen.Run(pipeParams(addr2, 2, 4, 16, nil, devnet.RetryPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Read.Count != base.Read.Count || rep.Write.Count != base.Write.Count || rep.Barriers != base.Barriers {
		t.Fatalf("op mix differs: pipelined %d/%d/%d vs stop-and-wait %d/%d/%d",
			rep.Read.Count, rep.Write.Count, rep.Barriers, base.Read.Count, base.Write.Count, base.Barriers)
	}
	var counters struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(snap, &counters); err != nil {
		t.Fatal(err)
	}
	if counters.Counters["device_batches_total"] == 0 {
		t.Fatalf("pipelined run pushed no batches through the device: %v", counters.Counters)
	}
}

// frameKillingProxy relays TCP to a backend but closes connection i
// after schedule[i] response frames — the loadgen-level twin of the
// devnet retransmit test, exercising the generator's resilience
// accounting end to end.
type frameKillingProxy struct {
	ln       net.Listener
	backend  string
	schedule []int

	mu    sync.Mutex
	conns int
}

func startFrameKillingProxy(t *testing.T, backend string, schedule []int) *frameKillingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fp := &frameKillingProxy{ln: ln, backend: backend, schedule: schedule}
	go fp.run()
	t.Cleanup(func() { ln.Close() })
	return fp
}

func (fp *frameKillingProxy) run() {
	for {
		client, err := fp.ln.Accept()
		if err != nil {
			return
		}
		fp.mu.Lock()
		idx := fp.conns
		fp.conns++
		fp.mu.Unlock()
		budget := -1
		if idx < len(fp.schedule) {
			budget = fp.schedule[idx]
		}
		server, err := net.Dial("tcp", fp.backend)
		if err != nil {
			client.Close()
			continue
		}
		go func() { io.Copy(server, client); server.Close() }()
		go func() {
			var hdr [8]byte
			buf := make([]byte, 64<<10)
			for n := 0; budget < 0 || n < budget; n++ {
				if _, err := io.ReadFull(server, hdr[:]); err != nil {
					break
				}
				size := int(binary.BigEndian.Uint32(hdr[:4]))
				if size > len(buf) {
					buf = make([]byte, size)
				}
				if _, err := io.ReadFull(server, buf[:size]); err != nil {
					break
				}
				if _, err := client.Write(hdr[:]); err != nil {
					break
				}
				if _, err := client.Write(buf[:size]); err != nil {
					break
				}
			}
			client.Close()
			server.Close()
		}()
	}
}

// TestPipelinedLoadgenResilienceCounters drives a pipelined run through
// a deterministic connection-kill schedule and checks the window-aware
// accounting the report surfaces: recovery is reconnects plus go-back-N
// batch retransmits, never per-op retries, nothing gives up, and every
// op is still acked exactly once.
func TestPipelinedLoadgenResilienceCounters(t *testing.T) {
	const shards = 4
	dev := newDevice(t, shards)
	backend := serve(t, dev)
	// Proxy connection 0 is the run's control connection (Info +
	// Snapshot, two frames — leave it alone); the pipe dials next, so
	// slots 1 and 2 kill the pipe's first two connections.
	fp := startFrameKillingProxy(t, backend, []int{1000, 2, 3})

	reg := telemetry.NewRegistry()
	retry := devnet.RetryPolicy{
		MaxAttempts: -1,
		MaxElapsed:  30 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	}
	rep, _, err := loadgen.Run(pipeParams(fp.ln.Addr().String(), 1, 4, 8, reg, retry))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Read.Count + rep.Write.Count + rep.Barriers; got != uint64(rep.Ops) {
		t.Fatalf("%d ops acked through kill schedule, want %d", got, rep.Ops)
	}
	want := map[string]func(v uint64) bool{
		"devnet_client_reconnects_total":        func(v uint64) bool { return v >= 2 },
		"devnet_client_batch_retransmits_total": func(v uint64) bool { return v > 0 },
		"devnet_client_retries_total":           func(v uint64) bool { return v == 0 },
		"devnet_client_gave_up_total":           func(v uint64) bool { return v == 0 },
	}
	got := map[string]uint64{}
	for _, c := range rep.Resilience {
		got[c.Name] = c.Value
	}
	for name, ok := range want {
		if !ok(got[name]) {
			t.Errorf("%s = %d violates the resilience contract (%v)", name, got[name], got)
		}
	}
}
