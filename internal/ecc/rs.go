package ecc

import "fmt"

// RS is a systematic Reed-Solomon code over GF(2^8) with k data symbols and
// nsym check symbols per codeword (n = k + nsym <= 255). It corrects up to
// nsym/2 symbol errors and detects most heavier corruptions.
type RS struct {
	k, nsym int
	gen     []byte // generator polynomial, highest-degree first
}

// NewRS builds a Reed-Solomon code with k data symbols and nsym check
// symbols.
func NewRS(k, nsym int) (*RS, error) {
	if k <= 0 || nsym <= 0 || k+nsym > 255 {
		return nil, fmt.Errorf("ecc: invalid RS parameters k=%d nsym=%d", k, nsym)
	}
	gen := []byte{1}
	for i := 0; i < nsym; i++ {
		gen = polyMul(gen, []byte{1, gfPow(i)})
	}
	return &RS{k: k, nsym: nsym, gen: gen}, nil
}

// K returns the number of data symbols per codeword.
func (r *RS) K() int { return r.k }

// NSym returns the number of check symbols per codeword.
func (r *RS) NSym() int { return r.nsym }

// Encode computes the nsym check symbols for the k data symbols in msg.
func (r *RS) Encode(msg []byte) []byte {
	if len(msg) != r.k {
		panic(fmt.Sprintf("ecc: RS.Encode got %d symbols, want %d", len(msg), r.k))
	}
	// Polynomial long division of msg * x^nsym by the generator.
	rem := make([]byte, r.nsym)
	for _, m := range msg {
		factor := m ^ rem[0]
		copy(rem, rem[1:])
		rem[r.nsym-1] = 0
		if factor != 0 {
			for j := 1; j < len(r.gen); j++ {
				rem[j-1] ^= gfMul(r.gen[j], factor)
			}
		}
	}
	return rem
}

// syndromes returns the nsym syndromes of the received codeword
// (data||check) and whether they are all zero.
func (r *RS) syndromes(cw []byte) ([]byte, bool) {
	syn := make([]byte, r.nsym)
	clean := true
	for i := 0; i < r.nsym; i++ {
		syn[i] = polyEval(cw, gfPow(i))
		if syn[i] != 0 {
			clean = false
		}
	}
	return syn, clean
}

// Decode attempts to correct the codeword formed by msg||check in place.
// It returns the number of symbols corrected, or ok=false when the codeword
// is detectably uncorrectable. Miscorrection (an undetected heavy error) is
// possible with any bounded-distance decoder and is exercised in tests.
func (r *RS) Decode(msg, check []byte) (corrected int, ok bool) {
	if len(msg) != r.k || len(check) != r.nsym {
		panic("ecc: RS.Decode called with wrong lengths")
	}
	cw := make([]byte, r.k+r.nsym)
	copy(cw, msg)
	copy(cw[r.k:], check)

	syn, clean := r.syndromes(cw)
	if clean {
		return 0, true
	}

	// Berlekamp-Massey: find the error-locator polynomial sigma
	// (lowest-degree first here for convenience).
	sigma := []byte{1}
	prev := []byte{1}
	var l, m int = 0, 1
	b := byte(1)
	for n := 0; n < r.nsym; n++ {
		var d byte = syn[n]
		for i := 1; i <= l; i++ {
			if i < len(sigma) {
				d ^= gfMul(sigma[i], syn[n-i])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= n {
			t := make([]byte, len(sigma))
			copy(t, sigma)
			coef := gfDiv(d, b)
			sigma = polyAddShifted(sigma, prev, coef, m)
			l = n + 1 - l
			prev = t
			b = d
			m = 1
		} else {
			coef := gfDiv(d, b)
			sigma = polyAddShifted(sigma, prev, coef, m)
			m++
		}
	}
	degree := len(sigma) - 1
	for degree > 0 && sigma[degree] == 0 {
		degree--
	}
	if degree == 0 || degree > r.nsym/2 {
		return 0, false // too many errors to correct
	}

	// Chien search for error positions.
	n := r.k + r.nsym
	var errPos []int
	for i := 0; i < n; i++ {
		// Position i (highest-degree-first index) corresponds to
		// codeword exponent n-1-i; a root at alpha^{-(n-1-i)} marks an
		// error there.
		xinv := gfPow(255 - (n-1-i)%255)
		var v byte
		for j := len(sigma) - 1; j >= 0; j-- {
			v = gfMul(v, xinv) ^ sigma[j]
		}
		if v == 0 {
			errPos = append(errPos, i)
		}
	}
	if len(errPos) != degree {
		return 0, false // locator polynomial has wrong root count
	}

	// Forney's algorithm for error magnitudes.
	// Omega(x) = [S(x) * sigma(x)] mod x^nsym, with S lowest-first.
	omega := make([]byte, r.nsym)
	for i := 0; i < r.nsym; i++ {
		for j := 0; j <= i && j < len(sigma); j++ {
			omega[i] ^= gfMul(sigma[j], syn[i-j])
		}
	}
	for _, pos := range errPos {
		xiExp := (n - 1 - pos) % 255
		xi := gfPow(xiExp)
		xiInv := gfInv(xi)
		// omega(xi^-1)
		var num byte
		for i := len(omega) - 1; i >= 0; i-- {
			num = gfMul(num, xiInv) ^ omega[i]
		}
		// sigma'(xi^-1): formal derivative keeps odd-power terms.
		var den byte
		for i := 1; i < len(sigma); i += 2 {
			term := sigma[i]
			for j := 0; j < i-1; j++ {
				term = gfMul(term, xiInv)
			}
			den ^= term
		}
		if den == 0 {
			return 0, false
		}
		mag := gfMul(xi, gfDiv(num, den))
		cw[pos] ^= mag
	}

	// Verify: corrected codeword must have zero syndromes.
	if _, clean := r.syndromes(cw); !clean {
		return 0, false
	}
	copy(msg, cw[:r.k])
	copy(check, cw[r.k:])
	return len(errPos), true
}

// polyAddShifted returns a + coef * b * x^shift where polynomials are
// lowest-degree-first.
func polyAddShifted(a, b []byte, coef byte, shift int) []byte {
	need := len(b) + shift
	out := make([]byte, max(len(a), need))
	copy(out, a)
	for i, c := range b {
		out[i+shift] ^= gfMul(c, coef)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
