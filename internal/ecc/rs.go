package ecc

import "fmt"

// RS is a systematic Reed-Solomon code over GF(2^8) with k data symbols and
// nsym check symbols per codeword (n = k + nsym <= 255). It corrects up to
// nsym/2 symbol errors and detects most heavier corruptions.
type RS struct {
	k, nsym int
	gen     []byte // generator polynomial, highest-degree first

	// cw/syn are decode scratch: one codec instance serves one device,
	// which (like the controller above it) is single-goroutine, so the
	// no-error fast path of Decode runs without allocating.
	cw  []byte
	syn []byte

	// genMul[j][f] = gfMul(gen[j+1], f): the long-division step of
	// EncodeTo reduced to one table load per check symbol, replacing the
	// log/exp lookups and zero tests of gfMul on the encode hot path.
	genMul [][256]byte

	// alphaMul[f] = gfMul(alpha, f), for Horner steps in the syndrome
	// fast path.
	alphaMul [256]byte
}

// NewRS builds a Reed-Solomon code with k data symbols and nsym check
// symbols.
func NewRS(k, nsym int) (*RS, error) {
	if k <= 0 || nsym <= 0 || k+nsym > 255 {
		return nil, fmt.Errorf("ecc: invalid RS parameters k=%d nsym=%d", k, nsym)
	}
	gen := []byte{1}
	for i := 0; i < nsym; i++ {
		gen = polyMul(gen, []byte{1, gfPow(i)})
	}
	r := &RS{
		k: k, nsym: nsym, gen: gen,
		cw:     make([]byte, k+nsym),
		syn:    make([]byte, nsym),
		genMul: make([][256]byte, nsym),
	}
	for j := 1; j <= nsym; j++ {
		for f := 0; f < 256; f++ {
			r.genMul[j-1][f] = gfMul(gen[j], byte(f))
		}
	}
	for f := 0; f < 256; f++ {
		r.alphaMul[f] = gfMul(2, byte(f))
	}
	return r, nil
}

// K returns the number of data symbols per codeword.
func (r *RS) K() int { return r.k }

// NSym returns the number of check symbols per codeword.
func (r *RS) NSym() int { return r.nsym }

// Encode computes the nsym check symbols for the k data symbols in msg.
func (r *RS) Encode(msg []byte) []byte {
	rem := make([]byte, r.nsym)
	r.EncodeTo(rem, msg)
	return rem
}

// EncodeTo computes the nsym check symbols for the k data symbols in msg
// into rem (len nsym), without allocating.
func (r *RS) EncodeTo(rem, msg []byte) {
	if len(msg) != r.k || len(rem) != r.nsym {
		panic(fmt.Sprintf("ecc: RS.EncodeTo got %d/%d symbols, want %d/%d", len(msg), len(rem), r.k, r.nsym))
	}
	if r.nsym == 2 {
		// The Chipkill shape (RS(10,8), two check symbols) runs on every
		// device read and write; keep its long division in registers with
		// one table load per generator coefficient.
		m0, m1 := &r.genMul[0], &r.genMul[1]
		var r0, r1 byte
		for _, m := range msg {
			f := m ^ r0
			r0 = r1 ^ m0[f]
			r1 = m1[f]
		}
		rem[0], rem[1] = r0, r1
		return
	}
	// Polynomial long division of msg * x^nsym by the generator.
	for i := range rem {
		rem[i] = 0
	}
	for _, m := range msg {
		factor := m ^ rem[0]
		copy(rem, rem[1:])
		rem[r.nsym-1] = 0
		if factor != 0 {
			for j := 1; j < len(r.gen); j++ {
				rem[j-1] ^= r.genMul[j-1][factor]
			}
		}
	}
}

// syndromesInto fills syn (len nsym) with the syndromes of the received
// codeword (data||check) and reports whether they are all zero.
func (r *RS) syndromesInto(syn, cw []byte) bool {
	clean := true
	for i := 0; i < r.nsym; i++ {
		syn[i] = polyEval(cw, gfPow(i))
		if syn[i] != 0 {
			clean = false
		}
	}
	return clean
}

// Decode attempts to correct the codeword formed by msg||check in place.
// It returns the number of symbols corrected, or ok=false when the codeword
// is detectably uncorrectable. Miscorrection (an undetected heavy error) is
// possible with any bounded-distance decoder and is exercised in tests.
func (r *RS) Decode(msg, check []byte) (corrected int, ok bool) {
	if len(msg) != r.k || len(check) != r.nsym {
		panic("ecc: RS.Decode called with wrong lengths")
	}
	// The overwhelmingly common case is a clean codeword. For the
	// Chipkill shape, check it straight off the input slices: syndrome 0
	// is the plain XOR of the codeword, syndrome 1 a Horner walk at
	// alpha — no copies, no allocation, no log/exp lookups.
	if r.nsym == 2 {
		var s0, s1 byte
		aM := &r.alphaMul
		for _, b := range msg {
			s0 ^= b
			s1 = aM[s1] ^ b
		}
		for _, b := range check {
			s0 ^= b
			s1 = aM[s1] ^ b
		}
		if s0|s1 == 0 {
			return 0, true
		}
	}

	// Scratch buffers keep the full decode allocation-free on its common
	// exits too.
	cw := r.cw
	copy(cw, msg)
	copy(cw[r.k:], check)

	syn := r.syn
	if r.syndromesInto(syn, cw) {
		return 0, true
	}

	// Berlekamp-Massey: find the error-locator polynomial sigma
	// (lowest-degree first here for convenience).
	sigma := []byte{1}
	prev := []byte{1}
	var l, m int = 0, 1
	b := byte(1)
	for n := 0; n < r.nsym; n++ {
		var d byte = syn[n]
		for i := 1; i <= l; i++ {
			if i < len(sigma) {
				d ^= gfMul(sigma[i], syn[n-i])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= n {
			t := make([]byte, len(sigma))
			copy(t, sigma)
			coef := gfDiv(d, b)
			sigma = polyAddShifted(sigma, prev, coef, m)
			l = n + 1 - l
			prev = t
			b = d
			m = 1
		} else {
			coef := gfDiv(d, b)
			sigma = polyAddShifted(sigma, prev, coef, m)
			m++
		}
	}
	degree := len(sigma) - 1
	for degree > 0 && sigma[degree] == 0 {
		degree--
	}
	if degree == 0 || degree > r.nsym/2 {
		return 0, false // too many errors to correct
	}

	// Chien search for error positions.
	n := r.k + r.nsym
	var errPos []int
	for i := 0; i < n; i++ {
		// Position i (highest-degree-first index) corresponds to
		// codeword exponent n-1-i; a root at alpha^{-(n-1-i)} marks an
		// error there.
		xinv := gfPow(255 - (n-1-i)%255)
		var v byte
		for j := len(sigma) - 1; j >= 0; j-- {
			v = gfMul(v, xinv) ^ sigma[j]
		}
		if v == 0 {
			errPos = append(errPos, i)
		}
	}
	if len(errPos) != degree {
		return 0, false // locator polynomial has wrong root count
	}

	// Forney's algorithm for error magnitudes.
	// Omega(x) = [S(x) * sigma(x)] mod x^nsym, with S lowest-first.
	omega := make([]byte, r.nsym)
	for i := 0; i < r.nsym; i++ {
		for j := 0; j <= i && j < len(sigma); j++ {
			omega[i] ^= gfMul(sigma[j], syn[i-j])
		}
	}
	for _, pos := range errPos {
		xiExp := (n - 1 - pos) % 255
		xi := gfPow(xiExp)
		xiInv := gfInv(xi)
		// omega(xi^-1)
		var num byte
		for i := len(omega) - 1; i >= 0; i-- {
			num = gfMul(num, xiInv) ^ omega[i]
		}
		// sigma'(xi^-1): formal derivative keeps odd-power terms.
		var den byte
		for i := 1; i < len(sigma); i += 2 {
			term := sigma[i]
			for j := 0; j < i-1; j++ {
				term = gfMul(term, xiInv)
			}
			den ^= term
		}
		if den == 0 {
			return 0, false
		}
		mag := gfMul(xi, gfDiv(num, den))
		cw[pos] ^= mag
	}

	// Verify: corrected codeword must have zero syndromes.
	if !r.syndromesInto(syn, cw) {
		return 0, false
	}
	copy(msg, cw[:r.k])
	copy(check, cw[r.k:])
	return len(errPos), true
}

// polyAddShifted returns a + coef * b * x^shift where polynomials are
// lowest-degree-first.
func polyAddShifted(a, b []byte, coef byte, shift int) []byte {
	need := len(b) + shift
	out := make([]byte, max(len(a), need))
	copy(out, a)
	for i, c := range b {
		out[i+shift] ^= gfMul(c, coef)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
