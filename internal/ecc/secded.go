package ecc

// Hamming SECDED(72,64): 64 data bits are protected by 7 Hamming parity
// bits plus one overall parity bit, giving single-error correction and
// double-error detection per 8-byte word. This is the classic code used by
// commodity ECC DIMMs and serves as the "weak" baseline in the paper's
// discussion of why metadata needs protection beyond the module's ECC.

// secdedDataPos maps data-bit index (0..63) to its codeword position
// (1..71, skipping power-of-two parity positions).
var secdedDataPos [64]int

// secdedPosData is the inverse map: codeword position -> data bit index,
// or -1 for parity positions.
var secdedPosData [72]int

func init() {
	for i := range secdedPosData {
		secdedPosData[i] = -1
	}
	i := 0
	for pos := 1; pos <= 71 && i < 64; pos++ {
		if pos&(pos-1) == 0 {
			continue // parity position
		}
		secdedDataPos[i] = pos
		secdedPosData[pos] = i
		i++
	}
}

// buildCodeword expands data plus the 7 stored Hamming bits into codeword
// positions 1..71.
func buildCodeword(data uint64, check byte) (code [72]bool) {
	for i := 0; i < 64; i++ {
		code[secdedDataPos[i]] = data&(1<<uint(i)) != 0
	}
	for p := 0; p < 7; p++ {
		code[1<<uint(p)] = check&(1<<uint(p)) != 0
	}
	return code
}

// secdedEncode returns the 8 check bits (7 Hamming parity bits in the low
// bits plus the overall parity bit in the MSB) for one 64-bit data word.
func secdedEncode(data uint64) byte {
	var code [72]bool
	for i := 0; i < 64; i++ {
		code[secdedDataPos[i]] = data&(1<<uint(i)) != 0
	}
	var check byte
	for p := 0; p < 7; p++ {
		mask := 1 << uint(p)
		parity := false
		for pos := 1; pos <= 71; pos++ {
			if pos&mask != 0 && code[pos] {
				parity = !parity
			}
		}
		// Choosing the parity bit equal to the data parity makes the
		// total parity of each covered group even.
		if parity {
			check |= byte(mask)
			code[mask] = true
		}
	}
	// Overall parity over all 71 codeword positions; the stored overall
	// bit makes the 72-bit total even.
	overall := false
	for pos := 1; pos <= 71; pos++ {
		if code[pos] {
			overall = !overall
		}
	}
	if overall {
		check |= 0x80
	}
	return check
}

// secdedDecode checks and (if possible) corrects one 64-bit word given its
// stored check byte. It returns the corrected word, whether anything was
// corrected, and whether the word is detectably uncorrectable.
func secdedDecode(data uint64, check byte) (out uint64, corrected, uncorrectable bool) {
	code := buildCodeword(data, check)

	// Syndrome: for each parity group the XOR over all member positions
	// (parity bit included) must be zero; the assembled mismatches spell
	// out the faulty position.
	syndrome := 0
	for p := 0; p < 7; p++ {
		mask := 1 << uint(p)
		parity := false
		for pos := 1; pos <= 71; pos++ {
			if pos&mask != 0 && code[pos] {
				parity = !parity
			}
		}
		if parity {
			syndrome |= mask
		}
	}
	total := check&0x80 != 0
	for pos := 1; pos <= 71; pos++ {
		if code[pos] {
			total = !total
		}
	}

	switch {
	case syndrome == 0 && !total:
		return data, false, false
	case syndrome == 0 && total:
		// Only the overall parity bit flipped; data is intact.
		return data, true, false
	case total:
		// Odd number of flips: assume a single-bit error at position
		// `syndrome`.
		if syndrome > 71 {
			return data, false, true
		}
		di := secdedPosData[syndrome]
		if di < 0 {
			// A Hamming parity bit flipped; data is intact.
			return data, true, false
		}
		return data ^ (1 << uint(di)), true, false
	default:
		// Non-zero syndrome with even overall parity: double error.
		return data, false, true
	}
}

// SECDED is a line codec applying Hamming SECDED(72,64) independently to
// each 8-byte word of a 64-byte line, exactly as commodity x72 DIMMs do.
// The paper's Fig 8 relies on this per-word codeword structure: Soteria
// places the two halves of a duplicated shadow entry in different codewords
// so one uncorrectable word cannot destroy both copies.
type SECDED struct{}

// Name implements Codec.
func (SECDED) Name() string { return "secded72" }

// CheckBytes implements Codec: one check byte per 8-byte word.
func (SECDED) CheckBytes() int { return 8 }

// Encode implements Codec.
func (SECDED) Encode(data []byte) []byte {
	check := make([]byte, 8)
	SECDED{}.EncodeInto(check, data)
	return check
}

// EncodeInto implements Codec.
func (SECDED) EncodeInto(check, data []byte) {
	for w := 0; w < 8; w++ {
		check[w] = secdedEncode(word(data, w))
	}
}

// Decode implements Codec. Each word is decoded independently; the line is
// uncorrectable if any word is.
func (SECDED) Decode(data, check []byte) Result {
	res := Result{}
	for w := 0; w < 8; w++ {
		v, corr, unc := secdedDecode(word(data, w), check[w])
		if unc {
			res.Uncorrectable = true
			res.BadWords = append(res.BadWords, w)
			continue
		}
		if corr {
			res.Corrected = true
			res.SymbolsCorrected++
			putWord(data, w, v)
		}
	}
	return res
}

func word(b []byte, w int) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[w*8+i]) << uint(8*i)
	}
	return v
}

func putWord(b []byte, w int, v uint64) {
	for i := 0; i < 8; i++ {
		b[w*8+i] = byte(v >> uint(8*i))
	}
}
