package ecc

import "fmt"

// Result reports the outcome of decoding one protected line.
type Result struct {
	// Corrected is true when at least one error was repaired.
	Corrected bool
	// SymbolsCorrected counts repaired symbols (bits for SECDED,
	// bytes for Chipkill).
	SymbolsCorrected int
	// Uncorrectable is true when the line contains a detected
	// uncorrectable error; the data contents must not be trusted.
	Uncorrectable bool
	// BadWords lists the 8-byte word indices that failed to decode.
	// Soteria's duplicated shadow entries (Fig 8) exploit this
	// per-codeword granularity: the surviving half of an entry is
	// readable even when the other half's codeword is dead.
	BadWords []int
}

// Codec protects a 64-byte memory line with some error-correcting code.
// Implementations are pure functions of the line contents so the NVM model
// can store check bytes alongside data and replay decoding after fault
// injection.
type Codec interface {
	// Name identifies the codec in reports.
	Name() string
	// CheckBytes returns the number of check bytes stored per 64-byte
	// line.
	CheckBytes() int
	// Encode computes fresh check bytes for the line.
	Encode(data []byte) []byte
	// EncodeInto computes check bytes into check, which must be
	// CheckBytes() long. It is Encode without the allocation, for the
	// device write path.
	EncodeInto(check, data []byte)
	// Decode verifies data against check, correcting data in place when
	// possible.
	Decode(data, check []byte) Result
}

// NoECC is the null codec: nothing is detected, nothing is corrected. It
// models a raw memory array and is used by tests that want faults to reach
// the integrity-verification layer directly.
type NoECC struct{}

// Name implements Codec.
func (NoECC) Name() string { return "none" }

// CheckBytes implements Codec.
func (NoECC) CheckBytes() int { return 0 }

// Encode implements Codec.
func (NoECC) Encode([]byte) []byte { return nil }

// EncodeInto implements Codec.
func (NoECC) EncodeInto([]byte, []byte) {}

// Decode implements Codec.
func (NoECC) Decode([]byte, []byte) Result { return Result{} }

// Chipkill arranges a 64-byte line as eight RS(10,8) codewords over GF(2^8):
// beat b consists of the eight data bytes {line[b*8+j]} — one byte per data
// chip — plus two check bytes held on two ECC devices. Any single-chip
// failure corrupts at most one symbol per codeword and is always corrected;
// failures on two chips of the same rank produce two bad symbols per
// codeword and are detected as uncorrectable. This mirrors the
// Chipkill-Correct repair mechanism named in Table 4.
type Chipkill struct {
	rs *RS
}

// NewChipkill constructs the Chipkill line codec.
func NewChipkill() *Chipkill {
	rs, err := NewRS(8, 2)
	if err != nil {
		panic(fmt.Sprintf("ecc: building RS(10,8): %v", err))
	}
	return &Chipkill{rs: rs}
}

// Name implements Codec.
func (c *Chipkill) Name() string { return "chipkill" }

// CheckBytes implements Codec: 2 check bytes per 8-byte beat.
func (c *Chipkill) CheckBytes() int { return 16 }

// Encode implements Codec.
func (c *Chipkill) Encode(data []byte) []byte {
	check := make([]byte, 16)
	c.EncodeInto(check, data)
	return check
}

// EncodeInto implements Codec.
func (c *Chipkill) EncodeInto(check, data []byte) {
	for b := 0; b < 8; b++ {
		c.rs.EncodeTo(check[b*2:b*2+2], data[b*8:b*8+8])
	}
}

// Decode implements Codec.
func (c *Chipkill) Decode(data, check []byte) Result {
	res := Result{}
	for b := 0; b < 8; b++ {
		n, ok := c.rs.Decode(data[b*8:b*8+8], check[b*2:b*2+2])
		if !ok {
			res.Uncorrectable = true
			res.BadWords = append(res.BadWords, b)
			continue
		}
		if n > 0 {
			res.Corrected = true
			res.SymbolsCorrected += n
		}
	}
	return res
}
