package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// alpha generates the multiplicative group: exp/log must be inverse.
	for i := 1; i < 256; i++ {
		a := byte(i)
		if gfMul(a, gfInv(a)) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
	if gfMul(0, 123) != 0 || gfMul(77, 0) != 0 {
		t.Fatal("multiplication by zero must be zero")
	}
}

func TestGFMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSECDEDCleanRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		check := secdedEncode(data)
		out, corrected, unc := secdedDecode(data, check)
		return out == data && !corrected && !unc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSECDEDSingleBitCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		data := rng.Uint64()
		check := secdedEncode(data)
		bit := rng.Intn(72)
		flippedData, flippedCheck := data, check
		if bit < 64 {
			flippedData ^= 1 << uint(bit)
		} else {
			flippedCheck ^= 1 << uint(bit-64)
		}
		out, corrected, unc := secdedDecode(flippedData, flippedCheck)
		if unc {
			t.Fatalf("single-bit flip at %d reported uncorrectable", bit)
		}
		if !corrected {
			t.Fatalf("single-bit flip at %d not reported corrected", bit)
		}
		if out != data {
			t.Fatalf("single-bit flip at %d miscorrected: got %x want %x", bit, out, data)
		}
	}
}

func TestSECDEDDoubleBitDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		data := rng.Uint64()
		check := secdedEncode(data)
		b1 := rng.Intn(72)
		b2 := rng.Intn(72)
		for b2 == b1 {
			b2 = rng.Intn(72)
		}
		fd, fc := data, check
		for _, b := range []int{b1, b2} {
			if b < 64 {
				fd ^= 1 << uint(b)
			} else {
				fc ^= 1 << uint(b-64)
			}
		}
		out, _, unc := secdedDecode(fd, fc)
		if !unc && out != data {
			t.Fatalf("double flip (%d,%d) silently miscorrected", b1, b2)
		}
		if !unc {
			t.Fatalf("double flip (%d,%d) not detected", b1, b2)
		}
	}
}

func TestSECDEDLineCodec(t *testing.T) {
	var codec SECDED
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i * 7)
	}
	check := codec.Encode(line)
	if len(check) != codec.CheckBytes() {
		t.Fatalf("check length %d != %d", len(check), codec.CheckBytes())
	}
	got := append([]byte(nil), line...)
	res := codec.Decode(got, check)
	if res.Corrected || res.Uncorrectable {
		t.Fatalf("clean line decoded with flags %+v", res)
	}
	// Flip one bit in word 3: corrected.
	got[3*8+2] ^= 0x10
	res = codec.Decode(got, check)
	if !res.Corrected || res.Uncorrectable || !bytes.Equal(got, line) {
		t.Fatalf("single-bit line error not corrected: %+v", res)
	}
	// Flip two bits in word 5: uncorrectable, BadWords names word 5.
	got[5*8] ^= 0x03
	res = codec.Decode(got, check)
	if !res.Uncorrectable || len(res.BadWords) != 1 || res.BadWords[0] != 5 {
		t.Fatalf("double-bit line error not attributed to word 5: %+v", res)
	}
}

func TestRSRoundTrip(t *testing.T) {
	rs, err := NewRS(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg [8]byte) bool {
		m := msg[:]
		check := rs.Encode(m)
		got := append([]byte(nil), m...)
		c := append([]byte(nil), check...)
		n, ok := rs.Decode(got, c)
		return ok && n == 0 && bytes.Equal(got, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRSSingleSymbolCorrection(t *testing.T) {
	rs, _ := NewRS(8, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		msg := make([]byte, 8)
		rng.Read(msg)
		check := rs.Encode(msg)
		gm := append([]byte(nil), msg...)
		gc := append([]byte(nil), check...)
		pos := rng.Intn(10)
		flip := byte(rng.Intn(255) + 1)
		if pos < 8 {
			gm[pos] ^= flip
		} else {
			gc[pos-8] ^= flip
		}
		n, ok := rs.Decode(gm, gc)
		if !ok || n != 1 {
			t.Fatalf("trial %d: single symbol error at %d not corrected (n=%d ok=%v)", trial, pos, n, ok)
		}
		if !bytes.Equal(gm, msg) {
			t.Fatalf("trial %d: miscorrected message", trial)
		}
	}
}

func TestRSDoubleSymbolDetection(t *testing.T) {
	rs, _ := NewRS(8, 2)
	rng := rand.New(rand.NewSource(4))
	detected := 0
	const trials = 5000
	for trial := 0; trial < trials; trial++ {
		msg := make([]byte, 8)
		rng.Read(msg)
		check := rs.Encode(msg)
		gm := append([]byte(nil), msg...)
		gc := append([]byte(nil), check...)
		p1 := rng.Intn(10)
		p2 := rng.Intn(10)
		for p2 == p1 {
			p2 = rng.Intn(10)
		}
		for _, p := range []int{p1, p2} {
			flip := byte(rng.Intn(255) + 1)
			if p < 8 {
				gm[p] ^= flip
			} else {
				gc[p-8] ^= flip
			}
		}
		_, ok := rs.Decode(gm, gc)
		if !ok {
			detected++
		} else if !bytes.Equal(gm, msg) {
			// Miscorrection: possible for a distance-3 code with two
			// errors, but it must be rare enough that Soteria's MAC
			// layer catches it (the paper relies on this layering).
			continue
		}
	}
	if detected < trials*90/100 {
		t.Fatalf("RS(10,8) detected only %d/%d double-symbol errors", detected, trials)
	}
}

func TestRSWiderCodeCorrectsTwo(t *testing.T) {
	rs, err := NewRS(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		msg := make([]byte, 16)
		rng.Read(msg)
		check := rs.Encode(msg)
		gm := append([]byte(nil), msg...)
		gc := append([]byte(nil), check...)
		p1 := rng.Intn(20)
		p2 := rng.Intn(20)
		for p2 == p1 {
			p2 = rng.Intn(20)
		}
		for _, p := range []int{p1, p2} {
			flip := byte(rng.Intn(255) + 1)
			if p < 16 {
				gm[p] ^= flip
			} else {
				gc[p-16] ^= flip
			}
		}
		n, ok := rs.Decode(gm, gc)
		if !ok || n != 2 || !bytes.Equal(gm, msg) {
			t.Fatalf("trial %d: RS(20,16) failed to correct 2 errors (n=%d ok=%v)", trial, n, ok)
		}
	}
}

func TestChipkillChipFailure(t *testing.T) {
	ck := NewChipkill()
	line := make([]byte, 64)
	rng := rand.New(rand.NewSource(6))
	rng.Read(line)
	check := ck.Encode(line)

	// A whole-chip failure corrupts byte lane `chip` in every beat.
	got := append([]byte(nil), line...)
	gc := append([]byte(nil), check...)
	chip := 3
	for beat := 0; beat < 8; beat++ {
		got[beat*8+chip] ^= byte(0xA5)
	}
	res := ck.Decode(got, gc)
	if res.Uncorrectable || !res.Corrected || res.SymbolsCorrected != 8 {
		t.Fatalf("single-chip failure not corrected: %+v", res)
	}
	if !bytes.Equal(got, line) {
		t.Fatal("chipkill decode produced wrong data")
	}

	// Failures on two chips are uncorrectable.
	got = append([]byte(nil), line...)
	gc = append([]byte(nil), check...)
	for beat := 0; beat < 8; beat++ {
		got[beat*8+2] ^= 0x5A
		got[beat*8+6] ^= 0x77
	}
	res = ck.Decode(got, gc)
	if !res.Uncorrectable {
		t.Fatalf("double-chip failure not detected: %+v", res)
	}
}

func TestChipkillECCChipFailure(t *testing.T) {
	ck := NewChipkill()
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i)
	}
	check := ck.Encode(line)
	got := append([]byte(nil), line...)
	gc := append([]byte(nil), check...)
	// Kill one ECC device (check byte lane 0 of every beat).
	for beat := 0; beat < 8; beat++ {
		gc[beat*2] ^= 0xFF
	}
	res := ck.Decode(got, gc)
	if res.Uncorrectable || !bytes.Equal(got, line) {
		t.Fatalf("ECC-chip failure not transparent: %+v", res)
	}
}

func TestNoECC(t *testing.T) {
	var n NoECC
	if n.CheckBytes() != 0 || n.Encode(nil) != nil {
		t.Fatal("NoECC must be a true no-op")
	}
	res := n.Decode(make([]byte, 64), nil)
	if res.Corrected || res.Uncorrectable {
		t.Fatal("NoECC flagged an error")
	}
}

func BenchmarkSECDEDEncodeLine(b *testing.B) {
	var codec SECDED
	line := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		codec.Encode(line)
	}
}

func BenchmarkChipkillDecodeClean(b *testing.B) {
	ck := NewChipkill()
	line := make([]byte, 64)
	check := ck.Encode(line)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		ck.Decode(line, check)
	}
}
