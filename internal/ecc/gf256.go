// Package ecc implements the error-correction substrate the Soteria
// reproduction runs on: a real Hamming SECDED(72,64) code, a Reed-Solomon
// code over GF(2^8) arranged as a Chipkill-Correct line codec, and a
// no-op codec for non-protected configurations. The codecs are functional —
// they genuinely encode check bytes and correct/detect injected bit errors —
// so the fault-handling pipeline of the paper (Fig 9) can be exercised end
// to end rather than modelled probabilistically.
package ecc

// GF(2^8) arithmetic with the conventional primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same field used by standard RS
// implementations (CD/DVD, RAID-6).

const gfPoly = 0x11D

var (
	gfExp [512]byte // gfExp[i] = alpha^i, doubled to avoid mod in mul
	gfLog [256]byte // gfLog[alpha^i] = i
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b. Division by zero panics, as it indicates a decoder
// bug rather than an input condition.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ecc: GF(256) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow raises alpha^i for non-negative i.
func gfPow(i int) byte { return gfExp[i%255] }

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte { return gfDiv(1, a) }

// polyEval evaluates a polynomial (coefficients highest-degree first) at x.
func polyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = gfMul(y, x) ^ c
	}
	return y
}

// polyMul multiplies two polynomials (highest-degree first).
func polyMul(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			out[i+j] ^= gfMul(ca, cb)
		}
	}
	return out
}
