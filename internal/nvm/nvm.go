// Package nvm models a byte-accurate non-volatile main memory built from
// 64-byte lines, each protected by a pluggable ECC codec. The device is the
// persistence substrate for the whole reproduction: the secure memory
// controller stores data, counters, tree nodes, MACs, the Anubis shadow
// region and Soteria's clone regions in it, and the fault-injection API lets
// tests and experiments plant correctable and uncorrectable errors anywhere.
//
// Storage is sparse: only lines that have been written (or faulted)
// materialize, so a nominally 16 GB device costs memory proportional to its
// touched footprint.
package nvm

import (
	"fmt"

	"soteria/internal/config"
	"soteria/internal/ecc"
	"soteria/internal/inject"
	"soteria/internal/telemetry"
)

// LineSize is the NVM line size in bytes (one cache line).
const LineSize = config.BlockSize

// Line is one 64-byte memory line. It is an alias (not a distinct type) so
// lines interconvert freely with the [64]byte buffers used by the crypto
// and tree layers.
type Line = [LineSize]byte

// storedLine couples a line's raw cells with its stored ECC check bytes and
// any stuck-at faults that re-assert themselves after every write.
type storedLine struct {
	data  Line
	check []byte
	// stuckMask/stuckVal describe permanently faulty cells: after any
	// write, bits in stuckMask take the value in stuckVal.
	stuckMask *Line
	stuckVal  *Line
}

// Stats aggregates device activity.
type Stats struct {
	Reads             uint64
	Writes            uint64
	CorrectedLines    uint64
	UncorrectableHits uint64
}

// Device is the simulated NVM module.
type Device struct {
	capacity uint64 // bytes
	codec    ecc.Codec
	lines    map[uint64]*storedLine
	stats    Stats
	wear     map[uint64]uint64 // line index -> write count

	// ECP state (EnableECP).
	ecpBudget    int
	ecp          map[uint64][]ecpEntry
	ecpExhausted uint64

	// hook, when set, observes every write boundary (chaos injection).
	hook inject.Hook
	tel  telemetryHooks

	// encBuf/rdBuf shield the read/write hot paths from interface-escape
	// allocations: slices passed through the ecc.Codec interface are
	// assumed by the compiler to escape, so the device copies line data
	// through these owned buffers instead of handing out caller (or
	// stack) pointers. The device, like the controller driving it, is
	// single-goroutine.
	encBuf Line
	rdBuf  Line
}

// telemetryHooks holds the device's metric handles; nil handles (no
// registry attached) are no-ops.
type telemetryHooks struct {
	reads         *telemetry.Counter
	writes        *telemetry.Counter
	corrected     *telemetry.Counter
	uncorrectable *telemetry.Counter
}

// AttachTelemetry registers the device's metrics on r (nil detaches).
func (d *Device) AttachTelemetry(r *telemetry.Registry) {
	if r == nil {
		d.tel = telemetryHooks{}
		return
	}
	d.tel = telemetryHooks{
		reads:         r.Counter("nvm_reads_total"),
		writes:        r.Counter("nvm_writes_total"),
		corrected:     r.Counter("nvm_corrected_lines_total"),
		uncorrectable: r.Counter("nvm_uncorrectable_hits_total"),
	}
}

// SetWriteHook installs (or, with nil, removes) the injection hook fired
// before every line write is applied. A hook that panics with
// inject.PowerLoss models losing power before the write: the array keeps
// its previous contents.
func (d *Device) SetWriteHook(h inject.Hook) { d.hook = h }

// NewDevice creates an NVM device of the given capacity protected by codec.
// Capacity must be a positive multiple of the line size.
func NewDevice(capacity uint64, codec ecc.Codec) (*Device, error) {
	if capacity == 0 || capacity%LineSize != 0 {
		return nil, fmt.Errorf("nvm: capacity %d must be a positive multiple of %d", capacity, LineSize)
	}
	if codec == nil {
		codec = ecc.NoECC{}
	}
	return &Device{
		capacity: capacity,
		codec:    codec,
		lines:    make(map[uint64]*storedLine),
		wear:     make(map[uint64]uint64),
	}, nil
}

// Capacity returns the device capacity in bytes.
func (d *Device) Capacity() uint64 { return d.capacity }

// Codec returns the ECC codec protecting the device.
func (d *Device) Codec() ecc.Codec { return d.codec }

// Lines returns the number of addressable lines.
func (d *Device) Lines() uint64 { return d.capacity / LineSize }

// Stats returns a copy of the accumulated device statistics.
func (d *Device) Stats() Stats { return d.stats }

// WearOf returns the write count of the line containing addr.
func (d *Device) WearOf(addr uint64) uint64 { return d.wear[addr/LineSize] }

// TouchedLines returns how many lines have materialized storage.
func (d *Device) TouchedLines() int { return len(d.lines) }

// Materialized reports whether the line containing addr has ever been
// written or faulted. The secure controller uses this for cold-read
// semantics: a never-touched line reads as zeroes without verification.
func (d *Device) Materialized(addr uint64) bool {
	_, ok := d.lines[addr/LineSize]
	return ok
}

// ForEachTouched visits every materialized line address in unspecified
// order (test and verification walks only).
func (d *Device) ForEachTouched(fn func(lineAddr uint64)) {
	for idx := range d.lines {
		fn(idx * LineSize)
	}
}

func (d *Device) checkAddr(addr uint64) uint64 {
	if addr%LineSize != 0 {
		panic(fmt.Sprintf("nvm: unaligned line address %#x", addr))
	}
	if addr >= d.capacity {
		panic(fmt.Sprintf("nvm: address %#x beyond capacity %#x", addr, d.capacity))
	}
	return addr / LineSize
}

// line returns the stored line, materializing a zero line when absent.
func (d *Device) line(idx uint64) *storedLine {
	l, ok := d.lines[idx]
	if !ok {
		l = &storedLine{}
		l.check = d.codec.Encode(l.data[:])
		d.lines[idx] = l
	}
	return l
}

// Write stores one line at the given (aligned) byte address, regenerating
// its ECC check bytes. Stuck-at cells re-assert their faulty values after
// the write, exactly like worn-out PCM cells.
func (d *Device) Write(addr uint64, data *Line) {
	idx := d.checkAddr(addr)
	if d.hook != nil {
		d.hook.Event(inject.Event{Kind: inject.DeviceWrite, Addr: addr})
	}
	l := d.line(idx)
	// The controller computes ECC over the data it sends; stuck cells
	// then corrupt the stored copy, so the check bytes reflect the
	// intended value while the array holds the faulty one. The stored
	// check buffer is reused across writes.
	d.encBuf = *data
	if len(l.check) != d.codec.CheckBytes() {
		l.check = make([]byte, d.codec.CheckBytes())
	}
	d.codec.EncodeInto(l.check, d.encBuf[:])
	l.data = *data
	if l.stuckMask != nil {
		for i := range l.data {
			l.data[i] = (l.data[i] &^ l.stuckMask[i]) | (l.stuckVal[i] & l.stuckMask[i])
		}
		// Write-verify: ECP allocates pointers for the cells that did
		// not take the new value.
		d.ecpRepairAfterWrite(idx, data, l)
	} else if d.ecpBudget > 0 {
		delete(d.ecp, idx) // healthy write; retire stale pointers
	}
	d.stats.Writes++
	d.tel.writes.Inc()
	d.wear[idx]++
}

// ReadResult describes one line read.
type ReadResult struct {
	// Data is the post-ECC line contents. When Uncorrectable is true the
	// data is the raw (corrupt) cell contents and must not be trusted.
	Data Line
	// Corrected is true when ECC repaired at least one symbol.
	Corrected bool
	// Uncorrectable is true when the line holds a detected
	// uncorrectable error.
	Uncorrectable bool
	// BadWords lists 8-byte words that failed to decode (per-codeword
	// granularity used by Soteria's duplicated shadow entries).
	BadWords []int
}

// Read fetches one line, running ECC decode. Reads of never-written lines
// return zeroes.
func (d *Device) Read(addr uint64) ReadResult {
	idx := d.checkAddr(addr)
	d.stats.Reads++
	d.tel.reads.Inc()
	l, ok := d.lines[idx]
	if !ok {
		return ReadResult{}
	}
	buf := &d.rdBuf
	*buf = l.data
	d.ecpApply(idx, buf)
	res := d.codec.Decode(buf[:], l.check)
	if res.Corrected {
		d.stats.CorrectedLines++
		d.tel.corrected.Inc()
		// A patrol-scrub style write-back of the corrected value keeps
		// correctable faults from accumulating, mirroring real
		// controllers (demand scrubbing).
		l.data = *buf
		d.codec.EncodeInto(l.check, buf[:])
	}
	if res.Uncorrectable {
		d.stats.UncorrectableHits++
		d.tel.uncorrectable.Inc()
	}
	return ReadResult{
		Data:          *buf,
		Corrected:     res.Corrected,
		Uncorrectable: res.Uncorrectable,
		BadWords:      res.BadWords,
	}
}

// ReadRaw returns the raw cell contents without ECC decoding (used by
// recovery paths that want to inspect a corrupt line's surviving words).
func (d *Device) ReadRaw(addr uint64) Line {
	idx := d.checkAddr(addr)
	if l, ok := d.lines[idx]; ok {
		return l.data
	}
	return Line{}
}

// --- Fault injection -------------------------------------------------------

// FlipBit flips a single data bit: addr addresses the byte, bit the bit
// within it. Under SECDED this is correctable; the next Read repairs it.
func (d *Device) FlipBit(addr uint64, bit uint) {
	idx := addr / LineSize
	d.checkAddr(idx * LineSize)
	l := d.line(idx)
	l.data[addr%LineSize] ^= 1 << (bit % 8)
}

// FlipCheckBit flips one bit of the stored ECC check bytes of the line at
// the given line-aligned address.
func (d *Device) FlipCheckBit(addr uint64, byteIdx int, bit uint) {
	idx := d.checkAddr(addr)
	l := d.line(idx)
	if len(l.check) == 0 {
		return
	}
	l.check[byteIdx%len(l.check)] ^= 1 << (bit % 8)
}

// CorruptWord plants a detectably uncorrectable error in 8-byte word w of
// the line at addr by flipping several bits across distinct symbol lanes.
// Tests assert that both SECDED and Chipkill report it uncorrectable.
func (d *Device) CorruptWord(addr uint64, w int) {
	idx := d.checkAddr(addr)
	l := d.line(idx)
	w = w % 8
	// Flip exactly two bits in two different byte lanes of the word:
	// a double-bit error for SECDED (detected, not corrected) and a
	// double-symbol error for Chipkill (ditto).
	l.data[w*8+0] ^= 0x01
	l.data[w*8+3] ^= 0x80
}

// CorruptLine plants an uncorrectable error in every word of the line —
// the "node is gone" case of Fig 9 step 4.
func (d *Device) CorruptLine(addr uint64) {
	for w := 0; w < 8; w++ {
		d.CorruptWord(addr, w)
	}
}

// StickBits makes the masked bits of the line at addr permanently stuck at
// the corresponding value bits: every subsequent write re-asserts them,
// modelling worn-out PCM cells.
func (d *Device) StickBits(addr uint64, mask, val *Line) {
	idx := d.checkAddr(addr)
	l := d.line(idx)
	if l.stuckMask == nil {
		l.stuckMask = &Line{}
		l.stuckVal = &Line{}
	}
	for i := range mask {
		l.stuckMask[i] |= mask[i]
		l.stuckVal[i] = (l.stuckVal[i] &^ mask[i]) | (val[i] & mask[i])
	}
	// Assert immediately on current contents.
	for i := range l.data {
		l.data[i] = (l.data[i] &^ l.stuckMask[i]) | (l.stuckVal[i] & l.stuckMask[i])
	}
}

// ClearFaults removes all injected faults and re-encodes every materialized
// line's ECC from its current contents (a repair-everything escape hatch
// for experiments).
func (d *Device) ClearFaults() {
	for _, l := range d.lines {
		l.stuckMask, l.stuckVal = nil, nil
		l.check = d.codec.Encode(l.data[:])
	}
}
