package nvm

import (
	"testing"

	"soteria/internal/ecc"
)

func stickOneBit(d *Device, addr uint64, byteIdx int, bit uint, val bool) {
	var mask, v Line
	mask[byteIdx] = 1 << bit
	if val {
		v[byteIdx] = 1 << bit
	}
	d.StickBits(addr, &mask, &v)
}

func TestECPRepairsStuckCell(t *testing.T) {
	d, _ := NewDevice(1<<16, ecc.SECDED{})
	d.EnableECP(6)
	// A cell stuck at 1 in byte 10.
	stickOneBit(d, 0, 10, 3, true)
	var l Line // all zeroes: the stuck cell will disagree
	d.Write(0, &l)
	r := d.Read(0)
	if r.Corrected || r.Uncorrectable {
		t.Fatalf("ECP should hide the stuck cell from ECC entirely: %+v", r)
	}
	if r.Data != l {
		t.Fatal("stuck cell visible despite ECP")
	}
	st := d.ECPStats()
	if st.LinesRepaired != 1 || st.PointersUsed != 1 {
		t.Fatalf("ECP stats %+v", st)
	}
}

func TestECPHandlesMultipleCellsUpToBudget(t *testing.T) {
	d, _ := NewDevice(1<<16, ecc.SECDED{})
	d.EnableECP(6)
	for i := 0; i < 6; i++ {
		stickOneBit(d, 64, i*8, uint(i), true)
	}
	var l Line
	d.Write(64, &l)
	r := d.Read(64)
	if r.Data != l || r.Uncorrectable {
		t.Fatalf("6 stuck cells within ECP-6 budget not repaired: %+v", r)
	}
	if d.ECPStats().PointersUsed != 6 {
		t.Fatalf("pointers = %d", d.ECPStats().PointersUsed)
	}
}

func TestECPExhaustionFallsThroughToECC(t *testing.T) {
	d, _ := NewDevice(1<<16, ecc.SECDED{})
	d.EnableECP(2)
	// Three stuck cells in three different words: exceeds ECP-2; SECDED
	// then sees one bad bit per word and corrects each.
	stickOneBit(d, 0, 0, 0, true)
	stickOneBit(d, 0, 8, 1, true)
	stickOneBit(d, 0, 16, 2, true)
	var l Line
	d.Write(0, &l)
	if d.ECPStats().Exhausted != 1 {
		t.Fatalf("exhaustion not counted: %+v", d.ECPStats())
	}
	r := d.Read(0)
	if r.Uncorrectable {
		t.Fatal("per-word single-bit damage should be ECC-correctable")
	}
	if !r.Corrected || r.Data != l {
		t.Fatalf("ECC fallback failed: %+v", r)
	}
}

func TestECPExhaustionBeyondECC(t *testing.T) {
	d, _ := NewDevice(1<<16, ecc.SECDED{})
	d.EnableECP(1)
	// Two stuck cells in the SAME word: ECP-1 cannot hold them, SECDED
	// cannot correct a double-bit word.
	stickOneBit(d, 0, 0, 0, true)
	stickOneBit(d, 0, 1, 1, true)
	var l Line
	d.Write(0, &l)
	r := d.Read(0)
	if !r.Uncorrectable {
		t.Fatal("double stuck bits in one word must be uncorrectable past ECP-1")
	}
}

func TestECPPointersRetiredOnHealthyWrite(t *testing.T) {
	d, _ := NewDevice(1<<16, ecc.SECDED{})
	d.EnableECP(6)
	stickOneBit(d, 0, 5, 5, true)
	var l Line
	d.Write(0, &l)
	if d.ECPStats().PointersUsed != 1 {
		t.Fatal("pointer not allocated")
	}
	// Write a value the stuck cell happens to agree with: the pointer
	// becomes unnecessary and is retired.
	l[5] = 0x20
	d.Write(0, &l)
	if d.ECPStats().PointersUsed != 0 {
		t.Fatalf("stale pointer kept: %+v", d.ECPStats())
	}
	if r := d.Read(0); r.Data != l || r.Corrected || r.Uncorrectable {
		t.Fatalf("agreeing write broken: %+v", r)
	}
}

func TestECPDisabledIsInert(t *testing.T) {
	d, _ := NewDevice(1<<16, ecc.SECDED{})
	stickOneBit(d, 0, 0, 0, true)
	var l Line
	d.Write(0, &l)
	r := d.Read(0)
	// Without ECP the single stuck bit reaches ECC (correctable).
	if !r.Corrected {
		t.Fatalf("expected ECC correction without ECP: %+v", r)
	}
	if d.ECPStats().PointersUsed != 0 {
		t.Fatal("phantom ECP activity")
	}
}
