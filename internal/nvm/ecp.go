package nvm

// Error-Correcting Pointers (ECP — Schechter et al., ISCA 2010), the
// hard-error repair mechanism the paper names alongside ECC in §2.3. Unlike
// ECC, which decodes on every read, ECP works at *write* time: the
// controller writes a line, reads it back, and for every cell that failed
// to take the new value it allocates a pointer (bit position) plus a
// replacement bit. Reads substitute the replacement bits before ECC ever
// sees the line, so a line with a few worn-out cells keeps working until
// its pointer budget is exhausted.

// ecpEntry is one repaired cell.
type ecpEntry struct {
	bit uint16 // bit position within the 512-bit line
	val bool   // the value the dead cell should present
}

// ECPStats reports ECP activity.
type ECPStats struct {
	// LinesRepaired counts lines with at least one allocated pointer.
	LinesRepaired int
	// PointersUsed counts allocated pointers across all lines.
	PointersUsed int
	// Exhausted counts write-backs that found more failed cells than
	// the per-line pointer budget (the line then stores corrupt data
	// and must be caught by ECC/MAC layers or retired).
	Exhausted uint64
}

// EnableECP activates ECP with the given per-line pointer budget (ECP-6 is
// the configuration from the original paper). Must be called before any
// faults are injected; pointersPerLine <= 0 disables.
func (d *Device) EnableECP(pointersPerLine int) {
	d.ecpBudget = pointersPerLine
	if d.ecp == nil {
		d.ecp = make(map[uint64][]ecpEntry)
	}
}

// ECPStats returns a snapshot of ECP activity.
func (d *Device) ECPStats() ECPStats {
	s := ECPStats{Exhausted: d.ecpExhausted}
	for _, entries := range d.ecp {
		if len(entries) > 0 {
			s.LinesRepaired++
			s.PointersUsed += len(entries)
		}
	}
	return s
}

// ecpRepairAfterWrite runs the write-verify step: diff the intended line
// against the stored cells and allocate pointers for cells that did not
// take the value. Returns true when the line now reads back correctly
// (possibly via pointers).
func (d *Device) ecpRepairAfterWrite(idx uint64, intended *Line, l *storedLine) bool {
	if d.ecpBudget <= 0 {
		return false
	}
	var entries []ecpEntry
	for byteIdx := 0; byteIdx < LineSize; byteIdx++ {
		diff := intended[byteIdx] ^ l.data[byteIdx]
		for bit := uint16(0); diff != 0; bit++ {
			if diff&1 != 0 {
				entries = append(entries, ecpEntry{
					bit: uint16(byteIdx)*8 + bit,
					val: intended[byteIdx]&(1<<bit) != 0,
				})
			}
			diff >>= 1
		}
	}
	if len(entries) == 0 {
		delete(d.ecp, idx)
		return false
	}
	if len(entries) > d.ecpBudget {
		d.ecpExhausted++
		delete(d.ecp, idx) // stale pointers would mask the real damage
		return false
	}
	d.ecp[idx] = entries
	return true
}

// ecpApply substitutes repaired cells into a line image before ECC decode.
func (d *Device) ecpApply(idx uint64, buf *Line) {
	if d.ecpBudget <= 0 {
		return
	}
	for _, e := range d.ecp[idx] {
		byteIdx, bit := e.bit/8, e.bit%8
		if e.val {
			buf[byteIdx] |= 1 << bit
		} else {
			buf[byteIdx] &^= 1 << bit
		}
	}
}
