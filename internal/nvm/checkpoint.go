package nvm

import (
	"fmt"
	"sort"

	"soteria/internal/sim"
)

// Checkpoint serializes the full device image — materialized lines with
// their stored ECC check bytes and stuck-at faults, wear counts, ECP state
// and statistics — in deterministic (sorted line index) order. The hook and
// telemetry handles are runtime wiring and are not part of the image.
func (d *Device) Checkpoint(w *sim.SnapW) {
	w.U64(d.capacity)
	w.U32(uint32(d.codec.CheckBytes()))

	w.U64(d.stats.Reads)
	w.U64(d.stats.Writes)
	w.U64(d.stats.CorrectedLines)
	w.U64(d.stats.UncorrectableHits)

	idxs := make([]uint64, 0, len(d.lines))
	for idx := range d.lines {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	w.U32(uint32(len(idxs)))
	for _, idx := range idxs {
		l := d.lines[idx]
		w.U64(idx)
		w.Raw(l.data[:])
		w.Bytes(l.check)
		w.Bool(l.stuckMask != nil)
		if l.stuckMask != nil {
			w.Raw(l.stuckMask[:])
			w.Raw(l.stuckVal[:])
		}
	}

	wearIdxs := make([]uint64, 0, len(d.wear))
	for idx := range d.wear {
		wearIdxs = append(wearIdxs, idx)
	}
	sort.Slice(wearIdxs, func(i, j int) bool { return wearIdxs[i] < wearIdxs[j] })
	w.U32(uint32(len(wearIdxs)))
	for _, idx := range wearIdxs {
		w.U64(idx)
		w.U64(d.wear[idx])
	}

	w.I64(int64(d.ecpBudget))
	w.U64(d.ecpExhausted)
	ecpIdxs := make([]uint64, 0, len(d.ecp))
	for idx := range d.ecp {
		ecpIdxs = append(ecpIdxs, idx)
	}
	sort.Slice(ecpIdxs, func(i, j int) bool { return ecpIdxs[i] < ecpIdxs[j] })
	w.U32(uint32(len(ecpIdxs)))
	for _, idx := range ecpIdxs {
		entries := d.ecp[idx]
		w.U64(idx)
		w.U32(uint32(len(entries)))
		for _, e := range entries {
			w.U16(e.bit)
			w.Bool(e.val)
		}
	}
}

// Restore replaces the device image with a Checkpoint written by a device
// of identical capacity and codec. On any decode error the reader is
// poisoned and the device may hold a partial image; callers treat a failed
// restore as fatal for the target.
func (d *Device) Restore(r *sim.SnapR) error {
	if c := r.U64(); c != d.capacity {
		return fmt.Errorf("nvm: checkpoint capacity %d, device has %d", c, d.capacity)
	}
	if cb := r.U32(); int(cb) != d.codec.CheckBytes() {
		return fmt.Errorf("nvm: checkpoint check-byte width %d, codec has %d", cb, d.codec.CheckBytes())
	}

	d.stats.Reads = r.U64()
	d.stats.Writes = r.U64()
	d.stats.CorrectedLines = r.U64()
	d.stats.UncorrectableHits = r.U64()

	maxIdx := d.capacity / LineSize
	nLines := r.Count(LineSize + 5)
	d.lines = make(map[uint64]*storedLine, nLines)
	for i := 0; i < nLines; i++ {
		idx := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		if idx >= maxIdx {
			return fmt.Errorf("nvm: checkpoint line index %d beyond capacity", idx)
		}
		l := &storedLine{}
		copy(l.data[:], r.Raw(LineSize))
		check := r.Bytes()
		if r.Err() == nil && len(check) != d.codec.CheckBytes() {
			return fmt.Errorf("nvm: checkpoint line %d has %d check bytes, codec wants %d", idx, len(check), d.codec.CheckBytes())
		}
		l.check = append([]byte(nil), check...)
		if r.Bool() {
			l.stuckMask, l.stuckVal = &Line{}, &Line{}
			copy(l.stuckMask[:], r.Raw(LineSize))
			copy(l.stuckVal[:], r.Raw(LineSize))
		}
		d.lines[idx] = l
	}

	nWear := r.Count(16)
	d.wear = make(map[uint64]uint64, nWear)
	for i := 0; i < nWear; i++ {
		idx := r.U64()
		d.wear[idx] = r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		if idx >= maxIdx {
			return fmt.Errorf("nvm: checkpoint wear index %d beyond capacity", idx)
		}
	}

	d.ecpBudget = int(r.I64())
	d.ecpExhausted = r.U64()
	nECP := r.Count(12)
	d.ecp = nil
	if d.ecpBudget > 0 || nECP > 0 {
		d.ecp = make(map[uint64][]ecpEntry, nECP)
	}
	for i := 0; i < nECP; i++ {
		idx := r.U64()
		nEnt := r.Count(3)
		if r.Err() != nil {
			return r.Err()
		}
		if idx >= maxIdx {
			return fmt.Errorf("nvm: checkpoint ECP index %d beyond capacity", idx)
		}
		entries := make([]ecpEntry, nEnt)
		for j := range entries {
			entries[j] = ecpEntry{bit: r.U16(), val: r.Bool()}
		}
		d.ecp[idx] = entries
	}
	return r.Err()
}
