package nvm

import (
	"testing"
	"testing/quick"

	"soteria/internal/ecc"
)

func newDev(t *testing.T, codec ecc.Codec) *Device {
	t.Helper()
	d, err := NewDevice(1<<20, codec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceRejectsBadCapacity(t *testing.T) {
	if _, err := NewDevice(0, nil); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewDevice(100, nil); err == nil {
		t.Fatal("unaligned capacity accepted")
	}
}

func TestReadOfUnwrittenLineIsZero(t *testing.T) {
	d := newDev(t, ecc.SECDED{})
	res := d.Read(128)
	if res.Corrected || res.Uncorrectable {
		t.Fatalf("unexpected flags: %+v", res)
	}
	if res.Data != (Line{}) {
		t.Fatal("unwritten line not zero")
	}
	if d.TouchedLines() != 0 {
		t.Fatal("read materialized storage")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newDev(t, ecc.SECDED{})
	f := func(seed [LineSize]byte, lineIdx uint16) bool {
		addr := uint64(lineIdx) % d.Lines() * LineSize
		l := Line(seed)
		d.Write(addr, &l)
		res := d.Read(addr)
		return res.Data == l && !res.Corrected && !res.Uncorrectable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitIsCorrectedBySECDED(t *testing.T) {
	d := newDev(t, ecc.SECDED{})
	var l Line
	for i := range l {
		l[i] = byte(i)
	}
	d.Write(0, &l)
	d.FlipBit(17, 3)
	res := d.Read(0)
	if !res.Corrected || res.Uncorrectable {
		t.Fatalf("flip not corrected: %+v", res)
	}
	if res.Data != l {
		t.Fatal("corrected data wrong")
	}
	// Demand scrub: a second read sees a clean line.
	res = d.Read(0)
	if res.Corrected || res.Uncorrectable {
		t.Fatalf("scrub did not persist correction: %+v", res)
	}
	if d.Stats().CorrectedLines != 1 {
		t.Fatalf("corrected-lines stat = %d, want 1", d.Stats().CorrectedLines)
	}
}

func TestCorruptWordIsUncorrectable(t *testing.T) {
	for _, codec := range []ecc.Codec{ecc.SECDED{}, ecc.NewChipkill()} {
		d := newDev(t, codec)
		var l Line
		d.Write(64, &l)
		d.CorruptWord(64, 2)
		res := d.Read(64)
		if !res.Uncorrectable {
			t.Fatalf("%s: corrupt word not flagged", codec.Name())
		}
		if len(res.BadWords) != 1 || res.BadWords[0] != 2 {
			t.Fatalf("%s: bad words %v, want [2]", codec.Name(), res.BadWords)
		}
		if d.Stats().UncorrectableHits != 1 {
			t.Fatalf("%s: uncorrectable stat wrong", codec.Name())
		}
	}
}

func TestCorruptLineAllWordsBad(t *testing.T) {
	d := newDev(t, ecc.SECDED{})
	var l Line
	d.Write(0, &l)
	d.CorruptLine(0)
	res := d.Read(0)
	if !res.Uncorrectable || len(res.BadWords) != 8 {
		t.Fatalf("corrupt line: %+v", res)
	}
}

func TestOverwriteHealsInjectedFault(t *testing.T) {
	d := newDev(t, ecc.SECDED{})
	var l Line
	d.Write(0, &l)
	d.CorruptWord(0, 0)
	l[0] = 0xAB
	d.Write(0, &l) // transient fault overwritten
	res := d.Read(0)
	if res.Uncorrectable || res.Corrected || res.Data != l {
		t.Fatalf("overwrite did not heal: %+v", res)
	}
}

func TestStuckBitsPersistAcrossWrites(t *testing.T) {
	d := newDev(t, ecc.SECDED{})
	var mask, val Line
	mask[5] = 0x0F
	val[5] = 0x0A
	d.StickBits(0, &mask, &val)
	var l Line
	l[5] = 0xF0
	d.Write(0, &l)
	res := d.Read(0)
	// Stored byte 5 = intended high nibble | stuck low nibble = 0xFA;
	// check bytes cover 0xF0, so ECC sees a multi-bit mismatch.
	raw := d.ReadRaw(0)
	if raw[5] != 0xFA {
		t.Fatalf("stuck cells not asserted: %#x", raw[5])
	}
	if !res.Corrected && !res.Uncorrectable {
		t.Fatal("stuck-at corruption invisible to ECC")
	}
}

func TestWearTracking(t *testing.T) {
	d := newDev(t, nil)
	var l Line
	for i := 0; i < 5; i++ {
		d.Write(192, &l)
	}
	if d.WearOf(192) != 5 || d.WearOf(200) != 5 {
		t.Fatalf("wear = %d, want 5", d.WearOf(192))
	}
	if d.WearOf(0) != 0 {
		t.Fatal("untouched line has wear")
	}
}

func TestNoECCPassesCorruptionThrough(t *testing.T) {
	d := newDev(t, ecc.NoECC{})
	var l Line
	d.Write(0, &l)
	d.FlipBit(0, 0)
	res := d.Read(0)
	if res.Corrected || res.Uncorrectable {
		t.Fatal("NoECC reported a flag")
	}
	if res.Data[0] != 1 {
		t.Fatal("corruption did not pass through")
	}
}

func TestPanicsOnBadAddress(t *testing.T) {
	d := newDev(t, nil)
	for _, fn := range []func(){
		func() { d.Read(13) },
		func() { var l Line; d.Write(1<<20, &l) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
