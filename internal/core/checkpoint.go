package core

import (
	"soteria/internal/sim"
)

// Checkpoint serializes the fault handler's accumulated statistics (its
// only mutable state — the memory and layout are owned elsewhere).
func (h *FaultHandler) Checkpoint(w *sim.SnapW) {
	w.U64(h.stats.Reads)
	w.U64(h.stats.CloneLookups)
	w.U64(h.stats.Repairs)
	w.U64(h.stats.TamperDetections)
	w.U64(h.stats.UnverifiableNodes)
	w.U64(h.stats.UnverifiableBytes)
	w.U64(h.stats.EventsDropped)
	w.U32(uint32(len(h.stats.Events)))
	for _, e := range h.stats.Events {
		w.I64(int64(e.Level))
		w.U64(e.Index)
		w.U64(e.Bytes)
	}
}

// Restore loads a Checkpoint into the handler.
func (h *FaultHandler) Restore(r *sim.SnapR) error {
	h.stats.Reads = r.U64()
	h.stats.CloneLookups = r.U64()
	h.stats.Repairs = r.U64()
	h.stats.TamperDetections = r.U64()
	h.stats.UnverifiableNodes = r.U64()
	h.stats.UnverifiableBytes = r.U64()
	h.stats.EventsDropped = r.U64()
	n := r.Count(24)
	if r.Err() != nil {
		return r.Err()
	}
	h.stats.Events = make([]LossEvent, n)
	for i := range h.stats.Events {
		h.stats.Events[i] = LossEvent{
			Level: int(r.I64()),
			Index: r.U64(),
			Bytes: r.U64(),
		}
	}
	if len(h.stats.Events) == 0 {
		h.stats.Events = nil
	}
	return r.Err()
}
