package core

import (
	"testing"

	"soteria/internal/ecc"
	"soteria/internal/itree"
	"soteria/internal/nvm"
)

func TestTable2MatchesPaper(t *testing.T) {
	src, sac := Table2()
	wantSRC := []int{2, 2, 2, 2, 2, 2, 2, 2, 2}
	wantSAC := []int{2, 2, 3, 3, 4, 4, 4, 4, 5}
	for i := range wantSRC {
		if src[i] != wantSRC[i] {
			t.Fatalf("SRC level %d depth %d, want %d", i+1, src[i], wantSRC[i])
		}
		if sac[i] != wantSAC[i] {
			t.Fatalf("SAC level %d depth %d, want %d", i+1, sac[i], wantSAC[i])
		}
	}
}

func TestPolicyDepthBounds(t *testing.T) {
	for _, p := range []ClonePolicy{Baseline(), SRC(), SAC()} {
		for top := 1; top <= 12; top++ {
			for lvl := 1; lvl <= top; lvl++ {
				d := p.Depth(lvl, top)
				if d < 1 || d > MaxDepth {
					t.Fatalf("%s: depth %d at level %d/%d outside [1,%d]", p.Name, d, lvl, top, MaxDepth)
				}
			}
		}
	}
	if Baseline().Depth(3, 9) != 1 {
		t.Fatal("baseline must not clone")
	}
}

func TestSACMonotoneUpward(t *testing.T) {
	// SAC invests more (never less) redundancy as coverage grows.
	for top := 2; top <= 12; top++ {
		p := SAC()
		prev := 0
		for lvl := 1; lvl <= top; lvl++ {
			d := p.Depth(lvl, top)
			if d < prev {
				t.Fatalf("SAC depth decreases at level %d/%d", lvl, top)
			}
			prev = d
		}
	}
}

func TestCustomPolicy(t *testing.T) {
	p, err := Custom("x", []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth(1, 5) != 1 || p.Depth(2, 5) != 3 || p.Depth(5, 5) != 3 {
		t.Fatal("custom depth table misapplied")
	}
	if _, err := Custom("bad", []int{7}); err == nil {
		t.Fatal("depth above MaxDepth accepted")
	}
	if _, err := Custom("empty", nil); err == nil {
		t.Fatal("empty table accepted")
	}
}

// devMem adapts nvm.Device to the Mem interface.
type devMem struct{ dev *nvm.Device }

func (m devMem) ReadLine(addr uint64) (nvm.Line, bool) {
	r := m.dev.Read(addr)
	return r.Data, r.Uncorrectable
}
func (m devMem) WriteLine(addr uint64, line *nvm.Line) { m.dev.Write(addr, line) }

func handlerFixture(t *testing.T, policy ClonePolicy) (*FaultHandler, *itree.Layout, *nvm.Device) {
	t.Helper()
	lay, err := itree.NewLayout(itree.Params{
		DataBytes:    1 << 20,
		CounterArity: 64,
		TreeArity:    8,
		CloneDepths:  policy.Depths(2), // 1MB -> levels: 256 counters, 32 nodes... computed below
	})
	if err != nil {
		// Depth table length mismatch is fine; rebuild with the real
		// level count.
		t.Fatal(err)
	}
	lay, err = itree.NewLayout(itree.Params{
		DataBytes:    1 << 20,
		CounterArity: 64,
		TreeArity:    8,
		CloneDepths:  policy.Depths(lay.TopLevel()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDepths(lay, policy); err != nil {
		t.Fatal(err)
	}
	dev, err := nvm.NewDevice(lay.Total+nvm.LineSize, ecc.SECDED{})
	if err != nil {
		t.Fatal(err)
	}
	return NewFaultHandler(devMem{dev}, lay), lay, dev
}

func writeNode(lay *itree.Layout, dev *nvm.Device, level int, index uint64, line *nvm.Line) {
	for _, a := range lay.CopyAddrs(level, index) {
		dev.Write(a, line)
	}
}

func TestReadVerifiedClean(t *testing.T) {
	h, lay, dev := handlerFixture(t, SRC())
	var line nvm.Line
	line[0] = 0x11
	writeNode(lay, dev, 2, 3, &line)
	got, out := h.ReadVerified(2, 3, func(l *nvm.Line) bool { return l[0] == 0x11 })
	if out != OutcomeClean || got != line {
		t.Fatalf("outcome %v", out)
	}
}

func TestRepairFromCloneAfterUncorrectable(t *testing.T) {
	h, lay, dev := handlerFixture(t, SRC())
	var line nvm.Line
	line[7] = 0x42
	writeNode(lay, dev, 1, 5, &line)
	dev.CorruptLine(lay.NodeAddr(1, 5)) // home copy dies
	got, out := h.ReadVerified(1, 5, func(l *nvm.Line) bool { return l[7] == 0x42 })
	if out != OutcomeRepaired || got != line {
		t.Fatalf("outcome %v", out)
	}
	// Purify must have fixed the home copy.
	if r := dev.Read(lay.NodeAddr(1, 5)); r.Uncorrectable || r.Data != line {
		t.Fatal("home copy not purified")
	}
	if h.Stats().Repairs != 1 {
		t.Fatal("repair not counted")
	}
	// Next read is clean.
	if _, out := h.ReadVerified(1, 5, func(l *nvm.Line) bool { return l[7] == 0x42 }); out != OutcomeClean {
		t.Fatalf("post-repair outcome %v", out)
	}
}

func TestAllCopiesDeadIsUnverifiable(t *testing.T) {
	h, lay, dev := handlerFixture(t, SRC())
	var line nvm.Line
	writeNode(lay, dev, 2, 0, &line)
	for _, a := range lay.CopyAddrs(2, 0) {
		dev.CorruptLine(a)
	}
	_, out := h.ReadVerified(2, 0, func(l *nvm.Line) bool { return true })
	if out != OutcomeUnverifiable {
		t.Fatalf("outcome %v", out)
	}
	st := h.Stats()
	start, end := lay.CoverageOf(2, 0)
	if st.UnverifiableBytes != end-start {
		t.Fatalf("unverifiable bytes %d, want %d", st.UnverifiableBytes, end-start)
	}
	if st.UDR(lay.DataBytes) <= 0 {
		t.Fatal("UDR not positive")
	}
	if len(st.Events) != 1 || st.Events[0].Level != 2 {
		t.Fatalf("events %v", st.Events)
	}
}

func TestBaselineHasNoClonesToFallBackOn(t *testing.T) {
	h, lay, dev := handlerFixture(t, Baseline())
	var line nvm.Line
	writeNode(lay, dev, 2, 1, &line)
	dev.CorruptLine(lay.NodeAddr(2, 1))
	_, out := h.ReadVerified(2, 1, func(l *nvm.Line) bool { return true })
	if out != OutcomeUnverifiable {
		t.Fatalf("baseline outcome %v, want unverifiable", out)
	}
}

func TestReplayOfAllCopiesDetectedAsTamper(t *testing.T) {
	h, lay, dev := handlerFixture(t, SRC())
	var v1, v2 nvm.Line
	v1[0], v2[0] = 1, 2
	writeNode(lay, dev, 2, 2, &v1)
	// Legitimate update to v2...
	writeNode(lay, dev, 2, 2, &v2)
	// ...then the attacker replays v1 into every copy. ECC is clean, but
	// verification (which in the real controller checks the MAC under
	// the *current* parent counter) rejects the stale content.
	writeNode(lay, dev, 2, 2, &v1)
	_, out := h.ReadVerified(2, 2, func(l *nvm.Line) bool { return l[0] == 2 })
	if out != OutcomeTamper {
		t.Fatalf("outcome %v, want tamper", out)
	}
	if h.Stats().TamperDetections != 1 {
		t.Fatal("tamper not counted")
	}
}

func TestReplayOfSingleCloneIsRepaired(t *testing.T) {
	// §3.2.2: "since there are multiple duplicates of the intermediate
	// nodes, replaying a single MT node will end up being corrected".
	h, lay, dev := handlerFixture(t, SRC())
	var v1, v2 nvm.Line
	v1[0], v2[0] = 1, 2
	writeNode(lay, dev, 2, 2, &v1)
	writeNode(lay, dev, 2, 2, &v2)
	// Replay only the home copy.
	dev.Write(lay.NodeAddr(2, 2), &v1)
	got, out := h.ReadVerified(2, 2, func(l *nvm.Line) bool { return l[0] == 2 })
	if out != OutcomeRepaired || got != v2 {
		t.Fatalf("outcome %v", out)
	}
	if r := dev.Read(lay.NodeAddr(2, 2)); r.Data != v2 {
		t.Fatal("replayed home copy not purified")
	}
}

func TestWriteWithClonesAddressesMatchLayoutAndWPQBound(t *testing.T) {
	h, lay, _ := handlerFixture(t, SAC())
	for lvl := 1; lvl <= lay.TopLevel(); lvl++ {
		addrs := h.WriteWithClones(lvl, 0, &nvm.Line{})
		if len(addrs) != lay.CloneDepths[lvl-1] {
			t.Fatalf("level %d: %d copies, want %d", lvl, len(addrs), lay.CloneDepths[lvl-1])
		}
		if len(addrs) > MaxDepth {
			t.Fatalf("level %d exceeds WPQ-safe depth", lvl)
		}
	}
}

// killNode makes node (level, index) unverifiable by corrupting every copy.
func killNode(lay *itree.Layout, dev *nvm.Device, level int, index uint64) {
	for _, a := range lay.CopyAddrs(level, index) {
		dev.CorruptLine(a)
	}
}

// TestResetStatsReturnsCappedEvents is the regression test for the
// ResetStats / capped Events interaction: with the detailed log capped, a
// harness that snapshotted Stats() and then called ResetStats() separately
// could lose incidents recorded between the two calls. ResetStats now
// returns the pre-reset statistics atomically; the returned Events must be
// the capped log as it stood (deep-copied), the overflow must be counted,
// and the cap must restart from zero after the reset.
func TestResetStatsReturnsCappedEvents(t *testing.T) {
	h, lay, dev := handlerFixture(t, SRC())
	h.SetEventLimit(2)

	var line nvm.Line
	for i := uint64(0); i < 3; i++ {
		writeNode(lay, dev, 2, i, &line)
		killNode(lay, dev, 2, i)
		if _, out := h.ReadVerified(2, i, func(*nvm.Line) bool { return true }); out != OutcomeUnverifiable {
			t.Fatalf("incident %d: outcome %v, want unverifiable", i, out)
		}
	}

	prev := h.ResetStats()
	if prev.UnverifiableNodes != 3 {
		t.Fatalf("pre-reset UnverifiableNodes = %d, want 3", prev.UnverifiableNodes)
	}
	if len(prev.Events) != 2 || prev.EventsDropped != 1 {
		t.Fatalf("pre-reset log: %d events, %d dropped; want 2 capped events and 1 dropped",
			len(prev.Events), prev.EventsDropped)
	}
	if prev.Events[0].Index != 0 || prev.Events[1].Index != 1 {
		t.Fatalf("pre-reset events out of order: %+v", prev.Events)
	}

	// The reset must leave a clean slate: zero counters, empty log, and
	// the event cap counting from zero again.
	if st := h.Stats(); st.UnverifiableNodes != 0 || len(st.Events) != 0 || st.EventsDropped != 0 {
		t.Fatalf("post-reset stats not clean: %+v", st)
	}

	// A new incident lands in the handler's fresh log without disturbing
	// the returned snapshot (deep copy, no aliasing).
	writeNode(lay, dev, 2, 7, &line)
	killNode(lay, dev, 2, 7)
	if _, out := h.ReadVerified(2, 7, func(*nvm.Line) bool { return true }); out != OutcomeUnverifiable {
		t.Fatalf("post-reset incident: outcome %v", out)
	}
	if st := h.Stats(); len(st.Events) != 1 || st.Events[0].Index != 7 || st.EventsDropped != 0 {
		t.Fatalf("post-reset log wrong: %+v", st)
	}
	if len(prev.Events) != 2 || prev.Events[0].Index != 0 {
		t.Fatalf("returned snapshot aliased the live log: %+v", prev.Events)
	}
}
