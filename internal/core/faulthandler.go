package core

import (
	"fmt"

	"soteria/internal/itree"
	"soteria/internal/nvm"
)

// Mem is the device access the fault handler needs. Reads report detected
// uncorrectable errors; writes are repair ("purify") writes and bypass the
// WPQ timing path (recovery is not on the performance-critical path).
type Mem interface {
	ReadLine(addr uint64) (line nvm.Line, uncorrectable bool)
	WriteLine(addr uint64, line *nvm.Line)
}

// Outcome classifies one verified metadata read (Fig 9).
type Outcome int

// Outcomes of FaultHandler.ReadVerified.
const (
	// OutcomeClean: home copy read and verified with no incident.
	OutcomeClean Outcome = iota
	// OutcomeRepaired: the home copy was uncorrectable or failed MAC
	// verification, but a clone passed and all copies were purified.
	OutcomeRepaired
	// OutcomeUnverifiable: every copy was bad. The data covered by this
	// node can no longer be verified (counted toward UDR). With no
	// clones configured this is also where a baseline system lands on
	// any uncorrectable metadata error.
	OutcomeUnverifiable
	// OutcomeTamper: the home copy failed verification but had no ECC
	// error and no clone disagreed with it consistently — every copy
	// carries the same MAC-failing content, which is the signature of a
	// coordinated replay/tamper rather than a random fault (step 6 of
	// Fig 9: "recovery will fail in the integrity verification stage,
	// and the attack will be detected").
	OutcomeTamper
)

func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeRepaired:
		return "repaired"
	case OutcomeUnverifiable:
		return "unverifiable"
	case OutcomeTamper:
		return "tamper"
	default:
		return "?"
	}
}

// LossEvent records one unverifiable-node incident.
type LossEvent struct {
	Level int
	Index uint64
	Bytes uint64 // data bytes rendered unverifiable
}

// DefaultEventLimit bounds the per-incident Events log. Aggregate counters
// keep counting past the cap; only the detailed log stops growing, which
// keeps million-trial Monte Carlo campaigns from blowing up memory.
const DefaultEventLimit = 4096

// Stats aggregates fault-handler activity.
type Stats struct {
	Reads             uint64
	CloneLookups      uint64
	Repairs           uint64
	TamperDetections  uint64
	UnverifiableNodes uint64
	UnverifiableBytes uint64
	// Events holds up to the configured event limit of detailed
	// unverifiable-node records; EventsDropped counts the overflow.
	Events        []LossEvent
	EventsDropped uint64
}

// UDR returns the Unverifiable Data Ratio accumulated so far against the
// given total memory size (§5.3: UDR = L_unverifiable / total size).
func (s Stats) UDR(totalBytes uint64) float64 {
	if totalBytes == 0 {
		return 0
	}
	return float64(s.UnverifiableBytes) / float64(totalBytes)
}

// FaultHandler implements Soteria's metadata fault handling (Fig 9): on a
// verification or ECC failure of a metadata node it walks the node's
// clones, adopts the first copy that passes integrity verification, and
// purifies every copy from it.
type FaultHandler struct {
	mem        Mem
	layout     *itree.Layout
	stats      Stats
	eventLimit int
}

// NewFaultHandler builds a handler over the given memory and layout.
func NewFaultHandler(mem Mem, layout *itree.Layout) *FaultHandler {
	return &FaultHandler{mem: mem, layout: layout, eventLimit: DefaultEventLimit}
}

// SetEventLimit adjusts how many detailed LossEvents are retained. Zero
// disables the detailed log entirely (counters still accumulate); negative
// removes the bound.
func (h *FaultHandler) SetEventLimit(n int) { h.eventLimit = n }

// Stats returns a copy of the accumulated statistics.
func (h *FaultHandler) Stats() Stats { return h.stats }

// ResetStats clears the accumulated statistics (between experiment runs).
func (h *FaultHandler) ResetStats() { h.stats = Stats{} }

// ReadVerified reads metadata node (level, index), verifying each candidate
// copy with the caller-supplied predicate (MAC check under the parent
// counter). It returns the verified line and the outcome; for
// OutcomeUnverifiable and OutcomeTamper the returned line must not be
// trusted.
func (h *FaultHandler) ReadVerified(level int, index uint64, verify func(line *nvm.Line) bool) (nvm.Line, Outcome) {
	h.stats.Reads++
	home := h.layout.NodeAddr(level, index)
	line, unc := h.mem.ReadLine(home)
	homeECCBad := unc
	if !unc && verify(&line) {
		return line, OutcomeClean
	}

	// Step 4 of Fig 9: bring all clones and attempt to verify/repair.
	copies := h.layout.CopyAddrs(level, index)
	for _, addr := range copies[1:] {
		h.stats.CloneLookups++
		cl, unc := h.mem.ReadLine(addr)
		if unc || !verify(&cl) {
			continue
		}
		// Step 6-7: a clone passed; purify all affected copies.
		for _, a := range copies {
			h.mem.WriteLine(a, &cl)
		}
		h.stats.Repairs++
		return cl, OutcomeRepaired
	}

	// No copy verified. Distinguish "random faults killed everything"
	// from "consistent content that simply fails verification", which
	// is how a replay of all copies (or of a node with no clones and no
	// ECC complaint) manifests.
	if !homeECCBad {
		h.stats.TamperDetections++
		return line, OutcomeTamper
	}
	start, end := h.layout.CoverageOf(level, index)
	h.stats.UnverifiableNodes++
	h.stats.UnverifiableBytes += end - start
	if h.eventLimit < 0 || len(h.stats.Events) < h.eventLimit {
		h.stats.Events = append(h.stats.Events, LossEvent{Level: level, Index: index, Bytes: end - start})
	} else {
		h.stats.EventsDropped++
	}
	return line, OutcomeUnverifiable
}

// WriteWithClones writes a node's line to its home address and every clone
// slot, returning the full list of (addr, line) writes so the controller
// can push them through the WPQ as one atomic group. The group size equals
// the level's configured depth and is guaranteed <= MaxDepth.
func (h *FaultHandler) WriteWithClones(level int, index uint64, line *nvm.Line) []uint64 {
	return h.layout.CopyAddrs(level, index)
}

// CheckDepths validates that a layout's clone allocation matches a policy
// (defensive check used at controller construction).
func CheckDepths(layout *itree.Layout, policy ClonePolicy) error {
	top := layout.TopLevel()
	for i, want := range policy.Depths(top) {
		if got := layout.CloneDepths[i]; got != want {
			return fmt.Errorf("core: layout depth %d at level %d, policy %q wants %d", got, i+1, policy.Name, want)
		}
	}
	return nil
}
