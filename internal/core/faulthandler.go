package core

import (
	"fmt"

	"soteria/internal/itree"
	"soteria/internal/nvm"
	"soteria/internal/telemetry"
)

// Mem is the device access the fault handler needs. Reads report detected
// uncorrectable errors; writes are repair ("purify") writes and bypass the
// WPQ timing path (recovery is not on the performance-critical path).
type Mem interface {
	ReadLine(addr uint64) (line nvm.Line, uncorrectable bool)
	WriteLine(addr uint64, line *nvm.Line)
}

// Outcome classifies one verified metadata read (Fig 9).
type Outcome int

// Outcomes of FaultHandler.ReadVerified.
const (
	// OutcomeClean: home copy read and verified with no incident.
	OutcomeClean Outcome = iota
	// OutcomeRepaired: the home copy was uncorrectable or failed MAC
	// verification, but a clone passed and all copies were purified.
	OutcomeRepaired
	// OutcomeUnverifiable: every copy was bad. The data covered by this
	// node can no longer be verified (counted toward UDR). With no
	// clones configured this is also where a baseline system lands on
	// any uncorrectable metadata error.
	OutcomeUnverifiable
	// OutcomeTamper: the home copy failed verification but had no ECC
	// error and no clone disagreed with it consistently — every copy
	// carries the same MAC-failing content, which is the signature of a
	// coordinated replay/tamper rather than a random fault (step 6 of
	// Fig 9: "recovery will fail in the integrity verification stage,
	// and the attack will be detected").
	OutcomeTamper
)

func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeRepaired:
		return "repaired"
	case OutcomeUnverifiable:
		return "unverifiable"
	case OutcomeTamper:
		return "tamper"
	default:
		return "?"
	}
}

// LossEvent records one unverifiable-node incident.
type LossEvent struct {
	Level int
	Index uint64
	Bytes uint64 // data bytes rendered unverifiable
}

// DefaultEventLimit bounds the per-incident Events log. Aggregate counters
// keep counting past the cap; only the detailed log stops growing, which
// keeps million-trial Monte Carlo campaigns from blowing up memory.
const DefaultEventLimit = 4096

// Stats aggregates fault-handler activity.
type Stats struct {
	Reads             uint64
	CloneLookups      uint64
	Repairs           uint64
	TamperDetections  uint64
	UnverifiableNodes uint64
	UnverifiableBytes uint64
	// Events holds up to the configured event limit of detailed
	// unverifiable-node records; EventsDropped counts the overflow.
	Events        []LossEvent
	EventsDropped uint64
}

// UDR returns the Unverifiable Data Ratio accumulated so far against the
// given total memory size (§5.3: UDR = L_unverifiable / total size).
func (s Stats) UDR(totalBytes uint64) float64 {
	if totalBytes == 0 {
		return 0
	}
	return float64(s.UnverifiableBytes) / float64(totalBytes)
}

// FaultHandler implements Soteria's metadata fault handling (Fig 9): on a
// verification or ECC failure of a metadata node it walks the node's
// clones, adopts the first copy that passes integrity verification, and
// purifies every copy from it.
type FaultHandler struct {
	mem        Mem
	layout     *itree.Layout
	stats      Stats
	eventLimit int
	tel        telemetryHooks
}

// telemetryHooks holds the handler's metric handles; nil handles (no
// registry attached) are no-ops. Unlike Stats, these are lifetime
// counters: ResetStats does not touch them, so per-run resets can never
// drop events from the telemetry view.
type telemetryHooks struct {
	reads         *telemetry.Counter
	cloneLookups  *telemetry.Counter
	repairs       *telemetry.Counter
	tampers       *telemetry.Counter
	unverifiable  *telemetry.Counter
	unverifBytes  *telemetry.Counter
	eventsDropped *telemetry.Counter
}

// AttachTelemetry registers the fault-handler metrics on r (nil detaches).
func (h *FaultHandler) AttachTelemetry(r *telemetry.Registry) {
	if r == nil {
		h.tel = telemetryHooks{}
		return
	}
	h.tel = telemetryHooks{
		reads:         r.Counter("fault_reads_total"),
		cloneLookups:  r.Counter("fault_clone_lookups_total"),
		repairs:       r.Counter("fault_repairs_total"),
		tampers:       r.Counter("fault_tamper_detections_total"),
		unverifiable:  r.Counter("fault_unverifiable_nodes_total"),
		unverifBytes:  r.Counter("fault_unverifiable_bytes_total"),
		eventsDropped: r.Counter("fault_events_dropped_total"),
	}
}

// NewFaultHandler builds a handler over the given memory and layout.
func NewFaultHandler(mem Mem, layout *itree.Layout) *FaultHandler {
	return &FaultHandler{mem: mem, layout: layout, eventLimit: DefaultEventLimit}
}

// SetEventLimit adjusts how many detailed LossEvents are retained. Zero
// disables the detailed log entirely (counters still accumulate); negative
// removes the bound.
func (h *FaultHandler) SetEventLimit(n int) { h.eventLimit = n }

// Stats returns a copy of the accumulated statistics. The Events log is
// deep-copied so the snapshot cannot alias (and later disagree with) the
// handler's live log.
func (h *FaultHandler) Stats() Stats {
	s := h.stats
	s.Events = append([]LossEvent(nil), h.stats.Events...)
	return s
}

// ResetStats clears the accumulated statistics (between experiment runs)
// and returns the statistics as they stood immediately before the reset.
// Returning the pre-reset snapshot (with a deep-copied Events log) closes
// a window where an experiment harness that called Stats() and then
// ResetStats() separately could lose incidents recorded in between — any
// event accumulated up to the reset instant is in the returned value.
// Telemetry counters attached via AttachTelemetry are lifetime totals and
// are deliberately not reset here.
func (h *FaultHandler) ResetStats() Stats {
	prev := h.stats
	prev.Events = append([]LossEvent(nil), h.stats.Events...)
	h.stats = Stats{}
	return prev
}

// ReadVerified reads metadata node (level, index), verifying each candidate
// copy with the caller-supplied predicate (MAC check under the parent
// counter). It returns the verified line and the outcome; for
// OutcomeUnverifiable and OutcomeTamper the returned line must not be
// trusted.
func (h *FaultHandler) ReadVerified(level int, index uint64, verify func(line *nvm.Line) bool) (nvm.Line, Outcome) {
	h.stats.Reads++
	h.tel.reads.Inc()
	home := h.layout.NodeAddr(level, index)
	line, unc := h.mem.ReadLine(home)
	homeECCBad := unc
	if !unc && verify(&line) {
		return line, OutcomeClean
	}

	// Step 4 of Fig 9: bring all clones and attempt to verify/repair.
	copies := h.layout.CopyAddrs(level, index)
	for _, addr := range copies[1:] {
		h.stats.CloneLookups++
		h.tel.cloneLookups.Inc()
		cl, unc := h.mem.ReadLine(addr)
		if unc || !verify(&cl) {
			continue
		}
		// Step 6-7: a clone passed; purify all affected copies.
		for _, a := range copies {
			h.mem.WriteLine(a, &cl)
		}
		h.stats.Repairs++
		h.tel.repairs.Inc()
		return cl, OutcomeRepaired
	}

	// No copy verified. Distinguish "random faults killed everything"
	// from "consistent content that simply fails verification", which
	// is how a replay of all copies (or of a node with no clones and no
	// ECC complaint) manifests.
	if !homeECCBad {
		h.stats.TamperDetections++
		h.tel.tampers.Inc()
		return line, OutcomeTamper
	}
	start, end := h.layout.CoverageOf(level, index)
	h.stats.UnverifiableNodes++
	h.stats.UnverifiableBytes += end - start
	h.tel.unverifiable.Inc()
	h.tel.unverifBytes.Add(end - start)
	if h.eventLimit < 0 || len(h.stats.Events) < h.eventLimit {
		h.stats.Events = append(h.stats.Events, LossEvent{Level: level, Index: index, Bytes: end - start})
	} else {
		h.stats.EventsDropped++
		h.tel.eventsDropped.Inc()
	}
	return line, OutcomeUnverifiable
}

// WriteWithClones writes a node's line to its home address and every clone
// slot, returning the full list of (addr, line) writes so the controller
// can push them through the WPQ as one atomic group. The group size equals
// the level's configured depth and is guaranteed <= MaxDepth.
func (h *FaultHandler) WriteWithClones(level int, index uint64, line *nvm.Line) []uint64 {
	return h.layout.CopyAddrs(level, index)
}

// CheckDepths validates that a layout's clone allocation matches a policy
// (defensive check used at controller construction).
func CheckDepths(layout *itree.Layout, policy ClonePolicy) error {
	top := layout.TopLevel()
	for i, want := range policy.Depths(top) {
		if got := layout.CloneDepths[i]; got != want {
			return fmt.Errorf("core: layout depth %d at level %d, policy %q wants %d", got, i+1, policy.Name, want)
		}
	}
	return nil
}
