// Package core implements Soteria itself: the metadata cloning policies
// (SRC and SAC, Table 2), the clone-aware fault-handling pipeline (Fig 9),
// and the unverifiable-data accounting behind the UDR metric (§5.3).
//
// Everything here is deliberately decoupled from the module's ECC — the
// central design argument of the paper (§3.1): reliability of security
// metadata is the memory controller's job, implemented with lazily written
// duplicates, not with a stronger code in the DIMM.
package core

import "fmt"

// ClonePolicy decides how many copies (original included) each tree level
// keeps. Depth 1 means no clones.
type ClonePolicy struct {
	// Name identifies the policy in reports ("baseline", "SRC", "SAC").
	Name string
	// depthFor returns the copy count for `level` in a tree whose
	// highest stored level is `top`.
	depthFor func(level, top int) int
}

// Depth returns the copy count for one level.
func (p ClonePolicy) Depth(level, top int) int {
	if p.depthFor == nil {
		return 1
	}
	d := p.depthFor(level, top)
	if d < 1 {
		return 1
	}
	if d > MaxDepth {
		return MaxDepth
	}
	return d
}

// Depths materializes the per-level depth table for a tree with `top`
// stored levels (index 0 = level 1).
func (p ClonePolicy) Depths(top int) []int {
	out := make([]int, top)
	for i := range out {
		out[i] = p.Depth(i+1, top)
	}
	return out
}

// MaxDepth is the WPQ-imposed bound on copies per node (§3.2.1): a minimum
// 8-entry WPQ less the three writes a secure NVM store can already generate
// (ciphertext, data MAC, shadow log) leaves room to commit at most five
// copies atomically.
const MaxDepth = 5

// Baseline is the no-cloning policy (the paper's "Secure Baseline").
func Baseline() ClonePolicy {
	return ClonePolicy{Name: "baseline"}
}

// SRC is Soteria Relaxed Cloning: every level keeps exactly one additional
// clone (Table 2, SRC row).
func SRC() ClonePolicy {
	return ClonePolicy{
		Name:     "SRC",
		depthFor: func(level, top int) int { return 2 },
	}
}

// SAC is Soteria Aggressive Cloning. Table 2 gives the depths for a
// nine-level tree: 2,2,3,3,4,4,4,4,5. The generalization below reproduces
// that row exactly for top=9 and scales sensibly for other tree heights:
// the two leaf-most levels (which produce >10% of evictions, Fig 4) stay at
// depth 2, the next two (1-10% of evictions) get one extra clone, deeper
// levels get two, and the top stored level — the root's immediate children,
// each covering 1/arity of all memory — gets the WPQ-capped maximum of 5.
func SAC() ClonePolicy {
	return ClonePolicy{
		Name: "SAC",
		depthFor: func(level, top int) int {
			switch {
			case level >= top:
				return 5
			case level <= 2:
				return 2
			case level <= 4:
				return 3
			default:
				return 4
			}
		},
	}
}

// Custom builds a policy from an explicit per-level depth table (index 0 =
// level 1); levels beyond the table reuse its last entry.
func Custom(name string, depths []int) (ClonePolicy, error) {
	if len(depths) == 0 {
		return ClonePolicy{}, fmt.Errorf("core: custom policy needs at least one depth")
	}
	for i, d := range depths {
		if d < 1 || d > MaxDepth {
			return ClonePolicy{}, fmt.Errorf("core: depth %d at level %d outside [1,%d]", d, i+1, MaxDepth)
		}
	}
	tbl := append([]int(nil), depths...)
	return ClonePolicy{
		Name: name,
		depthFor: func(level, top int) int {
			if level-1 < len(tbl) {
				return tbl[level-1]
			}
			return tbl[len(tbl)-1]
		},
	}, nil
}

// Table2 returns the paper's Table 2: the SRC and SAC cloning depths for a
// nine-level (root excluded) tree covering up to 1 TB.
func Table2() (src, sac []int) {
	return SRC().Depths(9), SAC().Depths(9)
}
