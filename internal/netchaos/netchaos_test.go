package netchaos_test

import (
	"testing"
	"time"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/memctrl"
	"soteria/internal/netchaos"
	"soteria/internal/nvm"
	"soteria/internal/telemetry"
)

func newDevice(t *testing.T) *device.Device {
	t.Helper()
	dev, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("netchaos-test-key"),
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	return dev
}

// rig is a full stack: device, supervised server, fault proxy, and a
// resilient client dialing through the proxy.
type rig struct {
	dev   *device.Device
	sup   *netchaos.Supervisor
	proxy *netchaos.Proxy
	c     *devnet.Client
	reg   *telemetry.Registry
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	dev := newDevice(t)
	sup := netchaos.NewSupervisor(dev, devnet.ServerOptions{
		ReadStall:   500 * time.Millisecond,
		IdleTimeout: 5 * time.Second,
	}, t.Logf)
	addr, err := sup.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Stop)
	proxy, err := netchaos.New(addr, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	reg := telemetry.NewRegistry()
	c, err := devnet.DialWith(proxy.Addr(), devnet.Options{
		OpTimeout: 2 * time.Second,
		Retry: devnet.RetryPolicy{
			MaxAttempts: -1,
			MaxElapsed:  20 * time.Second,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  100 * time.Millisecond,
			RetryDown:   true,
		},
		Telemetry: reg,
		Seed:      seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rig{dev: dev, sup: sup, proxy: proxy, c: c, reg: reg}
}

func chaosLine(i uint64) nvm.Line {
	var l nvm.Line
	for j := range l {
		l[j] = byte(i*131 + uint64(j)*17 + 5)
	}
	return l
}

// writeRead pushes n lines through the client and reads each back,
// failing on any error or mismatch — under every fault schedule the
// client's retry loop must make this loop complete and correct.
func (r *rig) writeRead(t *testing.T, n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		addr := i * nvm.LineSize
		line := chaosLine(i)
		if _, err := r.c.Write(addr, &line); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		addr := i * nvm.LineSize
		got, _, err := r.c.Read(addr)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if want := chaosLine(i); got != want {
			t.Fatalf("line %d corrupted end-to-end", i)
		}
	}
}

func TestProxyTransparentPassthrough(t *testing.T) {
	r := newRig(t, 1)
	r.writeRead(t, 16)
	if s := r.proxy.Stats(); s.FramesRelayed == 0 {
		t.Fatal("proxy relayed nothing")
	}
	if got := r.reg.Counter("devnet_client_retries_total").Value(); got != 0 {
		t.Fatalf("clean passthrough needed %d retries", got)
	}
}

func TestProxyCorruptionIsDetectedAndRetried(t *testing.T) {
	r := newRig(t, 2)
	r.proxy.SetFaults(netchaos.Faults{Name: "corrupt", CorruptEvery: 600})
	r.writeRead(t, 24)
	s := r.proxy.Stats()
	if s.CorruptedBytes == 0 {
		t.Fatal("fault schedule injected no corruption")
	}
	if got := r.reg.Counter("devnet_client_retries_total").Value(); got == 0 {
		t.Fatal("corruption detected but nothing was retried")
	}
}

func TestProxyResetsAreRiddenOut(t *testing.T) {
	r := newRig(t, 3)
	r.proxy.SetFaults(netchaos.Faults{Name: "reset", ResetAfterBytes: 1500})
	r.writeRead(t, 24)
	if s := r.proxy.Stats(); s.Resets == 0 {
		t.Fatal("fault schedule injected no resets")
	}
	if got := r.reg.Counter("devnet_client_reconnects_total").Value(); got == 0 {
		t.Fatal("client survived resets without reconnecting?")
	}
}

func TestProxyMidFrameTruncation(t *testing.T) {
	r := newRig(t, 4)
	r.proxy.SetFaults(netchaos.Faults{Name: "truncate", TruncateEveryNthFrame: 7})
	r.writeRead(t, 24)
	if s := r.proxy.Stats(); s.TruncatedFrames == 0 {
		t.Fatal("fault schedule truncated no frames")
	}
}

func TestPartitionHeals(t *testing.T) {
	r := newRig(t, 5)
	r.writeRead(t, 4)

	r.proxy.SetFaults(netchaos.Faults{Name: "partition", Partition: true})
	done := make(chan error, 1)
	go func() {
		line := chaosLine(100)
		_, err := r.c.Write(100*nvm.LineSize, &line)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("write completed during partition: %v", err)
	case <-time.After(300 * time.Millisecond):
	}
	r.proxy.Clear()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after heal: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("write never completed after partition healed")
	}
	got, _, err := r.c.Read(100 * nvm.LineSize)
	if err != nil {
		t.Fatal(err)
	}
	if want := chaosLine(100); got != want {
		t.Fatal("post-partition line corrupted")
	}
}

func TestSupervisorKillRestart(t *testing.T) {
	r := newRig(t, 6)
	r.writeRead(t, 8)

	if err := r.sup.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := r.sup.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if r.sup.Kills() != 1 {
		t.Fatalf("kills = %d", r.sup.Kills())
	}

	// Every write acknowledged before the kill must read back after the
	// restart — the device recovery path ran under the covers.
	for i := uint64(0); i < 8; i++ {
		got, _, err := r.c.Read(i * nvm.LineSize)
		if err != nil {
			t.Fatalf("read %d after restart: %v", i, err)
		}
		if want := chaosLine(i); got != want {
			t.Fatalf("line %d lost across kill/restart", i)
		}
	}
	// And the stack keeps working.
	r.writeRead(t, 8)
}

func TestKillDuringWorkload(t *testing.T) {
	r := newRig(t, 7)
	done := make(chan error, 1)
	go func() {
		for i := uint64(0); i < 64; i++ {
			addr := i * nvm.LineSize
			line := chaosLine(i)
			if _, err := r.c.Write(addr, &line); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	time.Sleep(20 * time.Millisecond)
	if err := r.sup.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := r.sup.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("workload did not ride through the kill: %v", err)
	}
	for i := uint64(0); i < 64; i++ {
		got, _, err := r.c.Read(i * nvm.LineSize)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if want := chaosLine(i); got != want {
			t.Fatalf("acknowledged line %d wrong after kill mid-workload", i)
		}
	}
}
