// Package netchaos is the network arm of the chaos harness: a seeded,
// frame-aware TCP fault-injection proxy that sits between devnet
// clients and a server, plus an in-process supervisor that kills and
// restarts the server mid-workload. Together they extend the
// acknowledged-write oracle across the network boundary — the chaos
// sweeps drive real load through real sockets while the proxy injects
// latency, throttling, corruption, resets, mid-frame truncation and
// full partitions, and assert that every acknowledged write survives
// and no retried write applies twice.
//
// Fault decisions derive from a seed and per-connection/per-byte
// counters, never from wall-clock sampling, so a schedule injects the
// same kinds of faults at the same stream positions run after run.
package netchaos

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is one fault configuration. The zero value is transparent
// pass-through; each field arms one fault family. A Schedule is a
// sequence of named Faults phases the harness steps through.
type Faults struct {
	// Name labels the phase in reports.
	Name string
	// Latency delays every relayed chunk; Jitter adds a seeded random
	// extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBPS throttles each direction to roughly this many bytes
	// per second (0 = unlimited).
	BandwidthBPS int
	// CorruptEvery flips one byte in roughly every N relayed payload
	// bytes (0 = off). Frame headers are left intact so the endpoint
	// detects the damage via its payload checksum instead of losing
	// framing sync.
	CorruptEvery int
	// ResetAfterBytes severs a connection (RST) once it has relayed this
	// many bytes in total (0 = off). Every reconnect gets the same
	// budget, so long transfers keep getting cut.
	ResetAfterBytes int
	// TruncateEveryNthFrame forwards only the first half of every Nth
	// relayed frame and then severs the connection (0 = off) — the
	// mid-frame cut that exercises partial-read handling.
	TruncateEveryNthFrame int
	// RefuseEveryNthConn resets every Nth accepted connection before
	// relaying anything (0 = off).
	RefuseEveryNthConn int
	// Partition refuses all new connections and severs existing ones
	// until cleared.
	Partition bool
}

// String renders the armed fault families.
func (f Faults) String() string {
	if f.Name != "" {
		return f.Name
	}
	return "clean"
}

// Stats counts what the proxy actually injected. All fields are
// monotonic; read them with Proxy.Stats.
type Stats struct {
	Conns           uint64
	Refused         uint64
	Resets          uint64
	CorruptedBytes  uint64
	TruncatedFrames uint64
	BytesRelayed    uint64
	FramesRelayed   uint64
	// BatchFrames counts client->server frames carrying the batched v3
	// request op — how much of the offered load used the pipelined path.
	BatchFrames uint64
}

type counters struct {
	conns, refused, resets, corrupted, truncated, bytes, frames, batchFrames atomic.Uint64
}

// Proxy is the fault-injecting TCP relay. It listens on a loopback
// port, forwards each accepted connection to the target, and applies
// the currently armed Faults to both directions. Faults can be swapped
// at any time; existing connections pick up the change at their next
// frame.
type Proxy struct {
	target string
	seed   int64
	ln     net.Listener
	logf   func(format string, args ...any)

	mu     sync.Mutex
	faults Faults
	conns  map[net.Conn]struct{}
	closed bool

	connSeq atomic.Uint64
	stats   counters
	wg      sync.WaitGroup
}

// New starts a proxy in front of target on an ephemeral loopback port.
func New(target string, seed int64, logf func(format string, args ...any)) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	p := &Proxy{target: target, seed: seed, ln: ln, logf: logf, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial instead of the real server.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetFaults arms a fault configuration. Arming a partition severs every
// existing connection immediately.
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	var sever []net.Conn
	if f.Partition {
		for c := range p.conns {
			sever = append(sever, c)
		}
	}
	p.mu.Unlock()
	for _, c := range sever {
		hardClose(c)
	}
	p.logf("netchaos: faults -> %s", f)
}

// Clear disarms every fault.
func (p *Proxy) Clear() { p.SetFaults(Faults{Name: "clean"}) }

func (p *Proxy) currentFaults() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Stats snapshots the injected-fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:           p.stats.conns.Load(),
		Refused:         p.stats.refused.Load(),
		Resets:          p.stats.resets.Load(),
		CorruptedBytes:  p.stats.corrupted.Load(),
		TruncatedFrames: p.stats.truncated.Load(),
		BytesRelayed:    p.stats.bytes.Load(),
		FramesRelayed:   p.stats.frames.Load(),
		BatchFrames:     p.stats.batchFrames.Load(),
	}
}

// Close stops accepting, severs every relay, and waits for them.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		hardClose(c)
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		idx := p.connSeq.Add(1)
		f := p.currentFaults()
		if f.Partition || (f.RefuseEveryNthConn > 0 && idx%uint64(f.RefuseEveryNthConn) == 0) {
			p.stats.refused.Add(1)
			hardClose(conn)
			continue
		}
		upstream, err := net.DialTimeout("tcp", p.target, 2*time.Second)
		if err != nil {
			p.logf("netchaos: conn %d: target unreachable: %v", idx, err)
			p.stats.refused.Add(1)
			hardClose(conn)
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			hardClose(conn)
			hardClose(upstream)
			return
		}
		p.conns[conn] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.mu.Unlock()
		p.stats.conns.Add(1)
		p.wg.Add(1)
		go p.relayPair(conn, upstream, idx)
	}
}

func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// relayPair runs both directions of one proxied connection and tears
// everything down when either side dies or a fault severs it.
func (p *Proxy) relayPair(client, upstream net.Conn, idx uint64) {
	defer p.wg.Done()
	var once sync.Once
	var total atomic.Uint64 // bytes relayed on this connection, both directions
	kill := func() {
		once.Do(func() {
			hardClose(client)
			hardClose(upstream)
		})
	}
	var inner sync.WaitGroup
	inner.Add(2)
	run := func(src, dst net.Conn, dirSalt int64, c2s bool) {
		defer inner.Done()
		defer kill()
		l := &link{
			p:     p,
			rng:   rand.New(rand.NewSource(p.seed ^ int64(idx*0x9e3779b97f4a7c15) ^ dirSalt)),
			total: &total,
			c2s:   c2s,
		}
		l.relay(src, dst)
	}
	go run(client, upstream, 0x5bf03635, true)
	go run(upstream, client, 0x2545f491, false)
	inner.Wait()
	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, upstream)
	p.mu.Unlock()
}

// link is one direction of one proxied connection.
type link struct {
	p      *Proxy
	rng    *rand.Rand
	total  *atomic.Uint64
	frames uint64
	sinceC int  // bytes since last injected corruption
	c2s    bool // this direction carries client requests
}

// frameHeaderSize mirrors devnet's framing: [u32 len][u32 crc]. The
// proxy only needs the length to stay frame-aligned; it never validates
// the checksum (that is the endpoints' job).
const frameHeaderSize = 8

// maxSaneFrame mirrors the endpoints' frame cap; a longer claim means
// the stream is garbage, and the relay severs it.
const maxSaneFrame = 16 << 20

// opBatch mirrors devnet.OpBatch, the same way frameHeaderSize mirrors
// the framing: the proxy classifies batch request frames without
// depending on the endpoint package.
const opBatch = 20

// relay forwards frames from src to dst, injecting the armed faults.
// Any error on either side returns (the caller severs the pair).
func (l *link) relay(src, dst net.Conn) {
	hdr := make([]byte, frameHeaderSize)
	var payload []byte
	for {
		f := l.p.currentFaults()
		if f.Partition {
			l.p.stats.resets.Add(1)
			return
		}
		src.SetReadDeadline(time.Now().Add(30 * time.Second))
		if _, err := readFull(src, hdr); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:4]))
		if n > maxSaneFrame {
			l.p.logf("netchaos: insane frame length %d, severing", n)
			l.p.stats.resets.Add(1)
			return
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := readFull(src, payload); err != nil {
			return
		}
		l.frames++
		l.p.stats.frames.Add(1)
		if l.c2s && n > 0 && payload[0] == opBatch {
			l.p.stats.batchFrames.Add(1)
		}

		out := append(append(make([]byte, 0, frameHeaderSize+n), hdr...), payload...)
		truncate := f.TruncateEveryNthFrame > 0 && l.frames%uint64(f.TruncateEveryNthFrame) == 0 && n >= 2
		if truncate {
			out = out[:frameHeaderSize+n/2]
		} else if f.CorruptEvery > 0 {
			// Flip bytes at seeded positions, payload only: the length
			// field stays honest so framing never desyncs — the endpoint
			// sees a checksum mismatch, not a garbage length.
			l.sinceC += n
			for l.sinceC >= f.CorruptEvery && n > 0 {
				l.sinceC -= f.CorruptEvery
				pos := frameHeaderSize + l.rng.Intn(n)
				out[pos] ^= 1 << uint(l.rng.Intn(8))
				l.p.stats.corrupted.Add(1)
			}
		}

		if err := l.pace(dst, out, f); err != nil {
			return
		}
		l.p.stats.bytes.Add(uint64(len(out)))
		if truncate {
			l.p.stats.truncated.Add(1)
			l.p.stats.resets.Add(1)
			return
		}
		if f.ResetAfterBytes > 0 && l.total.Add(uint64(len(out))) >= uint64(f.ResetAfterBytes) {
			l.total.Store(0)
			l.p.stats.resets.Add(1)
			return
		}
	}
}

// pace writes out in chunks, applying latency, jitter and bandwidth
// shaping per chunk.
func (l *link) pace(dst net.Conn, out []byte, f Faults) error {
	const chunk = 1024
	for off := 0; off < len(out); off += chunk {
		end := off + chunk
		if end > len(out) {
			end = len(out)
		}
		var delay time.Duration
		if f.Latency > 0 {
			delay += f.Latency
		}
		if f.Jitter > 0 {
			delay += time.Duration(l.rng.Int63n(int64(f.Jitter)))
		}
		if f.BandwidthBPS > 0 {
			delay += time.Duration(end-off) * time.Second / time.Duration(f.BandwidthBPS)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		dst.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := dst.Write(out[off:end]); err != nil {
			return err
		}
	}
	return nil
}

func readFull(c net.Conn, buf []byte) (int, error) {
	got := 0
	for got < len(buf) {
		n, err := c.Read(buf[got:])
		got += n
		if err != nil {
			return got, err
		}
	}
	return got, nil
}

// Repro renders the proxy's identity for failure reports.
func (p *Proxy) Repro() string {
	return fmt.Sprintf("netchaos proxy seed %d -> %s", p.seed, p.target)
}
