package netchaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"soteria/internal/device"
	"soteria/internal/devnet"
)

// Supervisor runs a devnet.Server in-process and models a process kill
// plus restart: Kill aborts the server (connections reset, listener
// gone) and crashes the device (volatile state lost, exactly as a power
// cut at the wall); Restart recovers the device and rebinds a fresh
// server on the same address. The session/dedup table and the server's
// telemetry registry are owned by the supervisor and handed to every
// incarnation — they model state in the persistence domain, which is
// what keeps a retry that straddles the kill exactly-once.
type Supervisor struct {
	dev  *device.Device
	opts devnet.ServerOptions
	logf func(format string, args ...any)

	mu    sync.Mutex
	srv   *devnet.Server
	addr  string
	up    bool
	kills int
}

// NewSupervisor wraps a device. opts.Sessions and opts.Telemetry are
// created if nil so they can be shared across restarts.
func NewSupervisor(dev *device.Device, opts devnet.ServerOptions, logf func(format string, args ...any)) *Supervisor {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.Sessions == nil {
		opts.Sessions = devnet.NewSessionTable(0, 0)
	}
	return &Supervisor{dev: dev, opts: opts, logf: logf}
}

// Start binds an ephemeral loopback port and begins serving. The
// address stays stable across Kill/Restart cycles.
func (s *Supervisor) Start() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.up {
		return s.addr, nil
	}
	addr := s.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := s.listen(addr)
	if err != nil {
		return "", err
	}
	s.addr = ln.Addr().String()
	s.srv = devnet.NewServerWith(s.dev, s.opts)
	s.up = true
	srv := s.srv
	go func() {
		srv.Serve(ln)
	}()
	s.logf("supervisor: serving on %s", s.addr)
	return s.addr, nil
}

// listen retries briefly: after a kill the old port can linger for a
// moment before the kernel lets us rebind it.
func (s *Supervisor) listen(addr string) (net.Listener, error) {
	var err error
	for i := 0; i < 50; i++ {
		var ln net.Listener
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("supervisor: rebind %s: %w", addr, err)
}

// Kill models the process dying: the server aborts (every connection
// reset, in-flight responses lost) and then the device crashes. Abort
// waits for executing handlers before returning, so the crash never
// overlaps a device operation — acknowledged writes are durable, the
// rest of the volatile state is gone.
func (s *Supervisor) Kill() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.up {
		return fmt.Errorf("supervisor: not running")
	}
	s.srv.Abort()
	s.srv = nil
	s.up = false
	s.kills++
	if err := s.dev.Crash(); err != nil {
		return fmt.Errorf("supervisor: crash after abort: %w", err)
	}
	s.logf("supervisor: killed (total %d)", s.kills)
	return nil
}

// Restart recovers the device and brings a fresh server up on the same
// address.
func (s *Supervisor) Restart() error {
	s.mu.Lock()
	up := s.up
	s.mu.Unlock()
	if up {
		return fmt.Errorf("supervisor: already running")
	}
	if _, err := s.dev.Recover(); err != nil {
		return fmt.Errorf("supervisor: recover: %w", err)
	}
	if _, err := s.Start(); err != nil {
		return err
	}
	s.logf("supervisor: restarted on %s", s.addr)
	return nil
}

// Stop shuts the current server down gracefully (if one is running)
// without touching the device.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.up = false
	s.mu.Unlock()
	if srv != nil {
		srv.Shutdown()
	}
}

// Kills reports how many kill cycles have run.
func (s *Supervisor) Kills() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kills
}

// Addr reports the bound address ("" before Start).
func (s *Supervisor) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Sessions exposes the shared dedup table (for reports).
func (s *Supervisor) Sessions() *devnet.SessionTable {
	return s.opts.Sessions
}
