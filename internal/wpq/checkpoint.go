package wpq

import (
	"fmt"

	"soteria/internal/sim"
)

// Checkpoint serializes the queue's timing state — pending entries in
// enqueue order plus statistics. The occupancy index is derivable and the
// device/banks are checkpointed by their owners.
func (q *Queue) Checkpoint(w *sim.SnapW) {
	w.U32(uint32(q.capacity))
	w.Time(q.writeLat)
	w.U64(q.stats.Inserts)
	w.U64(q.stats.Coalesced)
	w.U64(q.stats.Stalls)
	w.Time(q.stats.StallTime)
	w.I64(int64(q.stats.MaxDepth))
	w.U64(q.stats.AtomicSets)
	w.U32(uint32(len(q.pending)))
	for _, e := range q.pending {
		w.U64(e.addr)
		w.Time(e.completion)
	}
}

// Restore loads a Checkpoint written by a queue with the same geometry,
// rebuilding the occupancy index from the entry list.
func (q *Queue) Restore(r *sim.SnapR) error {
	if c := r.U32(); int(c) != q.capacity {
		return fmt.Errorf("wpq: checkpoint capacity %d, queue has %d", c, q.capacity)
	}
	if lat := r.Time(); lat != q.writeLat {
		return fmt.Errorf("wpq: checkpoint write latency %v, queue has %v", lat, q.writeLat)
	}
	q.stats.Inserts = r.U64()
	q.stats.Coalesced = r.U64()
	q.stats.Stalls = r.U64()
	q.stats.StallTime = r.Time()
	q.stats.MaxDepth = int(r.I64())
	q.stats.AtomicSets = r.U64()
	n := r.Count(16)
	if r.Err() != nil {
		return r.Err()
	}
	if n > q.capacity {
		return fmt.Errorf("wpq: checkpoint has %d pending entries, capacity %d", n, q.capacity)
	}
	q.pending = q.pending[:0]
	q.inQueue = make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		e := entry{addr: r.U64(), completion: r.Time()}
		q.pending = append(q.pending, e)
		q.inQueue[e.addr]++
	}
	return r.Err()
}
