// Package wpq models the memory controller's Write Pending Queue. The WPQ
// sits inside the Asynchronous DRAM Refresh (ADR) domain: once a write is
// accepted into the queue it is guaranteed to reach the NVM even across a
// power failure, so functionally every accepted write is durable
// immediately. What the WPQ adds on top of the device is *timing* — bounded
// occupancy, bank-aware drain scheduling, and stalls when producers outrun
// the NVM's write bandwidth — plus the atomic-commit capacity constraint
// that caps Soteria's clone depth at five copies (§3.2.1).
package wpq

import (
	"fmt"

	"soteria/internal/inject"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// Stats aggregates WPQ activity.
type Stats struct {
	Inserts    uint64
	Coalesced  uint64
	Stalls     uint64
	StallTime  sim.Time
	MaxDepth   int
	AtomicSets uint64
}

type entry struct {
	addr       uint64
	completion sim.Time
}

// Queue is the write pending queue draining into one NVM device.
type Queue struct {
	dev      *nvm.Device
	banks    *sim.Banks
	writeLat sim.Time
	capacity int
	pending  []entry
	inQueue  map[uint64]int // line addr -> count of pending entries
	stats    Stats
	hook     inject.Hook
	tel      telemetryHooks
}

// telemetryHooks holds the queue's metric handles; nil handles (no
// registry attached) are no-ops.
type telemetryHooks struct {
	inserts    *telemetry.Counter
	coalesced  *telemetry.Counter
	stalls     *telemetry.Counter
	stallTicks *telemetry.Counter
	atomicSets *telemetry.Counter
	depthMax   *telemetry.Gauge
	drainTicks *telemetry.Histogram // scheduled completion - push time
}

// AttachTelemetry registers the queue's metrics on r (nil detaches). The
// drain-latency histogram records, per accepted write, how long the entry
// will sit in the queue before its bank retires it.
func (q *Queue) AttachTelemetry(r *telemetry.Registry) {
	if r == nil {
		q.tel = telemetryHooks{}
		return
	}
	q.tel = telemetryHooks{
		inserts:    r.Counter("wpq_inserts_total"),
		coalesced:  r.Counter("wpq_coalesced_total"),
		stalls:     r.Counter("wpq_stalls_total"),
		stallTicks: r.Counter("wpq_stall_ticks_total"),
		atomicSets: r.Counter("wpq_atomic_sets_total"),
		depthMax:   r.Gauge("wpq_depth_max"),
		drainTicks: r.Histogram("wpq_drain_ticks", telemetry.ExpBounds(24)),
	}
}

// SetHook installs (or removes, with nil) the injection hook notified when
// atomic clone groups begin and end. Individual writes are observed at the
// device; the group brackets let a scenario aim a crash mid-group.
func (q *Queue) SetHook(h inject.Hook) { q.hook = h }

// Reset discards all queue bookkeeping. A simulated power loss empties the
// WPQ: accepted writes already reached the device (ADR drains them), and
// the occupancy/timing state is volatile controller state.
func (q *Queue) Reset() {
	q.pending = q.pending[:0]
	q.inQueue = make(map[uint64]int)
}

// New builds a WPQ of the given capacity in front of dev, draining into the
// shared bank model with the given per-write service latency.
func New(dev *nvm.Device, banks *sim.Banks, capacity int, writeLat sim.Time) (*Queue, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("wpq: capacity must be positive, got %d", capacity)
	}
	return &Queue{
		dev:      dev,
		banks:    banks,
		writeLat: writeLat,
		capacity: capacity,
		inQueue:  make(map[uint64]int),
	}, nil
}

// Capacity returns the queue capacity in entries.
func (q *Queue) Capacity() int { return q.capacity }

// Depth returns the current occupancy at the given time.
func (q *Queue) Depth(now sim.Time) int {
	q.drain(now)
	return len(q.pending)
}

// Stats returns a copy of the accumulated statistics.
func (q *Queue) Stats() Stats { return q.stats }

// Pending reports whether a write to the given line is still queued at
// `now` — the controller forwards reads from the WPQ in that case.
func (q *Queue) Pending(now sim.Time, lineAddr uint64) bool {
	q.drain(now)
	return q.inQueue[lineAddr] > 0
}

// drain retires every entry whose NVM write completed by now. Completions
// are not FIFO — banks finish independently — so the whole queue is
// filtered, not just a prefix.
func (q *Queue) drain(now sim.Time) {
	kept := q.pending[:0]
	for _, e := range q.pending {
		if e.completion > now {
			kept = append(kept, e)
			continue
		}
		if q.inQueue[e.addr] == 1 {
			delete(q.inQueue, e.addr)
		} else {
			q.inQueue[e.addr]--
		}
	}
	q.pending = kept
}

// Push accepts one line write. The data is applied to the device
// immediately (ADR durability); the returned time reflects any stall the
// producer suffered waiting for a free entry. Completion of the drain is
// scheduled on the line's bank.
//
// Writes coalesce: a push to a line that is still queued overwrites the
// pending entry in place (standard write-combining), consuming no extra
// entry and no extra bank time. This is what makes the eagerly rewritten
// shadow-tree lines nearly free in steady state.
func (q *Queue) Push(now sim.Time, addr uint64, data *nvm.Line) sim.Time {
	q.drain(now)
	if q.inQueue[addr] > 0 {
		q.dev.Write(addr, data)
		q.stats.Coalesced++
		q.tel.coalesced.Inc()
		return now
	}
	if len(q.pending) >= q.capacity {
		// Stall until the oldest entry drains. Entries complete in
		// the order their banks free up, so the head is not
		// necessarily the earliest; find the minimum.
		earliest := q.pending[0].completion
		for _, e := range q.pending[1:] {
			if e.completion < earliest {
				earliest = e.completion
			}
		}
		q.stats.Stalls++
		q.stats.StallTime += earliest - now
		q.tel.stalls.Inc()
		q.tel.stallTicks.Add(uint64(earliest - now))
		now = earliest
		q.drain(now)
	}
	bank := q.banks.BankFor(addr / nvm.LineSize)
	done := q.banks.Schedule(bank, now, q.writeLat)
	q.pending = append(q.pending, entry{addr: addr, completion: done})
	q.inQueue[addr]++
	q.dev.Write(addr, data)
	q.stats.Inserts++
	q.tel.inserts.Inc()
	q.tel.drainTicks.Observe(uint64(done - now))
	if len(q.pending) > q.stats.MaxDepth {
		q.stats.MaxDepth = len(q.pending)
	}
	q.tel.depthMax.SetMax(int64(len(q.pending)))
	return now
}

// PushAtomic accepts a group of writes that must commit together (for
// example a node and all of its clones). The paper's constraint is that an
// atomic group can never exceed the WPQ capacity; a violation is a design
// error, so it panics. The group stalls as one unit until enough entries
// are free, then enqueues back to back.
func (q *Queue) PushAtomic(now sim.Time, writes []Write) sim.Time {
	if len(writes) > q.capacity {
		panic(fmt.Sprintf("wpq: atomic group of %d exceeds WPQ capacity %d", len(writes), q.capacity))
	}
	q.drain(now)
	for len(q.pending)+len(writes) > q.capacity {
		earliest := q.pending[0].completion
		for _, e := range q.pending[1:] {
			if e.completion < earliest {
				earliest = e.completion
			}
		}
		q.stats.Stalls++
		q.stats.StallTime += earliest - now
		q.tel.stalls.Inc()
		q.tel.stallTicks.Add(uint64(earliest - now))
		now = earliest
		q.drain(now)
	}
	if q.hook != nil {
		q.hook.Event(inject.Event{Kind: inject.GroupBegin, Label: "atomic-group"})
	}
	for i := range writes {
		bank := q.banks.BankFor(writes[i].Addr / nvm.LineSize)
		done := q.banks.Schedule(bank, now, q.writeLat)
		q.pending = append(q.pending, entry{addr: writes[i].Addr, completion: done})
		q.inQueue[writes[i].Addr]++
		q.dev.Write(writes[i].Addr, &writes[i].Data)
		q.stats.Inserts++
		q.tel.inserts.Inc()
		q.tel.drainTicks.Observe(uint64(done - now))
	}
	if q.hook != nil {
		q.hook.Event(inject.Event{Kind: inject.GroupEnd, Label: "atomic-group"})
	}
	if len(q.pending) > q.stats.MaxDepth {
		q.stats.MaxDepth = len(q.pending)
	}
	q.tel.depthMax.SetMax(int64(len(q.pending)))
	q.stats.AtomicSets++
	q.tel.atomicSets.Inc()
	return now
}

// Write is one element of an atomic group.
type Write struct {
	Addr uint64
	Data nvm.Line
}

// FlushTime returns the instant at which every currently queued write has
// drained (used by persist barriers in workloads and by orderly shutdown).
func (q *Queue) FlushTime(now sim.Time) sim.Time {
	q.drain(now)
	t := now
	for _, e := range q.pending {
		if e.completion > t {
			t = e.completion
		}
	}
	return t
}
