package wpq

import (
	"testing"
	"time"

	"soteria/internal/nvm"
	"soteria/internal/sim"
)

func newQ(t *testing.T, capacity, banks int) (*Queue, *nvm.Device) {
	t.Helper()
	dev, err := nvm.NewDevice(1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := New(dev, sim.NewBanks(banks), capacity, sim.FromDuration(300*time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	return q, dev
}

func TestWriteIsImmediatelyDurable(t *testing.T) {
	q, dev := newQ(t, 8, 4)
	var l nvm.Line
	l[0] = 0xEE
	q.Push(0, 64, &l)
	// ADR: even "before" the drain completes, the device holds the data.
	if got := dev.Read(64); got.Data != l {
		t.Fatal("WPQ write not durable")
	}
}

func TestPendingAndDrain(t *testing.T) {
	q, _ := newQ(t, 8, 4)
	var l nvm.Line
	q.Push(0, 0, &l)
	if !q.Pending(0, 0) {
		t.Fatal("write not pending right after push")
	}
	w := sim.FromDuration(300 * time.Nanosecond)
	if q.Pending(w+1, 0) {
		t.Fatal("write still pending after service latency")
	}
	if q.Depth(w+1) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestStallWhenFull(t *testing.T) {
	q, _ := newQ(t, 2, 1) // single bank serializes drains
	var l nvm.Line
	w := sim.FromDuration(300 * time.Nanosecond)
	now := q.Push(0, 0, &l)
	now = q.Push(now, 64, &l)
	if now != 0 {
		t.Fatalf("no stall expected while queue has room, now=%v", now)
	}
	// Queue full; third push must stall until the first drain at 300ns.
	now = q.Push(now, 128, &l)
	if now != w {
		t.Fatalf("stall time = %v, want %v", now, w)
	}
	if q.Stats().Stalls != 1 {
		t.Fatalf("stalls = %d", q.Stats().Stalls)
	}
}

func TestBankParallelismSpeedsDrain(t *testing.T) {
	mk := func(banks int) sim.Time {
		q, _ := newQ(t, 4, banks)
		var l nvm.Line
		now := sim.Time(0)
		for i := uint64(0); i < 8; i++ {
			now = q.Push(now, i*64, &l)
		}
		return q.FlushTime(now)
	}
	serial := mk(1)
	parallel := mk(8)
	if parallel >= serial {
		t.Fatalf("8 banks (%v) not faster than 1 bank (%v)", parallel, serial)
	}
}

func TestPushAtomicCapacityPanic(t *testing.T) {
	q, _ := newQ(t, 4, 4)
	writes := make([]Write, 5)
	for i := range writes {
		writes[i].Addr = uint64(i) * 64
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized atomic group accepted")
		}
	}()
	q.PushAtomic(0, writes)
}

func TestPushAtomicWaitsForRoom(t *testing.T) {
	q, dev := newQ(t, 4, 1)
	var l nvm.Line
	now := q.Push(0, 0, &l)
	now = q.Push(now, 64, &l)
	// Queue holds 2 of 4; a 3-wide atomic group needs one drain first.
	writes := []Write{{Addr: 128}, {Addr: 192}, {Addr: 256}}
	for i := range writes {
		writes[i].Data[0] = byte(i + 1)
	}
	before := now
	now = q.PushAtomic(now, writes)
	if now <= before {
		t.Fatal("atomic push did not stall for room")
	}
	for i, w := range writes {
		if dev.Read(w.Addr).Data[0] != byte(i+1) {
			t.Fatalf("atomic write %d not applied", i)
		}
	}
	if q.Stats().AtomicSets != 1 {
		t.Fatal("atomic set not counted")
	}
}

func TestFlushTimeCoversAllPending(t *testing.T) {
	q, _ := newQ(t, 8, 2)
	var l nvm.Line
	var now sim.Time
	for i := uint64(0); i < 6; i++ {
		now = q.Push(now, i*64, &l)
	}
	ft := q.FlushTime(now)
	if q.Depth(ft) != 0 {
		t.Fatal("entries remain after FlushTime")
	}
	if ft <= now {
		t.Fatal("flush time not in the future")
	}
}

func TestDuplicateAddressCoalesces(t *testing.T) {
	q, dev := newQ(t, 8, 1)
	var l1, l2 nvm.Line
	l1[0], l2[0] = 1, 2
	q.Push(0, 0, &l1)
	q.Push(0, 0, &l2)
	if q.Depth(0) != 1 {
		t.Fatalf("coalesced push grew the queue: depth %d", q.Depth(0))
	}
	if q.Stats().Coalesced != 1 {
		t.Fatal("coalesce not counted")
	}
	if dev.Read(0).Data[0] != 2 {
		t.Fatal("coalesced write lost the newest data")
	}
	w := sim.FromDuration(300 * time.Nanosecond)
	if q.Pending(w+1, 0) {
		t.Fatal("entry should have drained once")
	}
}
