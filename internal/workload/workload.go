// Package workload synthesizes the memory-access patterns of the
// applications the paper evaluates (§4): the in-house uBENCH-X
// microbenchmarks, Whisper-style persistent-memory applications, a
// PMEMKV-style key-value store, and SPEC CPU 2006-style non-persistent
// applications.
//
// The real benchmark binaries and their gem5 checkpoints are not
// reproducible here, so each generator reproduces the *access pattern* that
// drives the paper's metrics — footprint, read/write mix, locality,
// persist-barrier frequency — which is what determines metadata-cache
// eviction behaviour (Fig 4, Fig 10c) and therefore Soteria's overheads
// (Fig 10a/b). The substitution is documented in DESIGN.md.
package workload

import (
	"fmt"
	"math/rand"

	"soteria/internal/trace"
)

// Class groups workloads the way the paper's figures do.
type Class int

// Workload classes.
const (
	// ClassMicro is the in-house uBENCH family.
	ClassMicro Class = iota
	// ClassPersistent covers Whisper-style and PMEMKV-style persistent
	// applications (stores use clwb+fence idioms).
	ClassPersistent
	// ClassSPEC covers non-persistent SPEC-like applications.
	ClassSPEC
)

func (c Class) String() string {
	switch c {
	case ClassMicro:
		return "micro"
	case ClassPersistent:
		return "persistent"
	case ClassSPEC:
		return "spec"
	default:
		return "?"
	}
}

// Workload couples a named generator factory with its class.
type Workload struct {
	Name  string
	Class Class
	// New builds a fresh generator over a data footprint of the given
	// size with the given seed.
	New func(footprint uint64, seed int64) trace.Generator
}

// UBench returns the paper's uBENCH X microbenchmark: it "accesses one byte
// after every X bytes in sequential manner with read/write ratio of 1".
func UBench(stride uint64) Workload {
	name := fmt.Sprintf("uBENCH%d", stride)
	return Workload{
		Name:  name,
		Class: ClassMicro,
		New: func(footprint uint64, seed int64) trace.Generator {
			var pos uint64
			read := true
			return trace.NewFunc(name, func(r *trace.Record) bool {
				r.Addr = pos % footprint
				r.Gap = 2
				if read {
					r.Op = trace.OpRead
				} else {
					r.Op = trace.OpWritePersist
					pos += stride
				}
				read = !read
				return true
			})
		},
	}
}

// zipfGen builds a Zipf address sampler over n items.
func zipfGen(rng *rand.Rand, n uint64, skew float64) *rand.Zipf {
	if n < 2 {
		n = 2
	}
	return rand.NewZipf(rng, skew, 1, n-1)
}

// kvPattern is the shared machinery for hash/KV-style workloads: reads
// probe a table region with some distribution; writes update a record and
// append to a log, followed by a persist barrier.
type kvPattern struct {
	name       string
	rng        *rand.Rand
	zipf       *rand.Zipf
	footprint  uint64
	writePct   int // percent of operations that are updates
	logRegion  uint64
	logPos     uint64
	probeReads int // reads per operation (bucket walk / tree descent)
	probeSpan  uint64
	persist    bool

	// in-flight operation state
	pending []trace.Record
}

func (k *kvPattern) Name() string { return k.name }

func (k *kvPattern) Next(r *trace.Record) bool {
	if len(k.pending) == 0 {
		k.synthesize()
	}
	*r = k.pending[0]
	k.pending = k.pending[1:]
	return true
}

func (k *kvPattern) synthesize() {
	var home uint64
	if k.zipf != nil {
		home = k.zipf.Uint64() * 64 % k.footprint
	} else {
		home = k.rng.Uint64() % k.footprint
	}
	// Probe chain: locality-decreasing reads around the home record.
	addr := home
	for i := 0; i < k.probeReads; i++ {
		k.pending = append(k.pending, trace.Record{Op: trace.OpRead, Addr: addr, Gap: 6})
		addr = (addr + (k.rng.Uint64()%k.probeSpan+1)*64) % k.footprint
	}
	if k.rng.Intn(100) < k.writePct {
		wop := trace.OpWrite
		if k.persist {
			wop = trace.OpWritePersist
		}
		// Update the record itself.
		k.pending = append(k.pending, trace.Record{Op: wop, Addr: home, Gap: 4})
		// Append to the (undo/redo) log region.
		if k.persist {
			logAddr := k.logRegion + (k.logPos%(k.footprint/8))/64*64
			k.logPos += 64
			k.pending = append(k.pending, trace.Record{Op: trace.OpWritePersist, Addr: logAddr, Gap: 2})
			k.pending = append(k.pending, trace.Record{Op: trace.OpBarrier, Gap: 1})
		}
	}
}

// persistentKV builds a Whisper/PMEMKV-style workload.
func persistentKV(name string, writePct, probeReads int, probeSpan uint64, skew float64) Workload {
	return Workload{
		Name:  name,
		Class: ClassPersistent,
		New: func(footprint uint64, seed int64) trace.Generator {
			rng := rand.New(rand.NewSource(seed))
			k := &kvPattern{
				name:       name,
				rng:        rng,
				footprint:  footprint * 7 / 8,
				writePct:   writePct,
				logRegion:  footprint * 7 / 8,
				probeReads: probeReads,
				probeSpan:  probeSpan,
				persist:    true,
			}
			if skew > 1 {
				k.zipf = zipfGen(rng, k.footprint/64, skew)
			}
			return k
		},
	}
}

// specLike builds a non-persistent workload from a mix of sequential and
// random accesses. Stores exhibit the page-level clustering of real
// applications: a write goes to one of the recently touched pages rather
// than a fresh random address, so consecutive stores share split-counter
// blocks the way compiled code's stores share stack frames and heap
// objects. Without this, every store would dirty a distinct counter block
// and the metadata write traffic would be wildly unrealistic.
func specLike(name string, writePct int, seqPct int, stride uint64, gap uint32) Workload {
	const (
		recentPages = 48
		hotWritePct = 70
	)
	return Workload{
		Name:  name,
		Class: ClassSPEC,
		New: func(footprint uint64, seed int64) trace.Generator {
			rng := rand.New(rand.NewSource(seed))
			var seq, hot uint64
			hotBase := footprint / 2 &^ 4095
			// The hot write region sweeps sequentially over a quarter
			// of the footprint — larger than any LLC, so dirty lines
			// stream out to memory, but spatially dense, so the
			// stores covered by one split-counter block arrive
			// together (the write clustering real programs exhibit).
			hotBytes := footprint / 4 &^ 4095
			if hotBytes < 4096 {
				hotBytes = 4096
			}
			recent := make([]uint64, 0, recentPages)
			pos := 0
			return trace.NewFunc(name, func(r *trace.Record) bool {
				r.Gap = gap
				if rng.Intn(100) < seqPct {
					seq += stride
					r.Addr = seq % footprint
				} else {
					r.Addr = rng.Uint64() % footprint
				}
				if rng.Intn(100) < writePct && len(recent) > 0 {
					// Most stores hit the hot region (stack frames,
					// hot heap objects) — tightly clustered, so they
					// share split-counter blocks. The rest update
					// recently read pages (read-modify-write).
					if rng.Intn(100) < hotWritePct {
						hot += 64
						r.Addr = hotBase + hot%hotBytes
					} else {
						page := recent[rng.Intn(len(recent))]
						r.Addr = page + rng.Uint64()%4096
					}
					if r.Addr >= footprint {
						r.Addr %= footprint
					}
					r.Op = trace.OpWrite
					return true
				}
				r.Op = trace.OpRead
				page := r.Addr &^ 4095
				if len(recent) < recentPages {
					recent = append(recent, page)
				} else {
					recent[pos] = page
					pos = (pos + 1) % recentPages
				}
				return true
			})
		},
	}
}

// Queue is the Whisper-style persistent FIFO: strictly sequential persisted
// writes at the head, reads at the tail, a barrier per enqueue.
func queueWorkload() Workload {
	return Workload{
		Name:  "queue",
		Class: ClassPersistent,
		New: func(footprint uint64, seed int64) trace.Generator {
			var head, tail uint64
			step := 0
			return trace.NewFunc("queue", func(r *trace.Record) bool {
				switch step {
				case 0:
					r.Op = trace.OpWritePersist
					r.Addr = head % footprint
					head += 64
					r.Gap = 4
				case 1:
					r.Op = trace.OpBarrier
					r.Gap = 1
				case 2:
					r.Op = trace.OpRead
					r.Addr = tail % footprint
					tail += 64
					r.Gap = 4
				}
				step = (step + 1) % 3
				return true
			})
		},
	}
}

// All returns the full workload suite used by the paper's figures.
func All() []Workload {
	return []Workload{
		// In-house microbenchmarks (§4).
		UBench(16),
		UBench(64),
		UBench(128),
		UBench(256),
		// Whisper-style persistent applications. Real key-value and
		// transaction workloads are skewed, so each carries a mild Zipf
		// distribution; skew drives the metadata-cache hit rates of
		// Fig 10c.
		persistentKV("hashmap", 40, 2, 4, 1.1),
		persistentKV("btree", 35, 4, 64, 1.15),
		persistentKV("rbtree", 35, 6, 128, 1.15),
		queueWorkload(),
		persistentKV("tpcc", 55, 3, 16, 1.1),
		persistentKV("ycsb", 30, 2, 8, 1.3),
		// PMEMKV.
		persistentKV("pmemkv", 25, 3, 32, 1.2),
		// SPEC CPU 2006-style non-persistent applications.
		specLike("mcf", 18, 10, 64, 3),        // pointer-chasing, read-heavy
		specLike("lbm", 45, 95, 64, 2),        // streaming stencil
		specLike("libquantum", 25, 98, 64, 1), /* sequential sweeps */
		specLike("milc", 35, 70, 256, 3),
		specLike("astar", 20, 30, 128, 4),
		specLike("gcc", 30, 50, 64, 6),
		specLike("bzip2", 28, 85, 64, 4),
		specLike("gobmk", 22, 40, 128, 8),
	}
}

// ByName returns the named workload from All.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// ByNameMust is ByName for known-good names; it panics on error.
func ByNameMust(name string) Workload {
	w, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Names lists the suite's workload names in figure order.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
