package workload

import (
	"testing"

	"soteria/internal/trace"
)

func drain(g trace.Generator, n int) []trace.Record {
	out := make([]trace.Record, 0, n)
	var r trace.Record
	for i := 0; i < n && g.Next(&r); i++ {
		out = append(out, r)
	}
	return out
}

func TestSuiteCompleteAndNamed(t *testing.T) {
	ws := All()
	if len(ws) < 15 {
		t.Fatalf("suite has only %d workloads", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if w.Name == "" || w.New == nil {
			t.Fatalf("malformed workload %+v", w)
		}
		if seen[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
	// The paper's suite members must all be present.
	for _, name := range []string{"uBENCH16", "uBENCH64", "uBENCH128", "uBENCH256",
		"hashmap", "btree", "rbtree", "queue", "tpcc", "ycsb", "pmemkv", "mcf", "lbm", "libquantum"} {
		if !seen[name] {
			t.Fatalf("missing workload %q", name)
		}
	}
	if len(Names()) != len(ws) {
		t.Fatal("Names() length mismatch")
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mcf")
	if err != nil || w.Name != "mcf" || w.Class != ClassSPEC {
		t.Fatalf("ByName: %+v %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ByNameMust should panic on unknown name")
		}
	}()
	ByNameMust("nope")
}

func TestUBenchSemantics(t *testing.T) {
	// "accesses one byte after every X bytes in sequential manner with
	// read/write ratio of 1".
	g := UBench(128).New(1<<20, 1)
	recs := drain(g, 400)
	reads, writes := 0, 0
	var lastWrite uint64
	first := true
	for _, r := range recs {
		switch r.Op {
		case trace.OpRead:
			reads++
		case trace.OpWritePersist:
			writes++
			if !first && r.Addr != (lastWrite+128)%(1<<20) {
				t.Fatalf("stride broken: %d after %d", r.Addr, lastWrite)
			}
			lastWrite = r.Addr
			first = false
		default:
			t.Fatalf("unexpected op %v", r.Op)
		}
	}
	if reads != writes {
		t.Fatalf("read/write ratio %d:%d, want 1:1", reads, writes)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	for _, w := range All() {
		a := drain(w.New(1<<20, 7), 200)
		b := drain(w.New(1<<20, 7), 200)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s not deterministic at record %d", w.Name, i)
			}
		}
		c := drain(w.New(1<<20, 8), 200)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same && w.Class != ClassMicro && w.Name != "queue" {
			t.Fatalf("%s ignores its seed", w.Name)
		}
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	const fp = 1 << 20
	for _, w := range All() {
		for _, r := range drain(w.New(fp, 3), 2000) {
			if r.Op == trace.OpBarrier {
				continue
			}
			if r.Addr >= fp {
				t.Fatalf("%s generated %#x beyond footprint %#x", w.Name, r.Addr, uint64(fp))
			}
		}
	}
}

func TestPersistentWorkloadsPersist(t *testing.T) {
	for _, w := range All() {
		if w.Class != ClassPersistent {
			continue
		}
		persist, barrier := 0, 0
		for _, r := range drain(w.New(1<<20, 3), 3000) {
			switch r.Op {
			case trace.OpWritePersist:
				persist++
			case trace.OpBarrier:
				barrier++
			case trace.OpWrite:
				t.Fatalf("%s issued a non-persistent store", w.Name)
			}
		}
		if persist == 0 || barrier == 0 {
			t.Fatalf("%s: persist=%d barrier=%d", w.Name, persist, barrier)
		}
	}
}

func TestSPECWorkloadsDoNotPersist(t *testing.T) {
	for _, w := range All() {
		if w.Class != ClassSPEC {
			continue
		}
		for _, r := range drain(w.New(1<<20, 3), 1000) {
			if r.Op == trace.OpWritePersist || r.Op == trace.OpBarrier {
				t.Fatalf("%s issued persistent op %v", w.Name, r.Op)
			}
		}
	}
}

func TestZipfWorkloadsAreSkewed(t *testing.T) {
	// ycsb's hot lines must be dramatically more popular than uniform.
	g := ByNameMust("ycsb").New(1<<20, 5)
	counts := map[uint64]int{}
	for _, r := range drain(g, 20000) {
		if r.Op == trace.OpRead {
			counts[r.Addr/64]++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("hottest line hit only %d times; zipf skew missing", max)
	}
}

func TestClassString(t *testing.T) {
	if ClassMicro.String() != "micro" || ClassPersistent.String() != "persistent" ||
		ClassSPEC.String() != "spec" || Class(9).String() != "?" {
		t.Fatal("class strings wrong")
	}
}
