package chaos

import (
	"testing"

	"soteria/internal/memctrl"
)

// TestConformanceAllStrategies is the shared contract: every registered
// metadata-persistence strategy survives the identical crash-point sweep,
// nested crash-during-recovery sweep, and fault campaign, judged by the
// same acknowledged-write oracle. A new strategy registered in memctrl is
// pulled into this table automatically.
func TestConformanceAllStrategies(t *testing.T) {
	cfg := ConformanceConfig{
		Seed:        11,
		Writes:      60,
		Mode:        memctrl.ModeSRC,
		Stride:      4,
		FaultTrials: 3,
		FaultRate:   0.01,
	}
	if testing.Short() {
		cfg.Writes, cfg.Stride, cfg.FaultTrials = 30, 8, 1
	}
	for _, strategy := range memctrl.Strategies() {
		t.Run(strategy, func(t *testing.T) {
			res, err := Conformance(strategy, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.CrashSweep.Boundaries == 0 || res.Runs() < 3 {
				t.Fatalf("suite too small: %d runs, %d boundaries", res.Runs(), res.CrashSweep.Boundaries)
			}
			if res.NestedSweep == nil {
				t.Fatal("nested sweep did not run")
			}
			for _, f := range res.Failures() {
				t.Errorf("conformance failure: %s: %v", f.Repro, f.Violations)
			}
		})
	}
}

// TestConformanceSweepsCoverSACMode spot-checks that the suite is not
// SRC-only: the clone-policy variant passes under a second mode too.
func TestConformanceSweepsCoverSACMode(t *testing.T) {
	for _, strategy := range []string{"soteria", "triad-nvm"} {
		res, err := Conformance(strategy, ConformanceConfig{
			Seed: 13, Writes: 30, Mode: memctrl.ModeSAC, Stride: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Failures() {
			t.Errorf("%s under SAC: %s: %v", strategy, f.Repro, f.Violations)
		}
	}
}

// TestSoteriaOnlyKnobsRejected pins the validation: shadow-entry faults and
// the half-repair kill switch are meaningless outside the Soteria table and
// must be refused, not silently ignored.
func TestSoteriaOnlyKnobsRejected(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 1, Writes: 10, Mode: memctrl.ModeSRC, Strategy: "triad-nvm", CrashAt: -1, NestedCrashAt: -1, ShadowFaults: 1},
		{Seed: 1, Writes: 10, Mode: memctrl.ModeSRC, Strategy: "anubis-shadow", CrashAt: -1, NestedCrashAt: -1, BreakHalfRepair: true},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run accepted soteria-only knobs for strategy %q", cfg.Strategy)
		}
	}
}

// TestReproNamesStrategy pins the repro contract: every one-line repro
// names the strategy it ran under, so a cross-scheme sweep failure is
// unambiguous.
func TestReproNamesStrategy(t *testing.T) {
	if got := Repro(Config{Seed: 5, Writes: 20, Mode: memctrl.ModeSRC, Strategy: "triad-nvm", CrashAt: 3}); !contains(got, "-strategy triad-nvm") {
		t.Errorf("repro %q does not name the strategy", got)
	}
	if got := Repro(Config{Seed: 5, Writes: 20, Mode: memctrl.ModeSRC, CrashAt: -1}); !contains(got, "-strategy soteria") {
		t.Errorf("repro %q does not name the default strategy", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
